open Fortran_front
open Scalar_analysis

type config = {
  use_constants : bool;
  use_symbolics : bool;
  use_privatization : bool;
  recognize_reductions : bool;
  use_array_privatization : bool;
}

let full_config =
  {
    use_constants = true;
    use_symbolics = true;
    use_privatization = true;
    recognize_reductions = true;
    use_array_privatization = true;
  }

let base_config =
  {
    use_constants = false;
    use_symbolics = false;
    use_privatization = false;
    recognize_reductions = false;
    use_array_privatization = false;
  }

type assertions = {
  asserted_values : (string * int) list;
  asserted_ranges : (string * int * int) list;
  asserted_injective : string list;
}

let no_assertions =
  { asserted_values = []; asserted_ranges = []; asserted_injective = [] }

type call_refs = Ast.stmt -> (string * Ast.expr list option * bool) list

type alias_oracle = string -> string -> [ `Aligned | `May | `No ]

type t = {
  punit : Ast.program_unit;
  tbl : Symbol.table;
  ctx : Defuse.ctx;
  cfg : Cfg.t;
  reaching : Reaching.t;
  liveness : Liveness.t;
  constants : Constants.t;
  control : Control_dep.edge list;
  nest : Loopnest.t;
  config : config;
  asserts : assertions;
  call_refs : call_refs;
  alias : alias_oracle;
  oracle : Defuse.call_oracle option;
}

(* Without interprocedural sections: a call wholly reads and writes
   every array it may touch per the (possibly conservative) Mod/Ref
   effects. *)
let default_call_refs tbl ctx (s : Ast.stmt) =
  match s.Ast.node with
  | Ast.Call _ ->
    let eff = Defuse.effects_of_call ctx s in
    let arrays l = List.filter (Symbol.is_array tbl) l in
    List.map (fun a -> (a, None, true)) (arrays eff.Defuse.ce_mods)
    @ List.map (fun a -> (a, None, false)) (arrays eff.Defuse.ce_refs)
  | _ -> []

let make ?oracle ?call_refs ?(alias = fun _ _ -> `No)
    ?(config = full_config) ?(asserts = no_assertions)
    (punit : Ast.program_unit) : t =
  let oracle_opt = oracle in
  (* scalar-analysis passes emit to the process-default sink: the
     environment is rebuilt from many call sites (engine, interproc,
     oracle) that have no sink of their own to thread through *)
  let tel = Telemetry.default () in
  Telemetry.span tel "analysis.depenv" ~args:[ ("unit", punit.Ast.uname) ]
  @@ fun () ->
  let pass name f = Telemetry.span tel ("analysis." ^ name) f in
  let tbl = pass "symbols" (fun () -> Symbol.build punit) in
  let ctx = pass "defuse" (fun () -> Defuse.make ?oracle tbl punit) in
  let cfg = pass "cfg" (fun () -> Cfg.build punit) in
  let reaching = pass "reaching" (fun () -> Reaching.analyze ctx cfg) in
  let liveness = pass "liveness" (fun () -> Liveness.analyze ctx cfg) in
  let constants = pass "constants" (fun () -> Constants.analyze ctx cfg) in
  let control = pass "control-dep" (fun () -> Control_dep.compute cfg) in
  let nest = pass "loopnest" (fun () -> Loopnest.build punit) in
  let call_refs =
    match call_refs with
    | Some f -> f
    | None -> default_call_refs tbl ctx
  in
  { punit; tbl; ctx; cfg; reaching; liveness; constants; control; nest;
    config; asserts; call_refs; alias; oracle = oracle_opt }

let remake t punit =
  make ?oracle:t.oracle ~call_refs:t.call_refs ~alias:t.alias ~config:t.config
    ~asserts:t.asserts punit

let stmt t sid = Cfg.stmt_of t.cfg (Cfg.Stmt sid)

let const_var_at t sid v =
  match List.assoc_opt v t.asserts.asserted_values with
  | Some n -> Some n
  | None -> (
    match Symbol.param_value t.tbl v with
    | Some n -> Some n
    | None ->
      if t.config.use_constants then
        match Constants.const_of_var t.constants sid v with
        | Some (Constants.Cint n) -> Some n
        | _ -> None
      else None)

let int_at t sid e =
  match
    Constants.eval_with
      (fun v -> Option.map (fun n -> Constants.Cint n) (const_var_at t sid v))
      e
  with
  | Some (Constants.Cint n) -> Some n
  | _ -> None

(* interval arithmetic, upper bounds only (None = +inf) *)
let upper_bound_at t sid e =
  let rec hi e =
    match (e : Ast.expr) with
    | Ast.Int n -> Some n
    | Ast.Var v -> (
      match const_var_at t sid v with
      | Some n -> Some n
      | None -> (
        match
          List.find_opt (fun (x, _, _) -> String.equal x v)
            t.asserts.asserted_ranges
        with
        | Some (_, _, ub) -> Some ub
        | None -> None))
    | Ast.Bin (Ast.Add, a, b) -> (
      match (hi a, hi b) with Some x, Some y -> Some (x + y) | _ -> None)
    | Ast.Bin (Ast.Sub, a, b) -> (
      match (hi a, lo b) with Some x, Some y -> Some (x - y) | _ -> None)
    | Ast.Bin (Ast.Mul, Ast.Int k, a) | Ast.Bin (Ast.Mul, a, Ast.Int k) ->
      if k >= 0 then Option.map (fun x -> k * x) (hi a)
      else Option.map (fun x -> k * x) (lo a)
    | Ast.Un (Ast.Neg, a) -> Option.map (fun x -> -x) (lo a)
    | _ -> None
  and lo e =
    match (e : Ast.expr) with
    | Ast.Int n -> Some n
    | Ast.Var v -> (
      match const_var_at t sid v with
      | Some n -> Some n
      | None -> (
        match
          List.find_opt (fun (x, _, _) -> String.equal x v)
            t.asserts.asserted_ranges
        with
        | Some (_, lb, _) -> Some lb
        | None -> None))
    | Ast.Bin (Ast.Add, a, b) -> (
      match (lo a, lo b) with Some x, Some y -> Some (x + y) | _ -> None)
    | Ast.Bin (Ast.Sub, a, b) -> (
      match (lo a, hi b) with Some x, Some y -> Some (x - y) | _ -> None)
    | Ast.Bin (Ast.Mul, Ast.Int k, a) | Ast.Bin (Ast.Mul, a, Ast.Int k) ->
      if k >= 0 then Option.map (fun x -> k * x) (lo a)
      else Option.map (fun x -> k * x) (hi a)
    | Ast.Un (Ast.Neg, a) -> Option.map (fun x -> -x) (hi a)
    | _ -> None
  in
  hi e
