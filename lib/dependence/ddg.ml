open Fortran_front
open Scalar_analysis

type kind = Flow | Anti | Output | Control

let kind_to_string = function
  | Flow -> "true"
  | Anti -> "anti"
  | Output -> "output"
  | Control -> "control"

type dep = {
  dep_id : int;
  kind : kind;
  var : string;
  src : Ast.stmt_id;
  dst : Ast.stmt_id;
  src_ref : Ast.expr option;
  dst_ref : Ast.expr option;
  level : int option;
  carrier : Ast.stmt_id option;
  dirs : Dtest.direction array list;
  dist : int option array;
  exact : bool;
  test : string;
  is_scalar : bool;
  prov : Explain.Provenance.t;
}

let pp_dep ppf d =
  let dirs_str =
    match d.dirs with
    | [] -> ""
    | dv :: _ ->
      Printf.sprintf " (%s)"
        (String.concat ","
           (Array.to_list (Array.map Dtest.direction_to_string dv)))
  in
  Format.fprintf ppf "%s dep on %s: s%d -> s%d%s%s%s"
    (kind_to_string d.kind) d.var d.src d.dst dirs_str
    (match d.level with
    | Some l -> Printf.sprintf " carried at level %d" l
    | None -> " loop-independent")
    (if d.exact then " [proven]" else " [pending]")

type nodep = {
  nd_var : string;
  nd_src : Ast.stmt_id;
  nd_dst : Ast.stmt_id;
  nd_prov : Explain.Provenance.t;
}

type stats = {
  pairs_tested : int;
  disproved : (string * int) list;
  proven : int;
  pending : int;
}

type t = { deps : dep list; nodeps : nodep list; stats : stats }

(* ------------------------------------------------------------------ *)
(* Reference collection                                                *)
(* ------------------------------------------------------------------ *)

type aref = {
  r_sid : Ast.stmt_id;
  r_array : string;
  r_subs : Ast.expr list;
  r_write : bool;
  r_pos : int;  (* flattened source position, for intra-iteration order *)
  r_call : bool;  (* a CALL's Mod/Ref summary, not a source subscript *)
}

let star_expr = Ast.Index ("%STAR", [])

(* Render a reference for provenance records; a CALL's whole-array
   summary prints a star subscript. *)
let render_ref (r : aref) =
  Printf.sprintf "%s(%s)" r.r_array
    (String.concat ","
       (List.map
          (fun e -> if e = star_expr then "*" else Pretty.expr_to_string e)
          r.r_subs))

let collect_refs (env : Depenv.t) : aref list =
  let pos = ref 0 in
  let acc = ref [] in
  Ast.iter_stmts
    (fun s ->
      incr pos;
      let p = !pos in
      List.iter
        (fun (a, subs) ->
          acc :=
            { r_sid = s.Ast.sid; r_array = a; r_subs = subs; r_write = true;
              r_pos = p; r_call = false }
            :: !acc)
        (Defuse.array_writes env.Depenv.ctx s);
      List.iter
        (fun (a, subs) ->
          acc :=
            { r_sid = s.Ast.sid; r_array = a; r_subs = subs; r_write = false;
              r_pos = p; r_call = false }
            :: !acc)
        (Defuse.array_reads env.Depenv.ctx s);
      (* array side effects of calls, as pseudo-references *)
      List.iter
        (fun (a, subs, is_write) ->
          let subs =
            match subs with
            | Some subs -> subs
            | None ->
              let rank = max 1 (List.length (Symbol.array_dims env.Depenv.tbl a)) in
              List.init rank (fun _ -> star_expr)
          in
          acc :=
            { r_sid = s.Ast.sid; r_array = a; r_subs = subs; r_write = is_write;
              r_pos = p; r_call = true }
            :: !acc)
        (env.Depenv.call_refs s))
    env.Depenv.punit.Ast.body;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Direction-vector utilities                                          *)
(* ------------------------------------------------------------------ *)

let reverse_dir = function
  | Dtest.Dlt -> Dtest.Dgt
  | Dtest.Deq -> Dtest.Deq
  | Dtest.Dgt -> Dtest.Dlt

let first_non_eq (dv : Dtest.direction array) : (int * Dtest.direction) option =
  let rec go k =
    if k >= Array.length dv then None
    else match dv.(k) with Dtest.Deq -> go (k + 1) | d -> Some (k, d)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Dependence-test memoization                                         *)
(*                                                                     *)
(* Array dependence testing — the expensive part of graph building —  *)
(* is performed in buckets: the unit body is partitioned into top-    *)
(* level statement groups (a whole DO nest is one group) and every     *)
(* ordered pair of groups is tested as one unit of work.  A bucket's   *)
(* result depends only on the two groups' contents (statements, ids,   *)
(* call side effects) and on the scalar environment the subscript      *)
(* machinery can observe from their statements (reaching definitions,  *)
(* constants, assertions, aliases, config) — so a bucket keyed by a    *)
(* digest of exactly those inputs can be replayed from a cache when    *)
(* an edit elsewhere in the unit left them untouched.                  *)
(* ------------------------------------------------------------------ *)

type bucket = {
  b_deps : dep list;  (* emission order; dep_ids are renumbered on merge *)
  b_nodeps : nodep list;  (* disproved pairs, emission order *)
  b_pairs : int;
  b_disproved : (string * int) list;
}

(* The memo table is shared by concurrent bucket tests (several
   domains inside one [compute], and several sessions across a batch
   server), so the table itself is mutex-guarded and the run counters
   are atomics: a lost increment would desynchronize the engine's
   watermarked stats view. *)
type cache = {
  buckets : (string, bucket) Hashtbl.t;
  lock : Mutex.t;
  tests_executed : int Atomic.t;
  bucket_hits : int Atomic.t;
  bucket_misses : int Atomic.t;
}

let make_cache () =
  { buckets = Hashtbl.create 64; lock = Mutex.create ();
    tests_executed = Atomic.make 0; bucket_hits = Atomic.make 0;
    bucket_misses = Atomic.make 0 }

let locked c f =
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) f

let cache_counters c =
  ( Atomic.get c.tests_executed,
    Atomic.get c.bucket_hits,
    Atomic.get c.bucket_misses )

let cache_entries c = locked c (fun () -> Hashtbl.length c.buckets)

let cache_find c key =
  let hit = locked c (fun () -> Hashtbl.find_opt c.buckets key) in
  (match hit with
  | Some _ -> Atomic.incr c.bucket_hits
  | None -> Atomic.incr c.bucket_misses);
  hit

let cache_store c key (b : bucket) =
  ignore (Atomic.fetch_and_add c.tests_executed b.b_pairs);
  locked c (fun () -> Hashtbl.replace c.buckets key b)

(* Buckets are pure data (deps, nodeps, counts — no closures), so the
   memo table marshals cleanly; this is what the persistent
   cross-process cache stores.  Counters are deliberately excluded:
   they describe a run, not the table. *)
let export_cache c : string =
  locked c (fun () -> Marshal.to_string c.buckets [])

let import_cache (s : string) ~(into : cache) : int =
  let imported : (string, bucket) Hashtbl.t = Marshal.from_string s 0 in
  locked into (fun () ->
      let added = ref 0 in
      Hashtbl.iter
        (fun key bucket ->
          if not (Hashtbl.mem into.buckets key) then begin
            Hashtbl.replace into.buckets key bucket;
            Stdlib.incr added
          end)
        imported;
      !added)

(* A definition site's analysis-relevant content: forward substitution
   reads an assignment's right-hand side, induction rewriting reads a
   DO header — bodies of nested statements are covered by their own
   statements' signatures. *)
let shallow_sig (s : Ast.stmt) =
  match s.Ast.node with
  | Ast.Do (h, _) ->
    Marshal.to_string (s.Ast.sid, h.Ast.dvar, h.Ast.lo, h.Ast.hi, h.Ast.step) []
  | Ast.If (branches, _) ->
    Marshal.to_string (s.Ast.sid, List.map fst branches) []
  | node -> Marshal.to_string (s.Ast.sid, node) []

(* Scalar facts a group's dependence tests can consume: for every
   scalar used at each statement, its propagated constant and the
   contents of the definitions reaching it (forward substitution and
   symbol cancellation read those). *)
let group_ctx_sig (env : Depenv.t) (top : Ast.stmt) =
  let buf = Buffer.create 512 in
  Ast.iter_stmts
    (fun s ->
      let vars =
        Defuse.uses env.Depenv.ctx s
        |> List.filter (fun v -> not (Symbol.is_array env.Depenv.tbl v))
        |> List.sort_uniq String.compare
      in
      List.iter
        (fun v ->
          Buffer.add_string buf (Printf.sprintf "%d:%s=" s.Ast.sid v);
          (match Depenv.const_var_at env s.Ast.sid v with
          | Some n -> Buffer.add_string buf (string_of_int n)
          | None -> Buffer.add_char buf '?');
          List.iter
            (fun (d : Reaching.def) ->
              match d.Reaching.def_at with
              | Cfg.Stmt dsid -> (
                match Depenv.stmt env dsid with
                | Some ds -> Buffer.add_string buf (shallow_sig ds)
                | None -> Buffer.add_string buf (Printf.sprintf "@%d" dsid))
              | Cfg.Entry -> Buffer.add_string buf "@entry"
              | Cfg.Exit -> Buffer.add_string buf "@exit")
            (Reaching.defs_of_use env.Depenv.reaching s.Ast.sid v))
        vars)
    [ top ];
  Digest.string (Buffer.contents buf)

(* Content of a group: its statements (with ids) plus the array side
   effects interprocedural analysis reports for its CALLs. *)
let group_content_sig (env : Depenv.t) (top : Ast.stmt) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Marshal.to_string top [ Marshal.No_sharing ]);
  Ast.iter_stmts
    (fun s ->
      match s.Ast.node with
      | Ast.Call _ ->
        Buffer.add_string buf (Marshal.to_string (env.Depenv.call_refs s) [])
      | _ -> ())
    [ top ];
  Digest.string (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Staged graph construction: plan -> test -> assemble                 *)
(*                                                                     *)
(* [compute] used to be one closure-heavy entry point; it is now a     *)
(* pipeline of three pure stages so that the expensive middle stage    *)
(* can be fanned out across domains by an injected task runner:        *)
(*                                                                     *)
(*   plan      enumerate the reference-pair buckets of a unit (cheap); *)
(*   test      run one bucket — reads only the immutable plan, so      *)
(*             distinct tasks may run concurrently on distinct domains;*)
(*   assemble  merge bucket outcomes (plus the sequential scalar and   *)
(*             control passes) into a graph in canonical task order,   *)
(*             independent of which domain finished first.             *)
(* ------------------------------------------------------------------ *)

(* One unit of parallel work: test every eligible reference pair
   between two top-level statement groups.  [t_key] is the bucket's
   memo-table digest, present only when the plan was built [~keyed]. *)
type task = { t_g1 : int; t_g2 : int; t_key : string option }

(* The immutable context shared by every stage — this record replaces
   the mutable refs and hash tables the old single-pass [compute]
   threaded through its inner closures.  Workers only ever read it. *)
type plan = {
  p_env : Depenv.t;
  p_refs : aref array;
  p_groups : int array array;  (* ref indices of each top-level group *)
  p_tasks : task array;  (* canonical (g1, g2) lexicographic order *)
  p_keyed : bool;
  p_tel : Telemetry.sink;
}

type outcome = { o_bucket : bucket; o_cached : bool }

(* A task runner: how [compute] fans bucket tests out.  The record
   keeps this library free of any dependency on [Runtime.Pool] (which
   depends on us); [Pool.analysis_runner] produces one. *)
type runner = { run_tasks : 'a. (unit -> 'a) array -> 'a array }

let plan ?telemetry ?(keyed = false) (env : Depenv.t) : plan =
  let tel =
    match telemetry with Some t -> t | None -> Telemetry.default ()
  in
  let refs = Array.of_list (collect_refs env) in
  let n_refs = Array.length refs in

  (* ---- partition references into top-level statement groups ---- *)
  let tops = Array.of_list env.Depenv.punit.Ast.body in
  let ngroups = Array.length tops in
  let group_of_sid = Hashtbl.create 64 in
  Array.iteri
    (fun g top ->
      Ast.iter_stmts (fun s -> Hashtbl.replace group_of_sid s.Ast.sid g) [ top ])
    tops;
  let by_group = Array.make ngroups [] in
  for i = n_refs - 1 downto 0 do
    match Hashtbl.find_opt group_of_sid refs.(i).r_sid with
    | Some g -> by_group.(g) <- i :: by_group.(g)
    | None -> ()
  done;
  let by_group = Array.map Array.of_list by_group in

  (* ---- bucket cache keys (computed only when requested) ---- *)
  let content_sig = lazy (Array.map (fun top -> group_content_sig env top) tops) in
  let ctx_sig = lazy (Array.map (fun top -> group_ctx_sig env top) tops) in
  let global_sig =
    lazy
      (let arrays =
         Array.to_list refs
         |> List.map (fun r -> r.r_array)
         |> List.sort_uniq String.compare
       in
       let buf = Buffer.create 128 in
       Buffer.add_string buf
         (Marshal.to_string (env.Depenv.config, env.Depenv.asserts) []);
       List.iter
         (fun a ->
           List.iter
             (fun b ->
               if String.compare a b < 0 then
                 Buffer.add_string buf
                   (match env.Depenv.alias a b with
                   | `Aligned -> "A"
                   | `May -> "M"
                   | `No -> "N"))
             arrays)
         arrays;
       Digest.string (Buffer.contents buf))
  in
  let bucket_key g1 g2 =
    Digest.string
      (String.concat "|"
         [ (Lazy.force content_sig).(g1); (Lazy.force content_sig).(g2);
           (Lazy.force ctx_sig).(g1); (Lazy.force ctx_sig).(g2);
           Lazy.force global_sig ])
  in

  (* ---- enumerate non-empty buckets in canonical order ---- *)
  let tasks = ref [] in
  for g1 = ngroups - 1 downto 0 do
    for g2 = ngroups - 1 downto g1 do
      if Array.length by_group.(g1) > 0 && Array.length by_group.(g2) > 0 then
        tasks :=
          { t_g1 = g1; t_g2 = g2;
            t_key = (if keyed then Some (bucket_key g1 g2) else None) }
          :: !tasks
    done
  done;
  { p_env = env; p_refs = refs; p_groups = by_group;
    p_tasks = Array.of_list !tasks; p_keyed = keyed; p_tel = tel }

let tasks p = Array.copy p.p_tasks

(* ---- one bucket of pair tests (pure: reads env and refs only) ---- *)
let run_pairs ~tel (env : Depenv.t) (refs : aref array) (idx_a : int array)
    (idx_b : int array) ~same : bucket =
    let deps = ref [] in
    let nodeps = ref [] in
    let pairs = ref 0 in
    let disproved : (string, int) Hashtbl.t = Hashtbl.create 4 in
    let bump tbl k =
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
    in
    let do_pair i j =
      let r1 = refs.(i) and r2 = refs.(j) in
      let self_pair = i = j in
      let same_name = String.equal r1.r_array r2.r_array in
      let alias_kind =
        if same_name then `Aligned else env.Depenv.alias r1.r_array r2.r_array
      in
      let eligible =
        alias_kind <> `No
        && (r1.r_write || r2.r_write)
        && ((not self_pair) || r1.r_write)
      in
      if eligible then begin
        incr pairs;
        let common = Loopnest.common env.Depenv.nest r1.r_sid r2.r_sid in
        let n = List.length common in
        (* ddg-level provenance context the pure tester cannot see:
           the rendered pair, alias uncertainty, call summaries *)
        let enrich ~swap (prov : Explain.Provenance.t) =
          let a, b = (render_ref r1, render_ref r2) in
          let extra =
            (if alias_kind = `May then
               [ Explain.Provenance.May_alias (r1.r_array, r2.r_array) ]
             else [])
            @ (if r1.r_call then
                 [ Explain.Provenance.Call_summary r1.r_array ]
               else [])
            @
            if
              r2.r_call
              && ((not r1.r_call) || not (String.equal r1.r_array r2.r_array))
            then [ Explain.Provenance.Call_summary r2.r_array ]
            else []
          in
          { prov with
            Explain.Provenance.pair = Some (if swap then (b, a) else (a, b));
            assumptions = extra @ prov.Explain.Provenance.assumptions }
        in
        let result =
          match
            (if alias_kind = `Aligned then Subscript.normalize env common
             else None (* unknown offset: subscripts incomparable *))
          with
          | Some norm ->
            let d1 = Subscript.analyze_ref env ~norm r1.r_sid r1.r_subs in
            let d2 = Subscript.analyze_ref env ~norm r2.r_sid r2.r_subs in
            Dtest.test_pair ~telemetry:tel env ~common:norm
              ~src:(r1.r_sid, d1) ~dst:(r2.r_sid, d2)
          | None -> (
            (* unnormalizable nest: assume dependence in all directions *)
            let r =
              Dtest.solve ~telemetry:tel
                {
                  Dtest.nloops = n;
                  trips = Array.make n None;
                  trips_exact = Array.map (fun _ -> true) (Array.make n None);
                  lo_known = Array.make n false;
                  dims =
                    [ { Dtest.a = Array.make n 0; b = Array.make n 0; c = 0;
                        usable = false } ];
                }
            in
            (* the synthetic problem's own assumptions are noise — the
               real reason is the incomparable subscript base *)
            match r with
            | Dtest.Dependent { dirs; dist; exact; test; prov } ->
              Dtest.Dependent
                { dirs; dist; exact; test;
                  prov =
                    { prov with
                      Explain.Provenance.loops =
                        Array.of_list
                          (List.map
                             (fun (lp : Loopnest.loop) ->
                               lp.Loopnest.header.Ast.dvar)
                             common);
                      assumptions =
                        (if alias_kind = `May then []
                         else [ Explain.Provenance.Unnormalized ]) } }
            | r -> r)
        in
        match result with
        | Dtest.Independent { test; prov } ->
          bump disproved test;
          nodeps :=
            { nd_var = r1.r_array; nd_src = r1.r_sid; nd_dst = r2.r_sid;
              nd_prov = enrich ~swap:false prov }
            :: !nodeps
        | Dtest.Dependent { dirs; dist; exact; test; prov } ->
          (* partition surviving direction vectors by orientation *)
          let fwd = ref [] and bwd = ref [] and eq_fwd = ref false and eq_bwd = ref false in
          List.iter
            (fun dv ->
              match first_non_eq dv with
              | Some (_, Dtest.Dlt) -> fwd := dv :: !fwd
              | Some (_, Dtest.Dgt) -> bwd := Array.map reverse_dir dv :: !bwd
              | Some (_, Dtest.Deq) | None ->
                if self_pair || r1.r_sid = r2.r_sid then ()
                  (* same statement, same iteration: no dependence *)
                else if r1.r_pos <= r2.r_pos then eq_fwd := true
                else eq_bwd := true)
            dirs;
          let carrier_of dv =
            match first_non_eq dv with
            | Some (k, _) ->
              let lp = List.nth common k in
              (Some (k + 1), Some lp.Loopnest.lstmt.Ast.sid)
            | None -> (None, None)
          in
          let kind_of ~src_write ~dst_write =
            if src_write && dst_write then Output
            else if src_write then Flow
            else Anti
          in
          let emit ~src ~dst ~dvs ~loop_indep ~dist ~prov =
            if dvs <> [] || loop_indep then begin
              (* group carried vectors by carrying level *)
              let by_level = Hashtbl.create 4 in
              List.iter
                (fun dv ->
                  let key = carrier_of dv in
                  let cur =
                    Option.value ~default:[] (Hashtbl.find_opt by_level key)
                  in
                  Hashtbl.replace by_level key (dv :: cur))
                dvs;
              if loop_indep then
                Hashtbl.replace by_level (None, None)
                  (Option.value ~default:[] (Hashtbl.find_opt by_level (None, None)));
              Hashtbl.iter
                (fun (level, carrier) dvs ->
                  deps :=
                    {
                      dep_id = 0;
                      kind =
                        kind_of ~src_write:src.r_write ~dst_write:dst.r_write;
                      var = src.r_array;
                      src = src.r_sid;
                      dst = dst.r_sid;
                      src_ref = Some (Ast.Index (src.r_array, src.r_subs));
                      dst_ref = Some (Ast.Index (dst.r_array, dst.r_subs));
                      level;
                      carrier;
                      dirs = List.rev dvs;
                      dist;
                      exact;
                      test;
                      is_scalar = false;
                      prov;
                    }
                    :: !deps)
                by_level
            end
          in
          emit ~src:r1 ~dst:r2 ~dvs:(List.rev !fwd) ~loop_indep:!eq_fwd ~dist
            ~prov:(enrich ~swap:false prov);
          (* a self-pair's backward vectors mirror its forward ones *)
          if not self_pair then begin
            let neg_dist = Array.map (Option.map (fun d -> -d)) dist in
            emit ~src:r2 ~dst:r1 ~dvs:(List.rev !bwd) ~loop_indep:!eq_bwd
              ~dist:neg_dist ~prov:(enrich ~swap:true prov)
          end
      end
    in
    if same then
      Array.iter
        (fun i -> Array.iter (fun j -> if j >= i then do_pair i j) idx_a)
        idx_a
    else Array.iter (fun i -> Array.iter (fun j -> do_pair i j) idx_b) idx_a;
    {
      b_deps = List.rev !deps;
      b_nodeps = List.rev !nodeps;
      b_pairs = !pairs;
      b_disproved =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) disproved []
        |> List.sort compare;
    }

(* Run one planned bucket.  The [ddg.bucket] span is emitted on the
   executing domain, so a fanned-out analysis shows up as per-domain
   trace lanes exactly like the runtime pool's chunk spans. *)
let test (p : plan) (task : task) : bucket =
  Telemetry.span p.p_tel "ddg.bucket"
    ~args:[ ("groups", Printf.sprintf "%d,%d" task.t_g1 task.t_g2) ]
    (fun () ->
      run_pairs ~tel:p.p_tel p.p_env p.p_refs p.p_groups.(task.t_g1)
        p.p_groups.(task.t_g2) ~same:(task.t_g1 = task.t_g2))

let assemble (p : plan) (outcomes : outcome array) : t =
  if Array.length outcomes <> Array.length p.p_tasks then
    invalid_arg "Ddg.assemble: one outcome per planned task expected";
  let env = p.p_env in
  let tel = p.p_tel in

  (* ---- merge bucket outcomes in canonical task order ---- *)
  let array_deps = ref [] in
  let nodeps_acc = ref [] in
  let pairs_tested = ref 0 in
  let disproved : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let bump_n tbl k n =
    Hashtbl.replace tbl k (n + Option.value ~default:0 (Hashtbl.find_opt tbl k))
  in
  Array.iter
    (fun o ->
      let b = o.o_bucket in
      pairs_tested := !pairs_tested + b.b_pairs;
      List.iter (fun (t, n) -> bump_n disproved t n) b.b_disproved;
      List.iter (fun nd -> nodeps_acc := nd :: !nodeps_acc) b.b_nodeps;
      List.iter (fun d -> array_deps := d :: !array_deps) b.b_deps)
    outcomes;
  let deps = ref !array_deps in

  (* ---- scalar dependences ---- *)
  let cfgc = env.Depenv.config in
  List.iter
    (fun (lp : Loopnest.loop) ->
      let loop_sid = lp.Loopnest.lstmt.Ast.sid in
      let body = Loopnest.body_stmts env.Depenv.nest loop_sid in
      let classify =
        if cfgc.Depenv.use_privatization then
          Varclass.classify
            ~recognize_reductions:cfgc.Depenv.recognize_reductions
            env.Depenv.ctx env.Depenv.liveness lp.Loopnest.lstmt
          |> Varclass.all
        else
          (* without scalar data-flow analysis, every written scalar
             except the loop's own induction variable is unsafe *)
          let written =
            List.concat_map
              (fun s -> Defuse.may_defs env.Depenv.ctx s)
              body
            |> List.sort_uniq String.compare
            |> List.filter (fun v ->
                   (not (Symbol.is_array env.Depenv.tbl v))
                   && not (String.equal v lp.Loopnest.header.Ast.dvar))
          in
          List.map (fun v -> (v, Varclass.Shared_unsafe)) written
      in
      let level = lp.Loopnest.depth in
      List.iter
        (fun (v, cls) ->
          match cls with
          | Varclass.Shared_unsafe ->
            let writes =
              List.filter
                (fun s -> List.mem v (Defuse.may_defs env.Depenv.ctx s))
                body
            in
            let reads =
              List.filter
                (fun s -> List.mem v (Defuse.uses env.Depenv.ctx s))
                body
            in
            let emit kind (s1 : Ast.stmt) (s2 : Ast.stmt) =
              deps :=
                {
                  dep_id = 0;
                  kind;
                  var = v;
                  src = s1.Ast.sid;
                  dst = s2.Ast.sid;
                  src_ref = None;
                  dst_ref = None;
                  level = Some level;
                  carrier = Some loop_sid;
                  dirs = [];
                  dist = [||];
                  exact = false;
                  test = "scalar";
                  is_scalar = true;
                  prov =
                    Explain.Provenance.simple ~tier:"scalar"
                      Explain.Provenance.Assumed;
                }
                :: !deps
            in
            List.iter (fun w -> List.iter (fun r -> emit Flow w r) reads) writes;
            List.iter (fun r -> List.iter (fun w -> emit Anti r w) writes) reads;
            List.iter
              (fun w1 ->
                List.iter (fun w2 -> if w1 != w2 then emit Output w1 w2) writes)
              writes
          | Varclass.Induction _ | Varclass.Reduction _ | Varclass.Private _
          | Varclass.Shared_safe -> ())
        classify)
    (Loopnest.loops env.Depenv.nest);

  (* ---- loop-independent scalar dependences (def-use order) ---- *)
  let flat_pos = Hashtbl.create 64 in
  let cnt = ref 0 in
  Ast.iter_stmts
    (fun s -> incr cnt; Hashtbl.replace flat_pos s.Ast.sid !cnt)
    env.Depenv.punit.Ast.body;
  let pos_of sid = Option.value ~default:0 (Hashtbl.find_opt flat_pos sid) in
  let emit_scalar kind v s1 s2 ~exact ~test =
    deps :=
      {
        dep_id = 0;
        kind;
        var = v;
        src = s1;
        dst = s2;
        src_ref = None;
        dst_ref = None;
        level = None;
        carrier = None;
        dirs = [];
        dist = [||];
        exact;
        test;
        is_scalar = true;
        prov =
          Explain.Provenance.simple ~tier:test
            (if exact then Explain.Provenance.Proven
             else Explain.Provenance.Assumed);
      }
      :: !deps
  in
  (* flow deps from reaching-definition chains; chains flowing
     backwards in source order travel the loop back edge and are
     already reported as carried scalar dependences *)
  List.iter
    (fun ((d : Reaching.def), use_sid) ->
      match d.Reaching.def_at with
      | Cfg.Stmt def_sid
        when (not (Symbol.is_array env.Depenv.tbl d.Reaching.def_var))
             && def_sid <> use_sid
             && pos_of def_sid < pos_of use_sid ->
        emit_scalar Flow d.Reaching.def_var def_sid use_sid ~exact:true
          ~test:"def-use"
      | _ -> ())
    (Reaching.chains env.Depenv.reaching);
  (* anti and output deps by intra-iteration source order *)
  let stmts =
    List.rev
      (Ast.fold_stmts (fun acc s -> s :: acc) [] env.Depenv.punit.Ast.body)
  in
  let scalars_of f s =
    List.filter (fun v -> not (Symbol.is_array env.Depenv.tbl v)) (f env.Depenv.ctx s)
  in
  List.iter
    (fun (s1 : Ast.stmt) ->
      List.iter
        (fun (s2 : Ast.stmt) ->
          if s1.Ast.sid <> s2.Ast.sid && pos_of s1.Ast.sid < pos_of s2.Ast.sid
          then begin
            let r1 = scalars_of Defuse.uses s1
            and w1 = scalars_of Defuse.may_defs s1
            and w2 = scalars_of Defuse.may_defs s2 in
            List.iter
              (fun v ->
                if List.mem v w2 then
                  emit_scalar Anti v s1.Ast.sid s2.Ast.sid ~exact:false
                    ~test:"order")
              r1;
            List.iter
              (fun v ->
                if List.mem v w2 then
                  emit_scalar Output v s1.Ast.sid s2.Ast.sid ~exact:false
                    ~test:"order")
              w1
          end)
        stmts)
    stmts;

  (* ---- control dependences ---- *)
  List.iter
    (fun (e : Control_dep.edge) ->
      deps :=
        {
          dep_id = 0;
          kind = Control;
          var = "";
          src = e.Control_dep.branch;
          dst = e.Control_dep.dependent;
          src_ref = None;
          dst_ref = None;
          level = None;
          carrier = None;
          dirs = [];
          dist = [||];
          exact = true;
          test = "control";
          is_scalar = false;
          prov =
            Explain.Provenance.simple ~tier:"control"
              Explain.Provenance.Proven;
        }
        :: !deps)
    env.Depenv.control;

  (* renumber in emission order so a cache-assisted build and a fresh
     build of the same unit yield structurally identical graphs *)
  let deps = List.rev !deps |> List.mapi (fun i d -> { d with dep_id = i + 1 }) in
  (* statistics cover the array-dependence pairs (the tested ones) *)
  let data_deps =
    List.filter (fun d -> d.kind <> Control && not d.is_scalar) deps
  in
  let proven = List.length (List.filter (fun d -> d.exact) data_deps) in
  let stats =
    {
      pairs_tested = !pairs_tested;
      disproved =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) disproved []
        |> List.sort compare;
      proven;
      pending = List.length data_deps - proven;
    }
  in
  (* flush aggregated tallies to the sink in one pass — the pair-test
     stage itself stays counter-free *)
  if Telemetry.metrics_on tel then begin
    let executed =
      Array.fold_left
        (fun acc o -> if o.o_cached then acc else acc + o.o_bucket.b_pairs)
        0 outcomes
    in
    let count f = Array.fold_left (fun n o -> if f o then n + 1 else n) 0 outcomes in
    let hits = if p.p_keyed then count (fun o -> o.o_cached) else 0 in
    let misses = if p.p_keyed then count (fun o -> not o.o_cached) else 0 in
    let c name = Telemetry.counter tel name in
    Telemetry.add (c "ddg.pairs_tested") stats.pairs_tested;
    Telemetry.add (c "ddg.tests_executed") executed;
    Telemetry.add (c "ddg.bucket_hits") hits;
    Telemetry.add (c "ddg.bucket_misses") misses;
    Telemetry.add (c "ddg.deps_proven") stats.proven;
    Telemetry.add (c "ddg.deps_pending") stats.pending;
    List.iter
      (fun (t, n) -> Telemetry.add (c ("dtest.disproved." ^ t)) n)
      stats.disproved;
    (* provenance tallies: which tier each surviving edge came from *)
    let by_tier = Hashtbl.create 8 in
    List.iter
      (fun d ->
        let key =
          ( d.prov.Explain.Provenance.tier,
            d.prov.Explain.Provenance.outcome = Explain.Provenance.Proven )
        in
        Hashtbl.replace by_tier key
          (1 + Option.value ~default:0 (Hashtbl.find_opt by_tier key)))
      data_deps;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_tier []
    |> List.sort compare
    |> List.iter (fun ((tier, proven), n) ->
           let prefix = if proven then "dtest.proven." else "dtest.assumed." in
           Telemetry.add (c (prefix ^ tier)) n)
  end;
  { deps; nodeps = List.rev !nodeps_acc; stats }

(* ------------------------------------------------------------------ *)
(* The one-call entry point, staged internally                         *)
(* ------------------------------------------------------------------ *)

let compute ?cache ?telemetry ?runner (env : Depenv.t) : t =
  let tel =
    match telemetry with Some t -> t | None -> Telemetry.default ()
  in
  Telemetry.span tel "ddg.compute"
    ~args:[ ("unit", env.Depenv.punit.Ast.uname) ]
    (fun () ->
      let p = plan ~telemetry:tel ~keyed:(cache <> None) env in
      let probe (task : task) =
        match (cache, task.t_key) with
        | Some c, Some key -> cache_find c key
        | _ -> None
      in
      let store (task : task) (b : bucket) =
        match (cache, task.t_key) with
        | Some c, Some key -> cache_store c key b
        | _ -> ()
      in
      let probed = Array.map (fun task -> (task, probe task)) p.p_tasks in
      let outcomes =
        match runner with
        | None ->
          Array.map
            (fun (task, hit) ->
              match hit with
              | Some b -> { o_bucket = b; o_cached = true }
              | None ->
                let b = test p task in
                store task b;
                { o_bucket = b; o_cached = false })
            probed
        | Some r ->
          (* fan the missing buckets out; cached ones need no work *)
          let misses =
            Array.to_list probed
            |> List.filter_map (fun (task, hit) ->
                   match hit with None -> Some task | Some _ -> None)
            |> Array.of_list
          in
          let results =
            r.run_tasks (Array.map (fun task () -> test p task) misses)
          in
          let fresh = Hashtbl.create (max 1 (Array.length misses)) in
          Array.iteri
            (fun i task ->
              store task results.(i);
              Hashtbl.replace fresh (task.t_g1, task.t_g2) results.(i))
            misses;
          Array.map
            (fun (task, hit) ->
              match hit with
              | Some b -> { o_bucket = b; o_cached = true }
              | None ->
                { o_bucket = Hashtbl.find fresh (task.t_g1, task.t_g2);
                  o_cached = false })
            probed
      in
      assemble p outcomes)

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

(* The graph is pure data (statement ids, expressions, direction
   arrays), and dep ids are renumbered in canonical emission order, so
   polymorphic equality is exactly structural identity. *)
let equal (a : t) (b : t) = a = b

let find_dep t id = List.find_opt (fun d -> d.dep_id = id) t.deps

let why_no t ~src ~dst =
  List.filter
    (fun nd ->
      (nd.nd_src = src && nd.nd_dst = dst)
      || (nd.nd_src = dst && nd.nd_dst = src))
    t.nodeps

let tally_by_tier tiers =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun tier ->
      Hashtbl.replace tbl tier
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl tier)))
    tiers;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let deps_by_tier t outcome =
  tally_by_tier
    (List.filter_map
       (fun d ->
         if d.prov.Explain.Provenance.outcome = outcome then
           Some d.prov.Explain.Provenance.tier
         else None)
       t.deps)

let assumed_by_tier t = deps_by_tier t Explain.Provenance.Assumed
let proven_by_tier t = deps_by_tier t Explain.Provenance.Proven

let disproved_by_tier t =
  tally_by_tier
    (List.map (fun nd -> nd.nd_prov.Explain.Provenance.tier) t.nodeps)

let carried_by t loop_sid =
  List.filter (fun d -> d.carrier = Some loop_sid) t.deps

let deps_in_loop (env : Depenv.t) t loop_sid =
  let inside sid =
    sid = loop_sid || Loopnest.stmt_in_loop env.Depenv.nest sid ~loop_sid
  in
  List.filter (fun d -> inside d.src && inside d.dst) t.deps

let blocking ?(ignore = []) (env : Depenv.t) t loop_sid =
  let private_arrays = lazy (Arrayprivate.in_loop env loop_sid) in
  List.filter
    (fun d ->
      d.carrier = Some loop_sid
      && d.kind <> Control
      && (not (List.mem d.dep_id ignore))
      && not
           ((not d.is_scalar)
           && List.mem d.var (Lazy.force private_arrays)))
    t.deps

let parallelizable ?ignore env t loop_sid =
  blocking ?ignore env t loop_sid = []

let dot ?loop (env : Depenv.t) t =
  let deps =
    match loop with
    | Some sid -> deps_in_loop env t sid
    | None -> t.deps
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph ddg {\n  node [shape=box];\n";
  let nodes = Hashtbl.create 16 in
  List.iter
    (fun d ->
      Hashtbl.replace nodes d.src ();
      Hashtbl.replace nodes d.dst ())
    deps;
  Hashtbl.iter
    (fun sid () ->
      let label =
        match Depenv.stmt env sid with
        | Some s ->
          let text = Pretty.stmt_to_string s in
          let first =
            match String.index_opt text '\n' with
            | Some i -> String.sub text 0 i
            | None -> text
          in
          Printf.sprintf "s%d: %s" sid (String.trim first)
        | None -> Printf.sprintf "s%d" sid
      in
      Buffer.add_string buf (Printf.sprintf "  s%d [label=%S];\n" sid label))
    nodes;
  List.iter
    (fun d ->
      let style =
        match d.kind with
        | Flow -> ""
        | Anti -> " style=dashed"
        | Output -> " style=dotted"
        | Control -> " color=gray"
      in
      let label =
        Printf.sprintf "%s %s%s" (kind_to_string d.kind) d.var
          (match d.level with
          | Some l -> Printf.sprintf " @L%d" l
          | None -> "")
      in
      Buffer.add_string buf
        (Printf.sprintf "  s%d -> s%d [label=%S%s];\n" d.src d.dst label style))
    deps;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
