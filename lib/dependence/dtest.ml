open Fortran_front
module Linear = Scalar_analysis.Symbolic.Linear

type direction = Dlt | Deq | Dgt

let direction_to_string = function Dlt -> "<" | Deq -> "=" | Dgt -> ">"

type dim_pair = { a : int array; b : int array; c : int; usable : bool }

type problem = {
  nloops : int;
  trips : int option array;
  trips_exact : bool array;
  lo_known : bool array;
  dims : dim_pair list;
}

type result =
  | Independent of { test : string; prov : Explain.Provenance.t }
  | Dependent of {
      dirs : direction array list;
      dist : int option array;
      exact : bool;
      test : string;
      prov : Explain.Provenance.t;
    }

(* The assumptions a decision over [p] consulted: per-loop bound
   weaknesses and per-dimension analyzability.  Computed up front so
   disproofs and surviving dependences report the same consulted set. *)
let assumptions_of (p : problem) (names : string array) :
    Explain.Provenance.assumption list =
  let loops = ref [] in
  for k = p.nloops - 1 downto 0 do
    if not p.lo_known.(k) then
      loops := Explain.Provenance.Raw_bounds names.(k) :: !loops
    else
      match p.trips.(k) with
      | None -> loops := Explain.Provenance.Unknown_trip names.(k) :: !loops
      | Some _ ->
        if not p.trips_exact.(k) then
          loops := Explain.Provenance.Asserted_trip names.(k) :: !loops
  done;
  let dims =
    List.mapi
      (fun i d ->
        if d.usable then None else Some (Explain.Provenance.Nonlinear_dim (i + 1)))
      p.dims
    |> List.filter_map Fun.id
  in
  !loops @ dims

(* ------------------------------------------------------------------ *)
(* Extended integers for Banerjee bounds                               *)
(* ------------------------------------------------------------------ *)

type xb = NInf | Fin of int | PInf

let xadd a b =
  match (a, b) with
  | Fin x, Fin y -> Fin (x + y)
  | NInf, PInf | PInf, NInf -> invalid_arg "xadd: inf - inf"
  | NInf, _ | _, NInf -> NInf
  | PInf, _ | _, PInf -> PInf

let xscale k = function
  | Fin x -> Fin (k * x)
  | NInf -> if k > 0 then NInf else if k < 0 then PInf else Fin 0
  | PInf -> if k > 0 then PInf else if k < 0 then NInf else Fin 0

let xmin a b =
  match (a, b) with
  | NInf, _ | _, NInf -> NInf
  | PInf, x | x, PInf -> x
  | Fin x, Fin y -> Fin (min x y)

let xmax a b =
  match (a, b) with
  | PInf, _ | _, PInf -> PInf
  | NInf, x | x, NInf -> x
  | Fin x, Fin y -> Fin (max x y)

let xle a b =
  match (a, b) with
  | NInf, _ | _, PInf -> true
  | PInf, _ | _, NInf -> false
  | Fin x, Fin y -> x <= y

(* range of k·v for v ∈ [0, trip] (trip possibly unknown) *)
let range_scale k trip : xb * xb =
  let hi = match trip with Some t -> Fin t | None -> PInf in
  let lo = Fin 0 in
  let x = xscale k lo and y = xscale k hi in
  (xmin x y, xmax x y)

(* range of k·v for v ∈ [lo_int, hi] with hi possibly unknown *)
let range_scale_from k lo_int trip_hi : xb * xb =
  let hi = match trip_hi with Some t -> Fin t | None -> PInf in
  let lo = Fin lo_int in
  if xle hi lo && hi <> lo then (Fin 0, Fin 0) (* empty; caller guards *)
  else
    let x = xscale k lo and y = xscale k hi in
    (xmin x y, xmax x y)

let add_range (lo1, hi1) (lo2, hi2) = (xadd lo1 lo2, xadd hi1 hi2)

(* ------------------------------------------------------------------ *)
(* Per-dimension helpers                                               *)
(* ------------------------------------------------------------------ *)

let nonzero_positions d =
  let acc = ref [] in
  Array.iteri (fun k ak -> if ak <> 0 || d.b.(k) <> 0 then acc := k :: !acc) d.a;
  List.rev !acc

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let floor_div a b =
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

let ceil_div a b =
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) = (b < 0) then q + 1 else q

(* Solve a·x = rhs exactly over x ∈ [0, trip]: Some x / None *)
let solve_single a rhs trip =
  if a = 0 then if rhs = 0 then `Any else `None
  else if rhs mod a <> 0 then `None
  else
    let x = rhs / a in
    if x < 0 then `None
    else
      match trip with
      | Some t when x > t -> `None
      | _ -> `One x

(* Does a·x - b·y = rhs admit a solution with x, y ∈ [0, trip]?
   (exact SIV: a ≠ 0, b ≠ 0).  Returns `No, `Yes, or `Unknown when the
   trip is unbounded but solutions exist for some large range. *)
let exact_siv a b rhs trip =
  let g = gcd a b in
  if rhs mod g <> 0 then `No
  else
    match trip with
    | None -> `Yes_unbounded
    | Some t ->
      if t < 0 then `No
      else begin
        (* extended gcd for a·x0 - b·y0 = g *)
        let rec egcd a b = if b = 0 then (a, 1, 0)
          else
            let g, x, y = egcd b (a mod b) in
            (g, y, x - (a / b) * y)
        in
        let g', x0, y0 = egcd a (-b) in
        (* a·x0 + (-b)·y0 = g' where |g'| = g *)
        let scale = rhs / g' in
        let x0 = x0 * scale and y0 = y0 * scale in
        (* general solution: x = x0 + (b/g')·k ... use step components *)
        let bx = -b / g' and ax = -(a / g') in
        (* x = x0 + bx·k, y = y0 + ax·k; find k with both in [0,t] *)
        let interval v0 stepv =
          (* k such that v0 + stepv·k ∈ [0, t] *)
          if stepv = 0 then
            if v0 >= 0 && v0 <= t then Some (min_int / 2, max_int / 2) else None
          else
            let lo, hi =
              if stepv > 0 then
                (ceil_div (0 - v0) stepv, floor_div (t - v0) stepv)
              else (ceil_div (t - v0) stepv, floor_div (0 - v0) stepv)
            in
            if lo > hi then None else Some (lo, hi)
        in
        match (interval x0 bx, interval y0 ax) with
        | Some (l1, h1), Some (l2, h2) ->
          if max l1 l2 <= min h1 h2 then `Yes else `No
        | _ -> `No
      end

(* ------------------------------------------------------------------ *)
(* Banerjee bound for one dimension under a direction prefix          *)
(* ------------------------------------------------------------------ *)

(* Direction constraint per loop: None = '*' (unconstrained). *)
let dim_admits p (d : dim_pair) (dirs : direction option array) : bool =
  if not d.usable then true
  else begin
    (* range of  Σk (a_k·α_k − b_k·β_k)  + c  ∋ 0 ? *)
    let total = ref (Fin d.c, Fin d.c) in
    let empty = ref false in
    for k = 0 to p.nloops - 1 do
      let a = d.a.(k) and b = d.b.(k) in
      let t = p.trips.(k) in
      let bounded = p.lo_known.(k) in
      (* a single iteration variable's range: [0,T] when the lower
         bound is known, all integers otherwise *)
      let var_range c =
        if c = 0 then (Fin 0, Fin 0)
        else if bounded then range_scale c t
        else (NInf, PInf)
      in
      (match t with Some tt when tt < 0 -> empty := true | _ -> ());
      let r =
        match dirs.(k) with
        | None ->
          (* α, β independent *)
          add_range (var_range a) (var_range (-b))
        | Some Deq ->
          (* α = β = i: (a−b)·i *)
          var_range (a - b)
        | Some Dlt ->
          (* α < β: β = α + δ, δ ∈ [1, T], α free:
             (a−b)·α − b·δ  (over-approximate: ignore α+δ ≤ T coupling;
             δ ≥ 1 holds whatever the lower bound is) *)
          let t' = Option.map (fun x -> x - 1) t in
          (match t with
          | Some tt when tt < 1 -> empty := true
          | _ -> ());
          let alpha_range =
            if a - b = 0 then (Fin 0, Fin 0)
            else if bounded then range_scale (a - b) t'
            else (NInf, PInf)
          in
          add_range alpha_range (range_scale_from (-b) 1 t)
        | Some Dgt ->
          (* α > β: α = β + δ: (a−b)·β + a·δ *)
          let t' = Option.map (fun x -> x - 1) t in
          (match t with
          | Some tt when tt < 1 -> empty := true
          | _ -> ());
          let beta_range =
            if a - b = 0 then (Fin 0, Fin 0)
            else if bounded then range_scale (a - b) t'
            else (NInf, PInf)
          in
          add_range beta_range (range_scale_from a 1 t)
      in
      total := add_range !total r
    done;
    if !empty then false
    else
      let lo, hi = !total in
      xle lo (Fin 0) && xle (Fin 0) hi
  end

(* ------------------------------------------------------------------ *)
(* The solver                                                          *)
(* ------------------------------------------------------------------ *)

let all_star n = Array.make n None

let solve ?telemetry ?names (p : problem) : result =
  let tel =
    match telemetry with Some t -> t | None -> Telemetry.default ()
  in
  let n = p.nloops in
  let names =
    match names with
    | Some a -> a
    | None -> Array.init n (fun k -> Printf.sprintf "L%d" (k + 1))
  in
  let assumptions = assumptions_of p names in
  let prov tier outcome =
    { Explain.Provenance.tier; outcome; pair = None; loops = names;
      assumptions }
  in
  let disproved test =
    Independent { test; prov = prov test Explain.Provenance.Disproved }
  in
  (* an unknown lower bound makes any trip value meaningless: the
     iteration variable ranges over all integers in raw mode *)
  let p =
    { p with
      trips = Array.mapi (fun i t -> if p.lo_known.(i) then t else None) p.trips
    }
  in
  (* 0. empty loops *)
  if Array.exists (function Some t -> t < 0 | None -> false) p.trips then
    disproved "empty-loop"
  else begin
    let usable = List.filter (fun d -> d.usable) p.dims in
    (* distance pinned per loop by strong-SIV dimensions *)
    let pinned = Array.make n None in
    let verdict = ref None in
    let decide test = if !verdict = None then verdict := Some test in
    let record_pin k delta =
      match pinned.(k) with
      | None -> pinned.(k) <- Some delta
      | Some d0 -> if d0 <> delta then decide "delta-inconsistent"
    in
    (* whether exactness can be claimed: all dims separable & solved *)
    let exact_ok = ref true in
    (* whether a pinned distance came out of delta propagation *)
    let delta_used = ref false in
    let seen_loop = Array.make n false in
    (* span names follow the classic tier taxonomy; SIV sub-variants
       (strong / weak-zero / weak-crossing / exact) share one lane *)
    let tier_of = function
      | [] -> "dtest.ziv"
      | [ _ ] -> "dtest.siv"
      | _ -> "dtest.gcd"
    in
    List.iter
      (fun d ->
        if !verdict = None then begin
          let pos = nonzero_positions d in
          Telemetry.span tel (tier_of pos) @@ fun () ->
          (* separability accounting *)
          List.iter
            (fun k ->
              if seen_loop.(k) then exact_ok := false else seen_loop.(k) <- true)
            pos;
          match pos with
          | [] ->
            (* ZIV *)
            if d.c <> 0 then decide "ziv"
          | [ k ] -> (
            let a = d.a.(k) and b = d.b.(k) in
            if a <> 0 && a = b then begin
              (* strong SIV: a(α−β) + c = 0 → δ = β−α = c/a *)
              if d.c mod a <> 0 then decide "strong-siv"
              else begin
                let delta = d.c / a in
                (match p.trips.(k) with
                | Some t when abs delta > t -> decide "strong-siv"
                | _ -> ());
                if !verdict = None then record_pin k delta
              end
            end
            else if a <> 0 && b = 0 then begin
              (* weak-zero: a·α + c = 0 *)
              if p.lo_known.(k) then
                match solve_single a (-d.c) p.trips.(k) with
                | `None -> decide "weak-zero-siv"
                | `Any | `One _ -> ()
              else if -d.c mod a <> 0 then decide "weak-zero-siv"
            end
            else if a = 0 && b <> 0 then begin
              if p.lo_known.(k) then
                match solve_single b d.c p.trips.(k) with
                | `None -> decide "weak-zero-siv"
                | `Any | `One _ -> ()
              else if d.c mod b <> 0 then decide "weak-zero-siv"
            end
            else if a <> 0 && a = -b then begin
              (* weak-crossing SIV: a(α + β) + c = 0 — the crossing
                 point α+β = −c/a must be a whole number, and within
                 [0, 2T] when the iteration range is known *)
              if -d.c mod a <> 0 then decide "weak-crossing-siv"
              else if p.lo_known.(k) then begin
                let s = -d.c / a in
                if s < 0 then decide "weak-crossing-siv"
                else
                  match p.trips.(k) with
                  | Some t when s > 2 * t -> decide "weak-crossing-siv"
                  | _ -> ()
              end
            end
            else if a <> 0 && b <> 0 then begin
              (* general SIV: a·α − b·β + c = 0 *)
              match exact_siv a b (-d.c) p.trips.(k) with
              | `No -> decide "exact-siv"
              | `Yes -> ()
              | `Yes_unbounded -> ()
            end)
          | _ :: _ :: _ ->
            (* MIV: GCD test *)
            let g =
              List.fold_left
                (fun acc k -> gcd (gcd acc d.a.(k)) d.b.(k))
                0 pos
            in
            if g <> 0 && d.c mod g <> 0 then decide "gcd"
            else exact_ok := false
        end)
      usable;
    (* unusable dims spoil exactness *)
    if List.length usable < List.length p.dims then exact_ok := false;
    (* delta propagation: a pinned distance δk turns βk into αk + δk in
       every other dimension — coupled MIV dims often collapse to SIV
       or ZIV and can then be disproved *)
    let delta_pass () =
      List.iter
        (fun d ->
          if !verdict = None then begin
            let pos = nonzero_positions d in
            let pinned_pos =
              List.filter (fun k -> pinned.(k) <> None) pos
            in
            if List.length pos > 1 && pinned_pos <> [] then begin
              (* reduce: for pinned k with a_k = b_k = a, the term
                 a·αk − a·(αk + δk) = −a·δk folds into the constant *)
              let c = ref d.c in
              let reducible =
                List.for_all
                  (fun k ->
                    match pinned.(k) with
                    | Some delta when d.a.(k) = d.b.(k) ->
                      c := !c - (d.b.(k) * delta);
                      true
                    | Some _ -> false
                    | None -> true)
                  pos
              in
              if reducible then begin
                let remaining =
                  List.filter (fun k -> pinned.(k) = None) pos
                in
                match remaining with
                | [] -> if !c <> 0 then decide "delta-ziv"
                | [ k ] ->
                  let a = d.a.(k) and b = d.b.(k) in
                  if a <> 0 && a = b then begin
                    if !c mod a <> 0 then decide "delta-siv"
                    else begin
                      let delta = !c / a in
                      (match p.trips.(k) with
                      | Some t when abs delta > t -> decide "delta-siv"
                      | _ -> ());
                      if !verdict = None then begin
                        delta_used := true;
                        record_pin k delta
                      end
                    end
                  end
                | _ :: _ :: _ -> ()
              end
            end
          end)
        usable
    in
    if !verdict = None && Array.exists Option.is_some pinned then
      Telemetry.span tel "dtest.delta" delta_pass;
    match !verdict with
    | Some test -> disproved test
    | None ->
      (* direction-vector refinement with pruning *)
      let survivors = ref [] in
      let vec = all_star n in
      let dirs_of_pin = function
        | d when d > 0 -> Dlt
        | 0 -> Deq
        | _ -> Dgt
      in
      let rec refine k =
        if k = n then begin
          if List.for_all (fun d -> dim_admits p d vec) p.dims then
            survivors := Array.map Option.get (Array.copy vec) :: !survivors
        end
        else begin
          let choices =
            match pinned.(k) with
            | Some delta -> [ dirs_of_pin delta ]
            | None -> [ Dlt; Deq; Dgt ]
          in
          List.iter
            (fun c ->
              vec.(k) <- Some c;
              (* prune on the prefix *)
              if List.for_all (fun d -> dim_admits p d vec) p.dims then
                refine (k + 1);
              vec.(k) <- None)
            choices
        end
      in
      Telemetry.span tel "dtest.banerjee" (fun () -> refine 0);
      let survivors = List.rev !survivors in
      if survivors = [] then disproved "banerjee"
      else begin
        let dist = pinned in
        (* A dependence is proven ("exact") when every dimension was
           usable, dimensions were separable, and every loop mentioned
           by a dimension got an exact pinned distance; loops no dim
           mentions don't affect existence. *)
        let exact =
          p.dims <> []
          && !exact_ok
          && List.for_all (fun d -> d.usable) p.dims
          && List.for_all
               (fun k ->
                 (pinned.(k) <> None && p.trips.(k) <> None
                 && p.trips_exact.(k))
                 || not
                      (List.exists
                         (fun d -> List.mem k (nonzero_positions d))
                         usable))
               (List.init n (fun i -> i))
        in
        (* finer attribution than the compatibility [test] field: the
           tier that decided the surviving dependence — exact SIV (or
           delta-propagated) distances prove it, Banerjee refinement
           merely failed to disprove it, and a pair with no usable
           dimension was never really tested *)
        let tier =
          if usable = [] then "unanalyzable"
          else if exact then if !delta_used then "delta" else "siv"
          else "banerjee"
        in
        let outcome =
          if exact then Explain.Provenance.Proven
          else Explain.Provenance.Assumed
        in
        Dependent
          { dirs = survivors; dist; exact; test = "hierarchy";
            prov = prov tier outcome }
      end
  end

(* ------------------------------------------------------------------ *)
(* Building a problem from analyzed references                         *)
(* ------------------------------------------------------------------ *)

let split_dims n (common : Subscript.norm_loop list) (l : Linear.t) :
    int array * Linear.t =
  let coeffs = Array.make n 0 in
  let rest = ref l in
  List.iteri
    (fun k nl ->
      let c, r = Linear.split nl.Subscript.tau !rest in
      coeffs.(k) <- c;
      rest := r)
    common;
  (coeffs, !rest)

let test_pair ?telemetry (env : Depenv.t) ~(common : Subscript.norm_loop list)
    ~(src : Ast.stmt_id * Subscript.dim list)
    ~(dst : Ast.stmt_id * Subscript.dim list) : result =
  let n = List.length common in
  let trips = Array.of_list (List.map (fun nl -> nl.Subscript.trip) common) in
  let trips_exact =
    Array.of_list (List.map (fun nl -> nl.Subscript.trip_exact) common)
  in
  let lo_known =
    Array.of_list (List.map (fun nl -> nl.Subscript.lo_known) common)
  in
  let src_sid, src_dims = src and dst_sid, dst_dims = dst in
  let dims =
    if List.length src_dims <> List.length dst_dims then
      (* linearized/mismatched usage: no usable dimension *)
      [ { a = Array.make n 0; b = Array.make n 0; c = 0; usable = false } ]
    else
      List.map2
        (fun d1 d2 ->
          match (d1, d2) with
          | Subscript.Lin l1, Subscript.Lin l2
            when Subscript.dim_symbols_ok env ~common ~src:src_sid
                   ~dst:dst_sid (d1, d2) ->
            let a, rest1 = split_dims n common l1 in
            let b, rest2 = split_dims n common l2 in
            let resid = Linear.sub rest1 rest2 in
            (match Linear.is_const resid with
            | Some c -> { a; b; c; usable = true }
            | None ->
              { a = Array.make n 0; b = Array.make n 0; c = 0; usable = false })
          | _ ->
            { a = Array.make n 0; b = Array.make n 0; c = 0; usable = false })
        src_dims dst_dims
  in
  let names =
    Array.of_list
      (List.map
         (fun nl -> nl.Subscript.nloop.Loopnest.header.Ast.dvar)
         common)
  in
  solve ?telemetry ~names { nloops = n; trips; trips_exact; lo_known; dims }

(* ------------------------------------------------------------------ *)
(* Brute-force oracle (for tests)                                      *)
(* ------------------------------------------------------------------ *)

let brute_force (p : problem) ~bound : direction array list =
  let n = p.nloops in
  let lo k = if p.lo_known.(k) then 0 else -bound in
  let trip k =
    match p.trips.(k) with Some t -> min t bound | None -> bound
  in
  let found = Hashtbl.create 16 in
  let alpha = Array.make n 0 and beta = Array.make n 0 in
  let dim_holds (d : dim_pair) =
    (not d.usable)
    ||
    let v = ref d.c in
    for k = 0 to n - 1 do
      v := !v + (d.a.(k) * alpha.(k)) - (d.b.(k) * beta.(k))
    done;
    !v = 0
  in
  let rec loop_a k =
    if k = n then loop_b 0
    else
      for i = lo k to trip k do
        alpha.(k) <- i;
        loop_a (k + 1)
      done
  and loop_b k =
    if k = n then begin
      if List.for_all dim_holds p.dims then begin
        let dv =
          Array.init n (fun k ->
              if alpha.(k) < beta.(k) then Dlt
              else if alpha.(k) = beta.(k) then Deq
              else Dgt)
        in
        Hashtbl.replace found dv ()
      end
    end
    else
      for i = lo k to trip k do
        beta.(k) <- i;
        loop_b (k + 1)
      done
  in
  if not (Array.exists (function Some t -> t < 0 | None -> false) p.trips)
  then loop_a 0;
  Hashtbl.fold (fun k () acc -> k :: acc) found [] |> List.sort compare
