(** The dependence graph — what Ped's dependence pane displays.

    For every loop nest, every pair of references to the same array
    (at least one a write) is tested with the {!Dtest} hierarchy;
    scalar dependences come from variable classification and def-use
    chains; control dependences from the CFG.  Each edge records its
    type, the variable, direction/distance vectors over the common
    loops, the carrying loop, and whether the dependence was {e
    proven} by an exact test or merely {e assumed} (pending) — the
    editor's marking states build directly on this.

    Statistics of which test disposed of each pair are kept for the
    evaluation tables. *)

open Fortran_front

type kind = Flow | Anti | Output | Control

val kind_to_string : kind -> string

type dep = {
  dep_id : int;
  kind : kind;
  var : string;
  src : Ast.stmt_id;
  dst : Ast.stmt_id;
  src_ref : Ast.expr option;  (** the source array reference, if any *)
  dst_ref : Ast.expr option;
  level : int option;
      (** carrying position within the common nest (1 = outermost);
          [None] = loop independent *)
  carrier : Ast.stmt_id option;  (** the carrying DO statement *)
  dirs : Dtest.direction array list;  (** over the common loops *)
  dist : int option array;
  exact : bool;  (** proven by an exact test (editor mark: proven) *)
  test : string;
  is_scalar : bool;
  prov : Explain.Provenance.t;
      (** why this edge exists: the deciding tier, its outcome, the
          tested reference pair, and the assumptions consulted *)
}

val pp_dep : Format.formatter -> dep -> unit

(** A disproved reference pair — the entry of the no-dependence table
    that answers "why is there NO dependence here?". *)
type nodep = {
  nd_var : string;
  nd_src : Ast.stmt_id;
  nd_dst : Ast.stmt_id;
  nd_prov : Explain.Provenance.t;
}

(** Dependence-test statistics: how many reference pairs each test
    disproved, how many dependences were proven vs assumed. *)
type stats = {
  pairs_tested : int;
  disproved : (string * int) list;  (** per test name *)
  proven : int;
  pending : int;
}

type t = { deps : dep list; nodeps : nodep list; stats : stats }

(** A memo table for the expensive array-dependence pair tests.

    The unit body is partitioned into top-level statement groups (a
    whole DO nest is one group); every ordered pair of groups is
    tested as one {e bucket}, keyed by a digest of the two groups'
    statements, call side effects, reaching scalar environment, and
    the global assertion/config/alias state.  Passing the same cache
    to successive {!compute} calls replays unchanged buckets instead
    of re-running their dependence tests.  A cache may be shared
    across program versions and units; stale entries are simply never
    hit again.

    The cache is domain-safe: the bucket table is mutex-guarded and
    the run counters are atomics, so one cache may serve concurrent
    bucket tests — several domains inside one {!compute}, or several
    sessions of a batch server. *)
type cache

val make_cache : unit -> cache

(** [(tests_executed, bucket_hits, bucket_misses)] accumulated over
    every [compute ~cache] call: pair tests actually run (cache
    misses only), buckets served from the table, buckets computed. *)
val cache_counters : cache -> int * int * int

(** Number of memoized buckets in the table. *)
val cache_entries : cache -> int

(** Marshal the memo table (pure data — no closures) for the
    persistent cross-process cache.  Counters are not included. *)
val export_cache : cache -> string

(** [import_cache s ~into] — add the buckets serialized by
    {!export_cache} to [into], keeping existing entries on key
    collision; returns the number of buckets added.  Raises
    [Failure] on malformed input (the caller guards the payload with
    its own format fingerprint). *)
val import_cache : string -> into:cache -> int

(** {2 Staged construction}

    {!compute} is a pipeline of three explicit, pure stages, exposed
    so callers (and tests) can drive — or fan out — the expensive
    middle stage themselves:

    {ul
    {- {!plan} enumerates the unit's reference-pair buckets as
       {!task}s in canonical group order (cheap);}
    {- {!test} runs one bucket.  It reads only the immutable plan, so
       distinct tasks may run concurrently on distinct domains;}
    {- {!assemble} merges one {!outcome} per planned task — plus the
       sequential scalar and control-dependence passes — into a graph
       in canonical task order, so the result is independent of the
       order in which buckets finished.}} *)

(** One unit of parallel work: every eligible reference pair between
    two top-level statement groups.  [t_key] is the bucket's
    memo-table digest, present iff the plan was built [~keyed]. *)
type task = { t_g1 : int; t_g2 : int; t_key : string option }

(** The immutable context shared by all stages — the replacement for
    the mutable state the old single-pass [compute] threaded through
    its inner closures.  Stages only ever read it. *)
type plan

(** Result of one bucket of pair tests; pure data. *)
type bucket

type outcome = { o_bucket : bucket; o_cached : bool }

(** [plan ?keyed env] — stage 1.  With [~keyed:true] every task also
    carries its cache digest (the extra cost is one signature pass
    over the unit). *)
val plan : ?telemetry:Telemetry.sink -> ?keyed:bool -> Depenv.t -> plan

(** The planned tasks, in canonical (g1, g2) lexicographic order. *)
val tasks : plan -> task array

(** [test p task] — stage 2: run one bucket.  Pure and domain-safe:
    reads only [p].  Emits a [ddg.bucket] span on the executing
    domain (one trace lane per domain under a parallel run). *)
val test : plan -> task -> bucket

(** [assemble p outcomes] — stage 3.  [outcomes] must align with
    {!tasks} (same length and order); raises [Invalid_argument]
    otherwise.  [o_cached] marks buckets replayed from a cache — they
    are excluded from the executed-test telemetry. *)
val assemble : plan -> outcome array -> t

(** How {!compute} fans bucket tests out: an injected task runner
    mapping an array of thunks to their results, in order.  The
    record keeps this library free of any dependency on
    [Runtime.Pool]; [Runtime.Pool.analysis_runner] builds one over a
    domain pool. *)
type runner = { run_tasks : 'a. (unit -> 'a) array -> 'a array }

(** [compute ?cache ?runner env] — dependence graph of the whole
    unit, honouring [env]'s config and assertions.  With [cache],
    array dependence testing is served bucket-wise from the memo
    table; with [runner], the buckets the cache could not serve are
    fanned out through it.  The result is structurally identical to a
    sequential cacheless build (dep ids are renumbered in canonical
    emission order) — the invariant the determinism tests pin.

    [telemetry] (default: the process {!Telemetry.default} sink)
    receives a [ddg.compute] span, one [ddg.bucket] span per computed
    bucket (on the domain that ran it), and counters:
    [ddg.pairs_tested] (all pairs, including cache-replayed),
    [ddg.tests_executed] (pair tests actually run),
    [ddg.bucket_hits]/[ddg.bucket_misses], [ddg.deps_proven]/
    [ddg.deps_pending], [dtest.disproved.<test>], and the per-tier
    provenance tallies [dtest.assumed.<tier>] / [dtest.proven.<tier>]. *)
val compute :
  ?cache:cache -> ?telemetry:Telemetry.sink -> ?runner:runner -> Depenv.t -> t

(** Structural identity of two graphs (deps and statistics).  Cache-
    assisted, engine-served and from-scratch builds of the same unit
    must all be [equal] — the invariant the engine fuzz tests pin. *)
val equal : t -> t -> bool

(** The dependence with the given id, if any. *)
val find_dep : t -> int -> dep option

(** [why_no t ~src ~dst] — the disproved reference pairs between the
    two statements, in either orientation: the provenance of the
    absence of a dependence. *)
val why_no : t -> src:Ast.stmt_id -> dst:Ast.stmt_id -> nodep list

(** Edges grouped by the provenance tier that decided them, sorted by
    tier name — the precision dashboard's raw material.  [assumed] and
    [proven] partition {!t.deps}; [disproved] tallies {!t.nodeps} (and
    agrees with {!stats.disproved} on the array pairs). *)
val assumed_by_tier : t -> (string * int) list

val proven_by_tier : t -> (string * int) list
val disproved_by_tier : t -> (string * int) list

(** Dependences carried by the given loop. *)
val carried_by : t -> Ast.stmt_id -> dep list

(** Dependences whose endpoints both lie in the given loop's body
    (the dependence-pane contents when that loop is selected). *)
val deps_in_loop : Depenv.t -> t -> Ast.stmt_id -> dep list

(** [parallelizable ?ignore env t loop_sid] — no flow/anti/output
    dependence is carried by the loop.  [ignore] lists dependence ids
    the user rejected. *)
val parallelizable :
  ?ignore:int list -> Depenv.t -> t -> Ast.stmt_id -> bool

(** The carried dependences blocking parallelization (empty means
    parallelizable). *)
val blocking : ?ignore:int list -> Depenv.t -> t -> Ast.stmt_id -> dep list

(** Graphviz rendering of the dependences inside a loop (or, with no
    loop, the whole unit): statements are nodes, dependences are
    labeled edges — the graphical dependence display Ped users asked
    for. *)
val dot : ?loop:Ast.stmt_id -> Depenv.t -> t -> string
