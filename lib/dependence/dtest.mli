(** The hierarchical dependence test suite.

    Ped locates data dependences by testing pairs of array references
    with a battery of tests ordered from cheap to expensive, stopping
    as soon as one proves or disproves the dependence:

    + empty-loop (a common loop with a negative trip count),
    + ZIV (no induction variable: constant difference),
    + strong SIV (equal coefficients: exact distance),
    + weak-zero SIV (one side constant: exact crossing point),
    + exact SIV (general 2-variable Diophantine with bounds),
    + GCD (divisibility over all coefficients),
    + Banerjee bounds with hierarchical direction-vector refinement.

    The pure core ({!solve}) operates on a {!problem} of linear
    subscript pairs over normalized iteration counters; the test suite
    checks it against brute-force iteration-space search.

    Outcomes mirror Ped's dependence marking: [Independent] dependences
    disappear, [exact] dependences are {e proven}, the rest are
    {e pending} — the user may reject them with assertions. *)

open Fortran_front

type direction = Dlt | Deq | Dgt

val direction_to_string : direction -> string

(** One subscript dimension of a reference pair: the source reference
    is [Σ a.(k)·αk + (its constants)], the destination
    [Σ b.(k)·βk + ...]; [c] is the residual constant difference
    (source minus destination) after symbolic cancellation.  [usable]
    is false when the dimension was nonlinear or had un-cancellable
    symbols — such a dimension constrains nothing. *)
type dim_pair = { a : int array; b : int array; c : int; usable : bool }

type problem = {
  nloops : int;                (** number of common loops *)
  trips : int option array;    (** τ ranges over 0..trip; None = unknown *)
  trips_exact : bool array;
      (** false when the trip is an asserted upper bound only — fine
          for disproofs, but proofs of existence must not rely on it *)
  lo_known : bool array;
      (** per loop: false when τ is a raw induction variable with
          unknown bounds and may be negative (see
          {!Subscript.norm_loop.lo_known}) *)
  dims : dim_pair list;
}

type result =
  | Independent of {
      test : string;
      prov : Explain.Provenance.t;  (** why the pair was disproved *)
    }
  | Dependent of {
      dirs : direction array list;  (** surviving direction vectors *)
      dist : int option array;      (** per-loop exact distance if pinned *)
      exact : bool;                 (** proven to exist (→ "proven" mark) *)
      test : string;                (** deciding test, for statistics *)
      prov : Explain.Provenance.t;
          (** tier that decided ([siv] / [delta] / [banerjee] /
              [unanalyzable]) and the assumptions consulted *)
    }

(** [solve p] runs the battery.  With [p.dims = []] (e.g. scalar or
    unanalyzable pair) the result is a maybe-dependence with all
    direction vectors.  [names] labels the common loops in the
    provenance record (default [L1], [L2], ...).  When [telemetry]
    (default: the process {!Telemetry.default} sink) is recording,
    each tier examined emits a span ([dtest.ziv] / [dtest.siv] /
    [dtest.gcd] / [dtest.delta] / [dtest.banerjee]). *)
val solve :
  ?telemetry:Telemetry.sink -> ?names:string array -> problem -> result

(** [test_pair env ~common ~src ~dst] — build the {!problem} for two
    array references (given as statement id and analyzed subscript
    dimensions) and solve it.  Dimension-count mismatch (linearized
    array usage) degrades to an unanalyzable problem, as in Ped. *)
val test_pair :
  ?telemetry:Telemetry.sink ->
  Depenv.t ->
  common:Subscript.norm_loop list ->
  src:Ast.stmt_id * Subscript.dim list ->
  dst:Ast.stmt_id * Subscript.dim list ->
  result

(** [brute_force p ~bound] — reference oracle: search the iteration
    space exhaustively (unknown trips replaced by [bound]; raw-mode
    loops range over [-bound..bound]) for a solution of every usable
    dimension; returns the set of direction vectors realized.
    Exposed for the property-based tests. *)
val brute_force : problem -> bound:int -> direction array list
