(** The editor session — Ped's central state.

    A session holds the program being edited, the focus unit, the
    current analyses (re-run after every change, as Ped reanalyzes
    incrementally), dependence markings, user assertions,
    user-privatized variables, view filters, the selected loop and an
    undo stack.

    Parallelizability as the editor reports it respects the user's
    contributions: rejected dependences are ignored and
    user-privatized scalars drop their dependences — exactly the
    "dependence deletion" workflow the evaluation describes. *)

open Fortran_front
open Dependence

type t = {
  mutable program : Ast.program;
  mutable unit_name : string;
  mutable env : Depenv.t;
  mutable ddg : Ddg.t;
  mutable marking : Marking.t;
  mutable asserts : Depenv.assertions;
  mutable user_private : (Ast.stmt_id * string) list;
  mutable selected : Ast.stmt_id option;
  mutable dep_filter : Filter.dep_filter;
  mutable src_filter : Filter.src_filter;
  mutable undo_stack : (Ast.program * string) list;
  mutable sim_order : Sim.Interp.order;
      (** iteration order for simulated parallel loops — [Reverse] or
          [Shuffled] expose order-dependent (unsafe) parallelizations *)
  original : Ast.program;  (** as loaded, for the editor's diff view *)
  mutable interproc : Interproc.Summary.t option;
  use_interproc : bool;
  config : Depenv.config;
}

(** [load ?config ?interproc program ~unit_name] — start a session
    focused on [unit_name].  [interproc] (default true) runs
    whole-program analysis and feeds every CALL's side effects into
    the unit analyses. *)
val load :
  ?config:Depenv.config -> ?interproc:bool -> Ast.program ->
  unit_name:string -> t

(** Parse source text and load it. *)
val load_source :
  ?config:Depenv.config -> ?interproc:bool -> file:string -> string ->
  unit_name:string option -> t

(** Re-run all analyses (after edits, assertions, marking...). *)
val reanalyze : t -> unit

(** Switch the focus unit. *)
val focus : t -> string -> (unit, string) result

(** Loops of the focus unit, in preorder. *)
val loops : t -> Loopnest.loop list

val select : t -> Ast.stmt_id -> (unit, string) result

(** Dependences the dependence pane currently shows: the selected
    loop's (or the whole unit's), through the active filter. *)
val visible_deps : t -> Ddg.dep list

(** Dependences blocking parallelization of a loop, after markings and
    user privatization. *)
val blocking : t -> Ast.stmt_id -> Ddg.dep list

val is_parallelizable : t -> Ast.stmt_id -> bool

(** Loops that could be marked PARALLEL DO right now. *)
val parallelizable_loops : t -> Loopnest.loop list

(** {2 User contributions} *)

val mark_dep : t -> int -> Marking.status -> (unit, string) result

(** [assert_value t var n] — "[var] is [n]": feeds constant
    propagation and dependence testing. *)
val assert_value : t -> string -> int -> unit

(** [assert_injective t arr] — "[arr] is a permutation": index-array
    subscripts through [arr] compare by their argument. *)
val assert_injective : t -> string -> unit

(** [assert_range t var lo hi] — "[var] is between [lo] and [hi]":
    bounds trip counts (disproofs may use the upper end; existence
    proofs may not). *)
val assert_range : t -> string -> int -> int -> unit

(** [privatize t loop var] — user declares [var] private in [loop]. *)
val privatize : t -> Ast.stmt_id -> string -> unit

(** {2 Transformation and editing} *)

(** [preview t name args] — the power-steering diagnosis, without
    changing anything. *)
val preview :
  t -> string -> Transform.Catalog.args -> (Transform.Diagnosis.t, string) result

(** [transform ?force t name args] — diagnose and, when applicable and
    safe (or [force]d by the user, as Ped permits), apply and
    reanalyze.  Returns the diagnosis and whether it was applied. *)
val transform :
  ?force:bool -> t -> string -> Transform.Catalog.args ->
  (Transform.Diagnosis.t * bool, string) result

(** [edit_stmt t sid text] — replace a statement with re-parsed
    [text] (the source pane's editing), then reanalyze. *)
val edit_stmt : t -> Ast.stmt_id -> string -> (unit, string) result

val undo : t -> (unit, string) result

(** {2 Execution} *)

(** Simulate the whole program: (sequential cycles, parallel cycles,
    output lines). *)
val simulate :
  ?processors:int -> t -> (float * float * string list, string) result

(** Interprocedural callee-cost oracle over the session's program —
    feeds the estimator so calls are priced by their callee's body. *)
val callee_cost : t -> string -> float option
