(** The editor session — Ped's central state.

    A session holds the focus unit, dependence markings, user
    assertions, user-privatized variables, view filters, the selected
    loop and undo/redo stacks; the program itself and its analyses
    live in an incremental {!Engine} the session queries on demand.
    The session type is abstract: every program mutation funnels
    through the engine's single post-edit hook, so callers cannot
    bypass invalidation by poking state directly — and no command can
    forget (or double-pay for) reanalysis.

    Parallelizability as the editor reports it respects the user's
    contributions: rejected dependences are ignored and
    user-privatized scalars drop their dependences — exactly the
    "dependence deletion" workflow the evaluation describes. *)

open Fortran_front
open Dependence

type t

(** [load ?config ?interproc ?caching program ~unit_name] — start a
    session focused on [unit_name].  [interproc] (default true) runs
    whole-program analysis and feeds every CALL's side effects into
    the unit analyses.  [caching] (default true) selects the
    incremental engine; [~caching:false] recomputes everything after
    every change — the from-scratch baseline the bench harness
    measures against.  [sharing] hooks the engine into a cross-session
    cache (the analysis server's).  [runner] fans dependence-test
    buckets out across a domain pool on every (re)analysis
    ([Runtime.Pool.analysis_runner]); results are identical with or
    without it.  [history_limit] (default 1000, must
    be >= 1) bounds the undo stack: the oldest entries are dropped once
    it is full, so long-running server sessions don't grow memory
    linearly in retained program snapshots.  [telemetry] is handed to
    the engine, so the interactive, bench, fuzz and runtime paths can
    all emit to one sink (default: a fresh private sink per
    session). *)
val load :
  ?config:Depenv.config -> ?interproc:bool -> ?caching:bool ->
  ?sharing:Engine.sharing -> ?runner:Ddg.runner -> ?history_limit:int ->
  ?telemetry:Telemetry.sink ->
  Ast.program -> unit_name:string -> t

(** Parse source text and load it. *)
val load_source :
  ?config:Depenv.config -> ?interproc:bool -> ?caching:bool ->
  ?sharing:Engine.sharing -> ?runner:Ddg.runner -> ?history_limit:int ->
  ?telemetry:Telemetry.sink ->
  file:string -> string -> unit_name:string option -> t

(** {2 State accessors} *)

val program : t -> Ast.program
val unit_name : t -> string

(** Scalar environment of the focus unit (engine-served). *)
val env : t -> Depenv.t

(** Dependence graph of the focus unit (engine-served). *)
val ddg : t -> Ddg.t

val marking : t -> Marking.t
val assertions : t -> Depenv.assertions
val user_private : t -> (Ast.stmt_id * string) list
val selected : t -> Ast.stmt_id option

(** The program as loaded, for the editor's diff view. *)
val original : t -> Ast.program

val config : t -> Depenv.config

(** The interprocedural summary ([None] when loaded with
    [~interproc:false]). *)
val interproc : t -> Interproc.Summary.t option

val dep_filter : t -> Filter.dep_filter
val set_dep_filter : t -> Filter.dep_filter -> unit
val src_filter : t -> Filter.src_filter
val set_src_filter : t -> Filter.src_filter -> unit

(** Iteration order for simulated parallel loops — [Reverse] or
    [Shuffled] expose order-dependent (unsafe) parallelizations. *)
val sim_order : t -> Sim.Interp.order

val set_sim_order : t -> Sim.Interp.order -> unit

(** Labels of the changes on the undo stack, newest first. *)
val history : t -> string list

(** The bound on the undo stack this session was loaded with. *)
val history_limit : t -> int

(** Engine cache statistics (the [engine] command, [--engine-stats]). *)
val engine_stats : t -> Engine.stats

val engine_report : t -> string

(** The session's telemetry sink (the engine's). *)
val telemetry : t -> Telemetry.sink

(** {2 Analysis} *)

(** Force-refresh the focus unit's analyses through the engine (a
    cache-served no-op unless something actually changed).  Scripts
    and tests use it; commands never need to — every mutation already
    refreshes. *)
val reanalyze : t -> unit

(** Switch the focus unit. *)
val focus : t -> string -> (unit, string) result

(** Loops of the focus unit, in preorder. *)
val loops : t -> Loopnest.loop list

val select : t -> Ast.stmt_id -> (unit, string) result

(** Dependences the dependence pane currently shows: the selected
    loop's (or the whole unit's), through the active filter. *)
val visible_deps : t -> Ddg.dep list

(** Dependences blocking parallelization of a loop, after markings and
    user privatization. *)
val blocking : t -> Ast.stmt_id -> Ddg.dep list

val is_parallelizable : t -> Ast.stmt_id -> bool

(** Loops that could be marked PARALLEL DO right now. *)
val parallelizable_loops : t -> Loopnest.loop list

(** {2 User contributions} *)

val mark_dep : t -> int -> Marking.status -> (unit, string) result

(** [assert_value t var n] — "[var] is [n]": feeds constant
    propagation and dependence testing. *)
val assert_value : t -> string -> int -> unit

(** [assert_injective t arr] — "[arr] is a permutation": index-array
    subscripts through [arr] compare by their argument. *)
val assert_injective : t -> string -> unit

(** [assert_range t var lo hi] — "[var] is between [lo] and [hi]":
    bounds trip counts (disproofs may use the upper end; existence
    proofs may not). *)
val assert_range : t -> string -> int -> int -> unit

(** [privatize t loop var] — user declares [var] private in [loop]. *)
val privatize : t -> Ast.stmt_id -> string -> unit

(** {2 Transformation and editing} *)

(** [preview t name args] — the power-steering diagnosis, without
    changing anything. *)
val preview :
  t -> string -> Transform.Catalog.args -> (Transform.Diagnosis.t, string) result

(** [explain t name args] — the diagnosis exactly as [transform] would
    compute it: unlike [preview], it respects the session's user
    contributions (rejected dependences, privatized scalars).  The
    [explain] command pairs it with each blocking dependence's
    provenance chain. *)
val explain :
  t -> string -> Transform.Catalog.args -> (Transform.Diagnosis.t, string) result

(** [transform ?force t name args] — diagnose and, when applicable and
    safe (or [force]d by the user, as Ped permits), apply and refresh.
    Returns the diagnosis and whether it was applied; when the
    rewrite itself refuses, its diagnosis is returned with [false]. *)
val transform :
  ?force:bool -> t -> string -> Transform.Catalog.args ->
  (Transform.Diagnosis.t * bool, string) result

(** [edit_stmt t sid text] — replace a statement with re-parsed
    [text] (the source pane's editing), then refresh. *)
val edit_stmt : t -> Ast.stmt_id -> string -> (unit, string) result

val undo : t -> (unit, string) result
val redo : t -> (unit, string) result

(** {2 Execution} *)

(** Simulate the whole program: (sequential cycles, parallel cycles,
    output lines). *)
val simulate :
  ?processors:int -> t -> (float * float * string list, string) result

(** Interprocedural callee-cost oracle over the session's program —
    feeds the estimator so calls are priced by their callee's body. *)
val callee_cost : t -> string -> float option
