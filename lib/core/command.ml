open Fortran_front
open Dependence

let help_text =
  String.concat "\n"
    [
      "commands:";
      "  units | unit NAME | loops | select sN | outline | callgraph [dot]";
      "  src [loops|find TEXT|all]";
      "  deps [var X|kind true/anti/output/control|carried|status S|scalar|all|reset]";
      "  deps dot    (Graphviz of the selection's dependences)";
      "  vars | display | stats";
      "  mark N accept|reject|pending";
      "  assert VAR = N | assert VAR in LO HI | assert perm ARR | private sN VAR";
      "  why N | why sA:sB   (provenance of a dependence / of its absence)";
      "  why slow [sN]       (run and diagnose parallel performance)";
      "  explain T ARGS      (diagnosis plus the blocking edges' provenance)";
      "  preview T ARGS | apply T ARGS [!] | edit sN TEXT | undo | redo | history";
      "  diff (changes vs the loaded program) | write FILE";
      "  estimate [P] | advise | simulate [P] [seq|reverse|shuffle [SEED]]";
      "  engine (incremental-analysis cache statistics)";
      "transformations: " ^ String.concat ", " Transform.Catalog.names;
    ]

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

(* Statement targets: [sN] is a statement id; [lN] is the N-th loop of
   the focus unit in preorder (1-based) — stable across reloads, which
   statement ids are not, so scripts use it. *)
let parse_sid t tok =
  if String.length tok > 1 && tok.[0] = 's' then
    int_of_string_opt (String.sub tok 1 (String.length tok - 1))
  else if String.length tok > 1 && tok.[0] = 'l' then
    match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
    | Some n -> (
      match List.nth_opt (Session.loops t) (n - 1) with
      | Some lp -> Some lp.Dependence.Loopnest.lstmt.Ast.sid
      | None -> None)
    | None -> None
  else None

let parse_transform_args t toks : Transform.Catalog.args option =
  match toks with
  | [ a ] -> Option.map (fun s -> Transform.Catalog.On_loop s) (parse_sid t a)
  | [ a; b ] -> (
    match (parse_sid t a, parse_sid t b) with
    | Some x, Some y -> Some (Transform.Catalog.On_pair (x, y))
    | Some x, None -> (
      match int_of_string_opt b with
      | Some n -> Some (Transform.Catalog.With_factor (x, n))
      | None -> Some (Transform.Catalog.With_var (x, String.uppercase_ascii b)))
    | _ -> None)
  | _ -> None

let dep_kind_of_string = function
  | "true" | "flow" -> Some Ddg.Flow
  | "anti" -> Some Ddg.Anti
  | "output" -> Some Ddg.Output
  | "control" -> Some Ddg.Control
  | _ -> None

let status_of_string = function
  | "proven" -> Some Marking.Proven
  | "pending" -> Some Marking.Pending
  | "accepted" | "accept" -> Some Marking.Accepted
  | "rejected" | "reject" -> Some Marking.Rejected
  | _ -> None

let rec update_filter t (f : Filter.dep_filter) toks =
  match toks with
  | [] -> Ok f
  | "var" :: v :: rest ->
    update_filter t { f with Filter.f_var = Some (String.uppercase_ascii v) } rest
  | "kind" :: k :: rest -> (
    match dep_kind_of_string k with
    | Some kind ->
      update_filter t
        { f with Filter.f_kind = Some kind; f_hide_control = false }
        rest
    | None -> Error (Printf.sprintf "unknown dependence kind %s" k))
  | "carried" :: rest -> update_filter t { f with Filter.f_carried_only = true } rest
  | "scalar" :: rest -> update_filter t { f with Filter.f_hide_scalar = true } rest
  | "status" :: s :: rest -> (
    match status_of_string s with
    | Some st -> update_filter t { f with Filter.f_status = Some st } rest
    | None -> Error (Printf.sprintf "unknown status %s" s))
  | "all" :: rest -> update_filter t Filter.show_all rest
  | "reset" :: rest -> update_filter t Filter.default_dep_filter rest
  | tok :: rest -> (
    match parse_sid t tok with
    | Some sid -> update_filter t { f with Filter.f_stmt = Some sid } rest
    | None -> Error (Printf.sprintf "unknown filter word %s" tok))

(* The why command's pair form: every tested outcome between two
   statements — surviving edges with their provenance, and the
   disproved-pair table's answer to "why is there NO dependence". *)
let why_pair t ~src ~dst =
  let ddg = Session.ddg t in
  let deps =
    List.filter
      (fun (d : Ddg.dep) ->
        (d.Ddg.src = src && d.Ddg.dst = dst)
        || (d.Ddg.src = dst && d.Ddg.dst = src))
      ddg.Ddg.deps
  in
  let nodeps = Ddg.why_no ddg ~src ~dst in
  let dep_blocks =
    List.map
      (fun (d : Ddg.dep) ->
        Explain.Chain.render_to_string
          ~header:(Format.asprintf "#%d %a" d.Ddg.dep_id Ddg.pp_dep d)
          d.Ddg.prov)
      deps
  in
  let nodep_blocks =
    List.map
      (fun (nd : Ddg.nodep) ->
        Explain.Chain.render_to_string
          ~header:
            (Printf.sprintf "no dependence on %s: s%d -> s%d" nd.Ddg.nd_var
               nd.Ddg.nd_src nd.Ddg.nd_dst)
          nd.Ddg.nd_prov)
      nodeps
  in
  match dep_blocks @ nodep_blocks with
  | [] ->
    Printf.sprintf "nothing recorded between s%d and s%d (no pair tested)" src
      dst
  | blocks -> String.concat "\n" blocks

let why_dep t id =
  match Ddg.find_dep (Session.ddg t) id with
  | Some d ->
    Explain.Chain.render_to_string
      ~header:(Format.asprintf "#%d %a" d.Ddg.dep_id Ddg.pp_dep d)
      d.Ddg.prov
  | None -> Printf.sprintf "error: no dependence #%d" id

(* The explain command walks from a diagnosis to the provenance of
   each blocking edge it names. *)
let explain_transform t name args =
  match Session.explain t name args with
  | Error e -> "error: " ^ e
  | Ok d ->
    let blocking = Transform.Diagnosis.blocking d in
    let chains =
      List.map
        (fun id ->
          match Ddg.find_dep (Session.ddg t) id with
          | Some dep ->
            Explain.Chain.render_to_string
              ~header:(Format.asprintf "#%d %a" id Ddg.pp_dep dep)
              dep.Ddg.prov
          | None ->
            Printf.sprintf
              "#%d (edge of the transformed candidate, not in the current \
               graph)"
              id)
        blocking
    in
    String.concat "\n"
      (Transform.Diagnosis.to_string d
      ::
      (if blocking = [] then []
       else "blocking dependences:" :: chains))

(* A minimal LCS diff over source lines, for the [diff] command. *)
let line_diff (a : string array) (b : string array) : string list =
  let n = Array.length a and m = Array.length b in
  let lcs = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      lcs.(i).(j) <-
        (if String.equal a.(i) b.(j) then 1 + lcs.(i + 1).(j + 1)
         else max lcs.(i + 1).(j) lcs.(i).(j + 1))
    done
  done;
  let out = ref [] in
  let rec walk i j =
    if i < n && j < m && String.equal a.(i) b.(j) then begin
      out := ("  " ^ a.(i)) :: !out;
      walk (i + 1) (j + 1)
    end
    else if j < m && (i = n || lcs.(i).(j + 1) >= lcs.(i + 1).(j)) then begin
      out := ("+ " ^ b.(j)) :: !out;
      walk i (j + 1)
    end
    else if i < n then begin
      out := ("- " ^ a.(i)) :: !out;
      walk (i + 1) j
    end
  in
  walk 0 0;
  List.rev !out

let run (t : Session.t) (line : string) : string =
  let line = String.trim line in
  match tokens line with
  | [] -> ""
  | "help" :: _ -> help_text
  | "units" :: _ ->
    String.concat "\n"
      (List.map
         (fun (u : Ast.program_unit) ->
           Printf.sprintf "%s%s" u.Ast.uname
             (if String.equal u.Ast.uname (Session.unit_name t) then
                "   <- focus"
              else ""))
         (Session.program t).Ast.punits)
  | [ "unit"; name ] -> (
    match Session.focus t (String.uppercase_ascii name) with
    | Ok () -> Printf.sprintf "focused on %s" (String.uppercase_ascii name)
    | Error e -> "error: " ^ e)
  | "loops" :: _ -> Pane.loops_pane t
  | [ "select"; s ] -> (
    match parse_sid t s with
    | Some sid -> (
      match Session.select t sid with
      | Ok () -> Printf.sprintf "selected loop s%d" sid
      | Error e -> "error: " ^ e)
    | None -> "error: expected a target like s12 or l2")
  | "src" :: rest ->
    (match rest with
    | [ "loops" ] -> Session.set_src_filter t Filter.Src_loops
    | "find" :: words ->
      Session.set_src_filter t
        (Filter.Src_contains (String.uppercase_ascii (String.concat " " words)))
    | [ "all" ] | [] -> Session.set_src_filter t Filter.Src_all
    | _ -> ());
    Pane.source_pane t
  | [ "deps"; "dot" ] ->
    Ddg.dot ?loop:(Session.selected t) (Session.env t) (Session.ddg t)
  | "deps" :: rest -> (
    match update_filter t (Session.dep_filter t) rest with
    | Ok f ->
      Session.set_dep_filter t f;
      Pane.dependence_pane t
    | Error e -> "error: " ^ e)
  | "vars" :: _ -> Pane.variable_pane t
  | "display" :: _ -> Pane.full_display t
  | "callgraph" :: rest -> (
    match Session.interproc t with
    | None -> "error: interprocedural analysis is off (reload without --no-interproc)"
    | Some summary ->
      let cg = Interproc.Summary.callgraph summary in
      if rest = [ "dot" ] then Interproc.Callgraph.dot cg
      else
        String.concat "\n"
          (List.map
             (fun name ->
               let callees = Interproc.Callgraph.callees_of cg name in
               if callees = [] then Printf.sprintf "%s" name
               else
                 Printf.sprintf "%s -> %s" name (String.concat ", " callees))
             (Interproc.Callgraph.unit_names cg)))
  | "outline" :: _ -> (
    (* progressive disclosure: loops and calls only, with nesting *)
    match
      List.find_opt
        (fun (u : Ast.program_unit) ->
          String.equal u.Ast.uname (Session.unit_name t))
        (Session.program t).Ast.punits
    with
    | None -> "error: no focus unit"
    | Some u ->
      let buf = Buffer.create 256 in
      let rec walk depth stmts =
        List.iter
          (fun (s : Ast.stmt) ->
            match s.Ast.node with
            | Ast.Do (h, body) ->
              Buffer.add_string buf
                (Printf.sprintf "%ss%-4d %s%sDO %s = %s, %s\n"
                   (String.make 2 ' ') s.Ast.sid
                   (String.make (2 * depth) ' ')
                   (if h.Ast.parallel then "PARALLEL " else "")
                   h.Ast.dvar
                   (Pretty.expr_to_string h.Ast.lo)
                   (Pretty.expr_to_string h.Ast.hi));
              walk (depth + 1) body
            | Ast.Call (name, _) ->
              Buffer.add_string buf
                (Printf.sprintf "%ss%-4d %sCALL %s\n" (String.make 2 ' ')
                   s.Ast.sid
                   (String.make (2 * depth) ' ')
                   name)
            | Ast.If (branches, els) ->
              List.iter (fun (_, b) -> walk depth b) branches;
              walk depth els
            | _ -> ())
          stmts
      in
      Buffer.add_string buf (Printf.sprintf "outline of %s:\n" u.Ast.uname);
      walk 0 u.Ast.body;
      Buffer.contents buf)
  | "stats" :: _ ->
    let s = (Session.ddg t).Ddg.stats in
    String.concat "\n"
      (Printf.sprintf "reference pairs tested: %d" s.Ddg.pairs_tested
      :: Printf.sprintf "dependences: %d proven, %d pending" s.Ddg.proven
           s.Ddg.pending
      :: List.map
           (fun (test, n) -> Printf.sprintf "  disproved by %-14s %d" test n)
           s.Ddg.disproved)
  | [ "mark"; n; how ] -> (
    match (int_of_string_opt n, status_of_string how) with
    | Some id, Some status -> (
      let proven_warning =
        match
          List.find_opt
            (fun (d : Ddg.dep) -> d.Ddg.dep_id = id)
            (Session.ddg t).Ddg.deps
        with
        | Some d when d.Ddg.exact && status = Marking.Rejected ->
          "\nwarning: this dependence was proven by an exact test"
        | _ -> ""
      in
      match Session.mark_dep t id status with
      | Ok () ->
        Printf.sprintf "dependence #%d marked %s%s" id
          (Marking.status_to_string status)
          proven_warning
      | Error e -> "error: " ^ e)
    | _ -> "error: usage: mark N accept|reject|pending")
  | [ "assert"; "perm"; arr ] ->
    let arr = String.uppercase_ascii arr in
    Session.assert_injective t arr;
    Printf.sprintf "asserted: %s is a permutation (injective)" arr
  | [ "assert"; var; "in"; lo; hi ] -> (
    match (int_of_string_opt lo, int_of_string_opt hi) with
    | Some l, Some h when l <= h ->
      let var = String.uppercase_ascii var in
      Session.assert_range t var l h;
      Printf.sprintf "asserted: %d <= %s <= %d" l var h
    | _ -> "error: usage: assert VAR in LO HI")
  | [ "assert"; var; "="; n ] -> (
    match int_of_string_opt n with
    | Some v ->
      let var = String.uppercase_ascii var in
      Session.assert_value t var v;
      Printf.sprintf "asserted: %s = %d" var v
    | None -> "error: usage: assert VAR = N")
  | [ "private"; s; var ] -> (
    match parse_sid t s with
    | Some sid ->
      let var = String.uppercase_ascii var in
      Session.privatize t sid var;
      Printf.sprintf "%s is private in loop s%d" var sid
    | None -> "error: usage: private sN VAR")
  | "why" :: "slow" :: rest -> (
    let focus =
      match rest with
      | [] -> Ok None
      | [ tok ] -> (
        match parse_sid t tok with
        | Some sid -> Ok (Some sid)
        | None -> Error ())
      | _ -> Error ()
    in
    match focus with
    | Error () -> "error: usage: why slow [sN]"
    | Ok focus -> (
      try
        let d = Perfdebug.Driver.diagnose (Session.program t) in
        Perfdebug.Driver.render ?focus d
      with
      | Runtime.Exec.Runtime_error m -> "error: execution failed: " ^ m
      | Sim.Interp.Runtime_error m -> "error: execution failed: " ^ m))
  | [ "why"; tok ] when String.contains tok ':' -> (
    match String.split_on_char ':' tok with
    | [ a; b ] -> (
      match (parse_sid t a, parse_sid t b) with
      | Some src, Some dst -> why_pair t ~src ~dst
      | _ -> "error: usage: why N | why sA:sB")
    | _ -> "error: usage: why N | why sA:sB")
  | [ "why"; n ] -> (
    match int_of_string_opt n with
    | Some id -> why_dep t id
    | None -> "error: usage: why N | why sA:sB")
  | "explain" :: name :: rest -> (
    match parse_transform_args t rest with
    | Some args -> explain_transform t name args
    | None -> "error: bad transformation arguments")
  | "preview" :: name :: rest -> (
    match parse_transform_args t rest with
    | Some args -> (
      match Session.preview t name args with
      | Ok d -> Transform.Diagnosis.to_string d
      | Error e -> "error: " ^ e)
    | None -> "error: bad transformation arguments")
  | "apply" :: name :: rest -> (
    let force, rest =
      match List.rev rest with
      | "!" :: r -> (true, List.rev r)
      | _ -> (false, rest)
    in
    match parse_transform_args t rest with
    | Some args -> (
      match Session.transform ~force t name args with
      | Ok (d, true) ->
        Printf.sprintf "%s applied\n%s" name (Transform.Diagnosis.to_string d)
      | Ok (d, false) ->
        Printf.sprintf "%s NOT applied\n%s" name
          (Transform.Diagnosis.to_string d)
      | Error e -> "error: " ^ e)
    | None -> "error: bad transformation arguments")
  | "edit" :: s :: rest when rest <> [] -> (
    match parse_sid t s with
    | Some sid -> (
      let text = String.concat " " rest in
      match Session.edit_stmt t sid text with
      | Ok () -> Printf.sprintf "statement s%d replaced" sid
      | Error e -> "error: " ^ e)
    | None -> "error: usage: edit sN TEXT")
  | "history" :: _ -> (
    match Session.history t with
    | [] -> "no changes yet"
    | h ->
      let n = List.length h in
      String.concat "\n"
        (List.mapi (fun i what -> Printf.sprintf "%2d. %s" (n - i) what) h))
  | "undo" :: _ -> (
    match Session.undo t with
    | Ok () -> "undone"
    | Error e -> "error: " ^ e)
  | "redo" :: _ -> (
    match Session.redo t with
    | Ok () -> "redone"
    | Error e -> "error: " ^ e)
  | "engine" :: _ -> Session.engine_report t
  | "diff" :: _ -> (
    let find_unit (p : Ast.program) =
      List.find_opt
        (fun (u : Ast.program_unit) ->
          String.equal u.Ast.uname (Session.unit_name t))
        p.Ast.punits
    in
    match (find_unit (Session.original t), find_unit (Session.program t)) with
    | Some before, Some after ->
      let lines u =
        Array.of_list (List.map snd (Pretty.source_lines u))
      in
      let d = line_diff (lines before) (lines after) in
      if List.for_all (fun l -> l.[0] = ' ') d then "no changes"
      else
        String.concat "\n"
          (List.filter
             (fun l ->
               (* keep changed lines with one line of nothing else *)
               l.[0] <> ' ')
             d)
    | _ -> "error: focus unit not found")
  | [ "write"; path ] -> (
    try
      let oc = open_out path in
      output_string oc (Pretty.program_to_string (Session.program t));
      close_out oc;
      Printf.sprintf "wrote %s" path
    with Sys_error e -> "error: " ^ e)
  | "estimate" :: rest ->
    let p =
      match rest with
      | [ n ] -> Option.value ~default:8 (int_of_string_opt n)
      | _ -> 8
    in
    let seq = Perf.Estimator.unit_cost (Session.env t) in
    let speedup = Perf.Estimator.predicted_speedup (Session.env t) ~processors:p in
    Printf.sprintf
      "estimated sequential cycles: %.0f%s\npredicted speedup on %d processors: %.2fx"
      seq.Perf.Estimator.cycles
      (if seq.Perf.Estimator.exact_trips then "" else " (some trip counts assumed)")
      p speedup
  | "advise" :: _ -> (
    match Advisor.advise t with
    | [] -> "no suggestions: every profitable loop is already parallel"
    | suggestions ->
      String.concat "\n"
        (List.map
           (fun s -> Format.asprintf "%a" Advisor.pp_suggestion s)
           suggestions))
  | "simulate" :: rest -> (
    (* simulate [P] [seq|reverse|shuffle [SEED]] *)
    let p, rest =
      match rest with
      | n :: more when int_of_string_opt n <> None ->
        (Option.get (int_of_string_opt n), more)
      | _ -> (8, rest)
    in
    let order =
      match rest with
      | [] | [ "seq" ] -> Ok Sim.Interp.Seq
      | [ "reverse" ] -> Ok Sim.Interp.Reverse
      | [ "shuffle" ] -> Ok (Sim.Interp.Shuffled 42)
      | [ "shuffle"; seed ] when int_of_string_opt seed <> None ->
        Ok (Sim.Interp.Shuffled (Option.get (int_of_string_opt seed)))
      | w :: _ -> Error w
    in
    match order with
    | Error w -> Printf.sprintf "error: bad simulate order %s (try help)" w
    | Ok order -> (
      Session.set_sim_order t order;
      match Session.simulate ~processors:p t with
      | Ok (seq, par, output) ->
        let order_note =
          match order with
          | Sim.Interp.Seq -> ""
          | Sim.Interp.Reverse -> ", reverse iteration order"
          | Sim.Interp.Shuffled s ->
            Printf.sprintf ", shuffled iteration order (seed %d)" s
        in
        String.concat "\n"
          ([ Printf.sprintf "sequential: %.0f cycles" seq;
             Printf.sprintf "parallel (%d procs%s): %.0f cycles" p order_note
               par;
             Printf.sprintf "speedup: %.2fx" (seq /. Float.max par 1.0) ]
          @
          if output = [] then []
          else ("output:" :: List.map (fun l -> "  " ^ l) output))
      | Error e -> "error: " ^ e))
  | cmd :: _ -> Printf.sprintf "error: unknown command %s (try help)" cmd

let script t lines =
  List.map (fun line -> Printf.sprintf "ped> %s\n%s" line (run t line)) lines
