open Fortran_front
open Scalar_analysis
open Dependence

let source_pane (t : Session.t) =
  match List.find_opt (fun (u : Ast.program_unit) ->
      String.equal u.Ast.uname (Session.unit_name t)) (Session.program t).Ast.punits
  with
  | None -> "<no unit>"
  | Some u ->
    let lines = Pretty.source_lines u in
    let lines = Filter.apply_src_filter (Session.src_filter t) lines in
    let buf = Buffer.create 1024 in
    List.iter
      (fun (sid, text) ->
        let marker =
          match (sid, (Session.selected t)) with
          | Some s, Some sel when s = sel -> ">"
          | _ -> " "
        in
        let tag =
          match sid with Some s -> Printf.sprintf "s%-4d" s | None -> "     "
        in
        Buffer.add_string buf (Printf.sprintf "%s %s %s\n" marker tag text))
      lines;
    Buffer.contents buf

let dep_row (t : Session.t) (d : Ddg.dep) =
  let dirs =
    match d.Ddg.dirs with
    | [] -> "-"
    | dv :: _ ->
      Printf.sprintf "(%s)"
        (String.concat ","
           (Array.to_list (Array.map Dtest.direction_to_string dv)))
  in
  let dist =
    if Array.exists Option.is_some d.Ddg.dist then
      Printf.sprintf " d=(%s)"
        (String.concat ","
           (Array.to_list
              (Array.map
                 (function Some n -> string_of_int n | None -> "*")
                 d.Ddg.dist)))
    else ""
  in
  let level =
    match d.Ddg.level with
    | Some l -> Printf.sprintf "L%d" l
    | None -> "indep"
  in
  Printf.sprintf "#%-4d %-7s %-8s s%-4d -> s%-4d %-10s %-6s %s%s" d.Ddg.dep_id
    (Ddg.kind_to_string d.Ddg.kind)
    (if d.Ddg.var = "" then "-" else d.Ddg.var)
    d.Ddg.src d.Ddg.dst dirs level
    (Marking.status_to_string (Marking.status_of (Session.marking t) d))
    dist

let dependence_pane (t : Session.t) =
  let deps = Session.visible_deps t in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "dependences (%d shown, filter: %s)\n" (List.length deps)
       (Filter.dep_filter_to_string (Session.dep_filter t)));
  List.iter (fun d -> Buffer.add_string buf (dep_row t d ^ "\n")) deps;
  Buffer.contents buf

let variable_pane (t : Session.t) =
  match (Session.selected t) with
  | None -> "select a loop to see its variables\n"
  | Some sid -> (
    match Depenv.stmt (Session.env t) sid with
    | Some ({ Ast.node = Ast.Do _; _ } as loop) ->
      let classes =
        Varclass.classify
          ~recognize_reductions:
            (Session.config t).Depenv.recognize_reductions
          ~cfg:(Session.env t).Depenv.cfg (Session.env t).Depenv.ctx
          (Session.env t).Depenv.liveness loop
      in
      let buf = Buffer.create 256 in
      Buffer.add_string buf (Printf.sprintf "variables of loop s%d\n" sid);
      List.iter
        (fun (v, c) ->
          let user =
            if List.mem (sid, v) (Session.user_private t) then
              "  [user: private]"
            else ""
          in
          Buffer.add_string buf
            (Printf.sprintf "  %-12s %s%s\n" v
               (Varclass.classification_to_string c)
               user))
        (Varclass.all classes);
      Buffer.contents buf
    | _ -> "selection is not a loop\n")

let loops_pane (t : Session.t) =
  let ranked =
    Perf.Estimator.rank_loops ~callee_cost:(Session.callee_cost t)
      (Session.env t)
  in
  let share_of sid =
    match
      List.find_opt
        (fun ((lp : Loopnest.loop), _, _) -> lp.Loopnest.lstmt.Ast.sid = sid)
        ranked
    with
    | Some (_, _, share) -> share
    | None -> 0.0
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "loops:\n";
  List.iter
    (fun (lp : Loopnest.loop) ->
      let sid = lp.Loopnest.lstmt.Ast.sid in
      let h = lp.Loopnest.header in
      Buffer.add_string buf
        (Printf.sprintf "  s%-4d %s%sDO %s = %s, %s%s   %s  %4.1f%%\n" sid
           (String.make ((lp.Loopnest.depth - 1) * 2) ' ')
           (if h.Ast.parallel then "PARALLEL " else "")
           h.Ast.dvar
           (Pretty.expr_to_string h.Ast.lo)
           (Pretty.expr_to_string h.Ast.hi)
           (match h.Ast.step with
           | Some s -> ", " ^ Pretty.expr_to_string s
           | None -> "")
           (if Session.is_parallelizable t sid then "[parallelizable]"
            else "[blocked]")
           (100.0 *. share_of sid)))
    (Session.loops t);
  Buffer.contents buf

let full_display t =
  String.concat "\n"
    [ source_pane t; loops_pane t; dependence_pane t; variable_pane t ]
