open Fortran_front
open Dependence

type t = {
  engine : Engine.t;
  history_limit : int;
  mutable unit_name : string;
  mutable env : Depenv.t;
  mutable ddg : Ddg.t;
  mutable marking : Marking.t;
  mutable user_private : (Ast.stmt_id * string) list;
  mutable selected : Ast.stmt_id option;
  mutable dep_filter : Filter.dep_filter;
  mutable src_filter : Filter.src_filter;
  mutable undo_stack : (Ast.program * string) list;
  mutable redo_stack : (Ast.program * string) list;
  mutable sim_order : Sim.Interp.order;
  original : Ast.program;
}

(* ---- accessors ---- *)

let program t = Engine.program t.engine
let unit_name t = t.unit_name
let env t = t.env
let ddg t = t.ddg
let marking t = t.marking
let assertions t = Engine.assertions t.engine
let user_private t = t.user_private
let selected t = t.selected
let original t = t.original
let config t = Engine.config t.engine
let interproc t = Engine.summary t.engine
let dep_filter t = t.dep_filter
let set_dep_filter t f = t.dep_filter <- f
let src_filter t = t.src_filter
let set_src_filter t f = t.src_filter <- f
let sim_order t = t.sim_order
let set_sim_order t o = t.sim_order <- o
let history t = List.map snd t.undo_stack
let history_limit t = t.history_limit
let engine_stats t = Engine.stats t.engine
let engine_report t = Engine.report t.engine
let telemetry t = Engine.telemetry t.engine

let find_unit (program : Ast.program) name =
  List.find_opt
    (fun (u : Ast.program_unit) -> String.equal u.Ast.uname name)
    program.Ast.punits

let focus_unit t =
  match find_unit (program t) t.unit_name with
  | Some u -> u
  | None -> failwith ("unit disappeared: " ^ t.unit_name)

(* The engine decides what actually needs recomputing; this just
   refreshes the session's view of the focus unit. *)
let refresh t =
  match Engine.analysis t.engine ~unit_name:t.unit_name with
  | Some (env, ddg) ->
    t.env <- env;
    t.ddg <- ddg
  | None -> failwith ("unit disappeared: " ^ t.unit_name)

let reanalyze = refresh

let load ?(config = Depenv.full_config) ?(interproc = true) ?caching
    ?sharing ?runner ?(history_limit = 1000) ?telemetry
    (program : Ast.program) ~unit_name : t =
  (match find_unit program unit_name with
  | Some _ -> ()
  | None -> invalid_arg ("no such unit: " ^ unit_name));
  if history_limit < 1 then invalid_arg "history_limit must be >= 1";
  let engine =
    Engine.create ?caching ~config ~interproc ?sharing ?runner ?telemetry
      program
  in
  let env, ddg =
    match Engine.analysis engine ~unit_name with
    | Some r -> r
    | None -> assert false
  in
  {
    engine;
    history_limit;
    unit_name;
    env;
    ddg;
    marking = Marking.empty;
    user_private = [];
    selected = None;
    dep_filter = Filter.default_dep_filter;
    src_filter = Filter.Src_all;
    undo_stack = [];
    redo_stack = [];
    sim_order = Sim.Interp.Seq;
    original = program;
  }

let load_source ?config ?interproc ?caching ?sharing ?runner ?history_limit
    ?telemetry ~file src ~unit_name : t =
  let program = Parser.parse_program ~file src in
  let unit_name =
    match unit_name with
    | Some n -> n
    | None -> (
      match
        List.find_opt
          (fun (u : Ast.program_unit) -> u.Ast.kind = Ast.Main)
          program.Ast.punits
      with
      | Some u -> u.Ast.uname
      | None -> (
        match program.Ast.punits with
        | u :: _ -> u.Ast.uname
        | [] -> invalid_arg "empty program"))
  in
  load ?config ?interproc ?caching ?sharing ?runner ?history_limit ?telemetry
    program ~unit_name

let focus t name =
  match find_unit (program t) name with
  | Some _ ->
    t.unit_name <- name;
    t.selected <- None;
    refresh t;
    Ok ()
  | None -> Error (Printf.sprintf "no unit named %s" name)

let loops t = Loopnest.loops t.env.Depenv.nest

let select t sid =
  match Loopnest.find t.env.Depenv.nest sid with
  | Some _ ->
    t.selected <- Some sid;
    Ok ()
  | None -> Error (Printf.sprintf "s%d is not a loop of %s" sid t.unit_name)

let rejected t = Marking.rejected_ids t.marking t.ddg

let user_private_blocks t (d : Ddg.dep) =
  (* a scalar dependence on a user-privatized variable of its carrying
     loop is discounted *)
  d.Ddg.is_scalar
  && (match d.Ddg.carrier with
     | Some loop_sid -> List.mem (loop_sid, d.Ddg.var) t.user_private
     | None -> false)

let blocking t sid =
  Ddg.blocking ~ignore:(rejected t) t.env t.ddg sid
  |> List.filter (fun d -> not (user_private_blocks t d))

(* scalars whose last value escapes: block parallelization unless the
   user declared them private *)
let escapees t sid =
  match Depenv.stmt t.env sid with
  | Some ({ Ast.node = Ast.Do _; _ } as loop) ->
    Transform.Parallelize.last_value_escapees t.env loop
    @ Transform.Indsub.needed t.env loop
    |> List.filter (fun v -> not (List.mem (sid, v) t.user_private))
  | _ -> []

let is_parallelizable t sid = blocking t sid = [] && escapees t sid = []

let parallelizable_loops t =
  List.filter
    (fun (lp : Loopnest.loop) -> is_parallelizable t lp.Loopnest.lstmt.Ast.sid)
    (loops t)

let visible_deps t =
  let base =
    match t.selected with
    | Some sid -> Ddg.deps_in_loop t.env t.ddg sid
    | None -> t.ddg.Ddg.deps
  in
  Filter.apply_dep_filter t.dep_filter t.marking base

let mark_dep t dep_id status =
  match
    List.find_opt (fun (d : Ddg.dep) -> d.Ddg.dep_id = dep_id) t.ddg.Ddg.deps
  with
  | None -> Error (Printf.sprintf "no dependence #%d" dep_id)
  | Some d ->
    (match status with
    | Marking.Rejected when d.Ddg.exact ->
      (* Ped lets the user reject even proven deps, but warns; we
         record the mark — the warning is the caller's to print *)
      ()
    | _ -> ());
    t.marking <- Marking.mark t.marking d status;
    Ok ()

(* ---- mutation: everything funnels through these two hooks ---- *)

(* Drop the oldest entries beyond the history limit — a thousand-edit
   batch script must not grow memory linearly in retained program
   snapshots. *)
let truncate_history limit stack =
  let rec take n = function
    | x :: rest when n > 0 -> x :: take (n - 1) rest
    | _ -> []
  in
  if List.compare_length_with stack limit <= 0 then stack else take limit stack

(* Program changes (edit, transformation, undo, redo) go to the
   engine, which invalidates by fingerprint; the session only
   maintains the undo/redo stacks around it. *)
let commit t what new_program =
  t.undo_stack <-
    truncate_history t.history_limit ((program t, what) :: t.undo_stack);
  t.redo_stack <- [];
  Engine.set_program t.engine new_program;
  refresh t

let set_asserts t asserts =
  Engine.set_assertions t.engine asserts;
  refresh t

let assert_value t var n =
  let a = assertions t in
  set_asserts t
    {
      a with
      Depenv.asserted_values =
        (var, n) :: List.remove_assoc var a.Depenv.asserted_values;
    }

let assert_range t var lo hi =
  let a = assertions t in
  set_asserts t
    {
      a with
      Depenv.asserted_ranges =
        (var, lo, hi)
        :: List.filter
             (fun (v, _, _) -> not (String.equal v var))
             a.Depenv.asserted_ranges;
    }

let assert_injective t arr =
  let a = assertions t in
  if not (List.mem arr a.Depenv.asserted_injective) then
    set_asserts t
      { a with Depenv.asserted_injective = arr :: a.Depenv.asserted_injective }

let privatize t loop_sid var =
  if not (List.mem (loop_sid, var) t.user_private) then
    t.user_private <- (loop_sid, var) :: t.user_private

let replaced_program t (u : Ast.program_unit) =
  {
    Ast.punits =
      List.map
        (fun (x : Ast.program_unit) ->
          if String.equal x.Ast.uname u.Ast.uname then u else x)
        (program t).Ast.punits;
  }

let preview t name args =
  match Transform.Catalog.find name with
  | None -> Error (Printf.sprintf "unknown transformation %s" name)
  | Some entry -> Ok (entry.Transform.Catalog.diagnose t.env t.ddg args)

(* Parallelize must respect the session's user contributions, which
   the catalog's generic diagnose cannot see; special-case it. *)
let diagnose_in_session t name args =
  match (name, args) with
  | "parallelize", Transform.Catalog.On_loop sid ->
    let user_private =
      List.filter_map
        (fun (l, v) -> if l = sid then Some v else None)
        t.user_private
    in
    Ok
      (Transform.Parallelize.diagnose ~ignore_deps:(rejected t) ~user_private
         t.env t.ddg sid)
  | _ -> preview t name args

let explain = diagnose_in_session

let transform ?(force = false) t name args =
  match Transform.Catalog.find name with
  | None -> Error (Printf.sprintf "unknown transformation %s" name)
  | Some entry -> (
    match diagnose_in_session t name args with
    | Error e -> Error e
    | Ok diag ->
      if
        diag.Transform.Diagnosis.applicable
        && (diag.Transform.Diagnosis.safe || force)
      then begin
        match entry.Transform.Catalog.apply t.env t.ddg args with
        | Ok u ->
          commit t name (replaced_program t u);
          Ok (diag, true)
        | Error refusal ->
          (* the apply's own refusal is the more precise diagnosis *)
          Ok (refusal, false)
      end
      else Ok (diag, false))

let edit_stmt t sid text =
  match Depenv.stmt t.env sid with
  | None -> Error (Printf.sprintf "no statement s%d" sid)
  | Some _ -> (
    match Parser.parse_stmts_string ~file:"<edit>" text with
    | exception Parser.Error (msg, loc) ->
      Error (Format.asprintf "syntax error at %a: %s" Loc.pp loc msg)
    | exception Lexer.Error (msg, loc) ->
      Error (Format.asprintf "lexical error at %a: %s" Loc.pp loc msg)
    | stmts -> (
      match Transform.Rewrite.replace_stmt (focus_unit t) sid stmts with
      | u' ->
        commit t "edit" (replaced_program t u');
        Ok ()
      | exception Not_found ->
        Error (Printf.sprintf "statement s%d not in unit %s" sid t.unit_name)))

let undo t =
  match t.undo_stack with
  | [] -> Error "nothing to undo"
  | (restored, what) :: rest ->
    t.undo_stack <- rest;
    t.redo_stack <- (program t, what) :: t.redo_stack;
    Engine.set_program t.engine restored;
    refresh t;
    Ok ()

let redo t =
  match t.redo_stack with
  | [] -> Error "nothing to redo"
  | (restored, what) :: rest ->
    t.redo_stack <- rest;
    t.undo_stack <- (program t, what) :: t.undo_stack;
    Engine.set_program t.engine restored;
    refresh t;
    Ok ()

let callee_cost t =
  let costs = Perf.Estimator.program_costs (program t) in
  fun name -> List.assoc_opt name costs

let simulate ?(processors = 8) t =
  let machine = Perf.Machine.with_processors processors Perf.Machine.default in
  let p = program t in
  match Sim.Interp.run ~machine ~honor_parallel:false p with
  | exception Sim.Interp.Runtime_error e -> Error e
  | seq -> (
    match
      Sim.Interp.run ~machine ~honor_parallel:true ~par_order:t.sim_order p
    with
    | exception Sim.Interp.Runtime_error e -> Error e
    | par ->
      Ok (seq.Sim.Interp.cycles, par.Sim.Interp.cycles, par.Sim.Interp.output))
