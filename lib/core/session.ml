open Fortran_front
open Dependence

type t = {
  mutable program : Ast.program;
  mutable unit_name : string;
  mutable env : Depenv.t;
  mutable ddg : Ddg.t;
  mutable marking : Marking.t;
  mutable asserts : Depenv.assertions;
  mutable user_private : (Ast.stmt_id * string) list;
  mutable selected : Ast.stmt_id option;
  mutable dep_filter : Filter.dep_filter;
  mutable src_filter : Filter.src_filter;
  mutable undo_stack : (Ast.program * string) list;
  mutable sim_order : Sim.Interp.order;
  original : Ast.program;
  mutable interproc : Interproc.Summary.t option;
  use_interproc : bool;
  config : Depenv.config;
}

let find_unit (program : Ast.program) name =
  List.find_opt
    (fun (u : Ast.program_unit) -> String.equal u.Ast.uname name)
    program.Ast.punits

let analyze_unit t (u : Ast.program_unit) =
  match t.interproc with
  | Some summary ->
    Interproc.Summary.env_for ~config:t.config ~asserts:t.asserts summary u
  | None -> Depenv.make ~config:t.config ~asserts:t.asserts u

let reanalyze t =
  if t.use_interproc then
    t.interproc <- Some (Interproc.Summary.analyze t.program);
  match find_unit t.program t.unit_name with
  | Some u ->
    t.env <- analyze_unit t u;
    t.ddg <- Ddg.compute t.env
  | None -> failwith ("unit disappeared: " ^ t.unit_name)

let load ?(config = Depenv.full_config) ?(interproc = true)
    (program : Ast.program) ~unit_name : t =
  let u =
    match find_unit program unit_name with
    | Some u -> u
    | None -> invalid_arg ("no such unit: " ^ unit_name)
  in
  let summary =
    if interproc then Some (Interproc.Summary.analyze program) else None
  in
  let asserts = Depenv.no_assertions in
  let env =
    match summary with
    | Some s -> Interproc.Summary.env_for ~config ~asserts s u
    | None -> Depenv.make ~config ~asserts u
  in
  let ddg = Ddg.compute env in
  {
    program;
    unit_name;
    env;
    ddg;
    marking = Marking.empty;
    asserts;
    user_private = [];
    selected = None;
    dep_filter = Filter.default_dep_filter;
    src_filter = Filter.Src_all;
    undo_stack = [];
    sim_order = Sim.Interp.Seq;
    original = program;
    interproc = summary;
    use_interproc = interproc;
    config;
  }

let load_source ?config ?interproc ~file src ~unit_name : t =
  let program = Parser.parse_program ~file src in
  let unit_name =
    match unit_name with
    | Some n -> n
    | None -> (
      match
        List.find_opt
          (fun (u : Ast.program_unit) -> u.Ast.kind = Ast.Main)
          program.Ast.punits
      with
      | Some u -> u.Ast.uname
      | None -> (
        match program.Ast.punits with
        | u :: _ -> u.Ast.uname
        | [] -> invalid_arg "empty program"))
  in
  load ?config ?interproc program ~unit_name

let focus t name =
  match find_unit t.program name with
  | Some _ ->
    t.unit_name <- name;
    t.selected <- None;
    reanalyze t;
    Ok ()
  | None -> Error (Printf.sprintf "no unit named %s" name)

let loops t = Loopnest.loops t.env.Depenv.nest

let select t sid =
  match Loopnest.find t.env.Depenv.nest sid with
  | Some _ ->
    t.selected <- Some sid;
    Ok ()
  | None -> Error (Printf.sprintf "s%d is not a loop of %s" sid t.unit_name)

let rejected t = Marking.rejected_ids t.marking t.ddg

let user_private_blocks t (d : Ddg.dep) =
  (* a scalar dependence on a user-privatized variable of its carrying
     loop is discounted *)
  d.Ddg.is_scalar
  && (match d.Ddg.carrier with
     | Some loop_sid -> List.mem (loop_sid, d.Ddg.var) t.user_private
     | None -> false)

let blocking t sid =
  Ddg.blocking ~ignore:(rejected t) t.env t.ddg sid
  |> List.filter (fun d -> not (user_private_blocks t d))

(* scalars whose last value escapes: block parallelization unless the
   user declared them private *)
let escapees t sid =
  match Depenv.stmt t.env sid with
  | Some ({ Ast.node = Ast.Do _; _ } as loop) ->
    Transform.Parallelize.last_value_escapees t.env loop
    @ Transform.Indsub.needed t.env loop
    |> List.filter (fun v -> not (List.mem (sid, v) t.user_private))
  | _ -> []

let is_parallelizable t sid = blocking t sid = [] && escapees t sid = []

let parallelizable_loops t =
  List.filter
    (fun (lp : Loopnest.loop) -> is_parallelizable t lp.Loopnest.lstmt.Ast.sid)
    (loops t)

let visible_deps t =
  let base =
    match t.selected with
    | Some sid -> Ddg.deps_in_loop t.env t.ddg sid
    | None -> t.ddg.Ddg.deps
  in
  Filter.apply_dep_filter t.dep_filter t.marking base

let mark_dep t dep_id status =
  match
    List.find_opt (fun (d : Ddg.dep) -> d.Ddg.dep_id = dep_id) t.ddg.Ddg.deps
  with
  | None -> Error (Printf.sprintf "no dependence #%d" dep_id)
  | Some d ->
    (match status with
    | Marking.Rejected when d.Ddg.exact ->
      (* Ped lets the user reject even proven deps, but warns; we
         record the mark — the warning is the caller's to print *)
      ()
    | _ -> ());
    t.marking <- Marking.mark t.marking d status;
    Ok ()

let assert_value t var n =
  t.asserts <-
    {
      t.asserts with
      Depenv.asserted_values =
        (var, n)
        :: List.remove_assoc var t.asserts.Depenv.asserted_values;
    };
  reanalyze t

let assert_range t var lo hi =
  t.asserts <-
    {
      t.asserts with
      Depenv.asserted_ranges =
        (var, lo, hi)
        :: List.filter
             (fun (v, _, _) -> not (String.equal v var))
             t.asserts.Depenv.asserted_ranges;
    };
  reanalyze t

let assert_injective t arr =
  if not (List.mem arr t.asserts.Depenv.asserted_injective) then begin
    t.asserts <-
      {
        t.asserts with
        Depenv.asserted_injective = arr :: t.asserts.Depenv.asserted_injective;
      };
    reanalyze t
  end

let privatize t loop_sid var =
  if not (List.mem (loop_sid, var) t.user_private) then
    t.user_private <- (loop_sid, var) :: t.user_private

let push_undo t what =
  t.undo_stack <- (t.program, what) :: t.undo_stack

let replace_unit t (u : Ast.program_unit) =
  t.program <-
    {
      Ast.punits =
        List.map
          (fun (x : Ast.program_unit) ->
            if String.equal x.Ast.uname u.Ast.uname then u else x)
          t.program.Ast.punits;
    }

let preview t name args =
  match Transform.Catalog.find name with
  | None -> Error (Printf.sprintf "unknown transformation %s" name)
  | Some entry -> Ok (entry.Transform.Catalog.diagnose t.env t.ddg args)

(* Parallelize must respect the session's user contributions, which
   the catalog's generic diagnose cannot see; special-case it. *)
let diagnose_in_session t name args =
  match (name, args) with
  | "parallelize", Transform.Catalog.On_loop sid ->
    let user_private =
      List.filter_map
        (fun (l, v) -> if l = sid then Some v else None)
        t.user_private
    in
    Ok
      (Transform.Parallelize.diagnose ~ignore_deps:(rejected t) ~user_private
         t.env t.ddg sid)
  | _ -> preview t name args

let transform ?(force = false) t name args =
  match Transform.Catalog.find name with
  | None -> Error (Printf.sprintf "unknown transformation %s" name)
  | Some entry -> (
    match diagnose_in_session t name args with
    | Error e -> Error e
    | Ok diag ->
      if
        diag.Transform.Diagnosis.applicable
        && (diag.Transform.Diagnosis.safe || force)
      then begin
        match entry.Transform.Catalog.apply t.env t.ddg args with
        | Some u ->
          push_undo t name;
          replace_unit t u;
          reanalyze t;
          Ok (diag, true)
        | None -> Ok (diag, false)
      end
      else Ok (diag, false))

let edit_stmt t sid text =
  match Depenv.stmt t.env sid with
  | None -> Error (Printf.sprintf "no statement s%d" sid)
  | Some _ -> (
    match Parser.parse_stmts_string ~file:"<edit>" text with
    | exception Parser.Error (msg, loc) ->
      Error (Format.asprintf "syntax error at %a: %s" Loc.pp loc msg)
    | exception Lexer.Error (msg, loc) ->
      Error (Format.asprintf "lexical error at %a: %s" Loc.pp loc msg)
    | stmts -> (
      match find_unit t.program t.unit_name with
      | None -> Error "focus unit disappeared"
      | Some u -> (
        match Transform.Rewrite.replace_stmt u sid stmts with
        | u' ->
          push_undo t "edit";
          replace_unit t u';
          reanalyze t;
          Ok ()
        | exception Not_found ->
          Error (Printf.sprintf "statement s%d not in unit %s" sid t.unit_name))))

let undo t =
  match t.undo_stack with
  | [] -> Error "nothing to undo"
  | (program, what) :: rest ->
    t.program <- program;
    t.undo_stack <- rest;
    reanalyze t;
    Ok ()
    |> fun r ->
    ignore what;
    r

let callee_cost t =
  let costs = Perf.Estimator.program_costs t.program in
  fun name -> List.assoc_opt name costs

let simulate ?(processors = 8) t =
  let machine = Perf.Machine.with_processors processors Perf.Machine.default in
  match Sim.Interp.run ~machine ~honor_parallel:false t.program with
  | exception Sim.Interp.Runtime_error e -> Error e
  | seq -> (
    match
      Sim.Interp.run ~machine ~honor_parallel:true ~par_order:t.sim_order
        t.program
    with
    | exception Sim.Interp.Runtime_error e -> Error e
    | par ->
      Ok (seq.Sim.Interp.cycles, par.Sim.Interp.cycles, par.Sim.Interp.output))
