open Fortran_front
open Dependence

type suggestion = {
  loop : Ast.stmt_id;
  action : string;
  why : string;
  share : float;
  diagnosis : Transform.Diagnosis.t option;
}

let pp_suggestion ppf s =
  Format.fprintf ppf "loop s%d (%.0f%% of time): %s — %s" s.loop
    (100.0 *. s.share) s.action s.why

let next_target (t : Session.t) =
  Perf.Estimator.rank_loops ~callee_cost:(Session.callee_cost t) (Session.env t)
  |> List.find_opt (fun ((lp : Loopnest.loop), _, _) ->
         (not lp.Loopnest.header.Ast.parallel)
         && not
              (List.exists
                 (fun (p : Loopnest.loop) -> p.Loopnest.header.Ast.parallel)
                 (Loopnest.enclosing (Session.env t).Depenv.nest
                    lp.Loopnest.lstmt.Ast.sid)))
  |> Option.map (fun (lp, _, share) -> (lp, share))

let advise (t : Session.t) : suggestion list =
  let ranked =
    Perf.Estimator.rank_loops ~callee_cost:(Session.callee_cost t)
      (Session.env t)
  in
  let suggestions = ref [] in
  let add s = suggestions := s :: !suggestions in
  List.iter
    (fun ((lp : Loopnest.loop), _, share) ->
      let sid = lp.Loopnest.lstmt.Ast.sid in
      if not lp.Loopnest.header.Ast.parallel then begin
        (* 1. direct parallelization *)
        (match Session.preview t "parallelize" (Transform.Catalog.On_loop sid) with
        | Ok d when Transform.Diagnosis.ok d && d.Transform.Diagnosis.profitable ->
          add
            { loop = sid; action = "parallelize"; why = "no carried dependences";
              share; diagnosis = Some d }
        | Ok d when d.Transform.Diagnosis.applicable && not d.Transform.Diagnosis.safe
          -> begin
            (* 2. enabling transformations *)
            (match
               Session.preview t "interchange" (Transform.Catalog.On_loop sid)
             with
            | Ok di when Transform.Diagnosis.ok di && di.Transform.Diagnosis.profitable ->
              add
                { loop = sid; action = "interchange";
                  why = "moves parallelism outward"; share;
                  diagnosis = Some di }
            | _ -> ());
            (match
               Session.preview t "distribute" (Transform.Catalog.On_loop sid)
             with
            | Ok dd when Transform.Diagnosis.ok dd && dd.Transform.Diagnosis.profitable ->
              add
                { loop = sid; action = "distribute";
                  why = "separates the recurrence from parallel work"; share;
                  diagnosis = Some dd }
            | _ -> ());
            (match
               Session.preview t "skew" (Transform.Catalog.With_factor (sid, 1))
             with
            | Ok ds when Transform.Diagnosis.ok ds && ds.Transform.Diagnosis.profitable ->
              add
                { loop = sid; action = "skew";
                  why = "enables interchange for a wavefront"; share;
                  diagnosis = Some ds }
            | _ -> ());
            (* 3. last-value escapees: scalar expansion fixes them *)
            (match Depenv.stmt (Session.env t) sid with
            | Some ({ Ast.node = Ast.Do _; _ } as loop_stmt) ->
              List.iter
                (fun v ->
                  match
                    Session.preview t "expand"
                      (Transform.Catalog.With_var (sid, v))
                  with
                  | Ok de when Transform.Diagnosis.ok de ->
                    add
                      { loop = sid; action = "expand";
                        why =
                          Printf.sprintf
                            "%s's last value escapes: expansion removes the blocker"
                            v;
                        share; diagnosis = Some de }
                  | _ -> ())
                (Transform.Parallelize.last_value_escapees (Session.env t)
                   loop_stmt)
            | _ -> ());
            (* 3b. induction accumulators: substitution fixes them *)
            (match Depenv.stmt (Session.env t) sid with
            | Some ({ Ast.node = Ast.Do _; _ } as loop_stmt) ->
              List.iter
                (fun v ->
                  add
                    { loop = sid; action = "indsub";
                      why =
                        Printf.sprintf
                          "%s is an induction accumulator: substitution makes \
                           the loop order independent"
                          v;
                      share; diagnosis = None })
                (Transform.Indsub.needed (Session.env t) loop_stmt)
            | _ -> ());
            (* 4. assertion hints: only pending dependences block *)
            let blockers = Session.blocking t sid in
            if
              blockers <> []
              && List.for_all
                   (fun (d : Ddg.dep) ->
                     Marking.status_of (Session.marking t) d = Marking.Pending)
                   blockers
            then
              add
                { loop = sid; action = "assert";
                  why =
                    Printf.sprintf
                      "only pending dependences block (%s): an assertion or \
                       rejection would parallelize"
                      (String.concat ", "
                         (List.sort_uniq String.compare
                            (List.map (fun (d : Ddg.dep) -> d.Ddg.var) blockers)));
                  share; diagnosis = None }
          end
        | _ -> ())
      end)
    ranked;
  List.rev !suggestions
  |> List.stable_sort (fun a b -> compare b.share a.share)
