open Fortran_front
open Dependence

type timings = {
  mutable summary_s : float;
  mutable env_s : float;
  mutable ddg_s : float;
}

type stats = {
  env_hits : int;
  env_misses : int;
  invalidations : int;
  summary_hits : int;
  summary_builds : int;
  ddg_bucket_hits : int;
  ddg_bucket_misses : int;
  tests_run : int;
  summary_s : float;
  env_s : float;
  ddg_s : float;
}

type counters = {
  mutable env_hits : int;
  mutable env_misses : int;
  mutable invalidations : int;
  mutable summary_hits : int;
  mutable summary_builds : int;
}

type entry = { e_fp : Fingerprint.t; e_env : Depenv.t; e_ddg : Ddg.t }

type t = {
  caching : bool;
  config : Depenv.config;
  use_interproc : bool;
  mutable program : Ast.program;
  mutable asserts : Depenv.assertions;
  (* per-unit analysis results, keyed by unit name, guarded by fingerprint *)
  units : (string, entry) Hashtbl.t;
  (* interprocedural summaries, keyed by whole-program fingerprint *)
  summaries : (Fingerprint.t, Interproc.Summary.t) Hashtbl.t;
  ddg_cache : Ddg.cache;
  c : counters;
  tm : timings;
  (* cache-counter watermarks, so stats can be reset *)
  mutable tests_base : int;
  mutable hits_base : int;
  mutable misses_base : int;
}

let create ?(caching = true) ?(config = Depenv.full_config)
    ?(interproc = true) (program : Ast.program) : t =
  {
    caching;
    config;
    use_interproc = interproc;
    program;
    asserts = Depenv.no_assertions;
    units = Hashtbl.create 8;
    summaries = Hashtbl.create 8;
    ddg_cache = Ddg.make_cache ();
    c =
      { env_hits = 0; env_misses = 0; invalidations = 0; summary_hits = 0;
        summary_builds = 0 };
    tm = { summary_s = 0.; env_s = 0.; ddg_s = 0. };
    tests_base = 0;
    hits_base = 0;
    misses_base = 0;
  }

let caching t = t.caching
let config t = t.config
let use_interproc t = t.use_interproc
let program t = t.program
let assertions t = t.asserts

(* The single post-edit hook: every program mutation funnels through
   here.  Nothing is recomputed eagerly — stale cache entries are
   detected by fingerprint mismatch at the next query. *)
let set_program t program = t.program <- program

let set_assertions t asserts = t.asserts <- asserts

let timed cell f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  cell := !cell +. (Unix.gettimeofday () -. t0);
  r

let summary t : Interproc.Summary.t option =
  if not t.use_interproc then None
  else begin
    let build () =
      t.c.summary_builds <- t.c.summary_builds + 1;
      let cell = ref t.tm.summary_s in
      let s = timed cell (fun () -> Interproc.Summary.analyze t.program) in
      t.tm.summary_s <- !cell;
      s
    in
    if not t.caching then Some (build ())
    else begin
      let key = Fingerprint.program t.program in
      match Hashtbl.find_opt t.summaries key with
      | Some s ->
        t.c.summary_hits <- t.c.summary_hits + 1;
        Some s
      | None ->
        let s = build () in
        Hashtbl.replace t.summaries key s;
        Some s
    end
  end

let find_unit t name =
  List.find_opt
    (fun (u : Ast.program_unit) -> String.equal u.Ast.uname name)
    t.program.Ast.punits

let compute_unit t summary (u : Ast.program_unit) =
  let env_cell = ref t.tm.env_s in
  let env =
    timed env_cell (fun () ->
        match summary with
        | Some s ->
          Interproc.Summary.env_for ~config:t.config ~asserts:t.asserts s u
        | None -> Depenv.make ~config:t.config ~asserts:t.asserts u)
  in
  t.tm.env_s <- !env_cell;
  let ddg_cell = ref t.tm.ddg_s in
  let ddg =
    timed ddg_cell (fun () ->
        if t.caching then Ddg.compute ~cache:t.ddg_cache env
        else begin
          (* baseline mode still counts its pair tests, through a
             throwaway cache that can never hit *)
          let throwaway = Ddg.make_cache () in
          let d = Ddg.compute ~cache:throwaway env in
          let tests, _, _ = Ddg.cache_counters throwaway in
          t.tests_base <- t.tests_base - tests;
          d
        end)
  in
  t.tm.ddg_s <- !ddg_cell;
  (env, ddg)

(* Demand-driven analysis of one unit: served from cache when the
   unit's fingerprint (content + config + assertions + interprocedural
   facet) is unchanged, recomputed — and re-cached — otherwise. *)
let analysis t ~unit_name : (Depenv.t * Ddg.t) option =
  match find_unit t unit_name with
  | None -> None
  | Some u ->
    let summary = summary t in
    if not t.caching then Some (compute_unit t summary u)
    else begin
      let facet =
        Option.map (fun s -> Fingerprint.interproc_facet s u) summary
      in
      let fp =
        Fingerprint.analysis_key ~config:t.config ~asserts:t.asserts ~facet u
      in
      match Hashtbl.find_opt t.units unit_name with
      | Some e when String.equal e.e_fp fp ->
        t.c.env_hits <- t.c.env_hits + 1;
        Some (e.e_env, e.e_ddg)
      | prior ->
        if prior <> None then t.c.invalidations <- t.c.invalidations + 1;
        t.c.env_misses <- t.c.env_misses + 1;
        let env, ddg = compute_unit t summary u in
        Hashtbl.replace t.units unit_name { e_fp = fp; e_env = env; e_ddg = ddg };
        Some (env, ddg)
    end

let stats t : stats =
  let tests, hits, misses = Ddg.cache_counters t.ddg_cache in
  {
    env_hits = t.c.env_hits;
    env_misses = t.c.env_misses;
    invalidations = t.c.invalidations;
    summary_hits = t.c.summary_hits;
    summary_builds = t.c.summary_builds;
    ddg_bucket_hits = hits - t.hits_base;
    ddg_bucket_misses = misses - t.misses_base;
    tests_run = tests - t.tests_base;
    summary_s = t.tm.summary_s;
    env_s = t.tm.env_s;
    ddg_s = t.tm.ddg_s;
  }

let reset_stats t =
  let tests, hits, misses = Ddg.cache_counters t.ddg_cache in
  t.c.env_hits <- 0;
  t.c.env_misses <- 0;
  t.c.invalidations <- 0;
  t.c.summary_hits <- 0;
  t.c.summary_builds <- 0;
  t.tm.summary_s <- 0.;
  t.tm.env_s <- 0.;
  t.tm.ddg_s <- 0.;
  t.tests_base <- tests;
  t.hits_base <- hits;
  t.misses_base <- misses

let report t =
  let s = stats t in
  String.concat "\n"
    [
      Printf.sprintf "engine: %s"
        (if t.caching then "incremental (caching)" else "full reanalysis");
      Printf.sprintf "  unit analyses : %d cached, %d computed (%d invalidated)"
        s.env_hits s.env_misses s.invalidations;
      Printf.sprintf "  summaries     : %d cached, %d built" s.summary_hits
        s.summary_builds;
      Printf.sprintf "  ddg buckets   : %d cached, %d computed"
        s.ddg_bucket_hits s.ddg_bucket_misses;
      Printf.sprintf "  pair tests run: %d" s.tests_run;
      Printf.sprintf
        "  time          : summary %.4fs, scalar env %.4fs, ddg %.4fs"
        s.summary_s s.env_s s.ddg_s;
    ]
