open Fortran_front
open Dependence

type stats = {
  env_hits : int;
  env_misses : int;
  invalidations : int;
  summary_hits : int;
  summary_builds : int;
  ddg_bucket_hits : int;
  ddg_bucket_misses : int;
  tests_run : int;
  summary_s : float;
  env_s : float;
  ddg_s : float;
}

let zero_stats =
  {
    env_hits = 0;
    env_misses = 0;
    invalidations = 0;
    summary_hits = 0;
    summary_builds = 0;
    ddg_bucket_hits = 0;
    ddg_bucket_misses = 0;
    tests_run = 0;
    summary_s = 0.;
    env_s = 0.;
    ddg_s = 0.;
  }

type entry = { e_fp : Fingerprint.t; e_env : Depenv.t; e_ddg : Ddg.t }

(* Cross-session sharing hooks.  The engine stays ignorant of the
   cache behind them (lib/server owns the LRU/persistence policy);
   it consults the hooks after a local miss and publishes what it
   computed.  Keys are the same content fingerprints that guard the
   local tables, so a hit is correct by construction. *)
type sharing = {
  sh_find_summary : Fingerprint.t -> Interproc.Summary.t option;
  sh_add_summary : Fingerprint.t -> Interproc.Summary.t -> unit;
  sh_find_unit : Fingerprint.t -> (Depenv.t * Ddg.t) option;
  sh_add_unit : Fingerprint.t -> Depenv.t * Ddg.t -> unit;
  sh_ddg_cache : Ddg.cache option;
      (** when present, the engine's dependence-test bucket memo —
          shared partial results across sessions analyzing similar
          (not identical) units *)
}

(* All accounting lives in telemetry counters on [sink]; [stats] is a
   view of those counters relative to the [base] watermark taken by
   [reset_stats].  The dependence-test and bucket tallies are bumped
   by [Ddg.compute ~telemetry:sink] itself — the engine only reads
   them back. *)
type t = {
  caching : bool;
  config : Depenv.config;
  use_interproc : bool;
  sharing : sharing option;
  runner : Ddg.runner option;
  sink : Telemetry.sink;
  mutable program : Ast.program;
  mutable asserts : Depenv.assertions;
  (* per-unit analysis results, keyed by unit name, guarded by fingerprint *)
  units : (string, entry) Hashtbl.t;
  (* interprocedural summaries, keyed by whole-program fingerprint *)
  summaries : (Fingerprint.t, Interproc.Summary.t) Hashtbl.t;
  ddg_cache : Ddg.cache;
  c_env_hits : Telemetry.counter;
  c_env_misses : Telemetry.counter;
  c_invalidations : Telemetry.counter;
  c_summary_hits : Telemetry.counter;
  c_summary_builds : Telemetry.counter;
  c_tests : Telemetry.counter;
  c_bucket_hits : Telemetry.counter;
  c_bucket_misses : Telemetry.counter;
  c_summary_ns : Telemetry.counter;
  c_env_ns : Telemetry.counter;
  c_ddg_ns : Telemetry.counter;
  mutable base : stats;
}

let create ?(caching = true) ?(config = Depenv.full_config)
    ?(interproc = true) ?sharing ?runner ?telemetry (program : Ast.program) : t =
  (* a private live sink by default: counters work out of the box and
     two engines never share accounting *)
  let sink =
    match telemetry with Some s -> s | None -> Telemetry.make ()
  in
  let c = Telemetry.counter sink in
  {
    caching;
    config;
    use_interproc = interproc;
    sharing;
    runner;
    sink;
    program;
    asserts = Depenv.no_assertions;
    units = Hashtbl.create 8;
    summaries = Hashtbl.create 8;
    ddg_cache =
      (match sharing with
      | Some { sh_ddg_cache = Some cache; _ } -> cache
      | _ -> Ddg.make_cache ());
    c_env_hits = c "engine.env_hits";
    c_env_misses = c "engine.env_misses";
    c_invalidations = c "engine.invalidations";
    c_summary_hits = c "engine.summary_hits";
    c_summary_builds = c "engine.summary_builds";
    c_tests = c "ddg.tests_executed";
    c_bucket_hits = c "ddg.bucket_hits";
    c_bucket_misses = c "ddg.bucket_misses";
    c_summary_ns = c "engine.summary_ns";
    c_env_ns = c "engine.env_ns";
    c_ddg_ns = c "engine.ddg_ns";
    base = zero_stats;
  }

let caching t = t.caching
let config t = t.config
let use_interproc t = t.use_interproc
let program t = t.program
let assertions t = t.asserts
let telemetry t = t.sink

(* The single post-edit hook: every program mutation funnels through
   here.  Nothing is recomputed eagerly — stale cache entries are
   detected by fingerprint mismatch at the next query. *)
let set_program t program = t.program <- program

let set_assertions t asserts = t.asserts <- asserts

let summary t : Interproc.Summary.t option =
  if not t.use_interproc then None
  else begin
    let build () =
      Telemetry.incr t.c_summary_builds;
      Telemetry.timed t.sink ~span_name:"engine.summary" t.c_summary_ns
        (fun () -> Interproc.Summary.analyze t.program)
    in
    if not t.caching then Some (build ())
    else begin
      let key = Fingerprint.program t.program in
      match Hashtbl.find_opt t.summaries key with
      | Some s ->
        Telemetry.incr t.c_summary_hits;
        Some s
      | None -> (
        match
          Option.bind t.sharing (fun sh -> sh.sh_find_summary key)
        with
        | Some s ->
          (* served by another session's work *)
          Telemetry.incr t.c_summary_hits;
          Hashtbl.replace t.summaries key s;
          Some s
        | None ->
          let s = build () in
          Hashtbl.replace t.summaries key s;
          Option.iter (fun sh -> sh.sh_add_summary key s) t.sharing;
          Some s)
    end
  end

let find_unit t name =
  List.find_opt
    (fun (u : Ast.program_unit) -> String.equal u.Ast.uname name)
    t.program.Ast.punits

let compute_unit t summary (u : Ast.program_unit) =
  let env =
    Telemetry.timed t.sink ~span_name:"engine.env" t.c_env_ns (fun () ->
        match summary with
        | Some s ->
          Interproc.Summary.env_for ~config:t.config ~asserts:t.asserts s u
        | None -> Depenv.make ~config:t.config ~asserts:t.asserts u)
  in
  let ddg =
    Telemetry.timed t.sink ~span_name:"engine.ddg" t.c_ddg_ns (fun () ->
        if t.caching then
          Ddg.compute ~cache:t.ddg_cache ?runner:t.runner ~telemetry:t.sink
            env
        else
          (* baseline mode: no memo table, but the sink still counts
             every pair test executed *)
          Ddg.compute ?runner:t.runner ~telemetry:t.sink env)
  in
  (env, ddg)

(* Demand-driven analysis of one unit: served from cache when the
   unit's fingerprint (content + config + assertions + interprocedural
   facet) is unchanged, recomputed — and re-cached — otherwise. *)
let analysis t ~unit_name : (Depenv.t * Ddg.t) option =
  Telemetry.span t.sink "engine.analysis" ~args:[ ("unit", unit_name) ]
  @@ fun () ->
  match find_unit t unit_name with
  | None -> None
  | Some u ->
    let summary = summary t in
    if not t.caching then Some (compute_unit t summary u)
    else begin
      let facet =
        Option.map (fun s -> Fingerprint.interproc_facet s u) summary
      in
      let fp =
        Fingerprint.analysis_key ~config:t.config ~asserts:t.asserts ~facet u
      in
      match Hashtbl.find_opt t.units unit_name with
      | Some e when String.equal e.e_fp fp ->
        Telemetry.incr t.c_env_hits;
        Some (e.e_env, e.e_ddg)
      | prior -> (
        match Option.bind t.sharing (fun sh -> sh.sh_find_unit fp) with
        | Some (env, ddg) ->
          (* another session already analyzed this exact unit under
             this exact config/assertion/interproc view *)
          Telemetry.incr t.c_env_hits;
          Hashtbl.replace t.units unit_name
            { e_fp = fp; e_env = env; e_ddg = ddg };
          Some (env, ddg)
        | None ->
          if prior <> None then Telemetry.incr t.c_invalidations;
          Telemetry.incr t.c_env_misses;
          let env, ddg = compute_unit t summary u in
          Hashtbl.replace t.units unit_name
            { e_fp = fp; e_env = env; e_ddg = ddg };
          Option.iter (fun sh -> sh.sh_add_unit fp (env, ddg)) t.sharing;
          Some (env, ddg))
    end

let seconds c = float_of_int (Telemetry.value c) /. 1e9

(* Absolute counter readings (since engine creation). *)
let read t : stats =
  {
    env_hits = Telemetry.value t.c_env_hits;
    env_misses = Telemetry.value t.c_env_misses;
    invalidations = Telemetry.value t.c_invalidations;
    summary_hits = Telemetry.value t.c_summary_hits;
    summary_builds = Telemetry.value t.c_summary_builds;
    ddg_bucket_hits = Telemetry.value t.c_bucket_hits;
    ddg_bucket_misses = Telemetry.value t.c_bucket_misses;
    tests_run = Telemetry.value t.c_tests;
    summary_s = seconds t.c_summary_ns;
    env_s = seconds t.c_env_ns;
    ddg_s = seconds t.c_ddg_ns;
  }

let stats t : stats =
  let s = read t and b = t.base in
  {
    env_hits = s.env_hits - b.env_hits;
    env_misses = s.env_misses - b.env_misses;
    invalidations = s.invalidations - b.invalidations;
    summary_hits = s.summary_hits - b.summary_hits;
    summary_builds = s.summary_builds - b.summary_builds;
    ddg_bucket_hits = s.ddg_bucket_hits - b.ddg_bucket_hits;
    ddg_bucket_misses = s.ddg_bucket_misses - b.ddg_bucket_misses;
    tests_run = s.tests_run - b.tests_run;
    summary_s = s.summary_s -. b.summary_s;
    env_s = s.env_s -. b.env_s;
    ddg_s = s.ddg_s -. b.ddg_s;
  }

let reset_stats t = t.base <- read t

let report t =
  let s = stats t in
  String.concat "\n"
    [
      Printf.sprintf "engine: %s"
        (if t.caching then "incremental (caching)" else "full reanalysis");
      Printf.sprintf "  unit analyses : %d cached, %d computed (%d invalidated)"
        s.env_hits s.env_misses s.invalidations;
      Printf.sprintf "  summaries     : %d cached, %d built" s.summary_hits
        s.summary_builds;
      Printf.sprintf "  ddg buckets   : %d cached, %d computed"
        s.ddg_bucket_hits s.ddg_bucket_misses;
      Printf.sprintf "  pair tests run: %d" s.tests_run;
      Printf.sprintf
        "  time          : summary %.4fs, scalar env %.4fs, ddg %.4fs"
        s.summary_s s.env_s s.ddg_s;
    ]
