(** The incremental, demand-driven analysis engine.

    The session hands the engine a program and asks it for analysis
    results ({!analysis}); the engine decides what actually needs
    recomputing.  Three cache layers, each guarded by a content
    fingerprint (MD5 of the marshalled data — the AST is pure data):

    - {e interprocedural summaries}, keyed by the whole-program
      fingerprint, so undo/redo — which restore a previous program
      value — hit without any invalidation protocol;
    - {e per-unit scalar environments and dependence graphs}, keyed by
      unit name and guarded by a fingerprint of the unit's statements,
      the analysis configuration, the user's assertions, and the
      unit's {e view} of the interprocedural summary (per-CALL
      effects, section pseudo-references, formal constants, alias
      pairs) — a summary rebuild that left this view intact does not
      invalidate the unit;
    - {e dependence-test buckets} inside {!Dependence.Ddg}, so that
      when a unit {e is} recomputed, only the loop nests whose
      statements or reaching scalar environment changed get their
      pair tests re-run.

    All mutation funnels through {!set_program} and
    {!set_assertions}; nothing recomputes eagerly, stale entries are
    detected by fingerprint mismatch at the next query.  Created with
    [~caching:false] the engine recomputes everything on every query
    — the from-scratch baseline the bench harness compares against. *)

open Fortran_front
open Dependence

type t

(** Cumulative counters and per-pass monotonic-clock timings since
    creation (or the last {!reset_stats}) — a thin view over the
    engine's telemetry counters. *)
type stats = {
  env_hits : int;        (** unit analyses served from cache *)
  env_misses : int;      (** unit analyses computed *)
  invalidations : int;   (** misses caused by a stale cached entry *)
  summary_hits : int;
  summary_builds : int;
  ddg_bucket_hits : int;
  ddg_bucket_misses : int;
  tests_run : int;       (** dependence pair tests actually executed *)
  summary_s : float;
  env_s : float;
  ddg_s : float;
}

(** Cross-session sharing hooks — how a server-level shared cache
    (lib/server) plugs in {e behind} the local tables.  After a local
    miss the engine consults [sh_find_*]; whatever it then computes it
    publishes through [sh_add_*].  Keys are the exact content
    fingerprints guarding the local tables (whole-program fingerprint
    for summaries, the full per-unit analysis key for unit results),
    so two sessions over identical units dedup their dependence work
    and a hit can never be stale.  [sh_ddg_cache], when present,
    replaces the engine's private dependence-test bucket memo so even
    {e partially} overlapping units share pair-test results. *)
type sharing = {
  sh_find_summary : string -> Interproc.Summary.t option;
  sh_add_summary : string -> Interproc.Summary.t -> unit;
  sh_find_unit : string -> (Depenv.t * Ddg.t) option;
  sh_add_unit : string -> Depenv.t * Ddg.t -> unit;
  sh_ddg_cache : Ddg.cache option;
}

(** [create ?telemetry program] — [telemetry] is the sink all engine
    accounting (and, when it is recording, the [engine.analysis] /
    [engine.summary] / [engine.env] / [engine.ddg] spans) is emitted
    to.  The default is a fresh private live sink, so every engine
    counts independently; passing {!Telemetry.null} disables
    accounting entirely (stats read as zero).  [sharing] hooks the
    engine into a cross-session cache; shared hits count as cache
    hits in {!stats}.  [runner] is handed to every [Ddg.compute] call
    so dependence-test buckets fan out across a domain pool
    ({!Ddg.runner}); analysis results are identical with or without
    it. *)
val create :
  ?caching:bool ->
  ?config:Depenv.config ->
  ?interproc:bool ->
  ?sharing:sharing ->
  ?runner:Ddg.runner ->
  ?telemetry:Telemetry.sink ->
  Ast.program ->
  t

val caching : t -> bool

(** The sink given to (or created by) {!create}. *)
val telemetry : t -> Telemetry.sink
val config : t -> Depenv.config
val use_interproc : t -> bool
val program : t -> Ast.program
val assertions : t -> Depenv.assertions

(** The single post-edit hook: every program mutation (edit,
    transformation, undo, redo) funnels through here. *)
val set_program : t -> Ast.program -> unit

val set_assertions : t -> Depenv.assertions -> unit

(** The current interprocedural summary ([None] when interprocedural
    analysis is off), built or served from cache on demand. *)
val summary : t -> Interproc.Summary.t option

(** [analysis t ~unit_name] — scalar environment and dependence graph
    of the named unit under the current program and assertions;
    [None] if no such unit.  Structurally identical to a from-scratch
    analysis, whatever mix of caches served it. *)
val analysis : t -> unit_name:string -> (Depenv.t * Ddg.t) option

val stats : t -> stats
val reset_stats : t -> unit

(** Human-readable statistics block (the [engine] editor command and
    [ped --engine-stats]). *)
val report : t -> string
