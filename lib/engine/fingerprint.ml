(* Content fingerprints for the incremental analysis engine.

   Everything fingerprinted here is pure data (the AST carries no
   closures or cycles), so [Marshal] gives a canonical byte string and
   [Digest] a 16-byte key.  Statement ids are part of the content: an
   edit produces fresh ids for the statements it touched, so a
   fingerprint distinguishes "same text, re-parsed" from "the very
   statements analysis results refer to". *)

open Fortran_front

type t = Digest.t

let to_hex = Digest.to_hex

let of_string = Digest.string

(* A program unit's own content. *)
let unit_content (u : Ast.program_unit) : t =
  Digest.string (Marshal.to_string u [ Marshal.No_sharing ])

(* A whole program — keys the interprocedural summary cache; undo and
   redo restore a previous program value and therefore a previous
   fingerprint. *)
let program (p : Ast.program) : t =
  Digest.string (Marshal.to_string p [ Marshal.No_sharing ])

(* What a unit's intraprocedural analysis can observe of the
   interprocedural summary: per-CALL scalar effects and array section
   pseudo-references, interprocedural formal constants, and the alias
   pairs of the unit.  Two summaries with equal facets are
   interchangeable for this unit, so cached per-unit results survive
   whole-program summary rebuilds that left the unit's view intact. *)
let interproc_facet (summary : Interproc.Summary.t) (u : Ast.program_unit) : t =
  let buf = Buffer.create 512 in
  let oracle = Interproc.Summary.oracle_for summary u in
  let call_refs = Interproc.Summary.call_refs_for summary u in
  Ast.iter_stmts
    (fun s ->
      match s.Ast.node with
      | Ast.Call _ ->
        Buffer.add_string buf (Marshal.to_string (oracle s) []);
        Buffer.add_string buf (Marshal.to_string (call_refs s) [])
      | _ -> ())
    u.Ast.body;
  Buffer.add_string buf
    (Marshal.to_string
       (Interproc.Ipconst.constants_of (Interproc.Summary.ipconst summary)
          u.Ast.uname)
       []);
  Buffer.add_string buf
    (Marshal.to_string
       (Interproc.Aliases.pairs_of (Interproc.Summary.aliases summary)
          u.Ast.uname)
       []);
  Digest.string (Buffer.contents buf)

(* The full per-unit analysis key: the unit's statements, the analysis
   configuration, the user's assertions, and (when interprocedural
   analysis is on) the callees' summary facet. *)
let analysis_key ~(config : Dependence.Depenv.config)
    ~(asserts : Dependence.Depenv.assertions) ~(facet : t option)
    (u : Ast.program_unit) : t =
  Digest.string
    (String.concat "|"
       [ unit_content u;
         Digest.string (Marshal.to_string (config, asserts) []);
         (match facet with Some f -> f | None -> "") ])
