open Fortran_front

type result = {
  compiled : bool;
  parallel_loops : int;
  skipped : string option;
  failures : Runcheck.failure list;
}

let tol = 1e-4

let check ?(configs = [ (2, Runtime.Pool.Chunk); (3, Runtime.Pool.Self) ])
    ?(max_steps = 2_000_000) (p : Ast.program) : result =
  let p', parallel_loops = Runcheck.parallelize_approved p in
  let skip m = { compiled = false; parallel_loops; skipped = Some m; failures = [] } in
  let failed stage what =
    {
      compiled = false;
      parallel_loops;
      skipped = None;
      failures = [ { Runcheck.r_stage = stage; r_what = what } ];
    }
  in
  match Sim.Interp.run ~honor_parallel:false ~max_steps p with
  | exception Sim.Interp.Runtime_error m ->
    skip ("interpreter baseline: " ^ m)
  | base -> (
    match Codegen.Compile.build p' with
    | Error (Codegen.Compile.Unsupported m) -> skip ("unsupported: " ^ m)
    | Error (Codegen.Compile.Toolchain m) -> skip ("toolchain: " ^ m)
    | Error (Codegen.Compile.Failed m) -> failed "cg build" m
    | Ok built ->
      let failures = ref [] in
      let fail stage what =
        failures := { Runcheck.r_stage = stage; r_what = what } :: !failures
      in
      (* sequential compiled run: same operations, same order — the
         full store must match, not just the observed arrays *)
      (match Codegen.Compile.run built ~pool:None ~schedule:Runtime.Pool.Chunk with
      | Error e -> fail "cg seq" (Codegen.Compile.error_to_string e)
      | Ok r ->
        if
          not
            (Sim.Interp.outputs_match ~tol r.Codegen.Compile.out_lines
               base.Sim.Interp.output
            && Sim.Interp.stores_match ~tol r.Codegen.Compile.store
                 base.Sim.Interp.final_store)
        then fail "cg seq" "sequential compiled run diverged from interpreter");
      List.iter
        (fun (domains, schedule) ->
          let stage =
            Printf.sprintf "cg d=%d %s" domains
              (Runtime.Pool.schedule_to_string schedule)
          in
          match
            Runtime.Pool.with_pool domains (fun pool ->
                Codegen.Compile.run built ~pool:(Some pool) ~schedule)
          with
          | Error e -> fail stage (Codegen.Compile.error_to_string e)
          | Ok r ->
            if
              not
                (Runcheck.observably_equal base
                   ~output:r.Codegen.Compile.out_lines
                   ~final_store:r.Codegen.Compile.store)
            then fail stage "compiled parallel run diverged from interpreter")
        configs;
      {
        compiled = true;
        parallel_loops;
        skipped = None;
        failures = List.rev !failures;
      })
