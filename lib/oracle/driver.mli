(** The fuzzing driver: generate → run every enabled oracle → shrink
    and persist counterexamples.

    Per program index [i], the generator draws from
    [Random.State.make [| seed; i |]], so any single failing index can
    be re-run in isolation.  Generated programs whose baseline
    execution produces non-finite values (or crashes) are
    rejection-sampled away — float comparison against garbage proves
    nothing.

    Counterexamples are minimized by greedy descent over
    {!Gen.shrink} under a predicate that re-runs the failing oracle,
    then saved to the corpus directory (when one is given) in the
    {!Corpus} format.  Composed-sequence failures are saved unshrunk:
    their step descriptors are positional and would dangle as the
    program shrinks under them. *)

type oracle = Dep | Sem | Run | Cg

type config = {
  n : int;                    (** programs to generate *)
  seed : int;
  oracles : oracle list;
  corpus_dir : string option; (** save minimized counterexamples here *)
  shrink : bool;
  gen_cfg : Gen.cfg;
  program_gen : (Random.State.t -> Fortran_front.Ast.program) option;
      (** draw programs from this generator instead of [Gen.program]
          (e.g. {!Stress.fuzz_gen}); [gen_cfg] is ignored when set *)
  sequences : bool;           (** also fuzz composed transformation
                                  sequences (semantics oracle) *)
  progress : string -> unit;  (** narration callback *)
}

val default : config

type stats = {
  programs : int;        (** accepted (run through the oracles) *)
  rejected : int;        (** discarded by rejection sampling *)
  dep_classes : int;     (** concrete dependence classes checked *)
  dep_misses : int;
  dep_realized : int;    (** DDG array deps concretely realized *)
  dep_spurious : int;    (** … and never realized (imprecision) *)
  dep_spurious_by_tier : (string * int) list;
      (** spurious edges grouped by deciding provenance tier, sorted *)
  sem_instances : int;   (** single-transformation instances compared *)
  sem_failures : int;
  seq_steps : int;       (** composed-sequence steps compared *)
  seq_failures : int;
  run_loops : int;       (** analysis-approved DOALLs executed *)
  run_failures : int;
  cg_programs : int;     (** programs compiled and run natively *)
  cg_skipped : int;      (** outside the subset / toolchain missing *)
  cg_failures : int;
  failures : string list;  (** one human-readable line per failure *)
  saved : string list;     (** corpus files written *)
}

val ok : stats -> bool

(** Multi-line human-readable summary. *)
val summary : stats -> string

val run : config -> stats

(** The seed every fuzz/stress entry point honors: an explicit CLI
    seed wins, then a well-formed [QCHECK_SEED] environment value,
    then the documented default (42).  Pure, so tests can exercise the
    resolution without touching the process environment. *)
val seed_of : env:string option -> cli:int option -> int
