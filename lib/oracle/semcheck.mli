(** The semantics oracle.

    For every transformation instance the catalog reports applicable
    and safe on a program, apply it and compare the transformed
    program's observable behaviour against the original's: PRINT
    output (within tolerance — reductions reassociate) and the final
    contents of the observed arrays.  Scalars introduced or renamed by
    a transformation (strip-mine's block variable, scalar expansion's
    temporaries) legitimately change the store's shape, so only the
    arrays in [observe] (default {!Gen.observed_arrays}) plus the
    PRINT output are compared.

    Also checks a contract the editor relies on: an instance diagnosed
    applicable+safe must not be refused by [apply].

    Transformation arguments are addressed positionally — a loop by
    its preorder index among the unit's DO statements, a statement
    pair by flattened source positions — so a recorded failing step
    can be replayed against a reparsed copy of the program whose
    statement ids differ (see {!Corpus}). *)

open Fortran_front
open Dependence
open Transform

type failure = {
  f_name : string;   (** catalog entry name *)
  f_args : string;   (** positional argument descriptor, replayable *)
  f_what : string;   (** what went wrong *)
}

val failure_to_string : failure -> string

(** Positional descriptors for catalog arguments:
    ["loop=2"], ["pair=4,5"], ["loop=1 factor=4"], ["loop=0 var=T"]. *)
val describe_args : Depenv.t -> Catalog.args -> string

(** Parse a descriptor back against a (possibly reparsed) unit.
    Returns [None] if the positions no longer exist. *)
val parse_args : Depenv.t -> string -> Catalog.args option

(** [check_instances p] — sweep {!Catalog.sites} once over the
    program's main unit.  Returns (live instances compared, failures);
    no failures = all live instances preserved semantics.
    @param observe arrays compared in the final store
    @param factors blocking/unroll factors enumerated
    @param only restrict to these catalog entry names (shrinking
      re-checks just the failing transformation)
    @param max_steps simulator budget per run *)
val check_instances :
  ?observe:string list ->
  ?factors:int list ->
  ?only:string list ->
  ?max_steps:int ->
  Ast.program ->
  int * failure list

(** [check_sequence rng p] — apply a random composed sequence of up to
    [len] applicable+safe transformations (re-analyzing between
    steps), comparing against the original after each step.  Returns
    the step descriptors actually applied and the failure, if any. *)
val check_sequence :
  ?observe:string list ->
  ?len:int ->
  ?max_steps:int ->
  Random.State.t ->
  Ast.program ->
  (string * string) list * failure option

(** [replay_steps p steps] — re-apply recorded [(name, args)] steps,
    checking semantics after each.  A step the diagnosis now refuses
    ends the replay with [Ok] — refusing the transformation is one
    valid way to have fixed the recorded bug.  [Error] means the bug
    is still present (semantics still change) or the descriptor no
    longer resolves against the program (corpus integrity). *)
val replay_steps :
  ?observe:string list ->
  ?max_steps:int ->
  Ast.program ->
  (string * string) list ->
  (unit, string) result
