open Fortran_front
open Dependence
open Transform

type failure = { f_name : string; f_args : string; f_what : string }

let failure_to_string f =
  Printf.sprintf "%s %s: %s" f.f_name f.f_args f.f_what

(* ------------------------------------------------------------------ *)
(* positional argument descriptors                                     *)
(* ------------------------------------------------------------------ *)

(* DO statements of the unit in preorder *)
let unit_loops (u : Ast.program_unit) =
  List.rev
    (Ast.fold_stmts
       (fun acc s ->
         match s.Ast.node with Ast.Do _ -> s.Ast.sid :: acc | _ -> acc)
       [] u.Ast.body)

(* all statements in preorder *)
let unit_stmts (u : Ast.program_unit) =
  List.rev (Ast.fold_stmts (fun acc s -> s.Ast.sid :: acc) [] u.Ast.body)

let index_of x l =
  let rec go i = function
    | [] -> None
    | y :: _ when y = x -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 l

let describe_args (env : Depenv.t) (args : Catalog.args) =
  let u = env.Depenv.punit in
  let loop_ix sid =
    match index_of sid (unit_loops u) with
    | Some i -> i
    | None -> -1
  in
  match args with
  | Catalog.On_loop sid -> Printf.sprintf "loop=%d" (loop_ix sid)
  | Catalog.With_factor (sid, f) ->
    Printf.sprintf "loop=%d factor=%d" (loop_ix sid) f
  | Catalog.With_var (sid, v) -> Printf.sprintf "loop=%d var=%s" (loop_ix sid) v
  | Catalog.On_pair (a, b) ->
    let stmts = unit_stmts u in
    let ix sid = match index_of sid stmts with Some i -> i | None -> -1 in
    Printf.sprintf "pair=%d,%d" (ix a) (ix b)

let parse_args (env : Depenv.t) (desc : string) : Catalog.args option =
  let u = env.Depenv.punit in
  let fields =
    String.split_on_char ' ' desc
    |> List.filter_map (fun f ->
           match String.index_opt f '=' with
           | Some i ->
             Some
               ( String.sub f 0 i,
                 String.sub f (i + 1) (String.length f - i - 1) )
           | None -> None)
  in
  let field k = List.assoc_opt k fields in
  let nth_opt l i = if i >= 0 && i < List.length l then Some (List.nth l i) else None in
  match (field "loop", field "pair") with
  | Some ls, _ -> (
    match int_of_string_opt ls with
    | None -> None
    | Some i -> (
      match nth_opt (unit_loops u) i with
      | None -> None
      | Some sid -> (
        match (field "factor", field "var") with
        | Some fs, _ ->
          Option.map (fun f -> Catalog.With_factor (sid, f)) (int_of_string_opt fs)
        | None, Some v -> Some (Catalog.With_var (sid, v))
        | None, None -> Some (Catalog.On_loop sid))))
  | None, Some ps -> (
    match String.split_on_char ',' ps with
    | [ a; b ] -> (
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some ia, Some ib -> (
        let stmts = unit_stmts u in
        match (nth_opt stmts ia, nth_opt stmts ib) with
        | Some sa, Some sb -> Some (Catalog.On_pair (sa, sb))
        | _ -> None)
      | _ -> None)
    | _ -> None)
  | None, None -> None

(* ------------------------------------------------------------------ *)
(* observable comparison                                               *)
(* ------------------------------------------------------------------ *)

let tol = 1e-5

let restrict observe store =
  List.filter (fun (name, _) -> List.mem name observe) store

let run_main ?(max_steps = 2_000_000) p =
  Sim.Interp.run ~honor_parallel:false ~max_steps p

let observably_equal ~observe (base : Sim.Interp.outcome)
    (other : Sim.Interp.outcome) =
  Sim.Interp.outputs_match ~tol base.Sim.Interp.output other.Sim.Interp.output
  && Sim.Interp.stores_match ~tol
       (restrict observe base.Sim.Interp.final_store)
       (restrict observe other.Sim.Interp.final_store)

let main_unit (p : Ast.program) =
  List.find (fun u -> u.Ast.kind = Ast.Main) p.Ast.punits

let with_main (p : Ast.program) (u' : Ast.program_unit) =
  {
    Ast.punits =
      List.map (fun u -> if u.Ast.kind = Ast.Main then u' else u) p.Ast.punits;
  }

(* apply one diagnosed-safe instance; [Ok None] = instance not live *)
let try_instance env ddg (entry : Catalog.entry) args :
    (Ast.program_unit option, string) result =
  let d = entry.Catalog.diagnose env ddg args in
  if not (Diagnosis.ok d) then Ok None
  else
    match entry.Catalog.apply env ddg args with
    | Ok u' -> Ok (Some u')
    | Error d' ->
      Error
        (Printf.sprintf "diagnosed applicable+safe but apply refused: %s"
           (Diagnosis.to_string d'))

let check_one ~observe ~max_steps ~base p name argdesc (u' : Ast.program_unit) :
    failure option =
  let p' = with_main p u' in
  match run_main ~max_steps p' with
  | exception Sim.Interp.Runtime_error msg ->
    Some
      { f_name = name; f_args = argdesc;
        f_what = "transformed program crashed: " ^ msg }
  | out ->
    if observably_equal ~observe base out then None
    else
      Some
        { f_name = name; f_args = argdesc;
          f_what = "observable state diverged from the original" }

let check_instances ?(observe = Gen.observed_arrays) ?(factors = [ 3; 4 ])
    ?only ?(max_steps = 2_000_000) (p : Ast.program) : int * failure list =
  let u = main_unit p in
  let env = Depenv.make u in
  let ddg = Ddg.compute env in
  let base = run_main ~max_steps p in
  let live = ref 0 in
  let sites =
    Catalog.sites ~factors env
    |> List.filter (fun (name, _) ->
           match only with None -> true | Some names -> List.mem name names)
  in
  let failures =
    List.filter_map
      (fun (name, args) ->
        match Catalog.find name with
        | None -> None
        | Some entry -> (
          let argdesc = describe_args env args in
          match try_instance env ddg entry args with
          | Error what -> Some { f_name = name; f_args = argdesc; f_what = what }
          | Ok None -> None
          | Ok (Some u') ->
            incr live;
            check_one ~observe ~max_steps ~base p name argdesc u'))
      sites
  in
  (!live, failures)

(* ------------------------------------------------------------------ *)
(* composed sequences                                                  *)
(* ------------------------------------------------------------------ *)

let shuffle rng l =
  let arr = Array.of_list l in
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done;
  Array.to_list arr

let check_sequence ?(observe = Gen.observed_arrays) ?(len = 3)
    ?(max_steps = 2_000_000) rng (p : Ast.program) :
    (string * string) list * failure option =
  let base = run_main ~max_steps p in
  let rec go steps_done p k =
    if k = 0 then (List.rev steps_done, None)
    else
      let u = main_unit p in
      let env = Depenv.make u in
      let ddg = Ddg.compute env in
      let sites = shuffle rng (Catalog.sites ~factors:[ 3 ] env) in
      (* take the first live instance under this shuffle *)
      let rec first = function
        | [] -> None
        | (name, args) :: rest -> (
          match Catalog.find name with
          | None -> first rest
          | Some entry -> (
            let argdesc = describe_args env args in
            match try_instance env ddg entry args with
            | Error what ->
              Some (`Contract { f_name = name; f_args = argdesc; f_what = what })
            | Ok None -> first rest
            | Ok (Some u') -> Some (`Applied (name, argdesc, u'))))
      in
      match first sites with
      | None -> (List.rev steps_done, None)
      | Some (`Contract f) -> (List.rev steps_done, Some f)
      | Some (`Applied (name, argdesc, u')) -> (
        let steps_done = (name, argdesc) :: steps_done in
        match check_one ~observe ~max_steps ~base p name argdesc u' with
        | Some f -> (List.rev steps_done, Some f)
        | None -> go steps_done (with_main p u') (k - 1))
  in
  go [] p (1 + Random.State.int rng len)

(* ------------------------------------------------------------------ *)
(* corpus replay                                                       *)
(* ------------------------------------------------------------------ *)

let replay_steps ?(observe = Gen.observed_arrays) ?(max_steps = 2_000_000)
    (p : Ast.program) (steps : (string * string) list) : (unit, string) result =
  let base = run_main ~max_steps p in
  let rec go p = function
    | [] -> Ok ()
    | (name, argdesc) :: rest -> (
      match Catalog.find name with
      | None -> Error (Printf.sprintf "unknown transformation %S" name)
      | Some entry -> (
        let u = main_unit p in
        let env = Depenv.make u in
        match parse_args env argdesc with
        | None ->
          Error
            (Printf.sprintf "step %s %s no longer resolves against the program"
               name argdesc)
        | Some args -> (
          let ddg = Ddg.compute env in
          let d = entry.Catalog.diagnose env ddg args in
          if not (Diagnosis.ok d) then
            Ok () (* the analysis now refuses the step: bug fixed *)
          else
            match entry.Catalog.apply env ddg args with
            | Error d' ->
              Error
                (Printf.sprintf "%s %s: apply refused after ok diagnosis: %s"
                   name argdesc (Diagnosis.to_string d'))
            | Ok u' -> (
              match check_one ~observe ~max_steps ~base p name argdesc u' with
              | Some f -> Error (failure_to_string f)
              | None -> go (with_main p u') rest))))
  in
  go p steps
