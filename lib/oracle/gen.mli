(** Randomized Fortran program generator for the differential-testing
    oracles.

    Programs are complete main units over a fixed storage shape — 1-D
    real arrays [A] and [B] with bounds (-4, 44), a 2-D real array [C]
    with bounds (-4, 28)², real scalars [T] (temporary) and [S]
    (accumulator), and integer scalars [N] (symbolic loop bound, set
    to a random literal at the top) and [K] (auxiliary induction
    accumulator).  A deterministic prologue initializes storage, a
    checksum epilogue folds the arrays into [S] and PRINTs the
    observable scalars, and in between sit 1–[nests_max] random loop
    nests: general nests to depth [max_depth] with IF guards, perfect
    2- and 3-deep nests (interchange/tile/skew fodder), and auxiliary
    induction-variable loops.  Loop bounds may be literal, symbolic
    ([N]), or triangular (an outer induction variable); steps may be
    non-unit and negative; a rare degenerate header yields a zero-trip
    loop.  Subscripts cover ZIV/SIV/MIV forms: [i+c], [2i+c],
    [i+j+c], [N+c], literals, and the auxiliary variable [K].

    The generator draws from a [Random.State.t] directly (not a QCheck
    generator) so one implementation serves the [ped fuzz] driver and,
    via [QCheck2.Gen.make_primitive], the property-test suite. *)

open Fortran_front

type cfg = {
  nests_min : int;
  nests_max : int;   (** random nests between prologue and checksum *)
  max_depth : int;   (** loop nesting depth, at most [depth_limit] *)
  max_body : int;    (** statements per generated block *)
  guards : bool;     (** IF/ELSE around assignments *)
  symbolic : bool;   (** [N] as a loop bound / subscript term *)
  triangular : bool; (** outer induction variable as an inner bound *)
  aux : bool;        (** auxiliary induction nests ([K = K + c]) *)
  negative_step : bool;
  nonunit_step : bool;
  two_dim : bool;    (** references to the 2-D array [C] *)
}

val default : cfg

(** A cheaper shape for smoke tests: fewer nests, depth 2. *)
val small : cfg

(** The arrays whose final contents the semantics and runtime oracles
    compare — the generator's observable state, together with the
    PRINT output. *)
val observed_arrays : string list

(** {2 Composition surface}

    The stress-workload factory ({!Stress}) assembles whole multi-unit
    programs out of the same building blocks [program] uses, so one
    generator serves both the fuzz driver and the scale benchmarks. *)

(** Nesting depths the induction-variable supply covers. *)
val depth_limit : int

(** Induction-variable name at a loop depth (1-based, up to
    [depth_limit]); all names are implicitly INTEGER. *)
val iv_at_depth : int -> string

(** One random assignment over the in-scope induction variables
    (outermost first); [allow_k] admits the auxiliary accumulator [K]
    as a subscript. *)
val assign : ?allow_k:bool -> cfg -> Random.State.t -> string list -> Ast.stmt

(** An IF/ELSE guard around random assignments. *)
val guard : cfg -> Random.State.t -> string list -> Ast.stmt

(** A general loop at [depth] whose body may nest further up to
    [cfg.max_depth]; [ivs] are the enclosing induction variables. *)
val loop : cfg -> Random.State.t -> depth:int -> ivs:string list -> Ast.stmt

(** A perfect nest of exactly the given depth (at most [depth_limit]),
    ending in a block of assignments. *)
val perfect : cfg -> Random.State.t -> int -> Ast.stmt

(** One random nest: a general loop, a perfect nest, or an auxiliary
    induction idiom, per [cfg]. *)
val nest : cfg -> Random.State.t -> Ast.stmt list

(** The deterministic storage-initialization prologue ([N] set to the
    argument). *)
val prologue : int -> Ast.stmt list

(** The checksum epilogue: folds the arrays into [S] and PRINTs the
    observable scalars. *)
val checksum_stmts : unit -> Ast.stmt list

(** Declarations of the fixed storage shape ([A], [B], [C]). *)
val decls : Ast.decl list

(** [program rng] generates a complete single-unit program. *)
val program : ?cfg:cfg -> Random.State.t -> Ast.program

(** [finite_outcome o] — no array or scalar ended up NaN, infinite, or
    absurdly large.  The driver rejection-samples generated programs
    through this predicate so float comparisons downstream stay
    meaningful. *)
val finite_outcome : Sim.Interp.outcome -> bool

(** Structural counterexample shrinker: candidate simplifications of
    the main unit's body, biggest reduction first — drop a statement,
    replace a loop by its body with the induction variable pinned to
    the lower bound, shrink literal bounds toward a single iteration,
    unwrap IF branches, and recursively the same inside nested
    bodies.  Statement ids of untouched statements are preserved. *)
val shrink : Ast.program -> Ast.program Seq.t
