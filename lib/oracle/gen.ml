open Fortran_front

type cfg = {
  nests_min : int;
  nests_max : int;
  max_depth : int;
  max_body : int;
  guards : bool;
  symbolic : bool;
  triangular : bool;
  aux : bool;
  negative_step : bool;
  nonunit_step : bool;
  two_dim : bool;
}

let default =
  {
    nests_min = 1;
    nests_max = 3;
    max_depth = 3;
    max_body = 3;
    guards = true;
    symbolic = true;
    triangular = true;
    aux = true;
    negative_step = true;
    nonunit_step = true;
    two_dim = true;
  }

let small = { default with nests_max = 2; max_depth = 2; max_body = 2 }

let observed_arrays = [ "A"; "B"; "C" ]

(* ------------------------------------------------------------------ *)
(* rng helpers                                                         *)
(* ------------------------------------------------------------------ *)

let int_in rng lo hi = lo + Random.State.int rng (hi - lo + 1)
let chance rng p = Random.State.float rng 1.0 < p

let pick rng l = List.nth l (Random.State.int rng (List.length l))

(* weighted choice over (weight, thunk) pairs *)
let weighted rng (cands : (int * (unit -> 'a)) list) : 'a =
  let total = List.fold_left (fun a (w, _) -> a + w) 0 cands in
  let n = Random.State.int rng total in
  let rec go n = function
    | [] -> assert false
    | (w, f) :: rest -> if n < w then f () else go (n - w) rest
  in
  go n cands

(* induction-variable name at a given loop depth (1-based); every name
   starts with I/J/L so Fortran's implicit typing keeps them INTEGER *)
let iv_names = [ "I"; "J"; "L"; "I2"; "J2"; "L2"; "I3"; "J3" ]
let depth_limit = List.length iv_names
let iv_at_depth d = List.nth iv_names (d - 1)

(* ------------------------------------------------------------------ *)
(* subscripts                                                          *)
(*                                                                     *)
(* Value ranges, so every subscript stays in bounds: induction         *)
(* variables run in [1, 12] (and triangular/symbolic bounds only       *)
(* shrink that), N in [5, 10], K in [0, 36] (stride ≤ 3, trip ≤ 12),   *)
(* offsets in [-2, 2].  A/B accept [-4, 44]; C accepts [-4, 28] per    *)
(* dimension.                                                          *)
(* ------------------------------------------------------------------ *)

(* negative constants in the parser's normal form (unary minus, not a
   negative literal), so generated programs pretty-print exactly as
   their own reparse does — the stress factory's byte-stable
   round-trip *)
let neg n = Ast.Un (Ast.Neg, Ast.Int n)

let gen_off rng = Ast.Int (int_in rng (-2) 2)

let plus_off rng e =
  match gen_off rng with
  | Ast.Int 0 -> e
  | off -> Ast.simplify (Ast.add e off)

(* a 1-D subscript over the in-scope induction variables [ivs]
   (innermost last); [allow_k] admits the auxiliary accumulator *)
let gen_sub1 ?(allow_k = false) cfg rng ivs =
  let iv () = Ast.Var (pick rng ivs) in
  weighted rng
    ([ (5, fun () -> plus_off rng (iv ()));
       (2, fun () -> plus_off rng (Ast.mul (Ast.Int 2) (iv ())));
       (1, fun () -> Ast.Int (int_in rng 1 6));
     ]
    @ (if List.length ivs >= 2 then
         [ (2, fun () -> plus_off rng (Ast.add (iv ()) (iv ()))) ]
       else [])
    @ (if cfg.symbolic then [ (1, fun () -> plus_off rng (Ast.Var "N")) ]
       else [])
    @ if allow_k then [ (4, fun () -> Ast.Var "K") ] else [])

(* a dimension of the 2-D array C: same shapes minus the doubled form *)
let gen_sub2 cfg rng ivs =
  let iv () = Ast.Var (pick rng ivs) in
  weighted rng
    ([ (5, fun () -> plus_off rng (iv ()));
       (1, fun () -> Ast.Int (int_in rng 1 6));
     ]
    @ (if List.length ivs >= 2 then
         [ (2, fun () -> plus_off rng (Ast.add (iv ()) (iv ()))) ]
       else [])
    @
    if cfg.symbolic then [ (1, fun () -> plus_off rng (Ast.Var "N")) ]
    else [])

let gen_ref cfg rng ?(allow_k = false) ivs ~write =
  weighted rng
    ([ (3, fun () -> Ast.Index ("A", [ gen_sub1 ~allow_k cfg rng ivs ]));
       (2, fun () -> Ast.Index ("B", [ gen_sub1 ~allow_k cfg rng ivs ]));
     ]
    @
    if cfg.two_dim then
      [ (2, fun () -> Ast.Index ("C", [ gen_sub2 cfg rng ivs; gen_sub2 cfg rng ivs ]))
      ]
    else [ (1, fun () -> Ast.Index ((if write then "A" else "B"),
                                    [ gen_sub1 ~allow_k cfg rng ivs ])) ])

(* ------------------------------------------------------------------ *)
(* expressions                                                         *)
(*                                                                     *)
(* Multiplication is only by literal factors ≤ 1, and other            *)
(* combinations are additive, so values grow at most linearly in the   *)
(* statement count — the driver still rejection-samples for finite     *)
(* results, but the reject rate stays low.                             *)
(* ------------------------------------------------------------------ *)

let gen_frac rng = Ast.Real (pick rng [ 0.25; 0.5; 0.75; 1.0 ])

let gen_atom cfg rng ivs =
  weighted rng
    [ (5, fun () -> gen_ref cfg rng ivs ~write:false);
      (2, fun () -> Ast.Var "T");
      (1, fun () -> Ast.Var (pick rng ivs));
      (2, fun () -> Ast.Real (float_of_int (int_in rng 1 9) *. 0.5));
    ]

let gen_rhs cfg rng ivs =
  let a () = gen_atom cfg rng ivs in
  weighted rng
    [ (3, a);
      (3, fun () -> Ast.add (a ()) (a ()));
      (2, fun () -> Ast.sub (a ()) (a ()));
      (2, fun () -> Ast.mul (a ()) (gen_frac rng));
      (2, fun () -> Ast.add (a ()) (Ast.mul (a ()) (gen_frac rng)));
    ]

(* ------------------------------------------------------------------ *)
(* statements                                                          *)
(* ------------------------------------------------------------------ *)

let gen_assign ?(allow_k = false) cfg rng ivs =
  weighted rng
    [ (5, fun () ->
          Ast.mk (Ast.Assign (gen_ref cfg rng ~allow_k ivs ~write:true,
                              gen_rhs cfg rng ivs)));
      (1, fun () -> Ast.mk (Ast.Assign (Ast.Var "T", gen_rhs cfg rng ivs)));
      (1, fun () ->
          Ast.mk
            (Ast.Assign (Ast.Var "S", Ast.add (Ast.Var "S") (gen_rhs cfg rng ivs))));
    ]

let gen_cond cfg rng ivs =
  let iv () = Ast.Var (pick rng ivs) in
  weighted rng
    [ (3, fun () ->
          Ast.Bin (pick rng [ Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.Ne ],
                   iv (), Ast.Int (int_in rng 2 9)));
      (2, fun () ->
          Ast.Bin (Ast.Eq, Ast.Index ("MOD", [ iv (); Ast.Int 2 ]), Ast.Int 0));
      (1, fun () ->
          Ast.Bin (Ast.Gt, gen_ref cfg rng ivs ~write:false,
                   Ast.Real (float_of_int (int_in rng 1 5))));
    ]

let gen_guard cfg rng ivs =
  let then_body = List.init (int_in rng 1 2) (fun _ -> gen_assign cfg rng ivs) in
  let else_body =
    if chance rng 0.3 then [ gen_assign cfg rng ivs ] else []
  in
  Ast.mk (Ast.If ([ (gen_cond cfg rng ivs, then_body) ], else_body))

(* ------------------------------------------------------------------ *)
(* loops                                                               *)
(* ------------------------------------------------------------------ *)

let gen_header cfg rng ~outer_ivs ~iv =
  if cfg.negative_step && chance rng 0.15 then
    (* descending *)
    let step = if cfg.nonunit_step && chance rng 0.4 then 2 else 1 in
    { Ast.dvar = iv; lo = Ast.Int (int_in rng 8 12); hi = Ast.Int (int_in rng 1 3);
      step = Some (neg step); parallel = false }
  else if chance rng 0.05 then
    (* degenerate: zero-trip *)
    { Ast.dvar = iv; lo = Ast.Int (int_in rng 9 12); hi = Ast.Int (int_in rng 3 8);
      step = None; parallel = false }
  else
    let lo = Ast.Int (int_in rng 1 3) in
    let hi =
      weighted rng
        ([ (5, fun () -> Ast.Int (int_in rng 5 12)) ]
        @ (if cfg.symbolic then [ (2, fun () -> Ast.Var "N") ] else [])
        @
        if cfg.triangular && outer_ivs <> [] then
          [ (2, fun () -> Ast.Var (pick rng outer_ivs)) ]
        else [])
    in
    let step =
      if cfg.nonunit_step && chance rng 0.25 then Some (Ast.Int 2) else None
    in
    { Ast.dvar = iv; lo; hi; step; parallel = false }

(* a block of [n] statements at loop depth [depth]; [ivs] are the
   enclosing induction variables, outermost first *)
let rec gen_block cfg rng ~depth ~ivs n =
  List.init n (fun _ ->
      let r = Random.State.float rng 1.0 in
      if depth < cfg.max_depth && r < 0.25 then gen_loop cfg rng ~depth:(depth + 1) ~ivs
      else if cfg.guards && r < 0.45 then gen_guard cfg rng ivs
      else gen_assign cfg rng ivs)

and gen_loop cfg rng ~depth ~ivs =
  let iv = iv_at_depth depth in
  let h = gen_header cfg rng ~outer_ivs:ivs ~iv in
  let body = gen_block cfg rng ~depth ~ivs:(ivs @ [ iv ]) (int_in rng 1 cfg.max_body) in
  Ast.mk (Ast.Do (h, body))

(* a perfect nest of the given depth, ending in a block of assigns —
   the shape interchange/tile/skew/coalesce want *)
let gen_perfect cfg rng depth =
  let rec build d ivs =
    let iv = iv_at_depth d in
    let h = gen_header cfg rng ~outer_ivs:ivs ~iv in
    let ivs' = ivs @ [ iv ] in
    let body =
      if d < depth then [ build (d + 1) ivs' ]
      else List.init (int_in rng 1 2) (fun _ -> gen_assign cfg rng ivs')
    in
    Ast.mk (Ast.Do (h, body))
  in
  build 1 []

(* auxiliary induction: K = 0; DO I: K = K + c; use K as a subscript *)
let gen_aux cfg rng =
  let stride = int_in rng 1 3 in
  let h =
    { Ast.dvar = "I"; lo = Ast.Int 1; hi = Ast.Int (int_in rng 6 12);
      step = None; parallel = false }
  in
  let body =
    Ast.mk (Ast.Assign (Ast.Var "K", Ast.add (Ast.Var "K") (Ast.Int stride)))
    :: gen_assign ~allow_k:true cfg rng [ "I" ]
    :: (if chance rng 0.5 then [ gen_assign ~allow_k:true cfg rng [ "I" ] ] else [])
  in
  [ Ast.mk (Ast.Assign (Ast.Var "K", Ast.Int 0));
    Ast.mk (Ast.Do (h, body)) ]

let gen_nest cfg rng : Ast.stmt list =
  weighted rng
    ([ (4, fun () -> [ gen_loop cfg rng ~depth:1 ~ivs:[] ]);
       (3, fun () -> [ gen_perfect cfg rng (min 2 cfg.max_depth) ]);
     ]
    @ (if cfg.max_depth >= 3 then [ (1, fun () -> [ gen_perfect cfg rng 3 ]) ]
       else [])
    @ if cfg.aux then [ (1, fun () -> gen_aux cfg rng) ] else [])

(* ------------------------------------------------------------------ *)
(* whole programs                                                      *)
(* ------------------------------------------------------------------ *)

let prologue n_val =
  Parser.parse_stmts_string ~file:"<fuzz-prologue>"
    (Printf.sprintf
       "      T = 1.5\n\
       \      S = 0.0\n\
       \      K = 0\n\
       \      N = %d\n\
       \      DO I = 1, 40\n\
       \        A(I) = FLOAT(I) * 0.5\n\
       \        B(I) = FLOAT(41 - I) * 0.25\n\
       \      ENDDO\n\
       \      DO I = 1, 12\n\
       \        DO J = 1, 12\n\
       \          C(I, J) = FLOAT(I + J) * 0.25\n\
       \        ENDDO\n\
       \      ENDDO\n"
       n_val)

let checksum =
  "      DO I = 1, 40\n\
  \        S = S + A(I) + B(I)\n\
  \      ENDDO\n\
  \      DO I = 1, 12\n\
  \        DO J = 1, 12\n\
  \          S = S + C(I, J)\n\
  \        ENDDO\n\
  \      ENDDO\n\
  \      PRINT *, S, T, K, N\n"

let checksum_stmts () =
  Parser.parse_stmts_string ~file:"<fuzz-checksum>" checksum

let decls =
  [
    { Ast.dname = "A"; dtyp = Ast.Treal; dims = [ (neg 4, Ast.Int 44) ];
      init = None; data_init = None; common_block = None };
    { Ast.dname = "B"; dtyp = Ast.Treal; dims = [ (neg 4, Ast.Int 44) ];
      init = None; data_init = None; common_block = None };
    { Ast.dname = "C"; dtyp = Ast.Treal;
      dims = [ (neg 4, Ast.Int 28); (neg 4, Ast.Int 28) ];
      init = None; data_init = None; common_block = None };
  ]

(* the composition surface the stress factory (Stress) builds whole
   multi-unit programs from *)
let assign = gen_assign
let guard = gen_guard
let loop = gen_loop
let perfect = gen_perfect
let nest = gen_nest

let program ?(cfg = default) rng =
  let nests = int_in rng cfg.nests_min cfg.nests_max in
  let middle = List.concat (List.init nests (fun _ -> gen_nest cfg rng)) in
  let body =
    prologue (int_in rng 5 10) @ middle @ checksum_stmts ()
  in
  {
    Ast.punits =
      [
        { Ast.uname = "FUZZ"; kind = Ast.Main; decls; implicit_none = false;
          implicits = []; body };
      ];
  }

let finite_outcome (o : Sim.Interp.outcome) =
  List.for_all
    (fun (_, vs) ->
      List.for_all (fun v -> Float.is_finite v && Float.abs v < 1e60) vs)
    o.Sim.Interp.final_store

(* ------------------------------------------------------------------ *)
(* shrinking                                                           *)
(* ------------------------------------------------------------------ *)

let splice stmts i repl =
  List.concat (List.mapi (fun j s -> if j = i then repl else [ s ]) stmts)

(* candidate replacements (each a statement list) for one statement,
   biggest reduction first *)
let rec shrink_stmt (s : Ast.stmt) : Ast.stmt list list =
  match s.Ast.node with
  | Ast.Do (h, body) ->
    let unlooped =
      [ Transform.Rewrite.subst_in_stmts h.Ast.dvar h.Ast.lo body ]
    in
    let bounds =
      match (h.Ast.lo, h.Ast.hi) with
      | Ast.Int l, Ast.Int n when abs (n - l) > 1 ->
        [ [ { s with Ast.node = Ast.Do ({ h with Ast.hi = Ast.Int (l + ((n - l) / 2)) }, body) } ];
          [ { s with Ast.node = Ast.Do ({ h with Ast.hi = h.Ast.lo; step = None }, body) } ];
        ]
      | _, Ast.Int _ -> []
      | _ ->
        (* symbolic or triangular bound: pin it *)
        [ [ { s with Ast.node = Ast.Do ({ h with Ast.hi = Ast.Int 4 }, body) } ] ]
    in
    let step_drop =
      match h.Ast.step with
      | Some _ ->
        [ [ { s with Ast.node = Ast.Do ({ h with Ast.step = None }, body) } ] ]
      | None -> []
    in
    let inner =
      List.map
        (fun body' -> [ { s with Ast.node = Ast.Do (h, body') } ])
        (shrink_stmts body)
    in
    unlooped @ bounds @ step_drop @ inner
  | Ast.If (branches, els) ->
    let unwraps =
      List.map (fun (_, b) -> b) branches @ if els <> [] then [ els ] else []
    in
    let inner =
      List.concat
        (List.mapi
           (fun i (c, b) ->
             List.map
               (fun b' ->
                 [ { s with
                     Ast.node =
                       Ast.If
                         (List.mapi (fun j cb -> if j = i then (c, b') else cb) branches,
                          els) } ])
               (shrink_stmts b))
           branches)
      @ List.map
          (fun els' -> [ { s with Ast.node = Ast.If (branches, els') } ])
          (shrink_stmts els)
    in
    unwraps @ inner
  | _ -> []

(* candidates for a statement list: drop one element, or replace one *)
and shrink_stmts (stmts : Ast.stmt list) : Ast.stmt list list =
  let n = List.length stmts in
  let drops = List.init n (fun i -> splice stmts i []) in
  let replacements =
    List.concat
      (List.mapi
         (fun i s -> List.map (fun repl -> splice stmts i repl) (shrink_stmt s))
         stmts)
  in
  drops @ replacements

let shrink (p : Ast.program) : Ast.program Seq.t =
  match p.Ast.punits with
  | [ u ] ->
    List.to_seq (shrink_stmts u.Ast.body)
    |> Seq.filter (fun body -> body <> [])
    |> Seq.map (fun body -> { Ast.punits = [ { u with Ast.body } ] })
  | _ -> Seq.empty
