open Fortran_front

type profile = {
  sp_name : string;
  sp_desc : string;
  sp_subs : int;
  sp_layers : int;
  sp_fanout : int;
  sp_sub_nests : int;
  sp_main_nests : int;
  sp_depth : int;
  sp_deep_every : int;
  sp_gen : Gen.cfg;
}

(* ------------------------------------------------------------------ *)
(* named profiles                                                      *)
(* ------------------------------------------------------------------ *)

let deep =
  {
    sp_name = "deep";
    sp_desc =
      "deep loop nests: every other nest is a perfect depth-6 nest, the \
       rest general nests to depth 5";
    sp_subs = 6;
    sp_layers = 2;
    sp_fanout = 2;
    sp_sub_nests = 30;
    sp_main_nests = 12;
    sp_depth = 6;
    sp_deep_every = 2;
    sp_gen = { Gen.default with Gen.max_depth = 5 };
  }

let wide =
  {
    sp_name = "wide";
    sp_desc =
      "wide units: few units, each hundreds of statements across many \
       shallow nests (quadratic bucket-planning pressure)";
    sp_subs = 2;
    sp_layers = 1;
    sp_fanout = 1;
    sp_sub_nests = 130;
    sp_main_nests = 110;
    sp_depth = 2;
    sp_deep_every = 0;
    sp_gen = { Gen.default with Gen.max_depth = 2; Gen.max_body = 4 };
  }

let many_units =
  {
    sp_name = "many-units";
    sp_desc =
      "hundreds of units under a layered call graph (interprocedural \
       summary walk, per-unit cache volume)";
    sp_subs = 240;
    sp_layers = 4;
    sp_fanout = 3;
    sp_sub_nests = 12;
    sp_main_nests = 6;
    sp_depth = 4;
    sp_deep_every = 6;
    sp_gen = { Gen.default with Gen.max_depth = 3 };
  }

let all = [ deep; wide; many_units ]
let names = List.map (fun p -> p.sp_name) all

let by_name name =
  let canon s =
    String.lowercase_ascii (String.map (function '_' -> '-' | c -> c) s)
  in
  List.find_opt (fun p -> canon p.sp_name = canon name) all

(* ------------------------------------------------------------------ *)
(* resizing                                                            *)
(* ------------------------------------------------------------------ *)

let scale f p =
  let s x = max 1 (int_of_float (Float.round (f *. float_of_int x))) in
  let subs = s p.sp_subs in
  {
    p with
    sp_subs = subs;
    sp_layers = min p.sp_layers subs;
    sp_sub_nests = s p.sp_sub_nests;
    sp_main_nests = s p.sp_main_nests;
  }

let smoke p =
  match p.sp_name with
  | "deep" -> scale 0.25 p
  | "wide" -> scale 0.3 p
  | _ -> scale 0.15 p

(* ------------------------------------------------------------------ *)
(* program assembly                                                    *)
(* ------------------------------------------------------------------ *)

let sub_name i = Printf.sprintf "S%04d" i

(* every unit re-establishes its own scalar state, so subroutine bodies
   stay interpretable at fuzz scale *)
let sub_prologue () =
  [
    Ast.mk (Ast.Assign (Ast.Var "T", Ast.Real 1.5));
    Ast.mk (Ast.Assign (Ast.Var "S", Ast.Real 0.0));
    Ast.mk (Ast.Assign (Ast.Var "K", Ast.Int 0));
  ]

let call_stmt callee =
  Ast.mk
    (Ast.Call (callee, [ Ast.Var "A"; Ast.Var "B"; Ast.Var "C"; Ast.Var "N" ]))

(* spread [calls] evenly between the nest [blocks]; calls sit at
   statement level (never inside a generated loop), so the fuzz
   oracles' per-unit scope stays exact *)
let interleave blocks calls =
  let nb = List.length blocks and nc = List.length calls in
  if nc = 0 then List.concat blocks
  else if nb = 0 then calls
  else begin
    let calls = Array.of_list calls in
    let used = ref 0 in
    let out =
      List.concat
        (List.mapi
           (fun i b ->
             let due = (i + 1) * nc / nb in
             let cs = ref [] in
             while !used < due do
               cs := calls.(!used) :: !cs;
               incr used
             done;
             b @ List.rev !cs)
           blocks)
    in
    out @ Array.to_list (Array.sub calls !used (nc - !used))
  end

let nest_k p rng k =
  if p.sp_deep_every > 0 && k mod p.sp_deep_every = p.sp_deep_every - 1 then
    [ Gen.perfect p.sp_gen rng (min p.sp_depth Gen.depth_limit) ]
  else Gen.nest p.sp_gen rng

let validate p =
  if p.sp_subs < 1 then invalid_arg "Stress: sp_subs must be >= 1";
  if p.sp_layers < 1 || p.sp_layers > p.sp_subs then
    invalid_arg "Stress: sp_layers must be in [1, sp_subs]";
  if p.sp_depth > Gen.depth_limit || p.sp_gen.Gen.max_depth > Gen.depth_limit
  then
    invalid_arg
      (Printf.sprintf "Stress: nest depth exceeds Gen.depth_limit (%d)"
         Gen.depth_limit)

let generate ?(seed = 42) p =
  validate p;
  let rng = Random.State.make [| 0x57e55; seed |] in
  (* contiguous layer partition of subroutine indices 0..subs-1 *)
  let layer_of i = i * p.sp_layers / p.sp_subs in
  let members l =
    List.filter
      (fun i -> layer_of i = l)
      (List.init p.sp_subs (fun i -> i))
  in
  let callees_of i =
    let l = layer_of i in
    if l + 1 >= p.sp_layers then []
    else
      let next = Array.of_list (members (l + 1)) in
      List.init
        (min p.sp_fanout (Array.length next))
        (fun _ -> next.(Random.State.int rng (Array.length next)))
      |> List.sort_uniq compare
  in
  let sub i =
    let blocks = List.init p.sp_sub_nests (nest_k p rng) in
    let calls = List.map (fun j -> call_stmt (sub_name j)) (callees_of i) in
    {
      Ast.uname = sub_name i;
      kind = Ast.Subroutine [ "A"; "B"; "C"; "N" ];
      decls = Gen.decls;
      implicit_none = false;
      implicits = [];
      body = sub_prologue () @ interleave blocks calls;
    }
  in
  let subs = List.init p.sp_subs sub in
  let main =
    let blocks = List.init p.sp_main_nests (nest_k p rng) in
    let calls = List.map (fun i -> call_stmt (sub_name i)) (members 0) in
    let n_val = 5 + Random.State.int rng 6 in
    {
      Ast.uname = "STRESS";
      kind = Ast.Main;
      decls = Gen.decls;
      implicit_none = false;
      implicits = [];
      body =
        Gen.prologue n_val
        @ interleave blocks calls
        @ Gen.checksum_stmts ();
    }
  in
  (* canonical preorder ids: the same (seed, profile) fingerprints
     identically in any process, whatever the global sid counter says *)
  Ast.renumber_program { Ast.punits = main :: subs }

let source ?seed p = Pretty.program_to_string (generate ?seed p)

let lines src =
  String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 src

(* grow the unit count only: lines are linear in it, so the target is
   reached in a couple of iterations without overshooting (scaling
   nests too would make line count quadratic in the factor) *)
let scale_to_lines ?seed ~target p =
  let resize subs =
    let subs = max 1 subs in
    { p with sp_subs = subs; sp_layers = min p.sp_layers subs }
  in
  let rec go p tries =
    let src = source ?seed p in
    let n = lines src in
    if n >= target || tries <= 0 then (p, src)
    else
      let f = float_of_int target /. float_of_int n *. 1.03 in
      go (resize (int_of_float (ceil (float_of_int p.sp_subs *. f)))) (tries - 1)
  in
  go p 6

let fingerprint p =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string (Ast.renumber_program p) [ Marshal.No_sharing ]))

(* ------------------------------------------------------------------ *)
(* fuzz-scale variants                                                 *)
(* ------------------------------------------------------------------ *)

let tiny p =
  {
    p with
    sp_subs = min p.sp_subs 3;
    sp_layers = min p.sp_layers 2;
    sp_fanout = 1;
    sp_sub_nests = min p.sp_sub_nests 2;
    sp_main_nests = min p.sp_main_nests 2;
    sp_depth = min p.sp_depth 4;
    sp_gen = { p.sp_gen with Gen.max_depth = min p.sp_gen.Gen.max_depth 3 };
  }

let fuzz_gen p rng = generate ~seed:(Random.State.bits rng) (tiny p)
