(** The brute-force dependence oracle.

    Runs the program under the simulator's access trace, enumerates
    every ordered pair of accesses to the same array element with at
    least one write, classifies each pair by (kind, variable, source
    statement, sink statement, carrying level, direction vector over
    the common loops), and checks that the DDG reports a matching
    dependence — every concretely realized dependence must be covered
    (soundness).  The converse is precision, not soundness: array
    edges the DDG carries that no concrete pair realizes are counted
    as [spurious] but are not failures.

    Scalar dependences are out of scope by design: the analysis
    deliberately omits carried edges for recognized reductions,
    privatizable scalars, and auxiliary induction variables, so only
    array references (the domain of the dependence tests) are checked.

    The check assumes structured control flow (no GOTO), which the
    generator guarantees: within one iteration, execution order then
    coincides with flattened source order, matching how the DDG
    orients loop-independent edges.

    The oracle's scope is the Main unit, whose [env]/[ddg] the driver
    passes: on multi-unit programs (the stress factory's), accesses
    attributed to callee statements are dropped from the trace.  The
    generators keep CALLs at statement level — never inside a loop —
    so this loses no within-unit coverage. *)

open Fortran_front
open Dependence

(** Why a concrete dependence class was not covered. *)
type why =
  | Edge       (** no dependence at all between the two statements *)
  | Level      (** an edge exists, but not at the realized level *)
  | Direction  (** level matches, but the realized direction vector
                   is absent *)

type miss = {
  m_kind : Ddg.kind;
  m_var : string;
  m_src : Ast.stmt_id;
  m_dst : Ast.stmt_id;
  m_level : int option;
  m_dirs : Dtest.direction array;
  m_why : why;
  m_count : int;  (** concrete pairs in this class *)
}

type report = {
  classes : int;   (** distinct concrete dependence classes observed *)
  misses : miss list;
  realized : int;  (** DDG array deps matched by some concrete class *)
  spurious : int;  (** DDG array deps never realized (precision) *)
  spurious_by_tier : (string * int) list;
      (** the spurious edges grouped by the provenance tier that
          decided them, sorted — which analysis stage over-approximates *)
  truncated : bool;  (** some array element's access list exceeded
                         [cell_cap] and was subsampled — missing
                         coverage possible, soundness of reported
                         misses unaffected *)
}

val miss_to_string : miss -> string

(** [check env ddg program] — trace and compare.
    @param max_steps simulator budget (default 2_000_000)
    @param cell_cap per-element access-list cap before even
      subsampling (default 160) *)
val check :
  ?max_steps:int -> ?cell_cap:int -> Depenv.t -> Ddg.t -> Ast.program -> report
