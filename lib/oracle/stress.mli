(** Stress-workload factory: composes {!Gen}'s unit generator into
    whole multi-unit programs with tunable size knobs — deep nests,
    wide units, many units under a layered call graph, 100k+-line
    totals — for pressure-testing the engine, the analysis server and
    the parallel analyzer at sizes where cache eviction and domain
    scaling actually show.

    Every program is deterministic in [(seed, profile)]: the generator
    draws from a private [Random.State.t] seeded from [seed], and the
    result is passed through {!Ast.renumber_program}, so the same pair
    produces byte-identical source and identical engine fingerprints
    in any process.

    Generated programs share {!Gen}'s storage shape: real arrays [A],
    [B] (bounds (-4,44)) and [C] (bounds (-4,28)²), scalars [T], [S],
    [K], [N].  Subroutines take [(A, B, C, N)] by reference and
    re-establish their local scalars, so fuzz-scale variants stay
    interpretable; CALLs sit at statement level only, never inside a
    generated loop. *)

open Fortran_front

type profile = {
  sp_name : string;
  sp_desc : string;
  sp_subs : int;       (** generated subroutines (the main unit is extra) *)
  sp_layers : int;     (** call-graph layers the subroutines partition into *)
  sp_fanout : int;     (** calls from one unit into the next layer *)
  sp_sub_nests : int;  (** loop nests per subroutine *)
  sp_main_nests : int; (** loop nests in the main unit *)
  sp_depth : int;      (** depth of the dedicated perfect nests *)
  sp_deep_every : int; (** every k-th nest is perfect [sp_depth]; 0 = never *)
  sp_gen : Gen.cfg;    (** shape of the general nests *)
}

(** Deep loop nests: perfect depth-6 nests alternating with general
    nests to depth 5. *)
val deep : profile

(** Wide units: two units of hundreds of statements across many
    shallow nests — quadratic pressure on bucket planning, and cache
    entries big enough to evict. *)
val wide : profile

(** Hundreds of units under a layered call-graph DAG — the
    interprocedural summary walk and per-unit cache volume; the
    100k-line flagship via {!scale_to_lines}. *)
val many_units : profile

val all : profile list
val names : string list

(** Case-insensitive; accepts "many-units" and "many_units" alike. *)
val by_name : string -> profile option

(** Multiply the unit/nest counts by a factor (each floored at 1). *)
val scale : float -> profile -> profile

(** The CI-sized variant of a profile. *)
val smoke : profile -> profile

(** [generate ?seed p] — the program, renumbered to canonical ids.
    Raises [Invalid_argument] on malformed knobs (zero units, nest
    depth beyond {!Gen.depth_limit}, ...). *)
val generate : ?seed:int -> profile -> Ast.program

(** [source ?seed p] = the pretty-printed program text; re-parsing it
    round-trips (the printer's property). *)
val source : ?seed:int -> profile -> string

(** Newline count of a source text. *)
val lines : string -> int

(** [scale_to_lines ?seed ~target p] — iteratively rescale [p] until
    its source reaches [target] lines; returns the profile and the
    source it settled on. *)
val scale_to_lines : ?seed:int -> target:int -> profile -> profile * string

(** MD5 of the renumbered, marshalled program — stable across
    processes for equal [(seed, profile)]. *)
val fingerprint : Ast.program -> string

(** A small, interpretable variant for the fuzz driver (capped units
    and depth so the simulator's step budget holds). *)
val tiny : profile -> profile

(** Per-draw generator for [ped fuzz --stress]: a fresh [tiny] program
    seeded from the driver's per-program rng. *)
val fuzz_gen : profile -> Random.State.t -> Ast.program
