open Fortran_front
open Dependence

type why = Edge | Level | Direction

type miss = {
  m_kind : Ddg.kind;
  m_var : string;
  m_src : Ast.stmt_id;
  m_dst : Ast.stmt_id;
  m_level : int option;
  m_dirs : Dtest.direction array;
  m_why : why;
  m_count : int;
}

type report = {
  classes : int;
  misses : miss list;
  realized : int;
  spurious : int;
  spurious_by_tier : (string * int) list;
  truncated : bool;
}

let why_to_string = function
  | Edge -> "no edge"
  | Level -> "wrong level"
  | Direction -> "direction vector missing"

let miss_to_string m =
  Printf.sprintf "%s %s: s%d -> s%d level=%s dirs=(%s) [%s, %d pairs]"
    (Ddg.kind_to_string m.m_kind) m.m_var m.m_src m.m_dst
    (match m.m_level with None -> "indep" | Some l -> string_of_int l)
    (String.concat ","
       (Array.to_list (Array.map Dtest.direction_to_string m.m_dirs)))
    (why_to_string m.m_why) m.m_count

(* ------------------------------------------------------------------ *)

(* a DDG dep is in the oracle's scope if it is an array dependence
   whose references are concrete (no %STAR whole-array pseudo-ref) *)
let concrete_ref = function
  | Some r ->
    not
      (Ast.fold_expr
         (fun acc e ->
           acc || match e with Ast.Index ("%STAR", _) -> true | _ -> false)
         false r)
  | None -> false

let in_scope (d : Ddg.dep) =
  (not d.Ddg.is_scalar)
  && d.Ddg.kind <> Ddg.Control
  && concrete_ref d.Ddg.src_ref
  && concrete_ref d.Ddg.dst_ref

(* direction vector of the ordered pair (earlier, later) over their
   common loops: the longest common prefix of the two loop stacks *)
let dir_vector (a : Sim.Interp.access) (b : Sim.Interp.access) =
  let rec go acc xs ys =
    match (xs, ys) with
    | (sa, ka) :: xs', (sb, kb) :: ys' when sa = sb ->
      let d =
        if ka < kb then Dtest.Dlt else if ka = kb then Dtest.Deq else Dtest.Dgt
      in
      go (d :: acc) xs' ys'
    | _ -> Array.of_list (List.rev acc)
  in
  go [] a.Sim.Interp.a_iters b.Sim.Interp.a_iters

let level_of dirs =
  let rec go i =
    if i >= Array.length dirs then None
    else if dirs.(i) <> Dtest.Deq then Some (i + 1)
    else go (i + 1)
  in
  go 0

(* even subsampling of a too-long access list, keeping first and last *)
let subsample cap l =
  let n = List.length l in
  if n <= cap then (l, false)
  else
    let arr = Array.of_list l in
    let picked =
      List.init cap (fun i -> arr.(i * (n - 1) / (cap - 1)))
    in
    (picked, true)

let check ?(max_steps = 2_000_000) ?(cell_cap = 160) (_env : Depenv.t)
    (ddg : Ddg.t) (program : Ast.program) : report =
  (* 1. trace *)
  let acc = ref [] in
  let (_ : Sim.Interp.outcome) =
    Sim.Interp.run ~honor_parallel:false ~max_steps
      ~trace:(fun a -> acc := a :: !acc)
      program
  in
  let accesses = List.rev !acc in
  (* the env/ddg under test are the Main unit's: accesses attributed
     to callee statements (the stress factory's multi-unit programs)
     have no counterpart in this graph and are out of scope — the
     generator keeps CALLs at statement level, outside every loop, so
     dropping them loses no within-unit coverage *)
  let main_sids =
    let u =
      List.find
        (fun (u : Ast.program_unit) -> u.Ast.kind = Ast.Main)
        program.Ast.punits
    in
    let t : (Ast.stmt_id, unit) Hashtbl.t = Hashtbl.create 256 in
    Ast.iter_stmts (fun s -> Hashtbl.replace t s.Ast.sid ()) u.Ast.body;
    t
  in
  let accesses =
    List.filter
      (fun (a : Sim.Interp.access) -> Hashtbl.mem main_sids a.Sim.Interp.a_sid)
      accesses
  in
  (* 2. group per array element *)
  let cells : (string * int, Sim.Interp.access list) Hashtbl.t =
    Hashtbl.create 256
  in
  List.iter
    (fun (a : Sim.Interp.access) ->
      let key = (a.Sim.Interp.a_var, a.Sim.Interp.a_off) in
      Hashtbl.replace cells key
        (a :: (try Hashtbl.find cells key with Not_found -> [])))
    accesses;
  (* 3. concrete dependence classes *)
  let classes :
      (Ddg.kind * string * Ast.stmt_id * Ast.stmt_id * int option
       * Dtest.direction array, int)
      Hashtbl.t =
    Hashtbl.create 256
  in
  let truncated = ref false in
  Hashtbl.iter
    (fun _ rev_accs ->
      let accs, trunc = subsample cell_cap (List.rev rev_accs) in
      if trunc then truncated := true;
      let arr = Array.of_list accs in
      let n = Array.length arr in
      for i = 0 to n - 2 do
        for j = i + 1 to n - 1 do
          let a = arr.(i) and b = arr.(j) in
          if
            (a.Sim.Interp.a_write || b.Sim.Interp.a_write)
            && a.Sim.Interp.a_instance <> b.Sim.Interp.a_instance
          then begin
            let dirs = dir_vector a b in
            let kind =
              if a.Sim.Interp.a_write && b.Sim.Interp.a_write then Ddg.Output
              else if a.Sim.Interp.a_write then Ddg.Flow
              else Ddg.Anti
            in
            let key =
              ( kind, a.Sim.Interp.a_var, a.Sim.Interp.a_sid,
                b.Sim.Interp.a_sid, level_of dirs, dirs )
            in
            Hashtbl.replace classes key
              (1 + try Hashtbl.find classes key with Not_found -> 0)
          end
        done
      done)
    cells;
  (* 4. index the DDG's in-scope array deps by endpoint *)
  let index :
      (Ddg.kind * string * Ast.stmt_id * Ast.stmt_id, Ddg.dep list) Hashtbl.t =
    Hashtbl.create 64
  in
  let scoped = List.filter in_scope ddg.Ddg.deps in
  List.iter
    (fun (d : Ddg.dep) ->
      let key = (d.Ddg.kind, d.Ddg.var, d.Ddg.src, d.Ddg.dst) in
      Hashtbl.replace index key
        (d :: (try Hashtbl.find index key with Not_found -> [])))
    scoped;
  let hit : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  (* 5. compare *)
  let misses = ref [] in
  Hashtbl.iter
    (fun (kind, var, src, dst, level, dirs) count ->
      let mk why =
        misses :=
          { m_kind = kind; m_var = var; m_src = src; m_dst = dst;
            m_level = level; m_dirs = dirs; m_why = why; m_count = count }
          :: !misses
      in
      match Hashtbl.find_opt index (kind, var, src, dst) with
      | None -> mk Edge
      | Some deps -> (
        let at_level = List.filter (fun d -> d.Ddg.level = level) deps in
        match at_level with
        | [] -> mk Level
        | _ ->
          let covered =
            List.filter
              (fun (d : Ddg.dep) ->
                d.Ddg.dirs = []  (* no vectors recorded: covers all *)
                || List.exists (fun v -> v = dirs) d.Ddg.dirs)
              at_level
          in
          if covered = [] then mk Direction
          else
            List.iter (fun d -> Hashtbl.replace hit d.Ddg.dep_id ()) covered))
    classes;
  let realized = Hashtbl.length hit in
  (* attribute each never-realized edge to the tier that decided it:
     the precision dashboard's per-tier spurious-edge rate *)
  let by_tier = Hashtbl.create 8 in
  List.iter
    (fun (d : Ddg.dep) ->
      if not (Hashtbl.mem hit d.Ddg.dep_id) then begin
        let tier = d.Ddg.prov.Explain.Provenance.tier in
        Hashtbl.replace by_tier tier
          (1 + Option.value ~default:0 (Hashtbl.find_opt by_tier tier))
      end)
    scoped;
  {
    classes = Hashtbl.length classes;
    misses = !misses;
    realized;
    spurious = List.length scoped - realized;
    spurious_by_tier =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_tier []
      |> List.sort compare;
    truncated = !truncated;
  }
