open Fortran_front
open Dependence

type oracle = Dep | Sem | Run | Cg

type config = {
  n : int;
  seed : int;
  oracles : oracle list;
  corpus_dir : string option;
  shrink : bool;
  gen_cfg : Gen.cfg;
  program_gen : (Random.State.t -> Ast.program) option;
  sequences : bool;
  progress : string -> unit;
}

let default =
  {
    n = 100;
    seed = 0;
    oracles = [ Dep; Sem; Run ];
    corpus_dir = None;
    shrink = true;
    gen_cfg = Gen.default;
    program_gen = None;
    sequences = true;
    progress = ignore;
  }

(* One seed-resolution rule for every entry point, so QCHECK_SEED
   reaches the fuzz driver and the stress factory the same way the
   property-test suite honors it: an explicit --seed wins, then a
   well-formed QCHECK_SEED, then the documented default. *)
let default_seed = 42

let seed_of ~env ~cli =
  match cli with
  | Some s -> s
  | None -> (
    match env with
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> n
      | None -> default_seed)
    | None -> default_seed)

type stats = {
  programs : int;
  rejected : int;
  dep_classes : int;
  dep_misses : int;
  dep_realized : int;
  dep_spurious : int;
  dep_spurious_by_tier : (string * int) list;
  sem_instances : int;
  sem_failures : int;
  seq_steps : int;
  seq_failures : int;
  run_loops : int;
  run_failures : int;
  cg_programs : int;
  cg_skipped : int;
  cg_failures : int;
  failures : string list;
  saved : string list;
}

let ok s = s.failures = []

let summary s =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b (l ^ "\n")) fmt in
  line "fuzz: %d programs (%d rejected as non-finite)" s.programs s.rejected;
  line
    "  dependence: %d concrete classes, %d misses; %d DDG edges realized, %d spurious"
    s.dep_classes s.dep_misses s.dep_realized s.dep_spurious;
  if s.dep_spurious_by_tier <> [] then
    line "    spurious by deciding tier: %s"
      (String.concat ", "
         (List.map
            (fun (tier, n) -> Printf.sprintf "%s %d" tier n)
            s.dep_spurious_by_tier));
  line "  semantics:  %d instances, %d failures; %d sequence steps, %d failures"
    s.sem_instances s.sem_failures s.seq_steps s.seq_failures;
  line "  runtime:    %d parallel loops executed, %d failures" s.run_loops
    s.run_failures;
  if s.cg_programs + s.cg_skipped + s.cg_failures > 0 then
    line "  codegen:    %d programs compiled, %d skipped, %d failures"
      s.cg_programs s.cg_skipped s.cg_failures;
  if s.failures = [] then line "  all oracles green"
  else begin
    line "  FAILURES:";
    List.iter (fun f -> line "    %s" f) s.failures
  end;
  List.iter (fun f -> line "  saved %s" f) s.saved;
  Buffer.contents b

(* ------------------------------------------------------------------ *)

let max_steps = 2_000_000

let baseline_ok p =
  match Sim.Interp.run ~honor_parallel:false ~max_steps p with
  | exception Sim.Interp.Runtime_error _ -> false
  | o -> Gen.finite_outcome o

(* greedy descent over the shrink candidates; [pred] must hold of the
   input and is re-established at every step *)
let minimize ~budget pred p0 =
  let remaining = ref budget in
  let rec go p =
    let rec scan seq =
      if !remaining <= 0 then None
      else
        match seq () with
        | Seq.Nil -> None
        | Seq.Cons (c, rest) ->
          decr remaining;
          if (try baseline_ok c && pred c with _ -> false) then Some c
          else scan rest
    in
    match scan (Gen.shrink p) with Some c -> go c | None -> p
  in
  go p0

let env_of p =
  let u = List.find (fun u -> u.Ast.kind = Ast.Main) p.Ast.punits in
  Depenv.make u

let dep_misses p =
  let env = env_of p in
  let ddg = Ddg.compute env in
  Depcheck.check env ddg p

let run (cfg : config) : stats =
  let enabled o = List.mem o cfg.oracles in
  let rejected = ref 0 and programs = ref 0 in
  let dep_classes = ref 0 and dep_miss = ref 0 in
  let dep_realized = ref 0 and dep_spurious = ref 0 in
  let dep_spurious_by_tier : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let sem_instances = ref 0 and sem_failures = ref 0 in
  let seq_steps = ref 0 and seq_failures = ref 0 in
  let run_loops = ref 0 and run_failures = ref 0 in
  let cg_programs = ref 0 and cg_skipped = ref 0 and cg_failures = ref 0 in
  let failures = ref [] and saved = ref [] in
  let record_failure line = failures := line :: !failures in
  let persist ~oracle ~seed ~steps p =
    match cfg.corpus_dir with
    | None -> ()
    | Some dir -> saved := Corpus.save ~dir ~oracle ~seed ~steps p :: !saved
  in
  for i = 0 to cfg.n - 1 do
    let rng = Random.State.make [| cfg.seed; i |] in
    let seed_desc = Printf.sprintf "%d#%d" cfg.seed i in
    (* rejection-sample a program with a finite baseline *)
    let rec draw attempts =
      if attempts = 0 then None
      else
        let p =
          match cfg.program_gen with
          | Some g -> g rng
          | None -> Gen.program ~cfg:cfg.gen_cfg rng
        in
        if baseline_ok p then Some p
        else begin
          incr rejected;
          draw (attempts - 1)
        end
    in
    match draw 10 with
    | None -> ()
    | Some p ->
      incr programs;
      if i mod 25 = 0 then
        cfg.progress (Printf.sprintf "program %d/%d" i cfg.n);
      (* --- brute-force dependence oracle ----------------------- *)
      if enabled Dep then begin
        let r = dep_misses p in
        dep_classes := !dep_classes + r.Depcheck.classes;
        dep_realized := !dep_realized + r.Depcheck.realized;
        dep_spurious := !dep_spurious + r.Depcheck.spurious;
        List.iter
          (fun (tier, n) ->
            Hashtbl.replace dep_spurious_by_tier tier
              (n
              + Option.value ~default:0
                  (Hashtbl.find_opt dep_spurious_by_tier tier)))
          r.Depcheck.spurious_by_tier;
        if r.Depcheck.misses <> [] then begin
          dep_miss := !dep_miss + List.length r.Depcheck.misses;
          let q =
            if cfg.shrink then
              minimize ~budget:250
                (fun c -> (dep_misses c).Depcheck.misses <> [])
                p
            else p
          in
          let final = dep_misses q in
          List.iter
            (fun m ->
              record_failure
                (Printf.sprintf "[dependence %s] %s" seed_desc
                   (Depcheck.miss_to_string m)))
            final.Depcheck.misses;
          persist ~oracle:"dependence" ~seed:seed_desc ~steps:[] q
        end
      end;
      (* --- semantics oracle ------------------------------------ *)
      if enabled Sem then begin
        let live, fs = Semcheck.check_instances p in
        sem_instances := !sem_instances + live;
        if fs <> [] then begin
          sem_failures := !sem_failures + List.length fs;
          let names =
            List.sort_uniq String.compare
              (List.map (fun f -> f.Semcheck.f_name) fs)
          in
          List.iter
            (fun name ->
              let still_fails c =
                let _, fs' = Semcheck.check_instances ~only:[ name ] c in
                fs' <> []
              in
              let q =
                if cfg.shrink then minimize ~budget:120 still_fails p else p
              in
              let _, fs' = Semcheck.check_instances ~only:[ name ] q in
              (match fs' with
              | f :: _ ->
                record_failure
                  (Printf.sprintf "[semantics %s] %s" seed_desc
                     (Semcheck.failure_to_string f));
                persist ~oracle:"semantics" ~seed:seed_desc
                  ~steps:[ (f.Semcheck.f_name, f.Semcheck.f_args) ]
                  q
              | [] ->
                (* shrinking lost it; report the original *)
                let f =
                  List.find (fun f -> f.Semcheck.f_name = name) fs
                in
                record_failure
                  (Printf.sprintf "[semantics %s] %s" seed_desc
                     (Semcheck.failure_to_string f));
                persist ~oracle:"semantics" ~seed:seed_desc
                  ~steps:[ (f.Semcheck.f_name, f.Semcheck.f_args) ]
                  p))
            names
        end;
        if cfg.sequences then begin
          let steps, sf = Semcheck.check_sequence rng p in
          seq_steps := !seq_steps + List.length steps;
          match sf with
          | None -> ()
          | Some f ->
            incr seq_failures;
            record_failure
              (Printf.sprintf "[semantics-seq %s after %s] %s" seed_desc
                 (String.concat " ; "
                    (List.map (fun (n, a) -> n ^ " " ^ a) steps))
                 (Semcheck.failure_to_string f));
            (* sequences are saved unshrunk: the positional step
               descriptors would dangle as the program shrinks *)
            persist ~oracle:"semantics" ~seed:seed_desc ~steps p
        end
      end;
      (* --- runtime oracle -------------------------------------- *)
      if enabled Run then begin
        let r = Runcheck.check p in
        run_loops := !run_loops + r.Runcheck.parallel_loops;
        if r.Runcheck.failures <> [] then begin
          run_failures := !run_failures + List.length r.Runcheck.failures;
          let q =
            if cfg.shrink then
              minimize ~budget:80
                (fun c -> (Runcheck.check c).Runcheck.failures <> [])
                p
            else p
          in
          let final = Runcheck.check q in
          List.iter
            (fun f ->
              record_failure
                (Printf.sprintf "[runtime %s] %s" seed_desc
                   (Runcheck.failure_to_string f)))
            (if final.Runcheck.failures <> [] then final.Runcheck.failures
             else r.Runcheck.failures);
          persist ~oracle:"runtime" ~seed:seed_desc ~steps:[]
            (if final.Runcheck.failures <> [] then q else p)
        end
      end;
      (* --- codegen oracle -------------------------------------- *)
      if enabled Cg then begin
        let r = Cgcheck.check p in
        if r.Cgcheck.compiled then incr cg_programs;
        if r.Cgcheck.skipped <> None then incr cg_skipped;
        if r.Cgcheck.failures <> [] then begin
          cg_failures := !cg_failures + List.length r.Cgcheck.failures;
          let q =
            if cfg.shrink then
              minimize ~budget:40
                (fun c -> (Cgcheck.check c).Cgcheck.failures <> [])
                p
            else p
          in
          let final = Cgcheck.check q in
          List.iter
            (fun f ->
              record_failure
                (Printf.sprintf "[codegen %s] %s" seed_desc
                   (Runcheck.failure_to_string f)))
            (if final.Cgcheck.failures <> [] then final.Cgcheck.failures
             else r.Cgcheck.failures);
          persist ~oracle:"codegen" ~seed:seed_desc ~steps:[]
            (if final.Cgcheck.failures <> [] then q else p)
        end
      end
  done;
  {
    programs = !programs;
    rejected = !rejected;
    dep_classes = !dep_classes;
    dep_misses = !dep_miss;
    dep_realized = !dep_realized;
    dep_spurious = !dep_spurious;
    dep_spurious_by_tier =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) dep_spurious_by_tier []
      |> List.sort compare;
    sem_instances = !sem_instances;
    sem_failures = !sem_failures;
    seq_steps = !seq_steps;
    seq_failures = !seq_failures;
    run_loops = !run_loops;
    run_failures = !run_failures;
    cg_programs = !cg_programs;
    cg_skipped = !cg_skipped;
    cg_failures = !cg_failures;
    failures = List.rev !failures;
    saved = List.rev !saved;
  }
