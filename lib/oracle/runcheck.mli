(** The runtime oracle.

    Parallelizes every loop the analysis approves (flipping its
    PARALLEL bit through the catalog's [parallelize] entry), then
    cross-checks three executions of the resulting program against the
    sequential original:

    - {b validation}: {!Runtime.Exec.run} with shadow-memory conflict
      detection — any reported conflict on an analysis-approved DOALL
      (outside plan-privatized storage) is an unsoundness signal;
    - {b real parallel execution}: multicore runs across a matrix of
      (domains, schedule) configurations, comparing PRINT output and
      observed arrays;
    - {b permuted simulation}: the simulator's [par_order] set to
      [Reverse] and [Shuffled], which a correct DOALL must not
      notice. *)

open Fortran_front

type failure = {
  r_stage : string;  (** "validate" / "exec d=2 chunk" / "order reverse" … *)
  r_what : string;
}

val failure_to_string : failure -> string

type result = {
  parallel_loops : int;  (** loops the analysis approved and we flipped *)
  failures : failure list;
}

(** @param configs (domains, schedule) matrix
             (default [[(2, Chunk); (3, Self)]])
    @param max_steps execution budget per run *)
val check :
  ?configs:(int * Runtime.Pool.schedule) list ->
  ?max_steps:int ->
  Ast.program ->
  result

(** Flip every analysis-approved DO of the main unit to PARALLEL DO,
    outermost-first; returns the flipped-loop count.  Exposed for the
    codegen oracle ({!Cgcheck}), which compiles exactly this program. *)
val parallelize_approved : Ast.program -> Ast.program * int

(** Same PRINT output (within the run tolerance) and the generator's
    observed arrays matching the sequential baseline. *)
val observably_equal :
  Sim.Interp.outcome ->
  output:string list ->
  final_store:(string * float list) list ->
  bool
