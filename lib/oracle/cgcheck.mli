(** The codegen oracle: native compilation differentially tested.

    Parallelizes every analysis-approved loop (exactly like the runtime
    oracle), then pushes the program through the {!Codegen} pipeline —
    lower, emit, native compile, Dynlink — and compares against the
    sequential simulator:

    - a {b sequential} compiled run (no pool), which executes the same
      operations in the same order as the interpreter and must match;
    - {b parallel} compiled runs across a (domains, schedule) matrix,
      compared on PRINT output and the generator's observed arrays,
      like the runtime oracle.

    Programs outside the compilable subset and hosts without a native
    toolchain are reported as {e skips}, not failures: the oracle's
    subject is "compiled code computes what the interpreter computes",
    not subset coverage. *)

open Fortran_front

type result = {
  compiled : bool;        (** reached a loaded plugin and ran it *)
  parallel_loops : int;   (** analysis-approved loops in the program *)
  skipped : string option;  (** unsupported-subset / missing-toolchain *)
  failures : Runcheck.failure list;
}

(** @param configs (domains, schedule) matrix
             (default [[(2, Chunk); (3, Self)]])
    @param max_steps interpreter budget for the baseline *)
val check :
  ?configs:(int * Runtime.Pool.schedule) list ->
  ?max_steps:int ->
  Ast.program ->
  result
