open Fortran_front
open Dependence
open Transform

type failure = { r_stage : string; r_what : string }

let failure_to_string f = Printf.sprintf "[%s] %s" f.r_stage f.r_what

type result = { parallel_loops : int; failures : failure list }

let tol = 1e-4

let main_unit (p : Ast.program) =
  List.find (fun u -> u.Ast.kind = Ast.Main) p.Ast.punits

let with_main (p : Ast.program) (u' : Ast.program_unit) =
  {
    Ast.punits =
      List.map (fun u -> if u.Ast.kind = Ast.Main then u' else u) p.Ast.punits;
  }

(* flip every analysis-approved loop to PARALLEL DO, outermost-first
   so an approved outer loop subsumes its children (the simulator and
   runtime only spread the outermost parallel loop anyway) *)
let parallelize_approved (p : Ast.program) : Ast.program * int =
  let u0 = main_unit p in
  let loops =
    List.rev
      (Ast.fold_stmts
         (fun acc s ->
           match s.Ast.node with Ast.Do _ -> s.Ast.sid :: acc | _ -> acc)
         [] u0.Ast.body)
  in
  let u, n =
    List.fold_left
      (fun (u, n) sid ->
        let env = Depenv.make u in
        let ddg = Ddg.compute env in
        let d = Parallelize.diagnose env ddg sid in
        if Diagnosis.ok d then
          match Parallelize.apply u sid with
          | u' -> (u', n + 1)
          | exception Invalid_argument _ -> (u, n)
        else (u, n))
      (u0, 0) loops
  in
  (with_main p u, n)

let observably_equal (base : Sim.Interp.outcome) ~output ~final_store =
  Sim.Interp.outputs_match ~tol base.Sim.Interp.output output
  && Sim.Interp.stores_match ~tol
       (List.filter (fun (n, _) -> List.mem n Gen.observed_arrays)
          base.Sim.Interp.final_store)
       (List.filter (fun (n, _) -> List.mem n Gen.observed_arrays) final_store)

let check ?(configs = [ (2, Runtime.Pool.Chunk); (3, Runtime.Pool.Self) ])
    ?(max_steps = 2_000_000) (p : Ast.program) : result =
  let p', parallel_loops = parallelize_approved p in
  if parallel_loops = 0 then { parallel_loops; failures = [] }
  else begin
    let failures = ref [] in
    let fail stage what = failures := { r_stage = stage; r_what = what } :: !failures in
    let base = Sim.Interp.run ~honor_parallel:false ~max_steps p in
    (* 1. shadow-memory validation *)
    (match Runtime.Exec.run ~validate:true ~max_steps p' with
    | out ->
      List.iter
        (fun c ->
          fail "validate"
            ("conflict on an analysis-approved DOALL: "
            ^ Runtime.Exec.conflict_to_string c))
        out.Runtime.Exec.conflicts
    | exception Runtime.Exec.Runtime_error msg ->
      fail "validate" ("validator crashed: " ^ msg));
    (* 2. real parallel execution across the config matrix *)
    List.iter
      (fun (domains, schedule) ->
        let stage =
          Printf.sprintf "exec d=%d %s" domains
            (Runtime.Pool.schedule_to_string schedule)
        in
        match Runtime.Exec.run ~domains ~schedule ~max_steps p' with
        | out ->
          if
            not
              (observably_equal base ~output:out.Runtime.Exec.output
                 ~final_store:out.Runtime.Exec.final_store)
          then fail stage "parallel execution diverged from sequential"
        | exception Runtime.Exec.Runtime_error msg ->
          fail stage ("execution crashed: " ^ msg))
      configs;
    (* 3. permuted iteration orders in the simulator *)
    List.iter
      (fun (name, order) ->
        let stage = "order " ^ name in
        match Sim.Interp.run ~par_order:order ~max_steps p' with
        | out ->
          if
            not
              (observably_equal base ~output:out.Sim.Interp.output
                 ~final_store:out.Sim.Interp.final_store)
          then fail stage "permuted iteration order changed the result"
        | exception Sim.Interp.Runtime_error msg ->
          fail stage ("simulation crashed: " ^ msg))
      [ ("reverse", Sim.Interp.Reverse); ("shuffled", Sim.Interp.Shuffled 11) ];
    { parallel_loops; failures = List.rev !failures }
  end
