open Fortran_front

type entry = {
  e_oracle : string;
  e_seed : string;
  e_steps : (string * string) list;
  e_program : Ast.program;
}

let magic = "C PED-FUZZ COUNTEREXAMPLE v1"

let render ~oracle ~seed ~steps p =
  let b = Buffer.create 1024 in
  Buffer.add_string b (magic ^ "\n");
  Buffer.add_string b (Printf.sprintf "C oracle: %s\n" oracle);
  Buffer.add_string b (Printf.sprintf "C seed: %s\n" seed);
  List.iter
    (fun (name, args) ->
      Buffer.add_string b (Printf.sprintf "C step: %s %s\n" name args))
    steps;
  Buffer.add_string b (Pretty.program_to_string p);
  Buffer.contents b

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

let save ~dir ~oracle ~seed ~steps p =
  mkdir_p dir;
  let content = render ~oracle ~seed ~steps p in
  let name =
    Printf.sprintf "%s-%s.f" oracle
      (String.sub (Digest.to_hex (Digest.string content)) 0 10)
  in
  let path = Filename.concat dir name in
  let oc = open_out path in
  output_string oc content;
  close_out oc;
  path

let prefixed ~prefix line =
  if String.length line >= String.length prefix
     && String.sub line 0 (String.length prefix) = prefix
  then Some (String.trim (String.sub line (String.length prefix)
                            (String.length line - String.length prefix)))
  else None

let load path =
  match
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | exception Sys_error msg -> Error msg
  | content -> (
    let lines = String.split_on_char '\n' content in
    match lines with
    | first :: rest when String.trim first = magic -> (
      let oracle = ref "" and seed = ref "" and steps = ref [] in
      let body =
        let rec go = function
          | line :: rest -> (
            match prefixed ~prefix:"C oracle:" line with
            | Some v ->
              oracle := v;
              go rest
            | None -> (
              match prefixed ~prefix:"C seed:" line with
              | Some v ->
                seed := v;
                go rest
              | None -> (
                match prefixed ~prefix:"C step:" line with
                | Some v ->
                  (match String.index_opt v ' ' with
                  | Some i ->
                    steps :=
                      ( String.sub v 0 i,
                        String.trim
                          (String.sub v (i + 1) (String.length v - i - 1)) )
                      :: !steps
                  | None -> steps := (v, "") :: !steps);
                  go rest
                | None -> line :: rest)))
          | [] -> []
        in
        go rest
      in
      match
        Parser.parse_program ~file:(Filename.basename path)
          (String.concat "\n" body)
      with
      | exception e ->
        Error
          (Printf.sprintf "%s: does not parse: %s" path (Printexc.to_string e))
      | p ->
        if !oracle = "" then Error (path ^ ": missing 'C oracle:' line")
        else
          Ok
            {
              e_oracle = !oracle;
              e_seed = !seed;
              e_steps = List.rev !steps;
              e_program = p;
            })
    | _ -> Error (path ^ ": not a PED-FUZZ counterexample file"))

let files dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".f")
    |> List.sort String.compare
    |> List.map (Filename.concat dir)
  else []

let replay (e : entry) : (unit, string) result =
  match e.e_oracle with
  | "dependence" -> (
    let u = List.find (fun u -> u.Ast.kind = Ast.Main) e.e_program.Ast.punits in
    let env = Dependence.Depenv.make u in
    let ddg = Dependence.Ddg.compute env in
    match Depcheck.check env ddg e.e_program with
    | { misses = []; _ } -> Ok ()
    | { misses; _ } ->
      Error
        (String.concat "; " (List.map Depcheck.miss_to_string misses)))
  | "semantics" ->
    if e.e_steps = [] then (
      match Semcheck.check_instances e.e_program with
      | _, [] -> Ok ()
      | _, fs ->
        Error (String.concat "; " (List.map Semcheck.failure_to_string fs)))
    else Semcheck.replay_steps e.e_program e.e_steps
  | "runtime" -> (
    match Runcheck.check e.e_program with
    | { failures = []; _ } -> Ok ()
    | { failures; _ } ->
      Error (String.concat "; " (List.map Runcheck.failure_to_string failures)))
  | "codegen" -> (
    (* a skip (subset/toolchain) is a pass: the recorded divergence
       can no longer be reproduced on this host *)
    match Cgcheck.check e.e_program with
    | { Cgcheck.failures = []; _ } -> Ok ()
    | { Cgcheck.failures; _ } ->
      Error (String.concat "; " (List.map Runcheck.failure_to_string failures)))
  | other -> Error (Printf.sprintf "unknown oracle %S" other)
