(** The persisted counterexample corpus.

    A corpus entry is a single Fortran source file whose leading
    comment lines carry replay metadata:

    {v
    C PED-FUZZ COUNTEREXAMPLE v1
    C oracle: semantics
    C seed: 42#17
    C step: strip loop=2 factor=3
          ... ordinary Fortran source ...
    v}

    [oracle] names the oracle that failed ([dependence], [semantics],
    [runtime], or [codegen]); [seed] records the driver seed and program index
    that produced it (informational); each [step] line is a
    transformation name plus a positional argument descriptor (see
    {!Semcheck.describe_args}) — positional, because statement ids are
    not stable across reparsing.  The metadata lines are valid F77
    comments, so the file is also readable by any tool in the repo.

    The test suite replays every file in [test/corpus/] through the
    recorded oracle and fails if any reproduces — minimized failures
    found by [ped fuzz] become regression tests by dropping the saved
    file into that directory. *)

open Fortran_front

type entry = {
  e_oracle : string;  (** "dependence" | "semantics" | "runtime" | "codegen" *)
  e_seed : string;
  e_steps : (string * string) list; (** (transform name, arg descriptor) *)
  e_program : Ast.program;
}

(** [save ~dir ~oracle ~seed ~steps p] writes an entry and returns its
    path.  The file name is derived from the oracle and a digest of
    the content, so identical counterexamples dedup.  Creates [dir]
    if needed. *)
val save :
  dir:string ->
  oracle:string ->
  seed:string ->
  steps:(string * string) list ->
  Ast.program ->
  string

val load : string -> (entry, string) result

(** The [.f] files of a corpus directory, sorted; [[]] if the
    directory does not exist. *)
val files : string -> string list

(** Run the entry's recorded oracle.  [Ok ()] = the failure no longer
    reproduces (for a regression corpus this is the passing state). *)
val replay : entry -> (unit, string) result
