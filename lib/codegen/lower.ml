(* AST + runtime Plan -> IR.

   Lowering is where every Fortran binding and conversion rule is
   decided, so backends stay dumb: implicit typing (via [Symbol]),
   array-vs-call disambiguation, value coercions on assignment and
   argument passing, trip-count arithmetic domain, by-reference
   argument classification, COMMON unification across units, and the
   projection of each PARALLEL DO's [Runtime.Plan.t] onto typed
   storage.

   Anything outside the compilable subset returns [Error] (via
   {!Unsupported}) rather than producing wrong code: GOTO, recursive
   call graphs, type-mismatched by-reference argument passing,
   arguments aliasing an element and the whole of one array in the
   same call, COMMONs declared with conflicting shapes, string values
   outside PRINT.  The interpreter remains the fallback for those. *)

open Fortran_front
module Plan = Runtime.Plan

exception Unsupported of string

let unsup fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

let ty_of_ast = function
  | Ast.Tinteger -> Ir.Tint
  | Ast.Treal | Ast.Tdouble -> Ir.Treal
  | Ast.Tlogical -> Ir.Tbool

type uctx = {
  u : Ast.program_unit;
  tbl : Symbol.table;
  units : (string, Ast.program_unit * Symbol.table) Hashtbl.t;
  plans : (Ast.stmt_id, Plan.t) Hashtbl.t;
  commons : (string, Ir.vdef) Hashtbl.t;  (* global, first decl wins *)
}

let scalar_ty ctx v = ty_of_ast (Symbol.typ_of ctx.tbl v)

let lookup_kind ctx v =
  match Symbol.lookup ctx.tbl v with
  | Some i -> Some i.Symbol.kind
  | None -> None

(* ------------------------------------------------------------------ *)
(* Conversions (the simulator's Value.to_float/to_int/to_bool)         *)
(* ------------------------------------------------------------------ *)

let cvt (want : Ir.ty) (e, (have : Ir.ty)) : Ir.expr =
  if want = have then e
  else
    match (have, want) with
    | Ir.Tstr, _ | _, Ir.Tstr -> unsup "string value used as a %s"
                                   (Ir.ty_to_string want)
    | _ -> Ir.Ecvt (have, want, e)

let to_float te = cvt Ir.Treal te
let to_int te = cvt Ir.Tint te
let to_bool te = cvt Ir.Tbool te

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec lower_expr ctx (e : Ast.expr) : Ir.expr * Ir.ty =
  match e with
  | Ast.Int n -> (Ir.Eint n, Ir.Tint)
  | Ast.Real f -> (Ir.Ereal f, Ir.Treal)
  | Ast.Logic b -> (Ir.Ebool b, Ir.Tbool)
  | Ast.Str s -> (Ir.Estr s, Ir.Tstr)
  | Ast.Var v -> (
    match lookup_kind ctx v with
    | Some Symbol.Scalar -> (Ir.Eload v, scalar_ty ctx v)
    | Some (Symbol.Array _) -> unsup "array %s used as a scalar value" v
    | _ -> unsup "%s has no storage in %s" v ctx.u.Ast.uname)
  | Ast.Index (b, args) -> (
    match lookup_kind ctx b with
    | Some (Symbol.Array _) ->
      let idxs = List.map (fun a -> to_int (lower_expr ctx a)) args in
      (Ir.Eaload (b, idxs), scalar_ty ctx b)
    | Some Symbol.Intrinsic -> lower_intrinsic ctx b args
    | Some Symbol.External_fun -> (
      match Hashtbl.find_opt ctx.units b with
      | Some (cu, ctbl) ->
        let formals =
          match cu.Ast.kind with
          | Ast.Function (_, fs) -> fs
          | _ -> unsup "%s is not a function" b
        in
        let cargs = lower_args ctx (cu, ctbl) formals args in
        (Ir.Ecall (b, cargs, ty_of_ast (Symbol.typ_of ctbl b)),
         ty_of_ast (Symbol.typ_of ctbl b))
      | None -> unsup "unknown function %s" b)
    | _ -> unsup "cannot evaluate %s(...)" b)
  | Ast.Un (Ast.Neg, a) -> (
    let (ea, ta) = lower_expr ctx a in
    match ta with
    | Ir.Tint | Ir.Treal -> (Ir.Eneg (ta, ea), ta)
    | _ -> unsup "cannot negate a %s value" (Ir.ty_to_string ta))
  | Ast.Un (Ast.Not, a) ->
    (Ir.Enot (to_bool (lower_expr ctx a)), Ir.Tbool)
  | Ast.Bin ((Ast.And | Ast.Or) as op, a, b) ->
    ( Ir.Ebin
        (op, Ir.Tbool, to_bool (lower_expr ctx a), to_bool (lower_expr ctx b)),
      Ir.Tbool )
  | Ast.Bin ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Pow) as op, a, b) ->
    let ((_, ta) as la) = lower_expr ctx a in
    let ((_, tb) as lb) = lower_expr ctx b in
    let bad t = t = Ir.Tbool || t = Ir.Tstr in
    if bad ta || bad tb then unsup "bad operands for arithmetic"
    else if ta = Ir.Tint && tb = Ir.Tint then
      (Ir.Ebin (op, Ir.Tint, fst la, fst lb), Ir.Tint)
    else (Ir.Ebin (op, Ir.Treal, to_float la, to_float lb), Ir.Treal)
  | Ast.Bin (((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne) as op), a, b)
    ->
    (* the interpreter compares everything through float conversion *)
    ( Ir.Ebin
        (op, Ir.Treal, to_float (lower_expr ctx a), to_float (lower_expr ctx b)),
      Ir.Tbool )

and lower_intrinsic ctx name args : Ir.expr * Ir.ty =
  let ls () = List.map (lower_expr ctx) args in
  let one () =
    match ls () with [ v ] -> v | _ -> unsup "%s expects one argument" name
  in
  let two () =
    match ls () with
    | [ a; b ] -> (a, b)
    | _ -> unsup "%s expects two arguments" name
  in
  let fl1 i = (Ir.Eintr (i, [ to_float (one ()) ]), Ir.Treal) in
  match name with
  | "ABS" -> (
    match one () with
    | (e, Ir.Tint) -> (Ir.Eintr (Ir.Iabs Ir.Tint, [ e ]), Ir.Tint)
    | te -> (Ir.Eintr (Ir.Iabs Ir.Treal, [ to_float te ]), Ir.Treal))
  | "MOD" -> (
    match two () with
    | (ea, Ir.Tint), (eb, Ir.Tint) ->
      (Ir.Eintr (Ir.Imod Ir.Tint, [ ea; eb ]), Ir.Tint)
    | ta, tb ->
      (Ir.Eintr (Ir.Imod Ir.Treal, [ to_float ta; to_float tb ]), Ir.Treal))
  | "MAX" | "MIN" -> (
    match ls () with
    | [] -> unsup "%s expects arguments" name
    | vs ->
      let all_int = List.for_all (fun (_, t) -> t = Ir.Tint) vs in
      let rty = if all_int then Ir.Tint else Ir.Treal in
      let i = if name = "MAX" then Ir.Imax rty else Ir.Imin rty in
      (Ir.Eintr (i, List.map to_float vs), rty))
  | "SQRT" -> fl1 Ir.Isqrt
  | "EXP" -> fl1 Ir.Iexp
  | "LOG" -> fl1 Ir.Ilog
  | "SIN" -> fl1 Ir.Isin
  | "COS" -> fl1 Ir.Icos
  | "TAN" -> fl1 Ir.Itan
  | "FLOAT" | "DBLE" | "SNGL" -> (to_float (one ()), Ir.Treal)
  | "INT" -> (to_int (one ()), Ir.Tint)
  | "NINT" -> (Ir.Eintr (Ir.Inint, [ to_float (one ()) ]), Ir.Tint)
  | "SIGN" ->
    let (a, b) = two () in
    let rty = if snd a = Ir.Tint then Ir.Tint else Ir.Treal in
    (Ir.Eintr (Ir.Isign rty, [ to_float a; to_float b ]), rty)
  | _ -> unsup "unknown intrinsic %s" name

(* ------------------------------------------------------------------ *)
(* Argument binding                                                    *)
(* ------------------------------------------------------------------ *)

and lower_args ctx ((cu : Ast.program_unit), ctbl) formals actuals :
    Ir.arg list =
  let elem_ty_of tbl v = ty_of_ast (Symbol.typ_of tbl v) in
  let bind formal actual : Ir.arg =
    let formal_is_array = Symbol.is_array ctbl formal in
    let fty = elem_ty_of ctbl formal in
    match actual with
    | Ast.Var v -> (
      match lookup_kind ctx v with
      | Some Symbol.Scalar ->
        if formal_is_array then
          unsup "scalar %s passed to array formal %s of %s" v formal
            cu.Ast.uname
        else if scalar_ty ctx v <> fty then
          unsup "type mismatch passing %s to %s of %s (by-reference)" v
            formal cu.Ast.uname
        else Ir.Ascalar v
      | Some (Symbol.Array _) ->
        if not formal_is_array then
          unsup "array %s passed to scalar formal %s of %s" v formal
            cu.Ast.uname
        else if scalar_ty ctx v <> fty then
          unsup "element-type mismatch passing %s to %s of %s" v formal
            cu.Ast.uname
        else Ir.Aarray v
      | _ -> unsup "%s has no storage in %s" v ctx.u.Ast.uname)
    | Ast.Index (b, idxs) when Symbol.is_array ctx.tbl b ->
      let idxs = List.map (fun a -> to_int (lower_expr ctx a)) idxs in
      if scalar_ty ctx b <> fty then
        unsup "element-type mismatch passing %s(...) to %s of %s" b formal
          cu.Ast.uname
      else
        Ir.Aelem (b, idxs, if formal_is_array then Ir.Mview else Ir.Mcopy)
    | e ->
      if formal_is_array then
        unsup "expression passed to array formal %s of %s" formal cu.Ast.uname
      else Ir.Atemp (cvt fty (lower_expr ctx e), fty)
  in
  let rec go fs acts =
    match (fs, acts) with
    | [], _ -> []  (* extra actuals are ignored, as in the interpreter *)
    | f :: fs, a :: acts -> bind f a :: go fs acts
    | f :: _, [] -> unsup "missing actual argument for %s" f
  in
  let args = go formals actuals in
  (* By-reference hazards: the interpreter binds an array element to a
     scalar formal as an alias of the cell; we compile it as
     copy-in/copy-out.  That is only faithful when nothing else can
     reach the same cell while the callee runs, so reject the cases
     where aliasing could be observed. *)
  let copies =
    List.filter_map (function Ir.Aelem (b, _, Ir.Mcopy) -> Some b | _ -> None)
      args
  in
  if copies <> [] then begin
    List.iter
      (fun b ->
        (* the same array reachable inside the callee, whole or view *)
        if
          List.exists
            (function
              | Ir.Aarray v | Ir.Aelem (v, _, Ir.Mview) -> v = b
              | _ -> false)
            args
        then unsup "element of %s and the array itself passed in one call" b;
        (* a COMMON array is reachable inside the callee by name *)
        (match Symbol.lookup ctx.tbl b with
        | Some { Symbol.common = Some _; _ } ->
          unsup "element of COMMON array %s passed to a scalar formal" b
        | _ -> ()))
      copies;
    (* two elements of one array: aliased cells if the subscripts
       coincide at run time *)
    let sorted = List.sort String.compare copies in
    let rec dup = function
      | a :: (b :: _ as rest) -> if a = b then Some a else dup rest
      | _ -> None
    in
    (match dup sorted with
    | Some b -> unsup "two elements of %s passed to scalar formals" b
    | None -> ());
    (* a later effectful argument could rewrite the element between our
       copy-in and the call (the interpreter's alias would see it) *)
    let effectful_arg = function
      | Ir.Atemp (e, _) -> Ir.effectful e
      | Ir.Aelem (_, idxs, _) -> List.exists Ir.effectful idxs
      | Ir.Ascalar _ | Ir.Aarray _ -> false
    in
    if List.exists effectful_arg args then
      unsup "element-to-scalar argument mixed with a call in the same \
             argument list"
  end;
  args

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let lower_plan ctx (h : Ast.do_header) (plan : Plan.t) body_has_output :
    Ir.par =
  let is_scalar v =
    match lookup_kind ctx v with Some Symbol.Scalar -> true | _ -> false
  in
  let is_array v =
    match lookup_kind ctx v with Some (Symbol.Array _) -> true | _ -> false
  in
  {
    Ir.pp_privates =
      List.filter_map
        (fun v ->
          if is_scalar v && v <> h.Ast.dvar then Some (v, scalar_ty ctx v)
          else None)
        plan.Plan.p_privates;
    pp_inductions =
      List.filter_map
        (fun (v, stride) ->
          if is_scalar v then Some (v, scalar_ty ctx v, stride) else None)
        plan.Plan.p_inductions;
    pp_reductions =
      List.filter_map
        (fun (v, op) ->
          if is_scalar v then Some (v, scalar_ty ctx v, op) else None)
        plan.Plan.p_reductions;
    pp_arrays = List.filter is_array plan.Plan.p_arrays;
    pp_has_output = body_has_output;
  }

(* Conservative: may the body produce PRINT output (directly or
   through any call — callees can print)? *)
let rec block_has_output ctx stmts =
  List.exists (stmt_has_output ctx) stmts

and stmt_has_output ctx (s : Ast.stmt) =
  match s.Ast.node with
  | Ast.Print _ | Ast.Call _ -> true
  | Ast.If (bs, els) ->
    List.exists (fun (c, b) -> expr_calls ctx c || block_has_output ctx b) bs
    || block_has_output ctx els
  | Ast.Do (h, body) ->
    expr_calls ctx h.Ast.lo || expr_calls ctx h.Ast.hi
    || (match h.Ast.step with Some e -> expr_calls ctx e | None -> false)
    || block_has_output ctx body
  | Ast.Assign (lhs, rhs) -> expr_calls ctx lhs || expr_calls ctx rhs
  | _ -> false

and expr_calls ctx e =
  Ast.fold_expr
    (fun acc e ->
      acc
      ||
      match e with
      | Ast.Index (b, _) -> (
        match lookup_kind ctx b with
        | Some Symbol.External_fun -> true
        | _ -> false)
      | _ -> false)
    false e

let rec lower_stmt ctx (s : Ast.stmt) : Ir.stmt list =
  match s.Ast.node with
  | Ast.Continue -> []
  | Ast.Goto l -> unsup "GOTO %d (unstructured control flow)" l
  | Ast.Return -> [ Ir.Sreturn ]
  | Ast.Stop -> [ Ir.Sstop ]
  | Ast.Assign (lhs, rhs) -> (
    let lr = lower_expr ctx rhs in
    match lhs with
    | Ast.Var name -> (
      match lookup_kind ctx name with
      | Some Symbol.Scalar ->
        [ Ir.Sassign (name, cvt (scalar_ty ctx name) lr) ]
      | _ -> unsup "cannot assign whole array %s" name)
    | Ast.Index (b, idxs) when Symbol.is_array ctx.tbl b ->
      let idxs = List.map (fun a -> to_int (lower_expr ctx a)) idxs in
      [ Ir.Sastore (b, idxs, cvt (scalar_ty ctx b) lr) ]
    | _ -> unsup "bad assignment target")
  | Ast.Print args ->
    [ Ir.Sprint
        (List.map
           (fun a ->
             match lower_expr ctx a with
             | Ir.Estr s, _ -> Ir.Pstr s
             | (e, t) -> Ir.Pexpr (e, t))
           args) ]
  | Ast.If (branches, els) ->
    [ Ir.Sif
        ( List.map
            (fun (c, body) ->
              (to_bool (lower_expr ctx c), lower_block ctx body))
            branches,
          lower_block ctx els ) ]
  | Ast.Call (name, args) -> (
    match Hashtbl.find_opt ctx.units name with
    | Some ((cu, _) as callee) ->
      let formals =
        match cu.Ast.kind with
        | Ast.Subroutine fs -> fs
        | Ast.Function (_, fs) -> fs
        | Ast.Main -> unsup "cannot CALL the main program"
      in
      [ Ir.Scall (name, lower_args ctx callee formals args) ]
    | None -> unsup "unknown subroutine %s" name)
  | Ast.Do (h, body) ->
    let iv_kind = lookup_kind ctx h.Ast.dvar in
    (match iv_kind with
    | Some Symbol.Scalar -> ()
    | _ -> unsup "loop variable %s is not a scalar" h.Ast.dvar);
    let lo = lower_expr ctx h.Ast.lo in
    let hi = lower_expr ctx h.Ast.hi in
    let step =
      match h.Ast.step with
      | None -> (Ir.Eint 1, Ir.Tint)
      | Some e -> lower_expr ctx e
    in
    let num (_, t) = t = Ir.Tint || t = Ir.Treal in
    if not (num lo && num hi && num step) then
      unsup "non-numeric DO bounds for %s" h.Ast.dvar;
    let is_int = snd lo = Ir.Tint && snd hi = Ir.Tint && snd step = Ir.Tint in
    let doh =
      if is_int then
        {
          Ir.d_iv = h.Ast.dvar;
          d_ivty = scalar_ty ctx h.Ast.dvar;
          d_lo = fst lo;
          d_hi = fst hi;
          d_step = fst step;
          d_float = false;
          d_sid = s.Ast.sid;
        }
      else
        {
          Ir.d_iv = h.Ast.dvar;
          d_ivty = scalar_ty ctx h.Ast.dvar;
          d_lo = to_float lo;
          d_hi = to_float hi;
          d_step = to_float step;
          d_float = true;
          d_sid = s.Ast.sid;
        }
    in
    let body' = lower_block ctx body in
    if h.Ast.parallel then begin
      let plan =
        match Hashtbl.find_opt ctx.plans s.Ast.sid with
        | Some p -> p
        | None -> Plan.trivial h.Ast.dvar
      in
      let pp = lower_plan ctx h plan (block_has_output ctx body) in
      [ Ir.Spar (doh, pp, body') ]
    end
    else [ Ir.Sdo (doh, body') ]

and lower_block ctx stmts = List.concat_map (lower_stmt ctx) stmts

(* ------------------------------------------------------------------ *)
(* Units, storage and COMMON unification                               *)
(* ------------------------------------------------------------------ *)

(* Array-geometry expressions are evaluated once at unit entry, after
   scalar seeding — only scalar loads, constants and arithmetic may
   appear (the runtime errs on anything fancier). *)
let check_entry_expr what e =
  let rec ok = function
    | Ir.Eint _ | Ir.Ereal _ | Ir.Ebool _ | Ir.Eload _ -> true
    | Ir.Ebin (_, _, a, b) -> ok a && ok b
    | Ir.Eneg (_, a) | Ir.Ecvt (_, _, a) -> ok a
    | Ir.Eintr (_, es) -> List.for_all ok es
    | _ -> false
  in
  if not (ok e) then unsup "unsupported %s expression" what;
  e

let lower_dims ctx ~formal name (dims : (Ast.expr * Ast.expr) list) : Ir.arr =
  let n = List.length dims in
  let one k (lo, hi) =
    let lo' =
      check_entry_expr "array bound" (to_int (lower_expr ctx lo))
    in
    let ext =
      match hi with
      | Ast.Int m when m = max_int ->
        if (not formal) || k < n - 1 then
          unsup "assumed-size dimension of %s outside a formal's last \
                 dimension"
            name
        else Ir.Xassumed
      | e ->
        let hi' =
          check_entry_expr "array bound" (to_int (lower_expr ctx e))
        in
        (* extent = max 1 (hi - lo + 1), the storage rule *)
        Ir.Xfixed
          (Ir.Ebin
             ( Ast.Add,
               Ir.Tint,
               Ir.Ebin (Ast.Sub, Ir.Tint, hi', lo'),
               Ir.Eint 1 ))
    in
    (lo', ext)
  in
  let lowered = List.mapi one dims in
  { Ir.a_lowers = List.map fst lowered; a_extents = List.map snd lowered }

let const_init ctx (i : Symbol.info) (ty : Ir.ty) : Ir.init =
  (* the runtime's seeding: integer PARAMETER value first, else a DATA
     literal, else zero — converted into the variable's type *)
  let of_value v =
    match (ty, v) with
    | Ir.Tint, `I n -> Ir.Iint n
    | Ir.Tint, `R f -> Ir.Iint (int_of_float (Float.trunc f))
    | Ir.Tint, `L b -> Ir.Iint (if b then 1 else 0)
    | Ir.Treal, `I n -> Ir.Ireal (float_of_int n)
    | Ir.Treal, `R f -> Ir.Ireal f
    | Ir.Treal, `L b -> Ir.Ireal (if b then 1.0 else 0.0)
    | Ir.Tbool, `I n -> Ir.Ibool (n <> 0)
    | Ir.Tbool, `R f -> Ir.Ibool (f <> 0.0)
    | Ir.Tbool, `L b -> Ir.Ibool b
    | Ir.Tstr, _ -> Ir.Inone
  in
  match Symbol.param_value ctx.tbl i.Symbol.name with
  | Some n -> of_value (`I n)
  | None -> (
    match i.Symbol.data with
    | Some (Ast.Int n) -> of_value (`I n)
    | Some (Ast.Real f) -> of_value (`R f)
    | Some (Ast.Logic l) -> of_value (`L l)
    | Some (Ast.Un (Ast.Neg, Ast.Int n)) -> of_value (`I (-n))
    | Some (Ast.Un (Ast.Neg, Ast.Real f)) -> of_value (`R (-.f))
    | Some _ | None -> Ir.Inone)

let formal_index (u : Ast.program_unit) name =
  let formals =
    match u.Ast.kind with
    | Ast.Main -> []
    | Ast.Subroutine fs | Ast.Function (_, fs) -> fs
  in
  let rec idx k = function
    | [] -> None
    | f :: _ when f = name -> Some k
    | _ :: fs -> idx (k + 1) fs
  in
  idx 0 formals

let register_common ctx (i : Symbol.info) (v : Ir.vdef) =
  match Hashtbl.find_opt ctx.commons i.Symbol.name with
  | None -> Hashtbl.replace ctx.commons i.Symbol.name v
  | Some prev ->
    (* every declaring unit must agree: the runtime allocates one
       buffer for the first shape it sees *)
    if prev.Ir.v_ty <> v.Ir.v_ty then
      unsup "COMMON %s declared with conflicting types" i.Symbol.name;
    let geom (d : Ir.vdef) =
      match d.Ir.v_arr with
      | None -> None
      | Some a ->
        Some
          (List.map
             (function
               | Ir.Xfixed (Ir.Eint n) -> n
               | _ -> -1)
             a.Ir.a_extents,
           List.map
             (function Ir.Eint n -> n | _ -> min_int)
             a.Ir.a_lowers)
    in
    if geom prev <> geom v then
      unsup "COMMON %s declared with conflicting shapes" i.Symbol.name

let lower_vdef ctx (i : Symbol.info) : Ir.vdef option =
  let name = i.Symbol.name in
  let ty = ty_of_ast i.Symbol.typ in
  match i.Symbol.kind with
  | Symbol.Routine | Symbol.External_fun | Symbol.Intrinsic -> None
  | Symbol.Scalar ->
    let place =
      if i.Symbol.formal then
        match formal_index ctx.u name with
        | Some k -> Ir.Pformal k
        | None -> Ir.Plocal
      else if i.Symbol.common <> None then Ir.Pcommon
      else Ir.Plocal
    in
    let v =
      {
        Ir.v_name = name;
        v_ty = ty;
        v_place = place;
        v_arr = None;
        v_init =
          (match place with
          | Ir.Plocal -> const_init ctx i ty
          | Ir.Pformal _ | Ir.Pcommon -> Ir.Inone);
      }
    in
    if place = Ir.Pcommon then register_common ctx i v;
    Some v
  | Symbol.Array dims ->
    let formal =
      i.Symbol.formal
      && match formal_index ctx.u name with Some _ -> true | None -> false
    in
    let place =
      if formal then
        match formal_index ctx.u name with
        | Some k -> Ir.Pformal k
        | None -> Ir.Plocal
      else if i.Symbol.common <> None then Ir.Pcommon
      else Ir.Plocal
    in
    let arr = lower_dims ctx ~formal name dims in
    (if place = Ir.Pcommon then begin
       (* COMMON geometry must be compile-time constant (runtime rule) *)
       let const_dims =
         List.map2
           (fun (lo, hi) l ->
             match
               (Symbol.const_eval ctx.tbl lo, Symbol.const_eval ctx.tbl hi)
             with
             | Some l', Some h' ->
               ignore l;
               (Ir.Eint l', Ir.Xfixed (Ir.Eint (h' - l' + 1)))
             | _ -> unsup "COMMON array %s needs constant bounds" name)
           dims arr.Ir.a_lowers
       in
       let carr =
         {
           Ir.a_lowers = List.map fst const_dims;
           a_extents = List.map snd const_dims;
         }
       in
       register_common ctx i
         {
           Ir.v_name = name;
           v_ty = ty;
           v_place = Ir.Pcommon;
           v_arr = Some carr;
           v_init = Ir.Inone;
         }
     end);
    Some
      {
        Ir.v_name = name;
        v_ty = ty;
        v_place = place;
        v_arr = Some arr;
        v_init = Ir.Inone;
      }

let lower_unit units plans commons (u : Ast.program_unit) : Ir.unitdef =
  let tbl =
    match Hashtbl.find_opt units u.Ast.uname with
    | Some (_, t) -> t
    | None -> Symbol.build u
  in
  let ctx = { u; tbl; units; plans; commons } in
  let vars = List.filter_map (lower_vdef ctx) (Symbol.infos tbl) in
  (* every formal must have storage (passing procedures is unsupported) *)
  let formals =
    match u.Ast.kind with
    | Ast.Main -> []
    | Ast.Subroutine fs | Ast.Function (_, fs) -> fs
  in
  List.iter
    (fun f ->
      if
        not
          (List.exists
             (fun (v : Ir.vdef) ->
               v.Ir.v_name = f
               && match v.Ir.v_place with Ir.Pformal _ -> true | _ -> false)
             vars)
      then unsup "formal %s of %s has no data storage" f u.Ast.uname)
    formals;
  {
    Ir.u_name = u.Ast.uname;
    u_kind =
      (match u.Ast.kind with
      | Ast.Main -> Ir.Kmain
      | Ast.Subroutine _ -> Ir.Ksub
      | Ast.Function (t, _) -> Ir.Kfun (ty_of_ast t));
    u_formals = formals;
    u_vars = vars;
    u_body = lower_block ctx u.Ast.body;
  }

(* Static recursion check: generated code has no call-depth guard, so
   reject call-graph cycles up front (the interpreter errs at depth
   200; real suite programs are DAGs). *)
let check_acyclic (p : Ast.program) units =
  let calls_of (u : Ast.program_unit) =
    let tbl =
      match Hashtbl.find_opt units u.Ast.uname with
      | Some (_, t) -> t
      | None -> Symbol.build u
    in
    let acc = ref [] in
    Ast.iter_stmts
      (fun s ->
        (match s.Ast.node with
        | Ast.Call (n, _) -> acc := n :: !acc
        | _ -> ());
        List.iter
          (fun e ->
            Ast.fold_expr
              (fun () e ->
                match e with
                | Ast.Index (b, _) -> (
                  match Symbol.lookup tbl b with
                  | Some { Symbol.kind = Symbol.External_fun; _ } ->
                    acc := b :: !acc
                  | _ -> ())
                | _ -> ())
              () e)
          (Ast.stmt_exprs s.Ast.node))
      u.Ast.body;
    !acc
  in
  let visiting = Hashtbl.create 8 and done_ = Hashtbl.create 8 in
  let rec visit name =
    if Hashtbl.mem done_ name then ()
    else if Hashtbl.mem visiting name then
      unsup "recursive call graph through %s" name
    else begin
      Hashtbl.replace visiting name ();
      (match Hashtbl.find_opt units name with
      | Some (u, _) -> List.iter visit (calls_of u)
      | None -> ());
      Hashtbl.remove visiting name;
      Hashtbl.replace done_ name ()
    end
  in
  List.iter (fun (u : Ast.program_unit) -> visit u.Ast.uname) p.Ast.punits

let program (p : Ast.program) : (Ir.program, string) result =
  try
    let units = Hashtbl.create 8 in
    List.iter
      (fun (u : Ast.program_unit) ->
        Hashtbl.replace units u.Ast.uname (u, Symbol.build u))
      p.Ast.punits;
    let main =
      match
        List.find_opt (fun u -> u.Ast.kind = Ast.Main) p.Ast.punits
      with
      | Some u -> u
      | None -> unsup "no main program unit"
    in
    check_acyclic p units;
    let plans = Plan.build p in
    let commons = Hashtbl.create 8 in
    let udefs =
      List.map (lower_unit units plans commons) p.Ast.punits
    in
    let cdefs =
      Hashtbl.fold (fun _ v acc -> v :: acc) commons []
      |> List.sort (fun (a : Ir.vdef) b ->
             String.compare a.Ir.v_name b.Ir.v_name)
    in
    Ok { Ir.p_units = udefs; p_main = main.Ast.uname; p_commons = cdefs }
  with Unsupported msg -> Error msg
