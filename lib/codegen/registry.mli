(** The plugin handback slot.

    A generated module cannot be "called" by the host directly — it
    only runs top-level initializers when {!Dynlink} loads it.  So the
    emission protocol is: the generated module's last definition calls
    {!register} with its entry point, and the host calls {!take}
    immediately after [Dynlink.loadfile_private] returns.  The slot
    holds at most one entry; loads are serialized on the main domain
    by {!Compile}. *)

type outcome = {
  out_lines : string list;  (** PRINT lines, in order *)
  store : (string * float list) list;
      (** final store in the {!Sim.Abi} snapshot convention
          (main-unit variables plus "/"-prefixed COMMONs), unsorted *)
}

type entry = {
  run :
    pool:Runtime.Pool.t option -> schedule:Runtime.Pool.schedule -> outcome;
      (** execute the program once.  [pool = None] runs every loop
          sequentially (the dynamic equivalent of the interpreter's
          in-parallel flag); entries are reusable — all program state
          is allocated per call. *)
}

val register : entry -> unit

(** Take (and clear) the registered entry, if any. *)
val take : unit -> entry option
