(** Native-toolchain and build-tree discovery for the plugin pipeline.

    The generated module compiles against this build tree's own
    [.cmi]/[.cmx] files (so {!Dynlink} interface CRCs match the host
    binary by construction) with whatever [ocamlfind ocamlopt] or bare
    [ocamlopt] is on PATH.  Everything degrades to [Error] — never an
    exception — so hosts without a native toolchain report a clean
    [Toolchain] failure instead of crashing. *)

type t = {
  compiler : string list;
      (** argv prefix, e.g. [["/usr/bin/ocamlfind"; "ocamlopt"]] *)
  incdirs : string list;
      (** [.objs/byte] and [.objs/native] directories of every library
          in the build tree, for [-I] *)
}

(** Locate the compiler and the build tree.  The build tree is found
    by walking up from [Sys.executable_name] to a [_build] directory
    (how every dune-built binary and test runs); [$PED_BUILD_DIR]
    overrides it, pointing at [_build/default]. *)
val find : unit -> (t, string) result
