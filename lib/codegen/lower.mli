(** AST + runtime {!Runtime.Plan} -> {!Ir}.

    [Error msg] means the program falls outside the compilable subset
    (GOTO, recursion, aliasing argument patterns, inconsistent COMMON
    declarations, ...); the interpreter remains the fallback.  Lowering
    never produces an IR program with different observable behavior
    than {!Runtime.Exec} — anything it cannot translate faithfully is
    rejected. *)

val program : Fortran_front.Ast.program -> (Ir.program, string) result
