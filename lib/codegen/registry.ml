type outcome = {
  out_lines : string list;
  store : (string * float list) list;
}

type entry = {
  run :
    pool:Runtime.Pool.t option -> schedule:Runtime.Pool.schedule -> outcome;
}

let slot : entry option ref = ref None
let register e = slot := Some e

let take () =
  let e = !slot in
  slot := None;
  e
