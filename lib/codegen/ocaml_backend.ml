(* The OCaml-with-domains backend.

   Emits one standalone .ml module per program: a [run_] closure over
   COMMON storage and a [let rec] nest of unit functions, registered
   with {!Registry} as the module's final top-level effect.  Parallel
   loops run on [Runtime.Pool.parallel_for] with the schedule the host
   passes in; every DOALL reproduces the interpreter's join protocol
   (worker-private scalars and arrays, reduction combining in worker
   order, auxiliary-induction closed forms, iteration-sorted PRINT
   merge, last-iteration write-back).

   Two emission rules keep the generated code observably equal to the
   interpreter:

   - OCaml evaluates function arguments and constructor fields
     right-to-left; the interpreter evaluates operands, subscripts,
     actual arguments and PRINT items left-to-right.  Whenever any
     sibling subexpression calls user code, siblings are let-bound in
     source order first.

   - RETURN and STOP become exceptions ([Return_], [Stop_]); a
     subroutine catches only [Return_], the main unit catches both, so
     STOP inside a callee unwinds to the main snapshot exactly like
     the interpreter's signal plumbing.  Loop bodies never catch them,
     which skips the final DO-variable write on early exit — also the
     interpreter's behavior.  In a parallel loop the escape is parked,
     the join merges complete, and it is re-raised after — matching
     the interpreter's abort-then-merge order. *)

module Ast = Fortran_front.Ast
module Varclass = Scalar_analysis.Varclass

type ctx = {
  b : Buffer.t;
  mutable ind : int;
  mutable tmp : int;
  prog : Ir.program;
  units : (string, Ir.unitdef) Hashtbl.t;
  (* per-unit array geometry: element type and dimension count *)
  arrays : (string, Ir.ty * int) Hashtbl.t;
}

let line c fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string c.b (String.make (2 * c.ind) ' ');
      Buffer.add_string c.b s;
      Buffer.add_char c.b '\n')
    fmt

let fresh c p =
  c.tmp <- c.tmp + 1;
  Printf.sprintf "%s%d_" p c.tmp

let mangle v = "v_" ^ String.lowercase_ascii v
let base_of v = "b_" ^ String.lowercase_ascii v
let lb_of v k = Printf.sprintf "l_%s_%d" (String.lowercase_ascii v) k
let ext_of v k = Printf.sprintf "e_%s_%d" (String.lowercase_ascii v) k
let stride_of v k = Printf.sprintf "s_%s_%d" (String.lowercase_ascii v) k
let ufun u = "u_" ^ String.lowercase_ascii u

let lit_float f =
  if f <> f then "nan"
  else if f = infinity then "infinity"
  else if f = neg_infinity then "neg_infinity"
  else Printf.sprintf "(%h)" f

let lit_int n = if n < 0 then Printf.sprintf "(%d)" n else string_of_int n

(* storage selectors per element type *)
let alloc_fn = function
  | Ir.Treal -> ("Float.Array.make", "0.0")
  | Ir.Tint -> ("Array.make", "0")
  | Ir.Tbool -> ("Array.make", "false")
  | Ir.Tstr -> assert false

let get_fn = function
  | Ir.Treal -> "Float.Array.get"
  | _ -> "Array.get"

let set_fn = function
  | Ir.Treal -> "Float.Array.set"
  | _ -> "Array.set"

let len_fn = function
  | Ir.Treal -> "Float.Array.length"
  | _ -> "Array.length"

let blit_fn = function
  | Ir.Treal -> "Float.Array.blit"
  | _ -> "Array.blit"

let ref_ty = function
  | Ir.Tint -> "int ref"
  | Ir.Treal -> "float ref"
  | Ir.Tbool -> "bool ref"
  | Ir.Tstr -> assert false

let buf_ty = function
  | Ir.Tint -> "int array"
  | Ir.Treal -> "floatarray"
  | Ir.Tbool -> "bool array"
  | Ir.Tstr -> assert false

let zero_of = function
  | Ir.Tint -> "0"
  | Ir.Treal -> "0.0"
  | Ir.Tbool -> "false"
  | Ir.Tstr -> assert false

let snap_fn = function
  | Ir.Treal -> "_snapf"
  | Ir.Tint -> "_snapi"
  | Ir.Tbool -> "_snapb"
  | Ir.Tstr -> assert false

let cvt_float ty s =
  match ty with
  | Ir.Tint -> Printf.sprintf "float_of_int %s" s
  | Ir.Treal -> s
  | Ir.Tbool -> Printf.sprintf "(if %s then 1.0 else 0.0)" s
  | Ir.Tstr -> assert false

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(* Let-bind sibling subexpressions in source order when any of them
   calls user code (OCaml would otherwise evaluate them right-to-left,
   the interpreter goes left-to-right). *)
let rec with_args c (es : Ir.expr list) (k : string list -> string) : string =
  if List.length es > 1 && List.exists Ir.effectful es then begin
    let bound = List.map (fun e -> (fresh c "t", pe c e)) es in
    let lets =
      String.concat ""
        (List.map (fun (n, v) -> Printf.sprintf "let %s = %s in " n v) bound)
    in
    "(" ^ lets ^ k (List.map fst bound) ^ ")"
  end
  else k (List.map (fun e -> "(" ^ pe c e ^ ")") es)

and offset_str _c v (idx_toks : string list) : string =
  let terms =
    List.mapi
      (fun k tok ->
        if k = 0 then Printf.sprintf "(%s - %s)" tok (lb_of v k)
        else Printf.sprintf "((%s - %s) * %s)" tok (lb_of v k) (stride_of v k))
      idx_toks
  in
  String.concat " + " (base_of v :: terms)

and pe c (e : Ir.expr) : string =
  match e with
  | Ir.Eint n -> lit_int n
  | Ir.Ereal f -> lit_float f
  | Ir.Ebool b -> if b then "true" else "false"
  | Ir.Estr s -> Printf.sprintf "%S" s
  | Ir.Eload v -> "!" ^ mangle v
  | Ir.Eaload (v, idxs) ->
    let ty =
      match Hashtbl.find_opt c.arrays v with
      | Some (t, _) -> t
      | None -> Ir.Treal
    in
    with_args c idxs (fun toks ->
        Printf.sprintf "%s %s (%s)" (get_fn ty) (mangle v)
          (offset_str c v toks))
  | Ir.Ebin (op, Ir.Tbool, a, b) ->
    (* AND/OR: short-circuit, never rebind (matches the interpreter's
       left-then-maybe-right evaluation) *)
    let s = match op with Ast.And -> "&&" | _ -> "||" in
    Printf.sprintf "((%s) %s (%s))" (pe c a) s (pe c b)
  | Ir.Ebin (op, ty, a, b) ->
    with_args c [ a; b ] (fun toks ->
        let x = List.nth toks 0 and y = List.nth toks 1 in
        match (op, ty) with
        | Ast.Add, Ir.Tint -> Printf.sprintf "(%s + %s)" x y
        | Ast.Sub, Ir.Tint -> Printf.sprintf "(%s - %s)" x y
        | Ast.Mul, Ir.Tint -> Printf.sprintf "(%s * %s)" x y
        | Ast.Div, Ir.Tint -> Printf.sprintf "(_divi %s %s)" x y
        | Ast.Pow, Ir.Tint -> Printf.sprintf "(_powi %s %s)" x y
        | Ast.Add, _ -> Printf.sprintf "(%s +. %s)" x y
        | Ast.Sub, _ -> Printf.sprintf "(%s -. %s)" x y
        | Ast.Mul, _ -> Printf.sprintf "(%s *. %s)" x y
        | Ast.Div, _ -> Printf.sprintf "(%s /. %s)" x y
        | Ast.Pow, _ -> Printf.sprintf "(%s ** %s)" x y
        | Ast.Lt, _ -> Printf.sprintf "(%s < %s)" x y
        | Ast.Le, _ -> Printf.sprintf "(%s <= %s)" x y
        | Ast.Gt, _ -> Printf.sprintf "(%s > %s)" x y
        | Ast.Ge, _ -> Printf.sprintf "(%s >= %s)" x y
        | Ast.Eq, _ -> Printf.sprintf "(%s = %s)" x y
        | Ast.Ne, _ -> Printf.sprintf "(%s <> %s)" x y
        | (Ast.And | Ast.Or), _ -> assert false)
  | Ir.Eneg (ty, a) ->
    Printf.sprintf "(%s (%s))" (if ty = Ir.Tint then "-" else "-.") (pe c a)
  | Ir.Enot a -> Printf.sprintf "(not (%s))" (pe c a)
  | Ir.Ecvt (f, t, a) -> pe_cvt f t (pe c a)
  | Ir.Eintr (i, args) -> pe_intr c i args
  | Ir.Ecall (name, args, _) -> pe_call c name args ~is_fun:true

and pe_cvt f t s =
  match (f, t) with
  | a, b when a = b -> s
  | Ir.Tint, Ir.Treal -> Printf.sprintf "(float_of_int %s)" s
  | Ir.Tint, Ir.Tbool -> Printf.sprintf "(%s <> 0)" s
  | Ir.Treal, Ir.Tint -> Printf.sprintf "(_tr %s)" s
  | Ir.Treal, Ir.Tbool -> Printf.sprintf "(%s <> 0.0)" s
  | Ir.Tbool, Ir.Tint -> Printf.sprintf "(if %s then 1 else 0)" s
  | Ir.Tbool, Ir.Treal -> Printf.sprintf "(if %s then 1.0 else 0.0)" s
  | _ -> assert false

and pe_intr c i args =
  with_args c args (fun toks ->
      let a () = List.nth toks 0 in
      let b () = List.nth toks 1 in
      match i with
      | Ir.Iabs Ir.Tint -> Printf.sprintf "(abs %s)" (a ())
      | Ir.Iabs _ -> Printf.sprintf "(Float.abs %s)" (a ())
      | Ir.Imod Ir.Tint -> Printf.sprintf "(_modi %s %s)" (a ()) (b ())
      | Ir.Imod _ -> Printf.sprintf "(Float.rem %s %s)" (a ()) (b ())
      | Ir.Imax ty ->
        let m = Printf.sprintf "(_fmax [%s])" (String.concat "; " toks) in
        if ty = Ir.Tint then Printf.sprintf "(int_of_float %s)" m else m
      | Ir.Imin ty ->
        let m = Printf.sprintf "(_fmin [%s])" (String.concat "; " toks) in
        if ty = Ir.Tint then Printf.sprintf "(int_of_float %s)" m else m
      | Ir.Isqrt -> Printf.sprintf "(sqrt %s)" (a ())
      | Ir.Iexp -> Printf.sprintf "(exp %s)" (a ())
      | Ir.Ilog -> Printf.sprintf "(log %s)" (a ())
      | Ir.Isin -> Printf.sprintf "(sin %s)" (a ())
      | Ir.Icos -> Printf.sprintf "(cos %s)" (a ())
      | Ir.Itan -> Printf.sprintf "(tan %s)" (a ())
      | Ir.Inint -> Printf.sprintf "(_nint %s)" (a ())
      | Ir.Isign ty ->
        let s = Printf.sprintf "(_sgn %s %s)" (a ()) (b ()) in
        if ty = Ir.Tint then Printf.sprintf "(int_of_float %s)" s else s)

(* A call, as a single expression of the callee's result type (unit
   for subroutines).  Actual arguments are let-bound in formal order;
   Mcopy element arguments are copied back after the call returns. *)
and pe_call c name args ~is_fun : string =
  let pre = Buffer.create 64 in
  let post = Buffer.create 16 in
  let toks =
    List.concat_map
      (fun (a : Ir.arg) ->
        match a with
        | Ir.Ascalar v -> [ mangle v ]
        | Ir.Aarray v -> [ mangle v; base_of v ]
        | Ir.Aelem (v, idxs, mode) ->
          let ty =
            match Hashtbl.find_opt c.arrays v with
            | Some (t, _) -> t
            | None -> Ir.Treal
          in
          let o = fresh c "o" in
          Buffer.add_string pre
            (Printf.sprintf "let %s = %s in " o
               (with_args c idxs (fun toks -> offset_str c v toks)));
          (match mode with
          | Ir.Mview -> [ mangle v; o ]
          | Ir.Mcopy ->
            let t = fresh c "t" in
            Buffer.add_string pre
              (Printf.sprintf "let %s = ref (%s %s (%s)) in " t (get_fn ty)
                 (mangle v) o);
            Buffer.add_string post
              (Printf.sprintf "%s %s (%s) !%s; " (set_fn ty) (mangle v) o t);
            [ t ])
        | Ir.Atemp (e, _) ->
          let t = fresh c "t" in
          Buffer.add_string pre
            (Printf.sprintf "let %s = ref (%s) in " t (pe c e));
          [ t ])
      args
  in
  let call =
    Printf.sprintf "%s ~pool ~out %s()" (ufun name)
      (String.concat "" (List.map (fun t -> t ^ " ") toks))
  in
  let pre = Buffer.contents pre and post = Buffer.contents post in
  if is_fun then
    if post = "" then Printf.sprintf "(%s%s)" pre call
    else
      let r = fresh c "r" in
      Printf.sprintf "(%slet %s = %s in %s%s)" pre r call post r
  else if post = "" then Printf.sprintf "(%s%s)" pre call
  else Printf.sprintf "(%s%s; %s())" pre call post

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

(* DO-variable update: [s] is the index value in the loop's arithmetic
   domain (int unless [d_float]); store it converted to the variable's
   type, as the interpreter's typed cell assignment does. *)
let iv_store (d : Ir.doh) s =
  let v =
    match (d.Ir.d_float, d.Ir.d_ivty) with
    | false, Ir.Tint | true, Ir.Treal -> s
    | false, Ir.Treal -> Printf.sprintf "(float_of_int %s)" s
    | false, Ir.Tbool -> Printf.sprintf "(%s <> 0)" s
    | true, Ir.Tint -> Printf.sprintf "(_tr %s)" s
    | true, Ir.Tbool -> Printf.sprintf "(%s <> 0.0)" s
    | _, Ir.Tstr -> assert false
  in
  Printf.sprintf "%s := %s;" (mangle d.Ir.d_iv) v

let rec emit_stmt c (s : Ir.stmt) : unit =
  match s with
  | Ir.Sassign (v, e) -> line c "%s := %s;" (mangle v) (pe c e)
  | Ir.Sastore (v, idxs, rhs) ->
    let ty =
      match Hashtbl.find_opt c.arrays v with
      | Some (t, _) -> t
      | None -> Ir.Treal
    in
    if Ir.effectful rhs || List.exists Ir.effectful idxs then begin
      (* rhs first, then subscripts left-to-right: interpreter order *)
      let r = fresh c "r" in
      let toks = List.map (fun e -> (fresh c "i", e)) idxs in
      line c "(let %s = %s in" r (pe c rhs);
      List.iter (fun (n, e) -> line c " let %s = %s in" n (pe c e)) toks;
      line c " %s %s (%s) %s);" (set_fn ty) (mangle v)
        (offset_str c v (List.map fst toks))
        r
    end
    else
      line c "%s %s (%s) (%s);" (set_fn ty) (mangle v)
        (offset_str c v (List.map (fun e -> "(" ^ pe c e ^ ")") idxs))
        (pe c rhs)
  | Ir.Sif (branches, els) ->
    List.iteri
      (fun i (cond, body) ->
        line c "%s %s then begin" (if i = 0 then "(if" else "end else if")
          (pe c cond);
        c.ind <- c.ind + 1;
        emit_block c body;
        c.ind <- c.ind - 1)
      branches;
    line c "end else begin";
    c.ind <- c.ind + 1;
    emit_block c els;
    c.ind <- c.ind - 1;
    line c "end);"
  | Ir.Scall (name, args) ->
    let is_fun =
      match Hashtbl.find_opt c.units name with
      | Some { Ir.u_kind = Ir.Kfun _; _ } -> true
      | _ -> false
    in
    if is_fun then line c "ignore %s;" (pe_call c name args ~is_fun:true)
    else line c "%s;" (pe_call c name args ~is_fun:false)
  | Ir.Sprint items ->
    let effectful_item = function
      | Ir.Pstr _ -> false
      | Ir.Pexpr (e, _) -> Ir.effectful e
    in
    let fmt tok ty =
      match ty with
      | Ir.Tint -> Printf.sprintf "string_of_int %s" tok
      | Ir.Treal -> Printf.sprintf "_r6 %s" tok
      | Ir.Tbool -> Printf.sprintf "(if %s then \"T\" else \"F\")" tok
      | Ir.Tstr -> tok
    in
    if List.exists effectful_item items then begin
      let bound =
        List.map
          (function
            | Ir.Pstr s -> (Printf.sprintf "%S" s, None)
            | Ir.Pexpr (e, ty) -> (pe c e, Some ty))
          items
      in
      let named =
        List.map
          (fun (v, ty) ->
            match ty with
            | None -> (v, None, None)
            | Some ty -> (v, Some (fresh c "p"), Some ty))
          bound
      in
      line c "(%sout := String.concat \" \" [ %s ] :: !out);"
        (String.concat ""
           (List.filter_map
              (function
                | v, Some n, _ -> Some (Printf.sprintf "let %s = %s in " n v)
                | _ -> None)
              named))
        (String.concat "; "
           (List.map
              (function
                | v, None, _ -> v
                | _, Some n, Some ty -> fmt n ty
                | _ -> assert false)
              named))
    end
    else
      line c "out := String.concat \" \" [ %s ] :: !out;"
        (String.concat "; "
           (List.map
              (function
                | Ir.Pstr s -> Printf.sprintf "%S" s
                | Ir.Pexpr (e, ty) -> fmt ("(" ^ pe c e ^ ")") ty)
              items))
  | Ir.Sreturn -> line c "raise Return_;"
  | Ir.Sstop -> line c "raise Stop_;"
  | Ir.Sdo (d, body) -> emit_seq_do c d body
  | Ir.Spar (d, pp, body) -> emit_par_do c d pp body

and emit_block c (body : Ir.stmt list) : unit =
  if body = [] then line c "();" else List.iter (emit_stmt c) body

(* Shared loop prelude: bind bounds, check the step, compute the trip
   count, give the DO variable its initial value. *)
and emit_do_prelude c (d : Ir.doh) : string * string * string * string =
  let sid = d.Ir.d_sid in
  let lo = Printf.sprintf "lo%d_" sid
  and hi = Printf.sprintf "hi%d_" sid
  and st = Printf.sprintf "st%d_" sid
  and trip = Printf.sprintf "trip%d_" sid in
  line c "let %s = %s in" lo (pe c d.Ir.d_lo);
  line c "let %s = %s in" hi (pe c d.Ir.d_hi);
  line c "let %s = %s in" st (pe c d.Ir.d_step);
  if d.Ir.d_float then begin
    line c "if %s = 0.0 then failwith \"zero DO step\";" st;
    line c "let %s = max 0 (_tr (((%s -. %s) +. %s) /. %s)) in" trip hi lo st
      st
  end
  else begin
    line c "if %s = 0 then failwith \"zero DO step\";" st;
    line c "let %s = max 0 (((%s - %s) + %s) / %s) in" trip hi lo st st
  end;
  (* F77: the DO variable receives its initial value even when the
     loop runs zero times *)
  line c "%s" (iv_store d lo);
  (lo, st, trip, Printf.sprintf "k%d_" sid)

and value_at (d : Ir.doh) ~lo ~st k =
  if d.Ir.d_float then Printf.sprintf "(%s +. (float_of_int %s *. %s))" lo k st
  else Printf.sprintf "(%s + (%s * %s))" lo k st

and emit_seq_do c (d : Ir.doh) body : unit =
  line c "begin";
  c.ind <- c.ind + 1;
  let lo, st, trip, k = emit_do_prelude c d in
  line c "for %s = 0 to %s - 1 do" k trip;
  c.ind <- c.ind + 1;
  line c "%s" (iv_store d (value_at d ~lo ~st k));
  emit_block c body;
  c.ind <- c.ind - 1;
  line c "done;";
  (* normal completion leaves the DO variable at the first value that
     failed the iteration test; an escaping exception skips this *)
  line c "%s" (iv_store d (value_at d ~lo ~st trip));
  c.ind <- c.ind - 1;
  line c "end;"

and emit_par_do c (d : Ir.doh) (pp : Ir.par) body : unit =
  let sid = d.Ir.d_sid in
  let n fmt = Printf.sprintf fmt sid in
  let iv = mangle d.Ir.d_iv in
  line c "begin";
  c.ind <- c.ind + 1;
  let lo, st, trip, k = emit_do_prelude c d in
  line c "match pool with";
  line c "| Some %s when %s > 0 ->" (n "pool%d_") trip;
  c.ind <- c.ind + 1;
  let nw = n "nw%d_" in
  line c "let %s = Runtime.Pool.size %s in" nw (n "pool%d_");
  (* entry snapshots: private seeds and induction start values *)
  let seed v = Printf.sprintf "sd_%s_%d" (String.lowercase_ascii v) sid in
  let k0 v = Printf.sprintf "k0_%s_%d" (String.lowercase_ascii v) sid in
  List.iter
    (fun (v, _) -> line c "let %s = !%s in" (seed v) (mangle v))
    pp.Ir.pp_privates;
  List.iter
    (fun (v, _, _) -> line c "let %s = !%s in" (k0 v) (mangle v))
    pp.Ir.pp_inductions;
  (* per-worker state *)
  let wiv = n "iv%d_" in
  line c "let %s = Array.init %s (fun _ -> ref !%s) in" wiv nw iv;
  let pv v = Printf.sprintf "pv_%s_%d" (String.lowercase_ascii v) sid in
  List.iter
    (fun (v, _) ->
      line c "let %s = Array.init %s (fun _ -> ref %s) in" (pv v) nw (seed v))
    pp.Ir.pp_privates;
  let ind v = Printf.sprintf "in_%s_%d" (String.lowercase_ascii v) sid in
  List.iter
    (fun (v, _, _) ->
      line c "let %s = Array.init %s (fun _ -> ref %s) in" (ind v) nw (k0 v))
    pp.Ir.pp_inductions;
  let rd v = Printf.sprintf "rd_%s_%d" (String.lowercase_ascii v) sid in
  let identity ty op =
    match (ty, op) with
    | Ir.Tint, Varclass.Rsum -> "0"
    | Ir.Tint, Varclass.Rprod -> "1"
    | Ir.Tint, Varclass.Rmax -> "min_int"
    | Ir.Tint, Varclass.Rmin -> "max_int"
    | _, Varclass.Rsum -> "0.0"
    | _, Varclass.Rprod -> "1.0"
    | _, Varclass.Rmax -> "neg_infinity"
    | _, Varclass.Rmin -> "infinity"
  in
  List.iter
    (fun (v, ty, op) ->
      line c "let %s = Array.init %s (fun _ -> ref %s) in" (rd v) nw
        (identity ty op))
    pp.Ir.pp_reductions;
  let ap v = Printf.sprintf "ap_%s_%d" (String.lowercase_ascii v) sid in
  List.iter
    (fun v ->
      let ty =
        match Hashtbl.find_opt c.arrays v with
        | Some (t, _) -> t
        | None -> Ir.Treal
      in
      let mk, z = alloc_fn ty in
      line c "let %s = Array.init %s (fun _ ->" (ap v) nw;
      line c "  let nb_ = %s (%s %s) %s in" mk (len_fn ty) (mangle v) z;
      line c "  %s %s 0 nb_ 0 (%s %s); nb_) in" (blit_fn ty) (mangle v)
        (len_fn ty) (mangle v))
    pp.Ir.pp_arrays;
  let last = n "last%d_" and esc = n "esc%d_" and outs = n "outs%d_" in
  line c "let %s = Array.make %s (-1) in" last nw;
  if pp.Ir.pp_has_output then line c "let %s = Array.make %s [] in" outs nw;
  line c "let %s = ref None in" esc;
  line c "(try";
  c.ind <- c.ind + 1;
  line c "Runtime.Pool.parallel_for ~label:\"s%d\" %s ~schedule ~trip:%s" sid
    (n "pool%d_") trip;
  line c "  ~body:(fun ~worker %s ->" k;
  c.ind <- c.ind + 1;
  (* worker scope: no nested parallelism, private copies shadow the
     shared storage by name, output is buffered per iteration *)
  line c "let pool : Runtime.Pool.t option = None in";
  line c "let %s = %s.(worker) in" iv wiv;
  List.iter
    (fun (v, _) -> line c "let %s = %s.(worker) in" (mangle v) (pv v))
    pp.Ir.pp_privates;
  List.iter
    (fun (v, _, _) -> line c "let %s = %s.(worker) in" (mangle v) (ind v))
    pp.Ir.pp_inductions;
  List.iter
    (fun (v, _, _) -> line c "let %s = %s.(worker) in" (mangle v) (rd v))
    pp.Ir.pp_reductions;
  List.iter
    (fun v -> line c "let %s = %s.(worker) in" (mangle v) (ap v))
    pp.Ir.pp_arrays;
  if pp.Ir.pp_has_output then line c "let out = ref [] in";
  line c "%s.(worker) <- %s;" last k;
  line c "%s" (iv_store d (value_at d ~lo ~st k));
  List.iter
    (fun (v, ty, stride) ->
      match ty with
      | Ir.Tint ->
        line c "%s := %s + (%s * %s);" (mangle v) (k0 v) (lit_int stride) k
      | Ir.Treal ->
        line c "%s := %s +. float_of_int (%s * %s);" (mangle v) (k0 v)
          (lit_int stride) k
      | _ -> line c "%s := %s;" (mangle v) (k0 v))
    pp.Ir.pp_inductions;
  emit_block c body;
  if pp.Ir.pp_has_output then
    line c "if !out <> [] then %s.(worker) <- (%s, List.rev !out) :: %s.(worker)"
      outs k outs;
  c.ind <- c.ind - 1;
  line c ")";
  c.ind <- c.ind - 1;
  line c "with %s -> %s := Some %s);" (n "e%d_") esc (n "e%d_");
  (* join protocol, in the interpreter's order: PRINT merge, last-value
     write-back, reduction combining, induction finals, the DO
     variable's final value, then any parked escape *)
  if pp.Ir.pp_has_output then begin
    line c "List.iter (fun (_, ls_) -> List.iter (fun l_ -> out := l_ :: !out) ls_)";
    line c "  (List.sort (fun (a_, _) (b_, _) -> compare (a_ : int) b_)";
    line c "     (Array.fold_left (fun acc_ l_ -> l_ @ acc_) [] %s));" outs
  end;
  let lw = n "lw%d_" in
  line c "let %s = ref (-1) in" lw;
  line c "for w_ = 0 to %s - 1 do" nw;
  line c "  if !%s < 0 || %s.(w_) > %s.(!%s) then" lw last last lw;
  line c "    (if %s.(w_) >= 0 then %s := w_)" last lw;
  line c "done;";
  if pp.Ir.pp_privates <> [] || pp.Ir.pp_arrays <> [] then begin
    line c "if !%s >= 0 then begin" lw;
    c.ind <- c.ind + 1;
    List.iter
      (fun (v, _) -> line c "%s := !(%s.(!%s));" (mangle v) (pv v) lw)
      pp.Ir.pp_privates;
    List.iter
      (fun v ->
        let ty =
          match Hashtbl.find_opt c.arrays v with
          | Some (t, _) -> t
          | None -> Ir.Treal
        in
        line c "%s %s.(!%s) 0 %s 0 (%s %s);" (blit_fn ty) (ap v) lw (mangle v)
          (len_fn ty) (mangle v))
      pp.Ir.pp_arrays;
    c.ind <- c.ind - 1;
    line c "end;"
  end;
  List.iter
    (fun (v, ty, op) ->
      let acc = n "acc%d_" in
      let combine a b =
        match (ty, op) with
        | Ir.Tint, Varclass.Rsum -> Printf.sprintf "%s + %s" a b
        | Ir.Tint, Varclass.Rprod -> Printf.sprintf "%s * %s" a b
        | Ir.Tint, Varclass.Rmax -> Printf.sprintf "max %s %s" a b
        | Ir.Tint, Varclass.Rmin -> Printf.sprintf "min %s %s" a b
        | _, Varclass.Rsum -> Printf.sprintf "%s +. %s" a b
        | _, Varclass.Rprod -> Printf.sprintf "%s *. %s" a b
        | _, Varclass.Rmax -> Printf.sprintf "Float.max %s %s" a b
        | _, Varclass.Rmin -> Printf.sprintf "Float.min %s %s" a b
      in
      line c "let %s = ref !%s in" acc (mangle v);
      line c "for w_ = 0 to %s - 1 do" nw;
      line c "  if %s.(w_) >= 0 then %s := %s" last acc
        (combine ("!" ^ acc) (Printf.sprintf "!(%s.(w_))" (rd v)));
      line c "done;";
      line c "%s := !%s;" (mangle v) acc)
    pp.Ir.pp_reductions;
  List.iter
    (fun (v, ty, stride) ->
      match ty with
      | Ir.Tint ->
        line c "%s := %s + (%s * %s);" (mangle v) (k0 v) (lit_int stride) trip
      | Ir.Treal ->
        line c "%s := %s +. float_of_int (%s * %s);" (mangle v) (k0 v)
          (lit_int stride) trip
      | _ -> line c "%s := %s;" (mangle v) (k0 v))
    pp.Ir.pp_inductions;
  line c "%s" (iv_store d (value_at d ~lo ~st trip));
  line c "(match !%s with Some e_ -> raise e_ | None -> ())" esc;
  c.ind <- c.ind - 1;
  line c "| _ ->";
  c.ind <- c.ind + 1;
  (* no pool (or empty loop): run sequentially, same body text — the
     interpreter's fallback.  Note [pool] is NOT shadowed here: an
     empty outer DOALL leaves inner DOALLs free to go parallel. *)
  line c "for %s = 0 to %s - 1 do" k trip;
  c.ind <- c.ind + 1;
  line c "%s" (iv_store d (value_at d ~lo ~st k));
  emit_block c body;
  c.ind <- c.ind - 1;
  line c "done;";
  line c "%s" (iv_store d (value_at d ~lo ~st trip));
  c.ind <- c.ind - 1;
  c.ind <- c.ind - 1;
  line c "end;"

(* ------------------------------------------------------------------ *)
(* Units                                                               *)
(* ------------------------------------------------------------------ *)

(* COMMON geometry is compile-time constant; look it up globally so
   every unit sees the storage shape of the first declaration. *)
let common_geom c v : (int * int) list =
  match
    List.find_opt (fun (d : Ir.vdef) -> d.Ir.v_name = v) c.prog.Ir.p_commons
  with
  | Some { Ir.v_arr = Some a; _ } ->
    List.map2
      (fun l x ->
        match (l, x) with
        | Ir.Eint lo, Ir.Xfixed (Ir.Eint e) -> (lo, max 1 e)
        | _ -> assert false)
      a.Ir.a_lowers a.Ir.a_extents
  | _ -> assert false

let emit_unit_storage c (u : Ir.unitdef) : unit =
  Hashtbl.reset c.arrays;
  (* pass 1: scalars (PARAMETER/DATA seeded), so array dims can use them *)
  List.iter
    (fun (v : Ir.vdef) ->
      if v.Ir.v_arr = None then
        match v.Ir.v_place with
        | Ir.Pformal _ -> ()
        | Ir.Pcommon ->
          line c "let %s = c_%s in" (mangle v.Ir.v_name)
            (String.lowercase_ascii v.Ir.v_name)
        | Ir.Plocal ->
          let init =
            match v.Ir.v_init with
            | Ir.Inone -> zero_of v.Ir.v_ty
            | Ir.Iint n -> lit_int n
            | Ir.Ireal f -> lit_float f
            | Ir.Ibool b -> if b then "true" else "false"
          in
          line c "let %s = ref %s in" (mangle v.Ir.v_name) init)
    u.Ir.u_vars;
  (* pass 2: arrays (bounds may reference formals and parameters) *)
  List.iter
    (fun (v : Ir.vdef) ->
      match v.Ir.v_arr with
      | None -> ()
      | Some arr ->
        let name = v.Ir.v_name in
        let nd = List.length arr.Ir.a_extents in
        Hashtbl.replace c.arrays name (v.Ir.v_ty, nd);
        (match v.Ir.v_place with
        | Ir.Pcommon ->
          line c "let %s = c_%s in" (mangle name)
            (String.lowercase_ascii name);
          line c "let %s = 0 in" (base_of name);
          List.iteri
            (fun k (lo, e) ->
              line c "let %s = %s in" (lb_of name k) (lit_int lo);
              line c "let %s = %s in" (ext_of name k) (lit_int e))
            (common_geom c name)
        | Ir.Pformal _ | Ir.Plocal ->
          List.iteri
            (fun k (lo, x) ->
              line c "let %s = %s in" (lb_of name k) (pe c lo);
              match x with
              | Ir.Xfixed e ->
                line c "let %s = max 1 %s in" (ext_of name k) (pe c e)
              | Ir.Xassumed ->
                (* the interpreter's rule: the storage decides *)
                let others =
                  if k = 0 then "1"
                  else
                    String.concat " * "
                      (List.init k (fun j -> ext_of name j))
                in
                line c "let %s = max 1 ((%s %s - %s) / (max 1 (%s))) in"
                  (ext_of name k) (len_fn v.Ir.v_ty) (mangle name)
                  (base_of name) others)
            (List.combine arr.Ir.a_lowers arr.Ir.a_extents));
        (* strides, then storage for locals *)
        List.iteri
          (fun k _ ->
            if k = 0 then line c "let %s = 1 in" (stride_of name 0)
            else
              line c "let %s = %s * %s in" (stride_of name k)
                (stride_of name (k - 1))
                (ext_of name (k - 1)))
          arr.Ir.a_extents;
        (match v.Ir.v_place with
        | Ir.Plocal ->
          let mk, z = alloc_fn v.Ir.v_ty in
          line c "let %s = %s (%s) %s in" (mangle name) mk
            (String.concat " * " (List.init nd (fun k -> ext_of name k)))
            z;
          line c "let %s = 0 in" (base_of name)
        | Ir.Pformal _ | Ir.Pcommon -> ()))
    u.Ir.u_vars

let formal_params (u : Ir.unitdef) : string =
  String.concat ""
    (List.map
       (fun f ->
         let v =
           List.find
             (fun (v : Ir.vdef) ->
               v.Ir.v_name = f
               && match v.Ir.v_place with Ir.Pformal _ -> true | _ -> false)
             u.Ir.u_vars
         in
         if v.Ir.v_arr = None then
           Printf.sprintf "(%s : %s) " (mangle f) (ref_ty v.Ir.v_ty)
         else
           Printf.sprintf "(%s : %s) (%s : int) " (mangle f)
             (buf_ty v.Ir.v_ty) (base_of f))
       u.Ir.u_formals)

let emit_snapshot_entries (u : Ir.unitdef) : string list =
  List.map
    (fun (v : Ir.vdef) ->
      let name = v.Ir.v_name in
      match v.Ir.v_arr with
      | None ->
        Printf.sprintf "(%S, [ %s ])" name
          (cvt_float v.Ir.v_ty ("!" ^ mangle name))
      | Some arr ->
        let nd = List.length arr.Ir.a_extents in
        let prod =
          String.concat " * " (List.init nd (fun k -> ext_of name k))
        in
        Printf.sprintf "(%S, %s %s %s (min (%s) (%s %s - %s)))" name
          (snap_fn v.Ir.v_ty) (mangle name) (base_of name) prod
          (len_fn v.Ir.v_ty) (mangle name) (base_of name))
    u.Ir.u_vars

let emit_unit c (first : bool) (u : Ir.unitdef) : unit =
  let kw = if first then "let rec" else "and" in
  let ret =
    match u.Ir.u_kind with
    | Ir.Kmain -> "(string * float list) list"
    | Ir.Ksub -> "unit"
    | Ir.Kfun ty -> (
      match ty with
      | Ir.Tint -> "int"
      | Ir.Treal -> "float"
      | Ir.Tbool -> "bool"
      | Ir.Tstr -> assert false)
  in
  line c "%s %s ~pool ~out %s() : %s =" kw (ufun u.Ir.u_name)
    (formal_params u) ret;
  c.ind <- c.ind + 1;
  emit_unit_storage c u;
  (match u.Ir.u_kind with
  | Ir.Kmain ->
    (* STOP anywhere unwinds to here; the final store is still
       snapshotted, as the interpreter does *)
    line c "(try";
    c.ind <- c.ind + 1;
    emit_block c u.Ir.u_body;
    c.ind <- c.ind - 1;
    line c "with Return_ -> () | Stop_ -> ());";
    line c "[ %s ]" (String.concat ";\n  " (emit_snapshot_entries u))
  | Ir.Ksub ->
    line c "(try";
    c.ind <- c.ind + 1;
    emit_block c u.Ir.u_body;
    c.ind <- c.ind - 1;
    line c "with Return_ -> ())"
  | Ir.Kfun _ ->
    line c "(try";
    c.ind <- c.ind + 1;
    emit_block c u.Ir.u_body;
    c.ind <- c.ind - 1;
    line c "with Return_ -> ());";
    line c "!%s" (mangle u.Ir.u_name));
  c.ind <- c.ind - 1;
  line c ""

(* ------------------------------------------------------------------ *)
(* Whole programs                                                      *)
(* ------------------------------------------------------------------ *)

let prelude =
  {|(* Generated by the ped OCaml-domains backend.  Do not edit. *)
exception Return_
exception Stop_

let _tr f = int_of_float (Float.trunc f)

let _powi x y =
  if y < 0 then 0
  else int_of_float (Float.round (float_of_int x ** float_of_int y))

let _divi x y = if y = 0 then failwith "integer division by zero" else x / y
let _modi x y = if y = 0 then failwith "MOD by zero" else x mod y
let _fmax l = List.fold_left Float.max (List.hd l) (List.tl l)
let _fmin l = List.fold_left Float.min (List.hd l) (List.tl l)
let _nint f = int_of_float (Float.round f)

let _sgn a b =
  let m = Float.abs a in
  if b < 0.0 then -.m else m

let _r6 f = Printf.sprintf "%.6g" f

let _snapf (a : floatarray) base size =
  List.init size (fun i -> Float.Array.get a (base + i))

let _snapi (a : int array) base size =
  List.init size (fun i -> float_of_int a.(base + i))

let _snapb (a : bool array) base size =
  List.init size (fun i -> if a.(base + i) then 1.0 else 0.0)
|}

let emit (p : Ir.program) : string =
  let c =
    {
      b = Buffer.create 65536;
      ind = 0;
      tmp = 0;
      prog = p;
      units = Hashtbl.create 8;
      arrays = Hashtbl.create 16;
    }
  in
  List.iter (fun (u : Ir.unitdef) -> Hashtbl.replace c.units u.Ir.u_name u)
    p.Ir.p_units;
  Buffer.add_string c.b prelude;
  line c "";
  line c "let run_ ~(pool : Runtime.Pool.t option)";
  line c "    ~(schedule : Runtime.Pool.schedule) : Codegen.Registry.outcome =";
  c.ind <- 1;
  line c "let _ = schedule in";
  (* COMMON storage: zero-initialized, constant geometry *)
  List.iter
    (fun (v : Ir.vdef) ->
      let cn = "c_" ^ String.lowercase_ascii v.Ir.v_name in
      match v.Ir.v_arr with
      | None -> line c "let %s = ref %s in" cn (zero_of v.Ir.v_ty)
      | Some _ ->
        let geom = common_geom c v.Ir.v_name in
        let size = List.fold_left (fun acc (_, e) -> acc * e) 1 geom in
        let mk, z = alloc_fn v.Ir.v_ty in
        line c "let %s = %s %d %s in" cn mk (max 1 size) z)
    p.Ir.p_commons;
  line c "let out_ = ref [] in";
  List.iteri (fun i u -> emit_unit c (i = 0) u) p.Ir.p_units;
  line c "in";
  line c "let snap_ = %s ~pool ~out:out_ () in"
    (ufun
       (match
          List.find_opt
            (fun (u : Ir.unitdef) -> u.Ir.u_kind = Ir.Kmain)
            p.Ir.p_units
        with
       | Some u -> u.Ir.u_name
       | None -> p.Ir.p_main));
  line c "{ Codegen.Registry.out_lines = List.rev !out_;";
  line c "  store =";
  line c "    snap_";
  line c "    @ [";
  List.iter
    (fun (v : Ir.vdef) ->
      let cn = "c_" ^ String.lowercase_ascii v.Ir.v_name in
      match v.Ir.v_arr with
      | None ->
        line c "        (%S, [ %s ]);"
          ("/" ^ v.Ir.v_name)
          (cvt_float v.Ir.v_ty ("!" ^ cn))
      | Some _ ->
        let geom = common_geom c v.Ir.v_name in
        let size = max 1 (List.fold_left (fun acc (_, e) -> acc * e) 1 geom) in
        line c "        (%S, %s %s 0 %d);"
          ("/" ^ v.Ir.v_name)
          (snap_fn v.Ir.v_ty) cn size)
    p.Ir.p_commons;
  line c "      ] }";
  c.ind <- 0;
  line c "";
  line c "let () =";
  line c "  Codegen.Registry.register";
  line c "    { Codegen.Registry.run = (fun ~pool ~schedule -> run_ ~pool ~schedule) }";
  Buffer.contents c.b
