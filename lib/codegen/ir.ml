(* The imperative IR between lowering and the backends.

   The design point (after Futhark's ImpCode): everything a backend
   must know is explicit here — static types on every operation,
   storage placement (local / formal / COMMON) per variable, entry-time
   array geometry, and the full parallel-loop plan (privates,
   inductions, reductions, privatized arrays) attached to each
   PARALLEL DO.  Lowering resolves all Fortran name binding, implicit
   typing, and value-conversion rules, so a backend is a pure
   pretty-printer: it never consults a symbol table and never decides
   a coercion.

   Semantic contract: an IR program evaluated by any backend must be
   observably equal to [Runtime.Exec] on the same AST — same PRINT
   lines, same final store (including live-out privates, reduction
   combining order and auxiliary-induction final values). *)

open Fortran_front

type ty = Tint | Treal | Tbool | Tstr
(* [Tstr] appears only as the type of PRINT string literals. *)

type place =
  | Plocal  (* fresh storage at unit entry *)
  | Pformal of int  (* 0-based position in the unit's formal list *)
  | Pcommon  (* process-global COMMON storage *)

(* Array extent: [Xfixed] extents are entry-time expressions over the
   unit's scalars; [Xassumed] is the F77 assumed-size final dimension
   of a formal array (extent defined by the passed storage). *)
type extent = Xfixed of expr | Xassumed

and arr = {
  a_lowers : expr list;  (* per-dimension lower bounds, entry-time *)
  a_extents : extent list;  (* per-dimension sizes, each clamped >= 1 *)
}

and vdef = {
  v_name : string;  (* Fortran name, uppercase *)
  v_ty : ty;
  v_place : place;
  v_arr : arr option;  (* None = scalar *)
  v_init : init;  (* PARAMETER / DATA seed, already converted to v_ty *)
}

and init = Inone | Iint of int | Ireal of float | Ibool of bool

and intrinsic =
  | Iabs of ty  (* Tint or Treal *)
  | Imod of ty
  | Imax of ty  (* result type; arguments are pre-converted to Treal *)
  | Imin of ty
  | Isqrt
  | Iexp
  | Ilog
  | Isin
  | Icos
  | Itan
  | Inint
  | Isign of ty  (* result type; arguments pre-converted to Treal *)

and expr =
  | Eint of int
  | Ereal of float
  | Ebool of bool
  | Estr of string  (* PRINT items only *)
  | Eload of string  (* scalar read, Fortran name *)
  | Eaload of string * expr list  (* array element read; subscripts Tint *)
  | Ebin of Ast.binop * ty * expr * expr
      (* [ty] is the operand domain: Tint/Treal for arithmetic (both
         operands already of that type), Treal for comparisons (both
         operands pre-converted), Tbool for AND/OR *)
  | Eneg of ty * expr
  | Enot of expr
  | Ecvt of ty * ty * expr  (* value conversion [from] -> [to], the
                               simulator's [Value.convert] rules *)
  | Eintr of intrinsic * expr list
  | Ecall of string * arg list * ty  (* user FUNCTION call, result type *)

(* Argument binding, resolved against the callee's formal (by-reference
   passing): *)
and arg =
  | Ascalar of string  (* scalar variable: the callee shares the cell *)
  | Aarray of string  (* whole array: callee reshapes the storage *)
  | Aelem of string * expr list * elem_mode  (* array element actual *)
  | Atemp of expr * ty  (* expression actual: one-cell temporary of the
                           formal's type, copy-in only *)

and elem_mode =
  | Mview  (* bound to an array formal: storage from that element on *)
  | Mcopy  (* bound to a scalar formal: copy-in / copy-out *)

type doh = {
  d_iv : string;
  d_ivty : ty;
  d_lo : expr;
  d_hi : expr;
  d_step : expr;
  d_float : bool;  (* float trip arithmetic (any non-integer bound) *)
  d_sid : int;  (* source statement id, for labels and telemetry *)
}

(* The parallel-loop plan, typed (a projection of [Runtime.Plan.t]
   onto the unit's storage). *)
type par = {
  pp_privates : (string * ty) list;
  pp_inductions : (string * ty * int) list;  (* closed-form stride *)
  pp_reductions : (string * ty * Scalar_analysis.Varclass.reduction_op) list;
  pp_arrays : string list;  (* privatized arrays (copy / last-value) *)
  pp_has_output : bool;  (* body may PRINT, directly or via calls *)
}

type pitem = Pstr of string | Pexpr of expr * ty

type stmt =
  | Sassign of string * expr  (* scalar :=, rhs already coerced *)
  | Sastore of string * expr list * expr
      (* array element :=; backends must evaluate rhs first, then the
         subscripts left-to-right (the interpreter's order) *)
  | Sif of (expr * stmt list) list * stmt list
  | Sdo of doh * stmt list
  | Spar of doh * par * stmt list
  | Scall of string * arg list
  | Sprint of pitem list
  | Sreturn
  | Sstop

type ukind = Kmain | Ksub | Kfun of ty

type unitdef = {
  u_name : string;
  u_kind : ukind;
  u_formals : string list;  (* Fortran names, in position order *)
  u_vars : vdef list;  (* every storage-backed name, sorted by name *)
  u_body : stmt list;
}

type program = {
  p_units : unitdef list;
  p_main : string;
  p_commons : vdef list;
      (* global COMMON storage, deduped across units; array geometry
         is compile-time constant (the runtime's rule) *)
}

(* ------------------------------------------------------------------ *)

let ty_to_string = function
  | Tint -> "integer"
  | Treal -> "real"
  | Tbool -> "logical"
  | Tstr -> "string"

(* Does evaluating [e] call user code (so a backend must pin the
   evaluation order of sibling operands)? *)
let rec effectful = function
  | Eint _ | Ereal _ | Ebool _ | Estr _ | Eload _ -> false
  | Ecall _ -> true
  | Eaload (_, es) | Eintr (_, es) -> List.exists effectful es
  | Ebin (_, _, a, b) -> effectful a || effectful b
  | Eneg (_, e) | Enot e | Ecvt (_, _, e) -> effectful e

let count_stmts (us : unitdef list) =
  let rec go n = function
    | [] -> n
    | s :: rest ->
      let n =
        match s with
        | Sif (bs, els) ->
          List.fold_left (fun n (_, b) -> go n b) (go (n + 1) els) bs
        | Sdo (_, b) | Spar (_, _, b) -> go (n + 1) b
        | _ -> n + 1
      in
      go n rest
  in
  List.fold_left (fun n u -> go n u.u_body) 0 us
