type t = {
  name : string;
  description : string;
  file_ext : string;
  emit : Ir.program -> string;
}

let ocaml_domains =
  {
    name = "ocaml-domains";
    description =
      "OCaml source running parallel loops on Runtime.Pool domains; \
       compiled with ocamlfind ocamlopt -shared and loaded via Dynlink";
    file_ext = ".ml";
    emit = Ocaml_backend.emit;
  }

let all = [ ocaml_domains ]
let find name = List.find_opt (fun b -> b.name = name) all
