(** Code-generation backends.

    A backend is a pure pretty-printer from {!Ir} to source text in
    some target language (the Futhark-style split: one lowering, many
    emitters).  The first backend targets OCaml-with-domains; the
    interface leaves room for others (e.g. C with pthreads) without
    touching lowering. *)

type t = {
  name : string;  (** selector for [--backend] flags *)
  description : string;
  file_ext : string;  (** extension of the emitted source, e.g. ".ml" *)
  emit : Ir.program -> string;
}

val ocaml_domains : t

(** All registered backends, default first. *)
val all : t list

val find : string -> t option
