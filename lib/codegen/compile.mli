(** End-to-end plugin pipeline: lower → emit → native compile → Dynlink
    load → run, plus a differential check against the interpreter.

    All failure modes are data, not exceptions:

    - [Unsupported] — the program is outside the compilable subset
      (lowering refused it).  Callers should fall back to the
      interpreter; the fuzz oracle counts these as skips.
    - [Toolchain] — no native compiler or build tree on this host.
      Also a skip, never a crash.
    - [Failed] — the pipeline itself broke (compile error, Dynlink
      error, the generated code raised).  Always a bug worth a look. *)

type error =
  | Unsupported of string
  | Toolchain of string
  | Failed of string

val error_to_string : error -> string

(** A loaded plugin, reusable across runs: the registered entry holds no
    mutable state — every call allocates the whole store afresh. *)
type built = {
  entry : Registry.entry;
  module_name : string;
  src_file : string;  (** generated source; removed unless [~keep] *)
  ir_stmts : int;  (** IR statement count, for telemetry *)
}

(** Lower and emit only — the generated source text, for inspection
    ([ped compile -o]).  No toolchain needed. *)
val generate :
  ?backend:Backend.t -> Fortran_front.Ast.program -> (string, error) result

(** Full pipeline up to a loaded, callable entry.  Scratch artifacts go
    under [dir] (default [".ped-codegen"], created on demand) and are
    deleted after a successful load unless [keep].  Telemetry spans:
    [codegen.lower], [codegen.emit], [codegen.compile], [codegen.load]. *)
val build :
  ?telemetry:Telemetry.sink ->
  ?backend:Backend.t ->
  ?dir:string ->
  ?keep:bool ->
  Fortran_front.Ast.program ->
  (built, error) result

type run_result = {
  out_lines : string list;
  store : (string * float list) list;  (** Abi-sorted, like {!Runtime.Exec} *)
  wall_s : float;
}

(** Execute a loaded entry.  [pool = None] runs every loop sequentially.
    Exceptions escaping the generated code (STOP-less runtime errors,
    bounds violations) come back as [Failed].  Span: [codegen.run]. *)
val run :
  ?telemetry:Telemetry.sink ->
  built ->
  pool:Runtime.Pool.t option ->
  schedule:Runtime.Pool.schedule ->
  (run_result, error) result

type check_report = {
  ok : bool;
  seq_exact : bool;
      (** sequential compiled run matched the interpreter bit-for-bit
          (same operation order, so anything less is suspicious) *)
  detail : string;
}

(** Differential check: sequential interpreter vs compiled-sequential
    (exact) and compiled-parallel on [domains] domains (within [tol],
    since parallel reduction order differs).  [ok = false] means a real
    divergence. *)
val check :
  ?telemetry:Telemetry.sink ->
  ?domains:int ->
  ?schedule:Runtime.Pool.schedule ->
  ?tol:float ->
  ?keep:bool ->
  ?dir:string ->
  Fortran_front.Ast.program ->
  (check_report, error) result
