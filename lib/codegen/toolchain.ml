type t = {
  compiler : string list;
  incdirs : string list;
}

let path_entries () =
  match Sys.getenv_opt "PATH" with
  | None -> []
  | Some p -> String.split_on_char ':' p |> List.filter (fun d -> d <> "")

let find_exe name =
  List.find_map
    (fun dir ->
      let f = Filename.concat dir name in
      if Sys.file_exists f && not (Sys.is_directory f) then Some f else None)
    (path_entries ())

let find_compiler () =
  match find_exe "ocamlfind" with
  | Some f -> Ok [ f; "ocamlopt" ]
  | None -> (
    match find_exe "ocamlopt.opt" with
    | Some f -> Ok [ f ]
    | None -> (
      match find_exe "ocamlopt" with
      | Some f -> Ok [ f ]
      | None ->
        Error "no native OCaml compiler (ocamlfind/ocamlopt) on PATH"))

(* Walk up from the running executable to the dune build tree. *)
let find_build_dir () =
  match Sys.getenv_opt "PED_BUILD_DIR" with
  | Some d when Sys.file_exists d -> Some d
  | Some _ | None ->
    let rec up d =
      if Filename.basename d = "_build" then
        let def = Filename.concat d "default" in
        if Sys.file_exists def then Some def else None
      else
        let parent = Filename.dirname d in
        if parent = d then None else up parent
    in
    let exe =
      try Sys.executable_name with Sys_error _ -> Filename.current_dir_name
    in
    up (Filename.dirname exe)

let objs_dirs build_dir =
  let lib = Filename.concat build_dir "lib" in
  let subdirs d =
    if Sys.file_exists d && Sys.is_directory d then
      Array.to_list (Sys.readdir d) |> List.map (Filename.concat d)
    else []
  in
  subdirs lib
  |> List.concat_map (fun libdir ->
         if Sys.is_directory libdir then
           subdirs libdir
           |> List.filter (fun d ->
                  Filename.check_suffix d ".objs" && Sys.is_directory d)
           |> List.concat_map (fun objs ->
                  List.filter Sys.file_exists
                    [
                      Filename.concat objs "byte"; Filename.concat objs "native";
                    ])
         else [])

let find () =
  match find_compiler () with
  | Error e -> Error e
  | Ok compiler -> (
    match find_build_dir () with
    | None ->
      Error
        "cannot locate the dune build tree (_build/default) from the \
         running executable; set PED_BUILD_DIR"
    | Some bd -> (
      match objs_dirs bd with
      | [] -> Error (Printf.sprintf "no compiled library objects under %s" bd)
      | dirs -> Ok { compiler; incdirs = dirs }))
