type error =
  | Unsupported of string
  | Toolchain of string
  | Failed of string

let error_to_string = function
  | Unsupported m -> "unsupported: " ^ m
  | Toolchain m -> "toolchain: " ^ m
  | Failed m -> "failed: " ^ m

type built = {
  entry : Registry.entry;
  module_name : string;
  src_file : string;
  ir_stmts : int;
}

let ( let* ) r f = match r with Error e -> Error e | Ok v -> f v

let lower ?telemetry prog =
  let sink = match telemetry with Some s -> s | None -> Telemetry.default () in
  Telemetry.span sink "codegen.lower" (fun () ->
      match Lower.program prog with
      | Ok ir -> Ok ir
      | Error m -> Error (Unsupported m))

let generate ?(backend = Backend.ocaml_domains) prog =
  let* ir = lower prog in
  Ok (backend.Backend.emit ir)

let gen_counter = Atomic.make 0

let mkdir_p dir =
  let rec mk d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      mk (Filename.dirname d);
      try Unix.mkdir d 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  mk dir

let read_file_tail file =
  try
    let ic = open_in_bin file in
    let n = in_channel_length ic in
    let keep = min n 2000 in
    seek_in ic (n - keep);
    let s = really_input_string ic keep in
    close_in ic;
    String.trim s
  with Sys_error _ | End_of_file -> "(no compiler output captured)"

let remove_if_exists f = try Sys.remove f with Sys_error _ -> ()

let scratch_files base =
  List.map
    (fun ext -> base ^ ext)
    [ ".ml"; ".cmxs"; ".cmx"; ".cmi"; ".o"; ".log" ]

let build ?telemetry ?(backend = Backend.ocaml_domains) ?(dir = ".ped-codegen")
    ?(keep = false) prog =
  let sink = match telemetry with Some s -> s | None -> Telemetry.default () in
  let* ir = lower ~telemetry:sink prog in
  let src =
    Telemetry.span sink "codegen.emit"
      ~args:[ ("backend", backend.Backend.name) ]
      (fun () -> backend.Backend.emit ir)
  in
  let* tc =
    match Toolchain.find () with Ok t -> Ok t | Error m -> Error (Toolchain m)
  in
  let digest = String.sub (Digest.to_hex (Digest.string src)) 0 8 in
  let module_name =
    Printf.sprintf "ped_gen_%d_%d_%s" (Unix.getpid ())
      (Atomic.fetch_and_add gen_counter 1)
      digest
  in
  (try mkdir_p dir with Unix.Unix_error (_, _, _) -> ());
  let base = Filename.concat dir module_name in
  let src_file = base ^ backend.Backend.file_ext in
  let cmxs = base ^ ".cmxs" in
  let log = base ^ ".log" in
  let write_src () =
    let oc = open_out src_file in
    output_string oc src;
    close_out oc
  in
  let* () =
    try Ok (write_src ())
    with Sys_error m -> Error (Failed ("cannot write generated source: " ^ m))
  in
  let cmd =
    String.concat " "
      (List.map Filename.quote tc.Toolchain.compiler
      @ [ "-shared"; "-w"; "-a" ]
      @ List.concat_map
          (fun d -> [ "-I"; Filename.quote d ])
          tc.Toolchain.incdirs
      @ [ "-o"; Filename.quote cmxs; Filename.quote src_file ]
      @ [ ">"; Filename.quote log; "2>&1" ])
  in
  let rc =
    Telemetry.span sink "codegen.compile"
      ~args:[ ("module", module_name) ]
      (fun () -> Sys.command cmd)
  in
  let* () =
    if rc = 0 then Ok ()
    else begin
      let tail = read_file_tail log in
      if not keep then List.iter remove_if_exists (scratch_files base);
      Error
        (Failed
           (Printf.sprintf "ocamlopt exited with %d on %s:\n%s" rc module_name
              tail))
    end
  in
  let* entry =
    Telemetry.span sink "codegen.load" (fun () ->
        try
          Dynlink.loadfile_private cmxs;
          match Registry.take () with
          | Some e -> Ok e
          | None ->
            Error (Failed "loaded plugin did not register an entry point")
        with
        | Dynlink.Error e -> Error (Failed (Dynlink.error_message e))
        | Sys_error m -> Error (Failed m))
  in
  if not keep then List.iter remove_if_exists (scratch_files base);
  Ok { entry; module_name; src_file; ir_stmts = Ir.count_stmts ir.Ir.p_units }

type run_result = {
  out_lines : string list;
  store : (string * float list) list;
  wall_s : float;
}

let run ?telemetry built ~pool ~schedule =
  let sink = match telemetry with Some s -> s | None -> Telemetry.default () in
  Telemetry.span sink "codegen.run"
    ~args:[ ("module", built.module_name) ]
    (fun () ->
      let t0 = Telemetry.now_ns () in
      match built.entry.Registry.run ~pool ~schedule with
      | out ->
        let t1 = Telemetry.now_ns () in
        Ok
          {
            out_lines = out.Registry.out_lines;
            store = Sim.Abi.sort_store out.Registry.store;
            wall_s = Int64.to_float (Int64.sub t1 t0) /. 1e9;
          }
      | exception Failure m -> Error (Failed ("runtime error: " ^ m))
      | exception e ->
        Error (Failed ("runtime error: " ^ Printexc.to_string e)))

type check_report = {
  ok : bool;
  seq_exact : bool;
  detail : string;
}

let stores_equal_exact a b =
  List.length a = List.length b
  && List.for_all2
       (fun (n1, v1) (n2, v2) ->
         n1 = n2
         && List.length v1 = List.length v2
         && List.for_all2
              (fun (x : float) y ->
                x = y || (Float.is_nan x && Float.is_nan y))
              v1 v2)
       a b

let check ?telemetry ?(domains = 3) ?(schedule = Runtime.Pool.Chunk)
    ?(tol = 1e-6) ?(keep = false) ?(dir = ".ped-codegen") prog =
  let sink = match telemetry with Some s -> s | None -> Telemetry.default () in
  let* interp =
    try Ok (Sim.Interp.run ~honor_parallel:false prog)
    with Sim.Interp.Runtime_error m ->
      Error (Failed ("interpreter baseline: " ^ m))
  in
  let* built = build ~telemetry:sink ~keep ~dir prog in
  let* seq = run ~telemetry:sink built ~pool:None ~schedule in
  let seq_exact =
    seq.out_lines = interp.Sim.Interp.output
    && stores_equal_exact seq.store interp.Sim.Interp.final_store
  in
  let* par =
    Runtime.Pool.with_pool domains (fun pool ->
        run ~telemetry:sink built ~pool:(Some pool) ~schedule)
  in
  let mism what = Printf.sprintf "%s diverges from the interpreter" what in
  if not seq_exact then
    Ok
      {
        ok = false;
        seq_exact = false;
        detail = mism "compiled sequential run";
      }
  else if
    not
      (Sim.Abi.outputs_match ~tol par.out_lines interp.Sim.Interp.output
      && Sim.Abi.stores_match ~tol par.store interp.Sim.Interp.final_store)
  then
    Ok
      {
        ok = false;
        seq_exact = true;
        detail = mism (Printf.sprintf "compiled parallel run (%d domains)" domains);
      }
  else
    Ok
      {
        ok = true;
        seq_exact = true;
        detail =
          Printf.sprintf
            "compiled output matches the interpreter (sequential exact, %d \
             domains within %g)"
            domains tol;
      }
