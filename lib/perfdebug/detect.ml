type kind =
  | Imbalance
  | Granularity
  | Privatization
  | Serial_fraction
  | Prediction_mismatch

let kind_to_string = function
  | Imbalance -> "load imbalance"
  | Granularity -> "insufficient granularity"
  | Privatization -> "privatization/reduction cost"
  | Serial_fraction -> "serial fraction"
  | Prediction_mismatch -> "prediction mismatch"

type finding = {
  f_kind : kind;
  f_loop : int option;      (* statement id; None for whole-run findings *)
  f_score : float;          (* fraction of run time at stake, ranks output *)
  f_summary : string;
  f_evidence : string list;
  f_remedy : string;
}

(* Every threshold is a ratio of two measurements from the same run,
   never an absolute time: the same workload on a faster or noisier
   machine crosses the same thresholds, which is what makes the
   diagnosis-kind set deterministic across runs. *)
type config = {
  min_loop_share : float;    (* ignore loops below this share of the run *)
  imbalance_ratio : float;   (* max/mean per-worker busy to fire *)
  overhead_frac : float;     (* (span - slowest worker - join) / span *)
  priv_frac : float;         (* (copy-in + join) / span *)
  serial_frac : float;       (* 1 - parallel coverage *)
  mismatch_tolerance : float;    (* Perf.Compare band *)
  mismatch_min_predicted : float;(* no mismatch below this prediction *)
}

let default =
  {
    min_loop_share = 0.05;
    imbalance_ratio = 1.4;
    overhead_frac = 0.3;
    priv_frac = 0.25;
    serial_frac = 0.4;
    mismatch_tolerance = 2.0;
    mismatch_min_predicted = 1.25;
  }

(* Static context for one loop, from the plan and the estimator. *)
type loop_static = {
  st_predicted : float;   (* estimator speedup at the run's worker count *)
  st_privates : int;
  st_arrays : int;
  st_reductions : int;
}

let pct x = 100.0 *. x

let worker_busy_line (lp : Profile.loop_profile) =
  let cells =
    Array.to_list
      (Array.mapi
         (fun w ns -> Printf.sprintf "w%d %.2fms" w (Profile.ms ns))
         lp.Profile.lp_busy_ns)
  in
  "per-worker busy: " ^ String.concat "  " cells

let detect_imbalance cfg ~share (lp : Profile.loop_profile) =
  let mean = Profile.busy_mean lp and mx = Profile.busy_max lp in
  if mean <= 0.0 then None
  else
    let ratio = mx /. mean in
    if ratio < cfg.imbalance_ratio then None
    else
      let wasted = share *. (1.0 -. (mean /. mx)) in
      Some
        {
          f_kind = Imbalance;
          f_loop = Some lp.Profile.lp_sid;
          f_score = wasted;
          f_summary =
            Printf.sprintf
              "workers finish unevenly: slowest does %.1fx the mean" ratio;
          f_evidence =
            [
              worker_busy_line lp;
              Printf.sprintf
                "max/mean busy ratio %.2f >= %.2f under %s scheduling" ratio
                cfg.imbalance_ratio lp.Profile.lp_sched;
              Printf.sprintf
                "%.0f%% of the loop's time is spent waiting for the slowest \
                 worker"
                (pct (1.0 -. (mean /. mx)));
            ];
          f_remedy =
            (if lp.Profile.lp_sched = "chunk" then
               "switch to self-scheduling (--schedule self) so fast workers \
                pick up remaining iterations"
             else
               "work is irregular even self-scheduled: strip-mine to even \
                out per-claim cost");
        }

let detect_granularity cfg ~share ~fork_join_cycles (lp : Profile.loop_profile)
    =
  let span = lp.Profile.lp_span_ns in
  if span <= 0.0 then None
  else
    let mx = Profile.busy_max lp in
    let overhead = Float.max 0.0 (span -. mx -. lp.Profile.lp_join_ns) in
    let frac = overhead /. span in
    let avg_trip =
      float_of_int lp.Profile.lp_trip_total
      /. float_of_int (max 1 lp.Profile.lp_execs)
    in
    let starved = avg_trip < float_of_int (Array.length lp.Profile.lp_busy_ns)
    in
    if frac < cfg.overhead_frac && not starved then None
    else
      let per_exec_overhead =
        overhead /. float_of_int (max 1 lp.Profile.lp_execs)
      in
      Some
        {
          f_kind = Granularity;
          f_loop = Some lp.Profile.lp_sid;
          f_score = share *. Float.max frac (if starved then 0.5 else 0.0);
          f_summary =
            Printf.sprintf
              "fork/join overhead is %.0f%% of the loop's time (%d fork%s, \
               avg trip %.0f)"
              (pct frac) lp.Profile.lp_execs
              (if lp.Profile.lp_execs = 1 then "" else "s")
              avg_trip;
          f_evidence =
            [
              Printf.sprintf
                "loop total %.2fms; slowest worker busy %.2fms; overhead \
                 %.2fms (%.1fus per fork)"
                (Profile.ms span) (Profile.ms mx) (Profile.ms overhead)
                (per_exec_overhead /. 1e3);
              Printf.sprintf
                "machine model prices one fork/join at %.0f cycles — the \
                 body must dwarf that to profit"
                fork_join_cycles;
            ]
            @ (if starved then
                 [
                   Printf.sprintf
                     "average trip %.0f < %d workers: some workers have no \
                      iterations at all"
                     avg_trip
                     (Array.length lp.Profile.lp_busy_ns);
                 ]
               else []);
          f_remedy =
            (if lp.Profile.lp_execs > 4 then
               "interchange to move the parallel loop outward (it is forked \
                once per outer iteration)"
             else "strip-mine to coarsen the work per fork, or run serially");
        }

let detect_privatization cfg ~share (st : loop_static option)
    (lp : Profile.loop_profile) =
  let span = lp.Profile.lp_span_ns in
  let priv = lp.Profile.lp_copyin_ns +. lp.Profile.lp_join_ns in
  let planned =
    match st with
    | Some s -> s.st_privates + s.st_arrays + s.st_reductions > 0
    | None -> priv > 0.0
  in
  if span <= 0.0 || not planned then None
  else
    let frac = priv /. span in
    if frac < cfg.priv_frac then None
    else
      let shape =
        match st with
        | Some s ->
          Printf.sprintf
            "plan privatizes %d scalar%s, %d array%s; %d reduction%s"
            s.st_privates
            (if s.st_privates = 1 then "" else "s")
            s.st_arrays
            (if s.st_arrays = 1 then "" else "s")
            s.st_reductions
            (if s.st_reductions = 1 then "" else "s")
        | None -> "plan shape unavailable"
      in
      let arrays = match st with Some s -> s.st_arrays | None -> 0 in
      Some
        {
          f_kind = Privatization;
          f_loop = Some lp.Profile.lp_sid;
          f_score = share *. frac;
          f_summary =
            Printf.sprintf
              "private-state setup and merge take %.0f%% of the loop's time"
              (pct frac);
          f_evidence =
            [
              Printf.sprintf
                "copy-in %.2fms + join %.2fms vs loop total %.2fms"
                (Profile.ms lp.Profile.lp_copyin_ns)
                (Profile.ms lp.Profile.lp_join_ns)
                (Profile.ms span);
              shape;
            ];
          f_remedy =
            (if arrays > 0 then
               "privatized arrays are copied per worker every execution: \
                coarsen the loop (strip-mine the enclosing nest) or \
                restructure so the array need not be private"
             else
               "coarsen the loop so reduction combine and write-back \
                amortize over more iterations");
        }

let detect_serial cfg (p : Profile.t) =
  let coverage = Profile.parallel_coverage p in
  let serial = 1.0 -. coverage in
  if p.Profile.run_ns <= 0.0 || serial < cfg.serial_frac then None
  else
    let w = float_of_int p.Profile.workers in
    let bound = 1.0 /. (serial +. ((1.0 -. serial) /. w)) in
    Some
      {
        f_kind = Serial_fraction;
        f_loop = None;
        f_score = serial;
        f_summary =
          Printf.sprintf "only %.0f%% of the run executes in parallel loops"
            (pct coverage);
        f_evidence =
          [
            Printf.sprintf
              "parallel coverage %.2fms of %.2fms total"
              (Profile.ms (coverage *. p.Profile.run_ns))
              (Profile.ms p.Profile.run_ns);
            Printf.sprintf
              "Amdahl bound: at most %.2fx speedup on %d workers while \
               %.0f%% stays serial"
              bound p.Profile.workers (pct serial);
          ];
        f_remedy =
          "parallelize the loops dominating the serial portion (rank shows \
           the heaviest) or widen existing parallel regions";
      }

let detect_mismatch cfg = function
  | None -> None
  | Some (measured, predicted) ->
    if predicted < cfg.mismatch_min_predicted then None
    else
      let r =
        Perf.Compare.compare_speedup ~tolerance:cfg.mismatch_tolerance
          ~predicted ~measured ()
      in
      if r.Perf.Compare.verdict <> Perf.Compare.Overpredicted then None
      else
        Some
          {
            f_kind = Prediction_mismatch;
            f_loop = None;
            f_score = Float.min 1.0 (1.0 -. (1.0 /. r.Perf.Compare.ratio));
            f_summary =
              Printf.sprintf
                "estimator promised %.2fx speedup; the run measured %.2fx"
                r.Perf.Compare.predicted r.Perf.Compare.measured;
            f_evidence =
              [
                Printf.sprintf
                  "predicted/measured ratio %.2f exceeds the %.1fx \
                   agreement band"
                  r.Perf.Compare.ratio cfg.mismatch_tolerance;
                "the cost model's cycle weights or assumed trip counts do \
                 not match this machine/workload";
              ];
            f_remedy =
              "recalibrate the cost model against measured runs: ped \
               --calibrate";
          }

(* [speedup] is [(measured, predicted)] for the whole run, when a
   trustworthy measurement exists (enough cores, say). *)
let run ?(config = default) ~(profile : Profile.t)
    ~(static : (int * loop_static) list) ~fork_join_cycles
    ?speedup () : finding list =
  let per_loop =
    List.concat_map
      (fun (lp : Profile.loop_profile) ->
        let share =
          if profile.Profile.run_ns <= 0.0 then 0.0
          else lp.Profile.lp_span_ns /. profile.Profile.run_ns
        in
        if share < config.min_loop_share then []
        else
          let st = List.assoc_opt lp.Profile.lp_sid static in
          List.filter_map
            (fun d -> d)
            [
              detect_imbalance config ~share lp;
              detect_granularity config ~share ~fork_join_cycles lp;
              detect_privatization config ~share st lp;
            ])
      profile.Profile.loops
  in
  let global =
    List.filter_map
      (fun d -> d)
      [ detect_serial config profile; detect_mismatch config speedup ]
  in
  List.stable_sort
    (fun a b -> compare b.f_score a.f_score)
    (per_loop @ global)

(* Rendered in the lib/explain chain idiom: a one-line header, then
   2-space-indented evidence, then the remediation hint. *)
let render_finding f =
  let where =
    match f.f_loop with
    | Some sid -> Printf.sprintf " in loop s%d" sid
    | None -> ""
  in
  let header =
    Printf.sprintf "%s%s: %s" (kind_to_string f.f_kind) where f.f_summary
  in
  String.concat "\n"
    (header
    :: (List.map (fun l -> "  " ^ l) f.f_evidence
       @ [ "  remedy: " ^ f.f_remedy ]))

let render_findings = function
  | [] -> "no performance problems detected"
  | fs -> String.concat "\n" (List.map render_finding fs)
