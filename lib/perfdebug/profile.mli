(** Per-loop timing profiles from one run's retained spans.

    Consumes the span stream a {!Telemetry.retained} sink captured
    during {!Runtime.Exec.run} and buckets it by loop: the runtime
    labels [exec.parallel-loop]/[exec.copy-in]/[exec.join] spans and
    the pool's per-worker spans with the loop's statement id, so
    aggregation is arg-keyed — no time-window reconstruction. *)

type loop_profile = {
  lp_sid : int;              (** the PARALLEL DO's statement id *)
  lp_execs : int;            (** dynamic executions of the loop *)
  lp_trip_total : int;       (** summed trip counts over executions *)
  lp_span_ns : float;        (** fork-to-join total (exec.parallel-loop) *)
  lp_busy_ns : float array;  (** per-worker body time, index = worker *)
  lp_copyin_ns : float;      (** per-worker private-state construction *)
  lp_join_ns : float;        (** sequential merge: write-back, reductions *)
  lp_sched : string;         (** ["chunk"] or ["self"] *)
}

type t = {
  workers : int;
  run_ns : float;            (** whole-program (exec.run) time *)
  loops : loop_profile list; (** ascending statement id *)
}

(** [fallback_run_ns] supplies the whole-run time when the stream has
    no [exec.run] span (compiled runs); likewise loops without
    [exec.parallel-loop] spans fall back to their labeled [pool.run]
    spans. *)
val of_spans :
  workers:int -> ?fallback_run_ns:float -> Telemetry.span_record list -> t
val find : t -> int -> loop_profile option

(** Fraction of the run spent inside parallel loops, in [0,1] —
    the measured side of the Amdahl bound. *)
val parallel_coverage : t -> float

val busy_total : loop_profile -> float
val busy_max : loop_profile -> float
val busy_mean : loop_profile -> float

(** Nanoseconds to milliseconds, for rendering. *)
val ms : float -> float
