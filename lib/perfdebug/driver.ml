open Fortran_front
open Dependence

type t = {
  findings : Detect.finding list;
  profile : Profile.t;
  seq_wall : float;   (* sequential baseline, seconds *)
  par_wall : float;   (* parallel run, seconds *)
  measured : float option;  (* None when the machine can't host the run *)
  predicted : float;  (* estimator's whole-unit promise *)
  domains : int;
  schedule : Runtime.Pool.schedule;
}

let main_unit (prog : Ast.program) =
  match
    List.find_opt
      (fun (u : Ast.program_unit) -> u.Ast.kind = Ast.Main)
      prog.Ast.punits
  with
  | Some u -> u
  | None -> List.hd prog.Ast.punits

(* Static side of every diagnosis: for each PARALLEL DO, the
   estimator's per-loop promise and the execution plan's
   privatization shape, keyed by statement id. *)
let static_of ?(machine = Perf.Machine.default) ~processors
    (prog : Ast.program) : (int * Detect.loop_static) list =
  let plans = Runtime.Plan.build prog in
  List.concat_map
    (fun (u : Ast.program_unit) ->
      let env = Depenv.make u in
      let out = ref [] in
      Ast.iter_stmts
        (fun (s : Ast.stmt) ->
          match s.Ast.node with
          | Ast.Do (h, _) when h.Ast.parallel ->
            let predicted =
              Perf.Estimator.loop_speedup ~machine env s ~processors
            in
            let privates, arrays, reductions =
              match Hashtbl.find_opt plans s.Ast.sid with
              | Some (p : Runtime.Plan.t) ->
                ( List.length p.Runtime.Plan.p_privates,
                  List.length p.Runtime.Plan.p_arrays,
                  List.length p.Runtime.Plan.p_reductions )
              | None -> (0, 0, 0)
            in
            out :=
              ( s.Ast.sid,
                {
                  Detect.st_predicted = predicted;
                  st_privates = privates;
                  st_arrays = arrays;
                  st_reductions = reductions;
                } )
              :: !out
          | _ -> ())
        u.Ast.body;
      List.rev !out)
    prog.Ast.punits

let predicted_of ?(machine = Perf.Machine.default) ~processors
    (prog : Ast.program) : float =
  let env = Depenv.make (main_unit prog) in
  Perf.Estimator.predicted_speedup ~machine env ~processors

(* The analysis core, shared by the interpreter path below and the
   compiled path (whose caller runs the program itself and hands the
   captured spans over). *)
let analyze ?config ?(machine = Perf.Machine.default) ~domains ~schedule
    ~seq_wall ~par_wall ?(fallback_run_ns = 0.0) prog spans : t =
  let profile = Profile.of_spans ~workers:domains ~fallback_run_ns spans in
  let static = static_of ~machine ~processors:domains prog in
  let predicted = predicted_of ~machine ~processors:domains prog in
  let measured =
    if
      seq_wall > 0.0 && par_wall > 0.0
      && Domain.recommended_domain_count () >= domains
    then Some (seq_wall /. par_wall)
    else None
  in
  let speedup = Option.map (fun m -> (m, predicted)) measured in
  let findings =
    Detect.run ?config ~profile ~static
      ~fork_join_cycles:machine.Perf.Machine.fork_join ?speedup ()
  in
  { findings; profile; seq_wall; par_wall; measured; predicted; domains;
    schedule }

(* Interpreter path: a sequential baseline (parallel flags stripped —
   no pool, no fork cost), then the instrumented parallel run on a
   retained sink. *)
let diagnose ?config ?machine ?(domains = 4) ?(schedule = Runtime.Pool.Chunk)
    ?max_steps (prog : Ast.program) : t =
  let seq =
    Runtime.Exec.run ~domains:1 ?max_steps ~telemetry:Telemetry.null
      (Runtime.Exec.strip_parallel prog)
  in
  let sink = Telemetry.retained () in
  let par =
    Runtime.Exec.run ~domains ~schedule ?max_steps ~telemetry:sink prog
  in
  let spans = Telemetry.drain_spans sink in
  analyze ?config ?machine ~domains ~schedule
    ~seq_wall:seq.Runtime.Exec.wall_s ~par_wall:par.Runtime.Exec.wall_s prog
    spans

let kinds t =
  List.sort_uniq compare (List.map (fun f -> f.Detect.f_kind) t.findings)

let render ?focus t =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let findings =
    match focus with
    | None -> t.findings
    | Some sid ->
      List.filter
        (fun f ->
          match f.Detect.f_loop with Some s -> s = sid | None -> false)
        t.findings
  in
  line "performance diagnosis: %d domains, %s scheduling" t.domains
    (Runtime.Pool.schedule_to_string t.schedule);
  line "  parallel run %.2fms; sequential baseline %.2fms%s"
    (t.par_wall *. 1e3) (t.seq_wall *. 1e3)
    (match t.measured with
    | Some m -> Printf.sprintf "; measured speedup %.2fx (predicted %.2fx)" m
                  t.predicted
    | None -> Printf.sprintf "; predicted speedup %.2fx (too few cores to \
                              trust a measurement)" t.predicted);
  line "  parallel coverage %.0f%% over %d loop%s"
    (100.0 *. Profile.parallel_coverage t.profile)
    (List.length t.profile.Profile.loops)
    (if List.length t.profile.Profile.loops = 1 then "" else "s");
  (match (findings, focus) with
  | [], Some sid ->
    line "";
    line "loop s%d: no performance problems detected" sid
  | [], None ->
    line "";
    line "no performance problems detected"
  | fs, _ ->
    line "";
    line "%d finding%s, most costly first:" (List.length fs)
      (if List.length fs = 1 then "" else "s");
    List.iter
      (fun f ->
        line "";
        Buffer.add_string buf (Detect.render_finding f);
        Buffer.add_char buf '\n')
      fs);
  Buffer.contents buf
