(* Aggregate one run's retained spans into per-loop timing profiles.

   The runtime labels everything by loop: [exec.parallel-loop] spans
   carry a ["loop"] arg ("s<sid>"), the pool's per-worker
   [pool.chunk]/[pool.self] spans carry a ["label"] arg with the same
   value, and the [exec.copy-in]/[exec.join] spans carry ["loop"]
   again.  Aggregation is therefore pure arg-keyed bucketing — no
   time-window reconstruction needed. *)

type loop_profile = {
  lp_sid : int;
  lp_execs : int;            (* dynamic executions of the loop *)
  lp_trip_total : int;       (* summed trip counts over executions *)
  lp_span_ns : float;        (* exec.parallel-loop total: fork..join *)
  lp_busy_ns : float array;  (* per-worker body time, index = worker *)
  lp_copyin_ns : float;      (* per-worker state construction *)
  lp_join_ns : float;        (* sequential merge: write-back, combine *)
  lp_sched : string;         (* "chunk" | "self" (last seen) *)
}

type t = {
  workers : int;
  run_ns : float;            (* exec.run total *)
  loops : loop_profile list; (* ascending sid *)
}

let dur (r : Telemetry.span_record) =
  Int64.to_float (Int64.sub r.Telemetry.sp_t1 r.Telemetry.sp_t0)

let arg k (r : Telemetry.span_record) = List.assoc_opt k r.Telemetry.sp_args

(* "s42" -> Some 42 *)
let sid_of_label l =
  if String.length l > 1 && l.[0] = 's' then
    int_of_string_opt (String.sub l 1 (String.length l - 1))
  else None

(* [fallback_run_ns] stands in for the whole-run time when the stream
   has no [exec.run] span — compiled (codegen) runs, whose generated
   code emits only the pool's labeled spans.  For the same reason,
   loops that never produced an [exec.parallel-loop] span fall back
   to their labeled [pool.run] spans (fork-to-park rather than
   fork-to-join, close enough for every ratio we test). *)
let of_spans ~workers ?(fallback_run_ns = 0.0)
    (spans : Telemetry.span_record list) : t =
  let workers = max 1 workers in
  let tbl : (int, loop_profile) Hashtbl.t = Hashtbl.create 8 in
  let aux : (int, int * int * float) Hashtbl.t = Hashtbl.create 8 in
  let get sid =
    match Hashtbl.find_opt tbl sid with
    | Some lp -> lp
    | None ->
      let lp =
        { lp_sid = sid; lp_execs = 0; lp_trip_total = 0; lp_span_ns = 0.0;
          lp_busy_ns = Array.make workers 0.0; lp_copyin_ns = 0.0;
          lp_join_ns = 0.0; lp_sched = "chunk" }
      in
      Hashtbl.replace tbl sid lp;
      lp
  in
  let update sid f = Hashtbl.replace tbl sid (f (get sid)) in
  let with_loop r f =
    match Option.bind (arg "loop" r) sid_of_label with
    | Some sid -> update sid f
    | None -> ()
  in
  let run_ns = ref 0.0 in
  List.iter
    (fun (r : Telemetry.span_record) ->
      match r.Telemetry.sp_name with
      | "exec.run" -> run_ns := !run_ns +. dur r
      | "exec.parallel-loop" ->
        with_loop r (fun lp ->
            let trip =
              match Option.bind (arg "trip" r) int_of_string_opt with
              | Some t -> t
              | None -> 0
            in
            { lp with lp_execs = lp.lp_execs + 1;
              lp_trip_total = lp.lp_trip_total + trip;
              lp_span_ns = lp.lp_span_ns +. dur r })
      | "exec.copy-in" ->
        with_loop r (fun lp ->
            { lp with lp_copyin_ns = lp.lp_copyin_ns +. dur r })
      | "exec.join" ->
        with_loop r (fun lp ->
            { lp with lp_join_ns = lp.lp_join_ns +. dur r })
      | "pool.run" -> (
        match Option.bind (arg "label" r) sid_of_label with
        | None -> ()
        | Some sid ->
          let e, tr, sp =
            Option.value ~default:(0, 0, 0.0) (Hashtbl.find_opt aux sid)
          in
          let trip =
            match Option.bind (arg "trip" r) int_of_string_opt with
            | Some t -> t
            | None -> 0
          in
          Hashtbl.replace aux sid (e + 1, tr + trip, sp +. dur r))
      | ("pool.chunk" | "pool.self") as name -> (
        match Option.bind (arg "label" r) sid_of_label with
        | None -> () (* unlabeled job: analyzer fan-out, not a loop *)
        | Some sid ->
          update sid (fun lp ->
              (match Option.bind (arg "worker" r) int_of_string_opt with
              | Some w when w >= 0 && w < workers ->
                lp.lp_busy_ns.(w) <- lp.lp_busy_ns.(w) +. dur r
              | _ -> ());
              { lp with
                lp_sched = (if name = "pool.self" then "self" else "chunk") }))
      | _ -> ())
    spans;
  Hashtbl.iter
    (fun sid (e, tr, sp) ->
      update sid (fun lp ->
          if lp.lp_execs > 0 then lp
          else
            { lp with lp_execs = e; lp_trip_total = tr; lp_span_ns = sp }))
    aux;
  let loops =
    Hashtbl.fold (fun _ lp acc -> lp :: acc) tbl []
    |> List.sort (fun a b -> compare a.lp_sid b.lp_sid)
  in
  let run_ns = if !run_ns > 0.0 then !run_ns else fallback_run_ns in
  { workers; run_ns; loops }

let find t sid = List.find_opt (fun lp -> lp.lp_sid = sid) t.loops

(* Coverage: the fraction of the run spent inside parallel loops.
   Loop spans of distinct loops never overlap (the interpreter is
   sequential between loops and the pool runs one job at a time), and
   nested parallel loops execute sequentially inside, so summing is
   sound. *)
let parallel_coverage t =
  if t.run_ns <= 0.0 then 0.0
  else
    let covered =
      List.fold_left (fun acc lp -> acc +. lp.lp_span_ns) 0.0 t.loops
    in
    Float.min 1.0 (covered /. t.run_ns)

let busy_total lp = Array.fold_left ( +. ) 0.0 lp.lp_busy_ns
let busy_max lp = Array.fold_left Float.max 0.0 lp.lp_busy_ns
let busy_mean lp = busy_total lp /. float_of_int (Array.length lp.lp_busy_ns)

let ms ns = ns /. 1e6
