(** Rule-based performance detectors over a run's {!Profile}.

    Five detectors, after the SPMD performance-debugging literature:

    - {e load imbalance}: per-worker busy-time spread within a loop;
    - {e insufficient granularity}: fork/join overhead rivaling body
      time, cross-checked against the machine model's fork/join cost;
    - {e privatization/reduction cost}: per-worker copy-in plus
      sequential merge dominating the loop;
    - {e serial fraction}: the Amdahl bound implied by measured
      parallel coverage;
    - {e prediction mismatch}: measured whole-run speedup falling far
      short of the estimator's promise ({!Perf.Compare}).

    Every threshold is a ratio of measurements from the same run —
    never an absolute time — so the set of diagnosis kinds is stable
    across machines and timing noise. *)

type kind =
  | Imbalance
  | Granularity
  | Privatization
  | Serial_fraction
  | Prediction_mismatch

val kind_to_string : kind -> string

type finding = {
  f_kind : kind;
  f_loop : int option;
      (** offending loop's statement id; [None] for whole-run findings *)
  f_score : float;
      (** roughly the fraction of run time at stake; ranks the report *)
  f_summary : string;
  f_evidence : string list;
  f_remedy : string;
}

type config = {
  min_loop_share : float;
      (** ignore loops below this share of the run (default 0.05) *)
  imbalance_ratio : float;
      (** max/mean per-worker busy time to fire (default 1.4) *)
  overhead_frac : float;
      (** (span − slowest worker − join) / span (default 0.3) *)
  priv_frac : float;  (** (copy-in + join) / span (default 0.25) *)
  serial_frac : float;  (** 1 − parallel coverage (default 0.4) *)
  mismatch_tolerance : float;
      (** {!Perf.Compare} agreement band (default 2.0) *)
  mismatch_min_predicted : float;
      (** skip mismatch when the model never promised a speedup
          (default 1.25) *)
}

val default : config

(** Static context for one loop: the estimator's promise and the
    execution plan's privatization shape. *)
type loop_static = {
  st_predicted : float;
  st_privates : int;
  st_arrays : int;
  st_reductions : int;
}

(** [run ~profile ~static ~fork_join_cycles ?speedup ()] — evaluate
    every detector; findings come back ranked, highest score first.
    [static] is keyed by loop statement id; [fork_join_cycles] is the
    machine model's fork/join price (evidence for the granularity
    detector); [speedup] is the whole-run [(measured, predicted)]
    pair when a trustworthy measurement exists. *)
val run :
  ?config:config ->
  profile:Profile.t ->
  static:(int * loop_static) list ->
  fork_join_cycles:float ->
  ?speedup:float * float ->
  unit ->
  finding list

(** One finding in the [lib/explain] chain idiom: header line,
    2-space-indented evidence, a final remedy line. *)
val render_finding : finding -> string

val render_findings : finding list -> string
