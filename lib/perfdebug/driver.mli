(** The performance debugger's entry points.

    [diagnose] answers "why is this parallelized program slow?": it
    runs the program twice — a sequential baseline with every PARALLEL
    flag stripped, then the real parallel run instrumented through a
    {!Telemetry.retained} sink — profiles the captured spans per loop
    ({!Profile}), pairs them with the static side (estimator
    predictions, plan shapes), and evaluates the {!Detect} rules.
    [ped --diagnose] and the editor's [why slow] command both land
    here. *)

open Fortran_front

type t = {
  findings : Detect.finding list;  (** ranked, most costly first *)
  profile : Profile.t;
  seq_wall : float;  (** sequential baseline, seconds *)
  par_wall : float;  (** parallel run, seconds *)
  measured : float option;
      (** seq/par speedup; [None] when the host has fewer cores than
          the run asked for and a measurement would only mislead *)
  predicted : float;  (** estimator's whole-unit promise *)
  domains : int;
  schedule : Runtime.Pool.schedule;
}

(** Estimator promise and plan shape for every PARALLEL DO of the
    program, keyed by statement id. *)
val static_of :
  ?machine:Perf.Machine.t -> processors:int -> Ast.program ->
  (int * Detect.loop_static) list

(** The estimator's whole-unit predicted speedup (main unit). *)
val predicted_of :
  ?machine:Perf.Machine.t -> processors:int -> Ast.program -> float

(** The analysis core: profile captured [spans] and run the
    detectors.  For callers that executed the program themselves —
    the compiled backend path — with [fallback_run_ns] standing in
    for the missing [exec.run] span. *)
val analyze :
  ?config:Detect.config ->
  ?machine:Perf.Machine.t ->
  domains:int ->
  schedule:Runtime.Pool.schedule ->
  seq_wall:float ->
  par_wall:float ->
  ?fallback_run_ns:float ->
  Ast.program ->
  Telemetry.span_record list ->
  t

(** Run (baseline + instrumented parallel) and diagnose. *)
val diagnose :
  ?config:Detect.config ->
  ?machine:Perf.Machine.t ->
  ?domains:int ->
  ?schedule:Runtime.Pool.schedule ->
  ?max_steps:int ->
  Ast.program ->
  t

(** The distinct diagnosis kinds present, sorted — what the
    determinism tests compare across runs. *)
val kinds : t -> Detect.kind list

(** Full report: run summary then ranked findings.  [focus] restricts
    the findings to one loop (the [why slow sN] form). *)
val render : ?focus:int -> t -> string
