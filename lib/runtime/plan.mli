(** Parallel-loop execution plans.

    The static analysis already knows, per loop, which scalars are
    privatizable, which are reductions (and with which operator), and
    which work arrays are privatizable ({!Scalar_analysis.Varclass},
    {!Dependence.Arrayprivate}).  The runtime consumes that knowledge:
    each worker gets private copies of the plan's variables, reduction
    accumulators start at the operator identity and are combined at
    the join, and the dynamic validator excludes planned storage from
    conflict monitoring (writes to privatized storage are not
    dependences). *)

open Fortran_front
open Scalar_analysis
open Dependence

type t = {
  p_iv : string;  (** the loop's induction variable *)
  p_privates : string list;
      (** scalars each worker copies: [Private] classifications
          (inner-loop induction variables included) *)
  p_inductions : (string * int) list;
      (** auxiliary induction scalars ([K = K + c] once per
          iteration) with their constant stride [c].  Workers compute
          the closed form [K0 + k*c] per iteration instead of sharing
          the accumulating cell, and the final value [K0 + trip*c] is
          written back at the join. *)
  p_reductions : (string * Varclass.reduction_op) list;
  p_arrays : string list;  (** privatizable work arrays *)
}

(** Plan for one loop given its unit's analysis bundle. *)
val of_loop : Depenv.t -> Loopnest.loop -> t

(** Plans for every PARALLEL DO loop of the program, keyed by the
    loop statement id.  Runs the per-unit scalar analyses once. *)
val build : Ast.program -> (Ast.stmt_id, t) Hashtbl.t

(** An empty fallback plan (privatizes only the induction
    variable). *)
val trivial : string -> t
