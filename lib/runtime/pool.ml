type schedule = Chunk | Self

let schedule_to_string = function Chunk -> "chunk" | Self -> "self"

let schedule_of_string = function
  | "chunk" | "block" -> Some Chunk
  | "self" | "dynamic" -> Some Self
  | _ -> None

type job = {
  trip : int;
  sched : schedule;
  label : string option;         (* caller's name for the loop (spans) *)
  body : worker:int -> int -> unit;
  next : int Atomic.t;           (* self-scheduling cursor *)
  mutable cancelled : bool;      (* set on first exception *)
  mutable remaining : int;       (* workers still running this job *)
  mutable exn : exn option;
  mutable exn_bt : Printexc.raw_backtrace option;
}

type t = {
  n : int;
  m : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  sink : Telemetry.sink;
  mutable job : job option;
  mutable generation : int;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

let size t = t.n

(* The share of worker [w]: contiguous block under [Chunk], atomic
   next-iteration claims under [Self].  Both claim indices in
   increasing order within a worker, which the runtime relies on for
   last-value write-back. *)
let dispatch t (job : job) w =
  let tel = t.sink in
  let iters = ref 0 in
  let t0 = if Telemetry.metrics_on tel then Telemetry.now_ns () else 0L in
  (* runs on the worker's own domain, so the span lands in that
     domain's lane of the trace *)
  Telemetry.span tel
    (match job.sched with Chunk -> "pool.chunk" | Self -> "pool.self")
    ~args:
      (("worker", string_of_int w)
      :: (match job.label with None -> [] | Some l -> [ ("label", l) ]))
    (fun () ->
      match job.sched with
      | Chunk ->
        let chunk = (job.trip + t.n - 1) / t.n in
        let lo = w * chunk and hi = min job.trip ((w + 1) * chunk) in
        let k = ref lo in
        while !k < hi && not job.cancelled do
          job.body ~worker:w !k;
          incr k;
          incr iters
        done
      | Self ->
        let continue_ = ref true in
        while !continue_ && not job.cancelled do
          let k = Atomic.fetch_and_add job.next 1 in
          if k >= job.trip then continue_ := false
          else begin
            job.body ~worker:w k;
            incr iters
          end
        done);
  if Telemetry.metrics_on tel then begin
    Telemetry.add
      (Telemetry.counter tel "pool.busy_ns")
      (Int64.to_int (Int64.sub (Telemetry.now_ns ()) t0));
    Telemetry.add (Telemetry.counter tel "pool.iterations") !iters;
    Telemetry.observe (Telemetry.histogram tel "pool.iters_per_worker") !iters
  end

let worker_loop t w () =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.m;
    while t.generation = !seen && not t.stopping do
      Condition.wait t.work_ready t.m
    done;
    if t.stopping then begin
      Mutex.unlock t.m;
      running := false
    end
    else begin
      seen := t.generation;
      let job = Option.get t.job in
      Mutex.unlock t.m;
      (try dispatch t job w
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock t.m;
         if job.exn = None then begin
           job.exn <- Some e;
           job.exn_bt <- Some bt
         end;
         job.cancelled <- true;
         Mutex.unlock t.m);
      Mutex.lock t.m;
      job.remaining <- job.remaining - 1;
      if job.remaining = 0 then Condition.broadcast t.work_done;
      Mutex.unlock t.m
    end
  done

let create ?telemetry n =
  let n = max 1 n in
  let sink =
    match telemetry with Some s -> s | None -> Telemetry.default ()
  in
  let t =
    {
      n;
      m = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      sink;
      job = None;
      generation = 0;
      stopping = false;
      domains = [];
    }
  in
  t.domains <- List.init n (fun w -> Domain.spawn (worker_loop t w));
  t

let parallel_for ?label t ~schedule ~trip ~body =
  if trip > 0 then begin
    Telemetry.incr (Telemetry.counter t.sink "pool.jobs");
    Telemetry.span t.sink "pool.run"
      ~args:
        ([ ("trip", string_of_int trip);
           ("sched", schedule_to_string schedule) ]
        @ match label with None -> [] | Some l -> [ ("label", l) ])
    @@ fun () ->
    let job =
      {
        trip;
        sched = schedule;
        label;
        body;
        next = Atomic.make 0;
        cancelled = false;
        remaining = t.n;
        exn = None;
        exn_bt = None;
      }
    in
    Mutex.lock t.m;
    t.job <- Some job;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work_ready;
    while job.remaining > 0 do
      Condition.wait t.work_done t.m
    done;
    t.job <- None;
    Mutex.unlock t.m;
    match (job.exn, job.exn_bt) with
    | Some e, Some bt -> Printexc.raise_with_backtrace e bt
    | Some e, None -> raise e
    | None, _ -> ()
  end

(* Task submission, layered over the same job machinery: each task is
   one iteration of a [Self]-scheduled parallel for (tasks are
   irregular by nature), results land in per-index slots.  The writes
   are unsynchronized but race-free — distinct tasks own distinct
   slots — and the job-completion handshake (mutex + condition in
   [parallel_for]) publishes them to the caller. *)
let map t ?(schedule = Self) (tasks : (unit -> 'a) array) : 'a array =
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    parallel_for t ~schedule ~trip:n ~body:(fun ~worker:_ k ->
        results.(k) <- Some (tasks.(k) ()));
    Array.map
      (function
        | Some v -> v
        | None -> failwith "Pool.map: task cancelled by a sibling's exception")
      results
  end

(* The analyzer's injected fan-out: Ddg cannot see this library (we
   depend on it), so the pool side builds the runner record. *)
let analysis_runner t =
  { Dependence.Ddg.run_tasks = (fun tasks -> map t tasks) }

let shutdown t =
  Mutex.lock t.m;
  t.stopping <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.m;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ?telemetry n f =
  let t = create ?telemetry n in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
