open Fortran_front
module V = Sim.Value

type data =
  | F of floatarray
  | I of int array
  | B of bool array

type shadow = {
  w_ep : int array;
  w_it : int array;
  r_ep : int array;
  r_it : int array;
}

type buf = {
  data : data;
  mutable shadow : shadow option;
  mutable excl_epoch : int;
}

let alloc typ n =
  let n = max n 1 in
  let data =
    match typ with
    | Ast.Tinteger -> I (Array.make n 0)
    | Ast.Treal | Ast.Tdouble -> F (Float.Array.make n 0.0)
    | Ast.Tlogical -> B (Array.make n false)
  in
  { data; shadow = None; excl_epoch = -1 }

let alloc_like b n =
  let n = max n 1 in
  let data =
    match b.data with
    | F _ -> F (Float.Array.make n 0.0)
    | I _ -> I (Array.make n 0)
    | B _ -> B (Array.make n false)
  in
  { data; shadow = None; excl_epoch = -1 }

let length b =
  match b.data with
  | F a -> Float.Array.length a
  | I a -> Array.length a
  | B a -> Array.length a

let get b i =
  match b.data with
  | F a -> V.VR (Float.Array.get a i)
  | I a -> V.VI a.(i)
  | B a -> V.VL a.(i)

let set b i v =
  match b.data with
  | F a -> Float.Array.set a i (V.to_float v)
  | I a -> a.(i) <- V.to_int v
  | B a -> a.(i) <- V.to_bool v

let to_float b i =
  match b.data with
  | F a -> Float.Array.get a i
  | I a -> float_of_int a.(i)
  | B a -> if a.(i) then 1.0 else 0.0

let shadow_of b =
  match b.shadow with
  | Some s -> s
  | None ->
    let n = length b in
    let s =
      {
        w_ep = Array.make n (-1);
        w_it = Array.make n (-1);
        r_ep = Array.make n (-1);
        r_it = Array.make n (-1);
      }
    in
    b.shadow <- Some s;
    s

type cell = { cbuf : buf; coff : int }

type arr = { abuf : buf; base : int; bounds : (int * int) list }

type slot = Scalar of cell | Arr of arr

let get_cell c = get c.cbuf c.coff
let set_cell c v = set c.cbuf c.coff v

let offset (a : arr) (idxs : int list) : int =
  let rec go acc stride bounds idxs =
    match (bounds, idxs) with
    | [], [] -> acc
    | (lb, ub) :: bounds, i :: idxs ->
      (* per-dimension range checks are deliberately omitted (Fortran
         programs linearize); the storage bounds check below guards
         memory, exactly as the simulator ABI does *)
      let size = if ub >= lb then ub - lb + 1 else 1 in
      go (acc + ((i - lb) * stride)) (stride * size) bounds idxs
    | _ -> failwith "subscript count mismatch"
  in
  let off = a.base + go 0 1 a.bounds idxs in
  if off < 0 || off >= length a.abuf then
    failwith
      (Printf.sprintf "subscript out of bounds (offset %d of %d)" off
         (length a.abuf))
  else off

let copy_into dst src =
  match (dst.data, src.data) with
  | F d, F s -> Float.Array.blit s 0 d 0 (min (Float.Array.length s) (Float.Array.length d))
  | I d, I s -> Array.blit s 0 d 0 (min (Array.length s) (Array.length d))
  | B d, B s -> Array.blit s 0 d 0 (min (Array.length s) (Array.length d))
  | _ -> ()
