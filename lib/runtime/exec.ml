open Fortran_front
open Scalar_analysis
module V = Sim.Value
module Abi = Sim.Abi

exception Runtime_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

(* raised by a worker to cancel the remaining iterations after a
   GOTO/RETURN/STOP escaped the loop body; never escapes this module *)
exception Abort_loop

type unit_info = { u : Ast.program_unit; tbl : Symbol.table }

type conflict_kind = Flow | Anti | Output

let kind_to_string = function
  | Flow -> "flow"
  | Anti -> "anti"
  | Output -> "output"

type pred = Untracked | Predicted of int | Unpredicted

type conflict = {
  c_loop : Ast.stmt_id;
  c_var : string;
  c_kind : conflict_kind;
  c_offset : int;
  c_iter_a : int;
  c_iter_b : int;
  mutable c_count : int;
  c_pred : pred;
}

let conflict_to_string c =
  Printf.sprintf "loop@%d: %s dependence on %s[%d]: iterations %d and %d%s%s"
    c.c_loop (kind_to_string c.c_kind) c.c_var c.c_offset c.c_iter_a c.c_iter_b
    (if c.c_count > 1 then Printf.sprintf " (%d occurrences)" c.c_count else "")
    (match c.c_pred with
    | Untracked -> ""
    | Predicted id -> Printf.sprintf " [predicted by static dep #%d]" id
    | Unpredicted -> " [UNPREDICTED by the static analysis]")

type ops = {
  mutable o_flops : int;
  mutable o_mems : int;
  mutable o_intr : int;
  mutable o_iters : int;
  mutable o_calls : int;
}

let fresh_ops () =
  { o_flops = 0; o_mems = 0; o_intr = 0; o_iters = 0; o_calls = 0 }

let add_ops dst src =
  dst.o_flops <- dst.o_flops + src.o_flops;
  dst.o_mems <- dst.o_mems + src.o_mems;
  dst.o_intr <- dst.o_intr + src.o_intr;
  dst.o_iters <- dst.o_iters + src.o_iters;
  dst.o_calls <- dst.o_calls + src.o_calls

type global = {
  units : (string, unit_info) Hashtbl.t;
  commons : (string, Store.slot) Hashtbl.t;
      (* pre-allocated before execution starts: workers only read this
         table, so callee frames can be built inside parallel regions *)
  plans : (Ast.stmt_id, Plan.t) Hashtbl.t;
  pool : Pool.t option;  (* None in validate mode *)
  schedule : Pool.schedule;
  validate : bool;
  predict : (Ast.stmt_id -> string -> conflict_kind -> int option) option;
      (* maps an observed conflict back to the static dependence that
         predicted it, if the caller supplied a dependence graph *)
  max_steps : int;
  steps : int Atomic.t;
  sink : Telemetry.sink;
  mutable epoch : int;  (* validator epoch; validate mode is sequential *)
  conflicts : (Ast.stmt_id * string * conflict_kind, conflict) Hashtbl.t;
  bad_mutex : Mutex.t;  (* first-wins capture of escaping signals *)
}

(* Per-domain execution context.  The coordinator has one; each worker
   gets its own with a copied frame, so the only shared mutable state
   during a parallel loop is the typed element buffers themselves. *)
type tctx = {
  g : global;
  mutable out_rev : string list;
  mutable depth : int;
  mutable in_parallel : bool;
  mutable mon_iter : int;  (* >= 0 while inside an instrumented loop *)
  mutable mon_loop : Ast.stmt_id;
  ops : ops;
}

type frame = (string, Store.slot) Hashtbl.t

type signal = Snormal | Sgoto of int | Sreturn | Sstop

(* Per-worker state of one parallel loop: a copied frame whose
   planned variables point at fresh storage. *)
type wstate = {
  wframe : frame;
  wt : tctx;
  ivc : Store.cell;
  priv_cells : (Store.cell * Store.cell) list;  (* original, private *)
  ind_cells : (Store.cell * V.value * int) list;
      (* private cell, value on loop entry, stride: re-seeded with the
         closed form K0 + k*stride at the start of every iteration *)
  red_cells :
    (string * (Varclass.reduction_op * Store.cell * Store.cell)) list;
  arr_copies : (Store.arr * Store.buf) list;
  mutable last_iter : int;  (* highest iteration index this worker ran *)
  mutable outs : (int * string list) list;  (* PRINT lines per iteration *)
}

(* ------------------------------------------------------------------ *)
(* Shadow-memory monitoring (validate mode only)                       *)
(* ------------------------------------------------------------------ *)

let record_conflict t var kind off other =
  Telemetry.incr (Telemetry.counter t.g.sink "runtime.validator.conflicts");
  let key = (t.mon_loop, var, kind) in
  match Hashtbl.find_opt t.g.conflicts key with
  | Some c -> c.c_count <- c.c_count + 1
  | None ->
    let c_pred =
      match t.g.predict with
      | None -> Untracked
      | Some f -> (
        match f t.mon_loop var kind with
        | Some dep_id ->
          Telemetry.incr
            (Telemetry.counter t.g.sink "runtime.validator.predicted");
          Predicted dep_id
        | None ->
          Telemetry.incr
            (Telemetry.counter t.g.sink "runtime.validator.unpredicted");
          Unpredicted)
    in
    Hashtbl.replace t.g.conflicts key
      {
        c_loop = t.mon_loop;
        c_var = var;
        c_kind = kind;
        c_offset = off;
        c_iter_a = min other t.mon_iter;
        c_iter_b = max other t.mon_iter;
        c_count = 1;
        c_pred;
      }

let monitored t (b : Store.buf) =
  t.mon_iter >= 0 && b.Store.excl_epoch <> t.g.epoch

let note_read t var (b : Store.buf) off =
  if monitored t b then begin
    let sh = Store.shadow_of b in
    if sh.Store.w_ep.(off) = t.g.epoch && sh.Store.w_it.(off) <> t.mon_iter
    then record_conflict t var Flow off sh.Store.w_it.(off);
    sh.Store.r_ep.(off) <- t.g.epoch;
    sh.Store.r_it.(off) <- t.mon_iter
  end

let note_write t var (b : Store.buf) off =
  if monitored t b then begin
    let sh = Store.shadow_of b in
    if sh.Store.r_ep.(off) = t.g.epoch && sh.Store.r_it.(off) <> t.mon_iter
    then record_conflict t var Anti off sh.Store.r_it.(off);
    if sh.Store.w_ep.(off) = t.g.epoch && sh.Store.w_it.(off) <> t.mon_iter
    then record_conflict t var Output off sh.Store.w_it.(off);
    sh.Store.w_ep.(off) <- t.g.epoch;
    sh.Store.w_it.(off) <- t.mon_iter
  end

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

let typ_of_var (ui : unit_info) v = Symbol.typ_of ui.tbl v

let find_slot (ui : unit_info) (frame : frame) v : Store.slot =
  match Hashtbl.find_opt frame v with
  | Some s -> s
  | None -> (
    (* late creation: undeclared scalar local *)
    match Symbol.lookup ui.tbl v with
    | Some { kind = Symbol.Scalar; typ; param; _ } ->
      let b = Store.alloc typ 1 in
      (match param with
      | Some _ -> (
        match Symbol.param_value ui.tbl v with
        | Some n -> Store.set b 0 (V.VI n)
        | None -> ())
      | None -> ());
      let s = Store.Scalar { Store.cbuf = b; coff = 0 } in
      Hashtbl.replace frame v s;
      s
    | _ -> err "variable %s has no storage in %s" v ui.u.Ast.uname)

let rec eval t ui frame (e : Ast.expr) : V.value =
  match e with
  | Ast.Int n -> V.VI n
  | Ast.Real f -> V.VR f
  | Ast.Logic b -> V.VL b
  | Ast.Str s -> V.VS s
  | Ast.Var v -> (
    match find_slot ui frame v with
    | Store.Scalar c ->
      t.ops.o_mems <- t.ops.o_mems + 1;
      note_read t v c.Store.cbuf c.Store.coff;
      Store.get_cell c
    | Store.Arr _ -> err "array %s used as a scalar value" v)
  | Ast.Index (b, args) -> (
    match Symbol.lookup ui.tbl b with
    | Some { kind = Symbol.Array _; _ } -> (
      let idxs = List.map (fun a -> V.to_int (eval t ui frame a)) args in
      match find_slot ui frame b with
      | Store.Arr a ->
        let off = Store.offset a idxs in
        t.ops.o_mems <- t.ops.o_mems + 1;
        note_read t b a.Store.abuf off;
        Store.get a.Store.abuf off
      | Store.Scalar _ -> err "%s is not an array" b)
    | Some { kind = Symbol.Intrinsic; _ } -> eval_intrinsic t ui frame b args
    | Some { kind = Symbol.External_fun; _ } ->
      eval_function_call t ui frame b args
    | _ -> err "cannot evaluate %s(...)" b)
  | Ast.Un (Ast.Neg, a) -> (
    match eval t ui frame a with
    | V.VI n -> V.VI (-n)
    | V.VR f -> V.VR (-.f)
    | v -> err "cannot negate %s" (Format.asprintf "%a" V.pp_value v))
  | Ast.Un (Ast.Not, a) -> V.VL (not (V.to_bool (eval t ui frame a)))
  | Ast.Bin (op, a, b) -> (
    match op with
    | Ast.And ->
      V.VL (V.to_bool (eval t ui frame a) && V.to_bool (eval t ui frame b))
    | Ast.Or ->
      V.VL (V.to_bool (eval t ui frame a) || V.to_bool (eval t ui frame b))
    | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Pow ->
      t.ops.o_flops <- t.ops.o_flops + 1;
      arith op (eval t ui frame a) (eval t ui frame b)
    | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne ->
      t.ops.o_flops <- t.ops.o_flops + 1;
      compare_vals op (eval t ui frame a) (eval t ui frame b))

and arith op a b =
  match (a, b) with
  | V.VI x, V.VI y -> (
    match op with
    | Ast.Add -> V.VI (x + y)
    | Ast.Sub -> V.VI (x - y)
    | Ast.Mul -> V.VI (x * y)
    | Ast.Div -> if y = 0 then err "integer division by zero" else V.VI (x / y)
    | Ast.Pow ->
      if y < 0 then V.VI 0
      else V.VI (int_of_float (Float.round (float_of_int x ** float_of_int y)))
    | _ -> assert false)
  | (V.VI _ | V.VR _), (V.VI _ | V.VR _) -> (
    let x = V.to_float a and y = V.to_float b in
    match op with
    | Ast.Add -> V.VR (x +. y)
    | Ast.Sub -> V.VR (x -. y)
    | Ast.Mul -> V.VR (x *. y)
    | Ast.Div -> V.VR (x /. y)
    | Ast.Pow -> V.VR (x ** y)
    | _ -> assert false)
  | _ -> err "bad operands for arithmetic"

and compare_vals op a b =
  let x = V.to_float a and y = V.to_float b in
  let r =
    match op with
    | Ast.Lt -> x < y
    | Ast.Le -> x <= y
    | Ast.Gt -> x > y
    | Ast.Ge -> x >= y
    | Ast.Eq -> x = y
    | Ast.Ne -> x <> y
    | _ -> assert false
  in
  V.VL r

and eval_intrinsic t ui frame name args : V.value =
  t.ops.o_intr <- t.ops.o_intr + 1;
  let vs () = List.map (eval t ui frame) args in
  let one () =
    match vs () with [ v ] -> v | _ -> err "%s expects one argument" name
  in
  let two () =
    match vs () with
    | [ a; b ] -> (a, b)
    | _ -> err "%s expects two arguments" name
  in
  match name with
  | "ABS" -> (
    match one () with
    | V.VI n -> V.VI (abs n)
    | v -> V.VR (Float.abs (V.to_float v)))
  | "MOD" -> (
    match two () with
    | V.VI a, V.VI b -> if b = 0 then err "MOD by zero" else V.VI (a mod b)
    | a, b -> V.VR (Float.rem (V.to_float a) (V.to_float b)))
  | "MAX" | "MIN" -> (
    let vs = vs () in
    let all_int = List.for_all (function V.VI _ -> true | _ -> false) vs in
    let sel = if name = "MAX" then Float.max else Float.min in
    let r =
      List.fold_left
        (fun acc v -> sel acc (V.to_float v))
        (V.to_float (List.hd vs))
        (List.tl vs)
    in
    if all_int then V.VI (int_of_float r) else V.VR r)
  | "SQRT" -> V.VR (sqrt (V.to_float (one ())))
  | "EXP" -> V.VR (exp (V.to_float (one ())))
  | "LOG" -> V.VR (log (V.to_float (one ())))
  | "SIN" -> V.VR (sin (V.to_float (one ())))
  | "COS" -> V.VR (cos (V.to_float (one ())))
  | "TAN" -> V.VR (tan (V.to_float (one ())))
  | "FLOAT" | "DBLE" | "SNGL" -> V.VR (V.to_float (one ()))
  | "INT" -> V.VI (V.to_int (one ()))
  | "NINT" -> V.VI (int_of_float (Float.round (V.to_float (one ()))))
  | "SIGN" -> (
    match two () with
    | a, b ->
      let m = Float.abs (V.to_float a) in
      let r = if V.to_float b < 0.0 then -.m else m in
      (match a with V.VI _ -> V.VI (int_of_float r) | _ -> V.VR r))
  | _ -> err "unknown intrinsic %s" name

(* ------------------------------------------------------------------ *)
(* Frames and calls                                                    *)
(* ------------------------------------------------------------------ *)

and build_frame t (ui : unit_info) (bindings : (string * Store.slot) list) :
    frame =
  let frame : frame = Hashtbl.create 16 in
  List.iter (fun (n, s) -> Hashtbl.replace frame n s) bindings;
  let common_slot name =
    match Hashtbl.find_opt t.g.commons name with
    | Some s -> s
    | None -> err "COMMON variable %s was not pre-allocated" name
  in
  (* pass 1: scalars (parameters seeded), so array dims can use them *)
  List.iter
    (fun (i : Symbol.info) ->
      if not (Hashtbl.mem frame i.name) then
        match i.kind with
        | Symbol.Scalar ->
          if i.common <> None then
            Hashtbl.replace frame i.name (common_slot i.name)
          else begin
            let b = Store.alloc i.typ 1 in
            (match Symbol.param_value ui.tbl i.name with
            | Some n -> Store.set b 0 (V.VI n)
            | None -> (
              (* DATA initial value: literals only *)
              match i.data with
              | Some (Ast.Int n) -> Store.set b 0 (V.VI n)
              | Some (Ast.Real f) -> Store.set b 0 (V.VR f)
              | Some (Ast.Logic l) -> Store.set b 0 (V.VL l)
              | Some (Ast.Un (Ast.Neg, Ast.Int n)) -> Store.set b 0 (V.VI (-n))
              | Some (Ast.Un (Ast.Neg, Ast.Real f)) ->
                Store.set b 0 (V.VR (-.f))
              | Some _ | None -> ()));
            Hashtbl.replace frame i.name
              (Store.Scalar { Store.cbuf = b; coff = 0 })
          end
        | Symbol.Array _ | Symbol.Routine | Symbol.External_fun
        | Symbol.Intrinsic -> ())
    (Symbol.infos ui.tbl);
  (* pass 2: arrays (bounds may reference formals and parameters) *)
  List.iter
    (fun (i : Symbol.info) ->
      match i.kind with
      | Symbol.Array dims ->
        let bounds =
          List.map
            (fun (lo, hi) ->
              let lo = V.to_int (eval t ui frame lo) in
              let hi =
                match hi with
                | Ast.Int n when n = max_int ->
                  (* assumed-size: extent comes from the storage *)
                  max_int
                | e -> V.to_int (eval t ui frame e)
              in
              (lo, hi))
            dims
        in
        (match Hashtbl.find_opt frame i.name with
        | Some (Store.Arr view) ->
          (* formal array: reshape the passed storage to our bounds *)
          let bounds =
            (* resolve assumed-size final extent against storage *)
            match List.rev bounds with
            | (lo, hi) :: rest when hi = max_int ->
              let other =
                List.fold_left
                  (fun acc (l, h) -> acc * max 1 (h - l + 1))
                  1 rest
              in
              let avail = Store.length view.Store.abuf - view.Store.base in
              let extent = max 1 (avail / max 1 other) in
              List.rev ((lo, lo + extent - 1) :: rest)
            | _ -> bounds
          in
          Hashtbl.replace frame i.name
            (Store.Arr
               { Store.abuf = view.Store.abuf; base = view.Store.base; bounds })
        | Some (Store.Scalar _) -> ()
        | None ->
          if i.common <> None then
            Hashtbl.replace frame i.name (common_slot i.name)
          else begin
            let size =
              List.fold_left
                (fun acc (lo, hi) -> acc * max 1 (hi - lo + 1))
                1 bounds
            in
            Hashtbl.replace frame i.name
              (Store.Arr { Store.abuf = Store.alloc i.typ size; base = 0; bounds })
          end)
      | Symbol.Scalar | Symbol.Routine | Symbol.External_fun
      | Symbol.Intrinsic -> ())
    (Symbol.infos ui.tbl);
  frame

and bind_actuals t caller_ui caller_frame (callee : unit_info)
    (formals : string list) (actuals : Ast.expr list) :
    (string * Store.slot) list =
  let bind formal actual =
    let formal_is_array = Symbol.is_array callee.tbl formal in
    match actual with
    | Ast.Var v -> (
      match find_slot caller_ui caller_frame v with
      | Store.Scalar c -> (formal, Store.Scalar c)
      | Store.Arr a -> (formal, Store.Arr a))
    | Ast.Index (b, idxs) when Symbol.is_array caller_ui.tbl b -> (
      let idxs =
        List.map (fun a -> V.to_int (eval t caller_ui caller_frame a)) idxs
      in
      match find_slot caller_ui caller_frame b with
      | Store.Arr a ->
        let off = Store.offset a idxs in
        if formal_is_array then
          (* the callee sees storage starting at this element *)
          (formal, Store.Arr { Store.abuf = a.Store.abuf; base = off; bounds = [] })
        else (formal, Store.Scalar { Store.cbuf = a.Store.abuf; coff = off })
      | Store.Scalar _ -> err "%s is not an array" b)
    | e ->
      (* expression argument: pass a temporary *)
      let typ = typ_of_var callee formal in
      let b = Store.alloc typ 1 in
      Store.set b 0 (eval t caller_ui caller_frame e);
      (formal, Store.Scalar { Store.cbuf = b; coff = 0 })
  in
  let rec go fs acts =
    match (fs, acts) with
    | [], _ -> []
    | f :: fs, a :: acts -> bind f a :: go fs acts
    | f :: _, [] -> err "missing actual argument for %s" f
  in
  go formals actuals

and call_unit t (callee : unit_info) (bindings : (string * Store.slot) list) :
    frame =
  t.depth <- t.depth + 1;
  if t.depth > 200 then err "call depth exceeded (recursion?)";
  let frame = build_frame t callee bindings in
  let signal = exec_block t callee frame callee.u.Ast.body in
  (match signal with
  | Snormal | Sreturn -> ()
  | Sstop ->
    t.depth <- t.depth - 1;
    raise Exit
  | Sgoto l -> err "GOTO %d escapes %s" l callee.u.Ast.uname);
  t.depth <- t.depth - 1;
  frame

and eval_function_call t ui frame name args : V.value =
  match Hashtbl.find_opt t.g.units name with
  | Some callee -> (
    let formals =
      match callee.u.Ast.kind with
      | Ast.Function (_, fs) -> fs
      | _ -> err "%s is not a function" name
    in
    t.ops.o_calls <- t.ops.o_calls + 1;
    let bindings = bind_actuals t ui frame callee formals args in
    let callee_frame = call_unit t callee bindings in
    match Hashtbl.find_opt callee_frame name with
    | Some (Store.Scalar c) -> Store.get_cell c
    | _ -> err "function %s returned no value" name)
  | None -> err "unknown function %s (external functions must be supplied)" name

(* ------------------------------------------------------------------ *)
(* Statement execution                                                 *)
(* ------------------------------------------------------------------ *)

and exec_block t ui frame (stmts : Ast.stmt list) : signal =
  let arr = Array.of_list stmts in
  let n = Array.length arr in
  let rec from i : signal =
    if i >= n then Snormal
    else
      match exec_stmt t ui frame arr.(i) with
      | Snormal -> from (i + 1)
      | Sgoto l -> (
        (* a label in this block? (possibly behind us) *)
        match
          Array.to_list arr
          |> List.mapi (fun j s -> (j, s))
          |> List.find_opt (fun (_, (s : Ast.stmt)) -> s.Ast.label = Some l)
        with
        | Some (j, _) -> from j
        | None -> Sgoto l)
      | (Sreturn | Sstop) as s -> s
  in
  from 0

and exec_stmt t ui frame (s : Ast.stmt) : signal =
  if Atomic.fetch_and_add t.g.steps 1 >= t.g.max_steps then
    err "statement budget exhausted";
  match s.Ast.node with
  | Ast.Continue -> Snormal
  | Ast.Goto l -> Sgoto l
  | Ast.Return -> Sreturn
  | Ast.Stop -> Sstop
  | Ast.Assign (lhs, rhs) -> (
    let v = eval t ui frame rhs in
    match lhs with
    | Ast.Var name -> (
      match find_slot ui frame name with
      | Store.Scalar c ->
        t.ops.o_mems <- t.ops.o_mems + 1;
        note_write t name c.Store.cbuf c.Store.coff;
        Store.set_cell c v;
        Snormal
      | Store.Arr _ -> err "cannot assign whole array %s" name)
    | Ast.Index (b, idxs) -> (
      let idxs = List.map (fun a -> V.to_int (eval t ui frame a)) idxs in
      match find_slot ui frame b with
      | Store.Arr a ->
        let off = Store.offset a idxs in
        t.ops.o_mems <- t.ops.o_mems + 1;
        note_write t b a.Store.abuf off;
        Store.set a.Store.abuf off v;
        Snormal
      | Store.Scalar _ -> err "%s is not an array" b)
    | _ -> err "bad assignment target")
  | Ast.Print args ->
    let line = Abi.print_line (List.map (eval t ui frame) args) in
    t.out_rev <- line :: t.out_rev;
    Snormal
  | Ast.If (branches, els) ->
    let rec pick = function
      | [] -> exec_block t ui frame els
      | (c, body) :: rest ->
        if V.to_bool (eval t ui frame c) then exec_block t ui frame body
        else pick rest
    in
    pick branches
  | Ast.Call (name, args) -> (
    match Hashtbl.find_opt t.g.units name with
    | Some callee ->
      let formals =
        match callee.u.Ast.kind with
        | Ast.Subroutine fs -> fs
        | Ast.Function (_, fs) -> fs
        | Ast.Main -> err "cannot CALL the main program"
      in
      t.ops.o_calls <- t.ops.o_calls + 1;
      let bindings = bind_actuals t ui frame callee formals args in
      let _ = call_unit t callee bindings in
      Snormal
    | None -> err "unknown subroutine %s" name)
  | Ast.Do (h, body) -> exec_do t ui frame s h body

and exec_do t ui frame (s : Ast.stmt) (h : Ast.do_header) body : signal =
  let lo = eval t ui frame h.Ast.lo in
  let hi = eval t ui frame h.Ast.hi in
  let step =
    match h.Ast.step with None -> V.VI 1 | Some e -> eval t ui frame e
  in
  let is_int =
    match (lo, hi, step) with V.VI _, V.VI _, V.VI _ -> true | _ -> false
  in
  let iv_cell =
    match find_slot ui frame h.Ast.dvar with
    | Store.Scalar c -> c
    | Store.Arr _ -> err "loop variable %s is an array" h.Ast.dvar
  in
  let trip =
    if is_int then begin
      let l = V.to_int lo and hh = V.to_int hi and st_ = V.to_int step in
      if st_ = 0 then err "zero DO step";
      max 0 (((hh - l) + st_) / st_)
    end
    else begin
      let l = V.to_float lo and hh = V.to_float hi and st_ = V.to_float step in
      if st_ = 0.0 then err "zero DO step";
      max 0 (int_of_float (Float.trunc (((hh -. l) +. st_) /. st_)))
    end
  in
  let value_at k =
    if is_int then V.VI (V.to_int lo + (k * V.to_int step))
    else V.VR (V.to_float lo +. (float_of_int k *. V.to_float step))
  in
  (* F77: the DO variable receives its initial value even when the
     loop runs zero times *)
  Store.set_cell iv_cell (value_at 0);
  let seq_run () =
    let rec go k =
      if k >= trip then begin
        (* normal completion: F77 leaves the DO variable at the first
           value that failed the iteration test *)
        Store.set_cell iv_cell (value_at trip);
        Snormal
      end
      else begin
        Store.set_cell iv_cell (value_at k);
        t.ops.o_iters <- t.ops.o_iters + 1;
        match exec_block t ui frame body with
        | Snormal -> go (k + 1)
        | other -> other
      end
    in
    go 0
  in
  if not (h.Ast.parallel && not t.in_parallel) then seq_run ()
  else if t.g.validate then
    run_validated t ui frame s h body ~trip ~value_at ~iv_cell
  else
    match t.g.pool with
    | Some pool when trip > 0 ->
      run_parallel t ui frame s h body ~trip ~value_at ~iv_cell pool
    | _ -> seq_run ()

(* Instrumented sequential execution of a PARALLEL DO: every element
   access inside is stamped with its iteration number; accesses to
   storage the plan privatizes are excluded via the epoch tag. *)
and run_validated t ui frame s (h : Ast.do_header) body ~trip ~value_at
    ~iv_cell : signal =
  let plan =
    match Hashtbl.find_opt t.g.plans s.Ast.sid with
    | Some p -> p
    | None -> Plan.trivial h.Ast.dvar
  in
  (* make sure planned scalars exist so the exclusion reaches them *)
  let ensure v = try ignore (find_slot ui frame v) with Runtime_error _ -> () in
  List.iter ensure plan.Plan.p_privates;
  List.iter (fun (v, _) -> ensure v) plan.Plan.p_inductions;
  List.iter (fun (v, _) -> ensure v) plan.Plan.p_reductions;
  t.g.epoch <- t.g.epoch + 1;
  let epoch = t.g.epoch in
  let exclude v =
    match Hashtbl.find_opt frame v with
    | Some (Store.Scalar c) -> c.Store.cbuf.Store.excl_epoch <- epoch
    | Some (Store.Arr a) -> a.Store.abuf.Store.excl_epoch <- epoch
    | None -> ()
  in
  exclude h.Ast.dvar;
  List.iter exclude plan.Plan.p_privates;
  List.iter (fun (v, _) -> exclude v) plan.Plan.p_inductions;
  List.iter (fun (v, _) -> exclude v) plan.Plan.p_reductions;
  List.iter exclude plan.Plan.p_arrays;
  let saved_iter = t.mon_iter and saved_loop = t.mon_loop in
  t.in_parallel <- true;
  t.mon_loop <- s.Ast.sid;
  let bad = ref None in
  let k = ref 0 in
  while !bad = None && !k < trip do
    t.mon_iter <- !k;
    Store.set_cell iv_cell (value_at !k);
    t.ops.o_iters <- t.ops.o_iters + 1;
    (match exec_block t ui frame body with
    | Snormal -> ()
    | other -> bad := Some other);
    incr k
  done;
  t.mon_iter <- saved_iter;
  t.mon_loop <- saved_loop;
  t.in_parallel <- false;
  match !bad with
  | Some other -> other
  | None ->
    Store.set_cell iv_cell (value_at trip);
    Snormal

(* Real parallel execution of a PARALLEL DO on the domain pool. *)
and run_parallel t ui frame s (h : Ast.do_header) body ~trip ~value_at ~iv_cell
    pool : signal =
  let plan =
    match Hashtbl.find_opt t.g.plans s.Ast.sid with
    | Some p -> p
    | None -> Plan.trivial h.Ast.dvar
  in
  (* planned scalars must exist in the shared frame before workers
     copy it, both to seed private copies and for last-value and
     reduction write-back afterwards *)
  let ensure v = try ignore (find_slot ui frame v) with Runtime_error _ -> () in
  List.iter ensure plan.Plan.p_privates;
  List.iter (fun (v, _) -> ensure v) plan.Plan.p_inductions;
  List.iter (fun (v, _) -> ensure v) plan.Plan.p_reductions;
  (* auxiliary inductions: capture the entry value now; workers get the
     closed form per iteration and the join writes back the final value *)
  let ind_info =
    List.filter_map
      (fun (v, stride) ->
        match Hashtbl.find_opt frame v with
        | Some (Store.Scalar c) -> Some (v, c, Store.get_cell c, stride)
        | _ -> None)
      plan.Plan.p_inductions
  in
  let nw = Pool.size pool in
  let wstates = Array.make nw None in
  let bad = ref None in
  let loop_label = Printf.sprintf "s%d" s.Ast.sid in
  (* Lazily built per-worker context: a copied frame in which the
     induction variable, planned private scalars (seeded with the
     current value), reduction scalars (seeded with the operator
     identity) and privatizable arrays (copied) point at fresh
     storage.  Everything else aliases the shared buffers. *)
  let get_ws w =
    match wstates.(w) with
    | Some ws -> ws
    | None ->
      Telemetry.span t.g.sink "exec.copy-in"
        ~args:[ ("loop", loop_label); ("worker", string_of_int w) ]
      @@ fun () ->
      let wframe = Hashtbl.copy frame in
      let wt =
        {
          g = t.g;
          out_rev = [];
          depth = t.depth;
          in_parallel = true;
          mon_iter = -1;
          mon_loop = -1;
          ops = fresh_ops ();
        }
      in
      let fresh_cell (c : Store.cell) =
        { Store.cbuf = Store.alloc_like c.Store.cbuf 1; coff = 0 }
      in
      let ivc = fresh_cell iv_cell in
      Hashtbl.replace wframe h.Ast.dvar (Store.Scalar ivc);
      let priv_cells =
        List.filter_map
          (fun v ->
            match Hashtbl.find_opt frame v with
            | Some (Store.Scalar c) ->
              let nc = fresh_cell c in
              Store.set_cell nc (Store.get_cell c);
              Hashtbl.replace wframe v (Store.Scalar nc);
              Some (c, nc)
            | _ -> None)
          plan.Plan.p_privates
      in
      let ind_cells =
        List.map
          (fun (v, c, k0, stride) ->
            let nc = fresh_cell c in
            Store.set_cell nc k0;
            Hashtbl.replace wframe v (Store.Scalar nc);
            (nc, k0, stride))
          ind_info
      in
      let red_cells =
        List.filter_map
          (fun (v, op) ->
            match Hashtbl.find_opt frame v with
            | Some (Store.Scalar c) ->
              let nc = fresh_cell c in
              Store.set_cell nc (reduction_identity op nc);
              Hashtbl.replace wframe v (Store.Scalar nc);
              Some (v, (op, c, nc))
            | _ -> None)
          plan.Plan.p_reductions
      in
      let arr_copies =
        List.filter_map
          (fun v ->
            match Hashtbl.find_opt frame v with
            | Some (Store.Arr a) ->
              let nb = Store.alloc_like a.Store.abuf (Store.length a.Store.abuf) in
              Store.copy_into nb a.Store.abuf;
              Hashtbl.replace wframe v
                (Store.Arr
                   { Store.abuf = nb; base = a.Store.base; bounds = a.Store.bounds });
              Some (a, nb)
            | _ -> None)
          plan.Plan.p_arrays
      in
      let ws =
        { wframe; wt; ivc; priv_cells; ind_cells; red_cells; arr_copies;
          last_iter = -1; outs = [] }
      in
      wstates.(w) <- Some ws;
      ws
  in
  let body_fn ~worker k =
    let ws = get_ws worker in
    ws.last_iter <- k;
    Store.set_cell ws.ivc (value_at k);
    List.iter
      (fun (nc, k0, stride) -> Store.set_cell nc (induction_value k0 stride k))
      ws.ind_cells;
    ws.wt.ops.o_iters <- ws.wt.ops.o_iters + 1;
    ws.wt.out_rev <- [];
    let sg = exec_block ws.wt ui ws.wframe body in
    if ws.wt.out_rev <> [] then
      ws.outs <- (k, List.rev ws.wt.out_rev) :: ws.outs;
    match sg with
    | Snormal -> ()
    | other ->
      Mutex.lock t.g.bad_mutex;
      if !bad = None then bad := Some other;
      Mutex.unlock t.g.bad_mutex;
      raise Abort_loop
  in
  (* the loop span covers fork through join (scheduling, per-worker
     copy-in, the body, and the sequential merge below), so perfdebug
     can compare whole-loop time against summed worker busy time *)
  Telemetry.span t.g.sink "exec.parallel-loop"
    ~args:[ ("loop", loop_label); ("trip", string_of_int trip) ]
  @@ fun () ->
  (try
     Pool.parallel_for pool ~label:loop_label ~schedule:t.g.schedule ~trip
       ~body:body_fn
   with Abort_loop -> ());
  Telemetry.span t.g.sink "exec.join" ~args:[ ("loop", loop_label) ]
  @@ fun () ->
  (* merge worker-buffered PRINT output in iteration order *)
  let outs =
    Array.fold_left
      (fun acc -> function None -> acc | Some ws -> ws.outs @ acc)
      [] wstates
  in
  List.sort (fun (a, _) (b, _) -> compare (a : int) b) outs
  |> List.iter (fun (_, lines) ->
         List.iter (fun l -> t.out_rev <- l :: t.out_rev) lines);
  Array.iter
    (function None -> () | Some ws -> add_ops t.ops ws.wt.ops)
    wstates;
  (* last-value write-back: private scalars and privatized arrays take
     their values from the worker that ran the sequentially last
     iteration (both schedules hand each worker increasing indices) *)
  let last_ws =
    Array.fold_left
      (fun acc ws ->
        match (acc, ws) with
        | None, _ -> ws
        | Some _, None -> acc
        | Some a, Some b -> if b.last_iter > a.last_iter then ws else acc)
      None wstates
  in
  (match last_ws with
  | Some ws ->
    List.iter
      (fun (orig, mine) -> Store.set_cell orig (Store.get_cell mine))
      ws.priv_cells;
    List.iter
      (fun ((a : Store.arr), mine) -> Store.copy_into a.Store.abuf mine)
      ws.arr_copies
  | None -> ());
  (* reductions: combine per-worker partials into the original cell,
     deterministically in worker order *)
  List.iter
    (fun (v, op) ->
      match Hashtbl.find_opt frame v with
      | Some (Store.Scalar orig) ->
        let acc = ref (Store.get_cell orig) in
        Array.iter
          (function
            | None -> ()
            | Some ws -> (
              match List.assoc_opt v ws.red_cells with
              | Some (_, _, mine) ->
                acc := combine_reduction op !acc (Store.get_cell mine)
              | None -> ()))
          wstates;
        Store.set_cell orig !acc
      | _ -> ())
    plan.Plan.p_reductions;
  (* auxiliary inductions land on their sequential final value *)
  List.iter
    (fun (_, c, k0, stride) ->
      Store.set_cell c (induction_value k0 stride trip))
    ind_info;
  Store.set_cell iv_cell (value_at trip);
  match !bad with Some other -> other | None -> Snormal

and induction_value k0 stride k : V.value =
  match k0 with
  | V.VI x -> V.VI (x + (stride * k))
  | V.VR x -> V.VR (x +. float_of_int (stride * k))
  | (V.VL _ | V.VS _) as v -> v

and reduction_identity op (c : Store.cell) : V.value =
  let is_int =
    match c.Store.cbuf.Store.data with Store.I _ -> true | _ -> false
  in
  match (op, is_int) with
  | Varclass.Rsum, true -> V.VI 0
  | Varclass.Rsum, false -> V.VR 0.0
  | Varclass.Rprod, true -> V.VI 1
  | Varclass.Rprod, false -> V.VR 1.0
  | Varclass.Rmax, true -> V.VI min_int
  | Varclass.Rmax, false -> V.VR neg_infinity
  | Varclass.Rmin, true -> V.VI max_int
  | Varclass.Rmin, false -> V.VR infinity

and combine_reduction op a b =
  match (op, a, b) with
  | Varclass.Rsum, V.VI x, V.VI y -> V.VI (x + y)
  | Varclass.Rsum, _, _ -> V.VR (V.to_float a +. V.to_float b)
  | Varclass.Rprod, V.VI x, V.VI y -> V.VI (x * y)
  | Varclass.Rprod, _, _ -> V.VR (V.to_float a *. V.to_float b)
  | Varclass.Rmax, V.VI x, V.VI y -> V.VI (max x y)
  | Varclass.Rmax, _, _ -> V.VR (Float.max (V.to_float a) (V.to_float b))
  | Varclass.Rmin, V.VI x, V.VI y -> V.VI (min x y)
  | Varclass.Rmin, _, _ -> V.VR (Float.min (V.to_float a) (V.to_float b))

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

type outcome = {
  output : string list;
  wall_s : float;
  stmts_executed : int;
  final_store : (string * float list) list;
  conflicts : conflict list;
  ops : Perf.Machine.op_counts;
}

let snapshot (frame : frame) commons : (string * float list) list =
  let one name (slot : Store.slot) acc =
    match slot with
    | Store.Scalar c -> (name, [ V.to_float (Store.get_cell c) ]) :: acc
    | Store.Arr a ->
      let size =
        List.fold_left
          (fun acc (lo, hi) -> acc * max 1 (hi - lo + 1))
          1 a.Store.bounds
      in
      let size = min size (Store.length a.Store.abuf - a.Store.base) in
      let vals = ref [] in
      for i = a.Store.base + size - 1 downto a.Store.base do
        vals := Store.to_float a.Store.abuf i :: !vals
      done;
      (name, !vals) :: acc
  in
  let acc = Hashtbl.fold one frame [] in
  let acc =
    Hashtbl.fold (fun n s acc -> one (Abi.common_key n) s acc) commons acc
  in
  Abi.sort_store acc

(* COMMON storage is allocated before execution starts (the simulator
   creates it lazily), so workers never mutate the commons table and
   callee frames can be built inside parallel regions.  Bounds of
   COMMON arrays must be compile-time constants for this — true of
   every COMMON in the workload suite and of most of F77 practice. *)
let init_commons (units : unit_info list) commons =
  List.iter
    (fun ui ->
      List.iter
        (fun (i : Symbol.info) ->
          if i.common <> None && not (Hashtbl.mem commons i.name) then
            match i.kind with
            | Symbol.Scalar ->
              Hashtbl.replace commons i.name
                (Store.Scalar { Store.cbuf = Store.alloc i.typ 1; coff = 0 })
            | Symbol.Array dims ->
              let bounds =
                List.map
                  (fun (lo, hi) ->
                    match
                      (Symbol.const_eval ui.tbl lo, Symbol.const_eval ui.tbl hi)
                    with
                    | Some l, Some h -> (l, h)
                    | _ -> err "COMMON array %s needs constant bounds" i.name)
                  dims
              in
              let size =
                List.fold_left
                  (fun acc (lo, hi) -> acc * max 1 (hi - lo + 1))
                  1 bounds
              in
              Hashtbl.replace commons i.name
                (Store.Arr { Store.abuf = Store.alloc i.typ size; base = 0; bounds })
            | Symbol.Routine | Symbol.External_fun | Symbol.Intrinsic -> ())
        (Symbol.infos ui.tbl))
    units

let conflict_list (g : global) =
  Hashtbl.fold (fun _ c acc -> c :: acc) g.conflicts []
  |> List.sort (fun a b ->
         compare
           (a.c_loop, a.c_var, a.c_kind)
           (b.c_loop, b.c_var, b.c_kind))

let run ?(domains = 4) ?(schedule = Pool.Chunk) ?(validate = false)
    ?predict ?(max_steps = 50_000_000) ?telemetry (prog : Ast.program) :
    outcome =
  let sink =
    match telemetry with Some s -> s | None -> Telemetry.default ()
  in
  let units = Hashtbl.create 8 in
  List.iter
    (fun (u : Ast.program_unit) ->
      Hashtbl.replace units u.Ast.uname { u; tbl = Symbol.build u })
    prog.Ast.punits;
  let main =
    match
      List.find_opt
        (fun (u : Ast.program_unit) -> u.Ast.kind = Ast.Main)
        prog.Ast.punits
    with
    | Some u -> u
    | None -> err "no main program unit"
  in
  let commons = Hashtbl.create 8 in
  init_commons (Hashtbl.fold (fun _ ui acc -> ui :: acc) units []) commons;
  let plans = Plan.build prog in
  let pool =
    if validate then None else Some (Pool.create ~telemetry:sink domains)
  in
  Fun.protect ~finally:(fun () -> Option.iter Pool.shutdown pool) @@ fun () ->
  let g =
    {
      units;
      commons;
      plans;
      pool;
      schedule;
      validate;
      predict;
      max_steps;
      steps = Atomic.make 0;
      sink;
      epoch = 0;
      conflicts = Hashtbl.create 8;
      bad_mutex = Mutex.create ();
    }
  in
  let t =
    {
      g;
      out_rev = [];
      depth = 0;
      in_parallel = false;
      mon_iter = -1;
      mon_loop = -1;
      ops = fresh_ops ();
    }
  in
  let main_ui = Hashtbl.find units main.Ast.uname in
  let frame = build_frame t main_ui [] in
  (* monotonic wall clock: NTP slew must not skew speedup tables *)
  let t0 = Telemetry.now_ns () in
  (Telemetry.span sink "exec.run" @@ fun () ->
   try
     match exec_block t main_ui frame main.Ast.body with
     | Snormal | Sreturn | Sstop -> ()
     | Sgoto l -> err "GOTO %d escapes the main program" l
   with
   | Exit -> ()
   | Failure msg -> err "%s" msg);
  let wall = Int64.to_float (Int64.sub (Telemetry.now_ns ()) t0) /. 1e9 in
  {
    output = List.rev t.out_rev;
    wall_s = wall;
    stmts_executed = Atomic.get g.steps;
    final_store = snapshot frame commons;
    conflicts = conflict_list g;
    ops =
      {
        Perf.Machine.flops = float_of_int t.ops.o_flops;
        mems = float_of_int t.ops.o_mems;
        intrinsics = float_of_int t.ops.o_intr;
        loop_iters = float_of_int t.ops.o_iters;
        calls = float_of_int t.ops.o_calls;
      };
  }

let force_parallel (prog : Ast.program) : Ast.program =
  let rewrite (u : Ast.program_unit) =
    {
      u with
      Ast.body =
        Ast.map_stmts
          (fun (s : Ast.stmt) ->
            match s.Ast.node with
            | Ast.Do (h, body) ->
              { s with Ast.node = Ast.Do ({ h with Ast.parallel = true }, body) }
            | _ -> s)
          u.Ast.body;
    }
  in
  { Ast.punits = List.map rewrite prog.Ast.punits }

let strip_parallel (prog : Ast.program) : Ast.program =
  let rewrite (u : Ast.program_unit) =
    {
      u with
      Ast.body =
        Ast.map_stmts
          (fun (s : Ast.stmt) ->
            match s.Ast.node with
            | Ast.Do (h, body) ->
              { s with Ast.node = Ast.Do ({ h with Ast.parallel = false }, body) }
            | _ -> s)
          u.Ast.body;
    }
  in
  { Ast.punits = List.map rewrite prog.Ast.punits }
