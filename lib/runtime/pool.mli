(** A reusable pool of OCaml 5 domains.

    Hand-rolled on [Domain]/[Mutex]/[Condition] (no external task
    library): [create n] spawns [n] worker domains that sleep on a
    condition variable; {!parallel_for} hands them a parallel-for job
    and blocks the caller until every worker has drained its share;
    {!map} layers task submission with per-task results over the same
    machinery (the surface the parallel analyzer uses).

    Two scheduling policies mirror the machine models of the
    ParaScope literature:

    - [Chunk]: each worker takes one contiguous block of
      ⌈trip/n⌉ iterations (static block scheduling — lowest
      synchronization cost, best when iterations are uniform);
    - [Self]: workers repeatedly claim the next iteration from a
      shared atomic counter (self-scheduling — one fetch-and-add per
      iteration, load-balances triangular or irregular work).

    The pool is reusable: jobs run one at a time, workers park
    between jobs.  An exception raised by any iteration cancels the
    remaining iterations (best effort), and the first such exception
    is re-raised in the caller after all workers have parked. *)

type t

type schedule = Chunk | Self

val schedule_to_string : schedule -> string
val schedule_of_string : string -> schedule option

(** [create n] — spawn [n] worker domains ([n] is clamped to at
    least 1).  [telemetry] (default: the process {!Telemetry.default}
    sink at creation time) receives per-job [pool.run] spans on the
    caller, per-worker [pool.chunk]/[pool.self] spans on each worker
    domain's own lane, and worker-utilization metrics ([pool.jobs],
    [pool.iterations], [pool.busy_ns], and the
    [pool.iters_per_worker] histogram). *)
val create : ?telemetry:Telemetry.sink -> int -> t

(** Number of workers. *)
val size : t -> int

(** [parallel_for t ~schedule ~trip ~body] — execute [body ~worker k]
    for every [k] in [0 .. trip-1].  [worker] identifies the
    executing lane (0-based); a given worker index never runs
    concurrently with itself, so per-worker state needs no locking.
    Within one worker, iteration indices are claimed in increasing
    order under both policies.  Blocks until done; re-raises the
    first iteration exception.

    [label] names the loop in telemetry: it is attached as a
    ["label"] arg to the caller's [pool.run] span and to every
    worker's [pool.chunk]/[pool.self] span, so the performance
    debugger can attribute per-worker busy time to source loops. *)
val parallel_for :
  ?label:string -> t -> schedule:schedule -> trip:int ->
  body:(worker:int -> int -> unit) -> unit

(** [map t tasks] — run every thunk on the pool and return their
    results in task order (task [k]'s result at index [k]).  Tasks
    are claimed [Self]-scheduled by default (tasks are irregular by
    nature); pass [~schedule:Chunk] for uniform work.  Blocks until
    done.  If a task raises, the remaining tasks are cancelled (best
    effort) and the first exception is re-raised in the caller.

    This is the task-submission surface the analyzer and [Exec] now
    share; jobs still run one at a time on the pool, so do not call
    [map] (or {!parallel_for}) from inside a task. *)
val map : t -> ?schedule:schedule -> (unit -> 'a) array -> 'a array

(** A {!Dependence.Ddg.runner} fanning dependence-test buckets out
    over this pool — what [Session.load ?runner] and
    [ped --analysis-domains N] plug into the analyzer. *)
val analysis_runner : t -> Dependence.Ddg.runner

(** Park and join every worker domain.  The pool must not be used
    afterwards. *)
val shutdown : t -> unit

(** [with_pool n f] — create, run [f], always shutdown. *)
val with_pool : ?telemetry:Telemetry.sink -> int -> (t -> 'a) -> 'a
