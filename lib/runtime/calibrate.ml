open Fortran_front

let sample ?(repeat = 3) (prog : Ast.program) =
  let best = ref infinity in
  let ops = ref Perf.Machine.zero_counts in
  for _ = 1 to max 1 repeat do
    let o = Exec.run ~domains:1 prog in
    if o.Exec.wall_s < !best then begin
      best := o.Exec.wall_s;
      ops := o.Exec.ops
    end
  done;
  (!ops, !best)

let fit ?(base = Perf.Machine.default) ?repeat (progs : Ast.program list) =
  Perf.Machine.calibrate (List.map (fun p -> sample ?repeat p) progs) base
