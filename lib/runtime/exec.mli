(** Multicore execution of analyzed Fortran programs.

    A second interpreter alongside {!Sim.Interp}, sharing its ABI
    (output formatting, COMMON keying, final-store snapshots) but
    executing PARALLEL DO loops on real OCaml domains: iterations are
    distributed over a {!Pool} under a chunked or self-scheduled
    policy, loop bodies mutate shared {!Store} buffers in place, and
    the per-loop {!Plan} supplies private copies, identity-seeded
    reduction accumulators (combined deterministically in worker
    order at the join), and last-value write-back.

    With [~validate:true] no domains are spawned; instead the program
    runs sequentially with every PARALLEL DO instrumented through
    shadow memory — each element access is stamped with its iteration
    number and cross-iteration flow/anti/output conflicts are
    collected.  Storage the plan privatizes is excluded, so a clean
    (empty) report means the observed execution really was free of
    loop-carried dependences on shared data. *)

open Fortran_front

exception Runtime_error of string

type conflict_kind = Flow | Anti | Output

(** Whether the static analysis foresaw a conflict.  [Untracked] when
    the run was given no predictor; [Predicted id] names the static
    dependence (by graph id) that covers the observed (loop, variable,
    kind); [Unpredicted] marks a conflict no static edge accounts for
    — an analysis soundness signal the precision dashboard counts. *)
type pred = Untracked | Predicted of int | Unpredicted

type conflict = {
  c_loop : Ast.stmt_id;  (** sid of the monitored PARALLEL DO *)
  c_var : string;
  c_kind : conflict_kind;
  c_offset : int;  (** element offset within the variable's storage *)
  c_iter_a : int;  (** earlier iteration (first occurrence) *)
  c_iter_b : int;  (** later iteration (first occurrence) *)
  mutable c_count : int;  (** occurrences of this (loop, var, kind) *)
  c_pred : pred;  (** static-prediction tag (first occurrence wins) *)
}

type outcome = {
  output : string list;
  wall_s : float;  (** monotonic-clock seconds of execution proper *)
  stmts_executed : int;
  final_store : (string * float list) list;
      (** same shape and ordering as {!Sim.Interp.outcome.final_store} *)
  conflicts : conflict list;  (** empty unless run with [~validate] *)
  ops : Perf.Machine.op_counts;
      (** dynamic operation counts, for {!Perf.Machine.calibrate} *)
}

(** [run prog] executes [prog]'s main unit.

    @param domains worker domains to spawn (default 4; clamped ≥ 1)
    @param schedule iteration scheduling policy (default {!Pool.Chunk})
    @param validate run sequentially with shadow-memory conflict
      detection instead of spawning domains (default false)
    @param predict map an observed (loop sid, variable, kind) to the
      static dependence id that predicted it, tagging each conflict
      {!Predicted} or {!Unpredicted} and bumping the
      [runtime.validator.predicted]/[.unpredicted] counters; without
      it conflicts are {!Untracked} and print unchanged
    @param max_steps statement budget shared across domains
    @param telemetry sink for runtime observability (default: the
      process {!Telemetry.default} sink): an [exec.run] span, one
      [exec.parallel-loop] span per parallel-loop execution (covering
      fork through join, with nested [exec.copy-in] spans on each
      worker's first iteration and an [exec.join] span for the
      sequential merge), the pool's per-worker spans and utilization
      metrics, and the [runtime.validator.conflicts] counter
    @raise Runtime_error on execution errors *)
val run :
  ?domains:int ->
  ?schedule:Pool.schedule ->
  ?validate:bool ->
  ?predict:(Ast.stmt_id -> string -> conflict_kind -> int option) ->
  ?max_steps:int ->
  ?telemetry:Telemetry.sink ->
  Ast.program ->
  outcome

(** Mark every DO loop PARALLEL, bypassing the analysis — for
    exercising the validator on loops known to carry dependences. *)
val force_parallel : Ast.program -> Ast.program

(** The inverse: clear every PARALLEL flag — the sequential baseline
    the performance debugger measures speedup against. *)
val strip_parallel : Ast.program -> Ast.program

val kind_to_string : conflict_kind -> string
val conflict_to_string : conflict -> string
