(** Runtime storage: typed, unboxed, shared-memory buffers.

    Unlike the simulator's [value array] slots (boxed values behind a
    uniform representation), the runtime stores each variable in a
    flat buffer matching its declared Fortran type: [floatarray] for
    REAL/DOUBLE, [int array] for INTEGER, [bool array] for LOGICAL.
    Element reads and writes are single word-sized memory operations,
    so concurrent domains may touch {e distinct} elements of the same
    buffer without copying, locking, or tearing (the OCaml 5 memory
    model guarantees no out-of-thin-air values for such races).

    Each buffer also carries optional {e shadow memory} for the
    dynamic dependence validator: per-element last-writer/last-reader
    iteration stamps, epoch-tagged so instrumented loops need no O(n)
    clearing between runs, plus an exclusion tag for storage the
    current parallel loop privatizes. *)

open Fortran_front

type data =
  | F of floatarray
  | I of int array
  | B of bool array

(** Per-element access stamps, epoch-validated. *)
type shadow = {
  w_ep : int array;  (** epoch of last write, -1 when never *)
  w_it : int array;  (** iteration of last write *)
  r_ep : int array;
  r_it : int array;
}

type buf = {
  data : data;
  mutable shadow : shadow option;  (** allocated on first monitored access *)
  mutable excl_epoch : int;
      (** epoch in which this buffer is excluded from monitoring
          (induction variables, privatized and reduction storage) *)
}

val alloc : Ast.typ -> int -> buf

(** Fresh zeroed buffer with the same element type as an existing
    one. *)
val alloc_like : buf -> int -> buf

val length : buf -> int

(** Read/write one element, converting to/from the simulator's
    {!Sim.Value.value} at the boundary.  Writes convert to the
    buffer's declared type exactly as the simulator's typed [set]
    does (truncation into INTEGER slots, promotion into REAL). *)
val get : buf -> int -> Sim.Value.value

val set : buf -> int -> Sim.Value.value -> unit

val to_float : buf -> int -> float

(** Get-or-allocate the shadow arrays. *)
val shadow_of : buf -> shadow

(** {2 Slots: how frames view storage} *)

type cell = { cbuf : buf; coff : int }

type arr = { abuf : buf; base : int; bounds : (int * int) list }

type slot = Scalar of cell | Arr of arr

val get_cell : cell -> Sim.Value.value
val set_cell : cell -> Sim.Value.value -> unit

(** Column-major linearization with the final storage-bounds check,
    same rules as the simulator ABI.
    @raise Failure on subscript count mismatch or out-of-bounds *)
val offset : arr -> int list -> int

(** [copy_into dst src] — blit [src]'s elements over [dst] (same
    length, same type expected). *)
val copy_into : buf -> buf -> unit
