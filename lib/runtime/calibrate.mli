(** Fit the performance estimator's machine model to this machine.

    Runs programs on the real runtime (one domain, so scheduling noise
    stays out of the samples), pairs each program's dynamic operation
    counts with its best-of-[repeat] wall-clock time, and hands the
    samples to {!Perf.Machine.calibrate} for the least-squares fit.
    The result is a machine description whose per-op weights reflect
    the interpreter running here, making predicted speedups comparable
    with measured ones. *)

open Fortran_front

(** [sample prog] — (dynamic op counts, best wall seconds) over
    [repeat] runs (default 3). *)
val sample : ?repeat:int -> Ast.program -> Perf.Machine.op_counts * float

(** [fit progs] — calibrated machine from one sample per program,
    starting from [base] (default {!Perf.Machine.default}). *)
val fit : ?base:Perf.Machine.t -> ?repeat:int -> Ast.program list -> Perf.Machine.t
