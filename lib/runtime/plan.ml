open Fortran_front
open Scalar_analysis
open Dependence

type t = {
  p_iv : string;
  p_privates : string list;
  p_inductions : (string * int) list;
  p_reductions : (string * Varclass.reduction_op) list;
  p_arrays : string list;
}

let trivial iv =
  {
    p_iv = iv;
    p_privates = [];
    p_inductions = [];
    p_reductions = [];
    p_arrays = [];
  }

let of_loop (env : Depenv.t) (lp : Loopnest.loop) =
  let iv = lp.Loopnest.header.Ast.dvar in
  let classes =
    Varclass.classify ~cfg:env.Depenv.cfg env.Depenv.ctx env.Depenv.liveness
      lp.Loopnest.lstmt
  in
  let privates, inductions, reductions =
    List.fold_left
      (fun (ps, is, rs) (v, c) ->
        if String.equal v iv then (ps, is, rs)
        else
          match c with
          | Varclass.Private _ -> (v :: ps, is, rs)
          | Varclass.Induction { stride = Some l } -> (
            (* an auxiliary induction is only executable in parallel
               when its per-iteration stride is a known constant: the
               runtime then materializes the closed form.  Varclass
               only emits constant strides today; anything else falls
               back to a plain private copy. *)
            match Symbolic.Linear.is_const l with
            | Some c -> (ps, (v, c) :: is, rs)
            | None -> (v :: ps, is, rs))
          | Varclass.Induction { stride = None } -> (v :: ps, is, rs)
          | Varclass.Reduction op -> (ps, is, (v, op) :: rs)
          | Varclass.Shared_safe | Varclass.Shared_unsafe -> (ps, is, rs))
      ([], [], []) (Varclass.all classes)
  in
  {
    p_iv = iv;
    p_privates = List.rev privates;
    p_inductions = List.rev inductions;
    p_reductions = List.rev reductions;
    p_arrays = Arrayprivate.in_loop env lp.Loopnest.lstmt.Ast.sid;
  }

let build (program : Ast.program) =
  let plans = Hashtbl.create 16 in
  List.iter
    (fun (u : Ast.program_unit) ->
      let has_parallel =
        Ast.fold_stmts
          (fun acc (s : Ast.stmt) ->
            acc
            || match s.Ast.node with
               | Ast.Do (h, _) -> h.Ast.parallel
               | _ -> false)
          false u.Ast.body
      in
      if has_parallel then begin
        let env = Depenv.make u in
        List.iter
          (fun (lp : Loopnest.loop) ->
            if lp.Loopnest.header.Ast.parallel then
              Hashtbl.replace plans lp.Loopnest.lstmt.Ast.sid (of_loop env lp))
          (Loopnest.loops env.Depenv.nest)
      end)
    program.Ast.punits;
  plans
