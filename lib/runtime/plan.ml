open Fortran_front
open Scalar_analysis
open Dependence

type t = {
  p_iv : string;
  p_privates : string list;
  p_reductions : (string * Varclass.reduction_op) list;
  p_arrays : string list;
}

let trivial iv = { p_iv = iv; p_privates = []; p_reductions = []; p_arrays = [] }

let of_loop (env : Depenv.t) (lp : Loopnest.loop) =
  let iv = lp.Loopnest.header.Ast.dvar in
  let classes =
    Varclass.classify ~cfg:env.Depenv.cfg env.Depenv.ctx env.Depenv.liveness
      lp.Loopnest.lstmt
  in
  let privates, reductions =
    List.fold_left
      (fun (ps, rs) (v, c) ->
        if String.equal v iv then (ps, rs)
        else
          match c with
          | Varclass.Private _ | Varclass.Induction _ -> (v :: ps, rs)
          | Varclass.Reduction op -> (ps, (v, op) :: rs)
          | Varclass.Shared_safe | Varclass.Shared_unsafe -> (ps, rs))
      ([], []) (Varclass.all classes)
  in
  {
    p_iv = iv;
    p_privates = List.rev privates;
    p_reductions = List.rev reductions;
    p_arrays = Arrayprivate.in_loop env lp.Loopnest.lstmt.Ast.sid;
  }

let build (program : Ast.program) =
  let plans = Hashtbl.create 16 in
  List.iter
    (fun (u : Ast.program_unit) ->
      let has_parallel =
        Ast.fold_stmts
          (fun acc (s : Ast.stmt) ->
            acc
            || match s.Ast.node with
               | Ast.Do (h, _) -> h.Ast.parallel
               | _ -> false)
          false u.Ast.body
      in
      if has_parallel then begin
        let env = Depenv.make u in
        List.iter
          (fun (lp : Loopnest.loop) ->
            if lp.Loopnest.header.Ast.parallel then
              Hashtbl.replace plans lp.Loopnest.lstmt.Ast.sid (of_loop env lp))
          (Loopnest.loops env.Depenv.nest)
      end)
    program.Ast.punits;
  plans
