(** Matching runtime validator conflicts back to static predictions.

    The static analysis predicts cross-iteration conflicts: every
    dependence carried by a loop names a (loop, variable, kind)
    triple.  Feeding those predictions into a table lets the runtime
    validator tag each observed conflict with the dependence id that
    predicted it — or flag it {e unpredicted}, a soundness signal. *)

type t

val create : unit -> t

(** [add t ~loop ~var ~kind ~dep] — dependence [dep] predicts a [kind]
    conflict on [var] in the loop with statement id [loop].  The first
    prediction for a triple wins (lowest dep id when added in id
    order). *)
val add : t -> loop:int -> var:string -> kind:string -> dep:int -> unit

(** The dependence id predicting this conflict, if any. *)
val find : t -> loop:int -> var:string -> kind:string -> int option
