type outcome = Disproved | Proven | Assumed

type assumption =
  | Unknown_trip of string
  | Asserted_trip of string
  | Raw_bounds of string
  | Nonlinear_dim of int
  | May_alias of string * string
  | Call_summary of string
  | Unnormalized

type t = {
  tier : string;
  outcome : outcome;
  pair : (string * string) option;
  loops : string array;
  assumptions : assumption list;
}

let outcome_to_string = function
  | Disproved -> "disproved"
  | Proven -> "proven"
  | Assumed -> "assumed"

let assumption_to_string = function
  | Unknown_trip l -> Printf.sprintf "trip count of loop %s is unknown" l
  | Asserted_trip l ->
    Printf.sprintf
      "trip count of loop %s comes from a user-asserted range (upper bound \
       only)"
      l
  | Raw_bounds l ->
    Printf.sprintf
      "loop %s has non-affine bounds (raw mode: unbounded iteration range)" l
  | Nonlinear_dim i ->
    Printf.sprintf
      "subscript dimension %d is nonlinear or has un-cancellable symbols" i
  | May_alias (a, b) ->
    Printf.sprintf "%s and %s may overlap at an unknown offset" a b
  | Call_summary a ->
    Printf.sprintf
      "%s's reference is an interprocedural Mod/Ref summary of a CALL" a
  | Unnormalized -> "the common loop nest could not be normalized"

let simple ~tier outcome =
  { tier; outcome; pair = None; loops = [||]; assumptions = [] }

let pp ppf t =
  Format.fprintf ppf "%s (%s)" t.tier (outcome_to_string t.outcome);
  match t.pair with
  | Some (s, d) -> Format.fprintf ppf " %s -> %s" s d
  | None -> ()
