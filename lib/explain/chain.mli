(** Rendering a provenance record as an indented "why" chain.

    The editor prints one header line per edge (or per disproved pair)
    and hangs these lines underneath — the full decision chain the
    [why] and [explain] commands show. *)

(** [render p] — the chain lines (without trailing newlines), each
    already indented two spaces: deciding tier and outcome, the tested
    reference pair, the common loops, and every assumption consulted. *)
val render : Provenance.t -> string list

(** [render_to_string ~header p] — [header] followed by the chain,
    newline-joined. *)
val render_to_string : header:string -> Provenance.t -> string
