(** The analysis-precision dashboard's accumulator.

    Tallies dependence decisions per deciding tier — disproved pairs,
    assumed edges, proven edges — plus, when a differential oracle ran,
    the spurious edges (assumed but never realized by any execution)
    attributed to the tier that failed to disprove them.  [bench
    precision] folds a whole workload corpus into one of these and
    serializes it as BENCH_precision.json. *)

type t

val create : unit -> t

(** [add t ~tier outcome n] — count [n] pairs decided by [tier]. *)
val add : t -> tier:string -> Provenance.outcome -> int -> unit

(** [add_spurious t ~tier n] — [n] oracle-refuted edges whose deciding
    tier was [tier]. *)
val add_spurious : t -> tier:string -> int -> unit

(** [merge dst src] — fold [src]'s tallies into [dst]. *)
val merge : t -> t -> unit

(** [(tier, disproved, assumed, proven, spurious)] rows, sorted by
    tier name. *)
val rows : t -> (string * int * int * int * int) list

val total_edges : t -> int  (** assumed + proven *)

(** Assumed edges over all edges; 0 when there are none. *)
val assumed_fraction : t -> float

(** The dashboard as a JSON object: per-tier counts, totals, and the
    assumed fraction. *)
val to_json : t -> string
