let render (p : Provenance.t) : string list =
  let decided =
    Printf.sprintf "  decided by: %s (%s)" p.Provenance.tier
      (Provenance.outcome_to_string p.Provenance.outcome)
  in
  let pair =
    match p.Provenance.pair with
    | Some (s, d) -> [ Printf.sprintf "  refs: %s -> %s" s d ]
    | None -> []
  in
  let loops =
    if Array.length p.Provenance.loops = 0 then []
    else
      [ Printf.sprintf "  common loops: %s"
          (String.concat ", " (Array.to_list p.Provenance.loops)) ]
  in
  let assumptions =
    match p.Provenance.assumptions with
    | [] -> []
    | l ->
      "  assumptions:"
      :: List.map
           (fun a -> "    - " ^ Provenance.assumption_to_string a)
           l
  in
  (decided :: pair) @ loops @ assumptions

let render_to_string ~header p = String.concat "\n" (header :: render p)
