(** Decision provenance — the "why" behind every dependence decision.

    Each reference pair the dependence tester examines yields one
    provenance record: which test tier decided it, with what outcome,
    and which assumptions the decision consulted (unknown symbolic
    bounds, user-asserted ranges, interprocedural call summaries, ...).
    The record is pure data — strings, ints, arrays — so it survives
    the engine's bucket cache byte-identically: a cached replay and a
    from-scratch analysis of the same unit carry equal provenance.

    The layer is deliberately dependency-free: the dependence machinery
    fills records in, the editor renders them ({!Chain}), and the
    precision dashboard aggregates them ({!Precision}). *)

(** How the deciding tier left the pair. *)
type outcome =
  | Disproved  (** no dependence — the pair lands in the no-dep table *)
  | Proven     (** dependence proven to exist (editor mark: proven) *)
  | Assumed    (** dependence assumed conservatively (mark: pending) *)

(** An input the decision consulted that weakened or conditioned it.
    Loop-shaped assumptions name the loop's induction variable. *)
type assumption =
  | Unknown_trip of string  (** loop trip count not a known constant *)
  | Asserted_trip of string
      (** trip bounded only by a user-asserted range: sound for
          disproofs, existence cannot be proven from it *)
  | Raw_bounds of string
      (** loop lower bound not affine (raw mode): the iteration
          variable ranges over all integers in the tests *)
  | Nonlinear_dim of int
      (** 1-based subscript dimension that was nonlinear or carried
          un-cancellable symbols — it constrains nothing *)
  | May_alias of string * string
      (** the two arrays may overlap at an unknown offset *)
  | Call_summary of string
      (** the named array's reference is an interprocedural Mod/Ref
          summary of a CALL, not a source subscript *)
  | Unnormalized
      (** the common loop nest could not be normalized; dependence
          assumed in all directions *)

type t = {
  tier : string;
      (** deciding test: a disproving tier name ([ziv], [strong-siv],
          [gcd], [banerjee], ...) for {!Disproved}; [siv] / [delta] /
          [banerjee] / [unanalyzable] for surviving array pairs;
          [scalar] / [def-use] / [order] / [control] for non-array
          edges *)
  outcome : outcome;
  pair : (string * string) option;
      (** the tested source/destination references, rendered *)
  loops : string array;  (** common loops, outermost first *)
  assumptions : assumption list;
}

val outcome_to_string : outcome -> string
val assumption_to_string : assumption -> string

(** A record with no pair, no loops, no assumptions — the shape of
    scalar, def-use, order and control edges. *)
val simple : tier:string -> outcome -> t

val pp : Format.formatter -> t -> unit
