type tally = {
  mutable disproved : int;
  mutable assumed : int;
  mutable proven : int;
  mutable spurious : int;
}

type t = (string, tally) Hashtbl.t

let create () : t = Hashtbl.create 16

let tally (t : t) tier =
  match Hashtbl.find_opt t tier with
  | Some x -> x
  | None ->
    let x = { disproved = 0; assumed = 0; proven = 0; spurious = 0 } in
    Hashtbl.replace t tier x;
    x

let add t ~tier (o : Provenance.outcome) n =
  let x = tally t tier in
  match o with
  | Provenance.Disproved -> x.disproved <- x.disproved + n
  | Provenance.Assumed -> x.assumed <- x.assumed + n
  | Provenance.Proven -> x.proven <- x.proven + n

let add_spurious t ~tier n =
  let x = tally t tier in
  x.spurious <- x.spurious + n

let merge (dst : t) (src : t) =
  Hashtbl.iter
    (fun tier x ->
      let d = tally dst tier in
      d.disproved <- d.disproved + x.disproved;
      d.assumed <- d.assumed + x.assumed;
      d.proven <- d.proven + x.proven;
      d.spurious <- d.spurious + x.spurious)
    src

let rows (t : t) =
  Hashtbl.fold
    (fun tier x acc -> (tier, x.disproved, x.assumed, x.proven, x.spurious) :: acc)
    t []
  |> List.sort compare

let totals t =
  List.fold_left
    (fun (d, a, p, s) (_, dis, asm, prv, spu) ->
      (d + dis, a + asm, p + prv, s + spu))
    (0, 0, 0, 0) (rows t)

let total_edges t =
  let _, a, p, _ = totals t in
  a + p

let assumed_fraction t =
  let _, a, p, _ = totals t in
  if a + p = 0 then 0.0 else float_of_int a /. float_of_int (a + p)

let to_json t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n  \"tiers\": {\n";
  let row_strings =
    List.map
      (fun (tier, dis, asm, prv, spu) ->
        Printf.sprintf
          "    %S: {\"disproved\": %d, \"assumed\": %d, \"proven\": %d, \
           \"spurious\": %d}"
          tier dis asm prv spu)
      (rows t)
  in
  Buffer.add_string buf (String.concat ",\n" row_strings);
  let dis, asm, prv, spu = totals t in
  Buffer.add_string buf
    (Printf.sprintf
       "\n  },\n  \"disproved\": %d,\n  \"assumed\": %d,\n  \"proven\": %d,\n\
       \  \"spurious\": %d,\n  \"assumed_fraction\": %.4f\n}"
       dis asm prv spu (assumed_fraction t));
  Buffer.contents buf
