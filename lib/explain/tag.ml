type t = (int * string * string, int) Hashtbl.t

let create () : t = Hashtbl.create 16

let add (t : t) ~loop ~var ~kind ~dep =
  let key = (loop, var, kind) in
  if not (Hashtbl.mem t key) then Hashtbl.replace t key dep

let find (t : t) ~loop ~var ~kind = Hashtbl.find_opt t (loop, var, kind)
