(** The workload suite — miniature Fortran programs, each exhibiting a
    phenomenon from the ParaScope Editor literature (stencils,
    recurrences, reductions, symbolic bounds, index arrays, calls in
    loops...).  Every program is self-contained and runnable on the
    simulator: it initializes its data, computes, and PRINTs checksums
    the tests compare across transformations. *)

open Fortran_front

type t = {
  name : string;
  description : string;
  phenomenon : string;   (** what the kernel exercises *)
  source : string;       (** complete Fortran source *)
  main_loops : int;      (** DO loops in the main unit *)
  main_parallel : int;
      (** of those, how many full analysis (with interprocedural
          support) proves parallelizable — the tests pin this *)
  assertion_script : string list;
      (** editor commands (assertions/markings) that unlock more
          parallelism, empty when none apply *)
}

val all : t list
val by_name : string -> t option
val names : string list

(** Parsed program (fresh statement ids each call). *)
val program : t -> Ast.program

(** The main unit's name. *)
val main_unit : t -> string

(** {2 Generated stress workloads}

    The oracle's stress factory ({!Oracle.Stress}), registered beside
    the curated suite (not inside [all]: the kernels pin loop counts
    and simulator outcomes, stress programs are sized for analysis
    pressure).  Addressable wherever a workload name is accepted as
    ["stress:PROFILE[@SCALE]"] — e.g. ["stress:deep"],
    ["stress:many-units@0.2"].  SCALE is a positive float or a named
    size: [tiny] (0.05), [smoke] (0.15), [full] (1.0). *)

val is_stress_name : string -> bool

(** ["stress:deep"; "stress:wide"; "stress:many-units"]. *)
val stress_names : string list

(** [stress ?seed name] — generate the named stress program
    (deterministic in [(seed, name)], canonical statement ids). *)
val stress : ?seed:int -> string -> (Ast.program, string) result
