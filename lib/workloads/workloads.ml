open Fortran_front

type t = {
  name : string;
  description : string;
  phenomenon : string;
  source : string;
  main_loops : int;
  main_parallel : int;
  assertion_script : string list;
}

let matmul =
  {
    name = "matmul";
    description = "dense matrix multiply, K outermost";
    phenomenon = "perfect nest; interchange moves parallelism outward";
    main_loops = 7;
    main_parallel = 6;
    assertion_script = [];
    source =
      {|
      PROGRAM MATMUL
      INTEGER N
      PARAMETER (N = 24)
      REAL A(N,N), B(N,N), C(N,N)
      INTEGER I, J, K
      REAL S
      DO I = 1, N
        DO J = 1, N
          A(I,J) = FLOAT(I+J) / FLOAT(N)
          B(I,J) = FLOAT(I-J) / FLOAT(N)
          C(I,J) = 0.0
        ENDDO
      ENDDO
      DO K = 1, N
        DO I = 1, N
          DO J = 1, N
            C(I,J) = C(I,J) + A(I,K) * B(K,J)
          ENDDO
        ENDDO
      ENDDO
      S = 0.0
      DO I = 1, N
        DO J = 1, N
          S = S + C(I,J)
        ENDDO
      ENDDO
      PRINT *, S
      END
|};
  }

let jacobi =
  {
    name = "jacobi";
    description = "5-point Jacobi relaxation with two grids";
    phenomenon = "stencil on separate arrays: inner nests fully parallel";
    main_loops = 9;
    main_parallel = 8;
    assertion_script = [];
    source =
      {|
      PROGRAM JACOBI
      INTEGER N, ITERS
      PARAMETER (N = 24, ITERS = 4)
      REAL U(N,N), V(N,N)
      INTEGER I, J, T
      REAL S
      DO I = 1, N
        DO J = 1, N
          U(I,J) = FLOAT(I*J) / FLOAT(N*N)
          V(I,J) = 0.0
        ENDDO
      ENDDO
      DO T = 1, ITERS
        DO I = 2, N-1
          DO J = 2, N-1
            V(I,J) = 0.25 * (U(I-1,J) + U(I+1,J) + U(I,J-1) + U(I,J+1))
          ENDDO
        ENDDO
        DO I = 2, N-1
          DO J = 2, N-1
            U(I,J) = V(I,J)
          ENDDO
        ENDDO
      ENDDO
      S = 0.0
      DO I = 1, N
        DO J = 1, N
          S = S + U(I,J)
        ENDDO
      ENDDO
      PRINT *, S
      END
|};
  }

let sor =
  {
    name = "sor";
    description = "Gauss-Seidel relaxation, in place";
    phenomenon = "wavefront recurrence: skew + interchange parallelizes";
    main_loops = 7;
    main_parallel = 4;
    assertion_script = [];
    source =
      {|
      PROGRAM SOR
      INTEGER N, ITERS
      PARAMETER (N = 48, ITERS = 2)
      REAL A(0:N+1,0:N+1)
      INTEGER I, J, T
      REAL S
      DO I = 0, N+1
        DO J = 0, N+1
          A(I,J) = FLOAT(I+2*J) / FLOAT(N)
        ENDDO
      ENDDO
      DO T = 1, ITERS
        DO I = 1, N
          DO J = 1, N
            A(I,J) = 0.25 * (A(I-1,J) + A(I+1,J) + A(I,J-1) + A(I,J+1))
          ENDDO
        ENDDO
      ENDDO
      S = 0.0
      DO I = 1, N
        DO J = 1, N
          S = S + A(I,J)
        ENDDO
      ENDDO
      PRINT *, S
      END
|};
  }

let recur =
  {
    name = "recur";
    description = "first-order linear recurrence mixed with parallel work";
    phenomenon = "distribution isolates the recurrence";
    main_loops = 3;
    main_parallel = 2;
    assertion_script = [];
    source =
      {|
      PROGRAM RECUR
      INTEGER N
      PARAMETER (N = 512)
      REAL X(N), Y(N), B(N), C(N), D(N)
      INTEGER I
      REAL S
      DO I = 1, N
        B(I) = 0.5
        C(I) = FLOAT(I) / FLOAT(N)
        D(I) = 1.0
      ENDDO
      X(1) = 1.0
      Y(1) = 1.0
      DO I = 2, N
        X(I) = X(I-1) * B(I) + C(I)
        Y(I) = X(I) + D(I)
      ENDDO
      S = 0.0
      DO I = 1, N
        S = S + X(I) + Y(I)
      ENDDO
      PRINT *, S
      END
|};
  }

let daxpy =
  {
    name = "daxpy";
    description = "BLAS-1 style vector update and scale";
    phenomenon = "trivially parallel; adjacent loops fusable";
    main_loops = 4;
    main_parallel = 4;
    assertion_script = [];
    source =
      {|
      PROGRAM DAXPY
      INTEGER N
      PARAMETER (N = 1024)
      REAL X(N), Y(N), Z(N), A
      INTEGER I
      REAL S
      A = 2.5
      DO I = 1, N
        X(I) = FLOAT(I) / FLOAT(N)
        Y(I) = FLOAT(N - I) / FLOAT(N)
      ENDDO
      DO I = 1, N
        Y(I) = Y(I) + A * X(I)
      ENDDO
      DO I = 1, N
        Z(I) = 2.0 * Y(I)
      ENDDO
      S = 0.0
      DO I = 1, N
        S = S + Z(I)
      ENDDO
      PRINT *, S
      END
|};
  }

let tridiag =
  {
    name = "tridiag";
    description = "Thomas algorithm for a tridiagonal system";
    phenomenon = "genuine sequential recurrences (negative control)";
    main_loops = 4;
    main_parallel = 2;
    assertion_script = [];
    source =
      {|
      PROGRAM TRIDIA
      INTEGER N
      PARAMETER (N = 256)
      REAL A(N), B(N), C(N), D(N), X(N)
      INTEGER I
      REAL RM, S
      DO I = 1, N
        A(I) = 1.0
        B(I) = 4.0
        C(I) = 1.0
        D(I) = FLOAT(I)
      ENDDO
      DO I = 2, N
        RM = A(I) / B(I-1)
        B(I) = B(I) - RM * C(I-1)
        D(I) = D(I) - RM * D(I-1)
      ENDDO
      X(N) = D(N) / B(N)
      DO I = N-1, 1, -1
        X(I) = (D(I) - C(I) * X(I+1)) / B(I)
      ENDDO
      S = 0.0
      DO I = 1, N
        S = S + X(I)
      ENDDO
      PRINT *, S
      END
|};
  }

let sumred =
  {
    name = "sumred";
    description = "inner product plus running max/min";
    phenomenon = "scalar reductions (sum, max, min) recognized";
    main_loops = 2;
    main_parallel = 2;
    assertion_script = [];
    source =
      {|
      PROGRAM SUMRED
      INTEGER N
      PARAMETER (N = 2048)
      REAL A(N), B(N)
      INTEGER I
      REAL S, AMX, AMN
      DO I = 1, N
        A(I) = SIN(FLOAT(I))
        B(I) = COS(FLOAT(I))
      ENDDO
      S = 0.0
      AMX = -1.0E9
      AMN = 1.0E9
      DO I = 1, N
        S = S + A(I) * B(I)
        AMX = MAX(AMX, A(I))
        AMN = MIN(AMN, B(I))
      ENDDO
      PRINT *, S, AMX, AMN
      END
|};
  }

let symbounds =
  {
    name = "symbounds";
    description = "shifted vector update with a symbolic offset";
    phenomenon = "symbolic term blocks analysis; a value assertion unlocks it";
    main_loops = 1;
    main_parallel = 1;
    assertion_script = [ "unit SHIFT"; "assert M = 64" ];
    source =
      {|
      PROGRAM SYMBND
      INTEGER N
      PARAMETER (N = 64)
      REAL A(2*N), B(2*N)
      INTEGER I, M
      REAL S
      COMMON /CFG/ M
      M = N
      CALL SETUP(A, B, 2*N)
      CALL SHIFT(A, B, N)
      S = 0.0
      DO I = 1, 2*N
        S = S + A(I)
      ENDDO
      PRINT *, S
      END
      SUBROUTINE SETUP(A, B, N2)
      INTEGER N2, I
      REAL A(N2), B(N2)
      DO I = 1, N2
        A(I) = FLOAT(I)
        B(I) = FLOAT(N2 - I)
      ENDDO
      END
      SUBROUTINE SHIFT(A, B, N)
      INTEGER N, M, I
      REAL A(N+N), B(N+N)
      COMMON /CFG/ M
      DO I = 1, N
        A(I) = A(I+M) + B(I)
      ENDDO
      END
|};
  }

let indexarr =
  {
    name = "indexarr";
    description = "scatter/gather through a permutation index array";
    phenomenon = "index-array subscripts need a user assertion (permutation)";
    main_loops = 3;
    main_parallel = 2;
    assertion_script = [ "assert perm IDX" ];
    source =
      {|
      PROGRAM IDXARR
      INTEGER N
      PARAMETER (N = 256)
      REAL A(N), B(N)
      INTEGER IDX(N)
      INTEGER I
      REAL S
      DO I = 1, N
        IDX(I) = N + 1 - I
        A(I) = 0.0
        B(I) = FLOAT(I)
      ENDDO
      DO I = 1, N
        A(IDX(I)) = A(IDX(I)) + B(I)
      ENDDO
      S = 0.0
      DO I = 1, N
        S = S + A(I)
      ENDDO
      PRINT *, S
      END
|};
  }

let callnest =
  {
    name = "callnest";
    description = "loops whose bodies are procedure calls on rows";
    phenomenon =
      "interprocedural Mod/Ref + regular sections prove call rows disjoint";
    main_loops = 3;
    main_parallel = 3;
    assertion_script = [];
    source =
      {|
      PROGRAM CALLNE
      INTEGER N, M
      PARAMETER (N = 24, M = 24)
      REAL A(N,M), ROWSUM(N)
      INTEGER I
      REAL S
      DO I = 1, N
        CALL INITRO(A, N, M, I)
      ENDDO
      DO I = 1, N
        CALL ROWOP(A, ROWSUM, N, M, I)
      ENDDO
      S = 0.0
      DO I = 1, N
        S = S + ROWSUM(I)
      ENDDO
      PRINT *, S
      END
      SUBROUTINE INITRO(A, N, M, I)
      INTEGER N, M, I, J
      REAL A(N,M)
      DO J = 1, M
        A(I,J) = FLOAT(I+J) / FLOAT(N)
      ENDDO
      END
      SUBROUTINE ROWOP(A, R, N, M, I)
      INTEGER N, M, I, J
      REAL A(N,M), R(N)
      R(I) = 0.0
      DO J = 1, M
        A(I,J) = A(I,J) * 2.0
        R(I) = R(I) + A(I,J)
      ENDDO
      END
|};
  }


let arrpriv =
  {
    name = "arrpriv";
    description = "column sweep through a reused work array";
    phenomenon =
      "array privatization (the slab2d case): the work array is rewritten \
       every iteration, so the outer loop parallelizes";
    main_loops = 7;
    main_parallel = 7;
    assertion_script = [];
    source =
      {|
      PROGRAM ARPRIV
      INTEGER N, M
      PARAMETER (N = 16, M = 16)
      REAL A(N,M), W(M)
      INTEGER I, J
      REAL S
      DO I = 1, N
        DO J = 1, M
          A(I,J) = FLOAT(I*J) / FLOAT(N)
        ENDDO
      ENDDO
      DO I = 1, N
        DO J = 1, M
          W(J) = A(I,J) * 2.0
        ENDDO
        DO J = 1, M
          A(I,J) = W(J) + 1.0
        ENDDO
      ENDDO
      S = 0.0
      DO I = 1, N
        DO J = 1, M
          S = S + A(I,J)
        ENDDO
      ENDDO
      PRINT *, S
      END
|};
  }

let redblack =
  {
    name = "redblack";
    description = "red-black Gauss-Seidel (stride-2 sweeps)";
    phenomenon = "strided subscripts: strong SIV disproves cross-color deps";
    main_loops = 5;
    main_parallel = 4;
    assertion_script = [];
    source =
      {|
      PROGRAM REDBLK
      INTEGER N, ITERS
      PARAMETER (N = 32, ITERS = 2)
      REAL A(0:N+1)
      INTEGER I, T
      REAL S
      DO I = 0, N+1
        A(I) = FLOAT(I) / FLOAT(N)
      ENDDO
      DO T = 1, ITERS
        DO I = 1, N-1, 2
          A(I) = 0.5 * (A(I-1) + A(I+1))
        ENDDO
        DO I = 2, N, 2
          A(I) = 0.5 * (A(I-1) + A(I+1))
        ENDDO
      ENDDO
      S = 0.0
      DO I = 0, N+1
        S = S + A(I)
      ENDDO
      PRINT *, S
      END
|};
  }

let gauss =
  {
    name = "gauss";
    description = "Gaussian elimination (no pivoting)";
    phenomenon = "triangular nests: K sequential, update I/J loops parallel";
    main_loops = 7;
    main_parallel = 6;
    assertion_script = [];
    source =
      {|
      PROGRAM GAUSS
      INTEGER N
      PARAMETER (N = 12)
      REAL A(N,N)
      INTEGER I, J, K
      REAL S
      DO I = 1, N
        DO J = 1, N
          A(I,J) = FLOAT(I+J) / FLOAT(N)
        ENDDO
        A(I,I) = A(I,I) + FLOAT(N)
      ENDDO
      DO K = 1, N-1
        DO I = K+1, N
          A(I,K) = A(I,K) / A(K,K)
        ENDDO
        DO I = K+1, N
          DO J = K+1, N
            A(I,J) = A(I,J) - A(I,K) * A(K,J)
          ENDDO
        ENDDO
      ENDDO
      S = 0.0
      DO I = 1, N
        S = S + A(I,I)
      ENDDO
      PRINT *, S
      END
|};
  }

let linesweep =
  {
    name = "linesweep";
    description = "ADI-style line sweeps in both grid directions";
    phenomenon =
      "recurrence along one dimension only: the other dimension's loop \
       parallelizes in each sweep";
    main_loops = 9;
    main_parallel = 6;
    assertion_script = [];
    source =
      {|
      PROGRAM LINES
      INTEGER N
      PARAMETER (N = 16)
      REAL U(N,N)
      INTEGER I, J, T
      REAL S
      DO I = 1, N
        DO J = 1, N
          U(I,J) = FLOAT(I+J) / FLOAT(N)
        ENDDO
      ENDDO
      DO T = 1, 2
        DO J = 1, N
          DO I = 2, N
            U(I,J) = 0.5 * (U(I,J) + U(I-1,J))
          ENDDO
        ENDDO
        DO I = 1, N
          DO J = 2, N
            U(I,J) = 0.5 * (U(I,J) + U(I,J-1))
          ENDDO
        ENDDO
      ENDDO
      S = 0.0
      DO I = 1, N
        DO J = 1, N
          S = S + U(I,J)
        ENDDO
      ENDDO
      PRINT *, S
      END
|};
  }

let spec77x =
  {
    name = "spec77x";
    description = "miniature multi-unit weather step (columns + diagnostics)";
    phenomenon =
      "whole-program workout: COMMON physics constants, per-column calls \
       (sections), reductions, and a sequential time loop";
    main_loops = 4;
    main_parallel = 3;
    assertion_script = [];
    source =
      {|
      PROGRAM SPEC77
      INTEGER NLON, NLEV, STEPS
      PARAMETER (NLON = 12, NLEV = 8, STEPS = 3)
      REAL T(NLON,NLEV), Q(NLON,NLEV)
      REAL GRAV, CP
      COMMON /PHYS/ GRAV, CP
      INTEGER I, STEP
      REAL HEAT, WET
      GRAV = 9.8
      CP = 1004.0
      DO I = 1, NLON
        CALL INITCO(T, Q, NLON, NLEV, I)
      ENDDO
      DO STEP = 1, STEPS
        DO I = 1, NLON
          CALL COLUMN(T, Q, NLON, NLEV, I)
        ENDDO
      ENDDO
      HEAT = 0.0
      WET = 0.0
      DO I = 1, NLON
        HEAT = HEAT + T(I,1)
        WET = WET + Q(I,NLEV)
      ENDDO
      PRINT *, HEAT, WET
      END
      SUBROUTINE INITCO(T, Q, NLON, NLEV, I)
      INTEGER NLON, NLEV, I, K
      REAL T(NLON,NLEV), Q(NLON,NLEV)
      DO K = 1, NLEV
        T(I,K) = 280.0 + FLOAT(I) - FLOAT(K)
        Q(I,K) = 0.01 * FLOAT(K)
      ENDDO
      END
      SUBROUTINE COLUMN(T, Q, NLON, NLEV, I)
      INTEGER NLON, NLEV, I, K
      REAL T(NLON,NLEV), Q(NLON,NLEV)
      REAL GRAV, CP
      COMMON /PHYS/ GRAV, CP
      REAL FLUX
      FLUX = 0.0
      DO K = 2, NLEV
        FLUX = FLUX + GRAV * Q(I,K-1)
        T(I,K) = T(I,K) + FLUX / CP
        Q(I,K) = Q(I,K) * 0.99
      ENDDO
      END
|};
  }


let sympro =
  {
    name = "sympro";
    description = "offset updates through a propagated constant and a formal";
    phenomenon =
      "one loop needs constant propagation (H = N/2 offset), one needs \
       symbolic analysis (offset through an unknowable formal K)";
    main_loops = 3;
    main_parallel = 3;
    assertion_script = [];
    source =
      {|
      PROGRAM SYMPRO
      INTEGER N, H
      PARAMETER (N = 64)
      REAL A(N), B(N)
      INTEGER I
      REAL S
      H = N / 2
      DO I = 1, N
        A(I) = FLOAT(I)
        B(I) = FLOAT(N - I)
      ENDDO
      DO I = 1, H
        A(I) = A(I+H) * 0.5
      ENDDO
      CALL APPLY(A, B, N, 3)
      CALL APPLY(A, B, N, 5)
      S = 0.0
      DO I = 1, N
        S = S + A(I)
      ENDDO
      PRINT *, S
      END
      SUBROUTINE APPLY(A, B, N, K)
      INTEGER N, K, I
      REAL A(N), B(N)
      DO I = 1, N - 8
        A(I+K) = A(I+K) * 0.9 + B(I) * 0.1
      ENDDO
      END
|};
  }


let shallow =
  {
    name = "shallow";
    description = "shallow-water time step (4 units, halo copies)";
    phenomenon =
      "a small application: stencil updates and boundary copies behind \
       calls, COMMON physics scalars, an energy reduction";
    main_loops = 3;
    main_parallel = 2;
    assertion_script = [];
    source =
      {|
      PROGRAM SHALOW
      INTEGER N, STEPS
      PARAMETER (N = 16, STEPS = 3)
      REAL U(N,N), V(N,N), H(N,N)
      REAL UN(N,N), VN(N,N), HN(N,N)
      REAL DT, DX
      COMMON /GRID/ DT, DX
      INTEGER I, J, T
      REAL TOTE
      DT = 0.01
      DX = 1.0
      CALL START(U, V, H, N)
      DO T = 1, STEPS
        CALL STEPUV(U, V, H, UN, VN, HN, N)
        CALL COPYGR(U, V, H, UN, VN, HN, N)
      ENDDO
      TOTE = 0.0
      DO I = 1, N
        DO J = 1, N
          TOTE = TOTE + H(I,J) + 0.5 * (U(I,J)**2 + V(I,J)**2)
        ENDDO
      ENDDO
      PRINT *, TOTE
      END
      SUBROUTINE START(U, V, H, N)
      INTEGER N, I, J
      REAL U(N,N), V(N,N), H(N,N)
      DO I = 1, N
        DO J = 1, N
          U(I,J) = 0.1 * FLOAT(I - J)
          V(I,J) = 0.05 * FLOAT(I + J)
          H(I,J) = 10.0 + SIN(FLOAT(I)) * COS(FLOAT(J))
        ENDDO
      ENDDO
      END
      SUBROUTINE STEPUV(U, V, H, UN, VN, HN, N)
      INTEGER N, I, J
      REAL U(N,N), V(N,N), H(N,N)
      REAL UN(N,N), VN(N,N), HN(N,N)
      REAL DT, DX
      COMMON /GRID/ DT, DX
      DO I = 2, N-1
        DO J = 2, N-1
          UN(I,J) = U(I,J) - DT / DX * (H(I+1,J) - H(I-1,J)) * 0.5
          VN(I,J) = V(I,J) - DT / DX * (H(I,J+1) - H(I,J-1)) * 0.5
          HN(I,J) = H(I,J) - DT / DX *
     &      (U(I+1,J) - U(I-1,J) + V(I,J+1) - V(I,J-1)) * 0.5
        ENDDO
      ENDDO
      DO I = 1, N
        UN(I,1) = U(I,1)
        VN(I,1) = V(I,1)
        HN(I,1) = H(I,1)
        UN(I,N) = U(I,N)
        VN(I,N) = V(I,N)
        HN(I,N) = H(I,N)
      ENDDO
      DO J = 2, N-1
        UN(1,J) = U(1,J)
        VN(1,J) = V(1,J)
        HN(1,J) = H(1,J)
        UN(N,J) = U(N,J)
        VN(N,J) = V(N,J)
        HN(N,J) = H(N,J)
      ENDDO
      END
      SUBROUTINE COPYGR(U, V, H, UN, VN, HN, N)
      INTEGER N, I, J
      REAL U(N,N), V(N,N), H(N,N)
      REAL UN(N,N), VN(N,N), HN(N,N)
      DO I = 1, N
        DO J = 1, N
          U(I,J) = UN(I,J)
          V(I,J) = VN(I,J)
          H(I,J) = HN(I,J)
        ENDDO
      ENDDO
      END
|};
  }

let all =
  [ matmul; jacobi; sor; recur; daxpy; tridiag; sumred; symbounds; indexarr;
    callnest; arrpriv; redblack; gauss; linesweep; spec77x; sympro; shallow ]

let names = List.map (fun w -> w.name) all

let by_name n = List.find_opt (fun w -> String.equal w.name n) all

let program w = Parser.parse_program ~file:(w.name ^ ".f") w.source

(* ------------------------------------------------------------------ *)
(* generated stress workloads                                          *)
(*                                                                     *)
(* The oracle's stress factory, addressable wherever a workload name   *)
(* is accepted as "stress:PROFILE[@SCALE]" — e.g. "stress:deep",       *)
(* "stress:many-units@0.2".  They are registered beside [all], not in  *)
(* it: the curated suite pins per-kernel loop counts and simulator     *)
(* outcomes, while stress programs are sized for analysis pressure,    *)
(* not for pinning.                                                    *)
(* ------------------------------------------------------------------ *)

let stress_prefix = "stress:"

let is_stress_name n =
  String.length n > String.length stress_prefix
  && String.sub n 0 (String.length stress_prefix) = stress_prefix

let stress_names =
  List.map (fun p -> stress_prefix ^ p.Oracle.Stress.sp_name) Oracle.Stress.all

let stress ?(seed = 42) name =
  if not (is_stress_name name) then
    Error (Printf.sprintf "not a stress workload name: %s" name)
  else
    let rest =
      String.sub name (String.length stress_prefix)
        (String.length name - String.length stress_prefix)
    in
    let pname, scale =
      match String.index_opt rest '@' with
      | None -> (rest, None)
      | Some i ->
        let s = String.sub rest (i + 1) (String.length rest - i - 1) in
        let f =
          (* named sizes for scripts and CI, numeric for everything else *)
          match String.lowercase_ascii s with
          | "tiny" -> Some 0.05
          | "smoke" -> Some 0.15
          | "full" -> Some 1.0
          | _ -> float_of_string_opt s
        in
        (String.sub rest 0 i, f)
    in
    match Oracle.Stress.by_name pname with
    | None ->
      Error
        (Printf.sprintf "unknown stress profile %s (available: %s)" pname
           (String.concat ", " Oracle.Stress.names))
    | Some p -> (
      match (String.contains rest '@', scale) with
      | true, None -> Error (Printf.sprintf "bad scale in %s" name)
      | _, Some f when f <= 0.0 ->
        Error (Printf.sprintf "scale must be positive in %s" name)
      | has_scale, _ ->
        let p =
          if has_scale then Oracle.Stress.scale (Option.get scale) p else p
        in
        Ok (Oracle.Stress.generate ~seed p))

let main_unit w =
  let p = program w in
  match
    List.find_opt (fun (u : Ast.program_unit) -> u.Ast.kind = Ast.Main)
      p.Ast.punits
  with
  | Some u -> u.Ast.uname
  | None -> (List.hd p.Ast.punits).Ast.uname
