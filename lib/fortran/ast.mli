(** Abstract syntax for the Fortran 77 subset.

    Statements carry a unique integer id ({!stmt_id}) assigned by the
    parser (and kept fresh by transformations via {!fresh_sid}); the
    dependence graph and editor use ids as stable endpoints.

    Array references and function calls are both parsed as {!Index}
    nodes; {!Symbol} resolution later distinguishes them (the parser
    cannot: [F(I)] is an array element or a call depending on
    declarations). *)

type typ = Tinteger | Treal | Tdouble | Tlogical

type binop =
  | Add | Sub | Mul | Div | Pow
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or

type unop = Neg | Not

type expr =
  | Int of int
  | Real of float
  | Logic of bool
  | Str of string
  | Var of string                 (** scalar variable reference *)
  | Index of string * expr list   (** array element or function call *)
  | Bin of binop * expr * expr
  | Un of unop * expr

type stmt_id = int

(** DO-loop header.  [step = None] means the default step of 1.
    [parallel] marks the loop as a DOALL: Ped's parallelization
    transformation simply flips this bit once safety is established. *)
type do_header = {
  dvar : string;   (** induction variable *)
  lo : expr;
  hi : expr;
  step : expr option;
  parallel : bool;
}

type stmt = { sid : stmt_id; label : int option; loc : Loc.t; node : stmt_node }

and stmt_node =
  | Assign of expr * expr
      (** lhs is [Var] or [Index]; anything else is a parse error *)
  | If of (expr * stmt list) list * stmt list
      (** branches (condition, body) for IF/ELSE IF...; final else body *)
  | Do of do_header * stmt list
  | Call of string * expr list
  | Goto of int
  | Continue
  | Return
  | Stop
  | Print of expr list

(** A variable or array declaration.  Array dimensions are
    [(lower, upper)] bound pairs; the lower bound defaults to [Int 1]. *)
type decl = {
  dname : string;
  dtyp : typ;
  dims : (expr * expr) list;      (** empty for scalars *)
  init : expr option;             (** PARAMETER value — a true constant *)
  data_init : expr option;        (** DATA value — an initial value only;
                                      the variable remains assignable *)
  common_block : string option;   (** COMMON block name, if any *)
}

type unit_kind =
  | Main
  | Subroutine of string list          (** formal parameter names *)
  | Function of typ * string list

type program_unit = {
  uname : string;
  kind : unit_kind;
  decls : decl list;
  implicit_none : bool;         (** IMPLICIT NONE was given *)
  implicits : (typ * (char * char) list) list;
      (** IMPLICIT REAL (A-H) style rules, in source order *)
  body : stmt list;
}

type program = { punits : program_unit list }

(** {2 Statement-id supply} *)

(** [fresh_sid ()] returns a globally fresh statement id.  The parser
    and all transformations draw from the same supply, so ids never
    collide within a session. *)
val fresh_sid : unit -> stmt_id

(** [reset_sids ()] restarts the supply at 0 — for tests that want
    deterministic ids. *)
val reset_sids : unit -> unit

(** [ensure_sids_above n] raises the supply so no id at or below [n]
    is ever issued again (atomic maximum; safe from any domain). *)
val ensure_sids_above : int -> unit

(** [renumber_program p] reassigns statement ids canonically —
    preorder [1..n] over the whole program — and raises the global
    supply past [n] so subsequent edits cannot collide.  Two parses of
    the same source renumber to structurally identical programs, even
    across processes: the server and batch drivers renumber at session
    open so fingerprint-keyed caches dedup identical units across
    sessions. *)
val renumber_program : program -> program

(** [mk ?label ?loc node] builds a statement with a fresh id. *)
val mk : ?label:int -> ?loc:Loc.t -> stmt_node -> stmt

(** {2 Traversals} *)

(** [fold_stmts f acc stmts] folds [f] over every statement in
    [stmts], recursing into IF branches and DO bodies, in source
    order. *)
val fold_stmts : ('a -> stmt -> 'a) -> 'a -> stmt list -> 'a

val iter_stmts : (stmt -> unit) -> stmt list -> unit

(** [map_stmts f stmts] rebuilds the statement tree bottom-up, applying
    [f] to each statement after its children have been rewritten. *)
val map_stmts : (stmt -> stmt) -> stmt list -> stmt list

(** [find_stmt sid stmts] locates the statement with id [sid]. *)
val find_stmt : stmt_id -> stmt list -> stmt option

(** [fold_expr f acc e] folds [f] over every node of [e], parents
    before children. *)
val fold_expr : ('a -> expr -> 'a) -> 'a -> expr -> 'a

(** Expressions appearing in a statement node itself (not in nested
    statements): the rhs and lhs of assignments, conditions, loop
    bounds, call arguments, print items. *)
val stmt_exprs : stmt_node -> expr list

(** Variables read by an expression (includes index variables and
    names used as [Index] bases). *)
val expr_vars : expr -> string list

(** Structural equality on expressions (ignores nothing — locations are
    not stored in expressions). *)
val expr_equal : expr -> expr -> bool

(** [subst_var name replacement e] substitutes [replacement] for every
    [Var name] occurrence in [e]. *)
val subst_var : string -> expr -> expr -> expr

(** Renames an identifier everywhere it appears in an expression, both
    as a scalar and as an [Index] base. *)
val rename_in_expr : old_name:string -> new_name:string -> expr -> expr

(** {2 Convenience constructors} *)

val int_ : int -> expr
val var : string -> expr
val add : expr -> expr -> expr
val sub : expr -> expr -> expr
val mul : expr -> expr -> expr

(** Simplifies constant arithmetic: folds [Bin] over literal ints,
    drops [+0], [*1], [*0] etc.  Used by transformations to keep
    generated bounds readable. *)
val simplify : expr -> expr
