type typ = Tinteger | Treal | Tdouble | Tlogical

type binop =
  | Add | Sub | Mul | Div | Pow
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or

type unop = Neg | Not

type expr =
  | Int of int
  | Real of float
  | Logic of bool
  | Str of string
  | Var of string
  | Index of string * expr list
  | Bin of binop * expr * expr
  | Un of unop * expr

type stmt_id = int

type do_header = {
  dvar : string;
  lo : expr;
  hi : expr;
  step : expr option;
  parallel : bool;
}

type stmt = { sid : stmt_id; label : int option; loc : Loc.t; node : stmt_node }

and stmt_node =
  | Assign of expr * expr
  | If of (expr * stmt list) list * stmt list
  | Do of do_header * stmt list
  | Call of string * expr list
  | Goto of int
  | Continue
  | Return
  | Stop
  | Print of expr list

type decl = {
  dname : string;
  dtyp : typ;
  dims : (expr * expr) list;
  init : expr option;
  data_init : expr option;
  common_block : string option;
}

type unit_kind =
  | Main
  | Subroutine of string list
  | Function of typ * string list

type program_unit = {
  uname : string;
  kind : unit_kind;
  decls : decl list;
  implicit_none : bool;
  implicits : (typ * (char * char) list) list;
  body : stmt list;
}

type program = { punits : program_unit list }

(* Atomic: the batch/server drivers parse and edit programs from
   several domains at once, and a torn plain-ref increment could hand
   the same id to two statements of one session. *)
let sid_counter = Atomic.make 0

let fresh_sid () = 1 + Atomic.fetch_and_add sid_counter 1

let reset_sids () = Atomic.set sid_counter 0

(* Raise the supply so it never re-issues an id at or below [n]
   (atomic maximum). *)
let ensure_sids_above n =
  let rec go () =
    let cur = Atomic.get sid_counter in
    if cur < n && not (Atomic.compare_and_set sid_counter cur n) then go ()
  in
  go ()

let mk ?label ?(loc = Loc.none) node = { sid = fresh_sid (); label; loc; node }

let rec fold_stmts f acc stmts =
  List.fold_left
    (fun acc s ->
      let acc = f acc s in
      match s.node with
      | If (branches, els) ->
        let acc =
          List.fold_left (fun acc (_, body) -> fold_stmts f acc body) acc branches
        in
        fold_stmts f acc els
      | Do (_, body) -> fold_stmts f acc body
      | Assign _ | Call _ | Goto _ | Continue | Return | Stop | Print _ -> acc)
    acc stmts

let iter_stmts f stmts = fold_stmts (fun () s -> f s) () stmts

let rec map_stmts f stmts =
  List.map
    (fun s ->
      let node =
        match s.node with
        | If (branches, els) ->
          If
            ( List.map (fun (c, body) -> (c, map_stmts f body)) branches,
              map_stmts f els )
        | Do (h, body) -> Do (h, map_stmts f body)
        | (Assign _ | Call _ | Goto _ | Continue | Return | Stop | Print _) as n
          -> n
      in
      f { s with node })
    stmts

(* Canonical ids: preorder 1..n over the whole program.  Two parses of
   the same source — in this process or another — renumber to
   structurally identical programs, which is what lets fingerprint-
   keyed caches dedup work across sessions.  The global supply is
   raised past n so later edits stay collision-free. *)
let renumber_program (p : program) : program =
  let next = ref 0 in
  let fresh () =
    incr next;
    !next
  in
  let rec stmts ss = List.map stmt ss
  and stmt s =
    let sid = fresh () in
    let node =
      match s.node with
      | If (branches, els) ->
        If (List.map (fun (c, body) -> (c, stmts body)) branches, stmts els)
      | Do (h, body) -> Do (h, stmts body)
      | (Assign _ | Call _ | Goto _ | Continue | Return | Stop | Print _) as n
        -> n
    in
    { s with sid; node }
  in
  let p' = { punits = List.map (fun u -> { u with body = stmts u.body }) p.punits } in
  ensure_sids_above !next;
  p'

let find_stmt sid stmts =
  fold_stmts (fun found s -> if s.sid = sid then Some s else found) None stmts

let rec fold_expr f acc e =
  let acc = f acc e in
  match e with
  | Int _ | Real _ | Logic _ | Str _ | Var _ -> acc
  | Index (_, args) -> List.fold_left (fold_expr f) acc args
  | Bin (_, a, b) -> fold_expr f (fold_expr f acc a) b
  | Un (_, a) -> fold_expr f acc a

let stmt_exprs = function
  | Assign (lhs, rhs) -> [ lhs; rhs ]
  | If (branches, _) -> List.map fst branches
  | Do (h, _) -> (
    [ h.lo; h.hi ] @ match h.step with Some s -> [ s ] | None -> [])
  | Call (_, args) -> args
  | Print args -> args
  | Goto _ | Continue | Return | Stop -> []

let expr_vars e =
  let acc =
    fold_expr
      (fun acc e ->
        match e with
        | Var v -> v :: acc
        | Index (v, _) -> v :: acc
        | Int _ | Real _ | Logic _ | Str _ | Bin _ | Un _ -> acc)
      [] e
  in
  List.sort_uniq String.compare acc

let rec expr_equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Real x, Real y -> x = y
  | Logic x, Logic y -> x = y
  | Str x, Str y -> String.equal x y
  | Var x, Var y -> String.equal x y
  | Index (x, xs), Index (y, ys) ->
    String.equal x y
    && List.length xs = List.length ys
    && List.for_all2 expr_equal xs ys
  | Bin (op1, a1, b1), Bin (op2, a2, b2) ->
    op1 = op2 && expr_equal a1 a2 && expr_equal b1 b2
  | Un (op1, a1), Un (op2, a2) -> op1 = op2 && expr_equal a1 a2
  | (Int _ | Real _ | Logic _ | Str _ | Var _ | Index _ | Bin _ | Un _), _ ->
    false

let rec subst_var name repl e =
  match e with
  | Var v when String.equal v name -> repl
  | Int _ | Real _ | Logic _ | Str _ | Var _ -> e
  | Index (b, args) -> Index (b, List.map (subst_var name repl) args)
  | Bin (op, a, b) -> Bin (op, subst_var name repl a, subst_var name repl b)
  | Un (op, a) -> Un (op, subst_var name repl a)

let rec rename_in_expr ~old_name ~new_name e =
  let rn = rename_in_expr ~old_name ~new_name in
  match e with
  | Var v when String.equal v old_name -> Var new_name
  | Index (b, args) ->
    let b = if String.equal b old_name then new_name else b in
    Index (b, List.map rn args)
  | Bin (op, a, b) -> Bin (op, rn a, rn b)
  | Un (op, a) -> Un (op, rn a)
  | Int _ | Real _ | Logic _ | Str _ | Var _ -> e

let int_ n = Int n
let var v = Var v
let add a b = Bin (Add, a, b)
let sub a b = Bin (Sub, a, b)
let mul a b = Bin (Mul, a, b)

let rec simplify e =
  match e with
  | Int _ | Real _ | Logic _ | Str _ | Var _ -> e
  | Index (b, args) -> Index (b, List.map simplify args)
  | Un (Neg, a) -> (
    match simplify a with
    | Int n -> Int (-n)
    | Un (Neg, x) -> x
    | a' -> Un (Neg, a'))
  | Un (Not, a) -> (
    match simplify a with Logic b -> Logic (not b) | a' -> Un (Not, a'))
  | Bin (op, a, b) -> (
    let a = simplify a and b = simplify b in
    match (op, a, b) with
    | Add, Int x, Int y -> Int (x + y)
    | Sub, Int x, Int y -> Int (x - y)
    | Mul, Int x, Int y -> Int (x * y)
    | Div, Int x, Int y when y <> 0 && x mod y = 0 -> Int (x / y)
    | Add, x, Int 0 | Add, Int 0, x -> x
    | Sub, x, Int 0 -> x
    | Mul, x, Int 1 | Mul, Int 1, x -> x
    | Mul, _, Int 0 | Mul, Int 0, _ -> Int 0
    | Div, x, Int 1 -> x
    | Sub, x, y when expr_equal x y -> Int 0
    | _, _, _ -> Bin (op, a, b))
