open Fortran_front
open Dependence

type args =
  | On_loop of Ast.stmt_id
  | On_pair of Ast.stmt_id * Ast.stmt_id
  | With_factor of Ast.stmt_id * int
  | With_var of Ast.stmt_id * string

type entry = {
  name : string;
  describe : string;
  needs : string;
  diagnose : Depenv.t -> Ddg.t -> args -> Diagnosis.t;
  apply : Depenv.t -> Ddg.t -> args -> (Ast.program_unit, Diagnosis.t) result;
}

let bad = Diagnosis.inapplicable "wrong arguments for this transformation"

(* The rewriting functions signal "called on something the diagnosis
   rejected" with [Invalid_argument]; fold that into the same typed
   channel as wrong-shaped arguments. *)
let guard f =
  match f () with
  | u -> Ok u
  | exception Invalid_argument msg -> Error (Diagnosis.inapplicable msg)

let all =
  [
    {
      name = "parallelize";
      describe = "convert a DO loop into a PARALLEL DO";
      needs = "<loop>";
      diagnose =
        (fun env ddg -> function
          | On_loop sid -> Parallelize.diagnose env ddg sid
          | _ -> bad);
      apply =
        (fun env _ -> function
          | On_loop sid -> guard (fun () -> Parallelize.apply env.Depenv.punit sid)
          | _ -> Error bad);
    };
    {
      name = "sequentialize";
      describe = "convert a PARALLEL DO back into a DO";
      needs = "<loop>";
      diagnose =
        (fun env _ -> function
          | On_loop sid -> (
            match Rewrite.find_do env.Depenv.punit sid with
            | Some (_, h, _) when h.Ast.parallel ->
              Diagnosis.make ~notes:[ "always safe" ] ()
            | Some _ -> Diagnosis.inapplicable "loop is not parallel"
            | None -> Diagnosis.inapplicable "not a DO loop")
          | _ -> bad);
      apply =
        (fun env _ -> function
          | On_loop sid ->
            guard (fun () -> Parallelize.apply_sequentialize env.Depenv.punit sid)
          | _ -> Error bad);
    };
    {
      name = "interchange";
      describe = "swap the headers of a perfect loop pair";
      needs = "<outer-loop>";
      diagnose =
        (fun env ddg -> function
          | On_loop sid -> Interchange.diagnose env ddg sid
          | _ -> bad);
      apply =
        (fun env _ -> function
          | On_loop sid -> guard (fun () -> Interchange.apply env.Depenv.punit sid)
          | _ -> Error bad);
    };
    {
      name = "distribute";
      describe = "split a loop along dependence components";
      needs = "<loop>";
      diagnose =
        (fun env ddg -> function
          | On_loop sid -> Distribute.diagnose env ddg sid
          | _ -> bad);
      apply =
        (fun env ddg -> function
          | On_loop sid -> guard (fun () -> Distribute.apply env ddg sid)
          | _ -> Error bad);
    };
    {
      name = "fuse";
      describe = "merge two adjacent conformable loops";
      needs = "<loop> <loop>";
      diagnose =
        (fun env ddg -> function
          | On_pair (a, b) -> Fuse.diagnose env ddg a b
          | _ -> bad);
      apply =
        (fun env _ -> function
          | On_pair (a, b) -> guard (fun () -> Fuse.apply env.Depenv.punit a b)
          | _ -> Error bad);
    };
    {
      name = "reverse";
      describe = "run the loop's iterations backwards";
      needs = "<loop>";
      diagnose =
        (fun env ddg -> function
          | On_loop sid -> Reverse.diagnose env ddg sid
          | _ -> bad);
      apply =
        (fun env _ -> function
          | On_loop sid -> guard (fun () -> Reverse.apply env sid)
          | _ -> Error bad);
    };
    {
      name = "skew";
      describe = "skew the inner loop of a perfect pair by a factor";
      needs = "<outer-loop> <factor>";
      diagnose =
        (fun env ddg -> function
          | With_factor (sid, f) -> Skew.diagnose env ddg sid ~factor:f
          | _ -> bad);
      apply =
        (fun env _ -> function
          | With_factor (sid, f) ->
            guard (fun () -> Skew.apply env.Depenv.punit sid ~factor:f)
          | _ -> Error bad);
    };
    {
      name = "strip";
      describe = "strip-mine a loop into fixed-size blocks";
      needs = "<loop> <block>";
      diagnose =
        (fun env ddg -> function
          | With_factor (sid, b) -> Strip_mine.diagnose env ddg sid ~block:b
          | _ -> bad);
      apply =
        (fun env _ -> function
          | With_factor (sid, b) -> guard (fun () -> Strip_mine.apply env sid ~block:b)
          | _ -> Error bad);
    };
    {
      name = "unroll";
      describe = "unroll a loop by a constant factor";
      needs = "<loop> <factor>";
      diagnose =
        (fun env ddg -> function
          | With_factor (sid, f) -> Unroll.diagnose env ddg sid ~factor:f
          | _ -> bad);
      apply =
        (fun env _ -> function
          | With_factor (sid, f) -> guard (fun () -> Unroll.apply env sid ~factor:f)
          | _ -> Error bad);
    };
    {
      name = "expand";
      describe = "scalar-expand a private temporary into an array";
      needs = "<loop> <variable>";
      diagnose =
        (fun env ddg -> function
          | With_var (sid, v) -> Scalar_expand.diagnose env ddg sid ~var:v
          | _ -> bad);
      apply =
        (fun env _ -> function
          | With_var (sid, v) -> guard (fun () -> Scalar_expand.apply env sid ~var:v)
          | _ -> Error bad);
    };
    {
      name = "indsub";
      describe = "substitute an induction accumulator's closed form";
      needs = "<loop> <variable>";
      diagnose =
        (fun env ddg -> function
          | With_var (sid, v) -> Indsub.diagnose env ddg sid ~var:v
          | _ -> bad);
      apply =
        (fun env _ -> function
          | With_var (sid, v) -> guard (fun () -> Indsub.apply env sid ~var:v)
          | _ -> Error bad);
    };
    {
      name = "rename";
      describe = "split a reused temporary's independent def-use webs";
      needs = "<loop> <variable>";
      diagnose =
        (fun env ddg -> function
          | With_var (sid, v) -> Rename_scalar.diagnose env ddg sid ~var:v
          | _ -> bad);
      apply =
        (fun env _ -> function
          | With_var (sid, v) -> guard (fun () -> Rename_scalar.apply env sid ~var:v)
          | _ -> Error bad);
    };
    {
      name = "coalesce";
      describe = "collapse a perfect nest into one product loop";
      needs = "<outer-loop>";
      diagnose =
        (fun env ddg -> function
          | On_loop sid -> Coalesce.diagnose env ddg sid
          | _ -> bad);
      apply =
        (fun env _ -> function
          | On_loop sid -> guard (fun () -> Coalesce.apply env sid)
          | _ -> Error bad);
    };
    {
      name = "normalize";
      describe = "rewrite a loop to run from 1 with unit stride";
      needs = "<loop>";
      diagnose =
        (fun env ddg -> function
          | On_loop sid -> Normalize_loop.diagnose env ddg sid
          | _ -> bad);
      apply =
        (fun env _ -> function
          | On_loop sid -> guard (fun () -> Normalize_loop.apply env sid)
          | _ -> Error bad);
    };
    {
      name = "tile";
      describe = "tile a perfect loop pair with a block size";
      needs = "<outer-loop> <block>";
      diagnose =
        (fun env ddg -> function
          | With_factor (sid, b) -> Tile.diagnose env ddg sid ~block:b
          | _ -> bad);
      apply =
        (fun env ddg -> function
          | With_factor (sid, b) -> guard (fun () -> Tile.apply env ddg sid ~block:b)
          | _ -> Error bad);
    };
    {
      name = "peel-first";
      describe = "peel the first iteration out of a loop";
      needs = "<loop>";
      diagnose =
        (fun env ddg -> function
          | On_loop sid -> Peel.diagnose env ddg sid ~which:Peel.First
          | _ -> bad);
      apply =
        (fun env _ -> function
          | On_loop sid -> guard (fun () -> Peel.apply env sid ~which:Peel.First)
          | _ -> Error bad);
    };
    {
      name = "peel-last";
      describe = "peel the last iteration out of a loop";
      needs = "<loop>";
      diagnose =
        (fun env ddg -> function
          | On_loop sid -> Peel.diagnose env ddg sid ~which:Peel.Last
          | _ -> bad);
      apply =
        (fun env _ -> function
          | On_loop sid -> guard (fun () -> Peel.apply env sid ~which:Peel.Last)
          | _ -> Error bad);
    };
    {
      name = "swap";
      describe = "interchange two adjacent statements";
      needs = "<stmt> <stmt>";
      diagnose =
        (fun env ddg -> function
          | On_pair (a, b) -> Stmt_interchange.diagnose env ddg a b
          | _ -> bad);
      apply =
        (fun env _ -> function
          | On_pair (a, b) ->
            guard (fun () -> Stmt_interchange.apply env.Depenv.punit a b)
          | _ -> Error bad);
    };
  ]

(* Every diagnose/apply goes through the process-default telemetry
   sink: catalog entries are invoked from editor commands, scripts and
   the fuzzer alike, none of which thread a sink of their own. *)
let instrument e =
  {
    e with
    diagnose =
      (fun env ddg args ->
        Telemetry.span (Telemetry.default ())
          ("transform." ^ e.name ^ ".diagnose")
          (fun () -> e.diagnose env ddg args));
    apply =
      (fun env ddg args ->
        Telemetry.span (Telemetry.default ())
          ("transform." ^ e.name ^ ".apply")
          (fun () -> e.apply env ddg args));
  }

let all = List.map instrument all

let find name =
  List.find_opt (fun e -> String.equal e.name name) all

let names = List.map (fun e -> e.name) all

(* ------------------------------------------------------------------ *)
(* Candidate enumeration                                               *)
(* ------------------------------------------------------------------ *)

(* Statement blocks of the unit: the top-level body, every DO body,
   every IF branch. *)
let rec blocks_of (stmts : Ast.stmt list) : Ast.stmt list list =
  stmts
  :: List.concat_map
       (fun (s : Ast.stmt) ->
         match s.Ast.node with
         | Ast.Do (_, body) -> blocks_of body
         | Ast.If (branches, els) ->
           List.concat_map (fun (_, b) -> blocks_of b) branches
           @ blocks_of els
         | _ -> [])
       stmts

let adjacent_pairs pred (stmts : Ast.stmt list) =
  let rec go = function
    | a :: (b :: _ as rest) ->
      if pred a && pred b then (a.Ast.sid, b.Ast.sid) :: go rest else go rest
    | _ -> []
  in
  go stmts

let sites ?(factors = [ 4 ]) (env : Depenv.t) : (string * args) list =
  let loops = Loopnest.loops env.Depenv.nest in
  let is_do (s : Ast.stmt) =
    match s.Ast.node with Ast.Do _ -> true | _ -> false
  in
  let is_assign (s : Ast.stmt) =
    match s.Ast.node with Ast.Assign _ -> true | _ -> false
  in
  let blocks = blocks_of env.Depenv.punit.Ast.body in
  let fuses =
    List.concat_map (adjacent_pairs is_do) blocks
    |> List.map (fun (a, b) -> ("fuse", On_pair (a, b)))
  in
  let swaps =
    List.concat_map (adjacent_pairs is_assign) blocks
    |> List.map (fun (a, b) -> ("swap", On_pair (a, b)))
  in
  let per_loop (l : Loopnest.loop) =
    let sid = l.Loopnest.lstmt.Ast.sid in
    let body = Loopnest.body_stmts env.Depenv.nest sid in
    let written_scalars =
      List.concat_map
        (fun s -> Scalar_analysis.Defuse.may_defs env.Depenv.ctx s)
        body
      |> List.sort_uniq String.compare
      |> List.filter (fun v ->
             (not (Symbol.is_array env.Depenv.tbl v))
             && not (String.equal v l.Loopnest.header.Ast.dvar))
    in
    List.map (fun n -> (n, On_loop sid))
      [ "parallelize"; "interchange"; "distribute"; "reverse"; "normalize";
        "coalesce"; "peel-first"; "peel-last" ]
    @ List.concat_map
        (fun f ->
          [ ("skew", With_factor (sid, 1)); ("strip", With_factor (sid, f));
            ("unroll", With_factor (sid, f)); ("tile", With_factor (sid, f)) ])
        factors
    @ List.concat_map
        (fun v ->
          [ ("expand", With_var (sid, v)); ("rename", With_var (sid, v));
            ("indsub", With_var (sid, v)) ])
        written_scalars
  in
  fuses @ swaps @ List.concat_map per_loop loops
