open Fortran_front
open Scalar_analysis
open Dependence

let diagnose (env : Depenv.t) (ddg : Ddg.t) sid : Diagnosis.t =
  match Rewrite.find_do env.Depenv.punit sid with
  | None -> Diagnosis.inapplicable "not a DO loop"
  | Some (loop, h, body) ->
    let carried = Ddg.blocking env ddg sid in
    (* any scalar written by the loop (the induction variable included)
       whose value is read afterwards would end with a different value *)
    let live_after = Liveness.live_after env.Depenv.liveness env.Depenv.cfg sid in
    let written =
      h.Ast.dvar
      :: Ast.fold_stmts
           (fun acc s -> Defuse.scalar_writes env.Depenv.ctx s @ acc)
           [] body
    in
    let escapees =
      List.sort_uniq String.compare
        (List.filter (fun v -> List.mem v live_after) written)
    in
    (* auxiliary induction accumulators pair values with iterations by
       execution order: reversal re-pairs them *)
    let aux = Indsub.needed env loop in
    let step_known =
      Depenv.int_at env sid (Option.value ~default:(Ast.Int 1) h.Ast.step)
      <> None
    in
    let safe = carried = [] && escapees = [] && aux = [] && step_known in
    let reasons =
      List.map
        (fun (d : Ddg.dep) ->
          Diagnosis.Dep
            { dep_id = d.Ddg.dep_id;
              text = Format.asprintf "carried %a" Ddg.pp_dep d })
        carried
      @ List.map
          (fun v ->
            Diagnosis.Note
              (Printf.sprintf "%s's final value is observed after the loop" v))
          escapees
      @ List.map (fun v -> Diagnosis.Induction v) aux
      @ (if step_known then []
         else [ Diagnosis.Note "step is not a known constant" ])
    in
    Diagnosis.make ~applicable:true ~safe ~profitable:false ~reasons ()

let apply (env : Depenv.t) sid : Ast.program_unit =
  let u = env.Depenv.punit in
  Rewrite.update_stmt u sid (fun s ->
      match s.Ast.node with
      | Ast.Do (h, body) ->
        let step = Option.value ~default:(Ast.Int 1) h.Ast.step in
        let st =
          match Depenv.int_at env sid step with
          | Some s when s <> 0 -> s
          | _ -> invalid_arg "Reverse.apply: unknown step"
        in
        (* the reversed loop must start on the last value the original
           actually reaches: [hi] only when the stride divides the
           span, lo + ((hi−lo)/st)·st in general.  The naive swap
           (hi, lo, −st) visits the wrong residue class — DO 1,10,2
           reversed is 9,7,5,3,1, not 10,8,6,4,2. *)
        let new_lo, needs_guard =
          if st = 1 || st = -1 then (h.Ast.hi, false)
          else
            match
              (Depenv.int_at env sid h.Ast.lo, Depenv.int_at env sid h.Ast.hi)
            with
            | Some l, Some hv ->
              let trip = (hv - l + st) / st in
              if trip <= 0 then
                (* zero-trip either way: the swap preserves the
                   (empty) iteration set exactly *)
                (h.Ast.hi, false)
              else (Ast.Int (l + ((trip - 1) * st)), false)
            | _ ->
              ( Ast.simplify
                  (Ast.add h.Ast.lo
                     (Ast.mul
                        (Ast.Bin (Ast.Div, Ast.sub h.Ast.hi h.Ast.lo, Ast.Int st))
                        (Ast.Int st))),
                (* the truncating division rounds toward zero, so a
                   zero-trip loop (hi on the wrong side of lo) can
                   yield a start value that executes one spurious
                   iteration — guard the reversed loop with the
                   original loop's emptiness test *)
                true )
        in
        let h' =
          {
            h with
            Ast.lo = new_lo;
            hi = h.Ast.lo;
            step = Some (Ast.Int (-st));
          }
        in
        if needs_guard then begin
          let cond =
            if st > 0 then Ast.Bin (Ast.Le, h.Ast.lo, h.Ast.hi)
            else Ast.Bin (Ast.Ge, h.Ast.lo, h.Ast.hi)
          in
          let inner = Ast.mk ~loc:s.Ast.loc (Ast.Do (h', body)) in
          { s with Ast.node = Ast.If ([ (cond, [ inner ]) ], []) }
        end
        else { s with Ast.node = Ast.Do (h', body) }
      | _ -> s)
