(** The transformation catalog — one uniform entry per transformation,
    used by the editor's command dispatch and the evaluation's
    transformation matrix (Table 4). *)

open Fortran_front
open Dependence

(** Arguments a transformation consumes.  The editor parses user
    input into one of these; a transformation handed the wrong shape
    reports itself inapplicable rather than raising. *)
type args =
  | On_loop of Ast.stmt_id
  | On_pair of Ast.stmt_id * Ast.stmt_id      (** loop or statement pair *)
  | With_factor of Ast.stmt_id * int          (** skew/unroll/strip factor *)
  | With_var of Ast.stmt_id * string          (** scalar expansion target *)

type entry = {
  name : string;        (** command name, e.g. ["interchange"] *)
  describe : string;    (** one-line description for the editor's menu *)
  needs : string;       (** argument syntax help, e.g. ["<loop>"] *)
  diagnose : Depenv.t -> Ddg.t -> args -> Diagnosis.t;
  apply : Depenv.t -> Ddg.t -> args -> (Ast.program_unit, Diagnosis.t) result;
      (** [Error] carries the diagnosis explaining the refusal — both
          "wrong argument shape" and "called on something the
          diagnosis rejected" travel this one typed channel; apply
          never raises *)
}

val all : entry list
val find : string -> entry option
val names : string list

(** [sites env] — every candidate (transformation, argument) instance
    of the unit: each catalog entry on each loop of the nest (with the
    given factor values where one is needed, and each scalar written
    in the loop body where a variable is needed), fusion on adjacent
    DO pairs, statement interchange on adjacent assignment pairs.
    This is the cross product the fuzzing oracles and the property
    suite sweep — diagnosis decides which instances are live. *)
val sites : ?factors:int list -> Depenv.t -> (string * args) list
