type reason =
  | Dep of { dep_id : int; text : string }
  | Last_value of string
  | Induction of string
  | Granularity of string
  | Note of string

type t = {
  applicable : bool;
  safe : bool;
  profitable : bool;
  reasons : reason list;  (* chronological *)
}

let make ?(applicable = true) ?(safe = true) ?(profitable = true)
    ?(notes = []) ?(reasons = []) () =
  { applicable; safe; profitable;
    reasons = List.map (fun n -> Note n) notes @ reasons }

let inapplicable reason =
  { applicable = false; safe = false; profitable = false;
    reasons = [ Note reason ] }

let add t r = { t with reasons = t.reasons @ [ r ] }
let note t msg = add t (Note msg)

let blocking t =
  List.fold_left
    (fun acc r ->
      match r with
      | Dep { dep_id; _ } when not (List.mem dep_id acc) -> dep_id :: acc
      | _ -> acc)
    [] t.reasons
  |> List.rev

let render_reason = function
  | Dep { text; _ } -> text
  | Last_value v ->
    Printf.sprintf "%s needs its last value after the loop (expand it first)" v
  | Induction v ->
    Printf.sprintf "%s is an induction accumulator: substitute it first (indsub)"
      v
  | Granularity s | Note s -> s

let notes t = List.map render_reason t.reasons

let pp ppf t =
  Format.fprintf ppf "applicable: %b, safe: %b, profitable: %b" t.applicable
    t.safe t.profitable;
  List.iter (fun n -> Format.fprintf ppf "@.  - %s" n) (notes t)

let to_string t = Format.asprintf "%a" pp t

let ok t = t.applicable && t.safe
