open Fortran_front
open Scalar_analysis
open Dependence

(* Scalars whose last value escapes the loop: a parallel or reversed
   execution would observe a different final value.  Includes the
   induction variable when it is read after the loop (the simulator
   pins the parallel case, but reversal genuinely changes it). *)
let last_value_escapees (env : Depenv.t) (loop : Ast.stmt) =
  let classes =
    Varclass.classify ~cfg:env.Depenv.cfg env.Depenv.ctx env.Depenv.liveness
      loop
  in
  List.filter_map
    (fun (v, c) ->
      match c with
      | Varclass.Private { needs_last_value = true } -> Some v
      | _ -> None)
    (Varclass.all classes)

let diagnose ?(ignore_deps = []) ?(user_private = []) (env : Depenv.t)
    (ddg : Ddg.t) sid : Diagnosis.t =
  match Rewrite.find_do env.Depenv.punit sid with
  | None -> Diagnosis.inapplicable "not a DO loop"
  | Some (loop, h, body) ->
    let blockers =
      Ddg.blocking ~ignore:ignore_deps env ddg sid
      |> List.filter (fun (d : Ddg.dep) ->
             not (d.Ddg.is_scalar && List.mem d.Ddg.var user_private))
    in
    let escapees =
      List.filter
        (fun v -> not (List.mem v user_private))
        (last_value_escapees env loop)
    in
    (* auxiliary induction variables read in the body: a bare PARALLEL
       DO computes them in iteration-execution order — substitute the
       closed form first (indsub) *)
    let aux_blockers =
      List.filter
        (fun v -> not (List.mem v user_private))
        (Indsub.needed env loop)
    in
    let safe = blockers = [] && escapees = [] && aux_blockers = [] in
    let trip =
      match Depenv.int_at env sid (Ast.Bin (Ast.Sub, h.Ast.hi, h.Ast.lo)) with
      | Some d -> Some (d + 1)
      | None -> None
    in
    (* profitable when the machine model predicts parallel execution
       beats sequential: the loop's work spread over the processors
       plus fork/join must undercut the sequential time *)
    let profitable =
      body <> []
      &&
      let m = Perf.Machine.default in
      let loop_stmt = loop in
      let seq = (Perf.Estimator.stmt_cost ~machine:m env loop_stmt).Perf.Estimator.cycles in
      let t =
        match trip with Some t -> max 1 t | None -> Perf.Estimator.default_trip
      in
      let per_iter = seq /. float_of_int t in
      let chunks = (t + m.Perf.Machine.processors - 1) / m.Perf.Machine.processors in
      let par = m.Perf.Machine.fork_join +. (float_of_int chunks *. per_iter) in
      par < seq
    in
    let reasons =
      (if h.Ast.parallel then [ Diagnosis.Note "loop is already parallel" ]
       else [])
      @ List.map
          (fun (d : Ddg.dep) ->
            Diagnosis.Dep
              { dep_id = d.Ddg.dep_id;
                text = Format.asprintf "blocked by %a" Ddg.pp_dep d })
          blockers
      @ List.map (fun v -> Diagnosis.Last_value v) escapees
      @ List.map (fun v -> Diagnosis.Induction v) aux_blockers
      @
      if profitable then []
      else
        [ Diagnosis.Granularity
            "fork/join overhead exceeds the parallel gain (granularity)" ]
    in
    Diagnosis.make ~applicable:(not h.Ast.parallel) ~safe ~profitable ~reasons
      ()

let set_parallel value u sid =
  Rewrite.update_stmt u sid (fun s ->
      match s.Ast.node with
      | Ast.Do (h, body) ->
        { s with Ast.node = Ast.Do ({ h with Ast.parallel = value }, body) }
      | _ -> s)

let apply u sid = set_parallel true u sid
let apply_sequentialize u sid = set_parallel false u sid
