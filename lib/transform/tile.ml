open Fortran_front
open Dependence

let inner_of u sid =
  match Rewrite.find_do u sid with
  | Some (_, _, [ ({ Ast.node = Ast.Do _; _ } as inner) ]) -> Some inner
  | Some _ | None -> None

(* Build the stripped candidate: strip the inner loop by [block]. *)
let stripped_candidate (env : Depenv.t) sid ~block =
  match inner_of env.Depenv.punit sid with
  | None -> None
  | Some inner -> Some (Strip_mine.apply env inner.Ast.sid ~block)

let diagnose (env : Depenv.t) (ddg : Ddg.t) sid ~block : Diagnosis.t =
  match inner_of env.Depenv.punit sid with
  | None -> Diagnosis.inapplicable "not a perfect two-deep loop nest"
  | Some inner -> (
    if block < 2 then Diagnosis.inapplicable "block size must be at least 2"
    else
      let strip_diag = Strip_mine.diagnose env ddg inner.Ast.sid ~block in
      if not strip_diag.Diagnosis.applicable then strip_diag
      else
        match stripped_candidate env sid ~block with
        | None -> Diagnosis.inapplicable "could not strip the inner loop"
        | Some candidate ->
          let env1 = Depenv.remake env candidate in
          let ddg1 = Ddg.compute env1 in
          let di = Interchange.diagnose env1 ddg1 sid in
          let reasons =
            Diagnosis.Note "tiling = strip inner + interchange strip loop outward"
            :: di.Diagnosis.reasons
          in
          Diagnosis.make ~applicable:di.Diagnosis.applicable
            ~safe:di.Diagnosis.safe ~profitable:true ~reasons ())

let apply (env : Depenv.t) (ddg : Ddg.t) sid ~block : Ast.program_unit =
  ignore ddg;
  match stripped_candidate env sid ~block with
  | None -> invalid_arg "Tile.apply: not a perfect nest"
  | Some candidate -> Interchange.apply candidate sid
