open Fortran_front
open Dependence

let rec find_adjacent sid1 sid2 (stmts : Ast.stmt list) =
  match stmts with
  | a :: b :: _ when a.Ast.sid = sid1 && b.Ast.sid = sid2 -> Some (a, b)
  | a :: rest -> (
    match find_in_stmt sid1 sid2 a with
    | Some r -> Some r
    | None -> find_adjacent sid1 sid2 rest)
  | [] -> None

and find_in_stmt sid1 sid2 (s : Ast.stmt) =
  match s.Ast.node with
  | Ast.If (branches, els) -> (
    let rec try_branches = function
      | [] -> find_adjacent sid1 sid2 els
      | (_, b) :: rest -> (
        match find_adjacent sid1 sid2 b with
        | Some r -> Some r
        | None -> try_branches rest)
    in
    try_branches branches)
  | Ast.Do (_, body) -> find_adjacent sid1 sid2 body
  | _ -> None

let diagnose (env : Depenv.t) (ddg : Ddg.t) sid1 sid2 : Diagnosis.t =
  match find_adjacent sid1 sid2 env.Depenv.punit.Ast.body with
  | None -> Diagnosis.inapplicable "statements are not adjacent siblings"
  | Some (a, b) ->
    let connecting =
      List.filter
        (fun (d : Ddg.dep) ->
          d.Ddg.level = None
          && d.Ddg.kind <> Ddg.Control
          && ((d.Ddg.src = a.Ast.sid && d.Ddg.dst = b.Ast.sid)
             || (d.Ddg.src = b.Ast.sid && d.Ddg.dst = a.Ast.sid)))
        ddg.Ddg.deps
    in
    let safe = connecting = [] in
    let reasons =
      List.map
        (fun (d : Ddg.dep) ->
          Diagnosis.Dep
            { dep_id = d.Ddg.dep_id;
              text = Format.asprintf "connected by %a" Ddg.pp_dep d })
        connecting
    in
    Diagnosis.make ~applicable:true ~safe ~profitable:false ~reasons ()

let apply (u : Ast.program_unit) sid1 sid2 : Ast.program_unit =
  match find_adjacent sid1 sid2 u.Ast.body with
  | None -> invalid_arg "Stmt_interchange.apply: not adjacent"
  | Some (a, b) ->
    let u = Rewrite.replace_stmt u sid2 [] in
    Rewrite.replace_stmt u sid1 [ b; a ]
