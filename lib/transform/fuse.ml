open Fortran_front
open Dependence

(* The two loops must be adjacent siblings somewhere in the unit. *)
let rec adjacent_in sid1 sid2 (stmts : Ast.stmt list) : bool =
  match stmts with
  | a :: (b :: _ as rest) ->
    (a.Ast.sid = sid1 && b.Ast.sid = sid2)
    || adjacent_in sid1 sid2 rest
    || adjacent_in_stmt sid1 sid2 a
  | [ a ] -> adjacent_in_stmt sid1 sid2 a
  | [] -> false

and adjacent_in_stmt sid1 sid2 (s : Ast.stmt) =
  match s.Ast.node with
  | Ast.If (branches, els) ->
    List.exists (fun (_, b) -> adjacent_in sid1 sid2 b) branches
    || adjacent_in sid1 sid2 els
  | Ast.Do (_, body) -> adjacent_in sid1 sid2 body
  | _ -> false

let headers_conform (h1 : Ast.do_header) (h2 : Ast.do_header) =
  Ast.expr_equal h1.Ast.lo h2.Ast.lo
  && Ast.expr_equal h1.Ast.hi h2.Ast.hi
  && (match (h1.Ast.step, h2.Ast.step) with
     | None, None -> true
     | Some a, Some b -> Ast.expr_equal a b
     | None, Some (Ast.Int 1) | Some (Ast.Int 1), None -> true
     | _ -> false)

let apply (u : Ast.program_unit) sid1 sid2 : Ast.program_unit =
  match (Rewrite.find_do u sid1, Rewrite.find_do u sid2) with
  | Some (s1, h1, b1), Some (_, h2, b2) ->
    let b2 =
      if String.equal h1.Ast.dvar h2.Ast.dvar then b2
      else
        Rewrite.rename_var ~old_name:h2.Ast.dvar ~new_name:h1.Ast.dvar b2
    in
    let fused = { s1 with Ast.node = Ast.Do (h1, b1 @ b2) } in
    let u = Rewrite.replace_stmt u sid2 [] in
    Rewrite.replace_stmt u sid1 [ fused ]
  | _ -> invalid_arg "Fuse.apply: not two DO loops"

let diagnose (env : Depenv.t) (ddg : Ddg.t) sid1 sid2 : Diagnosis.t =
  ignore ddg;
  match (Rewrite.find_do env.Depenv.punit sid1, Rewrite.find_do env.Depenv.punit sid2) with
  | None, _ | _, None -> Diagnosis.inapplicable "both operands must be DO loops"
  | Some (_, h1, b1), Some (_, h2, b2) ->
    if not (adjacent_in sid1 sid2 env.Depenv.punit.Ast.body) then
      Diagnosis.inapplicable "loops are not adjacent"
    else if not (headers_conform h1 h2) then
      Diagnosis.inapplicable "loop bounds do not conform"
    else begin
      (* a scalar written by one loop and referenced by the other
         changes meaning under fusion (the reader originally saw the
         writer's final value); the dependence graph cannot flag the
         cases classification hides (private/induction scalars), so
         check directly *)
      let scalars f ctx stmts =
        List.concat_map
          (fun s ->
            List.filter
              (fun v -> not (Fortran_front.Symbol.is_array (Scalar_analysis.Defuse.table ctx) v))
              (f ctx s))
          (List.rev (Ast.fold_stmts (fun acc s -> s :: acc) [] stmts))
        |> List.sort_uniq String.compare
      in
      let ctx = env.Depenv.ctx in
      let w1 = scalars Scalar_analysis.Defuse.may_defs ctx b1
      and r1 = scalars Scalar_analysis.Defuse.uses ctx b1
      and w2 = scalars Scalar_analysis.Defuse.may_defs ctx b2
      and r2 = scalars Scalar_analysis.Defuse.uses ctx b2 in
      let iv = h1.Ast.dvar in
      let crossing =
        List.filter
          (fun v ->
            (not (String.equal v iv))
            && not (String.equal v h2.Ast.dvar))
          (List.filter (fun v -> List.mem v r2 || List.mem v w2) w1
          @ List.filter (fun v -> List.mem v r1 || List.mem v w1) w2)
        |> List.sort_uniq String.compare
      in
      if crossing <> [] then
        Diagnosis.make ~applicable:true ~safe:false ~profitable:false
          ~notes:
            (List.map
               (fun v ->
                 Printf.sprintf
                   "scalar %s is written by one loop and touched by the other"
                   v)
               crossing)
          ()
      else begin
      (* re-analyze the fused candidate *)
      let body2_sids =
        Ast.fold_stmts (fun acc s -> s.Ast.sid :: acc) [] b2
      in
      let body1_sids =
        Ast.fold_stmts (fun acc s -> s.Ast.sid :: acc) [] b1
      in
      let candidate = apply env.Depenv.punit sid1 sid2 in
      let env' = Depenv.remake env candidate in
      let ddg' = Ddg.compute env' in
      let preventing =
        List.filter
          (fun (d : Ddg.dep) ->
            d.Ddg.kind <> Ddg.Control
            && d.Ddg.carrier = Some sid1
            && List.mem d.Ddg.src body2_sids
            && List.mem d.Ddg.dst body1_sids)
          ddg'.Ddg.deps
      in
      let safe = preventing = [] in
      let profitable =
        Ddg.parallelizable env' ddg' sid1 || List.length (b1 @ b2) > 1
      in
      let reasons =
        (* ids refer to the re-analyzed fused candidate's graph *)
        List.map
          (fun (d : Ddg.dep) ->
            Diagnosis.Dep
              { dep_id = d.Ddg.dep_id;
                text = Format.asprintf "fusion-preventing %a" Ddg.pp_dep d })
          preventing
      in
      Diagnosis.make ~applicable:true ~safe ~profitable ~reasons ()
      end
    end
