open Fortran_front
open Scalar_analysis
open Dependence

let classify_var (env : Depenv.t) loop var =
  let classes =
    Varclass.classify ~cfg:env.Depenv.cfg env.Depenv.ctx env.Depenv.liveness
      loop
  in
  Varclass.lookup classes var

(* [var] is the induction variable of [loop] itself or of a DO nested
   in it.  Expanding an induction variable is never meaningful: the
   substitution would rewrite its uses to array elements while the DO
   header keeps assigning the original scalar. *)
let is_induction_var (loop : Ast.stmt) var =
  Ast.fold_stmts
    (fun acc s ->
      acc
      || match s.Ast.node with
         | Ast.Do (h, _) -> String.equal h.Ast.dvar var
         | _ -> false)
    false [ loop ]

let diagnose (env : Depenv.t) (ddg : Ddg.t) sid ~var : Diagnosis.t =
  ignore ddg;
  match Rewrite.find_do env.Depenv.punit sid with
  | None -> Diagnosis.inapplicable "not a DO loop"
  | Some (loop, _, _) when is_induction_var loop var ->
    Diagnosis.inapplicable
      (var ^ " is a loop induction variable, not an expandable temporary")
  | Some (loop, h, _) -> (
    match Symbol.lookup env.Depenv.tbl var with
    | Some { kind = Symbol.Scalar; _ } -> (
      let st =
        match h.Ast.step with
        | None -> Some 1
        | Some e -> Depenv.int_at env sid e
      in
      let trip =
        match (st, Depenv.int_at env sid (Ast.sub h.Ast.hi h.Ast.lo)) with
        | (None | Some 0), _ | _, None -> None
        | Some s, Some d -> Some ((d + s) / s)
      in
      match classify_var env loop var with
      | Some (Varclass.Private { needs_last_value }) -> (
        match trip with
        | None ->
          Diagnosis.inapplicable
            "trip count or step is not a known constant"
        | Some t when t <= 0 -> Diagnosis.inapplicable "empty loop"
        | Some t ->
          (* last-value copy-out reads the final iteration's element,
             which is only right if that iteration assigns the scalar
             unconditionally *)
          let unconditional =
            match Rewrite.find_do env.Depenv.punit sid with
            | Some (_, _, body) ->
              List.exists
                (fun (s : Ast.stmt) ->
                  match s.Ast.node with
                  | Ast.Assign (Ast.Var v, _) -> String.equal v var
                  | _ -> false)
                body
            | None -> false
          in
          let safe = (not needs_last_value) || unconditional in
          Diagnosis.make ~applicable:true ~safe ~profitable:true
            ~notes:
              ([ Printf.sprintf "expands %s into an array of %d" var t ]
              @ (if needs_last_value then [ "last value will be copied out" ]
                 else [ "no last value needed" ])
              @
              if not safe then
                [ "conditional assignment: last value would be wrong" ]
              else [])
            ())
      | Some cls ->
        Diagnosis.inapplicable
          (Printf.sprintf "%s is %s, not a privatizable scalar" var
             (Varclass.classification_to_string cls))
      | None ->
        Diagnosis.inapplicable
          (Printf.sprintf "%s does not occur in the loop" var))
    | Some _ -> Diagnosis.inapplicable (var ^ " is not a scalar")
    | None -> Diagnosis.inapplicable (var ^ " is not declared"))

let apply (env : Depenv.t) sid ~var : Ast.program_unit =
  let u = env.Depenv.punit in
  match Rewrite.find_do u sid with
  | None -> invalid_arg "Scalar_expand.apply: not a DO loop"
  | Some (loop, _, _) when is_induction_var loop var ->
    invalid_arg "Scalar_expand.apply: cannot expand an induction variable"
  | Some (loop, h, body) ->
    let hi_const =
      match Depenv.int_at env sid h.Ast.hi with
      | Some n -> n
      | None -> invalid_arg "Scalar_expand.apply: unknown bound"
    in
    let lo_const =
      match Depenv.int_at env sid h.Ast.lo with
      | Some n -> n
      | None -> invalid_arg "Scalar_expand.apply: unknown bound"
    in
    let st =
      match h.Ast.step with
      | None -> 1
      | Some e -> (
        match Depenv.int_at env sid e with
        | Some s when s <> 0 -> s
        | _ -> invalid_arg "Scalar_expand.apply: unknown step")
    in
    (* the value of the final iteration: [hi] only when the stride
       divides the span, lo + ((hi−lo)/st)·st in general *)
    let last_const = lo_const + (hi_const - lo_const) / st * st in
    let arr = Rewrite.fresh_name env.Depenv.tbl (var ^ "X") in
    let elem = Ast.Index (arr, [ Ast.Var h.Ast.dvar ]) in
    (* the substitution rewrites assignment left-hand sides too *)
    let body' = Rewrite.subst_in_stmts var elem body in
    let loop' = { loop with Ast.node = Ast.Do (h, body') } in
    let needs_last =
      List.mem var (Liveness.live_after env.Depenv.liveness env.Depenv.cfg sid)
    in
    let copy_out =
      if needs_last then
        [ Ast.mk (Ast.Assign (Ast.Var var, Ast.Index (arr, [ Ast.Int last_const ]))) ]
      else []
    in
    let typ = Symbol.typ_of env.Depenv.tbl var in
    let u =
      Rewrite.add_decl u
        {
          Ast.dname = arr;
          dtyp = typ;
          (* [min]/[max] so a negative-step loop still declares a
             forward range covering every visited element *)
          dims =
            [
              ( Ast.Int (min lo_const last_const),
                Ast.Int (max lo_const last_const) );
            ];
          init = None;
          data_init = None;
          common_block = None;
        }
    in
    Rewrite.replace_stmt u sid (loop' :: copy_out)
