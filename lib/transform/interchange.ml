open Fortran_front
open Dependence

let perfect_pair u sid =
  match Rewrite.find_do u sid with
  | Some (outer, h1, [ ({ Ast.node = Ast.Do (h2, inner_body); _ } as inner) ])
    ->
    Some (outer, h1, inner, h2, inner_body)
  | Some _ | None -> None

let header_vars (h : Ast.do_header) =
  List.concat_map Ast.expr_vars
    ([ h.Ast.lo; h.Ast.hi ] @ Option.to_list h.Ast.step)

(* A skewed (trapezoidal) nest: inner bounds are [e + 1·I] for the
   outer induction variable I.  Returns the I-free parts of the inner
   bounds when both have coefficient exactly 1 (the form produced by
   [Skew] with factor 1). *)
let trapezoid_offsets (h1 : Ast.do_header) (h2 : Ast.do_header) :
    (Ast.expr * Ast.expr) option =
  let iv = h1.Ast.dvar in
  let split e =
    let resolve v =
      if String.equal v iv then None
      else Some (Scalar_analysis.Symbolic.Linear.sym v)
    in
    match Scalar_analysis.Symbolic.linearize ~resolve e with
    | Some lin when Scalar_analysis.Symbolic.Linear.coeff iv lin = 1 ->
      (* e − I, rebuilt from the linear form so it is clean *)
      let _, rest = Scalar_analysis.Symbolic.Linear.split iv lin in
      Some (Scalar_analysis.Symbolic.Linear.to_expr rest)
    | _ -> None
  in
  if h2.Ast.step <> None && h2.Ast.step <> Some (Ast.Int 1) then None
  else
    match (split h2.Ast.lo, split h2.Ast.hi) with
    | Some lo0, Some hi0 -> Some (lo0, hi0)
    | _ -> None

let rectangular h1 h2 =
  (not (List.mem h1.Ast.dvar (header_vars h2)))
  && not (List.mem h2.Ast.dvar (header_vars h1))

let diagnose (env : Depenv.t) (ddg : Ddg.t) sid : Diagnosis.t =
  match perfect_pair env.Depenv.punit sid with
  | None ->
    Diagnosis.inapplicable "not a perfect two-deep loop nest"
  | Some (outer, h1, inner, h2, _) ->
    let shape =
      if rectangular h1 h2 then `Rect
      else
        match trapezoid_offsets h1 h2 with
        | Some _ when not (List.mem h2.Ast.dvar (header_vars h1)) -> `Trap
        | _ -> `Bad
    in
    if shape = `Bad then
      Diagnosis.inapplicable
        "bounds are neither rectangular nor a unit-skewed trapezoid"
    else begin
      (* position of the two loops in any dependence's common-loop
         vector: depth-1 and depth *)
      let p_outer =
        match Loopnest.find env.Depenv.nest outer.Ast.sid with
        | Some lp -> lp.Loopnest.depth - 1
        | None -> 0
      in
      let p_inner = p_outer + 1 in
      let deps = Ddg.deps_in_loop env ddg inner.Ast.sid in
      let prevents (d : Ddg.dep) =
        if d.Ddg.kind = Ddg.Control then false
        else if d.Ddg.dirs = [] then
          (* unknown directions (scalar deps): conservative when the
             dependence is carried by either of the two loops *)
          d.Ddg.carrier = Some outer.Ast.sid || d.Ddg.carrier = Some inner.Ast.sid
        else
          List.exists
            (fun dv ->
              Array.length dv > p_inner
              && dv.(p_outer) = Dtest.Dlt
              && dv.(p_inner) = Dtest.Dgt)
            d.Ddg.dirs
      in
      let blockers = List.filter prevents deps in
      let safe = blockers = [] in
      let profitable =
        Ddg.parallelizable env ddg inner.Ast.sid
        && not (Ddg.parallelizable env ddg outer.Ast.sid)
      in
      let reasons =
        List.map
          (fun (d : Ddg.dep) ->
            Diagnosis.Dep
              { dep_id = d.Ddg.dep_id;
                text = Format.asprintf "prevented by %a" Ddg.pp_dep d })
          blockers
        @ (if shape = `Trap then
             [ Diagnosis.Note "trapezoidal (skewed) nest: bounds will use MAX/MIN" ]
           else [])
        @
        if profitable then [ Diagnosis.Note "moves parallelism outward" ]
        else [ Diagnosis.Granularity "no obvious granularity gain" ]
      in
      Diagnosis.make ~applicable:true ~safe ~profitable ~reasons ()
    end

let apply (u : Ast.program_unit) sid : Ast.program_unit =
  match perfect_pair u sid with
  | None -> invalid_arg "Interchange.apply: not a perfect nest"
  | Some (outer, h1, inner, h2, inner_body) ->
    if rectangular h1 h2 then begin
      let new_inner = { inner with Ast.node = Ast.Do (h1, inner_body) } in
      let new_outer = { outer with Ast.node = Ast.Do (h2, [ new_inner ]) } in
      Rewrite.replace_stmt u sid [ new_outer ]
    end
    else
      match trapezoid_offsets h1 h2 with
      | None -> invalid_arg "Interchange.apply: unsupported nest shape"
      | Some (lo0, hi0) ->
        (* J ∈ [lo0+I, hi0+I], I ∈ [lo1, hi1]  becomes
           J ∈ [lo0+lo1, hi0+hi1], I ∈ [MAX(lo1, J−hi0), MIN(hi1, J−lo0)] *)
        let j = Ast.Var h2.Ast.dvar in
        let new_outer_h =
          {
            h2 with
            Ast.lo = Ast.simplify (Ast.add lo0 h1.Ast.lo);
            hi = Ast.simplify (Ast.add hi0 h1.Ast.hi);
          }
        in
        let new_inner_h =
          {
            h1 with
            Ast.lo =
              Ast.Index ("MAX", [ h1.Ast.lo; Ast.simplify (Ast.sub j hi0) ]);
            hi =
              Ast.Index ("MIN", [ h1.Ast.hi; Ast.simplify (Ast.sub j lo0) ]);
          }
        in
        let new_inner = { inner with Ast.node = Ast.Do (new_inner_h, inner_body) } in
        let new_outer = { outer with Ast.node = Ast.Do (new_outer_h, [ new_inner ]) } in
        Rewrite.replace_stmt u sid [ new_outer ]
