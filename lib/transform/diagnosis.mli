(** Power-steering diagnosis — the advice Ped gives before carrying
    out a transformation.

    Every transformation answers three questions: is it {e applicable}
    (syntactically meaningful here), {e safe} (dependences show the
    meaning is preserved), and {e profitable} (heuristically worth
    doing).  Ped performs an unsafe transformation only if the user
    insists; the editor layer enforces that policy.

    Reasons are structured: a rejection that names a blocking
    dependence records its dependence id, so the editor's [explain]
    command can walk from the refusal to the exact edges — and their
    provenance — that caused it.  The human-readable notes strings are
    derived from the reasons. *)

(** One reason behind a verdict, in the order it was found. *)
type reason =
  | Dep of { dep_id : int; text : string }
      (** a blocking dependence, with its rendered description *)
  | Last_value of string
      (** scalar needing its last value after the loop *)
  | Induction of string
      (** auxiliary induction accumulator: substitute it first *)
  | Granularity of string  (** profitability heuristic verdict *)
  | Note of string  (** free-text remark *)

type t = {
  applicable : bool;
  safe : bool;
  profitable : bool;
  reasons : reason list;  (** chronological *)
}

(** [make ()] — [notes] wrap as {!Note} and precede [reasons]; both
    are kept in the order given (oldest first). *)
val make :
  ?applicable:bool -> ?safe:bool -> ?profitable:bool -> ?notes:string list ->
  ?reasons:reason list -> unit -> t

(** Not applicable, with a reason; safety and profit are moot. *)
val inapplicable : string -> t

(** Append a free-text note (chronological order). *)
val note : t -> string -> t

(** Append a structured reason. *)
val add : t -> reason -> t

(** The ids of the blocking dependences named by the reasons, in
    order of first mention, without duplicates. *)
val blocking : t -> int list

val render_reason : reason -> string

(** The notes, oldest first, derived from the reasons. *)
val notes : t -> string list

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [ok d] — applicable and safe (the editor's bar for applying
    without an override). *)
val ok : t -> bool
