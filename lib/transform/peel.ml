open Fortran_front
open Dependence

type which = First | Last

let step_const (env : Depenv.t) sid (h : Ast.do_header) =
  match h.Ast.step with
  | None -> Some 1
  | Some e -> Depenv.int_at env sid e

let diagnose (env : Depenv.t) (ddg : Ddg.t) sid ~which : Diagnosis.t =
  ignore which;
  match Rewrite.find_do env.Depenv.punit sid with
  | None -> Diagnosis.inapplicable "not a DO loop"
  | Some (_, h, body) -> (
    match step_const env sid h with
    | None | Some 0 -> Diagnosis.inapplicable "step is not a known constant"
    | Some _ ->
      let has_exit =
        Ast.fold_stmts
          (fun acc s ->
            acc
            || match s.Ast.node with
               | Ast.Goto _ | Ast.Return | Ast.Stop -> true
               | _ -> false)
          false body
      in
      if has_exit then
        Diagnosis.inapplicable "body contains unstructured control flow"
      else
        let carried = Ddg.blocking env ddg sid in
        Diagnosis.make ~applicable:true ~safe:true
          ~profitable:(carried <> [])
          ~notes:
            (if carried <> [] then
               [ "may remove a boundary-carried dependence" ]
             else [ "loop has no carried dependence to remove" ])
          ())

let apply (env : Depenv.t) sid ~which : Ast.program_unit =
  let u = env.Depenv.punit in
  match Rewrite.find_do u sid with
  | None -> invalid_arg "Peel.apply: not a DO loop"
  | Some (loop, h, body) ->
    let st =
      match step_const env sid h with
      | Some s when s <> 0 -> s
      | _ -> invalid_arg "Peel.apply: unknown step"
    in
    let step_e = Ast.Int st in
    (* the value of the final iteration: [hi] only when the stride
       divides the span — with a non-unit stride it is
       lo + ((hi−lo)/st)·st (truncating division, as in F77) *)
    let last_value =
      match (Depenv.int_at env sid h.Ast.lo, Depenv.int_at env sid h.Ast.hi) with
      | Some l, Some hv -> Ast.Int (l + ((hv - l) / st * st))
      | _ ->
        if st = 1 || st = -1 then h.Ast.hi
        else
          Ast.simplify
            (Ast.add h.Ast.lo
               (Ast.mul
                  (Ast.Bin (Ast.Div, Ast.sub h.Ast.hi h.Ast.lo, step_e))
                  step_e))
    in
    let peeled_iv, new_lo, new_hi =
      match which with
      | First ->
        (h.Ast.lo, Ast.simplify (Ast.add h.Ast.lo step_e), h.Ast.hi)
      | Last -> (last_value, h.Ast.lo, Ast.simplify (Ast.sub last_value step_e))
    in
    let copy =
      Rewrite.subst_in_stmts h.Ast.dvar peeled_iv (Rewrite.refresh_sids body)
    in
    (* guard the peel when the loop could be empty *)
    let trip =
      Depenv.int_at env sid (Ast.sub h.Ast.hi h.Ast.lo)
      |> Option.map (fun d -> (d / st) + 1)
    in
    let guarded_copy =
      match trip with
      | Some t when t >= 1 -> copy
      | _ ->
        let cond =
          if st > 0 then Ast.Bin (Ast.Le, h.Ast.lo, h.Ast.hi)
          else Ast.Bin (Ast.Ge, h.Ast.lo, h.Ast.hi)
        in
        [ Ast.mk ~loc:loop.Ast.loc (Ast.If ([ (cond, copy) ], [])) ]
    in
    let rest =
      { loop with Ast.node = Ast.Do ({ h with Ast.lo = new_lo; hi = new_hi }, body) }
    in
    let seq =
      match which with
      | First -> guarded_copy @ [ rest ]
      | Last -> [ rest ] @ guarded_copy
    in
    Rewrite.replace_stmt u sid seq
