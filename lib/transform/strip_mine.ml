open Fortran_front
open Dependence

let diagnose (env : Depenv.t) (ddg : Ddg.t) sid ~block : Diagnosis.t =
  ignore ddg;
  match Rewrite.find_do env.Depenv.punit sid with
  | None -> Diagnosis.inapplicable "not a DO loop"
  | Some (_, h, _) ->
    if block < 2 then Diagnosis.inapplicable "block size must be at least 2"
    else begin
      let step_const =
        match h.Ast.step with
        | None -> Some 1
        | Some e -> Depenv.int_at env sid e
      in
      match step_const with
      | None -> Diagnosis.inapplicable "step is not a known constant"
      | Some 0 -> Diagnosis.inapplicable "zero step"
      | Some _ ->
        let trip = Depenv.int_at env sid (Ast.sub h.Ast.hi h.Ast.lo) in
        let profitable =
          match trip with Some t -> t + 1 > block | None -> true
        in
        Diagnosis.make ~applicable:true ~safe:true ~profitable
          ~notes:[ "strip mining is always safe" ] ()
    end

let apply (env : Depenv.t) sid ~block : Ast.program_unit =
  let u = env.Depenv.punit in
  match Rewrite.find_do u sid with
  | None -> invalid_arg "Strip_mine.apply: not a DO loop"
  | Some (loop, h, body) ->
    let step = Option.value ~default:(Ast.Int 1) h.Ast.step in
    (* the inner loop's bound clamp depends on the iteration direction:
       MIN for an ascending loop, MAX for a descending one — MIN on a
       negative step would re-execute every earlier strip *)
    let clamp =
      match
        match h.Ast.step with
        | None -> Some 1
        | Some e -> Depenv.int_at env sid e
      with
      | Some s when s > 0 -> "MIN"
      | Some s when s < 0 -> "MAX"
      | Some _ | None ->
        invalid_arg "Strip_mine.apply: step is not a known nonzero constant"
    in
    let svar = Rewrite.fresh_name env.Depenv.tbl (h.Ast.dvar ^ "S") in
    let big_step = Ast.simplify (Ast.mul (Ast.int_ block) step) in
    (* inner: DO I = IS, MIN/MAX(IS + (block−1)·step, hi), step *)
    let inner_hi =
      Ast.Index
        ( clamp,
          [
            Ast.simplify
              (Ast.add (Ast.Var svar)
                 (Ast.mul (Ast.int_ (block - 1)) step));
            h.Ast.hi;
          ] )
    in
    let inner =
      Ast.mk ~loc:loop.Ast.loc
        (Ast.Do
           ( { h with Ast.lo = Ast.Var svar; hi = inner_hi;
               step = Some step; parallel = false },
             body ))
    in
    let outer =
      {
        loop with
        Ast.node =
          Ast.Do
            ( { Ast.dvar = svar; lo = h.Ast.lo; hi = h.Ast.hi;
                step = Some big_step; parallel = false },
              [ inner ] );
      }
    in
    Rewrite.replace_stmt u sid [ outer ]
