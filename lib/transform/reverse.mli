(** Loop reversal — run the iterations backwards.

    Safe exactly when the loop carries no dependence (a carried
    dependence's endpoints would swap order).  Occasionally profitable
    for fusion or alignment; Ped offers it as a building block. *)

open Fortran_front
open Dependence

val diagnose : Depenv.t -> Ddg.t -> Ast.stmt_id -> Diagnosis.t

(** Reverses the iteration order in place.  With a non-unit stride
    the reversed loop starts on the last value the original actually
    reaches (lo + ((hi−lo)/st)·st), not on [hi].
    @raise Invalid_argument when the step is not a known nonzero
    constant. *)
val apply : Depenv.t -> Ast.stmt_id -> Ast.program_unit
