/* Monotonic clock for telemetry spans.

   OCaml's stdlib only exposes wall-clock time; span durations must
   come from CLOCK_MONOTONIC so that NTP slew or a suspended laptop
   cannot produce negative or wildly wrong intervals.  The unboxed
   native variant keeps the hot path allocation-free. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <stdint.h>
#include <time.h>

int64_t tel_clock_ns_unboxed(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec;
}

CAMLprim value tel_clock_ns_byte(value unit)
{
  return caml_copy_int64(tel_clock_ns_unboxed(unit));
}
