exception Discipline of string

external now_ns : unit -> (int64[@unboxed])
  = "tel_clock_ns_byte" "tel_clock_ns_unboxed"
[@@noalloc]

(* ------------------------------------------------------------------ *)
(* Counters and histograms                                             *)
(* ------------------------------------------------------------------ *)

(* The [c_live] flag lets [null] hand out one shared dead handle:
   updates against it are a load and a branch, nothing more. *)
type counter = { c_live : bool; c_v : int Atomic.t }

let dead_counter = { c_live = false; c_v = Atomic.make 0 }
let incr c = if c.c_live then ignore (Atomic.fetch_and_add c.c_v 1)
let add c n = if c.c_live then ignore (Atomic.fetch_and_add c.c_v n)
let add_ns c ns = add c (Int64.to_int ns)
let value c = Atomic.get c.c_v

type histogram = {
  h_live : bool;
  h_counts : int Atomic.t array; (* 64 power-of-two buckets *)
  h_sum : int Atomic.t;
  h_n : int Atomic.t;
}

let make_hist live =
  {
    h_live = live;
    h_counts = Array.init 64 (fun _ -> Atomic.make 0);
    h_sum = Atomic.make 0;
    h_n = Atomic.make 0;
  }

let dead_hist = make_hist false

(* Bucket 0 holds 0; bucket i holds 2^(i-1) <= v < 2^i. *)
let bucket_index v =
  if v <= 0 then 0
  else
    let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
    bits v 0

let observe h v =
  if h.h_live then begin
    let v = max 0 v in
    ignore (Atomic.fetch_and_add h.h_counts.(bucket_index v) 1);
    ignore (Atomic.fetch_and_add h.h_sum v);
    ignore (Atomic.fetch_and_add h.h_n 1)
  end

let hist_count h = Atomic.get h.h_n
let hist_sum h = Atomic.get h.h_sum

let hist_buckets h =
  let out = ref [] in
  for i = Array.length h.h_counts - 1 downto 0 do
    let n = Atomic.get h.h_counts.(i) in
    if n > 0 then
      let ub = if i = 0 then 0 else (1 lsl i) - 1 in
      out := (ub, n) :: !out
  done;
  !out

(* Smallest bucket upper bound covering fraction [q] of the samples.
   Resolution is the bucket width (a factor of two), which is enough
   for the latency/size distributions this records. *)
let hist_quantile h q =
  let total = hist_count h in
  if total = 0 then 0
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let need = int_of_float (ceil (q *. float_of_int total)) in
    let need = max 1 need in
    let rec go acc = function
      | [] -> 0 (* unreachable: cumulative count reaches [total] *)
      | (ub, n) :: rest ->
        let acc = acc + n in
        if acc >= need then ub else go acc rest
    in
    go 0 (hist_buckets h)
  end

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

type span_record = {
  sp_name : string;
  sp_path : string list;
  sp_tid : int;
  sp_lane : string option;
  sp_t0 : int64;
  sp_t1 : int64;
  sp_args : (string * string) list;
}

(* One log per (sink, domain): the emitting domain is the only writer,
   so closed records can never tear or interleave.  Readers snapshot
   under the sink lock; the registry mutation (one cons per domain) is
   also under the lock. *)
type log = {
  l_tid : int;
  mutable l_lane : string option;    (* ambient lane label (with_lane) *)
  mutable l_done : span_record list; (* newest first *)
  mutable l_stack : frame list;      (* innermost first *)
}

and frame = {
  f_name : string;
  f_args : (string * string) list;
  f_lane : string option;
  f_t0 : int64;
  f_log : log;
}

type scope = Off | On of frame

type sink = {
  s_metrics : bool;
  mutable s_rec : bool;
  s_lock : Mutex.t;
  s_ctab : (string, counter) Hashtbl.t;
  s_corder : string list ref; (* creation order, for stable exports *)
  s_htab : (string, histogram) Hashtbl.t;
  s_horder : string list ref;
  s_logs : log list ref;
  s_key : log Domain.DLS.key;
}

let locked s f =
  Mutex.lock s.s_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.s_lock) f

let make_sink ~metrics ~record_spans =
  let lock = Mutex.create () in
  let logs = ref [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let l =
          { l_tid = (Domain.self () :> int); l_lane = None; l_done = [];
            l_stack = [] }
        in
        Mutex.lock lock;
        logs := l :: !logs;
        Mutex.unlock lock;
        l)
  in
  {
    s_metrics = metrics;
    s_rec = record_spans;
    s_lock = lock;
    s_ctab = Hashtbl.create 32;
    s_corder = ref [];
    s_htab = Hashtbl.create 8;
    s_horder = ref [];
    s_logs = logs;
    s_key = key;
  }

let null = make_sink ~metrics:false ~record_spans:false
let make ?(record_spans = false) () = make_sink ~metrics:true ~record_spans

(* A sink meant for in-memory capture-then-analyze use (perfdebug):
   spans are retained from the start and handed over via
   [drain_spans]. *)
let retained () = make_sink ~metrics:true ~record_spans:true
let default_sink = Atomic.make null
let default () = Atomic.get default_sink
let set_default s = Atomic.set default_sink s
let metrics_on s = s.s_metrics
let recording s = s.s_rec

let set_recording s on =
  if s == null then invalid_arg "Telemetry.set_recording: null sink";
  s.s_rec <- on

let counter s name =
  if not s.s_metrics then dead_counter
  else
    locked s (fun () ->
        match Hashtbl.find_opt s.s_ctab name with
        | Some c -> c
        | None ->
          let c = { c_live = true; c_v = Atomic.make 0 } in
          Hashtbl.add s.s_ctab name c;
          s.s_corder := name :: !(s.s_corder);
          c)

let histogram s name =
  if not s.s_metrics then dead_hist
  else
    locked s (fun () ->
        match Hashtbl.find_opt s.s_htab name with
        | Some h -> h
        | None ->
          let h = make_hist true in
          Hashtbl.add s.s_htab name h;
          s.s_horder := name :: !(s.s_horder);
          h)

let open_span s ?(args = []) name =
  if not s.s_rec then Off
  else
    let log = Domain.DLS.get s.s_key in
    let fr =
      { f_name = name; f_args = args; f_lane = log.l_lane; f_t0 = now_ns ();
        f_log = log }
    in
    log.l_stack <- fr :: log.l_stack;
    On fr

(* [with_lane s lane f] — label every span the calling domain opens on
   [s] during [f] with [lane].  The server wraps each session request
   in one, so traces from concurrent sessions multiplexed on one
   domain land in separate exporter lanes instead of interleaving. *)
let with_lane s lane f =
  if not s.s_rec then f ()
  else begin
    let log = Domain.DLS.get s.s_key in
    let prev = log.l_lane in
    log.l_lane <- Some lane;
    Fun.protect ~finally:(fun () -> log.l_lane <- prev) f
  end

let close_span = function
  | Off -> ()
  | On fr -> (
    let log = fr.f_log in
    match log.l_stack with
    | top :: rest when top == fr ->
      log.l_stack <- rest;
      let path = List.rev_map (fun f -> f.f_name) log.l_stack @ [ fr.f_name ] in
      log.l_done <-
        {
          sp_name = fr.f_name;
          sp_path = path;
          sp_tid = log.l_tid;
          sp_lane = fr.f_lane;
          sp_t0 = fr.f_t0;
          sp_t1 = now_ns ();
          sp_args = fr.f_args;
        }
        :: log.l_done
    | _ ->
      raise
        (Discipline
           (Printf.sprintf "close_span: %S is not the innermost open span"
              fr.f_name)))

let span s ?args name f =
  if not s.s_rec then f ()
  else
    let sc = open_span s ?args name in
    Fun.protect ~finally:(fun () -> close_span sc) f

let timed s ?span_name c f =
  if not (c.c_live || s.s_rec) then f ()
  else
    let sc =
      match span_name with
      | Some n when s.s_rec -> open_span s n
      | _ -> Off
    in
    let t0 = now_ns () in
    Fun.protect
      ~finally:(fun () ->
        add_ns c (Int64.sub (now_ns ()) t0);
        close_span sc)
      f

let spans s =
  let logs = locked s (fun () -> !(s.s_logs)) in
  List.concat_map (fun l -> List.rev l.l_done) logs
  |> List.sort (fun a b ->
         match compare a.sp_tid b.sp_tid with
         | 0 -> Int64.compare a.sp_t0 b.sp_t0
         | c -> c)

let reset_spans s =
  let logs = locked s (fun () -> !(s.s_logs)) in
  List.iter (fun l -> l.l_done <- []) logs

let drain_spans s =
  let r = spans s in
  reset_spans s;
  r

let counters s =
  locked s (fun () ->
      List.rev_map (fun n -> (n, value (Hashtbl.find s.s_ctab n))) !(s.s_corder))

let histograms s =
  locked s (fun () ->
      List.rev_map (fun n -> (n, Hashtbl.find s.s_htab n)) !(s.s_horder))

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let ms_of_ns ns = Int64.to_float ns /. 1e6

let profile_report s =
  let all = spans s in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "telemetry profile: %d spans\n" (List.length all));
  if all <> [] then begin
    (* Aggregate (count, total ns) by path, keep first-seen order so
       children follow their parents. *)
    let tbl = Hashtbl.create 64 in
    let order = ref [] in
    List.iter
      (fun r ->
        let d = Int64.to_float (Int64.sub r.sp_t1 r.sp_t0) in
        match Hashtbl.find_opt tbl r.sp_path with
        | Some (n, tot) -> Hashtbl.replace tbl r.sp_path (n + 1, tot +. d)
        | None ->
          Hashtbl.add tbl r.sp_path (1, d);
          order := r.sp_path :: !order)
      all;
    let paths = List.sort compare (List.rev !order) in
    let self_of path total =
      Hashtbl.fold
        (fun p (_, tot) acc ->
          if
            List.length p = List.length path + 1
            && (match List.filteri (fun i _ -> i < List.length path) p with
               | prefix -> prefix = path)
          then acc -. tot
          else acc)
        tbl total
    in
    Buffer.add_string buf
      (Printf.sprintf "  %-44s %8s %12s %12s\n" "span" "count" "total" "self");
    List.iter
      (fun path ->
        let n, total = Hashtbl.find tbl path in
        let depth = List.length path - 1 in
        let name =
          String.make (2 * depth) ' ' ^ List.nth path depth
        in
        Buffer.add_string buf
          (Printf.sprintf "  %-44s %8d %10.3fms %10.3fms\n" name n
             (total /. 1e6)
             (self_of path total /. 1e6)))
      paths
  end;
  let cs = List.filter (fun (_, v) -> v <> 0) (counters s) in
  if cs <> [] then begin
    Buffer.add_string buf "counters:\n";
    List.iter
      (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "  %-46s %10d\n" n v))
      (List.sort compare cs)
  end;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let chrome_trace s =
  let all = spans s in
  let t_base =
    List.fold_left
      (fun acc r -> if Int64.compare r.sp_t0 acc < 0 then r.sp_t0 else acc)
      (match all with [] -> 0L | r :: _ -> r.sp_t0)
      all
  in
  let us_of ns = Int64.to_float (Int64.sub ns t_base) /. 1e3 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf "\n";
    Buffer.add_string buf s
  in
  (* One lane per (domain, lane label): unlabeled spans keep their
     domain id as tid; labeled ones (sessions multiplexed on one
     domain) get synthetic tids past the real domain ids, so each
     session renders as its own named track. *)
  let keys =
    List.sort_uniq compare (List.map (fun r -> (r.sp_tid, r.sp_lane)) all)
  in
  let max_tid = List.fold_left (fun acc r -> max acc r.sp_tid) 0 all in
  let display = Hashtbl.create 8 in
  let next = ref max_tid in
  List.iter
    (fun (tid, lane) ->
      let dt =
        match lane with
        | None -> tid
        | Some _ ->
          next := !next + 1;
          !next
      in
      Hashtbl.replace display (tid, lane) dt;
      let name =
        match lane with
        | None -> Printf.sprintf "domain %d" tid
        | Some l -> Printf.sprintf "domain %d \xc2\xb7 %s" tid (json_escape l)
      in
      emit
        (Printf.sprintf
           "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\
            \"args\":{\"name\":\"%s\"}}"
           dt name))
    keys;
  let tid_of r =
    Option.value ~default:r.sp_tid
      (Hashtbl.find_opt display (r.sp_tid, r.sp_lane))
  in
  List.iter
    (fun r ->
      let args =
        match r.sp_args with
        | [] -> ""
        | kvs ->
          ",\"args\":{"
          ^ String.concat ","
              (List.map
                 (fun (k, v) ->
                   Printf.sprintf "\"%s\":\"%s\"" (json_escape k)
                     (json_escape v))
                 kvs)
          ^ "}"
      in
      emit
        (Printf.sprintf
           "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"name\":\"%s\",\
            \"cat\":\"ped\",\"ts\":%.3f,\"dur\":%.3f%s}"
           (tid_of r) (json_escape r.sp_name) (us_of r.sp_t0)
           (ms_of_ns (Int64.sub r.sp_t1 r.sp_t0) *. 1e3)
           args))
    all;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let write_chrome_trace s path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (chrome_trace s))

let metrics_json s =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"counters\":{";
  let cs = List.sort compare (counters s) in
  List.iteri
    (fun i (n, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (json_escape n) v))
    cs;
  Buffer.add_string buf "},\"histograms\":{";
  let hs = List.sort compare (histograms s) in
  List.iteri
    (fun i (n, h) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\"%s\":{\"count\":%d,\"sum\":%d,\"p50\":%d,\"p95\":%d,\
            \"buckets\":[%s]}"
           (json_escape n) (hist_count h) (hist_sum h)
           (hist_quantile h 0.5) (hist_quantile h 0.95)
           (String.concat ","
              (List.map
                 (fun (ub, n) -> Printf.sprintf "[%d,%d]" ub n)
                 (hist_buckets h)))))
    hs;
  Buffer.add_string buf "}}";
  Buffer.contents buf
