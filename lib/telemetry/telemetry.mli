(** Unified tracing, metrics, and profiling.

    Everything funnels through a {!sink}.  A sink owns three kinds of
    state: named monotonic {e counters}, log-scale {e histograms}, and
    per-domain logs of nested {e spans}.  Counters and histograms are
    always live on a sink built with {!make}; span recording is a
    per-sink switch so the (hot) span API costs one load and branch
    when off.  {!null} is fully inert — every operation against it is
    a no-op — and is the initial value of the process-wide
    {!default} sink, so permanently-instrumented code pays a few
    nanoseconds until someone opts in.

    Spans are strictly nested per domain (opened and closed on the
    domain that created them); each domain appends to its own log, so
    concurrent emission never produces torn or interleaved records.
    Exporters render a human profile tree, a Chrome [trace_event]
    JSON file (one lane per domain), and a machine-readable metrics
    dump. *)

type sink
type counter
type histogram

(** A handle returned by {!open_span}; must be passed to
    {!close_span} in LIFO order. *)
type scope

(** Raised by {!close_span} on out-of-order or double close. *)
exception Discipline of string

(** Nanoseconds on the system monotonic clock ([CLOCK_MONOTONIC]).
    Safe across domains; never goes backwards. *)
external now_ns : unit -> (int64[@unboxed])
  = "tel_clock_ns_byte" "tel_clock_ns_unboxed"
[@@noalloc]

(** The inert sink: counters are dead, spans are never recorded. *)
val null : sink

(** A live sink.  Counters and histograms count from the start;
    span recording follows [record_spans] (default [false]) and can
    be flipped later with {!set_recording}. *)
val make : ?record_spans:bool -> unit -> sink

(** A live sink that records spans from the start — the
    capture-then-analyze configuration used by the performance
    debugger ({!drain_spans} hands the capture over). *)
val retained : unit -> sink

(** Process-wide default sink, initially {!null}.  Instrumentation
    points that have no natural way to receive a sink (deep library
    code, transformation catalog entries) emit here. *)
val default : unit -> sink

val set_default : sink -> unit

(** [metrics_on s] is false only for {!null}: guard work that exists
    purely to feed counters (e.g. building a counter name). *)
val metrics_on : sink -> bool

val recording : sink -> bool
val set_recording : sink -> bool -> unit

(** {1 Counters and histograms}

    Handles are interned by name: two lookups of the same name on the
    same sink return the same handle.  Updates are atomic and safe
    from any domain. *)

val counter : sink -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit

(** Accumulate a nanosecond interval into a counter ([int] holds
    ~292 years of nanoseconds on 64-bit). *)
val add_ns : counter -> int64 -> unit

val value : counter -> int

val histogram : sink -> string -> histogram

(** [observe h v] records sample [v] (clamped below at 0) into
    power-of-two buckets: bucket 0 holds 0, bucket [i] holds
    [2^(i-1) <= v < 2^i]. *)
val observe : histogram -> int -> unit

val hist_count : histogram -> int
val hist_sum : histogram -> int

(** Non-empty buckets as [(inclusive upper bound, count)], ascending. *)
val hist_buckets : histogram -> (int * int) list

(** [hist_quantile h q] — the smallest bucket upper bound covering at
    least fraction [q] (clamped to [0,1]) of the recorded samples; 0
    on an empty histogram.  Resolution is the power-of-two bucket
    width. *)
val hist_quantile : histogram -> float -> int

(** The bucket index {!observe} files a value under (exposed for
    tests). *)
val bucket_index : int -> int

(** {1 Spans} *)

(** [span s name f] runs [f] inside a span when [s] is recording and
    is exception-safe; when not recording it is just [f ()]. *)
val span : sink -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

val open_span : sink -> ?args:(string * string) list -> string -> scope

(** Closes the innermost open span of the calling domain; raises
    {!Discipline} if [scope] is not that span or is already
    closed. *)
val close_span : scope -> unit

(** [timed s c f] accumulates the monotonic duration of [f] into
    counter [c]; when [span_name] is given and [s] is recording, the
    interval is also emitted as a span.  Compiles to just [f ()]
    against {!null}. *)
val timed : sink -> ?span_name:string -> counter -> (unit -> 'a) -> 'a

(** [with_lane s lane f] — label every span the calling domain opens
    on [s] during [f] with [lane] (nests; the previous lane is
    restored).  Exporters give each (domain, lane) pair its own
    track, so concurrent sessions multiplexed over one domain — the
    analysis server — stay distinguishable in [ped --trace] output.
    Free when [s] is not recording. *)
val with_lane : sink -> string -> (unit -> 'a) -> 'a

(** {1 Inspection (tests, exporters)} *)

type span_record = {
  sp_name : string;
  sp_path : string list;  (** outermost-first, ending with [sp_name] *)
  sp_tid : int;           (** id of the emitting domain *)
  sp_lane : string option;
      (** ambient {!with_lane} label at open time (session id under
          the analysis server) *)
  sp_t0 : int64;
  sp_t1 : int64;
  sp_args : (string * string) list;
}

(** All closed spans, sorted by (domain, start time). *)
val spans : sink -> span_record list

val reset_spans : sink -> unit

(** Atomically {!spans} then {!reset_spans}: take ownership of the
    capture so far (perfdebug takes one run's spans this way). *)
val drain_spans : sink -> span_record list

val counters : sink -> (string * int) list

(** {1 Exporters} *)

(** Human-readable tree: spans aggregated by path with count, total
    and self time, followed by non-zero counters. *)
val profile_report : sink -> string

(** Chrome [trace_event] JSON ({["{"traceEvents":[...]}"]}): one
    complete ["ph":"X"] event per span, one lane ([tid]) per
    (domain, {!with_lane} label) pair with a [thread_name] metadata
    record — labeled lanes get synthetic tids past the real domain
    ids.  Open in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto}. *)
val chrome_trace : sink -> string

val write_chrome_trace : sink -> string -> unit

(** [{"counters":{...},"histograms":{...}}] for bench; each histogram
    object carries [count], [sum], [p50]/[p95] (bucket-resolution
    quantiles) and the non-empty [buckets]. *)
val metrics_json : sink -> string
