(** Domain-safety audit of the analysis stack.

    The batch driver can run jobs on multiple OCaml domains, and the
    staged analyzer ([Ddg.compute ?runner]) can fan one session's
    dependence-test buckets across a pool — but how much state may be
    {e shared} across domains is a property of the code, not a flag.
    This module is the reviewed inventory that justifies both
    policies, and its verdicts are computed from the inventory rather
    than asserted:

    - {!sharing_across_domains} — may one {!Cache} serve sessions on
      different domains concurrently?  True since the dependence-test
      bucket memo became mutex-guarded (atomic counters, locked
      table) and the scalar environments were verified eager and
      read-only after construction.
    - {!parallel_analysis} — may one session's bucket tests run on
      worker domains ([--analysis-domains N])?  Covers exactly the
      state the staged plan/test/assemble pipeline touches from
      workers.

    Demote any row to [Unsafe] and the dependent verdicts flip back;
    the drivers ([ped batch], [ped serve], [ped --analysis-domains])
    refuse the corresponding configuration instead of racing. *)

type safety =
  | Safe      (** usable from any domain concurrently as-is *)
  | Guarded   (** safe because of an explicit lock / atomic *)
  | Unsafe    (** must stay confined to one domain *)

type component = { comp : string; safety : safety; notes : string }

(** The reviewed inventory of process-global and cross-session
    mutable state, one row per component. *)
val components : component list

(** Whether one {!Cache} may be handed to sessions running on
    different domains concurrently.  [false] while any shared-path
    component is [Unsafe]. *)
val sharing_across_domains : bool

(** The component names the staged parallel analyzer reads or writes
    from worker domains — the rows {!parallel_analysis} quantifies
    over. *)
val parallel_analysis_path : string list

(** Whether dependence-test buckets of one analysis may be fanned out
    across a domain pool.  [false] while any component on
    {!parallel_analysis_path} is [Unsafe]. *)
val parallel_analysis : bool

(** The refusal message drivers print when a configuration asks for
    parallel analysis while {!parallel_analysis} is [false]. *)
val refuse_parallel_analysis : what:string -> string

(** The inventory and verdicts, as text ([ped batch --audit]). *)
val report : unit -> string
