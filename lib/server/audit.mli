(** Domain-safety audit of the analysis stack.

    The batch driver can run jobs on multiple OCaml domains, but how
    much state may be {e shared} across them is a property of the
    code, not a flag — this module is the reviewed inventory that
    justifies the driver's policy.  The verdict
    ({!sharing_across_domains} = [false]): per-domain state is safe,
    so jobs can be {e partitioned} across domains each with a private
    {!Cache}, but one cache must not be shared by concurrently
    running domains — the dependence-test bucket memo is consulted
    from inside [Ddg.compute] without a lock, and scalar environments
    carry unsynchronized lazy memo tables.

    When one of the [Unsafe] rows is fixed (locking the bucket memo,
    freezing environments), flip the verdict here and the batch
    driver's partitioned mode becomes a fully shared one. *)

type safety =
  | Safe      (** usable from any domain concurrently as-is *)
  | Guarded   (** safe because of an explicit lock / atomic *)
  | Unsafe    (** must stay confined to one domain *)

type component = { comp : string; safety : safety; notes : string }

(** The reviewed inventory of process-global and cross-session
    mutable state, one row per component. *)
val components : component list

(** Whether one {!Cache} may be handed to sessions running on
    different domains concurrently.  [false] while any shared-path
    component is [Unsafe]. *)
val sharing_across_domains : bool

(** The inventory and verdict, as text ([ped batch --audit]). *)
val report : unit -> string
