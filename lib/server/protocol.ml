type request =
  | Open of { rsid : string; file : string; unit_name : string option }
  | Cmd of { rsid : string; line : string }
  | Stats of string
  | Sessions
  | Cache_stats
  | Close of string
  | Quit

(* First two whitespace-separated tokens, and everything after the
   second — [cmd ID ...] must keep the command line verbatim,
   including any run of spaces inside an edit's text. *)
let split_verb (line : string) : string * string =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
    ( String.sub line 0 i,
      String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

let parse (line : string) : (request, string) result =
  let line = String.trim line in
  let verb, rest = split_verb line in
  match verb with
  | "" -> Error "empty request"
  | "open" -> (
    match String.split_on_char ' ' rest |> List.filter (( <> ) "") with
    | [ rsid; file ] -> Ok (Open { rsid; file; unit_name = None })
    | [ rsid; file; u ] -> Ok (Open { rsid; file; unit_name = Some u })
    | _ -> Error "usage: open ID FILE [UNIT]")
  | "cmd" -> (
    let rsid, cmdline = split_verb rest in
    match (rsid, cmdline) with
    | "", _ | _, "" -> Error "usage: cmd ID COMMAND..."
    | rsid, line -> Ok (Cmd { rsid; line }))
  | "stats" ->
    if rest = "" then Error "usage: stats ID" else Ok (Stats rest)
  | "sessions" -> Ok Sessions
  | "cache" -> Ok Cache_stats
  | "close" ->
    if rest = "" then Error "usage: close ID" else Ok (Close rest)
  | "quit" -> Ok Quit
  | v -> Error (Printf.sprintf "unknown request %S" v)

let payload_of_text (text : string) : string list =
  match String.split_on_char '\n' text with
  | [ "" ] -> []
  | lines -> (
    (* drop a single trailing newline's empty segment *)
    match List.rev lines with
    | "" :: rev -> List.rev rev
    | _ -> lines)

let respond oc (r : (string * string list, string) result) : unit =
  (match r with
  | Ok (id, payload) ->
    output_string oc (if id = "" then "ok\n" else "ok " ^ id ^ "\n");
    List.iter (fun l -> output_string oc ("| " ^ l ^ "\n")) payload
  | Error msg ->
    output_string oc
      ("err " ^ String.concat " / " (String.split_on_char '\n' msg) ^ "\n"));
  output_string oc ".\n";
  flush oc
