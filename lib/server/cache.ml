open Dependence

(* Summaries and unit results share one keyed store under one byte
   budget; the namespace prefix keeps an (improbable) summary/unit
   fingerprint collision from aliasing. *)
type value =
  | Summary of Interproc.Summary.t
  | Unit_result of Depenv.t * Ddg.t
  | Blob of string

type entry = { value : value; size : int; mutable tick : int }

type t = {
  mutex : Mutex.t;
  table : (string, entry) Hashtbl.t;
  buckets : Ddg.cache;
  budget_bytes : int;
  mutable clock : int;
  mutable bytes : int;
  c_hits : Telemetry.counter;
  c_misses : Telemetry.counter;
  c_insertions : Telemetry.counter;
  c_evictions : Telemetry.counter;
}

let create ?telemetry ?(budget_mb = 256) () : t =
  if budget_mb < 1 then invalid_arg "Cache.create: budget_mb must be >= 1";
  let sink =
    match telemetry with Some s -> s | None -> Telemetry.make ()
  in
  let c = Telemetry.counter sink in
  {
    mutex = Mutex.create ();
    table = Hashtbl.create 64;
    buckets = Ddg.make_cache ();
    budget_bytes = budget_mb * 1024 * 1024;
    clock = 0;
    bytes = 0;
    c_hits = c "server.cache.hits";
    c_misses = c "server.cache.misses";
    c_insertions = c "server.cache.insertions";
    c_evictions = c "server.cache.evictions";
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Estimated size of everything the value keeps alive.  Entries that
   share structure (two results over one AST) are double-counted —
   the cache under-uses its budget rather than overrunning it. *)
let sizeof (v : value) : int =
  Obj.reachable_words (Obj.repr v) * (Sys.word_size / 8)

let evict_over_budget t =
  while t.bytes > t.budget_bytes && Hashtbl.length t.table > 0 do
    let victim =
      Hashtbl.fold
        (fun key e acc ->
          match acc with
          | Some (_, oldest) when oldest.tick <= e.tick -> acc
          | _ -> Some (key, e))
        t.table None
    in
    match victim with
    | None -> ()
    | Some (key, e) ->
      Hashtbl.remove t.table key;
      t.bytes <- t.bytes - e.size;
      Telemetry.incr t.c_evictions
  done

let find t key : value option =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table key with
  | Some e ->
    t.clock <- t.clock + 1;
    e.tick <- t.clock;
    Telemetry.incr t.c_hits;
    Some e.value
  | None ->
    Telemetry.incr t.c_misses;
    None

(* First writer wins: under interleaving two sessions may race to
   publish the same fingerprint, and both computed the same thing. *)
let add t key (v : value) : unit =
  locked t @@ fun () ->
  if not (Hashtbl.mem t.table key) then begin
    let size = sizeof v in
    t.clock <- t.clock + 1;
    Hashtbl.replace t.table key { value = v; size; tick = t.clock };
    t.bytes <- t.bytes + size;
    Telemetry.incr t.c_insertions;
    evict_over_budget t
  end

let summary_key fp = "summary:" ^ fp
let unit_key fp = "unit:" ^ fp
let blob_key k = "blob:" ^ k

let sharing t : Engine.sharing =
  {
    Engine.sh_find_summary =
      (fun fp ->
        match find t (summary_key fp) with
        | Some (Summary s) -> Some s
        | _ -> None);
    sh_add_summary = (fun fp s -> add t (summary_key fp) (Summary s));
    sh_find_unit =
      (fun fp ->
        match find t (unit_key fp) with
        | Some (Unit_result (env, ddg)) -> Some (env, ddg)
        | _ -> None);
    sh_add_unit = (fun fp (env, ddg) -> add t (unit_key fp) (Unit_result (env, ddg)));
    sh_ddg_cache = Some t.buckets;
  }

let ddg_cache t = t.buckets
let add_blob t key s = add t (blob_key key) (Blob s)

let find_blob t key =
  match find t (blob_key key) with Some (Blob s) -> Some s | _ -> None

(* ---- statistics ---- *)

type stats = {
  entries : int;
  bytes : int;
  budget_bytes : int;
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  bucket_entries : int;
}

let stats t : stats =
  locked t @@ fun () ->
  {
    entries = Hashtbl.length t.table;
    bytes = t.bytes;
    budget_bytes = t.budget_bytes;
    hits = Telemetry.value t.c_hits;
    misses = Telemetry.value t.c_misses;
    insertions = Telemetry.value t.c_insertions;
    evictions = Telemetry.value t.c_evictions;
    bucket_entries = Ddg.cache_entries t.buckets;
  }

let hit_rate (s : stats) : float =
  let total = s.hits + s.misses in
  if total = 0 then 0. else float_of_int s.hits /. float_of_int total

let report t =
  let s = stats t in
  String.concat "\n"
    [
      Printf.sprintf "shared cache: %d entries, %d KiB of %d KiB budget"
        s.entries (s.bytes / 1024) (s.budget_bytes / 1024);
      Printf.sprintf "  lookups : %d hits, %d misses (%.0f%% hit rate)" s.hits
        s.misses (100. *. hit_rate s);
      Printf.sprintf "  churn   : %d insertions, %d evictions" s.insertions
        s.evictions;
      Printf.sprintf "  ddg memo: %d buckets" s.bucket_entries;
    ]

(* ---- persistence ---- *)

(* Bump when the on-disk layout changes.  The compiler version is
   folded in because the payload is Marshal output. *)
let format_version = "1"

let version_fingerprint () =
  Digest.to_hex
    (Digest.string ("pedcache|" ^ format_version ^ "|" ^ Sys.ocaml_version))

let magic = "PEDCACHE1"
let cache_file ~dir = Filename.concat dir "ddg-buckets.pedcache"

let save t ~dir : (int, string) result =
  match
    let payload = locked t (fun () -> Ddg.export_cache t.buckets) in
    let count = Ddg.cache_entries t.buckets in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let file = cache_file ~dir in
    Out_channel.with_open_bin file (fun oc ->
        Out_channel.output_string oc (magic ^ "\n");
        Out_channel.output_string oc (version_fingerprint () ^ "\n");
        Out_channel.output_string oc payload);
    count
  with
  | count -> Ok count
  | exception Sys_error e -> Error e

let load t ~dir : (int, string) result =
  let file = cache_file ~dir in
  if not (Sys.file_exists file) then Ok 0
  else
    match In_channel.with_open_bin file In_channel.input_all with
    | exception Sys_error e -> Error e
    | raw -> (
      match String.split_on_char '\n' raw with
      | m :: _ when m <> magic ->
        Error (Printf.sprintf "%s: not a ped cache file" file)
      | _ :: fp :: _ when fp <> version_fingerprint () ->
        Error
          (Printf.sprintf
             "%s: format fingerprint %s does not match this binary's %s; \
              cache rejected"
             file fp
             (version_fingerprint ()))
      | _ :: fp :: _ -> (
        let header = String.length magic + 1 + String.length fp + 1 in
        let payload = String.sub raw header (String.length raw - header) in
        match
          locked t (fun () -> Ddg.import_cache payload ~into:t.buckets)
        with
        | added -> Ok added
        | exception _ -> Error (Printf.sprintf "%s: corrupt payload" file))
      | _ -> Error (Printf.sprintf "%s: truncated header" file))
