(** The multi-session analysis server.

    One server multiplexes many editor sessions over a single
    process: every session is plugged into one shared {!Cache}
    through the engine's sharing hooks, so work any session does —
    interprocedural summaries, unit analyses, dependence-test
    buckets — is visible to every other session keyed by content
    fingerprint.  Programs are canonically renumbered at open
    ({!Fortran_front.Ast.renumber_program}), which is what makes two
    sessions over identical source produce identical fingerprints in
    the first place.

    Requests are handled on the calling domain, interleaved; each
    one runs inside [Telemetry.with_lane sink ("session " ^ id)]
    under a [server.request] span, so a recorded trace ([ped serve
    --trace]) shows one lane per session even though they share a
    domain. *)

open Ped

type t

(** [create ()] — a server with no sessions.  [cache] (default: a
    fresh 256 MiB one) is the shared store; [history_limit] is
    handed to each session's undo stack; [telemetry] is the one sink
    every session's engine and every request span emits to.
    [runner] fans each analysis's dependence-test buckets across a
    domain pool ([ped serve --analysis-domains N]) — requests are
    interleaved on one domain, so every session may share it; raises
    [Invalid_argument] if {!Audit.parallel_analysis} forbids it. *)
val create :
  ?telemetry:Telemetry.sink ->
  ?cache:Cache.t ->
  ?runner:Dependence.Ddg.runner ->
  ?history_limit:int ->
  unit ->
  t

val cache : t -> Cache.t
val telemetry : t -> Telemetry.sink

(** Open sessions, as [(id, focus unit)], oldest first. *)
val sessions : t -> (string * string) list

val find_session : t -> string -> Session.t option

(** [open_session t ~id ~file ~source ~unit_name] — parse, renumber,
    and load a session sharing the server's cache.  [Error] if [id]
    is already open, the source does not parse, or the unit does not
    exist. *)
val open_session :
  t ->
  id:string ->
  file:string ->
  source:string ->
  unit_name:string option ->
  (Session.t, string) result

(** Handle one request; the response is [(echoed session id, payload
    lines)].  [Quit] is handled as a successful no-op — stopping the
    loop is the caller's job. *)
val handle : t -> Protocol.request -> (string * string list, string) result

(** Read framed requests from [ic] and write framed responses to
    [oc] until [quit] or end of input (see {!Protocol}).  Blank
    lines are ignored. *)
val serve : t -> in_channel -> out_channel -> unit
