open Fortran_front
open Ped

type job = {
  j_id : string;
  j_file : string;
  j_source : string;
  j_unit : string option;
  j_script : string list;
}

type job_result = {
  jr_id : string;
  jr_unit : string;
  jr_commands : int;
  jr_edits : int;
  jr_ddg_digest : string;
  jr_scratch_digest : string option;
  jr_error : string option;
}

type outcome = {
  o_jobs : int;
  o_domains : int;
  o_commands : int;
  o_edits : int;
  o_elapsed_s : float;
  o_identical : bool option;
  o_cache : Cache.stats;
  o_results : job_result list;
}

let sessions_per_sec o =
  if o.o_elapsed_s <= 0. then 0. else float_of_int o.o_jobs /. o.o_elapsed_s

let edits_per_sec o =
  if o.o_elapsed_s <= 0. then 0. else float_of_int o.o_edits /. o.o_elapsed_s

(* ---- job files ---- *)

let parse_job_line ~dir ~lineno ~idx (line : string) : (job, string) result =
  let fail fmt =
    Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" lineno m)) fmt
  in
  match
    let sep = "::" in
    let rec find i =
      if i + String.length sep > String.length line then None
      else if String.sub line i (String.length sep) = sep then Some i
      else find (i + 1)
    in
    find 0
  with
  | None -> fail "expected FILE[#UNIT] :: cmd ; cmd"
  | Some i -> (
    let left = String.trim (String.sub line 0 i) in
    let right =
      String.sub line (i + 2) (String.length line - i - 2)
    in
    let file, unit_name =
      match String.index_opt left '#' with
      | Some h ->
        ( String.sub left 0 h,
          Some (String.sub left (h + 1) (String.length left - h - 1)) )
      | None -> (left, None)
    in
    if file = "" then fail "missing source file"
    else
      let path = if Filename.is_relative file then Filename.concat dir file else file in
      if not (Sys.file_exists path) then fail "no such file %s" path
      else
        let source = In_channel.with_open_bin path In_channel.input_all in
        let script =
          String.split_on_char ';' right
          |> List.map String.trim
          |> List.filter (( <> ) "")
        in
        Ok
          {
            j_id = Printf.sprintf "j%d:%s" idx (Filename.basename file);
            j_file = path;
            j_source = source;
            j_unit = unit_name;
            j_script = script;
          })

let parse_job_file (path : string) : (job list, string) result =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "no such job file %s" path)
  else begin
    let dir = Filename.dirname path in
    let lines =
      In_channel.with_open_bin path In_channel.input_all
      |> String.split_on_char '\n'
    in
    let rec go lineno idx acc = function
      | [] -> Ok (List.rev acc)
      | line :: rest ->
        let t = String.trim line in
        if t = "" || t.[0] = '#' then go (lineno + 1) idx acc rest
        else begin
          match parse_job_line ~dir ~lineno ~idx t with
          | Error e -> Error (path ^ ": " ^ e)
          | Ok j -> go (lineno + 1) (idx + 1) (j :: acc) rest
        end
    in
    go 1 0 [] lines
  end

(* ---- execution ---- *)

let is_edit (line : string) =
  match String.split_on_char ' ' (String.trim line) with
  | verb :: _ -> List.mem verb [ "edit"; "apply"; "undo"; "redo" ]
  | [] -> false

(* [No_sharing] canonicalizes the bytes: a graph rebuilt through the
   shared bucket memo carries more internal sharing than a fresh
   build (equal dependence lists served as one physical value), and
   the default sharing-aware format would flag structurally equal
   graphs as different.  The graph is pure acyclic data, so expansion
   terminates and equal graphs marshal identically. *)
let digest_ddg ddg =
  Digest.to_hex (Digest.string (Marshal.to_string ddg [ Marshal.No_sharing ]))

let resolve_unit (program : Ast.program) = function
  | Some n -> Ok n
  | None -> (
    match
      List.find_opt
        (fun (u : Ast.program_unit) -> u.Ast.kind = Ast.Main)
        program.Ast.punits
    with
    | Some u -> Ok u.Ast.uname
    | None -> (
      match program.Ast.punits with
      | u :: _ -> Ok u.Ast.uname
      | [] -> Error "empty program"))

(* Canonical renumbering at open — the same normalization the server
   applies — is what lets two jobs over identical source share cache
   entries, and what makes the from-scratch replay byte-comparable. *)
let open_job ?sharing ?caching ?runner ~sink ~history_limit (j : job) :
    (Session.t, string) result =
  match Parser.parse_program ~file:j.j_file j.j_source with
  | exception Parser.Error (msg, loc) ->
    Error (Format.asprintf "syntax error at %a: %s" Loc.pp loc msg)
  | exception Lexer.Error (msg, loc) ->
    Error (Format.asprintf "lexical error at %a: %s" Loc.pp loc msg)
  | program -> (
    let program = Ast.renumber_program program in
    match resolve_unit program j.j_unit with
    | Error e -> Error e
    | Ok unit_name -> (
      match
        Session.load ?sharing ?caching ?runner ~history_limit ~telemetry:sink
          program ~unit_name
      with
      | exception Invalid_argument e -> Error e
      | exception Failure e -> Error e
      | s -> Ok s))

let failed_result (j : job) e =
  {
    jr_id = j.j_id;
    jr_unit = "";
    jr_commands = 0;
    jr_edits = 0;
    jr_ddg_digest = "";
    jr_scratch_digest = None;
    jr_error = Some e;
  }

let finish_result (j : job) s ~commands ~edits =
  {
    jr_id = j.j_id;
    jr_unit = Session.unit_name s;
    jr_commands = commands;
    jr_edits = edits;
    jr_ddg_digest = digest_ddg (Session.ddg s);
    jr_scratch_digest = None;
    jr_error = None;
  }

let run_cmd sink (j : job) s line =
  Telemetry.with_lane sink ("session " ^ j.j_id) @@ fun () ->
  Telemetry.span sink "server.request"
    ~args:[ ("session", j.j_id); ("request", "cmd") ]
  @@ fun () -> ignore (Command.run s line)

(* One job, start to finish, on the calling domain. *)
let exec_one ?sharing ?runner ~sink ~history_limit (j : job) : job_result =
  match open_job ?sharing ?runner ~sink ~history_limit j with
  | Error e -> failed_result j e
  | Ok s -> (
    match
      List.iter (fun line -> run_cmd sink j s line) j.j_script
    with
    | () ->
      finish_result j s ~commands:(List.length j.j_script)
        ~edits:(List.length (List.filter is_edit j.j_script))
    | exception e -> failed_result j (Printexc.to_string e))

(* Interleaved mode: all sessions open, then one command at a time
   round-robin — deterministic multiplexing over one fully shared
   cache, the batch model of the interactive server under load. *)
let run_interleaved ?runner ~sink ~cache ~history_limit (jobs : job array) :
    job_result array =
  let sharing = Cache.sharing cache in
  let state =
    Array.map
      (fun j ->
        match open_job ~sharing ?runner ~sink ~history_limit j with
        | Ok s -> (j, Ok s, ref j.j_script, ref 0, ref 0)
        | Error e -> (j, Error e, ref [], ref 0, ref 0))
      jobs
  in
  let live = ref true in
  while !live do
    live := false;
    Array.iter
      (fun (j, so, queue, commands, edits) ->
        match (so, !queue) with
        | Ok s, line :: rest ->
          queue := rest;
          if rest <> [] then live := true;
          run_cmd sink j s line;
          incr commands;
          if is_edit line then incr edits
        | _ -> ())
      state
  done;
  Array.map
    (fun (j, so, _, commands, edits) ->
      match so with
      | Error e -> failed_result j e
      | Ok s -> finish_result j s ~commands:!commands ~edits:!edits)
    state

(* Partitioned mode: jobs split across worker domains.  The Audit
   verdict decides the cache policy at run time: with
   [sharing_across_domains] every worker shares one mutex-guarded
   cache (seeded by the caller's, when given); if the inventory ever
   demotes a shared component back to Unsafe, the driver falls back
   to one private cache per worker without code changes. *)
let run_partitioned ?cache ~sink ~history_limit ~domains (jobs : job array) :
    job_result array * Cache.stats list =
  let shared = Audit.sharing_across_domains in
  let caches =
    if shared then
      [| (match cache with
         | Some c -> c
         | None -> Cache.create ~telemetry:sink ()) |]
    else Array.init domains (fun _ -> Cache.create ~telemetry:sink ())
  in
  let results = Array.map failed_result jobs |> Array.map (fun f -> f "unrun") in
  let pool = Runtime.Pool.create ~telemetry:sink domains in
  Fun.protect
    ~finally:(fun () -> Runtime.Pool.shutdown pool)
    (fun () ->
      Runtime.Pool.parallel_for pool ~schedule:Runtime.Pool.Chunk
        ~trip:(Array.length jobs)
        ~body:(fun ~worker i ->
          let cache =
            if shared then caches.(0) else caches.(worker mod domains)
          in
          results.(i) <-
            exec_one ~sharing:(Cache.sharing cache) ~sink ~history_limit
              jobs.(i)));
  (results, Array.to_list caches |> List.map Cache.stats)

let sum_stats (l : Cache.stats list) : Cache.stats =
  match l with
  | [] -> invalid_arg "sum_stats"
  | first :: rest ->
    List.fold_left
      (fun (a : Cache.stats) (b : Cache.stats) ->
        {
          Cache.entries = a.Cache.entries + b.Cache.entries;
          bytes = a.Cache.bytes + b.Cache.bytes;
          budget_bytes = a.Cache.budget_bytes + b.Cache.budget_bytes;
          hits = a.Cache.hits + b.Cache.hits;
          misses = a.Cache.misses + b.Cache.misses;
          insertions = a.Cache.insertions + b.Cache.insertions;
          evictions = a.Cache.evictions + b.Cache.evictions;
          bucket_entries = a.Cache.bucket_entries + b.Cache.bucket_entries;
        })
      first rest

(* From-scratch replay: no sharing, no caching — the baseline the
   shared runs must be byte-identical to. *)
let scratch_digest ~sink ~history_limit (j : job) : (string, string) result =
  match open_job ~caching:false ~sink ~history_limit j with
  | Error e -> Error e
  | Ok s -> (
    match List.iter (fun l -> ignore (Command.run s l)) j.j_script with
    | () -> Ok (digest_ddg (Session.ddg s))
    | exception e -> Error (Printexc.to_string e))

let run ?telemetry ?cache ?(domains = 1) ?(analysis_domains = 1)
    ?(history_limit = 1000) ?(check = false) (jobs : job list) :
    (outcome, string) result =
  let analysis_domains = max 1 analysis_domains in
  if jobs = [] then Error "no jobs"
  else if analysis_domains > 1 && not Audit.parallel_analysis then
    Error (Audit.refuse_parallel_analysis ~what:"ped batch")
  else if analysis_domains > 1 && domains > 1 then
    (* the analysis pool accepts one job at a time, so concurrent
       sessions cannot share it — the staged API can't guarantee this
       combination; pick one axis of parallelism *)
    Error
      "batch: --domains and --analysis-domains are mutually exclusive (the \
       analysis pool serves one session at a time)"
  else begin
    let sink =
      match telemetry with Some s -> s | None -> Telemetry.make ()
    in
    let jobs_a = Array.of_list jobs in
    let domains = max 1 (min domains (Array.length jobs_a)) in
    let t0 = Telemetry.now_ns () in
    let with_analysis_pool f =
      if analysis_domains <= 1 then f None
      else
        Runtime.Pool.with_pool ~telemetry:sink analysis_domains (fun pool ->
            f (Some (Runtime.Pool.analysis_runner pool)))
    in
    let results, cache_stats =
      if domains <= 1 then begin
        let cache =
          match cache with
          | Some c -> c
          | None -> Cache.create ~telemetry:sink ()
        in
        let results =
          with_analysis_pool (fun runner ->
              run_interleaved ?runner ~sink ~cache ~history_limit jobs_a)
        in
        (results, [ Cache.stats cache ])
      end
      else run_partitioned ?cache ~sink ~history_limit ~domains jobs_a
    in
    let elapsed_s =
      Int64.to_float (Int64.sub (Telemetry.now_ns ()) t0) /. 1e9
    in
    let results =
      if not check then Array.to_list results
      else
        Array.to_list results
        |> List.mapi (fun i r ->
               if r.jr_error <> None then r
               else
                 match scratch_digest ~sink ~history_limit jobs_a.(i) with
                 | Ok d -> { r with jr_scratch_digest = Some d }
                 | Error e ->
                   { r with jr_error = Some ("from-scratch replay: " ^ e) })
    in
    let identical =
      if not check then None
      else
        Some
          (List.for_all
             (fun r ->
               r.jr_error = None
               && r.jr_scratch_digest = Some r.jr_ddg_digest)
             results)
    in
    Ok
      {
        o_jobs = Array.length jobs_a;
        o_domains = domains;
        o_commands = List.fold_left (fun n r -> n + r.jr_commands) 0 results;
        o_edits = List.fold_left (fun n r -> n + r.jr_edits) 0 results;
        o_elapsed_s = elapsed_s;
        o_identical = identical;
        o_cache = sum_stats cache_stats;
        o_results = results;
      }
  end

let report (o : outcome) : string =
  let failures =
    List.filter_map
      (fun r -> Option.map (fun e -> (r.jr_id, e)) r.jr_error)
      o.o_results
  in
  String.concat "\n"
    ([
       Printf.sprintf
         "batch: %d job(s) on %d domain(s)%s — %d commands (%d edits) in \
          %.3fs"
         o.o_jobs o.o_domains
         (if o.o_domains <= 1 then " (interleaved, shared cache)"
          else if Audit.sharing_across_domains then
            " (partitioned, cache shared across domains)"
          else " (partitioned, per-domain caches)")
         o.o_commands o.o_edits o.o_elapsed_s;
       Printf.sprintf "  throughput : %.1f sessions/s, %.1f edits/s"
         (sessions_per_sec o) (edits_per_sec o);
       Printf.sprintf
         "  cache      : %d hits, %d misses (%.0f%% hit rate), %d evictions"
         o.o_cache.Cache.hits o.o_cache.Cache.misses
         (100. *. Cache.hit_rate o.o_cache)
         o.o_cache.Cache.evictions;
     ]
    @ (match o.o_identical with
      | None -> []
      | Some true ->
        [ "  check      : all DDGs byte-identical to from-scratch replay" ]
      | Some false ->
        [ "  check      : MISMATCH against from-scratch replay" ])
    @ List.map
        (fun (id, e) -> Printf.sprintf "  FAILED %s: %s" id e)
        failures)
