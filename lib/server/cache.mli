(** The cross-session analysis cache.

    One process-wide store shared by every session the analysis
    server (or batch driver) multiplexes: interprocedural summaries
    and per-unit analysis results keyed by the engine's content
    fingerprints, plus one shared dependence-test bucket memo so even
    sessions over {e partially} overlapping units share pair-test
    results.  Sessions plug in through {!sharing}, which produces the
    hook record {!Engine.create} accepts — the engine stays ignorant
    of the cache policy, the cache stays ignorant of the analysis.

    Keyed entries live under an LRU byte budget: each entry is sized
    at insertion ([Obj.reachable_words] — an overestimate when
    entries share structure, which is the safe direction), and once
    the total exceeds the budget the least-recently-used entries are
    evicted.  All table operations are mutex-guarded, so concurrent
    lookups from one domain's interleaved sessions are safe; see
    {!Audit} for why {e multi-domain} sharing is not offered.

    A cache can be persisted across processes ({!save}/{!load}).
    Only the dependence-test bucket memo is written — it is pure
    data, where summaries and scalar environments carry closures —
    and the file is guarded by a format fingerprint (layout version +
    compiler version), so a stale or foreign file is rejected rather
    than misread. *)

open Dependence

type t

(** [create ()] — an empty cache.  [budget_mb] (default 256) bounds
    the keyed-entry store; the bucket memo is not counted against it.
    [telemetry] (default: a fresh private sink) receives the
    [server.cache.hits] / [.misses] / [.insertions] / [.evictions]
    counters. *)
val create : ?telemetry:Telemetry.sink -> ?budget_mb:int -> unit -> t

(** The engine hook record: hand this to {!Engine.create} (or
    [Session.load ~sharing]) to let a session read and publish
    summaries, unit results, and dependence-test buckets through this
    cache. *)
val sharing : t -> Engine.sharing

(** The shared dependence-test bucket memo (what {!save} persists). *)
val ddg_cache : t -> Ddg.cache

(** {2 Raw entries}

    A string-keyed blob namespace in the same LRU store — used by
    tests to pin eviction order with entries of known size, available
    to future layers for derived artifacts. *)

val add_blob : t -> string -> string -> unit
val find_blob : t -> string -> string option

(** {2 Statistics} *)

type stats = {
  entries : int;          (** keyed entries currently resident *)
  bytes : int;            (** their total estimated size *)
  budget_bytes : int;
  hits : int;             (** keyed lookups served *)
  misses : int;
  insertions : int;
  evictions : int;        (** entries dropped by the LRU budget *)
  bucket_entries : int;   (** memoized dependence-test buckets *)
}

val stats : t -> stats

(** Hit rate of keyed lookups in [0,1] ([0.] before any lookup). *)
val hit_rate : stats -> float

val report : t -> string

(** {2 Persistence} *)

(** The file {!save} writes under a cache directory. *)
val cache_file : dir:string -> string

(** [save t ~dir] — write the bucket memo to [dir] (created if
    missing), guarded by the format fingerprint.  Returns the number
    of buckets written. *)
val save : t -> dir:string -> (int, string) result

(** [load t ~dir] — merge a previously saved bucket memo into [t].
    Returns the number of buckets added; [Ok 0] when no cache file
    exists.  A file whose format fingerprint does not match this
    binary's is rejected with [Error] and left unread. *)
val load : t -> dir:string -> (int, string) result

(** The format fingerprint {!save} stamps and {!load} verifies
    (exposed for the version-mismatch tests). *)
val version_fingerprint : unit -> string
