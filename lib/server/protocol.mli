(** The analysis server's line protocol.

    [ped serve] multiplexes editor sessions over stdin/stdout, one
    request per line, session-addressed:

    {v
    open ID FILE [UNIT]   start session ID on FILE (focus UNIT or main)
    cmd ID COMMAND...     run one editor command line in session ID
    stats ID              session ID's engine cache statistics
    sessions              list open sessions
    cache                 shared-cache statistics
    close ID              end session ID
    quit                  save caches (if configured) and exit
    v}

    Every request gets one framed response: a status line ([ok ID] or
    [err MESSAGE]), each payload line prefixed with ["| "], and a
    terminating ["."] line.  The prefix keeps payload content — which
    may contain anything the editor prints, including a bare dot —
    from being mistaken for the frame terminator, so a thin client
    can drive the server with three string operations. *)

type request =
  | Open of { rsid : string; file : string; unit_name : string option }
  | Cmd of { rsid : string; line : string }
  | Stats of string
  | Sessions
  | Cache_stats
  | Close of string
  | Quit

(** Parse one request line.  [Error] explains the malformation; blank
    lines are [Error] too (the caller decides whether to ignore
    them). *)
val parse : string -> (request, string) result

(** Write one framed response: [Ok (id, payload)] becomes
    [ok id] / ["| "]-prefixed payload lines / ["."]; [Error msg]
    becomes [err msg] / ["."].  Flushes. *)
val respond : out_channel -> (string * string list, string) result -> unit

(** Split a multi-line command output into payload lines (no trailing
    empty line). *)
val payload_of_text : string -> string list
