open Fortran_front
open Ped

type t = {
  cache : Cache.t;
  sink : Telemetry.sink;
  history_limit : int;
  runner : Dependence.Ddg.runner option;
  sessions : (string, Session.t) Hashtbl.t;
  mutable order : string list;  (* open order, oldest first *)
}

let create ?telemetry ?cache ?runner ?(history_limit = 1000) () : t =
  (* requests are interleaved on one domain, so one analysis pool can
     serve every session — but only if the audited staged path holds *)
  if Option.is_some runner && not Audit.parallel_analysis then
    invalid_arg (Audit.refuse_parallel_analysis ~what:"ped serve");
  let sink = match telemetry with Some s -> s | None -> Telemetry.make () in
  let cache =
    match cache with Some c -> c | None -> Cache.create ~telemetry:sink ()
  in
  { cache; sink; history_limit; runner; sessions = Hashtbl.create 8;
    order = [] }

let cache t = t.cache
let telemetry t = t.sink

let sessions t =
  List.filter_map
    (fun id ->
      Option.map (fun s -> (id, Session.unit_name s))
        (Hashtbl.find_opt t.sessions id))
    t.order

let find_session t id = Hashtbl.find_opt t.sessions id

(* Same default-unit rule as Session.load_source: the main program,
   else the first unit. *)
let resolve_unit (program : Ast.program) = function
  | Some n -> Ok n
  | None -> (
    match
      List.find_opt
        (fun (u : Ast.program_unit) -> u.Ast.kind = Ast.Main)
        program.Ast.punits
    with
    | Some u -> Ok u.Ast.uname
    | None -> (
      match program.Ast.punits with
      | u :: _ -> Ok u.Ast.uname
      | [] -> Error "empty program"))

let open_session t ~id ~file ~source ~unit_name =
  if Hashtbl.mem t.sessions id then
    Error (Printf.sprintf "session %s is already open" id)
  else
    match Parser.parse_program ~file source with
    | exception Parser.Error (msg, loc) ->
      Error (Format.asprintf "syntax error at %a: %s" Loc.pp loc msg)
    | exception Lexer.Error (msg, loc) ->
      Error (Format.asprintf "lexical error at %a: %s" Loc.pp loc msg)
    | program -> (
      (* Canonical statement ids: identical source in two sessions (or
         two processes) now fingerprints identically, so the shared
         cache actually dedups their work. *)
      let program = Ast.renumber_program program in
      match resolve_unit program unit_name with
      | Error e -> Error e
      | Ok unit_name -> (
        match
          Session.load ~sharing:(Cache.sharing t.cache) ?runner:t.runner
            ~history_limit:t.history_limit ~telemetry:t.sink program
            ~unit_name
        with
        | exception Invalid_argument e -> Error e
        | s ->
          Hashtbl.replace t.sessions id s;
          t.order <- t.order @ [ id ];
          Ok s))

let close_session t id =
  if not (Hashtbl.mem t.sessions id) then
    Error (Printf.sprintf "no session %s" id)
  else begin
    Hashtbl.remove t.sessions id;
    t.order <- List.filter (( <> ) id) t.order;
    Ok ()
  end

let read_file file =
  if not (Sys.file_exists file) then
    Error (Printf.sprintf "no such file %s" file)
  else
    match In_channel.with_open_bin file In_channel.input_all with
    | src -> Ok src
    | exception Sys_error e -> Error e

(* Every session-addressed request runs in that session's telemetry
   lane, under a server.request span — this is what keeps concurrent
   sessions apart in a recorded trace.  Latency also lands in a
   per-session histogram (histograms are live even when spans are
   off), which the stats response summarizes as quantiles. *)
let latency_hist t id =
  Telemetry.histogram t.sink ("server.request_ns.session " ^ id)

let in_lane t id verb f =
  Telemetry.with_lane t.sink ("session " ^ id) @@ fun () ->
  let t0 = Telemetry.now_ns () in
  Fun.protect
    ~finally:(fun () ->
      Telemetry.observe (latency_hist t id)
        (Int64.to_int (Int64.sub (Telemetry.now_ns ()) t0)))
    (fun () ->
      Telemetry.span t.sink "server.request"
        ~args:[ ("session", id); ("request", verb) ]
        f)

let latency_report t id =
  let h = latency_hist t id in
  let n = Telemetry.hist_count h in
  if n = 0 then "request latency: no requests yet"
  else
    let q p = float_of_int (Telemetry.hist_quantile h p) /. 1e6 in
    let mx =
      match List.rev (Telemetry.hist_buckets h) with
      | (ub, _) :: _ -> float_of_int ub /. 1e6
      | [] -> 0.0
    in
    Printf.sprintf
      "request latency: p50 %.3fms  p95 %.3fms  max %.3fms  (%d request%s)"
      (q 0.5) (q 0.95) mx n
      (if n = 1 then "" else "s")

let with_session t id f =
  match find_session t id with
  | None -> Error (Printf.sprintf "no session %s" id)
  | Some s -> f s

let handle t (req : Protocol.request) : (string * string list, string) result
    =
  match req with
  | Protocol.Open { rsid; file; unit_name } -> (
    match read_file file with
    | Error e -> Error e
    | Ok source -> (
      match
        in_lane t rsid "open" (fun () ->
            open_session t ~id:rsid ~file ~source ~unit_name)
      with
      | Error e -> Error e
      | Ok s ->
        Ok
          ( rsid,
            [
              Printf.sprintf "opened %s, focus %s; %d session(s)" file
                (Session.unit_name s)
                (Hashtbl.length t.sessions);
            ] )))
  | Protocol.Cmd { rsid; line } ->
    with_session t rsid (fun s ->
        let out = in_lane t rsid "cmd" (fun () -> Command.run s line) in
        Ok (rsid, Protocol.payload_of_text out))
  | Protocol.Stats rsid ->
    with_session t rsid (fun s ->
        Ok
          ( rsid,
            Protocol.payload_of_text
              (Session.engine_report s ^ "\n" ^ latency_report t rsid) ))
  | Protocol.Sessions ->
    Ok
      ( "",
        List.map
          (fun (id, unit_name) -> Printf.sprintf "%s %s" id unit_name)
          (sessions t) )
  | Protocol.Cache_stats -> Ok ("", Protocol.payload_of_text (Cache.report t.cache))
  | Protocol.Close rsid ->
    Result.map
      (fun () -> (rsid, [ Printf.sprintf "closed %s" rsid ]))
      (close_session t rsid)
  | Protocol.Quit -> Ok ("", [ "bye" ])

let serve t ic oc =
  let rec loop () =
    match In_channel.input_line ic with
    | None -> ()
    | Some line when String.trim line = "" -> loop ()
    | Some line -> (
      match Protocol.parse line with
      | Error e ->
        Protocol.respond oc (Error e);
        loop ()
      | Ok Protocol.Quit -> Protocol.respond oc (handle t Protocol.Quit)
      | Ok req ->
        Protocol.respond oc (handle t req);
        loop ())
  in
  loop ()
