type safety = Safe | Guarded | Unsafe

type component = { comp : string; safety : safety; notes : string }

let components =
  [
    {
      comp = "Ast.sid_counter";
      safety = Guarded;
      notes =
        "global statement-id source; Atomic fetch-and-add, and \
         renumber_program keeps ids canonical per program";
    };
    {
      comp = "Telemetry sink";
      safety = Safe;
      notes =
        "counters/histograms are atomic; span logs are per-domain \
         (Domain.DLS), so concurrent emission never tears";
    };
    {
      comp = "Server.Cache keyed table";
      safety = Guarded;
      notes = "every lookup/insert/eviction holds the cache mutex";
    };
    {
      comp = "Ddg bucket memo (Cache.ddg_cache)";
      safety = Unsafe;
      notes =
        "consulted and mutated inside Ddg.compute without a lock; \
         concurrent compute on two domains would race the Hashtbl";
    };
    {
      comp = "Depenv.t scalar environments";
      safety = Unsafe;
      notes =
        "cached unit results carry closures over lazy memo tables \
         with no synchronization; a shared hit on another domain \
         would race their fill-in";
    };
    {
      comp = "Session / Engine local tables";
      safety = Safe;
      notes = "confined: one session lives on one domain by design";
    };
    {
      comp = "Runtime.Pool";
      safety = Guarded;
      notes = "mutex/condition job handoff; atomic self-scheduling";
    };
  ]

(* The verdict is computed, not asserted: fix the Unsafe rows and it
   flips on its own. *)
let sharing_across_domains =
  List.for_all (fun c -> c.safety <> Unsafe) components

let safety_to_string = function
  | Safe -> "safe"
  | Guarded -> "guarded"
  | Unsafe -> "unsafe"

let report () =
  let rows =
    List.map
      (fun c ->
        Printf.sprintf "  %-38s %-8s %s" c.comp (safety_to_string c.safety)
          c.notes)
      components
  in
  String.concat "\n"
    ([ "domain-safety audit of shared state:" ] @ rows
    @ [
        (if sharing_across_domains then
           "verdict: one shared cache may serve all domains"
         else
           "verdict: cross-domain cache sharing disabled — multi-domain \
            batch partitions jobs, one private cache per domain; the fully \
            shared cache needs a single domain (interleaved mode)");
      ])
