type safety = Safe | Guarded | Unsafe

type component = { comp : string; safety : safety; notes : string }

let components =
  [
    {
      comp = "Ast.sid_counter";
      safety = Guarded;
      notes =
        "global statement-id source; Atomic fetch-and-add, and \
         renumber_program keeps ids canonical per program";
    };
    {
      comp = "Telemetry sink";
      safety = Safe;
      notes =
        "counters/histograms are atomic; span logs are per-domain \
         (Domain.DLS), so concurrent emission never tears";
    };
    {
      comp = "Server.Cache keyed table";
      safety = Guarded;
      notes = "every lookup/insert/eviction holds the cache mutex";
    };
    {
      comp = "Ddg bucket memo (Cache.ddg_cache)";
      safety = Guarded;
      notes =
        "bucket table mutex-guarded, run counters atomic; probed and \
         filled concurrently by parallel bucket tests and by sessions \
         on different domains";
    };
    {
      comp = "Depenv.t scalar environments";
      safety = Safe;
      notes =
        "all passes (CFG, reaching, constants, liveness, loop nest, \
         interproc summaries) are built eagerly by Depenv.make and \
         read-only afterwards — no lazy fill-in for workers to race";
    };
    {
      comp = "Ddg.plan staged context";
      safety = Safe;
      notes =
        "immutable plan record; test stages only read it, and the \
         pool's job handoff publishes it to worker domains";
    };
    {
      comp = "Session / Engine local tables";
      safety = Safe;
      notes = "confined: one session lives on one domain by design";
    };
    {
      comp = "Runtime.Pool";
      safety = Guarded;
      notes =
        "mutex/condition job handoff; atomic self-scheduling; map \
         results published by the job-completion handshake";
    };
  ]

(* The verdicts are computed, not asserted: change a row's safety and
   they flip on their own. *)
let sharing_across_domains =
  List.for_all (fun c -> c.safety <> Unsafe) components

(* The state the staged analyzer touches from worker domains — the
   inventory behind [Ddg.compute ?runner]. *)
let parallel_analysis_path =
  [ "Telemetry sink"; "Ddg bucket memo (Cache.ddg_cache)";
    "Depenv.t scalar environments"; "Ddg.plan staged context";
    "Runtime.Pool" ]

let parallel_analysis =
  List.for_all
    (fun c ->
      (not (List.mem c.comp parallel_analysis_path)) || c.safety <> Unsafe)
    components

let refuse_parallel_analysis ~what =
  Printf.sprintf
    "%s requires --analysis-domains 1: the domain-safety audit (ped batch \
     --audit) lists unsafe state on the parallel-analysis path"
    what

let safety_to_string = function
  | Safe -> "safe"
  | Guarded -> "guarded"
  | Unsafe -> "unsafe"

let report () =
  let rows =
    List.map
      (fun c ->
        Printf.sprintf "  %-38s %-8s %s" c.comp (safety_to_string c.safety)
          c.notes)
      components
  in
  String.concat "\n"
    ([ "domain-safety audit of shared state:" ] @ rows
    @ [
        (if sharing_across_domains then
           "verdict: one shared cache may serve all domains — multi-domain \
            batch shares the full cache across workers"
         else
           "verdict: cross-domain cache sharing disabled — multi-domain \
            batch partitions jobs, one private cache per domain; the fully \
            shared cache needs a single domain (interleaved mode)");
        (if parallel_analysis then
           "verdict: parallel analysis enabled — --analysis-domains N may \
            fan one session's dependence-test buckets across a domain pool"
         else
           "verdict: parallel analysis disabled — --analysis-domains must \
            stay 1 until the unsafe rows above are fixed");
      ])
