(** The batch driver: stream edit-scripts through concurrent
    sessions.

    A {e job} is one program plus an editor command script.  The
    driver runs every job to completion and reports throughput
    (sessions/sec, edits/sec) and shared-cache effectiveness — the
    numbers [bench multisession] gates on.

    Two execution modes, chosen by [domains]:

    - {e interleaved} (domains <= 1): all sessions open up front
      against one fully shared {!Cache}, then execute one command at
      a time round-robin — deterministic multiplexing on the calling
      domain, the closest model of the interactive server under
      load.
    - {e partitioned} (domains > 1): jobs are split across a
      {!Runtime.Pool} of worker domains.  The {!Audit} inventory
      decides the cache policy at run time: with
      {!Audit.sharing_across_domains} (true since the bucket memo
      became mutex-guarded) every worker shares one cache; if a row
      is ever demoted back to [Unsafe] the driver falls back to one
      private cache per worker.

    Orthogonally, [analysis_domains > 1] fans each session's
    dependence-test buckets across an analysis pool
    ([Ddg.compute ?runner]); the driver refuses the configurations
    the staged API cannot guarantee — [analysis_domains > 1] while
    {!Audit.parallel_analysis} is false, or combined with
    [domains > 1] (the analysis pool serves one session at a time).

    With [check], every job's final dependence graph is compared —
    byte-identical marshalled form — against a from-scratch
    ([caching:false], no sharing) replay of the same job: the
    correctness gate that sharing changes nothing. *)

type job = {
  j_id : string;
  j_file : string;             (** display name / parse origin *)
  j_source : string;
  j_unit : string option;      (** focus unit; default: main *)
  j_script : string list;      (** editor command lines *)
}

type job_result = {
  jr_id : string;
  jr_unit : string;            (** "" when the job failed *)
  jr_commands : int;           (** commands executed *)
  jr_edits : int;              (** mutating commands (edit/apply/undo/redo) *)
  jr_ddg_digest : string;      (** hex digest of the final marshalled DDG *)
  jr_scratch_digest : string option;  (** from-scratch digest, when checked *)
  jr_error : string option;
}

type outcome = {
  o_jobs : int;
  o_domains : int;             (** worker domains used (1 = interleaved) *)
  o_commands : int;
  o_edits : int;
  o_elapsed_s : float;
  o_identical : bool option;   (** all DDGs byte-identical to scratch
                                   ([None] when [check] was off) *)
  o_cache : Cache.stats;       (** shared cache, or per-domain caches summed *)
  o_results : job_result list; (** in job order *)
}

val sessions_per_sec : outcome -> float
val edits_per_sec : outcome -> float

(** Parse a job file: one job per line,
    [FILE[#UNIT] :: cmd ; cmd ; ...] — sources are read relative to
    the job file's directory; ['#']-prefixed and blank lines are
    skipped.  [Error] names the offending line. *)
val parse_job_file : string -> (job list, string) result

(** Run the jobs.  [domains] (default 1) selects the mode; it is
    clamped to the number of jobs.  [analysis_domains] (default 1)
    sizes the per-session analysis fan-out.  [cache] seeds the shared
    cache (ignored only in the per-domain-cache fallback).
    [history_limit], [telemetry] are handed to every session.
    [Error] on an empty job list or on a refused domain
    configuration; per-job failures are reported in [jr_error]. *)
val run :
  ?telemetry:Telemetry.sink ->
  ?cache:Cache.t ->
  ?domains:int ->
  ?analysis_domains:int ->
  ?history_limit:int ->
  ?check:bool ->
  job list ->
  (outcome, string) result

(** Human-readable outcome block ([ped batch]). *)
val report : outcome -> string
