open Fortran_front
open Value

exception Runtime_error of string

type order = Seq | Reverse | Shuffled of int

type access = {
  a_sid : Ast.stmt_id;
  a_var : string;
  a_off : int;
  a_write : bool;
  a_instance : int;
  a_iters : (Ast.stmt_id * int) list;
}

type outcome = {
  output : string list;
  cycles : float;
  stmts_executed : int;
  final_store : (string * float list) list;
  loop_cycles : (Ast.stmt_id * float) list;
}

let err fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

type unit_info = { u : Ast.program_unit; tbl : Symbol.table }

type state = {
  units : (string, unit_info) Hashtbl.t;
  commons : (string, slot) Hashtbl.t;
  machine : Perf.Machine.t;
  honor_parallel : bool;
  par_order : order;
  max_steps : int;
  mutable steps : int;
  mutable clock : float;
  mutable depth : int;
  mutable in_parallel : bool;
  out_buf : Buffer.t;
  mutable out_lines : string list;
  loop_cycles : (Ast.stmt_id, float) Hashtbl.t;
  (* array-access tracing (the brute-force dependence oracle's tap) *)
  trace : (access -> unit) option;
  mutable cur_sid : Ast.stmt_id;
  mutable instance : int;  (* statement instances, in execution order *)
  mutable loop_stack : (Ast.stmt_id * int) list;  (* innermost first *)
}

let record_access st ~var ~off ~write =
  match st.trace with
  | None -> ()
  | Some f ->
    f
      {
        a_sid = st.cur_sid;
        a_var = var;
        a_off = off;
        a_write = write;
        a_instance = st.instance;
        a_iters = List.rev st.loop_stack;
      }

type frame = (string, slot) Hashtbl.t

type signal = Snormal | Sgoto of int | Sreturn | Sstop

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

let typ_of_var (ui : unit_info) v = Symbol.typ_of ui.tbl v

let find_slot _st ui (frame : frame) v : slot =
  match Hashtbl.find_opt frame v with
  | Some s -> s
  | None -> (
    (* late creation: undeclared scalar local *)
    match Symbol.lookup ui.tbl v with
    | Some { kind = Symbol.Scalar; typ; param; _ } ->
      let store = alloc typ 1 in
      (match param with
      | Some _ -> (
        match Symbol.param_value ui.tbl v with
        | Some n -> store.(0) <- convert typ (VI n)
        | None -> ())
      | None -> ());
      let s = Scalar { cstore = store; coff = 0 } in
      Hashtbl.replace frame v s;
      s
    | _ -> err "variable %s has no storage in %s" v ui.u.Ast.uname)

let rec eval st ui frame (e : Ast.expr) : value =
  match e with
  | Ast.Int n -> VI n
  | Ast.Real f -> VR f
  | Ast.Logic b -> VL b
  | Ast.Str s -> VS s
  | Ast.Var v -> (
    match find_slot st ui frame v with
    | Scalar c -> get c
    | Arr _ -> err "array %s used as a scalar value" v)
  | Ast.Index (b, args) -> (
    match Symbol.lookup ui.tbl b with
    | Some { kind = Symbol.Array _; _ } ->
      let idxs = List.map (fun a -> to_int (eval st ui frame a)) args in
      (match find_slot st ui frame b with
      | Arr a ->
        let off = offset a idxs in
        record_access st ~var:b ~off ~write:false;
        get { cstore = a.store; coff = off }
      | Scalar _ -> err "%s is not an array" b)
    | Some { kind = Symbol.Intrinsic; _ } -> eval_intrinsic st ui frame b args
    | Some { kind = Symbol.External_fun; _ } ->
      eval_function_call st ui frame b args
    | _ -> err "cannot evaluate %s(...)" b)
  | Ast.Un (Ast.Neg, a) -> (
    match eval st ui frame a with
    | VI n -> VI (-n)
    | VR f -> VR (-.f)
    | v -> err "cannot negate %s" (Format.asprintf "%a" pp_value v))
  | Ast.Un (Ast.Not, a) -> VL (not (to_bool (eval st ui frame a)))
  | Ast.Bin (op, a, b) -> (
    match op with
    | Ast.And -> VL (to_bool (eval st ui frame a) && to_bool (eval st ui frame b))
    | Ast.Or -> VL (to_bool (eval st ui frame a) || to_bool (eval st ui frame b))
    | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Pow ->
      arith op (eval st ui frame a) (eval st ui frame b)
    | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne ->
      compare_vals op (eval st ui frame a) (eval st ui frame b))

and arith op a b =
  match (a, b) with
  | VI x, VI y -> (
    match op with
    | Ast.Add -> VI (x + y)
    | Ast.Sub -> VI (x - y)
    | Ast.Mul -> VI (x * y)
    | Ast.Div -> if y = 0 then err "integer division by zero" else VI (x / y)
    | Ast.Pow ->
      if y < 0 then VI 0
      else VI (int_of_float (Float.round (float_of_int x ** float_of_int y)))
    | _ -> assert false)
  | (VI _ | VR _), (VI _ | VR _) -> (
    let x = to_float a and y = to_float b in
    match op with
    | Ast.Add -> VR (x +. y)
    | Ast.Sub -> VR (x -. y)
    | Ast.Mul -> VR (x *. y)
    | Ast.Div -> VR (x /. y)
    | Ast.Pow -> VR (x ** y)
    | _ -> assert false)
  | _ -> err "bad operands for arithmetic"

and compare_vals op a b =
  let x = to_float a and y = to_float b in
  let r =
    match op with
    | Ast.Lt -> x < y
    | Ast.Le -> x <= y
    | Ast.Gt -> x > y
    | Ast.Ge -> x >= y
    | Ast.Eq -> x = y
    | Ast.Ne -> x <> y
    | _ -> assert false
  in
  VL r

and eval_intrinsic st ui frame name args : value =
  let vs () = List.map (eval st ui frame) args in
  let one () =
    match vs () with [ v ] -> v | _ -> err "%s expects one argument" name
  in
  let two () =
    match vs () with
    | [ a; b ] -> (a, b)
    | _ -> err "%s expects two arguments" name
  in
  match name with
  | "ABS" -> (
    match one () with VI n -> VI (abs n) | v -> VR (Float.abs (to_float v)))
  | "MOD" -> (
    match two () with
    | VI a, VI b -> if b = 0 then err "MOD by zero" else VI (a mod b)
    | a, b -> VR (Float.rem (to_float a) (to_float b)))
  | "MAX" | "MIN" -> (
    let vs = vs () in
    let all_int = List.for_all (function VI _ -> true | _ -> false) vs in
    let sel = if name = "MAX" then Float.max else Float.min in
    let r = List.fold_left (fun acc v -> sel acc (to_float v))
        (to_float (List.hd vs)) (List.tl vs)
    in
    if all_int then VI (int_of_float r) else VR r)
  | "SQRT" -> VR (sqrt (to_float (one ())))
  | "EXP" -> VR (exp (to_float (one ())))
  | "LOG" -> VR (log (to_float (one ())))
  | "SIN" -> VR (sin (to_float (one ())))
  | "COS" -> VR (cos (to_float (one ())))
  | "TAN" -> VR (tan (to_float (one ())))
  | "FLOAT" | "DBLE" | "SNGL" -> VR (to_float (one ()))
  | "INT" -> VI (to_int (one ()))
  | "NINT" -> VI (int_of_float (Float.round (to_float (one ()))))
  | "SIGN" -> (
    match two () with
    | a, b ->
      let m = Float.abs (to_float a) in
      let r = if to_float b < 0.0 then -.m else m in
      (match a with VI _ -> VI (int_of_float r) | _ -> VR r))
  | _ -> err "unknown intrinsic %s" name

(* ------------------------------------------------------------------ *)
(* Frames and calls                                                    *)
(* ------------------------------------------------------------------ *)

and build_frame st (ui : unit_info) (bindings : (string * slot) list) : frame =
  let frame : frame = Hashtbl.create 16 in
  List.iter (fun (n, s) -> Hashtbl.replace frame n s) bindings;
  (* pass 1: scalars (parameters seeded), so array dims can use them *)
  List.iter
    (fun (i : Symbol.info) ->
      if not (Hashtbl.mem frame i.name) then
        match i.kind with
        | Symbol.Scalar ->
          if i.common <> None then begin
            let key = i.name in
            let slot =
              match Hashtbl.find_opt st.commons key with
              | Some s -> s
              | None ->
                let s = Scalar { cstore = alloc i.typ 1; coff = 0 } in
                Hashtbl.replace st.commons key s;
                s
            in
            Hashtbl.replace frame i.name slot
          end
          else begin
            let store = alloc i.typ 1 in
            (match Symbol.param_value ui.tbl i.name with
            | Some n -> store.(0) <- convert i.typ (VI n)
            | None -> (
              (* DATA initial value: literals only *)
              match i.data with
              | Some (Ast.Int n) -> store.(0) <- convert i.typ (VI n)
              | Some (Ast.Real f) -> store.(0) <- convert i.typ (VR f)
              | Some (Ast.Logic b) -> store.(0) <- convert i.typ (VL b)
              | Some (Ast.Un (Ast.Neg, Ast.Int n)) ->
                store.(0) <- convert i.typ (VI (-n))
              | Some (Ast.Un (Ast.Neg, Ast.Real f)) ->
                store.(0) <- convert i.typ (VR (-.f))
              | Some _ | None -> ()));
            Hashtbl.replace frame i.name (Scalar { cstore = store; coff = 0 })
          end
        | Symbol.Array _ | Symbol.Routine | Symbol.External_fun
        | Symbol.Intrinsic -> ())
    (Symbol.infos ui.tbl);
  (* pass 2: arrays (bounds may reference formals and parameters) *)
  List.iter
    (fun (i : Symbol.info) ->
      match i.kind with
      | Symbol.Array dims ->
        let bounds =
          List.map
            (fun (lo, hi) ->
              let lo = to_int (eval st ui frame lo) in
              let hi =
                match hi with
                | Ast.Int n when n = max_int ->
                  (* assumed-size: extent comes from the storage *)
                  max_int
                | e -> to_int (eval st ui frame e)
              in
              (lo, hi))
            dims
        in
        (match Hashtbl.find_opt frame i.name with
        | Some (Arr view) ->
          (* formal array: reshape the passed storage to our bounds *)
          let bounds =
            (* resolve assumed-size final extent against storage *)
            match List.rev bounds with
            | (lo, hi) :: rest when hi = max_int ->
              let other =
                List.fold_left
                  (fun acc (l, h) -> acc * max 1 (h - l + 1))
                  1 rest
              in
              let avail = Array.length view.store - view.base in
              let extent = max 1 (avail / max 1 other) in
              List.rev ((lo, lo + extent - 1) :: rest)
            | _ -> bounds
          in
          Hashtbl.replace frame i.name
            (Arr { store = view.store; base = view.base; bounds })
        | Some (Scalar _) -> ()
        | None ->
          let size =
            List.fold_left (fun acc (lo, hi) -> acc * max 1 (hi - lo + 1)) 1
              bounds
          in
          if i.common <> None then begin
            let slot =
              match Hashtbl.find_opt st.commons i.name with
              | Some s -> s
              | None ->
                let s = Arr { store = alloc i.typ size; base = 0; bounds } in
                Hashtbl.replace st.commons i.name s;
                s
            in
            Hashtbl.replace frame i.name slot
          end
          else
            Hashtbl.replace frame i.name
              (Arr { store = alloc i.typ size; base = 0; bounds }))
      | Symbol.Scalar | Symbol.Routine | Symbol.External_fun
      | Symbol.Intrinsic -> ())
    (Symbol.infos ui.tbl);
  frame

and bind_actuals st caller_ui caller_frame (callee : unit_info)
    (formals : string list) (actuals : Ast.expr list) : (string * slot) list =
  let bind formal actual =
    let formal_is_array = Symbol.is_array callee.tbl formal in
    match actual with
    | Ast.Var v -> (
      match find_slot st caller_ui caller_frame v with
      | Scalar c -> (formal, Scalar c)
      | Arr a -> (formal, Arr a))
    | Ast.Index (b, idxs)
      when Symbol.is_array caller_ui.tbl b ->
      let idxs = List.map (fun a -> to_int (eval st caller_ui caller_frame a)) idxs in
      (match find_slot st caller_ui caller_frame b with
      | Arr a ->
        let off = offset a idxs in
        if formal_is_array then
          (* the callee sees storage starting at this element *)
          (formal, Arr { store = a.store; base = off; bounds = [] })
        else (formal, Scalar { cstore = a.store; coff = off })
      | Scalar _ -> err "%s is not an array" b)
    | e ->
      (* expression argument: pass a temporary *)
      let typ = typ_of_var callee formal in
      let store = alloc typ 1 in
      store.(0) <- convert typ (eval st caller_ui caller_frame e);
      (formal, Scalar { cstore = store; coff = 0 })
  in
  let rec go fs acts =
    match (fs, acts) with
    | [], _ -> []
    | f :: fs, a :: acts -> bind f a :: go fs acts
    | f :: _, [] -> err "missing actual argument for %s" f
  in
  go formals actuals

and call_unit st (callee : unit_info) (bindings : (string * slot) list) : frame
    =
  st.depth <- st.depth + 1;
  if st.depth > 200 then err "call depth exceeded (recursion?)";
  let frame = build_frame st callee bindings in
  let signal = exec_block st callee frame callee.u.Ast.body in
  (match signal with
  | Snormal | Sreturn -> ()
  | Sstop -> st.depth <- st.depth - 1; raise Exit
  | Sgoto l -> err "GOTO %d escapes %s" l callee.u.Ast.uname);
  st.depth <- st.depth - 1;
  frame

and eval_function_call st ui frame name args : value =
  match Hashtbl.find_opt st.units name with
  | Some callee -> (
    let formals =
      match callee.u.Ast.kind with
      | Ast.Function (_, fs) -> fs
      | _ -> err "%s is not a function" name
    in
    st.clock <- st.clock +. st.machine.Perf.Machine.call_overhead;
    let bindings = bind_actuals st ui frame callee formals args in
    let callee_frame = call_unit st callee bindings in
    match Hashtbl.find_opt callee_frame name with
    | Some (Scalar c) -> get c
    | _ -> err "function %s returned no value" name)
  | None -> err "unknown function %s (external functions must be supplied)" name

(* ------------------------------------------------------------------ *)
(* Statement execution                                                 *)
(* ------------------------------------------------------------------ *)

and charge st ui exprs extra =
  let c =
    List.fold_left
      (fun acc e -> acc +. Perf.Estimator.expr_cost st.machine ui.tbl e)
      extra exprs
  in
  st.clock <- st.clock +. c

and exec_block st ui frame (stmts : Ast.stmt list) : signal =
  let arr = Array.of_list stmts in
  let n = Array.length arr in
  let rec from i : signal =
    if i >= n then Snormal
    else
      match exec_stmt st ui frame arr.(i) with
      | Snormal -> from (i + 1)
      | Sgoto l -> (
        (* a label in this block? (possibly behind us) *)
        match
          Array.to_list arr
          |> List.mapi (fun j s -> (j, s))
          |> List.find_opt (fun (_, (s : Ast.stmt)) -> s.Ast.label = Some l)
        with
        | Some (j, _) -> from j
        | None -> Sgoto l)
      | (Sreturn | Sstop) as s -> s
  in
  from 0

and exec_stmt st ui frame (s : Ast.stmt) : signal =
  st.steps <- st.steps + 1;
  if st.steps > st.max_steps then err "statement budget exhausted";
  st.cur_sid <- s.Ast.sid;
  st.instance <- st.instance + 1;
  match s.Ast.node with
  | Ast.Continue -> Snormal
  | Ast.Goto l -> Sgoto l
  | Ast.Return -> Sreturn
  | Ast.Stop -> Sstop
  | Ast.Assign (lhs, rhs) -> (
    charge st ui [ lhs; rhs ] st.machine.Perf.Machine.mem_cost;
    let v = eval st ui frame rhs in
    match lhs with
    | Ast.Var name -> (
      match find_slot st ui frame name with
      | Scalar c -> set (typ_of_var ui name) c v; Snormal
      | Arr _ -> err "cannot assign whole array %s" name)
    | Ast.Index (b, idxs) -> (
      let idxs = List.map (fun a -> to_int (eval st ui frame a)) idxs in
      match find_slot st ui frame b with
      | Arr a ->
        let off = offset a idxs in
        record_access st ~var:b ~off ~write:true;
        set (typ_of_var ui b) { cstore = a.store; coff = off } v;
        Snormal
      | Scalar _ -> err "%s is not an array" b)
    | _ -> err "bad assignment target")
  | Ast.Print args ->
    charge st ui args 10.0;
    let line = Abi.print_line (List.map (eval st ui frame) args) in
    st.out_lines <- line :: st.out_lines;
    Snormal
  | Ast.If (branches, els) -> (
    charge st ui (List.map fst branches) 0.0;
    let rec pick = function
      | [] -> exec_block st ui frame els
      | (c, body) :: rest ->
        if to_bool (eval st ui frame c) then exec_block st ui frame body
        else pick rest
    in
    pick branches)
  | Ast.Call (name, args) -> (
    charge st ui args st.machine.Perf.Machine.call_overhead;
    match Hashtbl.find_opt st.units name with
    | Some callee ->
      let formals =
        match callee.u.Ast.kind with
        | Ast.Subroutine fs -> fs
        | Ast.Function (_, fs) -> fs
        | Ast.Main -> err "cannot CALL the main program"
      in
      let bindings = bind_actuals st ui frame callee formals args in
      let _ = call_unit st callee bindings in
      Snormal
    | None -> err "unknown subroutine %s" name)
  | Ast.Do (h, body) ->
    let t0 = st.clock in
    let r = exec_do st ui frame s h body in
    let dt = st.clock -. t0 in
    Hashtbl.replace st.loop_cycles s.Ast.sid
      (dt +. Option.value ~default:0.0 (Hashtbl.find_opt st.loop_cycles s.Ast.sid));
    r

and exec_do st ui frame (s : Ast.stmt) (h : Ast.do_header) body : signal =
  charge st ui
    ([ h.Ast.lo; h.Ast.hi ] @ Option.to_list h.Ast.step)
    0.0;
  let lo = eval st ui frame h.Ast.lo in
  let hi = eval st ui frame h.Ast.hi in
  let step =
    match h.Ast.step with
    | None -> VI 1
    | Some e -> eval st ui frame e
  in
  let is_int =
    match (lo, hi, step) with VI _, VI _, VI _ -> true | _ -> false
  in
  let iv_cell =
    match find_slot st ui frame h.Ast.dvar with
    | Scalar c -> c
    | Arr _ -> err "loop variable %s is an array" h.Ast.dvar
  in
  let iv_typ = typ_of_var ui h.Ast.dvar in
  let trip =
    if is_int then begin
      let l = to_int lo and hh = to_int hi and st_ = to_int step in
      if st_ = 0 then err "zero DO step";
      max 0 (((hh - l) + st_) / st_)
    end
    else begin
      let l = to_float lo and hh = to_float hi and st_ = to_float step in
      if st_ = 0.0 then err "zero DO step";
      max 0 (int_of_float (Float.trunc (((hh -. l) +. st_) /. st_)))
    end
  in
  let value_at k =
    if is_int then VI (to_int lo + (k * to_int step))
    else VR (to_float lo +. (float_of_int k *. to_float step))
  in
  let run_iteration k : signal =
    set iv_typ iv_cell (value_at k);
    st.clock <- st.clock +. st.machine.Perf.Machine.loop_overhead;
    st.loop_stack <- (s.Ast.sid, k) :: st.loop_stack;
    let r = exec_block st ui frame body in
    st.loop_stack <- List.tl st.loop_stack;
    r
  in
  (* F77: the DO variable receives its initial value even when the
     loop runs zero times *)
  set iv_typ iv_cell (value_at 0);
  let parallel = h.Ast.parallel && st.honor_parallel && not st.in_parallel in
  let result =
    if not parallel then begin
      let rec go k =
        if k >= trip then begin
          (* normal completion: F77 leaves the DO variable at the first
             value that failed the iteration test *)
          set iv_typ iv_cell (value_at trip);
          Snormal
        end
        else
          match run_iteration k with
          | Snormal -> go (k + 1)
          | other -> other
      in
      go 0
    end
    else begin
      (* simulated parallel execution: run iterations one at a time in
         [par_order], measuring each; charge block-scheduled time *)
      let order = Array.init trip Fun.id in
      (match st.par_order with
      | Seq -> ()
      | Reverse ->
        for i = 0 to (trip / 2) - 1 do
          let t = order.(i) in
          order.(i) <- order.(trip - 1 - i);
          order.(trip - 1 - i) <- t
        done
      | Shuffled seed ->
        let rstate = Random.State.make [| seed |] in
        for i = trip - 1 downto 1 do
          let j = Random.State.int rstate (i + 1) in
          let t = order.(i) in
          order.(i) <- order.(j);
          order.(j) <- t
        done);
      let p = st.machine.Perf.Machine.processors in
      let buckets = Array.make (max p 1) 0.0 in
      let chunk = (trip + p - 1) / max p 1 in
      let start_clock = st.clock in
      st.in_parallel <- true;
      let bad = ref None in
      Array.iter
        (fun k ->
          if !bad = None then begin
            let t0 = st.clock in
            (match run_iteration k with
            | Snormal -> ()
            | other -> bad := Some other);
            let delta = st.clock -. t0 in
            let proc =
              match st.machine.Perf.Machine.schedule with
              | Perf.Machine.Block ->
                if chunk = 0 then 0 else min (p - 1) (k / max chunk 1)
              | Perf.Machine.Cyclic -> k mod max p 1
            in
            buckets.(proc) <- buckets.(proc) +. delta
          end)
        order;
      st.in_parallel <- false;
      let par_time = Array.fold_left Float.max 0.0 buckets in
      st.clock <-
        start_clock +. st.machine.Perf.Machine.fork_join +. par_time;
      (* leave the induction variable at its sequential final value so
         results do not depend on the iteration order *)
      set iv_typ iv_cell (value_at trip);
      match !bad with Some sig_ -> sig_ | None -> Snormal
    end
  in
  ignore s;
  result

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let snapshot (frame : frame) commons : (string * float list) list =
  let one name slot acc =
    match slot with
    | Scalar c -> (name, [ to_float (get c) ]) :: acc
    | Arr a ->
      let vals = ref [] in
      let size =
        List.fold_left (fun acc (lo, hi) -> acc * max 1 (hi - lo + 1)) 1
          a.bounds
      in
      let size = min size (Array.length a.store - a.base) in
      for i = a.base + size - 1 downto a.base do
        vals := to_float a.store.(i) :: !vals
      done;
      (name, !vals) :: acc
  in
  let acc = Hashtbl.fold one frame [] in
  let acc =
    Hashtbl.fold (fun n s acc -> one (Abi.common_key n) s acc) commons acc
  in
  Abi.sort_store acc

let run ?(machine = Perf.Machine.default) ?(honor_parallel = true)
    ?(par_order = Seq) ?(max_steps = 50_000_000) ?trace (prog : Ast.program) :
    outcome =
  let units = Hashtbl.create 8 in
  List.iter
    (fun (u : Ast.program_unit) ->
      Hashtbl.replace units u.Ast.uname { u; tbl = Symbol.build u })
    prog.Ast.punits;
  let main =
    match
      List.find_opt
        (fun (u : Ast.program_unit) -> u.Ast.kind = Ast.Main)
        prog.Ast.punits
    with
    | Some u -> u
    | None -> err "no main program unit"
  in
  let st =
    {
      units;
      commons = Hashtbl.create 8;
      machine;
      honor_parallel;
      par_order;
      max_steps;
      steps = 0;
      clock = 0.0;
      depth = 0;
      in_parallel = false;
      out_buf = Buffer.create 256;
      out_lines = [];
      loop_cycles = Hashtbl.create 16;
      trace;
      cur_sid = -1;
      instance = 0;
      loop_stack = [];
    }
  in
  let main_ui = Hashtbl.find units main.Ast.uname in
  let frame = build_frame st main_ui [] in
  (try
     match exec_block st main_ui frame main.Ast.body with
     | Snormal | Sreturn | Sstop -> ()
     | Sgoto l -> err "GOTO %d escapes the main program" l
   with
  | Exit -> ()
  | Failure msg -> err "%s" msg);
  ignore st.out_buf;
  {
    output = List.rev st.out_lines;
    cycles = st.clock;
    stmts_executed = st.steps;
    final_store = snapshot frame st.commons;
    loop_cycles =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.loop_cycles []
      |> List.sort compare;
  }

(* ------------------------------------------------------------------ *)
(* Comparisons                                                         *)
(* ------------------------------------------------------------------ *)

(* Comparison conventions live in {!Abi}, shared with the multicore
   runtime; re-exported here for existing callers. *)

let outputs_match = Abi.outputs_match
let stores_match = Abi.stores_match
