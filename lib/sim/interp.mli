(** The execution simulator: a Fortran-subset interpreter with a
    simulated parallel machine.

    Sequential semantics follow Fortran 77 (by-reference arguments,
    COMMON storage shared by name, column-major adjustable arrays,
    truncating integer division, DO trip counts computed on entry).

    PARALLEL DO loops execute their iterations one at a time (so the
    simulation is deterministic) but the {e simulated clock} charges
    them as the machine would run them: iterations are block-scheduled
    onto the machine's processors, each processor's time is the sum of
    its iterations' measured costs, and the loop costs
    fork/join + max over processors.  Only the outermost parallel
    loop spreads; inner parallel loops run sequentially on their
    processor, as on the machines Ped targeted.

    [par_order] permutes the execution order of parallel-loop
    iterations.  A correctly parallelized program produces the same
    result under any order; the test suite uses [Reverse] and
    [Shuffled] to catch unsafe parallelization (the editor's
    power-steering warnings are about exactly this). *)

open Fortran_front

exception Runtime_error of string

type order = Seq | Reverse | Shuffled of int  (** seed *)

(** One concrete array-element access, as reported to the [trace]
    callback of {!run}: the accessing statement, the array and the
    element's flat offset within its storage, read or write, a global
    statement-instance number (monotone in execution order; two
    accesses of the same instance belong to one execution of one
    statement), and the active DO loops with their 0-based normalized
    iteration numbers, outermost first.  Scalar accesses are not
    reported — the dependence oracle that consumes this trace checks
    the array dependence tests, whose domain is exactly these
    references. *)
type access = {
  a_sid : Ast.stmt_id;
  a_var : string;
  a_off : int;
  a_write : bool;
  a_instance : int;
  a_iters : (Ast.stmt_id * int) list;
}

type outcome = {
  output : string list;        (** PRINT lines, in order *)
  cycles : float;              (** simulated parallel time *)
  stmts_executed : int;
  final_store : (string * float list) list;
      (** main-program and COMMON variables after execution, flattened
          to floats, sorted by name *)
  loop_cycles : (Ast.stmt_id * float) list;
      (** simulated time spent in each DO statement (nested loops are
          included in their parents, as in the static estimates) *)
}

(** [run program] — execute from the main program unit.
    @param machine the cost model (default {!Perf.Machine.default})
    @param honor_parallel charge PARALLEL DO loops as parallel
           (default true; false gives the sequential baseline)
    @param par_order iteration order for parallel loops
    @param max_steps statement budget, guards runaways
    @param trace called once per array-element access, in execution
           order (see {!access})
    @raise Runtime_error on missing main, bad subscripts, recursion,
           or budget exhaustion *)
val run :
  ?machine:Perf.Machine.t ->
  ?honor_parallel:bool ->
  ?par_order:order ->
  ?max_steps:int ->
  ?trace:(access -> unit) ->
  Ast.program ->
  outcome

(** [outputs_match ?tol a b] — same PRINT lines up to relative
    tolerance on numeric fields (reductions reassociate under
    permuted parallel orders). *)
val outputs_match : ?tol:float -> string list -> string list -> bool

(** Like {!outputs_match} for final stores. *)
val stores_match :
  ?tol:float ->
  (string * float list) list ->
  (string * float list) list ->
  bool
