(** The simulator/runtime ABI — the conventions both execution
    backends (the virtual-clock simulator of {!Interp} and the real
    multicore runtime of [Runtime.Exec]) must agree on, so that their
    results are directly comparable:

    - PRINT formatting: one line per PRINT, values joined by a single
      space, reals printed with [%.6g];
    - final-store snapshots: main-program and COMMON variables
      flattened to floats, COMMON entries prefixed ["/"], sorted by
      name;
    - tolerant comparators for outputs and stores (parallel reduction
      combining reassociates floating-point operations, so exact
      equality is only guaranteed when no cross-worker reduction
      occurred). *)

(** Render the values of one PRINT statement as an output line. *)
val print_line : Value.value list -> string

(** Snapshot key for a COMMON variable (the ["/"] prefix). *)
val common_key : string -> string

(** Sort a store snapshot into its canonical order (by name, dropping
    duplicate names). *)
val sort_store : (string * float list) list -> (string * float list) list

(** [float_eq tol a b] — relative tolerance comparison. *)
val float_eq : float -> float -> float -> bool

(** [line_match tol a b] — fields equal, numeric fields up to [tol]. *)
val line_match : float -> string -> string -> bool

(** [outputs_match ?tol a b] — same PRINT lines up to relative
    tolerance on numeric fields. *)
val outputs_match : ?tol:float -> string list -> string list -> bool

(** Like {!outputs_match} for final stores. *)
val stores_match :
  ?tol:float ->
  (string * float list) list ->
  (string * float list) list ->
  bool
