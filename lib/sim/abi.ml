let print_line vs =
  String.concat " " (List.map (fun v -> Format.asprintf "%a" Value.pp_value v) vs)

let common_key name = "/" ^ name

let sort_store entries =
  List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) entries

let float_eq tol a b =
  let d = Float.abs (a -. b) in
  d <= tol *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let line_match tol a b =
  let fields s =
    String.split_on_char ' ' s |> List.filter (fun x -> x <> "")
  in
  let fa = fields a and fb = fields b in
  List.length fa = List.length fb
  && List.for_all2
       (fun x y ->
         match (float_of_string_opt x, float_of_string_opt y) with
         | Some u, Some v -> float_eq tol u v
         | _ -> String.equal x y)
       fa fb

let outputs_match ?(tol = 1e-6) a b =
  List.length a = List.length b && List.for_all2 (line_match tol) a b

let stores_match ?(tol = 1e-6) a b =
  List.length a = List.length b
  && List.for_all2
       (fun (n1, v1) (n2, v2) ->
         String.equal n1 n2
         && List.length v1 = List.length v2
         && List.for_all2 (float_eq tol) v1 v2)
       a b
