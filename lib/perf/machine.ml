type schedule = Block | Cyclic

type t = {
  name : string;
  processors : int;
  schedule : schedule;
  flop_cost : float;
  mem_cost : float;
  intrinsic_cost : float;
  loop_overhead : float;
  fork_join : float;
  call_overhead : float;
  reduction_combine : float;
}

let default =
  {
    name = "abstract-mp8";
    processors = 8;
    schedule = Block;
    flop_cost = 1.0;
    mem_cost = 2.0;
    intrinsic_cost = 8.0;
    loop_overhead = 2.0;
    fork_join = 200.0;
    call_overhead = 20.0;
    reduction_combine = 10.0;
  }

let with_processors p t = { t with processors = p }
let with_schedule s t = { t with schedule = s }

let pp ppf t =
  Format.fprintf ppf "%s (%d processors)" t.name t.processors

(* ------------------------------------------------------------------ *)
(* Calibration: fit the per-op cycle weights from measurements         *)
(* ------------------------------------------------------------------ *)

type op_counts = {
  flops : float;
  mems : float;
  intrinsics : float;
  loop_iters : float;
  calls : float;
}

let zero_counts =
  { flops = 0.0; mems = 0.0; intrinsics = 0.0; loop_iters = 0.0; calls = 0.0 }

let features c = [| c.flops; c.mems; c.intrinsics; c.loop_iters; c.calls |]

(* Solve [a] x = [b] by Gaussian elimination with partial pivoting.
   [a] and [b] are destroyed. *)
let solve_linear a b =
  let n = Array.length b in
  for col = 0 to n - 1 do
    let piv = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs a.(r).(col) > Float.abs a.(!piv).(col) then piv := r
    done;
    let tmp = a.(col) in
    a.(col) <- a.(!piv);
    a.(!piv) <- tmp;
    let tb = b.(col) in
    b.(col) <- b.(!piv);
    b.(!piv) <- tb;
    let d = a.(col).(col) in
    if Float.abs d > 1e-30 then
      for r = 0 to n - 1 do
        if r <> col then begin
          let f = a.(r).(col) /. d in
          for c = col to n - 1 do
            a.(r).(c) <- a.(r).(c) -. (f *. a.(col).(c))
          done;
          b.(r) <- b.(r) -. (f *. b.(col))
        end
      done
  done;
  Array.init n (fun i ->
      if Float.abs a.(i).(i) > 1e-30 then b.(i) /. a.(i).(i) else 0.0)

let calibrate samples t =
  if samples = [] then t
  else begin
    let n = 5 in
    (* ridge-regularized normal equations: (XᵀX + λI) w = Xᵀy *)
    let ata = Array.make_matrix n n 0.0 in
    let atb = Array.make n 0.0 in
    List.iter
      (fun (counts, time) ->
        let x = features counts in
        for i = 0 to n - 1 do
          atb.(i) <- atb.(i) +. (x.(i) *. time);
          for j = 0 to n - 1 do
            ata.(i).(j) <- ata.(i).(j) +. (x.(i) *. x.(j))
          done
        done)
      samples;
    let trace = ref 0.0 in
    for i = 0 to n - 1 do
      trace := !trace +. ata.(i).(i)
    done;
    let lambda = 1e-9 *. Float.max 1.0 !trace in
    for i = 0 to n - 1 do
      ata.(i).(i) <- ata.(i).(i) +. lambda
    done;
    let w = solve_linear ata atb in
    (* weights are relative: normalize so a flop costs 1 cycle, as in
       the abstract machine; clamp to keep every op positive *)
    let flop = Float.max 1e-12 w.(0) in
    let rel i = Float.max 0.01 (w.(i) /. flop) in
    {
      t with
      name = t.name ^ "-calibrated";
      flop_cost = 1.0;
      mem_cost = rel 1;
      intrinsic_cost = rel 2;
      loop_overhead = rel 3;
      call_overhead = rel 4;
    }
  end
