(** Parallel machine cost model.

    An abstract bus-based shared-memory multiprocessor in the spirit
    of the Alliant FX/8 and Sequent machines Ped targeted: uniform
    per-operation costs, a per-iteration loop overhead, and a
    fork/join cost for starting a parallel loop.  The absolute numbers
    are in abstract "cycles"; the evaluation only ever interprets
    ratios (speedups, relative loop weights). *)

(** How a PARALLEL DO's iterations map onto processors.  [Block]
    gives each processor one contiguous chunk; [Cyclic] deals
    iterations round-robin — better when per-iteration work varies
    (triangular updates). *)
type schedule = Block | Cyclic

type t = {
  name : string;
  processors : int;
  schedule : schedule;
  flop_cost : float;       (** per arithmetic/logical operation *)
  mem_cost : float;        (** per array element access *)
  intrinsic_cost : float;  (** per intrinsic call (SQRT, EXP, ...) *)
  loop_overhead : float;   (** per loop iteration: test + increment *)
  fork_join : float;       (** starting/finishing a parallel loop *)
  call_overhead : float;   (** procedure call linkage *)
  reduction_combine : float;  (** per processor, combining reductions *)
}

(** The default 8-processor machine. *)
val default : t

val with_processors : int -> t -> t
val with_schedule : schedule -> t -> t
val pp : Format.formatter -> t -> unit

(** {2 Calibration}

    The static cost model's per-op weights can be fitted from real
    measurements: the multicore runtime counts the dynamic operations
    of a program and measures its wall-clock time, and
    {!calibrate} solves the least-squares system
    [time ≈ w · counts] over the sample set. *)

(** Dynamic operation counts of one measured execution. *)
type op_counts = {
  flops : float;       (** arithmetic/comparison operations *)
  mems : float;        (** scalar and array loads/stores *)
  intrinsics : float;  (** intrinsic evaluations *)
  loop_iters : float;  (** DO iterations started *)
  calls : float;       (** subroutine/function calls *)
}

val zero_counts : op_counts

(** [calibrate samples t] — fit the five per-op weights from
    [(counts, measured time)] samples (ridge-regularized least
    squares), normalize so a flop costs 1 cycle as in the abstract
    machine, and return [t] with the fitted weights.  Weights are
    clamped positive; [fork_join] and [reduction_combine] are not
    fitted (they need dedicated microbenchmarks).  With an empty
    sample list, [t] is returned unchanged. *)
val calibrate : (op_counts * float) list -> t -> t
