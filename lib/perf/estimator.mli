(** Static performance estimation.

    Predicts the relative execution time of loops and whole units so
    the editor can rank loops ("work on this one next") and preview
    the payoff of parallelization — the navigation aid the Ped
    evaluation identified as the most-wanted missing feature.

    Trip counts come from constant/assertion-aware evaluation;
    unknown trips fall back to {!default_trip} and the estimate is
    flagged approximate. *)

open Fortran_front
open Dependence

(** Assumed iterations for loops whose trip count is unknown. *)
val default_trip : int

type estimate = {
  cycles : float;     (** predicted sequential cycles *)
  exact_trips : bool; (** false when a default trip count was assumed *)
}

(** Cost of evaluating one expression — shared with the simulator so
    static estimates and simulated cycles use the same basis. *)
val expr_cost : Machine.t -> Fortran_front.Symbol.table -> Ast.expr -> float

(** Sequential cost of one statement (including nested loops).
    [callee_cost] prices CALLs by their callee's estimated body cost
    (interprocedural estimation); without it a call costs linkage
    only. *)
val stmt_cost :
  ?machine:Machine.t -> ?callee_cost:(string -> float option) -> Depenv.t ->
  Ast.stmt -> estimate

(** Sequential cost of a whole unit body. *)
val unit_cost :
  ?machine:Machine.t -> ?callee_cost:(string -> float option) -> Depenv.t ->
  estimate

(** Parallel cost of a statement given that PARALLEL DO loops spread
    their iterations over the machine's processors (outermost parallel
    loop only; inner parallel loops run sequentially on their
    processor). *)
val parallel_stmt_cost : ?machine:Machine.t -> Depenv.t -> Ast.stmt -> estimate

val parallel_unit_cost : ?machine:Machine.t -> Depenv.t -> estimate

(** Loops ranked by their share of the unit's predicted time,
    heaviest first: [(loop, cycles, share)]. *)
val rank_loops :
  ?machine:Machine.t -> ?callee_cost:(string -> float option) -> Depenv.t ->
  (Loopnest.loop * float * float) list

(** Bottom-up interprocedural estimate for a whole program: the
    sequential cost of each unit's body, with CALL sites charged their
    callee's cost.  Recursive cycles fall back to linkage cost. *)
val program_costs :
  ?machine:Machine.t -> Ast.program -> (string * float) list

(** Predicted speedup of the unit as currently annotated (parallel
    loops honoured) on [processors]. *)
val predicted_speedup : ?machine:Machine.t -> Depenv.t -> processors:int -> float

(** Predicted speedup of one statement — typically a PARALLEL DO —
    on [processors]: sequential cost over parallel cost.  1.0 when
    the statement has no parallel loop (costs coincide). *)
val loop_speedup :
  ?machine:Machine.t -> Depenv.t -> Ast.stmt -> processors:int -> float
