type verdict = Agree | Overpredicted | Underpredicted

type report = {
  predicted : float;
  measured : float;
  ratio : float;
  verdict : verdict;
}

let verdict_to_string = function
  | Agree -> "agree"
  | Overpredicted -> "overpredicted"
  | Underpredicted -> "underpredicted"

(* Wall-clock measurements are noisy and the cost model is coarse
   (cycle weights, default trip counts), so agreement is judged on a
   multiplicative band: within a factor of [tolerance] either way is
   agreement.  2x default — tight enough to catch a model that calls
   a 1.1x loop "4x", loose enough to survive scheduler jitter. *)
let compare_speedup ?(tolerance = 2.0) ~predicted ~measured () =
  let tolerance = max 1.0 tolerance in
  let predicted = max predicted 1e-9 and measured = max measured 1e-9 in
  let ratio = predicted /. measured in
  let verdict =
    if ratio > tolerance then Overpredicted
    else if ratio < 1.0 /. tolerance then Underpredicted
    else Agree
  in
  { predicted; measured; ratio; verdict }
