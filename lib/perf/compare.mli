(** Measured-vs-predicted comparison.

    The estimator predicts speedups from the cost model; runs measure
    them.  This module judges whether the two agree, on a
    multiplicative tolerance band — the signal behind the performance
    debugger's {e prediction mismatch} diagnosis and its pointer to
    [ped --calibrate]. *)

type verdict =
  | Agree          (** within tolerance either way *)
  | Overpredicted  (** model promised more speedup than measured *)
  | Underpredicted (** measured beat the model's promise *)

type report = {
  predicted : float;  (** clamped below at a small positive value *)
  measured : float;   (** likewise *)
  ratio : float;      (** predicted / measured *)
  verdict : verdict;
}

val verdict_to_string : verdict -> string

(** [compare_speedup ~predicted ~measured ()] — judge agreement.
    [tolerance] (default 2.0, clamped ≥ 1.0) is the multiplicative
    band: [Agree] iff [1/tolerance <= predicted/measured <= tolerance]. *)
val compare_speedup :
  ?tolerance:float -> predicted:float -> measured:float -> unit -> report
