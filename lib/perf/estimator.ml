open Fortran_front
open Dependence

let default_trip = 32

type estimate = { cycles : float; exact_trips : bool }

let ( +@ ) a b =
  { cycles = a.cycles +. b.cycles; exact_trips = a.exact_trips && b.exact_trips }

let zero = { cycles = 0.0; exact_trips = true }

let rec expr_cost (m : Machine.t) tbl (e : Ast.expr) : float =
  match e with
  | Ast.Int _ | Ast.Real _ | Ast.Logic _ | Ast.Str _ -> 0.0
  | Ast.Var _ -> 0.0
  | Ast.Index (b, args) ->
    let args_cost =
      List.fold_left (fun acc a -> acc +. expr_cost m tbl a) 0.0 args
    in
    let base =
      match Symbol.lookup tbl b with
      | Some { kind = Symbol.Array _; _ } -> m.Machine.mem_cost
      | Some { kind = Symbol.Intrinsic; _ } -> m.Machine.intrinsic_cost
      | Some { kind = Symbol.External_fun; _ } -> m.Machine.call_overhead
      | _ -> m.Machine.mem_cost
    in
    base +. args_cost
  | Ast.Bin (_, a, b) ->
    m.Machine.flop_cost +. expr_cost m tbl a +. expr_cost m tbl b
  | Ast.Un (_, a) -> m.Machine.flop_cost +. expr_cost m tbl a

let trip_count (env : Depenv.t) sid (h : Ast.do_header) : int option =
  let step =
    match h.Ast.step with
    | None -> Some 1
    | Some e -> Depenv.int_at env sid e
  in
  match step with
  | None | Some 0 -> None
  | Some st -> (
    match Depenv.int_at env sid (Ast.sub h.Ast.hi h.Ast.lo) with
    | Some diff ->
      let t = (diff / st) + 1 in
      Some (max 0 t)
    | None -> None)

(* [parallel_ok] — when true, a PARALLEL DO spreads over processors.
   Nested parallel loops execute sequentially inside. *)
let rec cost_stmt ~parallel_ok ~callee_cost (m : Machine.t) (env : Depenv.t)
    (s : Ast.stmt) : estimate =
  let tbl = env.Depenv.tbl in
  match s.Ast.node with
  | Ast.Assign (lhs, rhs) ->
    {
      cycles = expr_cost m tbl lhs +. expr_cost m tbl rhs +. m.Machine.mem_cost;
      exact_trips = true;
    }
  | Ast.Call (callee, args) ->
    let body =
      match callee_cost callee with Some c -> c | None -> 0.0
    in
    {
      cycles =
        m.Machine.call_overhead +. body
        +. List.fold_left (fun acc a -> acc +. expr_cost m tbl a) 0.0 args;
      exact_trips = true;
    }
  | Ast.Print args ->
    {
      cycles =
        List.fold_left (fun acc a -> acc +. expr_cost m tbl a) 10.0 args;
      exact_trips = true;
    }
  | Ast.Goto _ | Ast.Continue | Ast.Return | Ast.Stop ->
    { cycles = 1.0; exact_trips = true }
  | Ast.If (branches, els) ->
    (* max over the branches, plus condition evaluation *)
    let cond_cost =
      List.fold_left (fun acc (c, _) -> acc +. expr_cost m tbl c) 0.0 branches
    in
    let bodies = List.map snd branches @ [ els ] in
    let worst =
      List.fold_left
        (fun acc body ->
          let e = cost_body ~parallel_ok ~callee_cost m env body in
          if e.cycles > acc.cycles then e else acc)
        zero bodies
    in
    { worst with cycles = worst.cycles +. cond_cost }
  | Ast.Do (h, body) ->
    let trip, exact =
      match trip_count env s.Ast.sid h with
      | Some t -> (t, true)
      | None -> (default_trip, false)
    in
    let header_cost =
      expr_cost m tbl h.Ast.lo +. expr_cost m tbl h.Ast.hi
    in
    (* only a loop that actually forks serializes what's inside it; a
       serial loop passes the caller's context through, so a PARALLEL
       DO nested under serial loops still gets credit (the runtime
       forks it on every enclosing iteration) *)
    let runs_parallel = h.Ast.parallel && parallel_ok in
    let body_est =
      cost_body
        ~parallel_ok:(parallel_ok && not runs_parallel)
        ~callee_cost m env body
    in
    let per_iter = body_est.cycles +. m.Machine.loop_overhead in
    let cycles =
      if runs_parallel then
        let p = float_of_int m.Machine.processors in
        let chunks = Float.of_int ((trip + m.Machine.processors - 1) / m.Machine.processors) in
        ignore p;
        m.Machine.fork_join +. header_cost +. (chunks *. per_iter)
      else header_cost +. (float_of_int trip *. per_iter)
    in
    { cycles; exact_trips = exact && body_est.exact_trips }

and cost_body ~parallel_ok ~callee_cost m env body =
  List.fold_left
    (fun acc s -> acc +@ cost_stmt ~parallel_ok ~callee_cost m env s)
    zero body

let no_callees = fun _ -> None

let stmt_cost ?(machine = Machine.default) ?(callee_cost = no_callees) env s =
  cost_stmt ~parallel_ok:false ~callee_cost machine env s

let unit_cost ?(machine = Machine.default) ?(callee_cost = no_callees) env =
  cost_body ~parallel_ok:false ~callee_cost machine env
    env.Depenv.punit.Ast.body

let parallel_stmt_cost ?(machine = Machine.default) env s =
  cost_stmt ~parallel_ok:true ~callee_cost:no_callees machine env s

let parallel_unit_cost ?(machine = Machine.default) env =
  cost_body ~parallel_ok:true ~callee_cost:no_callees machine env
    env.Depenv.punit.Ast.body

let rank_loops ?(machine = Machine.default) ?(callee_cost = no_callees) env =
  let total = (unit_cost ~machine ~callee_cost env).cycles in
  let total = if total <= 0.0 then 1.0 else total in
  (* a loop's weight counts every dynamic execution: its own cost times
     the trip counts of the loops enclosing it *)
  let enclosing_factor (lp : Loopnest.loop) =
    List.fold_left
      (fun acc (outer : Loopnest.loop) ->
        let t =
          match
            trip_count env outer.Loopnest.lstmt.Ast.sid outer.Loopnest.header
          with
          | Some t -> t
          | None -> default_trip
        in
        acc *. float_of_int (max 1 t))
      1.0
      (Loopnest.enclosing env.Depenv.nest lp.Loopnest.lstmt.Ast.sid)
  in
  Loopnest.loops env.Depenv.nest
  |> List.map (fun (lp : Loopnest.loop) ->
         let c =
           (stmt_cost ~machine ~callee_cost env lp.Loopnest.lstmt).cycles
           *. enclosing_factor lp
         in
         (lp, c, c /. total))
  |> List.sort (fun (_, a, _) (_, b, _) -> compare b a)

let program_costs ?(machine = Machine.default) (p : Ast.program) :
    (string * float) list =
  let costs : (string, float) Hashtbl.t = Hashtbl.create 8 in
  let in_progress = Hashtbl.create 8 in
  let env_of = Hashtbl.create 8 in
  List.iter
    (fun (u : Ast.program_unit) ->
      Hashtbl.replace env_of u.Ast.uname (lazy (Depenv.make u)))
    p.Ast.punits;
  let rec cost_of name : float option =
    match Hashtbl.find_opt costs name with
    | Some c -> Some c
    | None ->
      if Hashtbl.mem in_progress name then None (* recursion: linkage only *)
      else (
        match Hashtbl.find_opt env_of name with
        | None -> None
        | Some envl ->
          Hashtbl.replace in_progress name ();
          let env = Lazy.force envl in
          let c =
            (unit_cost ~machine ~callee_cost:cost_of env).cycles
          in
          Hashtbl.remove in_progress name;
          Hashtbl.replace costs name c;
          Some c)
  in
  List.map
    (fun (u : Ast.program_unit) ->
      (u.Ast.uname, Option.value ~default:0.0 (cost_of u.Ast.uname)))
    p.Ast.punits

let predicted_speedup ?(machine = Machine.default) env ~processors =
  let machine = Machine.with_processors processors machine in
  let seq = (unit_cost ~machine env).cycles in
  let par = (parallel_unit_cost ~machine env).cycles in
  if par <= 0.0 then 1.0 else seq /. par

let loop_speedup ?(machine = Machine.default) env s ~processors =
  let machine = Machine.with_processors processors machine in
  let seq = (stmt_cost ~machine env s).cycles in
  let par = (parallel_stmt_cost ~machine env s).cycles in
  if par <= 0.0 then 1.0 else seq /. par
