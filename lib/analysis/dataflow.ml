type direction = Forward | Backward

type 'a problem = {
  direction : direction;
  boundary : 'a;
  init : 'a;
  join : 'a -> 'a -> 'a;
  equal : 'a -> 'a -> bool;
  transfer : Cfg.node -> 'a -> 'a;
}

type 'a result = {
  input_ : 'a Cfg.NodeMap.t;
  output_ : 'a Cfg.NodeMap.t;
  iters : int;
}

let solve (cfg : Cfg.t) (p : 'a problem) : 'a result =
  let nodes = Cfg.nodes cfg in
  let nodes = if p.direction = Backward then List.rev nodes else nodes in
  let flow_preds n =
    match p.direction with Forward -> Cfg.preds cfg n | Backward -> Cfg.succs cfg n
  in
  let flow_succs n =
    match p.direction with Forward -> Cfg.succs cfg n | Backward -> Cfg.preds cfg n
  in
  let boundary_node = match p.direction with Forward -> Cfg.Entry | Backward -> Cfg.Exit in
  let out = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace out n p.init) nodes;
  Hashtbl.replace out boundary_node (p.transfer boundary_node p.boundary);
  let in_ = Hashtbl.create 64 in
  (* worklist seeded in (reverse) postorder for fast convergence *)
  let queue = Queue.create () in
  let queued = Hashtbl.create 64 in
  let enqueue n =
    if not (Hashtbl.mem queued n) then begin
      Hashtbl.replace queued n ();
      Queue.add n queue
    end
  in
  List.iter enqueue nodes;
  let max_visits = 10_000 * (List.length nodes + 1) in
  let iters = ref 0 in
  while not (Queue.is_empty queue) do
    incr iters;
    if !iters > max_visits then failwith "Dataflow.solve: did not converge";
    let n = Queue.take queue in
    Hashtbl.remove queued n;
    let in_val =
      let preds = flow_preds n in
      let base = if Cfg.node_equal n boundary_node then p.boundary else p.init in
      List.fold_left
        (fun acc m ->
          match Hashtbl.find_opt out m with
          | Some v -> p.join acc v
          | None -> acc)
        base preds
    in
    Hashtbl.replace in_ n in_val;
    let out_val = p.transfer n in_val in
    let changed =
      match Hashtbl.find_opt out n with
      | Some old -> not (p.equal old out_val)
      | None -> true
    in
    if changed then begin
      Hashtbl.replace out n out_val;
      List.iter enqueue (flow_succs n)
    end
  done;
  (* ensure every node has an input value even if never dequeued *)
  List.iter
    (fun n ->
      if not (Hashtbl.mem in_ n) then begin
        let preds = flow_preds n in
        let base = if Cfg.node_equal n boundary_node then p.boundary else p.init in
        let v =
          List.fold_left
            (fun acc m ->
              match Hashtbl.find_opt out m with
              | Some v -> p.join acc v
              | None -> acc)
            base preds
        in
        Hashtbl.replace in_ n v
      end)
    nodes;
  let to_map h =
    Hashtbl.fold (fun k v acc -> Cfg.NodeMap.add k v acc) h Cfg.NodeMap.empty
  in
  (* solver convergence feeds the observability layer: total worklist
     visits and a per-solve distribution (process-default sink) *)
  let tel = Telemetry.default () in
  if Telemetry.metrics_on tel then begin
    Telemetry.incr (Telemetry.counter tel "dataflow.solves");
    Telemetry.add (Telemetry.counter tel "dataflow.node_visits") !iters;
    Telemetry.observe (Telemetry.histogram tel "dataflow.visits_per_solve")
      !iters
  end;
  { input_ = to_map in_; output_ = to_map out; iters = !iters }

let input r n =
  match Cfg.NodeMap.find_opt n r.input_ with
  | Some v -> v
  | None -> invalid_arg "Dataflow.input: unknown node"

let output r n =
  match Cfg.NodeMap.find_opt n r.output_ with
  | Some v -> v
  | None -> invalid_arg "Dataflow.output: unknown node"

let iterations r = r.iters
