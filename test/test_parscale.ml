(* Determinism of the parallel analyzer.

   The staged pipeline (Ddg.plan / test / assemble) promises that
   fanning bucket tests across a domain pool changes nothing: the
   graph, the provenance on every edge, the no-dependence table and
   the statistics must be byte-identical to a sequential build.  The
   suite pins that over every built-in workload at 2/4/8 domains,
   over the staged API driven by hand, over a cache shared by
   concurrent computes on raw domains (the satellite domain-safety
   claim), and over generated programs via the oracle fuzz hook. *)

open Fortran_front
open Dependence
open Util

let digest (g : Ddg.t) = Digest.to_hex (Digest.string (Marshal.to_string g []))

(* Every unit of a workload, with the same interprocedural
   environments the engine serves. *)
let envs_of_workload (w : Workloads.t) : (string * Depenv.t) list =
  let p = Workloads.program w in
  let summary = Interproc.Summary.analyze p in
  List.map
    (fun (u : Ast.program_unit) ->
      (u.Ast.uname, Interproc.Summary.env_for summary u))
    p.Ast.punits

let all_workload_envs =
  lazy
    (List.concat_map
       (fun (w : Workloads.t) ->
         List.map
           (fun (uname, env) -> (w.Workloads.name, uname, env))
           (envs_of_workload w))
       Workloads.all)

let check_identical ~what seq par =
  Alcotest.(check bool) (what ^ ": Ddg.equal") true (Ddg.equal seq par);
  check_string (what ^ ": marshalled bytes") (digest seq) (digest par)

let workloads_deterministic () =
  let envs = Lazy.force all_workload_envs in
  let seq = List.map (fun (w, u, env) -> (w, u, Ddg.compute env)) envs in
  List.iter
    (fun domains ->
      Runtime.Pool.with_pool domains (fun pool ->
          let runner = Runtime.Pool.analysis_runner pool in
          List.iter2
            (fun (_, _, env) (w, u, seq_g) ->
              let par = Ddg.compute ~runner env in
              check_identical
                ~what:(Printf.sprintf "%s#%s @%dd" w u domains)
                seq_g par)
            envs seq))
    [ 2; 4; 8 ]

let staged_api_matches_compute () =
  let env =
    envs_of_workload (Option.get (Workloads.by_name "spec77x")) |> List.hd
    |> snd
  in
  let p = Ddg.plan env in
  let tasks = Ddg.tasks p in
  Alcotest.(check bool) "has tasks" true (Array.length tasks > 0);
  (* canonical lexicographic task order, upper triangle only *)
  Array.iteri
    (fun i (t : Ddg.task) ->
      check_bool "upper triangle" true (t.Ddg.t_g1 <= t.Ddg.t_g2);
      check_bool "unkeyed plan carries no digests" true (t.Ddg.t_key = None);
      if i > 0 then
        let prev = tasks.(i - 1) in
        check_bool "canonical order" true
          ((prev.Ddg.t_g1, prev.Ddg.t_g2) < (t.Ddg.t_g1, t.Ddg.t_g2)))
    tasks;
  let outcomes =
    Array.map
      (fun t -> { Ddg.o_bucket = Ddg.test p t; o_cached = false })
      tasks
  in
  check_identical ~what:"hand-staged" (Ddg.compute env) (Ddg.assemble p outcomes);
  (* keyed plans carry a digest per task *)
  let kp = Ddg.plan ~keyed:true env in
  Array.iter
    (fun (t : Ddg.task) ->
      check_bool "keyed plan carries digests" true (t.Ddg.t_key <> None))
    (Ddg.tasks kp);
  (* misaligned outcomes are rejected, not silently merged *)
  match Ddg.assemble p (Array.sub outcomes 0 (Array.length outcomes - 1)) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "assemble accepted a short outcome array"

let cache_parity_under_runner () =
  let env =
    envs_of_workload (Option.get (Workloads.by_name "gauss")) |> List.hd |> snd
  in
  let seq = Ddg.compute env in
  Runtime.Pool.with_pool 4 (fun pool ->
      let runner = Runtime.Pool.analysis_runner pool in
      let cache = Ddg.make_cache () in
      (* cold: every bucket computed on the pool, then stored *)
      let cold = Ddg.compute ~cache ~runner env in
      check_identical ~what:"cold parallel" seq cold;
      let tests0, hits0, misses0 = Ddg.cache_counters cache in
      check_bool "cold run misses" true (misses0 > 0 && hits0 = 0);
      check_int "tests executed = pairs tested" seq.Ddg.stats.Ddg.pairs_tested
        tests0;
      check_int "one entry per miss" misses0 (Ddg.cache_entries cache);
      (* warm: all buckets replayed, no new tests, runner idle *)
      let warm = Ddg.compute ~cache ~runner env in
      check_identical ~what:"warm parallel" seq warm;
      let tests1, hits1, misses1 = Ddg.cache_counters cache in
      check_int "no new tests" tests0 tests1;
      check_int "all hits" (hits0 + misses0) hits1;
      check_int "no new misses" misses0 misses1;
      (* a sequential compute shares the same warmed cache *)
      check_identical ~what:"warm sequential" seq (Ddg.compute ~cache env))

(* The satellite claim: one cache, concurrently probed and filled by
   computes running on distinct raw domains, loses no increments and
   corrupts no buckets. *)
let concurrent_computes_share_one_cache () =
  let env =
    envs_of_workload (Option.get (Workloads.by_name "shallow")) |> List.hd
    |> snd
  in
  let seq = Ddg.compute env in
  let cache = Ddg.make_cache () in
  let n_domains = 4 in
  let graphs =
    Array.init n_domains (fun _ ->
        Domain.spawn (fun () -> Ddg.compute ~cache env))
    |> Array.map Domain.join
  in
  Array.iteri
    (fun i g -> check_identical ~what:(Printf.sprintf "domain %d" i) seq g)
    graphs;
  let tests, hits, misses = Ddg.cache_counters cache in
  let buckets = Ddg.cache_entries cache in
  check_bool "some buckets memoized" true (buckets > 0);
  (* every compute probed every bucket exactly once *)
  check_int "probes = domains * buckets" (n_domains * buckets) (hits + misses);
  check_bool "every bucket missed at least once" true (misses >= buckets);
  (* duplicated work is bounded by the worst case of every domain
     computing every bucket before any store landed *)
  check_bool "tests within duplication bound" true
    (tests >= seq.Ddg.stats.Ddg.pairs_tested
    && tests <= n_domains * seq.Ddg.stats.Ddg.pairs_tested)

let sessions_identical_with_runner () =
  List.iter
    (fun name ->
      let w = Option.get (Workloads.by_name name) in
      (* one parse, canonical ids: the graphs must match edge for edge *)
      let program = Ast.renumber_program (Workloads.program w) in
      let plain =
        Ped.Session.load program ~unit_name:(Workloads.main_unit w)
      in
      Runtime.Pool.with_pool 2 (fun pool ->
          let runner = Runtime.Pool.analysis_runner pool in
          let par =
            Ped.Session.load ~runner program
              ~unit_name:(Workloads.main_unit w)
          in
          check_identical ~what:("session " ^ name)
            (Ped.Session.ddg plain) (Ped.Session.ddg par)))
    [ "matmul"; "callnest"; "spec77x" ]

(* Oracle fuzz hook: generated programs through the same harness the
   engine-vs-scratch fuzz uses, sequential vs fanned-out. *)
let fuzz_parallel_matches_sequential () =
  let rng = Random.State.make [| 0x9a5c; 7 |] in
  Runtime.Pool.with_pool 4 (fun pool ->
      let runner = Runtime.Pool.analysis_runner pool in
      for round = 1 to 6 do
        let p = Test_oracle.gen_finite rng in
        let env = Test_oracle.main_env p in
        check_identical ~what:(Printf.sprintf "fuzz round %d" round)
          (Ddg.compute env)
          (Ddg.compute ~runner env)
      done)

let suite =
  [
    case "all workloads: 2/4/8-domain analysis is byte-identical"
      workloads_deterministic;
    case "staged plan/test/assemble equals compute" staged_api_matches_compute;
    case "a shared cache serves sequential and parallel computes alike"
      cache_parity_under_runner;
    case "concurrent computes on raw domains share one cache safely"
      concurrent_computes_share_one_cache;
    case "sessions with an analysis runner serve identical graphs"
      sessions_identical_with_runner;
    case "fuzz: generated programs analyze identically in parallel"
      fuzz_parallel_matches_sequential;
  ]
