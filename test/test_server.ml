(* lib/server: the multi-session analysis layer.

   What must hold: the shared cache is a real LRU under its byte
   budget; a second session over identical (renumbered) source is
   served entirely from the cache; the persisted bucket memo
   round-trips and a stale format fingerprint is rejected rather than
   misread; the line protocol parses its grammar; the batch driver's
   shared-cache runs stay byte-identical to from-scratch analysis in
   both interleaved and partitioned modes. *)

open Fortran_front
open Util

let ok_exn what = function Ok v -> v | Error e -> failwith (what ^ ": " ^ e)
let workload name = Option.get (Workloads.by_name name)

(* All server paths renumber at open, so tests that should share
   fingerprints load the same canonical form. *)
let renumbered name = Ast.renumber_program (Workloads.program (workload name))

let session_with cache name =
  let w = workload name in
  Ped.Session.load
    ~sharing:(Server.Cache.sharing cache)
    (renumbered name)
    ~unit_name:(Workloads.main_unit w)

let first_assign (u : Ast.program_unit) =
  Ast.fold_stmts
    (fun acc (s : Ast.stmt) ->
      match (acc, s.Ast.node) with
      | None, Ast.Assign _ -> Some s
      | _ -> acc)
    None u.Ast.body

(* An identity edit + undo on the main unit's first assignment, in
   command-language form (ids are stable because the driver
   renumbers at open and undo restores them). *)
let edit_script name =
  let w = workload name in
  let program = renumbered name in
  let u =
    List.find
      (fun (u : Ast.program_unit) ->
        String.equal u.Ast.uname (Workloads.main_unit w))
      program.Ast.punits
  in
  match first_assign u with
  | None -> [ "loops" ]
  | Some s ->
    [
      Printf.sprintf "edit s%d %s" s.Ast.sid
        (String.trim (Pretty.stmt_to_string s));
      "undo";
      "loops";
    ]

let job ?unit_name id name script =
  let w = workload name in
  {
    Server.Batch.j_id = id;
    j_file = name ^ ".f";
    j_source = w.Workloads.source;
    j_unit =
      (match unit_name with
      | Some _ -> unit_name
      | None -> Some (Workloads.main_unit w));
    j_script = script;
  }

let fresh_dir () =
  let name = Filename.temp_file "pedsrv" "" in
  Sys.remove name;
  name

let write_file file s =
  let oc = open_out file in
  output_string oc s;
  close_out oc

let read_whole file =
  let ic = open_in_bin file in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* --- shared cache: LRU under a byte budget ------------------------ *)

(* ~400 KB per blob against a 1 MiB budget: three never fit. *)
let big c = String.make (400 * 1024) c

let lru_eviction_order () =
  let cache = Server.Cache.create ~budget_mb:1 () in
  Server.Cache.add_blob cache "a" (big 'a');
  Server.Cache.add_blob cache "b" (big 'b');
  (* touch [a] so [b] becomes the least recently used *)
  check_bool "a resident" true (Server.Cache.find_blob cache "a" <> None);
  Server.Cache.add_blob cache "c" (big 'c');
  check_bool "b evicted" true (Server.Cache.find_blob cache "b" = None);
  check_bool "a survives (recently used)" true
    (Server.Cache.find_blob cache "a" <> None);
  check_bool "c survives (just inserted)" true
    (Server.Cache.find_blob cache "c" <> None);
  let st = Server.Cache.stats cache in
  check_bool "eviction counted" true (st.Server.Cache.evictions >= 1);
  check_bool "hits counted" true (st.Server.Cache.hits >= 2);
  check_bool "miss counted" true (st.Server.Cache.misses >= 1)

let budget_is_enforced () =
  let cache = Server.Cache.create ~budget_mb:1 () in
  for i = 1 to 6 do
    Server.Cache.add_blob cache (string_of_int i) (big 'x')
  done;
  let st = Server.Cache.stats cache in
  check_bool "bytes within budget" true
    (st.Server.Cache.bytes <= st.Server.Cache.budget_bytes);
  check_bool "entries bounded" true (st.Server.Cache.entries <= 2);
  check_bool "evictions counted" true (st.Server.Cache.evictions >= 4);
  check_int "every insertion counted" 6 st.Server.Cache.insertions

(* --- shared cache: eviction pressure from real analysis entries --- *)

(* A stress program whose summaries and unit results overflow a 1 MB
   budget: the cache must evict, the counters must stay coherent, and
   every graph must still be byte-identical to a from-scratch replay
   (the batch [check] gate).  Two passes over the units make the
   second pass revisit whatever the first evicted. *)
let eviction_pressure_stays_correct () =
  let program =
    Oracle.Stress.generate ~seed:42 (Oracle.Stress.smoke Oracle.Stress.wide)
  in
  let src = Pretty.program_to_string program in
  let stress_job i (u : Ast.program_unit) =
    {
      Server.Batch.j_id = Printf.sprintf "wide/%d" i;
      j_file = "wide.f";
      j_source = src;
      j_unit = Some u.Ast.uname;
      j_script = [ "loops" ];
    }
  in
  let pass = List.length program.Ast.punits in
  let jobs =
    List.mapi stress_job program.Ast.punits
    @ List.mapi (fun i u -> stress_job (pass + i) u) program.Ast.punits
  in
  let cache = Server.Cache.create ~budget_mb:1 () in
  (match Server.Batch.run ~cache ~check:true jobs with
  | Error e -> Alcotest.fail e
  | Ok o ->
    check_bool "identical after eviction" true
      (o.Server.Batch.o_identical = Some true);
    check_bool "no job errors" true
      (List.for_all
         (fun (r : Server.Batch.job_result) -> r.Server.Batch.jr_error = None)
         o.Server.Batch.o_results));
  let st = Server.Cache.stats cache in
  check_bool "evictions forced" true (st.Server.Cache.evictions > 0);
  check_int "entries = insertions - evictions"
    (st.Server.Cache.insertions - st.Server.Cache.evictions)
    st.Server.Cache.entries;
  check_bool "bytes within budget" true
    (st.Server.Cache.bytes <= st.Server.Cache.budget_bytes);
  check_bool "lookups recorded" true
    (st.Server.Cache.hits + st.Server.Cache.misses > 0);
  check_bool "insertions follow misses" true
    (st.Server.Cache.insertions <= st.Server.Cache.misses)

(* After the LRU dropped an entry, a later session must transparently
   recompute it — same graph as a session over a private engine.
   [wide] is the profile whose per-unit entries overflow 1 MB. *)
let evicted_entries_recompute_correctly () =
  let program =
    Oracle.Stress.generate ~seed:42 (Oracle.Stress.smoke Oracle.Stress.wide)
  in
  let cache = Server.Cache.create ~budget_mb:1 () in
  let sharing = Server.Cache.sharing cache in
  List.iter
    (fun (u : Ast.program_unit) ->
      ignore
        (Ped.Session.ddg
           (Ped.Session.load ~sharing program ~unit_name:u.Ast.uname)))
    program.Ast.punits;
  check_bool "the walk evicted" true
    ((Server.Cache.stats cache).Server.Cache.evictions > 0);
  List.iter
    (fun (u : Ast.program_unit) ->
      let again =
        Ped.Session.load ~sharing program ~unit_name:u.Ast.uname
      in
      let scratch = Ped.Session.load program ~unit_name:u.Ast.uname in
      check_bool (u.Ast.uname ^ ": equal after eviction") true
        (Dependence.Ddg.equal
           (Ped.Session.ddg scratch)
           (Ped.Session.ddg again)))
    program.Ast.punits

(* --- shared cache: cross-session dedup ---------------------------- *)

let cross_session_dedup () =
  let cache = Server.Cache.create () in
  let a = session_with cache "matmul" in
  let b = session_with cache "matmul" in
  (* the second session computes nothing: unit analysis and summary
     both arrive through the sharing hooks *)
  let sb = Ped.Session.engine_stats b in
  check_int "no unit analyses computed" 0 sb.Engine.env_misses;
  check_int "no summaries built" 0 sb.Engine.summary_builds;
  check_bool "served from the shared cache" true (sb.Engine.env_hits >= 1);
  let st = Server.Cache.stats cache in
  check_bool "cache hits recorded" true (st.Server.Cache.hits >= 2);
  check_bool "positive hit rate" true (Server.Cache.hit_rate st > 0.);
  check_bool "identical graphs" true
    (Ped.Session.ddg a = Ped.Session.ddg b)

(* --- shared cache: persistence ------------------------------------ *)

let persistent_round_trip () =
  let cache = Server.Cache.create () in
  let _ = session_with cache "jacobi" in
  let buckets = (Server.Cache.stats cache).Server.Cache.bucket_entries in
  check_bool "buckets memoized" true (buckets > 0);
  let dir = fresh_dir () in
  check_int "saved all buckets" buckets
    (ok_exn "save" (Server.Cache.save cache ~dir));
  let fresh = Server.Cache.create () in
  check_int "loaded all buckets" buckets
    (ok_exn "load" (Server.Cache.load fresh ~dir));
  (* a warmed cache serves every dependence pair test from the memo *)
  let sess = session_with fresh "jacobi" in
  let s = Ped.Session.engine_stats sess in
  check_int "no pair tests run" 0 s.Engine.tests_run;
  check_int "no bucket misses" 0 s.Engine.ddg_bucket_misses

let load_missing_is_empty () =
  let cache = Server.Cache.create () in
  check_int "no file, no buckets" 0
    (ok_exn "load" (Server.Cache.load cache ~dir:(fresh_dir ())))

let version_mismatch_rejected () =
  let cache = Server.Cache.create () in
  let _ = session_with cache "matmul" in
  let dir = fresh_dir () in
  let _ = ok_exn "save" (Server.Cache.save cache ~dir) in
  let file = Server.Cache.cache_file ~dir in
  let contents = read_whole file in
  (* flip one hex digit of the embedded format fingerprint *)
  let fp = Server.Cache.version_fingerprint () in
  let rec find i =
    if i + String.length fp > String.length contents then
      failwith "fingerprint not found in cache file"
    else if String.sub contents i (String.length fp) = fp then i
    else find (i + 1)
  in
  let at = find 0 in
  let b = Bytes.of_string contents in
  Bytes.set b at (if Bytes.get b at = '0' then '1' else '0');
  write_file file (Bytes.to_string b);
  (match Server.Cache.load (Server.Cache.create ()) ~dir with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "stale fingerprint accepted");
  (* a foreign file (wrong magic) is rejected too *)
  write_file file "NOTACACHE\njunk\n";
  match Server.Cache.load (Server.Cache.create ()) ~dir with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "foreign file accepted"

(* --- sessions: bounded history ------------------------------------ *)

let history_is_bounded () =
  let w = workload "matmul" in
  let sess =
    Ped.Session.load ~history_limit:3 (renumbered "matmul")
      ~unit_name:(Workloads.main_unit w)
  in
  check_int "limit recorded" 3 (Ped.Session.history_limit sess);
  let identity_edit () =
    let name = Ped.Session.unit_name sess in
    let u =
      List.find
        (fun (u : Ast.program_unit) -> String.equal u.Ast.uname name)
        (Ped.Session.program sess).Ast.punits
    in
    match first_assign u with
    | None -> failwith "no assignment to edit"
    | Some s ->
      ok_exn "edit"
        (Ped.Session.edit_stmt sess s.Ast.sid
           (String.trim (Pretty.stmt_to_string s)))
  in
  for _ = 1 to 5 do
    identity_edit ()
  done;
  check_int "history truncated to the limit" 3
    (List.length (Ped.Session.history sess));
  for i = 1 to 3 do
    ok_exn (Printf.sprintf "undo %d" i) (Ped.Session.undo sess)
  done;
  (match Ped.Session.undo sess with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "undid past the truncated history");
  match
    Ped.Session.load ~history_limit:0 (renumbered "matmul")
      ~unit_name:(Workloads.main_unit w)
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "history_limit 0 accepted"

(* --- protocol ------------------------------------------------------ *)

let protocol_grammar () =
  let p line = ok_exn ("parse " ^ line) (Server.Protocol.parse line) in
  (match p "open a prog.f" with
  | Server.Protocol.Open { rsid = "a"; file = "prog.f"; unit_name = None } ->
    ()
  | _ -> Alcotest.fail "open without unit");
  (match p "open b prog.f SMOOTH" with
  | Server.Protocol.Open { rsid = "b"; unit_name = Some "SMOOTH"; _ } -> ()
  | _ -> Alcotest.fail "open with unit");
  (match p "cmd a deps from s3" with
  | Server.Protocol.Cmd { rsid = "a"; line = "deps from s3" } -> ()
  | _ -> Alcotest.fail "cmd keeps the command line verbatim");
  (match p "stats a" with
  | Server.Protocol.Stats "a" -> ()
  | _ -> Alcotest.fail "stats");
  (match p "sessions" with
  | Server.Protocol.Sessions -> ()
  | _ -> Alcotest.fail "sessions");
  (match p "cache" with
  | Server.Protocol.Cache_stats -> ()
  | _ -> Alcotest.fail "cache");
  (match p "close a" with
  | Server.Protocol.Close "a" -> ()
  | _ -> Alcotest.fail "close");
  (match p "quit" with
  | Server.Protocol.Quit -> ()
  | _ -> Alcotest.fail "quit");
  List.iter
    (fun bad ->
      match Server.Protocol.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted malformed request: " ^ bad))
    [ ""; "bogus x"; "open onlyid"; "cmd a"; "stats"; "close" ];
  check_bool "payload splits lines" true
    (Server.Protocol.payload_of_text "a\nb\n" = [ "a"; "b" ]);
  check_bool "empty text, empty payload" true
    (Server.Protocol.payload_of_text "" = [])

(* --- the server ---------------------------------------------------- *)

let serve_session_flow () =
  let server = Server.Serve.create () in
  let w = workload "matmul" in
  let file = Filename.temp_file "ped" ".f" in
  write_file file w.Workloads.source;
  let handle req = Server.Serve.handle server req in
  let opened id =
    ok_exn ("open " ^ id)
      (handle
         (Server.Protocol.Open { rsid = id; file; unit_name = None }))
  in
  let id, _ = opened "a" in
  check_string "echoes the session id" "a" id;
  (match handle (Server.Protocol.Open { rsid = "a"; file; unit_name = None })
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate session id accepted");
  let _ = opened "b" in
  check_int "both sessions listed" 2
    (List.length (Server.Serve.sessions server));
  let _, payload =
    ok_exn "cmd" (handle (Server.Protocol.Cmd { rsid = "a"; line = "loops" }))
  in
  check_bool "command produced output" true (payload <> []);
  let _, stats_payload = ok_exn "stats" (handle (Server.Protocol.Stats "b")) in
  (* the open above ran in b's telemetry lane, so the stats response
     ends with that session's request-latency quantiles *)
  let has_sub hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i =
      i + n <= h && (String.sub hay i n = needle || go (i + 1))
    in
    go 0
  in
  (match List.rev stats_payload with
  | latency :: _ ->
    check_bool "stats ends with a request-latency line" true
      (has_sub latency "request latency: p50 ");
    check_bool "latency line reports p95 and max" true
      (has_sub latency "p95 " && has_sub latency "max ");
    check_bool "latency line counts b's one request" true
      (has_sub latency "(1 request)")
  | [] -> Alcotest.fail "empty stats payload");
  let _ = ok_exn "cache" (handle Server.Protocol.Cache_stats) in
  (* session b was served from a's work: the server's sink aggregates
     across sessions, and the whole server computed exactly one unit
     analysis for two opens *)
  let b = Option.get (Server.Serve.find_session server "b") in
  check_int "one unit analysis across both sessions" 1
    (Ped.Session.engine_stats b).Engine.env_misses;
  check_bool "second open hit the shared cache" true
    ((Server.Cache.stats (Server.Serve.cache server)).Server.Cache.hits >= 2);
  let _ = ok_exn "close" (handle (Server.Protocol.Close "a")) in
  check_bool "a closed" true (Server.Serve.find_session server "a" = None);
  (match handle (Server.Protocol.Cmd { rsid = "a"; line = "loops" }) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "command on a closed session accepted");
  let _ = ok_exn "quit" (handle Server.Protocol.Quit) in
  Sys.remove file

let serve_lanes_in_trace () =
  let sink = Telemetry.make ~record_spans:true () in
  let server = Server.Serve.create ~telemetry:sink () in
  let w = workload "matmul" in
  let file = Filename.temp_file "ped" ".f" in
  write_file file w.Workloads.source;
  let _ =
    ok_exn "open"
      (Server.Serve.handle server
         (Server.Protocol.Open { rsid = "a"; file; unit_name = None }))
  in
  let _ =
    ok_exn "cmd"
      (Server.Serve.handle server
         (Server.Protocol.Cmd { rsid = "a"; line = "loops" }))
  in
  Sys.remove file;
  let request_lanes =
    List.filter_map
      (fun (sp : Telemetry.span_record) ->
        if sp.Telemetry.sp_name = "server.request" then
          Some sp.Telemetry.sp_lane
        else None)
      (Telemetry.spans sink)
  in
  check_bool "request spans recorded" true (request_lanes <> []);
  check_bool "spans carry the session lane" true
    (List.for_all (( = ) (Some "session a")) request_lanes)

(* --- canonical renumbering ---------------------------------------- *)

let renumbering_is_canonical () =
  let digest p = Digest.to_hex (Digest.string (Marshal.to_string p [])) in
  (* two independent parses normalize to the same ids — the property
     cross-process fingerprint equality rests on *)
  check_string "same source, same canonical form"
    (digest (renumbered "callnest"))
    (digest (renumbered "callnest"))

(* --- the batch driver ---------------------------------------------- *)

let batch_interleaved_identical () =
  let jobs =
    List.init 3 (fun i ->
        job (Printf.sprintf "j%d" i) "matmul" (edit_script "matmul"))
  in
  let o = ok_exn "batch" (Server.Batch.run ~check:true jobs) in
  check_int "all jobs ran" 3 o.Server.Batch.o_jobs;
  List.iter
    (fun (r : Server.Batch.job_result) ->
      check_bool ("job ok: " ^ r.Server.Batch.jr_id) true
        (r.Server.Batch.jr_error = None))
    o.Server.Batch.o_results;
  check_bool "byte-identical to from-scratch" true
    (o.Server.Batch.o_identical = Some true);
  check_bool "duplicated jobs hit the shared cache" true
    (Server.Cache.hit_rate o.Server.Batch.o_cache > 0.);
  check_bool "edits counted" true (o.Server.Batch.o_edits >= 6)

let batch_partitioned_identical () =
  let jobs =
    List.concat_map
      (fun name ->
        [
          job (name ^ "-1") name (edit_script name);
          job (name ^ "-2") name (edit_script name);
        ])
      [ "matmul"; "jacobi" ]
  in
  let o = ok_exn "batch" (Server.Batch.run ~check:true ~domains:2 jobs) in
  check_int "two worker domains" 2 o.Server.Batch.o_domains;
  check_int "all jobs ran" 4 o.Server.Batch.o_jobs;
  List.iter
    (fun (r : Server.Batch.job_result) ->
      check_bool ("job ok: " ^ r.Server.Batch.jr_id) true
        (r.Server.Batch.jr_error = None))
    o.Server.Batch.o_results;
  check_bool "byte-identical to from-scratch" true
    (o.Server.Batch.o_identical = Some true)

let batch_job_file_parses () =
  let dir = fresh_dir () in
  Sys.mkdir dir 0o755;
  let w = workload "matmul" in
  write_file (Filename.concat dir "matmul.f") w.Workloads.source;
  let jobfile = Filename.concat dir "jobs.txt" in
  write_file jobfile
    (String.concat "\n"
       [
         "# a comment";
         "";
         "matmul.f :: loops ; deps";
         Printf.sprintf "matmul.f#%s :: vars" (Workloads.main_unit w);
         "";
       ]);
  let jobs = ok_exn "parse" (Server.Batch.parse_job_file jobfile) in
  check_int "two jobs" 2 (List.length jobs);
  let j1 = List.nth jobs 0 and j2 = List.nth jobs 1 in
  check_bool "script split on ;" true
    (j1.Server.Batch.j_script = [ "loops"; "deps" ]);
  check_bool "explicit unit" true
    (j2.Server.Batch.j_unit = Some (Workloads.main_unit w));
  write_file jobfile "nosuch.f :: loops\n";
  match Server.Batch.parse_job_file jobfile with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing source accepted"

let suite =
  [
    case "cache: LRU evicts the least recently used entry"
      lru_eviction_order;
    case "cache: the byte budget is enforced" budget_is_enforced;
    case "cache: eviction pressure keeps batch results byte-identical"
      eviction_pressure_stays_correct;
    case "cache: evicted entries recompute to the same graph"
      evicted_entries_recompute_correctly;
    case "cache: a second identical session is fully served"
      cross_session_dedup;
    case "cache: the bucket memo round-trips through disk"
      persistent_round_trip;
    case "cache: loading a missing file is empty, not an error"
      load_missing_is_empty;
    case "cache: stale fingerprints and foreign files are rejected"
      version_mismatch_rejected;
    case "session: the undo history is bounded" history_is_bounded;
    case "protocol: the request grammar" protocol_grammar;
    case "serve: open, command, stats, close" serve_session_flow;
    case "serve: request spans carry per-session lanes"
      serve_lanes_in_trace;
    case "ast: renumbering is canonical across parses"
      renumbering_is_canonical;
    case "batch: interleaved sharing stays byte-identical"
      batch_interleaved_identical;
    case "batch: partitioned across domains stays byte-identical"
      batch_partitioned_identical;
    case "batch: job files parse and reject missing sources"
      batch_job_file_parses;
  ]
