C PED-FUZZ COUNTEREXAMPLE v1
C oracle: dependence
C seed: 0#0
C A level-1 carried flow dependence plus loop-independent flow into
C the checksum: the brute-force oracle must find every concrete
C (kind, var, src, dst, level, direction) class in the DDG.
      PROGRAM FUZZ
      REAL A((-4):44)
      DO I = 1, 40
        A(I) = FLOAT(I)
      ENDDO
      DO I = 2, 20
        A(I) = A(I - 1) * 0.5
      ENDDO
      S = 0.0
      DO I = 1, 40
        S = S + A(I)
      ENDDO
      PRINT *, S
      END
