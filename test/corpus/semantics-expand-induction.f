C PED-FUZZ COUNTEREXAMPLE v1
C oracle: semantics
C seed: 0#7
C Scalar expansion of an inner loop's induction variable: the
C classifier saw J as privatizable in the outer loop and expansion
C rewrote its uses to JX(I) while the inner DO kept assigning J.
C Expansion must refuse induction variables.
      PROGRAM FUZZ
      REAL A((-4):44)
      REAL C((-4):28, (-4):28)
      DO I = 1, 40
        A(I) = FLOAT(I) * 0.25
      ENDDO
      DO I = 1, 8
        DO J = 1, 8
          C(I, J) = A(I) + FLOAT(J)
        ENDDO
      ENDDO
      S = 0.0
      DO I = 1, 8
        DO J = 1, 8
          S = S + C(I, J)
        ENDDO
      ENDDO
      PRINT *, S
      END
