C PED-FUZZ COUNTEREXAMPLE v1
C oracle: runtime
C seed: 7#4
C An auxiliary induction scalar (K = K + 1) live after an
C analysis-approved DOALL: the runtime used to privatize K like a
C plain scalar, losing the accumulated final value under d=2 chunk.
      PROGRAM FUZZ
      REAL A((-4):44)
      REAL B((-4):44)
      REAL C((-4):28, (-4):28)
      DO I = 1, 2
        K = K + 1
      ENDDO
      PRINT *, S, T, K, N
      END
