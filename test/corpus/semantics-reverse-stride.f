C PED-FUZZ COUNTEREXAMPLE v1
C oracle: semantics
C seed: 7#7
C Loop reversal on a non-unit stride: the naive header swap
C (hi, lo, -st) visits 10,8,6,4,2 instead of 9,7,5,3,1 -- the
C reversed loop must start on lo + ((hi-lo)/st)*st.
      PROGRAM FUZZ
      REAL A((-4):44)
      DO I = 1, 40
        A(I) = FLOAT(41 - I)
      ENDDO
      DO I = 1, 10, 2
        A(I) = A(I) + FLOAT(I) * 0.5
      ENDDO
      S = 0.0
      DO I = 1, 40
        S = S + A(I)
      ENDDO
      PRINT *, S
      END
