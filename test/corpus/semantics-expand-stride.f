C PED-FUZZ COUNTEREXAMPLE v1
C oracle: semantics
C seed: 42#99
C step: expand loop=1 var=T
C Scalar expansion's last-value copy-out read TX(hi), but with a
C non-unit stride the last iteration is lo + ((hi-lo)/st)*st -- here
C L = 7, not 8 -- so the live-out T took a value from an iteration
C that never ran (an uninitialized element).
      PROGRAM FUZZ
      REAL A((-4):44)
      DO I = 1, 40
        A(I) = FLOAT(41 - I) * 0.125
      ENDDO
      DO L = 3, 8, 2
        T = 3 + A(L + L)
      ENDDO
      PRINT *, S, T, K, N
      END
