(* lib/perfdebug: span profiles, the five diagnosis rules, and the
   driver.  Detector thresholds are ratios of same-run measurements,
   so the synthetic-profile cases here are exact; the end-to-end
   cases only assert properties that hold on any machine (including
   an oversubscribed single core). *)

open Fortran_front
open Util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let near what expect got =
  Alcotest.(check (float 1e-9)) what expect got

(* --- span fixtures -------------------------------------------------- *)

let sp ?(args = []) name t0 t1 =
  {
    Telemetry.sp_name = name;
    sp_path = [ name ];
    sp_tid = 0;
    sp_lane = None;
    sp_t0 = Int64.of_int t0;
    sp_t1 = Int64.of_int t1;
    sp_args = args;
  }

let profile_of ?(workers = 2) ?fallback spans =
  Perfdebug.Profile.of_spans ~workers ?fallback_run_ns:fallback spans

(* --- profile fixtures (for the detectors) --------------------------- *)

let lp ?(sid = 1) ?(execs = 1) ?(trip = 64) ?(span = 1000.0)
    ?(busy = [| 450.0; 450.0 |]) ?(copyin = 0.0) ?(join = 0.0)
    ?(sched = "chunk") () =
  {
    Perfdebug.Profile.lp_sid = sid;
    lp_execs = execs;
    lp_trip_total = trip;
    lp_span_ns = span;
    lp_busy_ns = busy;
    lp_copyin_ns = copyin;
    lp_join_ns = join;
    lp_sched = sched;
  }

let prof ?(workers = 2) ?(run = 1000.0) loops =
  { Perfdebug.Profile.workers; run_ns = run; loops }

let detect ?static ?speedup profile =
  Perfdebug.Detect.run ~profile
    ~static:(Option.value ~default:[] static)
    ~fork_join_cycles:200.0 ?speedup ()

let kinds_of findings =
  List.sort_uniq compare
    (List.map (fun f -> f.Perfdebug.Detect.f_kind) findings)

let shape ?(predicted = 1.5) ?(privates = 0) ?(arrays = 0) ?(reductions = 0)
    () =
  {
    Perfdebug.Detect.st_predicted = predicted;
    st_privates = privates;
    st_arrays = arrays;
    st_reductions = reductions;
  }

(* --- program fixtures (for the driver) ------------------------------ *)

let program src = Ast.renumber_program (parse src)

(* Mark exactly the DO loops over [iv] PARALLEL. *)
let parallelize_iv iv (prog : Ast.program) : Ast.program =
  let rewrite (u : Ast.program_unit) =
    {
      u with
      Ast.body =
        Ast.map_stmts
          (fun (s : Ast.stmt) ->
            match s.Ast.node with
            | Ast.Do (h, body) when String.equal h.Ast.dvar iv ->
              { s with
                Ast.node = Ast.Do ({ h with Ast.parallel = true }, body) }
            | _ -> s)
          u.Ast.body;
    }
  in
  { Ast.punits = List.map rewrite prog.Ast.punits }

(* A dominant first-order recurrence: nothing to parallelize. *)
let serial_src =
  "      PROGRAM SER\n\
   \      INTEGER N\n\
   \      PARAMETER (N = 2000)\n\
   \      REAL A(N)\n\
   \      INTEGER I\n\
   \      A(1) = 1.0\n\
   \      DO I = 2, N\n\
   \        A(I) = A(I-1) * 0.9 + FLOAT(I)\n\
   \      ENDDO\n\
   \      PRINT *, A(N)\n\
   \      END\n"

(* A tiny parallel loop forked from a serial outer loop: fork/join
   overhead dominates by construction. *)
let finegrain_src =
  "      PROGRAM FG\n\
   \      INTEGER N, R\n\
   \      PARAMETER (N = 8, R = 40)\n\
   \      REAL A(N)\n\
   \      INTEGER I, K\n\
   \      DO K = 1, R\n\
   \        DO I = 1, N\n\
   \          A(I) = A(I) + 1.0\n\
   \        ENDDO\n\
   \      ENDDO\n\
   \      PRINT *, A(1)\n\
   \      END\n"

let suite =
  [
    (* ---------------- Profile ---------------- *)
    case "profile: spans bucket by loop label" (fun () ->
        let spans =
          [
            sp "exec.run" 0 10_000;
            sp "exec.parallel-loop"
              ~args:[ ("loop", "s5"); ("trip", "8") ]
              1_000 7_000;
            sp "exec.copy-in" ~args:[ ("loop", "s5"); ("worker", "0") ] 1_100
              1_300;
            sp "exec.copy-in" ~args:[ ("loop", "s5"); ("worker", "1") ] 1_100
              1_400;
            sp "pool.chunk"
              ~args:[ ("worker", "0"); ("label", "s5") ]
              1_100 3_000;
            sp "pool.chunk"
              ~args:[ ("worker", "1"); ("label", "s5") ]
              1_100 6_000;
            sp "exec.join" ~args:[ ("loop", "s5") ] 6_200 7_000;
            (* unlabeled pool job: analyzer fan-out, not a loop *)
            sp "pool.chunk" ~args:[ ("worker", "0") ] 0 500;
            (* out-of-range worker index must not crash or count *)
            sp "pool.chunk"
              ~args:[ ("worker", "7"); ("label", "s9") ]
              0 100;
          ]
        in
        let p = profile_of spans in
        near "run_ns" 10_000.0 p.Perfdebug.Profile.run_ns;
        let l = Option.get (Perfdebug.Profile.find p 5) in
        check_int "execs" 1 l.Perfdebug.Profile.lp_execs;
        check_int "trip" 8 l.Perfdebug.Profile.lp_trip_total;
        near "span" 6_000.0 l.Perfdebug.Profile.lp_span_ns;
        near "busy w0" 1_900.0 l.Perfdebug.Profile.lp_busy_ns.(0);
        near "busy w1" 4_900.0 l.Perfdebug.Profile.lp_busy_ns.(1);
        near "copyin" 500.0 l.Perfdebug.Profile.lp_copyin_ns;
        near "join" 800.0 l.Perfdebug.Profile.lp_join_ns;
        near "busy_max" 4_900.0 (Perfdebug.Profile.busy_max l);
        near "busy_mean" 3_400.0 (Perfdebug.Profile.busy_mean l);
        near "coverage" 0.6 (Perfdebug.Profile.parallel_coverage p);
        let s9 = Option.get (Perfdebug.Profile.find p 9) in
        near "rogue worker ignored" 0.0 (Perfdebug.Profile.busy_total s9));
    case "profile: repeated executions accumulate; self sched sticks"
      (fun () ->
        let exec t0 t1 =
          sp "exec.parallel-loop"
            ~args:[ ("loop", "s3"); ("trip", "10") ]
            t0 t1
        in
        let p =
          profile_of
            [
              sp "exec.run" 0 10_000;
              exec 0 2_000;
              exec 2_000 5_000;
              sp "pool.self"
                ~args:[ ("worker", "0"); ("label", "s3") ]
                100 900;
            ]
        in
        let l = Option.get (Perfdebug.Profile.find p 3) in
        check_int "execs" 2 l.Perfdebug.Profile.lp_execs;
        check_int "trips summed" 20 l.Perfdebug.Profile.lp_trip_total;
        near "span summed" 5_000.0 l.Perfdebug.Profile.lp_span_ns;
        check_bool "self-scheduled" true
          (String.equal l.Perfdebug.Profile.lp_sched "self"));
    case "profile: compiled runs fall back to labeled pool spans"
      (fun () ->
        let p =
          profile_of ~fallback:8_000.0
            [
              sp "pool.run" ~args:[ ("label", "s3"); ("trip", "10") ] 0 5_000;
              sp "pool.chunk"
                ~args:[ ("worker", "0"); ("label", "s3") ]
                0 2_400;
              sp "pool.chunk"
                ~args:[ ("worker", "1"); ("label", "s3") ]
                0 2_500;
            ]
        in
        near "fallback run_ns" 8_000.0 p.Perfdebug.Profile.run_ns;
        let l = Option.get (Perfdebug.Profile.find p 3) in
        check_int "execs from pool.run" 1 l.Perfdebug.Profile.lp_execs;
        check_int "trip from pool.run" 10 l.Perfdebug.Profile.lp_trip_total;
        near "span from pool.run" 5_000.0 l.Perfdebug.Profile.lp_span_ns;
        near "coverage" 0.625 (Perfdebug.Profile.parallel_coverage p));
    (* ---------------- Detectors ---------------- *)
    case "detect: a balanced coarse loop is silent" (fun () ->
        let p = prof ~run:540.0 [ lp ~busy:[| 490.0; 500.0 |] ~span:520.0 () ] in
        check_bool "no findings" true (detect p = []));
    case "detect: imbalance on skewed busy times" (fun () ->
        let p = prof [ lp ~busy:[| 900.0; 100.0 |] () ] in
        match detect p with
        | [ f ] ->
          check_bool "kind" true
            (f.Perfdebug.Detect.f_kind = Perfdebug.Detect.Imbalance);
          check_bool "names the loop" true
            (f.Perfdebug.Detect.f_loop = Some 1);
          check_bool "chunk remedy suggests self-scheduling" true
            (contains ~needle:"self" f.Perfdebug.Detect.f_remedy)
        | fs ->
          Alcotest.failf "expected exactly the imbalance finding, got %d"
            (List.length fs));
    case "detect: imbalance under self-scheduling suggests strip-mining"
      (fun () ->
        let p = prof [ lp ~busy:[| 900.0; 100.0 |] ~sched:"self" () ] in
        match detect p with
        | [ f ] ->
          check_bool "strip-mine remedy" true
            (contains ~needle:"strip-mine" f.Perfdebug.Detect.f_remedy)
        | _ -> Alcotest.fail "expected one finding");
    case "detect: granularity on dominant fork/join overhead" (fun () ->
        (* busy accounts for 100 of the 1000ns span: 90% overhead *)
        let p = prof [ lp ~busy:[| 100.0; 100.0 |] () ] in
        let fs = detect p in
        check_bool "granularity fires" true
          (List.mem Perfdebug.Detect.Granularity (kinds_of fs));
        let f =
          List.find
            (fun f ->
              f.Perfdebug.Detect.f_kind = Perfdebug.Detect.Granularity)
            fs
        in
        check_bool "cites the machine model's fork price" true
          (List.exists
             (contains ~needle:"200 cycles")
             f.Perfdebug.Detect.f_evidence);
        check_bool "one fork: strip-mine, not interchange" true
          (contains ~needle:"strip-mine" f.Perfdebug.Detect.f_remedy));
    case "detect: repeated forks suggest interchange" (fun () ->
        let p =
          prof [ lp ~execs:10 ~trip:640 ~busy:[| 100.0; 100.0 |] () ]
        in
        let f =
          List.find
            (fun f ->
              f.Perfdebug.Detect.f_kind = Perfdebug.Detect.Granularity)
            (detect p)
        in
        check_bool "interchange remedy" true
          (contains ~needle:"interchange" f.Perfdebug.Detect.f_remedy));
    case "detect: starved workers fire granularity on trip < workers"
      (fun () ->
        (* overhead is only 20%, but a trip of 1 cannot feed 2 workers *)
        let p = prof [ lp ~trip:1 ~busy:[| 800.0; 0.0 |] () ] in
        check_bool "granularity fires" true
          (List.mem Perfdebug.Detect.Granularity (kinds_of (detect p))));
    case "detect: privatization cost needs a planned shape" (fun () ->
        let heavy = lp ~busy:[| 300.0; 250.0 |] ~copyin:300.0 ~join:150.0 () in
        let p = prof [ heavy ] in
        (* planned arrays: fires, with the array remedy *)
        let fs = detect ~static:[ (1, shape ~arrays:1 ()) ] p in
        check_bool "fires with arrays" true
          (List.mem Perfdebug.Detect.Privatization (kinds_of fs));
        let f =
          List.find
            (fun f ->
              f.Perfdebug.Detect.f_kind = Perfdebug.Detect.Privatization)
            fs
        in
        check_bool "array remedy" true
          (contains ~needle:"copied per worker" f.Perfdebug.Detect.f_remedy);
        (* an empty planned shape silences it despite the span cost *)
        let fs0 = detect ~static:[ (1, shape ()) ] p in
        check_bool "silent with empty shape" false
          (List.mem Perfdebug.Detect.Privatization (kinds_of fs0));
        (* no static info at all: the measured cost alone decides *)
        let fs1 = detect p in
        check_bool "fires without static info" true
          (List.mem Perfdebug.Detect.Privatization (kinds_of fs1)));
    case "detect: loops below the share floor are ignored" (fun () ->
        let p =
          prof ~run:100_000.0 [ lp ~busy:[| 900.0; 100.0 |] () ]
        in
        (* 1% of the run: grossly imbalanced yet not worth reporting *)
        check_bool "no findings" true
          (List.for_all
             (fun f -> f.Perfdebug.Detect.f_kind <> Perfdebug.Detect.Imbalance)
             (detect p)));
    case "detect: serial fraction from parallel coverage" (fun () ->
        let p = prof [ lp ~span:300.0 ~busy:[| 290.0; 295.0 |] () ] in
        match detect p with
        | [ f ] ->
          check_bool "kind" true
            (f.Perfdebug.Detect.f_kind = Perfdebug.Detect.Serial_fraction);
          check_bool "whole-run finding" true
            (f.Perfdebug.Detect.f_loop = None);
          check_bool "cites the Amdahl bound" true
            (List.exists
               (contains ~needle:"Amdahl")
               f.Perfdebug.Detect.f_evidence)
        | fs ->
          Alcotest.failf "expected exactly the serial finding, got %d"
            (List.length fs));
    case "detect: prediction mismatch only on real overprediction"
      (fun () ->
        let p = prof [ lp ~busy:[| 490.0; 500.0 |] ~span:520.0 () ] in
        let fires speedup =
          List.mem Perfdebug.Detect.Prediction_mismatch
            (kinds_of (detect ~speedup p))
        in
        check_bool "overpredicted 2.5x" true (fires (0.8, 2.0));
        check_bool "promise below the floor" false (fires (0.8, 1.2));
        check_bool "underprediction is not a defect" false (fires (4.0, 2.0));
        check_bool "agreement" false (fires (1.8, 2.0));
        let f =
          List.find
            (fun f ->
              f.Perfdebug.Detect.f_kind
              = Perfdebug.Detect.Prediction_mismatch)
            (detect ~speedup:(0.8, 2.0) p)
        in
        check_bool "points at --calibrate" true
          (contains ~needle:"--calibrate" f.Perfdebug.Detect.f_remedy));
    case "detect: findings rank by time at stake" (fun () ->
        let p =
          prof ~run:10_000.0
            [
              lp ~sid:1 ~span:1_000.0 ~busy:[| 900.0; 100.0 |] ();
              lp ~sid:2 ~span:8_000.0 ~busy:[| 7200.0; 800.0 |] ();
            ]
        in
        match detect p with
        | first :: _ ->
          check_bool "big loop first" true
            (first.Perfdebug.Detect.f_loop = Some 2)
        | [] -> Alcotest.fail "expected findings");
    (* ---------------- Driver ---------------- *)
    case "driver: static_of keys estimator promises by loop sid" (fun () ->
        let prog = parallelize_iv "I" (program finegrain_src) in
        let static = Perfdebug.Driver.static_of ~processors:2 prog in
        check_int "one parallel loop" 1 (List.length static);
        let _, st = List.hd static in
        check_bool "predicted positive" true
          (st.Perfdebug.Detect.st_predicted > 0.0));
    case "driver: a serial program diagnoses as serial fraction" (fun () ->
        let d = Perfdebug.Driver.diagnose ~domains:2 (program serial_src) in
        check_bool "serial fraction fires" true
          (List.mem Perfdebug.Detect.Serial_fraction
             (Perfdebug.Driver.kinds d));
        let r = Perfdebug.Driver.render d in
        check_bool "summary header" true
          (contains ~needle:"performance diagnosis:" r);
        check_bool "coverage line" true
          (contains ~needle:"parallel coverage" r));
    case "driver: fine-grained forks diagnose as granularity" (fun () ->
        let prog = parallelize_iv "I" (program finegrain_src) in
        let d = Perfdebug.Driver.diagnose ~domains:2 prog in
        check_bool "granularity fires" true
          (List.mem Perfdebug.Detect.Granularity (Perfdebug.Driver.kinds d)));
    case "driver: focused render names a clean loop" (fun () ->
        let d = Perfdebug.Driver.diagnose ~domains:2 (program serial_src) in
        (* no findings attach to s999, so the focused form says so *)
        let r = Perfdebug.Driver.render ~focus:999 d in
        check_bool "clean loop message" true
          (contains ~needle:"loop s999: no performance problems detected" r));
    case "driver: diagnosis kinds are deterministic across runs" (fun () ->
        (* the satellite determinism contract: same (workload, domains)
           twice gives the same kind set.  Both kernels sit far from
           every threshold in a direction timing noise can't flip:
           the serial program has zero parallel coverage; the
           fine-grained one, fork overhead orders beyond its body
           (imbalance is disabled there — with microsecond busy times
           on an oversubscribed host, worker spread is real noise). *)
        let twice ?config prog =
          let k () =
            Perfdebug.Driver.kinds
              (Perfdebug.Driver.diagnose ?config ~domains:2 prog)
          in
          (k (), k ())
        in
        let k1, k2 = twice (program serial_src) in
        check_bool "serial kinds repeat" true (k1 = k2);
        check_bool "serial fraction present" true
          (List.mem Perfdebug.Detect.Serial_fraction k1);
        let nimb =
          { Perfdebug.Detect.default with
            Perfdebug.Detect.imbalance_ratio = infinity }
        in
        let prog = parallelize_iv "I" (program finegrain_src) in
        let g1, g2 = twice ~config:nimb prog in
        check_bool "fine-grained kinds repeat" true (g1 = g2);
        check_bool "granularity present" true
          (List.mem Perfdebug.Detect.Granularity g1));
    (* ---------------- Perf.Compare ---------------- *)
    case "compare: verdicts split at the tolerance band" (fun () ->
        let v ~predicted ~measured =
          (Perf.Compare.compare_speedup ~predicted ~measured ())
            .Perf.Compare.verdict
        in
        check_bool "agree" true (v ~predicted:1.8 ~measured:1.5 = Perf.Compare.Agree);
        check_bool "over" true
          (v ~predicted:4.0 ~measured:1.0 = Perf.Compare.Overpredicted);
        check_bool "under" true
          (v ~predicted:1.0 ~measured:4.0 = Perf.Compare.Underpredicted);
        (* degenerate inputs clamp instead of dividing by zero *)
        check_bool "zero measured" true
          (v ~predicted:2.0 ~measured:0.0 = Perf.Compare.Overpredicted));
  ]
