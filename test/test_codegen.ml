(* The native code generation backend: every workload compiled through
   the full pipeline (lower → emit → ocamlopt → Dynlink) and diffed
   against the sequential simulator — bit-identical sequentially,
   tolerance-matched in parallel; the persisted oracle corpus pushed
   through the codegen oracle; a stress-factory program at smoke
   scale; and the failure modes: unsupported programs and a missing
   toolchain must come back as [Error], never an exception.

   Hosts without ocamlopt on PATH skip the compile-and-run cases
   (printing the reason) — the pipeline's graceful degradation is
   itself asserted by the toolchain case. *)

open Fortran_front
open Util

let toolchain_available = Result.is_ok (Codegen.Toolchain.find ())

(* Auto-parallelize every approved loop of every unit — the program
   shape ped compile feeds the pipeline. *)
let auto_par (program : Ast.program) =
  let unit_name =
    match
      List.find_opt
        (fun (u : Ast.program_unit) -> u.Ast.kind = Ast.Main)
        program.Ast.punits
    with
    | Some u -> u.Ast.uname
    | None -> (List.hd program.Ast.punits).Ast.uname
  in
  let sess = Ped.Session.load program ~unit_name in
  List.iter
    (fun (u : Ast.program_unit) ->
      match Ped.Session.focus sess u.Ast.uname with
      | Ok () ->
        List.iter
          (fun (l : Dependence.Loopnest.loop) ->
            if Ped.Session.is_parallelizable sess (loop_sid l) then
              ignore
                (Ped.Session.transform sess "parallelize"
                   (Transform.Catalog.On_loop (loop_sid l))))
          (Ped.Session.loops sess)
      | Error _ -> ())
    (Ped.Session.program sess).Ast.punits;
  Ped.Session.program sess

let skip_or_fail name = function
  | Codegen.Compile.Toolchain m ->
    Printf.printf "  [codegen] %s: skipped (%s)\n%!" name m
  | e -> Alcotest.failf "%s: %s" name (Codegen.Compile.error_to_string e)

(* Compile [program], run it sequentially (must equal the interpreter
   exactly: same operations in the same order) and on [domains]
   domains under both schedules (within tolerance: parallel reduction
   combining reassociates). *)
let check_compiled name program ~domains =
  let seq = Sim.Interp.run ~honor_parallel:false program in
  match Codegen.Compile.build program with
  | Error e -> skip_or_fail name e
  | Ok built ->
    (match Codegen.Compile.run built ~pool:None ~schedule:Runtime.Pool.Chunk with
    | Error e -> Alcotest.failf "%s seq: %s" name (Codegen.Compile.error_to_string e)
    | Ok r ->
      check_bool (name ^ ": sequential output identical") true
        (r.Codegen.Compile.out_lines = seq.Sim.Interp.output);
      check_bool (name ^ ": sequential store identical") true
        (r.Codegen.Compile.store = seq.Sim.Interp.final_store));
    List.iter
      (fun schedule ->
        match
          Runtime.Pool.with_pool domains (fun pool ->
              Codegen.Compile.run built ~pool:(Some pool) ~schedule)
        with
        | Error e ->
          Alcotest.failf "%s par: %s" name (Codegen.Compile.error_to_string e)
        | Ok r ->
          let label =
            Printf.sprintf "%s @%d/%s" name domains
              (Runtime.Pool.schedule_to_string schedule)
          in
          check_bool (label ^ ": output matches") true
            (Sim.Interp.outputs_match ~tol:1e-4 r.Codegen.Compile.out_lines
               seq.Sim.Interp.output);
          check_bool (label ^ ": store matches") true
            (Sim.Interp.stores_match r.Codegen.Compile.store
               seq.Sim.Interp.final_store))
      [ Runtime.Pool.Chunk; Runtime.Pool.Self ]

let all_workloads () =
  List.iter
    (fun (w : Workloads.t) ->
      check_compiled w.Workloads.name
        (Test_runtime.parallelized w)
        ~domains:3)
    Workloads.all

let stress_smoke () =
  match Workloads.stress "stress:deep@smoke" with
  | Error e -> Alcotest.fail e
  | Ok p -> check_compiled "stress:deep@smoke" (auto_par p) ~domains:2

let corpus_through_codegen () =
  (* every persisted counterexample, whatever oracle recorded it, must
     also survive the codegen oracle (or fall outside the subset) *)
  List.iter
    (fun f ->
      match Oracle.Corpus.load f with
      | Error e -> Alcotest.failf "%s: %s" f e
      | Ok entry -> (
        let r = Oracle.Cgcheck.check entry.Oracle.Corpus.e_program in
        match r.Oracle.Cgcheck.failures with
        | [] -> ()
        | fs ->
          Alcotest.failf "%s diverges under codegen: %s" f
            (String.concat "; "
               (List.map Oracle.Runcheck.failure_to_string fs))))
    (Oracle.Corpus.files "corpus")

let unsupported_is_error () =
  (* a recursive call graph is outside the compilable subset: the
     pipeline must answer [Error Unsupported], not raise or loop *)
  let p =
    parse
      {|
      PROGRAM T
      CALL A(3)
      END
      SUBROUTINE A(N)
      INTEGER N
      IF (N .GT. 0) THEN
        CALL A(N - 1)
      ENDIF
      END
|}
  in
  match Codegen.Compile.build p with
  | Error (Codegen.Compile.Unsupported _) -> ()
  | Error e ->
    Alcotest.failf "expected Unsupported, got %s"
      (Codegen.Compile.error_to_string e)
  | Ok _ -> Alcotest.fail "recursive program compiled"

let missing_toolchain_is_error () =
  (* with an empty PATH the pipeline must degrade to [Error Toolchain] *)
  let saved = Sys.getenv_opt "PATH" in
  Unix.putenv "PATH" "";
  Fun.protect
    ~finally:(fun () ->
      match saved with Some p -> Unix.putenv "PATH" p | None -> ())
    (fun () ->
      let w = List.hd Workloads.all in
      match Codegen.Compile.build (Workloads.program w) with
      | Error (Codegen.Compile.Toolchain _) -> ()
      | Error e ->
        Alcotest.failf "expected Toolchain, got %s"
          (Codegen.Compile.error_to_string e)
      | Ok _ -> Alcotest.fail "compiled without a PATH")

let generate_source () =
  (* -o path: emission alone needs no toolchain and marks its output *)
  let w = List.hd Workloads.all in
  match Codegen.Compile.generate (Workloads.program w) with
  | Error e -> Alcotest.failf "generate: %s" (Codegen.Compile.error_to_string e)
  | Ok src ->
    check_bool "generated source is non-trivial" true (String.length src > 500);
    check_bool "registers an entry" true
      (let needle = "Codegen.Registry.register" in
       let n = String.length needle in
       let rec find i =
         i + n <= String.length src
         && (String.sub src i n = needle || find (i + 1))
       in
       find 0)

let stress_named_scales () =
  check_bool "smoke parses" true
    (Result.is_ok (Workloads.stress "stress:deep@smoke"));
  check_bool "tiny parses" true
    (Result.is_ok (Workloads.stress "stress:wide@tiny"));
  check_bool "full parses" true
    (Result.is_ok (Workloads.stress "stress:many-units@full"));
  check_bool "junk scale still rejected" true
    (Result.is_error (Workloads.stress "stress:deep@huge"));
  (* named sizes are sugar for numeric scales: same generated program *)
  check_bool "smoke = 0.15" true
    (Workloads.stress "stress:deep@smoke" = Workloads.stress "stress:deep@0.15")

let case name f = Alcotest.test_case name `Quick f

let suite =
  [
    case "stress named scales parse" stress_named_scales;
    case "unsupported program is a clean error" unsupported_is_error;
    case "missing toolchain is a clean error" missing_toolchain_is_error;
    case "generated source is inspectable" generate_source;
  ]
  @
  if not toolchain_available then begin
    Printf.printf "  [codegen] no native toolchain; compile cases skipped\n%!";
    []
  end
  else
    [
      case "every workload: compiled = interpreted" all_workloads;
      case "stress program at smoke scale" stress_smoke;
      case "oracle corpus survives codegen" corpus_through_codegen;
    ]
