(* Marking-layer unit tests: defaults, keys, stability. *)

open Dependence
open Util

let dep ?(kind = Ddg.Flow) ?(exact = false) ?(level = Some 1) ~src ~dst var =
  {
    Ddg.dep_id = 0;
    kind;
    var;
    src;
    dst;
    src_ref = None;
    dst_ref = None;
    level;
    carrier = None;
    dirs = [];
    dist = [||];
    exact;
    test = "t";
    is_scalar = false;
    prov = Explain.Provenance.simple ~tier:"t" Explain.Provenance.Assumed;
  }

let suite =
  [
    case "defaults follow exactness" (fun () ->
        let m = Ped.Marking.empty in
        check_bool "pending" true
          (Ped.Marking.status_of m (dep ~src:1 ~dst:2 "A") = Ped.Marking.Pending);
        check_bool "proven" true
          (Ped.Marking.status_of m (dep ~exact:true ~src:1 ~dst:2 "A")
          = Ped.Marking.Proven));
    case "mark and clear" (fun () ->
        let d = dep ~src:1 ~dst:2 "A" in
        let m = Ped.Marking.mark Ped.Marking.empty d Ped.Marking.Rejected in
        check_bool "rejected" true
          (Ped.Marking.status_of m d = Ped.Marking.Rejected);
        check_int "one mark" 1 (Ped.Marking.count m);
        let m = Ped.Marking.mark m d Ped.Marking.Pending in
        check_bool "cleared" true
          (Ped.Marking.status_of m d = Ped.Marking.Pending);
        check_int "no marks" 0 (Ped.Marking.count m));
    case "keys distinguish kind, var, endpoints and level" (fun () ->
        let base = dep ~src:1 ~dst:2 "A" in
        let m = Ped.Marking.mark Ped.Marking.empty base Ped.Marking.Accepted in
        let different =
          [
            dep ~src:1 ~dst:2 "B";
            dep ~src:1 ~dst:3 "A";
            dep ~src:0 ~dst:2 "A";
            dep ~kind:Ddg.Anti ~src:1 ~dst:2 "A";
            dep ~level:None ~src:1 ~dst:2 "A";
          ]
        in
        List.iter
          (fun d ->
            check_bool "unaffected" true
              (Ped.Marking.status_of m d = Ped.Marking.Pending))
          different);
    case "marks survive a new graph with the same signature" (fun () ->
        (* the same logical dependence with a fresh dep_id keeps the
           user's mark — what reanalysis relies on *)
        let d1 = { (dep ~src:4 ~dst:5 "C") with Ddg.dep_id = 17 } in
        let m = Ped.Marking.mark Ped.Marking.empty d1 Ped.Marking.Rejected in
        let d2 = { d1 with Ddg.dep_id = 99 } in
        check_bool "still rejected" true
          (Ped.Marking.status_of m d2 = Ped.Marking.Rejected));
    case "rejected_ids scans a graph" (fun () ->
        let d1 = { (dep ~src:1 ~dst:2 "A") with Ddg.dep_id = 1 } in
        let d2 = { (dep ~src:2 ~dst:3 "B") with Ddg.dep_id = 2 } in
        let g =
          { Ddg.deps = [ d1; d2 ];
            nodeps = [];
            stats = { Ddg.pairs_tested = 0; disproved = []; proven = 0; pending = 2 } }
        in
        let m = Ped.Marking.mark Ped.Marking.empty d2 Ped.Marking.Rejected in
        check_bool "only d2" true (Ped.Marking.rejected_ids m g = [ 2 ]));
  ]
