(* The multicore runtime: domain pool, parallel execution vs the
   sequential simulator, the shadow-memory dependence validator, and
   machine-model calibration. *)

open Fortran_front
open Util

(* Auto-parallelize every unit of a workload (assertion script first)
   — the same pipeline ped --execute uses. *)
let parallelized (w : Workloads.t) =
  let sess =
    Ped.Session.load (Workloads.program w) ~unit_name:(Workloads.main_unit w)
  in
  List.iter
    (fun cmd -> ignore (Ped.Command.run sess cmd))
    w.Workloads.assertion_script;
  List.iter
    (fun (u : Ast.program_unit) ->
      match Ped.Session.focus sess u.Ast.uname with
      | Ok () ->
        List.iter
          (fun (l : Dependence.Loopnest.loop) ->
            if Ped.Session.is_parallelizable sess (loop_sid l) then
              ignore
                (Ped.Session.transform sess "parallelize"
                   (Transform.Catalog.On_loop (loop_sid l))))
          (Ped.Session.loops sess)
      | Error _ -> ())
    (Ped.Session.program sess).Ast.punits;
  (Ped.Session.program sess)

let seq_reference program = Sim.Interp.run ~honor_parallel:false program

let check_matches ?(exact = false) label program ~domains ~schedule =
  let seq = seq_reference program in
  let o = Runtime.Exec.run ~domains ~schedule program in
  if exact then begin
    check_bool (label ^ ": output identical") true
      (o.Runtime.Exec.output = seq.Sim.Interp.output);
    check_bool (label ^ ": store identical") true
      (o.Runtime.Exec.final_store = seq.Sim.Interp.final_store)
  end
  else begin
    (* printed values carry 6 significant digits; reduction
       reassociation across domains can flip the last digit *)
    check_bool (label ^ ": output matches") true
      (Sim.Interp.outputs_match ~tol:1e-4 o.Runtime.Exec.output
         seq.Sim.Interp.output);
    check_bool (label ^ ": store matches") true
      (Sim.Interp.stores_match o.Runtime.Exec.final_store
         seq.Sim.Interp.final_store)
  end

(* An elementwise kernel with no reductions: every float operation
   happens at the same iteration with the same operands regardless of
   scheduling, so even multi-domain runs must be bit-identical. *)
let elementwise_src =
  {|
      PROGRAM BITS
      INTEGER N
      PARAMETER (N = 40)
      REAL A(N), B(N)
      INTEGER I
      DO I = 1, N
        A(I) = FLOAT(I) * 0.3
        B(I) = FLOAT(N - I) * 0.7
      ENDDO
      DO I = 1, N
        A(I) = A(I) * 1.1 + B(I) * 0.9 + SQRT(FLOAT(I))
      ENDDO
      PRINT *, A(1), A(7), A(N)
      END
|}

let suite =
  [
    case "pool: chunk schedule runs every iteration exactly once" (fun () ->
        Runtime.Pool.with_pool 3 (fun pool ->
            let hits = Array.init 100 (fun _ -> Atomic.make 0) in
            Runtime.Pool.parallel_for pool ~schedule:Runtime.Pool.Chunk ~trip:100
              ~body:(fun ~worker k ->
                check_bool "worker in range" true (worker >= 0 && worker < 3);
                Atomic.incr hits.(k));
            Array.iteri
              (fun i h ->
                check_int (Printf.sprintf "iteration %d" i) 1 (Atomic.get h))
              hits));
    case "pool: self schedule runs every iteration exactly once" (fun () ->
        Runtime.Pool.with_pool 4 (fun pool ->
            let hits = Array.init 37 (fun _ -> Atomic.make 0) in
            Runtime.Pool.parallel_for pool ~schedule:Runtime.Pool.Self ~trip:37
              ~body:(fun ~worker:_ k -> Atomic.incr hits.(k));
            Array.iter (fun h -> check_int "once" 1 (Atomic.get h)) hits));
    case "pool: zero-trip loops are a no-op" (fun () ->
        Runtime.Pool.with_pool 2 (fun pool ->
            Runtime.Pool.parallel_for pool ~schedule:Runtime.Pool.Chunk ~trip:0
              ~body:(fun ~worker:_ _ -> Alcotest.fail "must not run")));
    case "pool: worker exception propagates, pool survives" (fun () ->
        Runtime.Pool.with_pool 2 (fun pool ->
            (try
               Runtime.Pool.parallel_for pool ~schedule:Runtime.Pool.Self ~trip:50
                 ~body:(fun ~worker:_ k -> if k = 25 then failwith "boom");
               Alcotest.fail "expected an exception"
             with Failure m -> check_string "message" "boom" m);
            (* the pool is still usable after a failed job *)
            let n = Atomic.make 0 in
            Runtime.Pool.parallel_for pool ~schedule:Runtime.Pool.Chunk ~trip:10
              ~body:(fun ~worker:_ _ -> Atomic.incr n);
            check_int "next job runs" 10 (Atomic.get n)));
    case "pool: map returns per-task results in task order" (fun () ->
        Runtime.Pool.with_pool 3 (fun pool ->
            let tasks = Array.init 23 (fun k () -> k * k) in
            let got = Runtime.Pool.map pool tasks in
            check_int "length" 23 (Array.length got);
            Array.iteri
              (fun k v -> check_int (Printf.sprintf "task %d" k) (k * k) v)
              got;
            check_int "empty" 0 (Array.length (Runtime.Pool.map pool [||]))));
    case "pool: map propagates a task exception, pool survives" (fun () ->
        Runtime.Pool.with_pool 2 (fun pool ->
            (try
               ignore
                 (Runtime.Pool.map pool
                    (Array.init 8 (fun k () ->
                         if k = 5 then failwith "task boom" else k)));
               Alcotest.fail "expected an exception"
             with Failure m -> check_string "message" "task boom" m);
            let got = Runtime.Pool.map pool (Array.init 4 (fun k () -> k)) in
            check_int "next map runs" 4 (Array.length got)));
    case "pool: parallel_for schedules every iteration" (fun () ->
        Runtime.Pool.with_pool 2 (fun pool ->
            let n = Atomic.make 0 in
            Runtime.Pool.parallel_for pool ~schedule:Runtime.Pool.Chunk
              ~trip:10
              ~body:(fun ~worker:_ _ -> Atomic.incr n);
            check_int "all iterations" 10 (Atomic.get n)));
    case "schedule names parse" (fun () ->
        check_bool "chunk" true
          (Runtime.Pool.schedule_of_string "chunk" = Some Runtime.Pool.Chunk);
        check_bool "self" true
          (Runtime.Pool.schedule_of_string "self" = Some Runtime.Pool.Self);
        check_bool "junk" true (Runtime.Pool.schedule_of_string "junk" = None));
    case "every workload matches the simulator on 2 and 4 domains" (fun () ->
        List.iter
          (fun (w : Workloads.t) ->
            let p = parallelized w in
            List.iter
              (fun (domains, schedule) ->
                check_matches
                  (Printf.sprintf "%s @%d/%s" w.Workloads.name domains
                     (Runtime.Pool.schedule_to_string schedule))
                  p ~domains ~schedule)
              [
                (2, Runtime.Pool.Chunk);
                (4, Runtime.Pool.Chunk);
                (4, Runtime.Pool.Self);
              ])
          Workloads.all);
    case "one domain is bit-identical on every workload" (fun () ->
        List.iter
          (fun (w : Workloads.t) ->
            check_matches ~exact:true w.Workloads.name (parallelized w)
              ~domains:1 ~schedule:Runtime.Pool.Chunk)
          Workloads.all);
    case "elementwise kernel is bit-identical even on many domains" (fun () ->
        let program =
          Runtime.Exec.force_parallel
            (Parser.parse_program ~file:"bits.f" elementwise_src)
        in
        List.iter
          (fun (domains, schedule) ->
            check_matches ~exact:true
              (Printf.sprintf "bits @%d" domains)
              program ~domains ~schedule)
          [
            (2, Runtime.Pool.Chunk);
            (4, Runtime.Pool.Chunk);
            (4, Runtime.Pool.Self);
          ]);
    case "validator flags the forced-parallel tridiagonal solver" (fun () ->
        let w = Option.get (Workloads.by_name "tridiag") in
        let program = Runtime.Exec.force_parallel (Workloads.program w) in
        let o = Runtime.Exec.run ~validate:true program in
        let flows =
          List.filter
            (fun (c : Runtime.Exec.conflict) ->
              c.Runtime.Exec.c_kind = Runtime.Exec.Flow)
            o.Runtime.Exec.conflicts
        in
        check_bool "flow conflicts found" true (flows <> []);
        check_bool "back-substitution recurrence on X" true
          (List.exists
             (fun (c : Runtime.Exec.conflict) -> c.Runtime.Exec.c_var = "X")
             flows);
        List.iter
          (fun (c : Runtime.Exec.conflict) ->
            check_bool "distinct iterations" true
              (c.Runtime.Exec.c_iter_a <> c.Runtime.Exec.c_iter_b))
          o.Runtime.Exec.conflicts;
        (* validation changes no semantics: output still sequential *)
        let seq = seq_reference program in
        check_bool "validated run output" true
          (o.Runtime.Exec.output = seq.Sim.Interp.output));
    case "validator flags the forced-parallel linear recurrence" (fun () ->
        let w = Option.get (Workloads.by_name "recur") in
        let program = Runtime.Exec.force_parallel (Workloads.program w) in
        let o = Runtime.Exec.run ~validate:true program in
        check_bool "has flow conflict" true
          (List.exists
             (fun (c : Runtime.Exec.conflict) ->
               c.Runtime.Exec.c_kind = Runtime.Exec.Flow)
             o.Runtime.Exec.conflicts));
    case "validator is silent on every analysis-parallelized workload"
      (fun () ->
        List.iter
          (fun (w : Workloads.t) ->
            let o = Runtime.Exec.run ~validate:true (parallelized w) in
            check_int
              (w.Workloads.name ^ ": no conflicts")
              0
              (List.length o.Runtime.Exec.conflicts))
          Workloads.all);
    case "calibrate recovers synthetic weights" (fun () ->
        (* times generated from known weights over varied count mixes *)
        let w = [| 1.5; 3.0; 12.0; 2.5; 30.0 |] in
        let mk flops mems intrinsics loop_iters calls =
          let c =
            {
              Perf.Machine.flops;
              mems;
              intrinsics;
              loop_iters;
              calls;
            }
          in
          let time =
            (w.(0) *. flops) +. (w.(1) *. mems) +. (w.(2) *. intrinsics)
            +. (w.(3) *. loop_iters) +. (w.(4) *. calls)
          in
          (c, time)
        in
        let samples =
          [
            mk 1000. 300. 10. 100. 5.;
            mk 200. 900. 0. 50. 2.;
            mk 50. 60. 200. 10. 0.;
            mk 800. 100. 30. 400. 40.;
            mk 10. 10. 5. 5. 60.;
            mk 3000. 2500. 120. 700. 11.;
          ]
        in
        let m = Perf.Machine.calibrate samples Perf.Machine.default in
        let close a b = Float.abs (a -. b) /. b < 0.05 in
        check_bool "flop normalized" true (m.Perf.Machine.flop_cost = 1.0);
        check_bool "mem ratio" true
          (close m.Perf.Machine.mem_cost (w.(1) /. w.(0)));
        check_bool "intrinsic ratio" true
          (close m.Perf.Machine.intrinsic_cost (w.(2) /. w.(0)));
        check_bool "loop ratio" true
          (close m.Perf.Machine.loop_overhead (w.(3) /. w.(0)));
        check_bool "call ratio" true
          (close m.Perf.Machine.call_overhead (w.(4) /. w.(0)));
        check_bool "renamed" true
          (contains ~needle:"calibrated" m.Perf.Machine.name));
    case "calibrate on real runs produces positive weights" (fun () ->
        let progs =
          List.filter_map
            (fun n -> Option.map Workloads.program (Workloads.by_name n))
            [ "daxpy"; "sumred" ]
        in
        let m = Runtime.Calibrate.fit ~repeat:1 progs in
        check_bool "flop is the unit" true (m.Perf.Machine.flop_cost = 1.0);
        check_bool "mem positive" true (m.Perf.Machine.mem_cost > 0.0);
        check_bool "loop positive" true (m.Perf.Machine.loop_overhead > 0.0));
    case "runtime op counts are consistent with the program" (fun () ->
        let program = Parser.parse_program ~file:"bits.f" elementwise_src in
        let o = Runtime.Exec.run ~domains:1 program in
        (* two N-trip loops, N = 40 *)
        check_bool "iterations" true
          (o.Runtime.Exec.ops.Perf.Machine.loop_iters = 80.0);
        check_bool "intrinsics counted" true
          (o.Runtime.Exec.ops.Perf.Machine.intrinsics >= 120.0);
        check_bool "flops counted" true
          (o.Runtime.Exec.ops.Perf.Machine.flops > 0.0));
    case "simulator order: reverse exposes an order-dependent loop" (fun () ->
        let src =
          {|
      PROGRAM ORD
      REAL A(10), S
      INTEGER I
      DO I = 1, 10
        A(I) = FLOAT(I)
      ENDDO
      PARALLEL DO I = 1, 10
        S = A(I)
      ENDDO
      PRINT *, S
      END
|}
        in
        let fwd = run_output ~honor_parallel:true src in
        let rev =
          run_output ~honor_parallel:true ~par_order:Sim.Interp.Reverse src
        in
        check_bool "forward keeps the last iteration" true (fwd = [ "10" ]);
        check_bool "reverse keeps the first iteration" true (rev = [ "1" ]));
    case "simulate command accepts an iteration order" (fun () ->
        let w = Option.get (Workloads.by_name "daxpy") in
        let sess =
          Ped.Session.load (Workloads.program w)
            ~unit_name:(Workloads.main_unit w)
        in
        let out = Ped.Command.run sess "simulate 4 reverse" in
        check_bool "order noted" true
          (contains ~needle:"reverse iteration order" out);
        check_bool "order persists in the session" true
          ((Ped.Session.sim_order sess) = Sim.Interp.Reverse);
        let bad = Ped.Command.run sess "simulate 4 sideways" in
        check_bool "bad order rejected" true (contains ~needle:"error" bad));
  ]
