(* Decision provenance: every dependence decision must be explainable
   — on the edge, in the no-dependence table, through the diagnosis's
   structured blocking reasons, and out the [why]/[explain] commands. *)

open Util
open Fortran_front

(* A carried flow dependence (siv-proven), next to a pair every exact
   test disproves. *)
let src_carried =
  "      PROGRAM T\n\
  \      REAL A(100)\n\
  \      DO I = 2, 50\n\
  \        A(I) = A(I - 1) + 1.0\n\
  \      ENDDO\n\
  \      END\n"

let src_nodep =
  "      PROGRAM T\n\
  \      REAL B(100)\n\
  \      DO J = 1, 10\n\
  \        B(2 * J) = B(2 * J + 1)\n\
  \      ENDDO\n\
  \      END\n"

let src_symbolic =
  "      PROGRAM T\n\
  \      REAL A(100)\n\
  \      DO K = 1, M\n\
  \        A(K) = A(K + 1)\n\
  \      ENDDO\n\
  \      END\n"

let unit_env_ddg src =
  let u = parse_unit src in
  let env = Dependence.Depenv.make u in
  (u, env, Dependence.Ddg.compute env)

let assign_sids u =
  List.rev
    (Ast.fold_stmts
       (fun acc s ->
         match s.Ast.node with Ast.Assign _ -> s.Ast.sid :: acc | _ -> acc)
       [] u.Ast.body)

let suite =
  [
    case "a surviving edge records tier, outcome, pair and loops" (fun () ->
        let _, _, g = unit_env_ddg src_carried in
        let d =
          List.find
            (fun (d : Dependence.Ddg.dep) ->
              d.Dependence.Ddg.var = "A"
              && d.Dependence.Ddg.kind = Dependence.Ddg.Flow)
            g.Dependence.Ddg.deps
        in
        let p = d.Dependence.Ddg.prov in
        check_string "tier" "siv" p.Explain.Provenance.tier;
        check_bool "proven" true
          (p.Explain.Provenance.outcome = Explain.Provenance.Proven);
        check_bool "pair recorded" true (p.Explain.Provenance.pair <> None);
        check_bool "common loop" true (p.Explain.Provenance.loops = [| "I" |]));
    case "a disproved pair lands in the no-dependence table" (fun () ->
        let u, _, g = unit_env_ddg src_nodep in
        let sid = List.hd (assign_sids u) in
        match Dependence.Ddg.why_no g ~src:sid ~dst:sid with
        | [] -> Alcotest.fail "no disproof recorded for B(2J) vs B(2J+1)"
        | nd :: _ ->
          check_string "var" "B" nd.Dependence.Ddg.nd_var;
          let p = nd.Dependence.Ddg.nd_prov in
          check_bool "disproved" true
            (p.Explain.Provenance.outcome = Explain.Provenance.Disproved);
          check_bool "a real tier decided it" true
            (p.Explain.Provenance.tier <> "");
          check_bool "tested refs recorded" true
            (p.Explain.Provenance.pair <> None));
    case "an unknown trip count is a recorded assumption" (fun () ->
        let _, _, g = unit_env_ddg src_symbolic in
        let d =
          List.find
            (fun (d : Dependence.Ddg.dep) ->
              d.Dependence.Ddg.var = "A" && not d.Dependence.Ddg.is_scalar)
            g.Dependence.Ddg.deps
        in
        check_bool "Unknown_trip K consulted" true
          (List.mem
             (Explain.Provenance.Unknown_trip "K")
             d.Dependence.Ddg.prov.Explain.Provenance.assumptions));
    case "chain rendering spells out the decision" (fun () ->
        let _, _, g = unit_env_ddg src_carried in
        let d = List.hd g.Dependence.Ddg.deps in
        let s =
          Explain.Chain.render_to_string ~header:"hdr"
            d.Dependence.Ddg.prov
        in
        check_bool "header first" true (contains ~needle:"hdr" s);
        check_bool "names the tier" true (contains ~needle:"decided by:" s));
    case "why <id> prints the provenance chain" (fun () ->
        let sess =
          Ped.Session.load_source ~file:"t.f" src_carried ~unit_name:None
        in
        let d = List.hd (Ped.Session.ddg sess).Dependence.Ddg.deps in
        let out =
          Ped.Command.run sess
            (Printf.sprintf "why %d" d.Dependence.Ddg.dep_id)
        in
        check_bool "decision line" true (contains ~needle:"decided by:" out);
        check_bool "names the edge" true
          (contains ~needle:(Printf.sprintf "#%d" d.Dependence.Ddg.dep_id) out);
        let missing = Ped.Command.run sess "why 9999" in
        check_bool "unknown id errors" true
          (contains ~needle:"error" missing));
    case "why src:dst explains the absence of a dependence" (fun () ->
        let sess =
          Ped.Session.load_source ~file:"t.f" src_nodep ~unit_name:None
        in
        let g = Ped.Session.ddg sess in
        let nd = List.hd g.Dependence.Ddg.nodeps in
        let out =
          Ped.Command.run sess
            (Printf.sprintf "why s%d:s%d" nd.Dependence.Ddg.nd_src
               nd.Dependence.Ddg.nd_dst)
        in
        check_bool "absence named" true
          (contains ~needle:"no dependence on B" out);
        check_bool "disproof chain" true (contains ~needle:"disproved" out));
    case "diagnosis blocking names edges present in the graph" (fun () ->
        let sess =
          Ped.Session.load_source ~file:"t.f" src_carried ~unit_name:None
        in
        let lp = List.hd (Ped.Session.loops sess) in
        let sid = lp.Dependence.Loopnest.lstmt.Ast.sid in
        (match
           Ped.Session.explain sess "parallelize"
             (Transform.Catalog.On_loop sid)
         with
        | Error e -> Alcotest.failf "explain failed: %s" e
        | Ok d ->
          let ids = Transform.Diagnosis.blocking d in
          check_bool "blocked" true (ids <> []);
          List.iter
            (fun id ->
              check_bool
                (Printf.sprintf "blocking #%d resolves in the graph" id)
                true
                (Dependence.Ddg.find_dep (Ped.Session.ddg sess) id <> None))
            ids));
    case "explain command pairs the refusal with provenance" (fun () ->
        let sess =
          Ped.Session.load_source ~file:"t.f" src_carried ~unit_name:None
        in
        let out = Ped.Command.run sess "explain parallelize l1" in
        check_bool "lists the blockers" true
          (contains ~needle:"blocking dependences:" out);
        check_bool "walks to provenance" true
          (contains ~needle:"decided by:" out));
    case "diagnosis notes print oldest first" (fun () ->
        let d =
          Transform.Diagnosis.make ~notes:[ "first finding"; "second finding" ]
            ()
        in
        check_bool "order preserved" true
          (Transform.Diagnosis.notes d = [ "first finding"; "second finding" ]);
        let s = Transform.Diagnosis.to_string d in
        let idx needle =
          let rec go i =
            if i + String.length needle > String.length s then -1
            else if String.sub s i (String.length needle) = needle then i
            else go (i + 1)
          in
          go 0
        in
        check_bool "chronological rendering" true
          (idx "first finding" >= 0 && idx "first finding" < idx "second finding"));
    case "precision accumulator tallies per tier" (fun () ->
        let p = Explain.Precision.create () in
        Explain.Precision.add p ~tier:"siv" Explain.Provenance.Proven 2;
        Explain.Precision.add p ~tier:"banerjee" Explain.Provenance.Assumed 1;
        Explain.Precision.add p ~tier:"gcd" Explain.Provenance.Disproved 5;
        Explain.Precision.add_spurious p ~tier:"banerjee" 1;
        check_int "edges" 3 (Explain.Precision.total_edges p);
        check_bool "assumed fraction" true
          (abs_float (Explain.Precision.assumed_fraction p -. (1. /. 3.))
          < 1e-9);
        check_bool "rows sorted by tier" true
          (List.map (fun (t, _, _, _, _) -> t) (Explain.Precision.rows p)
          = [ "banerjee"; "gcd"; "siv" ]);
        let j = Explain.Precision.to_json p in
        check_bool "json has the fraction" true
          (contains ~needle:"assumed_fraction" j);
        check_bool "json has the tier map" true (contains ~needle:"banerjee" j));
    case "prediction table: first dependence wins a triple" (fun () ->
        let t = Explain.Tag.create () in
        Explain.Tag.add t ~loop:3 ~var:"A" ~kind:"flow" ~dep:5;
        Explain.Tag.add t ~loop:3 ~var:"A" ~kind:"flow" ~dep:9;
        check_bool "first wins" true
          (Explain.Tag.find t ~loop:3 ~var:"A" ~kind:"flow" = Some 5);
        check_bool "other kinds miss" true
          (Explain.Tag.find t ~loop:3 ~var:"A" ~kind:"anti" = None));
    case "validator conflicts carry the predictor's verdict" (fun () ->
        let p = Runtime.Exec.force_parallel (parse src_carried) in
        let predicted =
          Runtime.Exec.run ~validate:true
            ~predict:(fun _ _ _ -> Some 7)
            p
        in
        check_bool "conflicts observed" true
          (predicted.Runtime.Exec.conflicts <> []);
        List.iter
          (fun (c : Runtime.Exec.conflict) ->
            check_bool "tagged predicted" true
              (c.Runtime.Exec.c_pred = Runtime.Exec.Predicted 7);
            check_bool "rendered with the static id" true
              (contains ~needle:"predicted by static dep #7"
                 (Runtime.Exec.conflict_to_string c)))
          predicted.Runtime.Exec.conflicts;
        let unpredicted =
          Runtime.Exec.run ~validate:true ~predict:(fun _ _ _ -> None) p
        in
        List.iter
          (fun (c : Runtime.Exec.conflict) ->
            check_bool "tagged unpredicted" true
              (c.Runtime.Exec.c_pred = Runtime.Exec.Unpredicted);
            check_bool "flagged in rendering" true
              (contains ~needle:"UNPREDICTED"
                 (Runtime.Exec.conflict_to_string c)))
          unpredicted.Runtime.Exec.conflicts;
        let untracked = Runtime.Exec.run ~validate:true p in
        List.iter
          (fun (c : Runtime.Exec.conflict) ->
            check_bool "untracked without a predictor" true
              (c.Runtime.Exec.c_pred = Runtime.Exec.Untracked);
            let s = Runtime.Exec.conflict_to_string c in
            check_bool "rendering unchanged" true
              ((not (contains ~needle:"predicted by static dep" s))
              && not (contains ~needle:"UNPREDICTED" s)))
          untracked.Runtime.Exec.conflicts);
  ]
