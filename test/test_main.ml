let () =
  Alcotest.run "parascope"
    [
      ("lexer", Test_lexer.suite);
      ("parser", Test_parser.suite);
      ("pretty", Test_pretty.suite);
      ("ast", Test_ast.suite);
      ("symbol", Test_symbol.suite);
      ("cfg", Test_cfg.suite);
      ("dataflow", Test_dataflow.suite);
      ("varclass", Test_varclass.suite);
      ("symbolic", Test_symbolic.suite);
      ("loopnest", Test_loopnest.suite);
      ("dtest", Test_dtest.suite);
      ("ddg", Test_ddg.suite);
      ("interproc", Test_interproc.suite);
      ("sections", Test_sections.suite);
      ("transform", Test_transform.suite);
      ("perf", Test_perf.suite);
      ("value", Test_value.suite);
      ("sim", Test_sim.suite);
      ("marking", Test_marking.suite);
      ("filter", Test_filter.suite);
      ("ped", Test_ped.suite);
      ("command", Test_command.suite);
      ("workloads", Test_workloads.suite);
      ("runtime", Test_runtime.suite);
      ("extensions", Test_extensions.suite);
      ("integration", Test_integration.suite);
      ("property", Test_property.suite);
      ("engine", Test_engine.suite);
      ("telemetry", Test_telemetry.suite);
      ("oracle", Test_oracle.suite);
      ("explain", Test_explain.suite);
      ("server", Test_server.suite);
      ("parscale", Test_parscale.suite);
      ("stress", Test_stress.suite);
    ]
