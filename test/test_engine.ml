(* Engine cache correctness and hit/miss accounting.

   The load-bearing property: whatever mix of edits, undos, redos,
   refocuses and assertions a session has absorbed, the engine-served
   dependence graph is structurally identical to a from-scratch
   analysis of the session's current program and assertions.  The
   graph (deps + statistics) is pure data, so polymorphic equality is
   the oracle; environments hold closures and are compared only
   through the graphs they produce. *)

open Fortran_front
open Dependence
open Util

let load ?(caching = true) name =
  let w = Option.get (Workloads.by_name name) in
  (w, Ped.Session.load ~caching (Workloads.program w)
        ~unit_name:(Workloads.main_unit w))

let focus_unit_of sess =
  let name = Ped.Session.unit_name sess in
  List.find
    (fun (u : Ast.program_unit) -> String.equal u.Ast.uname name)
    (Ped.Session.program sess).Ast.punits

(* From-scratch graph of the session's current program + assertions. *)
let scratch_ddg sess =
  let u = focus_unit_of sess in
  let env =
    match Ped.Session.interproc sess with
    | Some _ ->
      let summary = Interproc.Summary.analyze (Ped.Session.program sess) in
      Interproc.Summary.env_for ~config:(Ped.Session.config sess)
        ~asserts:(Ped.Session.assertions sess) summary u
    | None ->
      Depenv.make ~config:(Ped.Session.config sess)
        ~asserts:(Ped.Session.assertions sess) u
  in
  Ddg.compute env

let check_scratch what sess =
  check_bool (what ^ ": engine ddg = from-scratch ddg") true
    (Ped.Session.ddg sess = scratch_ddg sess)

let first_assign sess =
  Ast.fold_stmts
    (fun acc (s : Ast.stmt) ->
      match (acc, s.Ast.node) with
      | None, Ast.Assign _ -> Some s
      | _ -> acc)
    None (focus_unit_of sess).Ast.body

let ok_exn what = function Ok _ -> () | Error e -> failwith (what ^ ": " ^ e)

(* Re-submit a statement's own pretty-printed text: semantically the
   identity edit, but it re-parses to fresh statement ids — the
   canonical "user retyped the line" invalidation. *)
let identity_edit sess =
  match first_assign sess with
  | None -> failwith "workload has no assignment statement"
  | Some s ->
    ok_exn "edit"
      (Ped.Session.edit_stmt sess s.Ast.sid (Pretty.stmt_to_string s))

(* --- correctness across every workload ---------------------------- *)

let burst_case (w : Workloads.t) =
  case (w.Workloads.name ^ ": incremental = from-scratch through a burst")
    (fun () ->
      let _, sess = load w.Workloads.name in
      check_scratch "load" sess;
      List.iter
        (fun cmd -> ignore (Ped.Command.run sess cmd))
        w.Workloads.assertion_script;
      check_scratch "asserts" sess;
      identity_edit sess;
      check_scratch "edit" sess;
      ok_exn "undo" (Ped.Session.undo sess);
      check_scratch "undo" sess;
      ok_exn "redo" (Ped.Session.redo sess);
      check_scratch "redo" sess)

(* --- hit/miss accounting ------------------------------------------ *)

let delta (a : Engine.stats) (b : Engine.stats) f = f b - f a

let suite =
  List.map burst_case Workloads.all
  @ [
      case "stats: clean refresh is a pure cache hit" (fun () ->
          let _, sess = load "matmul" in
          let s0 = Ped.Session.engine_stats sess in
          Ped.Session.reanalyze sess;
          let s1 = Ped.Session.engine_stats sess in
          check_int "env hit" 1 (delta s0 s1 (fun s -> s.Engine.env_hits));
          check_int "no miss" 0 (delta s0 s1 (fun s -> s.Engine.env_misses));
          check_int "no tests" 0 (delta s0 s1 (fun s -> s.Engine.tests_run)));
      case "stats: edit invalidates but reuses untouched buckets" (fun () ->
          let _, sess = load "jacobi" in
          (* a fresh session's initial analysis = the full cost *)
          let full = (Ped.Session.engine_stats sess).Engine.tests_run in
          let s0 = Ped.Session.engine_stats sess in
          identity_edit sess;
          let s1 = Ped.Session.engine_stats sess in
          check_bool "invalidated" true
            (delta s0 s1 (fun s -> s.Engine.invalidations) >= 1);
          check_bool "recomputed" true
            (delta s0 s1 (fun s -> s.Engine.env_misses) >= 1);
          check_bool "some buckets reused" true
            (delta s0 s1 (fun s -> s.Engine.ddg_bucket_hits) >= 1);
          let retested = delta s0 s1 (fun s -> s.Engine.tests_run) in
          check_bool "retested strictly less than full" true
            (retested < full && retested >= 0));
      case "stats: undo and redo run no dependence tests" (fun () ->
          let _, sess = load "jacobi" in
          identity_edit sess;
          let s0 = Ped.Session.engine_stats sess in
          ok_exn "undo" (Ped.Session.undo sess);
          let s1 = Ped.Session.engine_stats sess in
          check_int "undo: no tests" 0
            (delta s0 s1 (fun s -> s.Engine.tests_run));
          check_bool "undo: summary from cache" true
            (delta s0 s1 (fun s -> s.Engine.summary_hits) >= 1);
          check_int "undo: no summary rebuild" 0
            (delta s0 s1 (fun s -> s.Engine.summary_builds));
          ok_exn "redo" (Ped.Session.redo sess);
          let s2 = Ped.Session.engine_stats sess in
          check_int "redo: no tests" 0
            (delta s1 s2 (fun s -> s.Engine.tests_run)));
      case "stats: refocus back to a cached unit is a hit" (fun () ->
          let _, sess = load "callnest" in
          ok_exn "focus" (Ped.Session.focus sess "ROWOP");
          let s0 = Ped.Session.engine_stats sess in
          ok_exn "refocus" (Ped.Session.focus sess "CALLNE");
          let s1 = Ped.Session.engine_stats sess in
          check_int "env hit" 1 (delta s0 s1 (fun s -> s.Engine.env_hits));
          check_int "no tests" 0 (delta s0 s1 (fun s -> s.Engine.tests_run));
          check_scratch "refocus" sess);
      case "stats: assertion change invalidates and stays correct" (fun () ->
          let _, sess = load "symbounds" in
          let s0 = Ped.Session.engine_stats sess in
          Ped.Session.assert_value sess "M" 64;
          let s1 = Ped.Session.engine_stats sess in
          check_bool "invalidated" true
            (delta s0 s1 (fun s -> s.Engine.invalidations) >= 1);
          check_scratch "assert" sess);
      case "baseline mode recomputes everything" (fun () ->
          let _, sess = load ~caching:false "matmul" in
          let full = (Ped.Session.engine_stats sess).Engine.tests_run in
          check_bool "initial analysis ran tests" true (full > 0);
          let s0 = Ped.Session.engine_stats sess in
          Ped.Session.reanalyze sess;
          let s1 = Ped.Session.engine_stats sess in
          check_int "refresh pays full price again" full
            (delta s0 s1 (fun s -> s.Engine.tests_run));
          check_scratch "baseline" sess);
    ]
