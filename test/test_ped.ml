open Dependence
open Util

let mk_session ?(name = "daxpy") () =
  let w = Option.get (Workloads.by_name name) in
  Ped.Session.load (Workloads.program w) ~unit_name:(Workloads.main_unit w)

let suite =
  [
    case "marking: proven vs pending defaults" (fun () ->
        let sess = mk_session ~name:"matmul" () in
        let deps =
          List.filter
            (fun (d : Ddg.dep) -> not d.Ddg.is_scalar && d.Ddg.kind <> Ddg.Control)
            (Ped.Session.ddg sess).Ddg.deps
        in
        check_bool "some proven" true
          (List.exists
             (fun d -> Ped.Marking.status_of (Ped.Session.marking sess) d = Ped.Marking.Proven)
             deps));
    case "marking: reject unblocks a loop and survives reanalysis" (fun () ->
        let sess = mk_session ~name:"tridiag" () in
        let blocked =
          List.find
            (fun (l : Loopnest.loop) ->
              not (Ped.Session.is_parallelizable sess (loop_sid l)))
            (Ped.Session.loops sess)
        in
        let sid = loop_sid blocked in
        let blockers = Ped.Session.blocking sess sid in
        List.iter
          (fun (d : Ddg.dep) ->
            match Ped.Session.mark_dep sess d.Ddg.dep_id Ped.Marking.Rejected with
            | Ok () -> ()
            | Error e -> Alcotest.fail e)
          blockers;
        check_bool "unblocked" true (Ped.Session.is_parallelizable sess sid);
        (* reanalysis keeps the marks (keyed on stable signatures) *)
        Ped.Session.reanalyze sess;
        check_bool "still unblocked" true (Ped.Session.is_parallelizable sess sid));
    case "filters: carried only and by variable" (fun () ->
        let sess = mk_session ~name:"matmul" () in
        let all = List.length (Ped.Session.visible_deps sess) in
        Ped.Session.set_dep_filter sess          { Ped.Filter.default_dep_filter with Ped.Filter.f_carried_only = true };
        let carried = List.length (Ped.Session.visible_deps sess) in
        check_bool "filter shrinks" true (carried < all);
        Ped.Session.set_dep_filter sess          { Ped.Filter.default_dep_filter with Ped.Filter.f_var = Some "C" };
        List.iter
          (fun (d : Ddg.dep) -> check_string "var" "C" d.Ddg.var)
          (Ped.Session.visible_deps sess));
    case "filters: control hidden by default" (fun () ->
        let sess = mk_session ~name:"tridiag" () in
        check_bool "no control" true
          (List.for_all
             (fun (d : Ddg.dep) -> d.Ddg.kind <> Ddg.Control)
             (Ped.Session.visible_deps sess)));
    case "source filter: loops only" (fun () ->
        let sess = mk_session () in
        Ped.Session.set_src_filter sess Ped.Filter.Src_loops;
        let pane = Ped.Pane.source_pane sess in
        List.iter
          (fun line ->
            if String.trim line <> "" then
              check_bool "is loop header" true
                (contains ~needle:"DO " line))
          (String.split_on_char '\n' pane));
    case "session: select and variable pane" (fun () ->
        let sess = mk_session ~name:"sumred" () in
        let red_loop =
          List.find
            (fun (l : Loopnest.loop) -> l.Loopnest.depth = 1)
            (List.rev (Ped.Session.loops sess))
        in
        (match Ped.Session.select sess (loop_sid red_loop) with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        let pane = Ped.Pane.variable_pane sess in
        check_bool "reduction shown" true (contains ~needle:"reduction(+)" pane));
    case "session: transform via catalog and undo" (fun () ->
        let sess = mk_session () in
        let l = List.hd (Ped.Session.loops sess) in
        let before = List.length (Ped.Session.loops sess) in
        (match
           Ped.Session.transform sess "strip"
             (Transform.Catalog.With_factor (loop_sid l, 4))
         with
        | Ok (_, true) -> ()
        | Ok (_, false) -> Alcotest.fail "strip not applied"
        | Error e -> Alcotest.fail e);
        check_int "one more loop" (before + 1) (List.length (Ped.Session.loops sess));
        (match Ped.Session.undo sess with Ok () -> () | Error e -> Alcotest.fail e);
        check_int "back to original" before (List.length (Ped.Session.loops sess)));
    case "session: unsafe transform refused unless forced" (fun () ->
        let sess = mk_session ~name:"tridiag" () in
        let blocked =
          List.find
            (fun (l : Loopnest.loop) ->
              not (Ped.Session.is_parallelizable sess (loop_sid l)))
            (Ped.Session.loops sess)
        in
        (match
           Ped.Session.transform sess "parallelize"
             (Transform.Catalog.On_loop (loop_sid blocked))
         with
        | Ok (_, applied) -> check_bool "refused" false applied
        | Error e -> Alcotest.fail e);
        match
          Ped.Session.transform ~force:true sess "parallelize"
            (Transform.Catalog.On_loop (loop_sid blocked))
        with
        | Ok (_, applied) -> check_bool "forced" true applied
        | Error e -> Alcotest.fail e);
    case "session: edit a statement and reanalyze" (fun () ->
        let sess =
          Ped.Session.load_source ~file:"t.f"
            "      PROGRAM P\n      REAL A(10)\n      DO I = 2, 10\n        A(I) = A(I-1)\n      ENDDO\n      END\n"
            ~unit_name:None
        in
        let l = List.hd (Ped.Session.loops sess) in
        check_bool "blocked" false (Ped.Session.is_parallelizable sess (loop_sid l));
        let body = Loopnest.body_stmts (Ped.Session.env sess).Depenv.nest (loop_sid l) in
        let stmt = List.hd body in
        (match
           Ped.Session.edit_stmt sess stmt.Fortran_front.Ast.sid "A(I) = FLOAT(I)"
         with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        let l = List.hd (Ped.Session.loops sess) in
        check_bool "now parallel" true (Ped.Session.is_parallelizable sess (loop_sid l)));
    case "session: edit with syntax error is reported" (fun () ->
        let sess = mk_session () in
        let l = List.hd (Ped.Session.loops sess) in
        let body = Loopnest.body_stmts (Ped.Session.env sess).Depenv.nest (loop_sid l) in
        match
          Ped.Session.edit_stmt sess (List.hd body).Fortran_front.Ast.sid "DO == broken"
        with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "expected a syntax error");
    case "session: user privatization discounts scalar deps" (fun () ->
        let sess =
          Ped.Session.load_source ~file:"t.f"
            "      PROGRAM P\n      REAL A(10), T\n      DO I = 1, 10\n        IF (I .GT. 5) THEN\n          T = 1.0\n        ENDIF\n        A(I) = T\n      ENDDO\n      END\n"
            ~unit_name:None
        in
        let l = List.hd (Ped.Session.loops sess) in
        check_bool "blocked" false (Ped.Session.is_parallelizable sess (loop_sid l));
        Ped.Session.privatize sess (loop_sid l) "T";
        check_bool "unblocked by user" true
          (Ped.Session.is_parallelizable sess (loop_sid l)));
    case "command: loops/select/deps/vars pipeline" (fun () ->
        let sess = mk_session ~name:"matmul" () in
        let out = Ped.Command.run sess "loops" in
        check_bool "has K" true (contains ~needle:"DO K" out);
        let k = loop_by_iv (Ped.Session.env sess) "K" in
        let out = Ped.Command.run sess (Printf.sprintf "select s%d" (loop_sid k)) in
        check_bool "selected" true (contains ~needle:"selected" out);
        let out = Ped.Command.run sess "deps carried" in
        check_bool "mentions C" true (contains ~needle:"C" out);
        let out = Ped.Command.run sess "vars" in
        check_bool "induction" true (contains ~needle:"induction" out));
    case "command: stats and estimate" (fun () ->
        let sess = mk_session ~name:"matmul" () in
        check_bool "stats" true
          (contains ~needle:"pairs tested" (Ped.Command.run sess "stats"));
        check_bool "estimate" true
          (contains ~needle:"predicted speedup" (Ped.Command.run sess "estimate 8")));
    case "command: unknown command reports error" (fun () ->
        let sess = mk_session () in
        check_bool "error" true
          (contains ~needle:"error" (Ped.Command.run sess "frobnicate")));
    case "command: mark with warning on proven dep" (fun () ->
        let sess = mk_session ~name:"matmul" () in
        let proven =
          List.find
            (fun (d : Ddg.dep) -> d.Ddg.exact && d.Ddg.kind <> Ddg.Control)
            (Ped.Session.ddg sess).Ddg.deps
        in
        let out =
          Ped.Command.run sess (Printf.sprintf "mark %d reject" proven.Ddg.dep_id)
        in
        check_bool "warns" true (contains ~needle:"warning" out));
    case "advisor: matmul suggests interchange" (fun () ->
        let sess = mk_session ~name:"matmul" () in
        let s = Ped.Advisor.advise sess in
        check_bool "interchange suggested" true
          (List.exists (fun (s : Ped.Advisor.suggestion) -> s.Ped.Advisor.action = "interchange") s));
    case "advisor: sor suggests skew" (fun () ->
        let sess = mk_session ~name:"sor" () in
        let s = Ped.Advisor.advise sess in
        check_bool "skew suggested" true
          (List.exists (fun (s : Ped.Advisor.suggestion) -> s.Ped.Advisor.action = "skew") s));
    case "advisor: recur suggests distribute" (fun () ->
        let sess = mk_session ~name:"recur" () in
        let s = Ped.Advisor.advise sess in
        check_bool "distribute suggested" true
          (List.exists (fun (s : Ped.Advisor.suggestion) -> s.Ped.Advisor.action = "distribute") s));
    case "advisor: symbolic blockers suggest assertions" (fun () ->
        let sess =
          let w = Option.get (Workloads.by_name "symbounds") in
          Ped.Session.load (Workloads.program w) ~unit_name:"SHIFT"
        in
        let s = Ped.Advisor.advise sess in
        check_bool "assert suggested" true
          (List.exists (fun (s : Ped.Advisor.suggestion) -> s.Ped.Advisor.action = "assert") s));
    case "assertion workflow unlocks symbounds" (fun () ->
        let w = Option.get (Workloads.by_name "symbounds") in
        let sess = Ped.Session.load (Workloads.program w) ~unit_name:"SHIFT" in
        check_int "blocked before" 0 (List.length (Ped.Session.parallelizable_loops sess));
        ignore (Ped.Command.run sess "assert M = 64");
        check_int "parallel after" 1 (List.length (Ped.Session.parallelizable_loops sess)));
    case "assertion workflow unlocks indexarr" (fun () ->
        let w = Option.get (Workloads.by_name "indexarr") in
        let sess = Ped.Session.load (Workloads.program w) ~unit_name:"IDXARR" in
        let before = List.length (Ped.Session.parallelizable_loops sess) in
        ignore (Ped.Command.run sess "assert perm IDX");
        let after = List.length (Ped.Session.parallelizable_loops sess) in
        check_bool "unlocked one more" true (after = before + 1));
    case "focus switches units" (fun () ->
        let w = Option.get (Workloads.by_name "callnest") in
        let sess = Ped.Session.load (Workloads.program w) ~unit_name:"CALLNE" in
        (match Ped.Session.focus sess "ROWOP" with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        check_bool "J loop visible" true
          (List.exists
             (fun (l : Loopnest.loop) -> l.Loopnest.header.Fortran_front.Ast.dvar = "J")
             (Ped.Session.loops sess)));
    case "full display renders all panes" (fun () ->
        let sess = mk_session ~name:"matmul" () in
        ignore (Ped.Command.run sess (Printf.sprintf "select s%d"
          (loop_sid (loop_by_iv (Ped.Session.env sess) "K"))));
        let d = Ped.Pane.full_display sess in
        check_bool "source" true (contains ~needle:"PROGRAM MATMUL" d);
        check_bool "loops" true (contains ~needle:"loops:" d);
        check_bool "deps" true (contains ~needle:"dependences" d);
        check_bool "vars" true (contains ~needle:"induction" d));
  ]
