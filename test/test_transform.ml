open Fortran_front
open Dependence
open Util

(* Apply a transformation to the (single-unit) program and check the
   interpreter produces identical output before and after. *)
let semantics_preserved ?(tol = 1e-6) (p : Ast.program)
    (p' : Ast.program) =
  let o1 = Sim.Interp.run ~honor_parallel:false p in
  let o2 = Sim.Interp.run ~honor_parallel:false p' in
  Sim.Interp.outputs_match ~tol o1.Sim.Interp.output o2.Sim.Interp.output

let single_unit_program u = { Ast.punits = [ u ] }

let check_preserved name env u' =
  check_bool (name ^ " preserves semantics") true
    (semantics_preserved
       (single_unit_program env.Depenv.punit)
       (single_unit_program u'))

let matmul_src =
  "      PROGRAM MM\n\
  \      INTEGER N\n\
  \      PARAMETER (N = 6)\n\
  \      REAL A(N,N), B(N,N), C(N,N)\n\
  \      INTEGER I, J, K\n\
  \      REAL S\n\
  \      DO I = 1, N\n\
  \        DO J = 1, N\n\
  \          A(I,J) = FLOAT(I+J)\n\
  \          B(I,J) = FLOAT(I-J)\n\
  \          C(I,J) = 0.0\n\
  \        ENDDO\n\
  \      ENDDO\n\
  \      DO K = 1, N\n\
  \        DO I = 1, N\n\
  \          DO J = 1, N\n\
  \            C(I,J) = C(I,J) + A(I,K) * B(K,J)\n\
  \          ENDDO\n\
  \        ENDDO\n\
  \      ENDDO\n\
  \      S = 0.0\n\
  \      DO I = 1, N\n\
  \        DO J = 1, N\n\
  \          S = S + C(I,J)\n\
  \        ENDDO\n\
  \      ENDDO\n\
  \      PRINT *, S\n\
  \      END\n"

let suite =
  [
    case "parallelize: safe on clean loop, flips the bit" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(10)\n      DO I = 1, 10\n        A(I) = FLOAT(I)\n      ENDDO\n      PRINT *, A(5)\n      END\n"
        in
        let ddg = ddg_of env in
        let sid = loop_sid (loop_by_iv env "I") in
        let d = Transform.Parallelize.diagnose env ddg sid in
        check_bool "safe" true d.Transform.Diagnosis.safe;
        let u' = Transform.Parallelize.apply env.Depenv.punit sid in
        (match Ast.find_stmt sid u'.Ast.body with
        | Some { Ast.node = Ast.Do ({ Ast.parallel = true; _ }, _); _ } -> ()
        | _ -> Alcotest.fail "bit not flipped");
        check_preserved "parallelize" env u');
    case "parallelize: unsafe on recurrence" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(10)\n      DO I = 2, 10\n        A(I) = A(I-1)\n      ENDDO\n      END\n"
        in
        let ddg = ddg_of env in
        let d = Transform.Parallelize.diagnose env ddg (loop_sid (loop_by_iv env "I")) in
        check_bool "unsafe" false d.Transform.Diagnosis.safe);
    case "parallelize honours rejected deps and user privates" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(10)\n      INTEGER M\n      DO I = 1, 10\n        A(I) = A(I+M)\n      ENDDO\n      END\n"
        in
        let ddg = ddg_of env in
        let sid = loop_sid (loop_by_iv env "I") in
        let blockers = Ddg.blocking env ddg sid in
        let ids = List.map (fun (d : Ddg.dep) -> d.Ddg.dep_id) blockers in
        let d = Transform.Parallelize.diagnose ~ignore_deps:ids env ddg sid in
        check_bool "safe after rejection" true d.Transform.Diagnosis.safe);
    case "interchange: matmul K/I swap is safe and preserves" (fun () ->
        let env = env_of matmul_src in
        let ddg = ddg_of env in
        let k = loop_sid (loop_by_iv env "K") in
        let d = Transform.Interchange.diagnose env ddg k in
        check_bool "safe" true d.Transform.Diagnosis.safe;
        check_bool "profitable" true d.Transform.Diagnosis.profitable;
        let u' = Transform.Interchange.apply env.Depenv.punit k in
        check_preserved "interchange" env u';
        (* after the swap the outer loop (same sid) is parallelizable *)
        let env' = Depenv.remake env u' in
        let ddg' = ddg_of env' in
        check_bool "outer now parallel" true (Ddg.parallelizable env' ddg' k));
    case "interchange: (<,>) dependence prevents" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(20,20)\n      DO I = 2, 10\n        DO J = 2, 10\n          A(I,J) = A(I-1,J+1)\n        ENDDO\n      ENDDO\n      END\n"
        in
        let ddg = ddg_of env in
        let d = Transform.Interchange.diagnose env ddg (loop_sid (loop_by_iv env "I")) in
        check_bool "unsafe" false d.Transform.Diagnosis.safe);
    case "interchange: triangular nests rejected" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(10,10)\n      DO I = 1, 10\n        DO J = I, 10\n          A(I,J) = 0.0\n        ENDDO\n      ENDDO\n      END\n"
        in
        let ddg = ddg_of env in
        let d = Transform.Interchange.diagnose env ddg (loop_sid (loop_by_iv env "I")) in
        check_bool "inapplicable" false d.Transform.Diagnosis.applicable);
    case "distribute: recurrence separates and preserves" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL X(20), Y(20)\n      X(1) = 1.0\n      DO I = 2, 20\n        X(I) = X(I-1) * 0.9\n        Y(I) = X(I) + 1.0\n      ENDDO\n      PRINT *, X(20), Y(20)\n      END\n"
        in
        let ddg = ddg_of env in
        let sid = loop_sid (loop_by_iv env "I") in
        let parts = Transform.Distribute.partition env ddg sid in
        check_int "two components" 2 (List.length parts);
        let u' = Transform.Distribute.apply env ddg sid in
        check_preserved "distribute" env u';
        let env' = Depenv.remake env u' in
        let ddg' = ddg_of env' in
        let pars =
          List.filter
            (fun (l : Loopnest.loop) -> Ddg.parallelizable env' ddg' (loop_sid l))
            (Loopnest.loops env'.Depenv.nest)
        in
        check_int "one of two parallel" 1 (List.length pars));
    case "distribute keeps coupled statements together" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL X(20), T\n      DO I = 1, 20\n        T = FLOAT(I)\n        X(I) = T * 2.0\n      ENDDO\n      PRINT *, X(3)\n      END\n"
        in
        let ddg = ddg_of env in
        let sid = loop_sid (loop_by_iv env "I") in
        let parts = Transform.Distribute.partition env ddg sid in
        check_int "one component" 1 (List.length parts));
    case "fuse: conformable adjacent loops" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(10), B(10)\n      DO I = 1, 10\n        A(I) = FLOAT(I)\n      ENDDO\n      DO J = 1, 10\n        B(J) = A(J) * 2.0\n      ENDDO\n      PRINT *, B(7)\n      END\n"
        in
        let ddg = ddg_of env in
        let l1 = loop_sid (loop_by_iv env "I") in
        let l2 = loop_sid (loop_by_iv env "J") in
        let d = Transform.Fuse.diagnose env ddg l1 l2 in
        check_bool "safe" true d.Transform.Diagnosis.safe;
        let u' = Transform.Fuse.apply env.Depenv.punit l1 l2 in
        check_preserved "fuse" env u';
        let env' = Depenv.remake env u' in
        check_int "one loop left" 1 (List.length (Loopnest.loops env'.Depenv.nest)));
    case "fuse: backward dependence prevents" (fun () ->
        (* the first loop reads A(I-1), which the second loop writes:
           fused, iteration i would read the NEW A(i-1) *)
        let env =
          env_of
            "      PROGRAM P\n      REAL A(12), B(12)\n      DO I = 2, 10\n        B(I) = A(I-1)\n      ENDDO\n      DO J = 2, 10\n        A(J) = FLOAT(J)\n      ENDDO\n      PRINT *, B(2)\n      END\n"
        in
        let ddg = ddg_of env in
        let l1 = loop_sid (loop_by_iv env "I") in
        let l2 = loop_sid (loop_by_iv env "J") in
        let d = Transform.Fuse.diagnose env ddg l1 l2 in
        check_bool "unsafe" false d.Transform.Diagnosis.safe);
    case "fuse: nonconformable bounds inapplicable" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(10), B(12)\n      DO I = 1, 10\n        A(I) = 0.0\n      ENDDO\n      DO J = 1, 12\n        B(J) = 0.0\n      ENDDO\n      END\n"
        in
        let ddg = ddg_of env in
        let d =
          Transform.Fuse.diagnose env ddg
            (loop_sid (loop_by_iv env "I"))
            (loop_sid (loop_by_iv env "J"))
        in
        check_bool "inapplicable" false d.Transform.Diagnosis.applicable);
    case "reverse: safe only without carried deps, preserves" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(10)\n      DO I = 1, 10\n        A(I) = FLOAT(I)\n      ENDDO\n      PRINT *, A(4)\n      END\n"
        in
        let ddg = ddg_of env in
        let sid = loop_sid (loop_by_iv env "I") in
        let d = Transform.Reverse.diagnose env ddg sid in
        check_bool "safe" true d.Transform.Diagnosis.safe;
        check_preserved "reverse" env (Transform.Reverse.apply env sid));
    case "reverse: carried dep makes it unsafe" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(10)\n      DO I = 2, 10\n        A(I) = A(I-1)\n      ENDDO\n      END\n"
        in
        let ddg = ddg_of env in
        let d = Transform.Reverse.diagnose env ddg (loop_sid (loop_by_iv env "I")) in
        check_bool "unsafe" false d.Transform.Diagnosis.safe);
    case "skew + interchange wavefront preserves" (fun () ->
        let w = Option.get (Workloads.by_name "sor") in
        let u = List.hd (Workloads.program w).Ast.punits in
        let env = Depenv.make u in
        let i = loop_sid (loop_by_iv env "I") in
        (* the compute I loop is the one at depth 2 *)
        let i =
          match
            List.find_opt
              (fun (l : Loopnest.loop) ->
                l.Loopnest.header.Ast.dvar = "I" && l.Loopnest.depth = 2)
              (Loopnest.loops env.Depenv.nest)
          with
          | Some l -> loop_sid l
          | None -> i
        in
        let ddg = ddg_of env in
        let d = Transform.Skew.diagnose env ddg i ~factor:1 in
        check_bool "profitable" true d.Transform.Diagnosis.profitable;
        let u1 = Transform.Skew.apply env.Depenv.punit i ~factor:1 in
        check_preserved "skew" env u1;
        let env1 = Depenv.remake env u1 in
        let u2 = Transform.Interchange.apply u1 i in
        check_preserved "skew+interchange" env u2;
        ignore env1);
    case "strip mining preserves" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(17)\n      S = 0.0\n      DO I = 1, 17\n        A(I) = FLOAT(I)\n        S = S + A(I)\n      ENDDO\n      PRINT *, S\n      END\n"
        in
        let ddg = ddg_of env in
        let sid = loop_sid (loop_by_iv env "I") in
        let d = Transform.Strip_mine.diagnose env ddg sid ~block:4 in
        check_bool "safe" true d.Transform.Diagnosis.safe;
        check_preserved "strip" env (Transform.Strip_mine.apply env sid ~block:4));
    case "unroll: divisible trip preserves" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(12)\n      DO I = 1, 12\n        A(I) = FLOAT(2*I)\n      ENDDO\n      PRINT *, A(12)\n      END\n"
        in
        let ddg = ddg_of env in
        let sid = loop_sid (loop_by_iv env "I") in
        let d = Transform.Unroll.diagnose env ddg sid ~factor:3 in
        check_bool "ok" true (Transform.Diagnosis.ok d);
        check_preserved "unroll" env (Transform.Unroll.apply env sid ~factor:3));
    case "unroll: indivisible trip inapplicable" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(10)\n      DO I = 1, 10\n        A(I) = 0.0\n      ENDDO\n      END\n"
        in
        let ddg = ddg_of env in
        let d = Transform.Unroll.diagnose env ddg (loop_sid (loop_by_iv env "I")) ~factor:3 in
        check_bool "inapplicable" false d.Transform.Diagnosis.applicable);
    case "scalar expansion preserves and unblocks" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(10), B(10), T\n      DO I = 1, 10\n        T = FLOAT(I) * 2.0\n        A(I) = T + 1.0\n        B(I) = T - 1.0\n      ENDDO\n      PRINT *, A(5), B(5)\n      END\n"
        in
        let ddg = ddg_of env in
        let sid = loop_sid (loop_by_iv env "I") in
        let d = Transform.Scalar_expand.diagnose env ddg sid ~var:"T" in
        check_bool "ok" true (Transform.Diagnosis.ok d);
        let u' = Transform.Scalar_expand.apply env sid ~var:"T" in
        check_preserved "expand" env u');
    case "scalar expansion rejects non-private scalars" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(10), T\n      T = 1.0\n      DO I = 1, 10\n        A(I) = T\n        T = T * 0.5\n      ENDDO\n      END\n"
        in
        let ddg = ddg_of env in
        let d =
          Transform.Scalar_expand.diagnose env ddg (loop_sid (loop_by_iv env "I")) ~var:"T"
        in
        check_bool "inapplicable" false d.Transform.Diagnosis.applicable);
    case "peel first and last preserve" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(10)\n      S = 0.0\n      DO I = 1, 10\n        A(I) = FLOAT(I)\n        S = S + A(I)\n      ENDDO\n      PRINT *, S\n      END\n"
        in
        let ddg = ddg_of env in
        let sid = loop_sid (loop_by_iv env "I") in
        check_preserved "peel-first" env (Transform.Peel.apply env sid ~which:Transform.Peel.First);
        check_preserved "peel-last" env (Transform.Peel.apply env sid ~which:Transform.Peel.Last);
        ignore ddg);
    case "statement interchange: independent statements swap" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(10), B(10)\n      DO I = 1, 10\n        A(I) = FLOAT(I)\n        B(I) = FLOAT(2*I)\n      ENDDO\n      PRINT *, A(3), B(3)\n      END\n"
        in
        let ddg = ddg_of env in
        let body = Loopnest.body_stmts env.Depenv.nest (loop_sid (loop_by_iv env "I")) in
        let s1 = (List.nth body 0).Ast.sid and s2 = (List.nth body 1).Ast.sid in
        let d = Transform.Stmt_interchange.diagnose env ddg s1 s2 in
        check_bool "safe" true d.Transform.Diagnosis.safe;
        check_preserved "swap" env (Transform.Stmt_interchange.apply env.Depenv.punit s1 s2));
    case "statement interchange: flow dep prevents" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(10), T\n      DO I = 1, 10\n        T = FLOAT(I)\n        A(I) = T\n      ENDDO\n      END\n"
        in
        let ddg = ddg_of env in
        let body = Loopnest.body_stmts env.Depenv.nest (loop_sid (loop_by_iv env "I")) in
        let s1 = (List.nth body 0).Ast.sid and s2 = (List.nth body 1).Ast.sid in
        let d = Transform.Stmt_interchange.diagnose env ddg s1 s2 in
        check_bool "unsafe" false d.Transform.Diagnosis.safe);
    case "catalog: all entries respond to wrong args" (fun () ->
        let env = env_of matmul_src in
        let ddg = ddg_of env in
        List.iter
          (fun (e : Transform.Catalog.entry) ->
            let d =
              e.Transform.Catalog.diagnose env ddg
                (Transform.Catalog.With_var (99999, "ZZ"))
            in
            (* either rejects the shape or reports not-a-loop *)
            check_bool (e.Transform.Catalog.name ^ " rejects") false
              (Transform.Diagnosis.ok d && e.Transform.Catalog.name <> "expand"))
          Transform.Catalog.all);
    case "catalog: find and names agree" (fun () ->
        check_bool "parallelize known" true (Transform.Catalog.find "parallelize" <> None);
        check_bool "bogus unknown" true (Transform.Catalog.find "bogus" = None);
        check_int "names length" (List.length Transform.Catalog.all)
          (List.length Transform.Catalog.names));
  ]

let extra_suite =
  [
    case "normalize: strided loop preserves semantics" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(40)\n      S = 0.0\n      DO I = 3, 39, 4\n        A(I) = FLOAT(I)\n        S = S + A(I)\n      ENDDO\n      PRINT *, S, I\n      END\n"
        in
        let ddg = ddg_of env in
        let sid = loop_sid (loop_by_iv env "I") in
        let d = Transform.Normalize_loop.diagnose env ddg sid in
        check_bool "ok" true (Transform.Diagnosis.ok d);
        let u' = Transform.Normalize_loop.apply env sid in
        check_preserved "normalize" env u';
        (* the rewritten loop runs from 1 with unit stride *)
        let env' = Depenv.remake env u' in
        let lp = loop_by_iv env' "I" in
        check_bool "lo is 1" true
          (Ast.expr_equal lp.Loopnest.header.Ast.lo (Ast.Int 1));
        check_bool "no step" true (lp.Loopnest.header.Ast.step = None));
    case "normalize: negative step preserves semantics" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(40)\n      S = 0.0\n      DO I = 39, 3, -4\n        A(I) = FLOAT(I)\n        S = S + A(I) * 0.5\n      ENDDO\n      PRINT *, S\n      END\n"
        in
        let sid = loop_sid (loop_by_iv env "I") in
        check_preserved "normalize-neg" env (Transform.Normalize_loop.apply env sid));
    case "normalize: already-normal loop inapplicable" (fun () ->
        let env =
          env_of "      PROGRAM P\n      DO I = 1, 10\n        X = I\n      ENDDO\n      END\n"
        in
        let ddg = ddg_of env in
        let d = Transform.Normalize_loop.diagnose env ddg (loop_sid (loop_by_iv env "I")) in
        check_bool "inapplicable" false d.Transform.Diagnosis.applicable);
    case "rename: two webs split and unblock" (fun () ->
        (* T holds two unrelated values per iteration; the second web
           creates no cross-statement trouble once split *)
        let env =
          env_of
            "      PROGRAM P\n      REAL A(10), B(10), T\n      DO I = 1, 10\n        T = FLOAT(I)\n        A(I) = T * 2.0\n        T = FLOAT(10 - I)\n        B(I) = T + 1.0\n      ENDDO\n      PRINT *, A(5), B(5)\n      END\n"
        in
        let ddg = ddg_of env in
        let sid = loop_sid (loop_by_iv env "I") in
        let d = Transform.Rename_scalar.diagnose env ddg sid ~var:"T" in
        check_bool "ok" true (Transform.Diagnosis.ok d);
        let u' = Transform.Rename_scalar.apply env sid ~var:"T" in
        check_preserved "rename" env u';
        (* both T and the fresh name appear *)
        let printed = Pretty.unit_to_string u' in
        check_bool "fresh name used" true (Util.contains ~needle:"T1" printed));
    case "rename: single web inapplicable" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(10), T\n      DO I = 1, 10\n        T = FLOAT(I)\n        A(I) = T * 2.0\n      ENDDO\n      PRINT *, A(5)\n      END\n"
        in
        let ddg = ddg_of env in
        let d =
          Transform.Rename_scalar.diagnose env ddg (loop_sid (loop_by_iv env "I")) ~var:"T"
        in
        check_bool "inapplicable" false d.Transform.Diagnosis.applicable);
    case "rename: upward-exposed use blocks" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(10), T\n      T = 1.0\n      DO I = 1, 10\n        A(I) = T\n        T = FLOAT(I)\n        A(I) = A(I) + T\n      ENDDO\n      END\n"
        in
        let ddg = ddg_of env in
        let d =
          Transform.Rename_scalar.diagnose env ddg (loop_sid (loop_by_iv env "I")) ~var:"T"
        in
        check_bool "inapplicable" false d.Transform.Diagnosis.applicable);
  ]

let suite = suite @ extra_suite

let indsub_suite =
  [
    case "indsub: closed form preserves semantics and unlocks" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(20)\n      INTEGER K\n      K = 0\n      DO I = 1, 10\n        K = K + 2\n        A(K) = FLOAT(I)\n      ENDDO\n      PRINT *, A(20), K\n      END\n"
        in
        let ddg = ddg_of env in
        let sid = loop_sid (loop_by_iv env "I") in
        (* bare parallelization must refuse: K is an accumulator *)
        let dp = Transform.Parallelize.diagnose env ddg sid in
        check_bool "parallelize unsafe" false dp.Transform.Diagnosis.safe;
        let d = Transform.Indsub.diagnose env ddg sid ~var:"K" in
        check_bool "indsub ok" true (Transform.Diagnosis.ok d);
        let u' = Transform.Indsub.apply env sid ~var:"K" in
        check_preserved "indsub" env u';
        (* after substitution the loop parallelizes and stays order
           independent *)
        let env' = Depenv.remake env u' in
        let ddg' = ddg_of env' in
        let sid' = loop_sid (loop_by_iv env' "I") in
        let dp' = Transform.Parallelize.diagnose env' ddg' sid' in
        check_bool "parallelize safe now" true dp'.Transform.Diagnosis.safe;
        let u'' = Transform.Parallelize.apply u' sid' in
        let p = { Ast.punits = [ u'' ] } in
        let a = Sim.Interp.run ~par_order:Sim.Interp.Seq p in
        let b = Sim.Interp.run ~par_order:Sim.Interp.Reverse p in
        check_bool "order independent" true
          (Sim.Interp.outputs_match a.Sim.Interp.output b.Sim.Interp.output));
    case "indsub: final value correct on symbolic bounds" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(40)\n      INTEGER K, N\n      N = 7\n      K = 0\n      DO I = 1, N\n        K = K + 1\n        A(K) = 1.0\n      ENDDO\n      PRINT *, K\n      END\n"
        in
        let sid = loop_sid (loop_by_iv env "I") in
        check_preserved "indsub-symbolic" env (Transform.Indsub.apply env sid ~var:"K"));
    case "indsub: rejects non-induction variables" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(10), T\n      DO I = 1, 10\n        T = FLOAT(I)\n        A(I) = T\n      ENDDO\n      END\n"
        in
        let ddg = ddg_of env in
        let d =
          Transform.Indsub.diagnose env ddg (loop_sid (loop_by_iv env "I")) ~var:"T"
        in
        check_bool "inapplicable" false d.Transform.Diagnosis.applicable);
  ]

let suite = suite @ indsub_suite

let coalesce_suite =
  [
    case "coalesce: product loop preserves semantics" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(6,4)\n      S = 0.0\n      DO I = 1, 6\n        DO J = 1, 4\n          A(I,J) = FLOAT(10*I + J)\n          S = S + A(I,J)\n        ENDDO\n      ENDDO\n      PRINT *, S, A(3,2)\n      END\n"
        in
        let ddg = ddg_of env in
        let sid = loop_sid (loop_by_iv env "I") in
        let d = Transform.Coalesce.diagnose env ddg sid in
        check_bool "ok" true (Transform.Diagnosis.ok d);
        let u' = Transform.Coalesce.apply env sid in
        check_preserved "coalesce" env u';
        let env' = Depenv.remake env u' in
        check_int "one loop" 1 (List.length (Loopnest.loops env'.Depenv.nest)));
    case "coalesce: lower bounds other than 1 preserved" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(8,8)\n      S = 0.0\n      DO I = 3, 7\n        DO J = 2, 6\n          A(I,J) = FLOAT(I - J)\n          S = S + A(I,J)\n        ENDDO\n      ENDDO\n      PRINT *, S\n      END\n"
        in
        let sid = loop_sid (loop_by_iv env "I") in
        check_preserved "coalesce-lb" env (Transform.Coalesce.apply env sid));
    case "coalesce: symbolic bounds inapplicable" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(8,8)\n      DO I = 1, N\n        DO J = 1, 8\n          A(1,J) = 0.0\n        ENDDO\n      ENDDO\n      END\n"
        in
        let ddg = ddg_of env in
        let d = Transform.Coalesce.diagnose env ddg (loop_sid (loop_by_iv env "I")) in
        check_bool "inapplicable" false d.Transform.Diagnosis.applicable);
  ]

let suite = suite @ coalesce_suite

(* ------------------------------------------------------------------ *)
(* Stride and trip-count edge cases — zero-trip loops, negative
   steps, non-unit strides — the corners the fuzzing oracles
   (lib/oracle) flushed out in reverse, peel and strip mining.       *)

(* A random-access frame: fill A, run [body], checksum A.  The loop
   under test uses M (and L when nested) so [loop_by_iv] is
   unambiguous. *)
let edge_src body =
  Printf.sprintf
    "      PROGRAM E\n\
    \      REAL A(40)\n\
    \      DO I = 1, 40\n\
    \        A(I) = FLOAT(41 - I)\n\
    \      ENDDO\n\
     %s\
    \      S = 0.0\n\
    \      DO I = 1, 40\n\
    \        S = S + A(I)\n\
    \      ENDDO\n\
    \      PRINT *, S\n\
    \      END\n"
    body

(* Diagnose a catalog instance on [src]; when approved, apply it and
   require identical simulated output.  [expect_live] additionally
   requires the approval (the instance is known transformable). *)
let exercise ?(expect_live = false) name args_of src =
  let env = env_of src in
  let ddg = ddg_of env in
  let entry = Option.get (Transform.Catalog.find name) in
  let args = args_of env in
  let d = entry.Transform.Catalog.diagnose env ddg args in
  if Transform.Diagnosis.ok d then (
    match entry.Transform.Catalog.apply env ddg args with
    | Ok u' ->
      check_preserved name env u';
      Some u'
    | Error d' ->
      Alcotest.failf "%s refused after an ok diagnosis: %s" name
        (Transform.Diagnosis.to_string d'))
  else if expect_live then
    Alcotest.failf "%s unexpectedly refused: %s" name
      (Transform.Diagnosis.to_string d)
  else None

let on_m env = Transform.Catalog.On_loop (loop_sid (loop_by_iv env "M"))

let with_factor f env =
  Transform.Catalog.With_factor (loop_sid (loop_by_iv env "M"), f)

let edge_suite =
  [
    case "reverse: non-unit stride starts on the last reached value"
      (fun () ->
        let u' =
          exercise ~expect_live:true "reverse" on_m
            (edge_src
               "      DO M = 1, 10, 2\n\
               \        A(M) = A(M) + FLOAT(M)\n\
               \      ENDDO\n")
        in
        check_bool "header starts at 9" true
          (contains ~needle:"DO M = 9, 1," (Pretty.unit_to_string (Option.get u'))));
    case "reverse: negative non-unit stride" (fun () ->
        let u' =
          exercise ~expect_live:true "reverse" on_m
            (edge_src
               "      DO M = 10, 1, -3\n\
               \        A(M) = A(M) * 0.5\n\
               \      ENDDO\n")
        in
        check_bool "header is DO M = 1, 10, 3" true
          (contains ~needle:"DO M = 1, 10, 3"
             (Pretty.unit_to_string (Option.get u'))));
    case "reverse: zero-trip loop stays zero-trip" (fun () ->
        ignore
          (exercise ~expect_live:true "reverse" on_m
             (edge_src
                "      DO M = 4, 3, 2\n\
                \        A(M) = 0.0\n\
                \      ENDDO\n")));
    case "peel-last: non-unit stride peels the last reached value"
      (fun () ->
        ignore
          (exercise ~expect_live:true "peel-last" on_m
             (edge_src
                "      DO M = 1, 11, 3\n\
                \        A(M) = A(M) + 1.0\n\
                \      ENDDO\n")));
    case "peel-first: negative step" (fun () ->
        ignore
          (exercise ~expect_live:true "peel-first" on_m
             (edge_src
                "      DO M = 10, 2, -2\n\
                \        A(M) = A(M) + 1.0\n\
                \      ENDDO\n")));
    case "peel: zero-trip loop" (fun () ->
        ignore
          (exercise "peel-first" on_m
             (edge_src
                "      DO M = 9, 3\n\
                \        A(M) = 0.0\n\
                \      ENDDO\n")));
    case "strip: non-unit stride" (fun () ->
        ignore
          (exercise ~expect_live:true "strip" (with_factor 4)
             (edge_src
                "      DO M = 1, 20, 3\n\
                \        A(M) = A(M) + 2.0\n\
                \      ENDDO\n")));
    case "strip: negative step" (fun () ->
        ignore
          (exercise ~expect_live:true "strip" (with_factor 4)
             (edge_src
                "      DO M = 20, 1, -3\n\
                \        A(M) = A(M) * 0.5\n\
                \      ENDDO\n")));
    case "strip: zero-trip loop" (fun () ->
        ignore
          (exercise "strip" (with_factor 2)
             (edge_src
                "      DO M = 5, 4\n\
                \        A(M) = 0.0\n\
                \      ENDDO\n")));
    case "skew: zero-trip inner loop" (fun () ->
        ignore
          (exercise "skew" (with_factor 1)
             (edge_src
                "      DO M = 1, 6\n\
                \        DO L = 8, 3\n\
                \          A(L) = A(L) + 1.0\n\
                \        ENDDO\n\
                \      ENDDO\n")));
    case "tile: zero-trip outer loop" (fun () ->
        ignore
          (exercise "tile" (with_factor 3)
             (edge_src
                "      DO M = 6, 1\n\
                \        DO L = 1, 8\n\
                \          A(L) = A(L) * 0.5\n\
                \        ENDDO\n\
                \      ENDDO\n")));
    case "tile: non-unit inner stride" (fun () ->
        ignore
          (exercise "tile" (with_factor 3)
             (edge_src
                "      DO M = 1, 6\n\
                \        DO L = 1, 20, 2\n\
                \          A(L) = A(L) + FLOAT(M)\n\
                \        ENDDO\n\
                \      ENDDO\n")));
    case "expand: non-unit stride copies out the last reached value"
      (fun () ->
        let u' =
          exercise ~expect_live:true "expand"
            (fun env ->
              Transform.Catalog.With_var
                (loop_sid (loop_by_iv env "M"), "T"))
            (edge_src
               "      DO M = 3, 8, 2\n\
               \        T = 3.0 + A(M + M)\n\
               \        A(M) = T\n\
               \      ENDDO\n\
               \      A(1) = T\n")
        in
        check_bool "copy-out reads TX(7), the last iteration" true
          (contains ~needle:"TX(7)" (Pretty.unit_to_string (Option.get u'))));
    case "expand: refuses an inner loop's induction variable" (fun () ->
        let env =
          env_of
            (edge_src
               "      DO M = 1, 6\n\
               \        DO L = 1, 6\n\
               \          A(L) = A(L) + FLOAT(M)\n\
               \        ENDDO\n\
               \      ENDDO\n")
        in
        let ddg = ddg_of env in
        let sid = loop_sid (loop_by_iv env "M") in
        let d = Transform.Scalar_expand.diagnose env ddg sid ~var:"L" in
        check_bool "diagnosed not ok" false (Transform.Diagnosis.ok d);
        (try
           ignore (Transform.Scalar_expand.apply env sid ~var:"L");
           Alcotest.fail "apply accepted an induction variable"
         with Invalid_argument _ -> ()));
  ]

let suite = suite @ edge_suite
