open Dependence
open Util

(* Build a one-loop problem from a single-dimension coefficient pair. *)
let p1 ?(trip = Some 10) ?(lo_known = true) a b c =
  {
    Dtest.nloops = 1;
    trips = [| trip |];
    trips_exact = Array.map (fun _ -> true) ([| trip |]);
    lo_known = [| lo_known |];
    dims = [ { Dtest.a = [| a |]; b = [| b |]; c; usable = true } ];
  }

let indep = function Dtest.Independent _ -> true | Dtest.Dependent _ -> false

let dirs_of = function
  | Dtest.Dependent { dirs; _ } ->
    List.map (fun dv -> Array.to_list (Array.map Dtest.direction_to_string dv)) dirs
  | Dtest.Independent _ -> []

let suite =
  [
    case "ziv: constant difference disproves" (fun () ->
        check_bool "indep" true (indep (Dtest.solve (p1 0 0 5))));
    case "ziv: zero difference is loop independent" (fun () ->
        match Dtest.solve (p1 0 0 0) with
        | Dtest.Dependent { dirs; _ } ->
          (* the subscripts never constrain the loop: all directions *)
          check_int "three dirs" 3 (List.length dirs)
        | _ -> Alcotest.fail "expected dependence");
    case "strong siv: integer distance within trip" (fun () ->
        (* A(I) vs A(I-2): a=1,b=1,c(src-dst)= 2? equation I - I' + c = 0 *)
        match Dtest.solve (p1 1 1 (-2)) with
        | Dtest.Dependent { dist = [| Some d |]; exact; dirs; _ } ->
          check_int "distance" (-2) d;
          check_bool "exact" true exact;
          check_int "one dir" 1 (List.length dirs)
        | _ -> Alcotest.fail "expected exact dependence");
    case "strong siv: distance beyond trip disproves" (fun () ->
        check_bool "indep" true (indep (Dtest.solve (p1 1 1 20))));
    case "strong siv: non-integer distance disproves" (fun () ->
        check_bool "indep" true (indep (Dtest.solve (p1 2 2 3))));
    case "weak-zero siv: crossing inside range" (fun () ->
        (* 2α + c = 0 with c = -6: α = 3 ∈ [0,10] *)
        check_bool "dep" false (indep (Dtest.solve (p1 2 0 (-6)))));
    case "weak-zero siv: crossing outside range disproves" (fun () ->
        check_bool "indep" true (indep (Dtest.solve (p1 2 0 (-30)))));
    case "weak-zero siv: unknown lower bound cannot disprove range" (fun () ->
        check_bool "dep" false
          (indep (Dtest.solve (p1 ~trip:None ~lo_known:false 2 0 (-30)))));
    case "weak-zero siv: divisibility still disproves in raw mode" (fun () ->
        check_bool "indep" true
          (indep (Dtest.solve (p1 ~trip:None ~lo_known:false 2 0 3))));
    case "exact siv: solvable crossing" (fun () ->
        (* α + 2 = 2β: a=1,b=2,c=2 → (α,β) = (0,1),(2,2),... *)
        check_bool "dep" false (indep (Dtest.solve (p1 1 2 2))));
    case "exact siv: gcd disproves" (fun () ->
        (* 2α - 4β + 1 = 0 has no integer solution *)
        check_bool "indep" true (indep (Dtest.solve (p1 2 4 1))));
    case "exact siv: bounds disprove" (fun () ->
        (* α = 3β + 25, trip 4: no pair in [0,4]² *)
        check_bool "indep" true (indep (Dtest.solve (p1 ~trip:(Some 4) 1 3 25))));
    case "gcd test on MIV" (fun () ->
        (* 2i + 4j vs ... difference must be odd: disproved *)
        let p =
          {
            Dtest.nloops = 2;
            trips = [| Some 10; Some 10 |];
            trips_exact = Array.map (fun _ -> true) ([| Some 10; Some 10 |]);
            lo_known = [| true; true |];
            dims =
              [ { Dtest.a = [| 2; 4 |]; b = [| 2; 4 |]; c = 1; usable = true } ];
          }
        in
        check_bool "indep" true (indep (Dtest.solve p)));
    case "banerjee: direction refinement filters" (fun () ->
        (* α − β + 1 = 0 → β = α + 1 → source earlier: '<' only *)
        (match Dtest.solve (p1 1 1 1) with
        | Dtest.Dependent { dirs = [ dv ]; _ } ->
          check_string "dir" "<" (Dtest.direction_to_string dv.(0))
        | _ -> Alcotest.fail "expected single direction");
        (* α − β − 1 = 0 → β = α − 1: '>' only *)
        match Dtest.solve (p1 1 1 (-1)) with
        | Dtest.Dependent { dirs = [ dv ]; _ } ->
          check_string "dir" ">" (Dtest.direction_to_string dv.(0))
        | _ -> Alcotest.fail "expected single direction");
    case "empty loop disproves" (fun () ->
        check_bool "indep" true (indep (Dtest.solve (p1 ~trip:(Some (-1)) 1 1 0))));
    case "unusable dims assume all directions" (fun () ->
        let p =
          {
            Dtest.nloops = 1;
            trips = [| Some 5 |];
            trips_exact = Array.map (fun _ -> true) ([| Some 5 |]);
            lo_known = [| true |];
            dims = [ { Dtest.a = [| 0 |]; b = [| 0 |]; c = 0; usable = false } ];
          }
        in
        match Dtest.solve p with
        | Dtest.Dependent { dirs; exact; _ } ->
          check_int "all dirs" 3 (List.length dirs);
          check_bool "pending" false exact
        | _ -> Alcotest.fail "expected assumed dependence");
    case "delta: inconsistent distances disprove" (fun () ->
        (* A(I, I) vs A(I-1, I-2): dim1 pins δ=1, dim2 pins δ=2 *)
        let p =
          {
            Dtest.nloops = 1;
            trips = [| Some 10 |];
            trips_exact = Array.map (fun _ -> true) ([| Some 10 |]);
            lo_known = [| true |];
            dims =
              [
                { Dtest.a = [| 1 |]; b = [| 1 |]; c = -1; usable = true };
                { Dtest.a = [| 1 |]; b = [| 1 |]; c = -2; usable = true };
              ];
          }
        in
        check_bool "indep" true (indep (Dtest.solve p)));
    case "two-loop distance vector" (fun () ->
        (* A(I,J) write vs A(I-1,J-1) read: c = +1 per dimension,
           δ = (1,1) *)
        let p =
          {
            Dtest.nloops = 2;
            trips = [| Some 10; Some 10 |];
            trips_exact = Array.map (fun _ -> true) ([| Some 10; Some 10 |]);
            lo_known = [| true; true |];
            dims =
              [
                { Dtest.a = [| 1; 0 |]; b = [| 1; 0 |]; c = 1; usable = true };
                { Dtest.a = [| 0; 1 |]; b = [| 0; 1 |]; c = 1; usable = true };
              ];
          }
        in
        match Dtest.solve p with
        | Dtest.Dependent { dist = [| Some 1; Some 1 |]; exact = true; _ } -> ()
        | _ -> Alcotest.fail "expected (1,1) exact");
  ]

(* ------------------------------------------------------------------ *)
(* Property: solver never disproves what brute force finds, and the    *)
(* surviving direction vectors cover everything realized.              *)
(* ------------------------------------------------------------------ *)

let gen_problem : Dtest.problem QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* nloops = int_range 1 3 in
  let* trips =
    array_repeat nloops
      (oneof [ return None; (int_range 0 6 >|= fun t -> Some t) ])
  in
  let* lo_known = array_repeat nloops (frequency [ (4, return true); (1, return false) ]) in
  (* unknown lower bound implies unknown trip in real problems *)
  let trips = Array.mapi (fun i t -> if lo_known.(i) then t else None) trips in
  let* ndims = int_range 1 2 in
  let coeff = int_range (-3) 3 in
  let* dims =
    list_repeat ndims
      (let* a = array_repeat nloops coeff in
       let* b = array_repeat nloops coeff in
       let* c = int_range (-8) 8 in
       return { Dtest.a; b; c; usable = true })
  in
  return
    { Dtest.nloops; trips;
      trips_exact = Array.map (fun _ -> true) trips; lo_known; dims }

let soundness =
  QCheck2.Test.make ~count:400 ~name:"dtest sound vs brute force"
    gen_problem (fun p ->
      let realized = Dtest.brute_force p ~bound:6 in
      match Dtest.solve p with
      | Dtest.Independent _ -> realized = []
      | Dtest.Dependent { dirs; _ } ->
        (* every realized direction vector must be among the survivors *)
        List.for_all (fun dv -> List.exists (fun s -> s = dv) dirs) realized)

let suite = suite @ [ QCheck_alcotest.to_alcotest soundness ]

let delta_propagation =
  [
    case "delta propagation: pinned distance collapses coupled dim" (fun () ->
        (* B(I, I+J) vs B(I-1, I+J): dim1 pins δI = 1; dim2 becomes
           (after substituting βI = αI + 1): J-dim equation
           αJ − βJ + (c − δI) — with c = 0: δJ = −1 fine; use a variant
           where the reduced constant is non-integer for the J coeffs *)
        let p =
          {
            Dtest.nloops = 2;
            trips = [| Some 10; Some 10 |];
            trips_exact = Array.map (fun _ -> true) ([| Some 10; Some 10 |]);
            lo_known = [| true; true |];
            dims =
              [
                (* dim1: αI − βI + 1 = 0 → δI = 1 *)
                { Dtest.a = [| 1; 0 |]; b = [| 1; 0 |]; c = 1; usable = true };
                (* dim2: αI + 2αJ − (βI + 2βJ) + 2 = 0; after δI = 1:
                   2(αJ − βJ) + 1 = 0 — no integer solution *)
                { Dtest.a = [| 1; 2 |]; b = [| 1; 2 |]; c = 2; usable = true };
              ];
          }
        in
        match Dtest.solve p with
        | Dtest.Independent { test; _ } ->
          check_bool "delta test decided" true
            (test = "delta-siv" || test = "delta-ziv")
        | Dtest.Dependent _ -> Alcotest.fail "expected delta disproof");
    case "delta propagation: distance beyond trip after reduction" (fun () ->
        (* dim1 pins δI = 2; dim2 reduces to δJ = 20 > trip *)
        let p =
          {
            Dtest.nloops = 2;
            trips = [| Some 10; Some 10 |];
            trips_exact = Array.map (fun _ -> true) ([| Some 10; Some 10 |]);
            lo_known = [| true; true |];
            dims =
              [
                { Dtest.a = [| 1; 0 |]; b = [| 1; 0 |]; c = 2; usable = true };
                { Dtest.a = [| 1; 1 |]; b = [| 1; 1 |]; c = 22; usable = true };
              ];
          }
        in
        check_bool "indep" true
          (match Dtest.solve p with Dtest.Independent _ -> true | _ -> false));
  ]

let exactness_property =
  QCheck2.Test.make ~count:300
    ~name:"exact dependences are realized by brute force" gen_problem
    (fun p ->
      (* restrict to fully bounded problems so brute force is complete *)
      let bounded =
        Array.for_all (fun t -> t <> None) p.Dtest.trips
        && Array.for_all Fun.id p.Dtest.lo_known
      in
      QCheck2.assume bounded;
      match Dtest.solve p with
      | Dtest.Dependent { exact = true; _ } ->
        Dtest.brute_force p ~bound:6 <> []
      | _ -> true)

let suite =
  suite @ delta_propagation @ [ QCheck_alcotest.to_alcotest exactness_property ]

let weak_crossing =
  [
    case "weak-crossing siv: crossing beyond range disproves" (fun () ->
        (* α + β = 30 over [0,10]²: impossible *)
        check_bool "indep" true
          (match Dtest.solve (p1 ~trip:(Some 10) 1 (-1) (-30)) with
           | Dtest.Independent { test; _ } -> test = "weak-crossing-siv"
           | _ -> false));
    case "weak-crossing siv: fractional crossing disproves" (fun () ->
        (* 2(α + β) = 5: no whole solution *)
        check_bool "indep" true
          (match Dtest.solve (p1 ~trip:(Some 10) 2 (-2) (-5)) with
           | Dtest.Independent { test; _ } -> test = "weak-crossing-siv"
           | _ -> false));
    case "weak-crossing siv: feasible crossing keeps the dependence" (fun () ->
        check_bool "dep" true
          (match Dtest.solve (p1 ~trip:(Some 10) 1 (-1) (-8)) with
           | Dtest.Dependent _ -> true
           | _ -> false));
  ]

let suite = suite @ weak_crossing

let raw_mode_regressions =
  [
    case "weak-crossing in raw mode cannot use position bounds" (fun () ->
        (* lo unknown: α+β may be negative, so only divisibility can
           disprove (regression: the fleet found this) *)
        check_bool "dep kept" true
          (match Dtest.solve (p1 ~trip:None ~lo_known:false (-3) 3 (-3)) with
           | Dtest.Dependent _ -> true
           | Dtest.Independent _ -> false);
        (* divisibility still works in raw mode *)
        check_bool "indep by divisibility" true
          (match Dtest.solve (p1 ~trip:None ~lo_known:false 2 (-2) 3) with
           | Dtest.Independent _ -> true
           | _ -> false));
    case "solve normalizes trips under unknown lower bounds" (fun () ->
        (* a caller passing a trip with lo_known=false must not get
           bound-based disproofs *)
        let p =
          {
            Dtest.nloops = 1;
            trips = [| Some 3 |];
            trips_exact = [| true |];
            lo_known = [| false |];
            dims = [ { Dtest.a = [| 1 |]; b = [| 0 |]; c = -100; usable = true } ];
          }
        in
        check_bool "dep kept" true
          (match Dtest.solve p with Dtest.Dependent _ -> true | _ -> false));
  ]

let suite = suite @ raw_mode_regressions
