open Util

let suite =
  [
    case "arithmetic and intrinsics" (fun () ->
        let out =
          run_output
            "      PROGRAM P\n      X = SQRT(16.0) + ABS(-3.0) + MAX(1.0, 2.0)\n      K = MOD(17, 5)\n      PRINT *, X, K\n      END\n"
        in
        check_string "out" "9 2" (List.hd out));
    case "integer division truncates" (fun () ->
        let out = run_output "      PROGRAM P\n      K = 7 / 2\n      PRINT *, K\n      END\n" in
        check_string "3" "3" (List.hd out));
    case "real to integer assignment truncates" (fun () ->
        let out = run_output "      PROGRAM P\n      K = 3.9\n      PRINT *, K\n      END\n" in
        check_string "3" "3" (List.hd out));
    case "do loop trip semantics" (fun () ->
        let out =
          run_output
            "      PROGRAM P\n      K = 0\n      DO I = 1, 10, 3\n        K = K + 1\n      ENDDO\n      PRINT *, K\n      END\n"
        in
        check_string "4 trips" "4" (List.hd out));
    case "zero-trip loop body skipped" (fun () ->
        let out =
          run_output
            "      PROGRAM P\n      K = 5\n      DO I = 3, 1\n        K = 0\n      ENDDO\n      PRINT *, K\n      END\n"
        in
        check_string "5" "5" (List.hd out));
    case "negative step loop" (fun () ->
        let out =
          run_output
            "      PROGRAM P\n      K = 0\n      DO I = 10, 1, -2\n        K = K + I\n      ENDDO\n      PRINT *, K\n      END\n"
        in
        check_string "30" "30" (List.hd out));
    case "goto forward and backward" (fun () ->
        let out =
          run_output
            "      PROGRAM P\n      K = 0\n 10   K = K + 1\n      IF (K .LT. 3) GOTO 10\n      PRINT *, K\n      END\n"
        in
        check_string "3" "3" (List.hd out));
    case "by-reference argument passing" (fun () ->
        let out =
          run_output
            "      PROGRAM P\n      X = 1.0\n      CALL BUMP(X)\n      PRINT *, X\n      END\n      SUBROUTINE BUMP(Y)\n      Y = Y + 1.0\n      END\n"
        in
        check_string "2" "2" (List.hd out));
    case "array element passed by reference" (fun () ->
        let out =
          run_output
            "      PROGRAM P\n      REAL A(3)\n      A(2) = 5.0\n      CALL BUMP(A(2))\n      PRINT *, A(2)\n      END\n      SUBROUTINE BUMP(Y)\n      Y = Y + 1.0\n      END\n"
        in
        check_string "6" "6" (List.hd out));
    case "expression argument is a temporary" (fun () ->
        let out =
          run_output
            "      PROGRAM P\n      X = 1.0\n      CALL BUMP(X + 0.0)\n      PRINT *, X\n      END\n      SUBROUTINE BUMP(Y)\n      Y = Y + 1.0\n      END\n"
        in
        check_string "1" "1" (List.hd out));
    case "adjustable array reshaping across call" (fun () ->
        let out =
          run_output
            "      PROGRAM P\n      REAL A(2,3)\n      INTEGER I, J\n      DO I = 1, 2\n        DO J = 1, 3\n          A(I,J) = FLOAT(10*I + J)\n        ENDDO\n      ENDDO\n      CALL ROWS(A, 2, 3)\n      END\n      SUBROUTINE ROWS(B, N, M)\n      INTEGER N, M\n      REAL B(N,M)\n      PRINT *, B(2,1), B(1,3)\n      END\n"
        in
        check_string "column major" "21 13" (List.hd out));
    case "common storage shared between units" (fun () ->
        let out =
          run_output
            "      PROGRAM P\n      COMMON /G/ Q\n      Q = 2.5\n      CALL S\n      PRINT *, Q\n      END\n      SUBROUTINE S\n      COMMON /G/ Q\n      Q = Q * 2.0\n      END\n"
        in
        check_string "5" "5" (List.hd out));
    case "function call returns result" (fun () ->
        let out =
          run_output
            "      PROGRAM P\n      X = TWICE(4.0) + 1.0\n      PRINT *, X\n      END\n      REAL FUNCTION TWICE(Y)\n      TWICE = 2.0 * Y\n      END\n"
        in
        check_string "9" "9" (List.hd out));
    case "lower-bound arrays index correctly" (fun () ->
        let out =
          run_output
            "      PROGRAM P\n      REAL A(0:4)\n      A(0) = 1.5\n      A(4) = 2.5\n      PRINT *, A(0) + A(4)\n      END\n"
        in
        check_string "4" "4" (List.hd out));
    case "out-of-bounds raises" (fun () ->
        match
          run_output "      PROGRAM P\n      REAL A(3)\n      A(9) = 1.0\n      END\n"
        with
        | exception Sim.Interp.Runtime_error _ -> ()
        | _ -> Alcotest.fail "expected Runtime_error");
    case "statement budget guards runaways" (fun () ->
        match
          Sim.Interp.run ~max_steps:100
            (parse "      PROGRAM P\n 10   K = K + 1\n      GOTO 10\n      END\n")
        with
        | exception Sim.Interp.Runtime_error _ -> ()
        | _ -> Alcotest.fail "expected budget exhaustion");
    case "parallel clock beats sequential on a parallel loop" (fun () ->
        let src =
          "      PROGRAM P\n      REAL A(64)\n      PARALLEL DO I = 1, 64\n        A(I) = FLOAT(I) * 2.0\n      ENDDO\n      PRINT *, A(64)\n      END\n"
        in
        let seq = Sim.Interp.run ~honor_parallel:false (parse src) in
        let par = Sim.Interp.run ~honor_parallel:true (parse src) in
        check_bool "faster" true (par.Sim.Interp.cycles < seq.Sim.Interp.cycles);
        check_bool "same output" true
          (Sim.Interp.outputs_match seq.Sim.Interp.output par.Sim.Interp.output));
    case "parallel order does not change a clean loop" (fun () ->
        let src =
          "      PROGRAM P\n      REAL A(32)\n      PARALLEL DO I = 1, 32\n        A(I) = FLOAT(I)\n      ENDDO\n      PRINT *, A(1), A(32)\n      END\n"
        in
        let a = Sim.Interp.run ~par_order:Sim.Interp.Seq (parse src) in
        let b = Sim.Interp.run ~par_order:Sim.Interp.Reverse (parse src) in
        let c = Sim.Interp.run ~par_order:(Sim.Interp.Shuffled 42) (parse src) in
        check_bool "reverse same" true
          (Sim.Interp.stores_match a.Sim.Interp.final_store b.Sim.Interp.final_store);
        check_bool "shuffle same" true
          (Sim.Interp.stores_match a.Sim.Interp.final_store c.Sim.Interp.final_store));
    case "bad parallelization detected by reordering" (fun () ->
        (* a true recurrence marked parallel: reversed order differs *)
        let src =
          "      PROGRAM P\n      REAL A(16)\n      A(1) = 1.0\n      PARALLEL DO I = 2, 16\n        A(I) = A(I-1) + 1.0\n      ENDDO\n      PRINT *, A(16)\n      END\n"
        in
        let a = Sim.Interp.run ~par_order:Sim.Interp.Seq (parse src) in
        let b = Sim.Interp.run ~par_order:Sim.Interp.Reverse (parse src) in
        check_bool "differs" false
          (Sim.Interp.outputs_match a.Sim.Interp.output b.Sim.Interp.output));
    case "inner parallel loops run sequentially inside outer" (fun () ->
        let src =
          "      PROGRAM P\n      REAL A(8,8)\n      PARALLEL DO I = 1, 8\n        PARALLEL DO J = 1, 8\n          A(I,J) = FLOAT(I*J)\n        ENDDO\n      ENDDO\n      PRINT *, A(8,8)\n      END\n"
        in
        let o = Sim.Interp.run (parse src) in
        check_string "64" "64" (List.hd o.Sim.Interp.output));
    case "workloads run under all parallel orders after auto-parallelization"
      (fun () ->
        List.iter
          (fun (w : Workloads.t) ->
            (* parallelize everything the analysis allows, then check
               order independence *)
            let sess =
              Ped.Session.load (Workloads.program w)
                ~unit_name:(Workloads.main_unit w)
            in
            List.iter
              (fun (l : Dependence.Loopnest.loop) ->
                let sid = loop_sid l in
                if Ped.Session.is_parallelizable sess sid then
                  ignore
                    (Ped.Session.transform sess "parallelize"
                       (Transform.Catalog.On_loop sid)))
              (Ped.Session.loops sess);
            let p = (Ped.Session.program sess) in
            let a = Sim.Interp.run ~par_order:Sim.Interp.Seq p in
            let b = Sim.Interp.run ~par_order:(Sim.Interp.Shuffled 7) p in
            check_bool (w.Workloads.name ^ " order independent") true
              (Sim.Interp.outputs_match ~tol:1e-4 a.Sim.Interp.output
                 b.Sim.Interp.output))
          Workloads.all);
  ]

let data_suite =
  [
    case "DATA initializes but does not make a constant" (fun () ->
        let out =
          run_output
            "      PROGRAM P\n      REAL X\n      DATA X /2.5/\n      PRINT *, X\n      X = X + 1.0\n      PRINT *, X\n      END\n"
        in
        check_string "initial" "2.5" (List.nth out 0);
        check_string "reassigned" "3.5" (List.nth out 1));
    case "DATA variable is not constant-folded after reassignment" (fun () ->
        (* K = 3 via DATA, then K = 4: dependence analysis must not use 3 *)
        let u =
          parse_unit
            "      PROGRAM P\n      REAL A(40)\n      INTEGER K\n      DATA K /20/\n      K = 1\n      DO I = 1, 10\n        A(I) = A(I+K)\n      ENDDO\n      END\n"
        in
        let env = Dependence.Depenv.make u in
        let ddg = Dependence.Ddg.compute env in
        (* with K=20 the loop would be independent; with K=1 it is a real
           dependence — constant propagation must find K=1 and keep it *)
        check_bool "carried dep present" false
          (Dependence.Ddg.parallelizable env ddg
             (loop_sid (loop_by_iv env "I"))));
  ]

let suite = suite @ data_suite

let more_interp =
  [
    case "logical IF controls a CALL" (fun () ->
        let out =
          run_output
            "      PROGRAM P\n      X = 0.0\n      IF (X .LT. 1.0) CALL BUMP(X)\n      IF (X .GT. 5.0) CALL BUMP(X)\n      PRINT *, X\n      END\n      SUBROUTINE BUMP(Y)\n      Y = Y + 1.0\n      END\n"
        in
        check_string "1" "1" (List.hd out));
    case "elseif chain takes the first true branch" (fun () ->
        let out =
          run_output
            "      PROGRAM P\n      K = 7\n      IF (K .LT. 5) THEN\n        M = 1\n      ELSE IF (K .LT. 10) THEN\n        M = 2\n      ELSE IF (K .LT. 20) THEN\n        M = 3\n      ELSE\n        M = 4\n      ENDIF\n      PRINT *, M\n      END\n"
        in
        check_string "2" "2" (List.hd out));
    case "function calls a function" (fun () ->
        let out =
          run_output
            "      PROGRAM P\n      X = OUTERF(3.0)\n      PRINT *, X\n      END\n      REAL FUNCTION OUTERF(Y)\n      OUTERF = INNERF(Y) + 1.0\n      END\n      REAL FUNCTION INNERF(Z)\n      INNERF = Z * 2.0\n      END\n"
        in
        check_string "7" "7" (List.hd out));
    case "MOD with negative operand matches Fortran" (fun () ->
        let out =
          run_output "      PROGRAM P\n      K = MOD(-7, 3)\n      PRINT *, K\n      END\n"
        in
        check_string "-1" "-1" (List.hd out));
    case "SIGN intrinsic" (fun () ->
        let out =
          run_output
            "      PROGRAM P\n      X = SIGN(2.5, -1.0)\n      K = SIGN(4, 1)\n      PRINT *, X, K\n      END\n"
        in
        check_string "-2.5 4" "-2.5 4" (List.hd out));
    case "nint rounds" (fun () ->
        let out =
          run_output "      PROGRAM P\n      K = NINT(2.6)\n      PRINT *, K\n      END\n"
        in
        check_string "3" "3" (List.hd out));
    case "DO variable after completion is first failing value" (fun () ->
        let out =
          run_output
            "      PROGRAM P\n      DO I = 2, 10, 3\n        K = I\n      ENDDO\n      PRINT *, I\n      END\n"
        in
        check_string "11" "11" (List.hd out));
    case "GOTO exits a loop, variable keeps its value" (fun () ->
        let out =
          run_output
            "      PROGRAM P\n      DO I = 1, 10\n        IF (I .EQ. 4) GOTO 50\n      ENDDO\n 50   PRINT *, I\n      END\n"
        in
        check_string "4" "4" (List.hd out));
    case "recursion is rejected" (fun () ->
        match
          run_output
            "      PROGRAM P\n      CALL LOOPY\n      END\n      SUBROUTINE LOOPY\n      CALL LOOPY\n      END\n"
        with
        | exception Sim.Interp.Runtime_error _ -> ()
        | _ -> Alcotest.fail "expected recursion error");
    case "STOP inside a callee ends the program" (fun () ->
        let out =
          run_output
            "      PROGRAM P\n      PRINT *, 1\n      CALL HALT\n      PRINT *, 2\n      END\n      SUBROUTINE HALT\n      STOP\n      END\n"
        in
        check_int "one line" 1 (List.length out));
  ]

let suite = suite @ more_interp
