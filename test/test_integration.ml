(* Whole-session integration tests: replay editor scripts end to end
   and check both the transcript and the resulting program's behaviour. *)

open Fortran_front
open Util

let session name ~unit_name =
  let w = Option.get (Workloads.by_name name) in
  Ped.Session.load (Workloads.program w) ~unit_name

let transcript sess lines = String.concat "\n" (Ped.Command.script sess lines)

let suite =
  [
    case "matmul session: interchange then parallelize then speedup" (fun () ->
        let sess = session "matmul" ~unit_name:"MATMUL" in
        let t =
          transcript sess
            [
              "loops"; "select l3"; "vars"; "preview interchange l3";
              "apply interchange l3"; "apply parallelize l3"; "history";
              "estimate 8"; "simulate 8";
            ]
        in
        check_bool "interchange applied" true
          (contains ~needle:"interchange applied" t);
        check_bool "parallelize applied" true
          (contains ~needle:"parallelize applied" t);
        check_bool "history lists both" true
          (contains ~needle:"1. interchange" t
          && contains ~needle:"2. parallelize" t);
        check_bool "simulated output correct" true
          (contains ~needle:"1150" t);
        (* the simulated speedup is substantial *)
        let sim = Ped.Command.run sess "simulate 8" in
        let speedup_line =
          List.find (fun l -> contains ~needle:"speedup" l)
            (String.split_on_char '\n' sim)
        in
        let f = Scanf.sscanf speedup_line "speedup: %fx" Fun.id in
        check_bool "speedup > 3" true (f > 3.0));
    case "sor session: wavefront recipe via script" (fun () ->
        let sess = session "sor" ~unit_name:"SOR" in
        let t =
          transcript sess
            [
              "apply parallelize l4"; (* refused: carried deps *)
              "advise";
              "apply skew l4 1"; "apply interchange l4"; "apply parallelize l5";
              "src loops"; "simulate 8";
            ]
        in
        check_bool "first parallelize refused" true
          (contains ~needle:"parallelize NOT applied" t);
        check_bool "advisor suggests skew" true (contains ~needle:"skew" t);
        check_bool "wavefront bounds" true (contains ~needle:"MAX(1, J - N)" t);
        check_bool "output preserved" true (contains ~needle:"3528" t));
    case "undo chain restores the original program" (fun () ->
        let sess = session "daxpy" ~unit_name:"DAXPY" in
        let before = Pretty.program_to_string (Ped.Session.program sess) in
        ignore (Ped.Command.run sess "apply strip l1 4");
        ignore (Ped.Command.run sess "apply parallelize l3");
        ignore (Ped.Command.run sess "undo");
        ignore (Ped.Command.run sess "undo");
        let after = Pretty.program_to_string (Ped.Session.program sess) in
        check_string "identical" before after);
    case "write, reload, behaviour identical" (fun () ->
        let sess = session "jacobi" ~unit_name:"JACOBI" in
        (* transform: parallelize everything safe *)
        List.iter
          (fun (l : Dependence.Loopnest.loop) ->
            if Ped.Session.is_parallelizable sess (loop_sid l) then
              ignore
                (Ped.Session.transform sess "parallelize"
                   (Transform.Catalog.On_loop (loop_sid l))))
          (Ped.Session.loops sess);
        let path = Filename.temp_file "ped_it" ".f" in
        ignore (Ped.Command.run sess (Printf.sprintf "write %s" path));
        let ic = open_in path in
        let src = really_input_string ic (in_channel_length ic) in
        close_in ic;
        Sys.remove path;
        let reloaded = Parser.parse_program ~file:"reload.f" src in
        let a = Sim.Interp.run (Ped.Session.program sess) in
        let b = Sim.Interp.run reloaded in
        check_bool "same output" true
          (Sim.Interp.outputs_match a.Sim.Interp.output b.Sim.Interp.output);
        check_bool "parallel annotations kept" true
          (contains ~needle:"PARALLEL DO" src));
    case "mixed session on the mini-app: focus, reductions, calls" (fun () ->
        let sess = session "spec77x" ~unit_name:"SPEC77" in
        let t0 = transcript sess [ "units"; "callgraph"; "loops" ] in
        check_bool "three units" true
          (contains ~needle:"SPEC77" t0 && contains ~needle:"COLUMN" t0);
        (* the diagnostics reduction loop is parallelizable *)
        check_bool "reduction loop parallel" true
          (contains ~needle:"[parallelizable]" t0);
        (* focus COLUMN: its K loop carries a FLUX recurrence *)
        (match Ped.Session.focus sess "COLUMN" with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        let t1 = transcript sess [ "loops"; "select l1"; "vars" ] in
        check_bool "FLUX unsafe" true (contains ~needle:"FLUX" t1);
        check_bool "blocked" true (contains ~needle:"[blocked]" t1));
    case "editing a workload through the pane ids" (fun () ->
        let sess = session "tridiag" ~unit_name:"TRIDIA" in
        (* make the back-substitution loop body trivially parallel *)
        let blocked =
          List.filter
            (fun (l : Dependence.Loopnest.loop) ->
              not (Ped.Session.is_parallelizable sess (loop_sid l)))
            (Ped.Session.loops sess)
        in
        check_int "two blocked" 2 (List.length blocked);
        let back = List.nth blocked 1 in
        let body =
          Dependence.Loopnest.body_stmts (Ped.Session.env sess).Dependence.Depenv.nest
            (loop_sid back)
        in
        let sid = (List.hd body).Ast.sid in
        (match
           Ped.Session.edit_stmt sess sid "X(I) = D(I) / B(I)"
         with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        let blocked' =
          List.filter
            (fun (l : Dependence.Loopnest.loop) ->
              not (Ped.Session.is_parallelizable sess (loop_sid l)))
            (Ped.Session.loops sess)
        in
        check_int "one blocked after edit" 1 (List.length blocked'));
    case "panalyze-style full-suite sweep stays consistent" (fun () ->
        (* every workload: session counts equal raw analysis counts *)
        List.iter
          (fun (w : Workloads.t) ->
            let sess =
              Ped.Session.load (Workloads.program w)
                ~unit_name:(Workloads.main_unit w)
            in
            let n1 = List.length (Ped.Session.parallelizable_loops sess) in
            Ped.Session.reanalyze sess;
            let n2 = List.length (Ped.Session.parallelizable_loops sess) in
            check_int (w.Workloads.name ^ " stable under reanalysis") n1 n2)
          Workloads.all);
  ]
