open Dependence
open Util

let suite =
  [
    case "bigger loops cost more" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(100), B(10)\n      DO I = 1, 100\n        A(I) = FLOAT(I)\n      ENDDO\n      DO J = 1, 10\n        B(J) = FLOAT(J)\n      ENDDO\n      END\n"
        in
        let big = Perf.Estimator.stmt_cost env (loop_by_iv env "I").Loopnest.lstmt in
        let small = Perf.Estimator.stmt_cost env (loop_by_iv env "J").Loopnest.lstmt in
        check_bool "bigger" true (big.Perf.Estimator.cycles > small.Perf.Estimator.cycles);
        check_bool "exact" true big.Perf.Estimator.exact_trips);
    case "unknown trips flagged approximate" (fun () ->
        let env =
          env_of "      PROGRAM P\n      DO I = 1, N\n        X = I\n      ENDDO\n      END\n"
        in
        let e = Perf.Estimator.stmt_cost env (loop_by_iv env "I").Loopnest.lstmt in
        check_bool "approx" false e.Perf.Estimator.exact_trips);
    case "rank_loops orders by share" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(100), B(10)\n      DO I = 1, 100\n        A(I) = FLOAT(I)\n      ENDDO\n      DO J = 1, 10\n        B(J) = FLOAT(J)\n      ENDDO\n      END\n"
        in
        match Perf.Estimator.rank_loops env with
        | (top, _, share) :: _ ->
          check_string "I first" "I" top.Loopnest.header.Fortran_front.Ast.dvar;
          check_bool "share sane" true (share > 0.5 && share <= 1.0)
        | [] -> Alcotest.fail "no loops ranked");
    case "parallel estimate divides by processors" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(256)\n      PARALLEL DO I = 1, 256\n        A(I) = FLOAT(I)\n      ENDDO\n      END\n"
        in
        let s = Perf.Estimator.predicted_speedup env ~processors:8 in
        check_bool "speedup > 3" true (s > 3.0);
        let s1 = Perf.Estimator.predicted_speedup env ~processors:1 in
        check_bool "one proc no speedup" true (s1 <= 1.05));
    case "estimator agrees with simulator on ranking" (fun () ->
        (* relative ordering of variants: parallel version predicted and
           measured faster *)
        let src_seq =
          "      PROGRAM P\n      REAL A(64)\n      DO I = 1, 64\n        A(I) = FLOAT(I)\n      ENDDO\n      PRINT *, A(1)\n      END\n"
        in
        let src_par =
          "      PROGRAM P\n      REAL A(64)\n      PARALLEL DO I = 1, 64\n        A(I) = FLOAT(I)\n      ENDDO\n      PRINT *, A(1)\n      END\n"
        in
        let est u =
          (Perf.Estimator.parallel_unit_cost (Depenv.make (parse_unit u))).Perf.Estimator.cycles
        in
        let sim u = (Sim.Interp.run (parse u)).Sim.Interp.cycles in
        check_bool "estimator prefers parallel" true (est src_par < est src_seq);
        check_bool "simulator agrees" true (sim src_par < sim src_seq));
    case "machine with more processors is faster on parallel code" (fun () ->
        let src =
          "      PROGRAM P\n      REAL A(128)\n      PARALLEL DO I = 1, 128\n        A(I) = FLOAT(I) * 2.0\n      ENDDO\n      END\n"
        in
        let run p =
          (Sim.Interp.run ~machine:(Perf.Machine.with_processors p Perf.Machine.default)
             (parse src)).Sim.Interp.cycles
        in
        check_bool "2 < 1" true (run 2 < run 1);
        check_bool "8 < 2" true (run 8 < run 2));
  ]

let interproc_suite =
  [
    case "program_costs charges callees" (fun () ->
        let p =
          parse
            "      PROGRAM P\n      DO I = 1, 10\n        CALL WORK\n      ENDDO\n      END\n      SUBROUTINE WORK\n      REAL A(100)\n      DO J = 1, 100\n        A(J) = FLOAT(J) * 2.0\n      ENDDO\n      END\n"
        in
        let costs = Perf.Estimator.program_costs p in
        let main = List.assoc "P" costs and work = List.assoc "WORK" costs in
        check_bool "work nontrivial" true (work > 100.0);
        check_bool "main includes 10 calls" true (main > 10.0 *. work));
    case "session loops pane uses callee costs" (fun () ->
        let w = Option.get (Workloads.by_name "spec77x") in
        let sess =
          Ped.Session.load (Workloads.program w)
            ~unit_name:(Workloads.main_unit w)
        in
        (* the time-step loop (calls COLUMN) must rank far above the
           diagnostics loop *)
        match
          Perf.Estimator.rank_loops
            ~callee_cost:(Ped.Session.callee_cost sess) (Ped.Session.env sess)
        with
        | (top, _, share) :: _ ->
          check_string "STEP ranks first" "STEP"
            top.Dependence.Loopnest.header.Fortran_front.Ast.dvar;
          check_bool "dominant" true (share > 0.5)
        | [] -> Alcotest.fail "no loops");
  ]

let suite = suite @ interproc_suite

let schedule_suite =
  [
    case "cyclic beats block on triangular work" (fun () ->
        (* iteration i does i units of work: block scheduling piles the
           heavy tail onto the last processor *)
        let src =
          "      PROGRAM P\n      REAL A(64,64)\n      PARALLEL DO I = 1, 64\n        DO J = 1, I\n          A(I,J) = FLOAT(I + J)\n        ENDDO\n      ENDDO\n      PRINT *, A(64,1)\n      END\n"
        in
        let run sched =
          (Sim.Interp.run
             ~machine:(Perf.Machine.with_schedule sched Perf.Machine.default)
             (parse src)).Sim.Interp.cycles
        in
        let block = run Perf.Machine.Block in
        let cyclic = run Perf.Machine.Cyclic in
        check_bool "cyclic faster" true (cyclic < block);
        (* and rectangular work is indifferent (within one iteration) *)
        let src2 =
          "      PROGRAM P\n      REAL A(64)\n      PARALLEL DO I = 1, 64\n        A(I) = FLOAT(I)\n      ENDDO\n      PRINT *, A(64)\n      END\n"
        in
        let r sched =
          (Sim.Interp.run
             ~machine:(Perf.Machine.with_schedule sched Perf.Machine.default)
             (parse src2)).Sim.Interp.cycles
        in
        check_bool "same on uniform work" true
          (Float.abs (r Perf.Machine.Block -. r Perf.Machine.Cyclic) < 1.0));
  ]

let suite = suite @ schedule_suite
