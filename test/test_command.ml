(* Command-language coverage: every command path, including the error
   messages a user would see. *)

open Util

let sess () =
  let w = Option.get (Workloads.by_name "matmul") in
  Ped.Session.load (Workloads.program w) ~unit_name:"MATMUL"

let run t line = Ped.Command.run t line

let suite =
  [
    case "help lists every transformation" (fun () ->
        let t = sess () in
        let h = run t "help" in
        List.iter
          (fun name -> check_bool name true (contains ~needle:name h))
          Transform.Catalog.names);
    case "units marks the focus" (fun () ->
        let t = sess () in
        check_bool "focus arrow" true (contains ~needle:"<- focus" (run t "units")));
    case "unit errors on unknown name" (fun () ->
        let t = sess () in
        check_bool "error" true (contains ~needle:"error" (run t "unit NOWHERE")));
    case "select errors on a non-loop" (fun () ->
        let t = sess () in
        check_bool "error" true (contains ~needle:"error" (run t "select s99999"));
        check_bool "error2" true (contains ~needle:"error" (run t "select bogus")));
    case "src find filters lines" (fun () ->
        let t = sess () in
        let out = run t "src find C(I" in
        check_bool "only matching" true
          (List.for_all
             (fun l -> String.trim l = "" || contains ~needle:"C(I" l)
             (String.split_on_char '\n' out)));
    case "deps filter composition and reset" (fun () ->
        let t = sess () in
        ignore (run t "deps var C carried");
        let shown = List.length (Ped.Session.visible_deps t) in
        ignore (run t "deps reset");
        let after = List.length (Ped.Session.visible_deps t) in
        check_bool "reset shows more" true (after >= shown));
    case "deps rejects unknown filter words" (fun () ->
        let t = sess () in
        check_bool "error" true (contains ~needle:"error" (run t "deps sideways")));
    case "mark errors on unknown id and bad status" (fun () ->
        let t = sess () in
        check_bool "bad id" true (contains ~needle:"error" (run t "mark 99999 reject"));
        check_bool "bad status" true (contains ~needle:"error" (run t "mark 1 sometimes")));
    case "assert usage errors" (fun () ->
        let t = sess () in
        check_bool "bad value" true (contains ~needle:"error" (run t "assert N = lots"));
        check_bool "bad range" true (contains ~needle:"error" (run t "assert N in 9 2")));
    case "preview and apply reject bad arguments" (fun () ->
        let t = sess () in
        check_bool "bad args" true
          (contains ~needle:"error" (run t "preview interchange"));
        check_bool "unknown transform" true
          (contains ~needle:"error" (run t "apply frobnicate l1")));
    case "apply ! forces an unsafe transformation" (fun () ->
        let w = Option.get (Workloads.by_name "tridiag") in
        let t = Ped.Session.load (Workloads.program w) ~unit_name:"TRIDIA" in
        let out = run t "apply parallelize l2" in
        check_bool "refused" true (contains ~needle:"NOT applied" out);
        let out = run t "apply parallelize l2 !" in
        check_bool "forced" true (contains ~needle:"parallelize applied" out));
    case "edit usage and unknown statement" (fun () ->
        let t = sess () in
        check_bool "bad target" true
          (contains ~needle:"error" (run t "edit s99999 X = 1")));
    case "undo on empty stack" (fun () ->
        let t = sess () in
        check_bool "error" true (contains ~needle:"error" (run t "undo")));
    case "history before any change" (fun () ->
        let t = sess () in
        check_bool "no changes" true (contains ~needle:"no changes" (run t "history")));
    case "write to an unwritable path errors" (fun () ->
        let t = sess () in
        check_bool "error" true
          (contains ~needle:"error" (run t "write /nonexistent-dir/x.f")));
    case "simulate reports output lines" (fun () ->
        let t = sess () in
        check_bool "output" true (contains ~needle:"output:" (run t "simulate 4")));
    case "script echoes commands" (fun () ->
        let t = sess () in
        match Ped.Command.script t [ "loops"; "stats" ] with
        | [ a; b ] ->
          check_bool "echo1" true (contains ~needle:"ped> loops" a);
          check_bool "echo2" true (contains ~needle:"ped> stats" b)
        | _ -> Alcotest.fail "expected two transcript entries");
    case "why slow runs a whole-program diagnosis" (fun () ->
        let t = sess () in
        let out = run t "why slow" in
        check_bool "no error" false (contains ~needle:"error" out);
        check_bool "summary header" true
          (contains ~needle:"performance diagnosis:" out);
        check_bool "coverage line" true
          (contains ~needle:"parallel coverage" out);
        (* nothing is parallelized yet, so the run is all serial *)
        check_bool "serial fraction fires" true
          (contains ~needle:"serial fraction" out));
    case "why slow focuses one loop" (fun () ->
        let t = sess () in
        ignore (run t "apply parallelize l3");
        let out = run t "why slow l3" in
        check_bool "no error" false (contains ~needle:"error" out);
        check_bool "summary header" true
          (contains ~needle:"performance diagnosis:" out));
    case "why slow usage errors" (fun () ->
        let t = sess () in
        check_bool "bad token" true
          (contains ~needle:"usage: why slow" (run t "why slow bogus"));
        check_bool "too many args" true
          (contains ~needle:"usage: why slow" (run t "why slow l1 l2")));
    case "empty line is a no-op" (fun () ->
        let t = sess () in
        check_string "empty" "" (run t "   "));
  ]

let diff_suite =
  [
    case "diff shows transformed lines only" (fun () ->
        let t = sess () in
        check_string "clean" "no changes" (run t "diff");
        ignore (run t "apply interchange l3");
        ignore (run t "apply parallelize l3");
        let d = run t "diff" in
        check_bool "removal" true (contains ~needle:"- " d);
        check_bool "addition" true (contains ~needle:"+ " d);
        check_bool "parallel line" true (contains ~needle:"PARALLEL DO" d));
  ]

let suite = suite @ diff_suite
