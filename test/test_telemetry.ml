(* lib/telemetry: counters, histograms, span discipline, concurrent
   emission from real domains, and the exporters' structure. *)

open Util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* digits → '#', for comparing timing lines byte-for-byte in shape *)
let mask = String.map (fun c -> if c >= '0' && c <= '9' then '#' else c)

let substring_count hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i acc =
    if i + n > h then acc
    else if String.sub hay i n = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let suite =
  [
    case "counters: incr, add, interning" (fun () ->
        let s = Telemetry.make () in
        let c = Telemetry.counter s "a" in
        Telemetry.incr c;
        Telemetry.add c 4;
        check_int "value" 5 (Telemetry.value c);
        (* same name → same handle *)
        Telemetry.incr (Telemetry.counter s "a");
        check_int "interned" 6 (Telemetry.value c);
        Telemetry.add_ns c 1_000L;
        check_int "add_ns" 1006 (Telemetry.value c);
        Telemetry.incr (Telemetry.counter s "b");
        Alcotest.(check (list (pair string int)))
          "dump" [ ("a", 1006); ("b", 1) ]
          (List.sort compare (Telemetry.counters s)));
    case "null sink is inert" (fun () ->
        let c = Telemetry.counter Telemetry.null "x" in
        Telemetry.incr c;
        Telemetry.add c 5;
        check_int "dead counter" 0 (Telemetry.value c);
        let h = Telemetry.histogram Telemetry.null "h" in
        Telemetry.observe h 3;
        check_int "dead histogram" 0 (Telemetry.hist_count h);
        check_bool "metrics_on" false (Telemetry.metrics_on Telemetry.null);
        check_bool "recording" false (Telemetry.recording Telemetry.null);
        check_int "span still runs f" 42
          (Telemetry.span Telemetry.null "s" (fun () -> 42));
        check_bool "no spans" true (Telemetry.spans Telemetry.null = []);
        match Telemetry.set_recording Telemetry.null true with
        | () -> Alcotest.fail "set_recording on null should refuse"
        | exception Invalid_argument _ -> ());
    case "histogram: power-of-two bucketing" (fun () ->
        List.iter
          (fun (v, i) ->
            check_int (Printf.sprintf "bucket_index %d" v) i
              (Telemetry.bucket_index v))
          [ (-5, 0); (0, 0); (1, 1); (2, 2); (3, 2); (4, 3); (7, 3); (8, 4);
            (1023, 10); (1024, 11) ];
        let s = Telemetry.make () in
        let h = Telemetry.histogram s "h" in
        List.iter (Telemetry.observe h) [ 0; 1; 2; 3; 4; 1000; -9 ];
        check_int "count" 7 (Telemetry.hist_count h);
        check_int "sum (negatives clamp to 0)" 1010 (Telemetry.hist_sum h);
        Alcotest.(check (list (pair int int)))
          "buckets (upper bound, count)"
          [ (0, 2); (1, 1); (3, 2); (7, 1); (1023, 1) ]
          (Telemetry.hist_buckets h));
    case "histogram: quantiles" (fun () ->
        let s = Telemetry.make () in
        (* empty: every quantile is 0 *)
        let e = Telemetry.histogram s "empty" in
        check_int "empty p50" 0 (Telemetry.hist_quantile e 0.5);
        check_int "empty p99" 0 (Telemetry.hist_quantile e 0.99);
        (* single bucket: all observations answer with its upper bound *)
        let one = Telemetry.histogram s "one" in
        List.iter (Telemetry.observe one) [ 5; 6; 7 ];
        check_int "single-bucket p0+" 7 (Telemetry.hist_quantile one 0.01);
        check_int "single-bucket p50" 7 (Telemetry.hist_quantile one 0.5);
        check_int "single-bucket p100" 7 (Telemetry.hist_quantile one 1.0);
        (* multi-bucket: 10 cheap, 1 dear - the p50 answers from the
           cheap bucket, the tail quantiles from the dear one *)
        let m = Telemetry.histogram s "multi" in
        for _ = 1 to 10 do
          Telemetry.observe m 3
        done;
        Telemetry.observe m 1000;
        check_int "multi p50" 3 (Telemetry.hist_quantile m 0.5);
        check_int "multi p90" 3 (Telemetry.hist_quantile m 0.90);
        check_int "multi p95" 1023 (Telemetry.hist_quantile m 0.95);
        check_int "multi max" 1023 (Telemetry.hist_quantile m 1.0);
        (* out-of-range q clamps *)
        check_int "q < 0" 3 (Telemetry.hist_quantile m (-1.0));
        check_int "q > 1" 1023 (Telemetry.hist_quantile m 2.0);
        (* quantiles surface in metrics_json *)
        let j = Telemetry.metrics_json s in
        check_bool "p50 in metrics_json" true
          (substring_count j {|"p50":|} > 0);
        check_bool "p95 in metrics_json" true
          (substring_count j {|"p95":|} > 0));
    case "retained sink captures and drains spans" (fun () ->
        let s = Telemetry.retained () in
        check_bool "metrics on" true (Telemetry.metrics_on s);
        check_bool "recording" true (Telemetry.recording s);
        Telemetry.span s "a" (fun () -> Telemetry.span s "b" (fun () -> ()));
        let drained = Telemetry.drain_spans s in
        Alcotest.(check (list string))
          "drained names" [ "a"; "b" ]
          (List.map (fun r -> r.Telemetry.sp_name) drained);
        check_bool "drain resets" true (Telemetry.spans s = []);
        Telemetry.span s "c" (fun () -> ());
        Alcotest.(check (list string))
          "records again after drain" [ "c" ]
          (List.map (fun r -> r.Telemetry.sp_name) (Telemetry.drain_spans s)));
    case "spans: nesting, paths, args" (fun () ->
        let s = Telemetry.make ~record_spans:true () in
        Telemetry.span s "outer" (fun () ->
            Telemetry.span s ~args:[ ("k", "v") ] "inner" (fun () -> ()));
        match Telemetry.spans s with
        | [ o; i ] ->
          check_str "outer first (t0 order)" "outer" o.Telemetry.sp_name;
          Alcotest.(check (list string))
            "outer path" [ "outer" ] o.Telemetry.sp_path;
          Alcotest.(check (list string))
            "inner path" [ "outer"; "inner" ] i.Telemetry.sp_path;
          check_bool "inner within outer" true
            (o.Telemetry.sp_t0 <= i.Telemetry.sp_t0
            && i.Telemetry.sp_t1 <= o.Telemetry.sp_t1);
          Alcotest.(check (list (pair string string)))
            "args" [ ("k", "v") ] i.Telemetry.sp_args
        | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l));
    case "spans: exception safety and recording toggle" (fun () ->
        let s = Telemetry.make ~record_spans:true () in
        (try Telemetry.span s "boom" (fun () -> failwith "x")
         with Failure _ -> ());
        check_int "span closed on raise" 1 (List.length (Telemetry.spans s));
        Telemetry.set_recording s false;
        Telemetry.span s "off" (fun () -> ());
        check_int "not recorded when off" 1 (List.length (Telemetry.spans s));
        Telemetry.set_recording s true;
        Telemetry.span s "on" (fun () -> ());
        check_int "recorded again" 2 (List.length (Telemetry.spans s));
        Telemetry.reset_spans s;
        check_bool "reset" true (Telemetry.spans s = []));
    case "spans: close discipline" (fun () ->
        let s = Telemetry.make ~record_spans:true () in
        let a = Telemetry.open_span s "a" in
        let b = Telemetry.open_span s "b" in
        (match Telemetry.close_span a with
        | () -> Alcotest.fail "out-of-order close should raise"
        | exception Telemetry.Discipline _ -> ());
        Telemetry.close_span b;
        (match Telemetry.close_span b with
        | () -> Alcotest.fail "double close should raise"
        | exception Telemetry.Discipline _ -> ());
        Telemetry.close_span a;
        check_int "both spans landed" 2 (List.length (Telemetry.spans s)));
    case "timed: accumulates and returns" (fun () ->
        let s = Telemetry.make () in
        let c = Telemetry.counter s "ns" in
        check_int "result" 7 (Telemetry.timed s c (fun () -> 7));
        check_bool "nanoseconds accumulated" true (Telemetry.value c >= 0);
        check_int "null timed still runs f" 3
          (Telemetry.timed Telemetry.null
             (Telemetry.counter Telemetry.null "ns")
             (fun () -> 3)));
    case "concurrent domains: no torn records, one lane each" (fun () ->
        let s = Telemetry.make ~record_spans:true () in
        let per = 200 in
        let doms =
          List.init 4 (fun _ ->
              Domain.spawn (fun () ->
                  for _ = 1 to per do
                    Telemetry.span s "outer" (fun () ->
                        Telemetry.span s "inner" (fun () ->
                            Telemetry.incr (Telemetry.counter s "n")))
                  done;
                  (Domain.self () :> int)))
        in
        let tids = List.map Domain.join doms in
        check_int "counter total" (4 * per)
          (Telemetry.value (Telemetry.counter s "n"));
        let sp = Telemetry.spans s in
        check_int "span total" (4 * per * 2) (List.length sp);
        List.iter
          (fun (r : Telemetry.span_record) ->
            check_bool "path well-formed" true
              (r.Telemetry.sp_path = [ "outer" ]
              || r.Telemetry.sp_path = [ "outer"; "inner" ]);
            check_bool "times ordered" true
              (r.Telemetry.sp_t0 <= r.Telemetry.sp_t1))
          sp;
        List.iter
          (fun tid ->
            check_int
              (Printf.sprintf "domain %d emitted its own" tid)
              (per * 2)
              (List.length
                 (List.filter (fun r -> r.Telemetry.sp_tid = tid) sp)))
          tids;
        (* the accessor's (tid, t0) sort *)
        let rec sorted = function
          | a :: (b :: _ as rest) ->
            (a.Telemetry.sp_tid < b.Telemetry.sp_tid
            || (a.Telemetry.sp_tid = b.Telemetry.sp_tid
               && a.Telemetry.sp_t0 <= b.Telemetry.sp_t0))
            && sorted rest
          | _ -> true
        in
        check_bool "sorted by (tid, t0)" true (sorted sp));
    case "chrome trace: envelope, lanes, events" (fun () ->
        let s = Telemetry.make ~record_spans:true () in
        Telemetry.span s "a" (fun () ->
            Telemetry.span s ~args:[ ("q", "\"quoted\"") ] "b" (fun () -> ()));
        let j = Telemetry.chrome_trace s in
        check_bool "envelope" true
          (String.length j > 16 && String.sub j 0 16 = {|{"traceEvents":[|});
        check_int "one X event per span" 2 (substring_count j {|"ph":"X"|});
        check_int "one thread_name lane" 1 (substring_count j {|"ph":"M"|});
        check_bool "escapes args" true
          (substring_count j {|\"quoted\"|} = 1));
    case "metrics json and profile report" (fun () ->
        let s = Telemetry.make ~record_spans:true () in
        Telemetry.add (Telemetry.counter s "c1") 3;
        Telemetry.observe (Telemetry.histogram s "h1") 5;
        Telemetry.span s "sp" (fun () -> ());
        let m = Telemetry.metrics_json s in
        check_bool "counters object" true (substring_count m {|"c1":3|} = 1);
        check_bool "histograms object" true (substring_count m {|"h1"|} = 1);
        let p = Telemetry.profile_report s in
        check_bool "report names span" true (substring_count p "sp" >= 1);
        check_bool "report names counter" true (substring_count p "c1" = 1));
    case "engine report: --engine-stats format unchanged" (fun () ->
        let w = Option.get (Workloads.by_name "matmul") in
        let sess =
          Ped.Session.load (Workloads.program w)
            ~unit_name:(Workloads.main_unit w)
        in
        let st = Ped.Session.engine_stats sess in
        let lines =
          String.split_on_char '\n' (Ped.Session.engine_report sess)
        in
        check_int "line count" 6 (List.length lines);
        check_str "header" "engine: incremental (caching)" (List.nth lines 0);
        check_str "unit analyses"
          (Printf.sprintf
             "  unit analyses : %d cached, %d computed (%d invalidated)"
             st.Engine.env_hits st.Engine.env_misses st.Engine.invalidations)
          (List.nth lines 1);
        check_str "summaries"
          (Printf.sprintf "  summaries     : %d cached, %d built"
             st.Engine.summary_hits st.Engine.summary_builds)
          (List.nth lines 2);
        check_str "ddg buckets"
          (Printf.sprintf "  ddg buckets   : %d cached, %d computed"
             st.Engine.ddg_bucket_hits st.Engine.ddg_bucket_misses)
          (List.nth lines 3);
        check_str "pair tests"
          (Printf.sprintf "  pair tests run: %d" st.Engine.tests_run)
          (List.nth lines 4);
        check_str "time line shape"
          "  time          : summary #.####s, scalar env #.####s, ddg #.####s"
          (mask (List.nth lines 5)));
  ]
