(* Shared helpers for the test suites. *)

open Fortran_front

let parse src = Parser.parse_program ~file:"test.f" src

let parse_unit src =
  match (parse src).Ast.punits with
  | u :: _ -> u
  | [] -> failwith "empty program"

(* Wrap loose statements in a PROGRAM for quick parsing. *)
let parse_body ?(decls = "") body =
  let src =
    Printf.sprintf "      PROGRAM T\n%s\n%s\n      END\n" decls body
  in
  parse_unit src

let env_of ?config ?asserts src = Dependence.Depenv.make ?config ?asserts (parse_unit src)

let ddg_of env = Dependence.Ddg.compute env

(* The i-th loop (preorder) of the unit. *)
let nth_loop env i =
  List.nth (Dependence.Loopnest.loops env.Dependence.Depenv.nest) i

let loop_by_iv env iv =
  List.find
    (fun (l : Dependence.Loopnest.loop) ->
      String.equal l.Dependence.Loopnest.header.Ast.dvar iv)
    (Dependence.Loopnest.loops env.Dependence.Depenv.nest)

let loop_sid lp = lp.Dependence.Loopnest.lstmt.Ast.sid

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let run_output ?honor_parallel ?par_order src =
  (Sim.Interp.run ?honor_parallel ?par_order (parse src)).Sim.Interp.output

let case name f = Alcotest.test_case name `Quick f

(* Property tests draw from QCHECK_SEED when set (reproduction),
   otherwise from fresh entropy; every suite routes through here so a
   failing property always ends with the command that replays it. *)
let qcheck_seed =
  lazy
    (match Sys.getenv_opt "QCHECK_SEED" with
    | Some s when int_of_string_opt (String.trim s) <> None ->
      Option.get (int_of_string_opt (String.trim s))
    | _ ->
      Random.self_init ();
      Random.int 1_000_000_000)

let qcheck_case test =
  let seed = Lazy.force qcheck_seed in
  let name, speed, run =
    QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]) test
  in
  ( name,
    speed,
    fun () ->
      try run ()
      with e ->
        Printf.eprintf "property failed: rerun with QCHECK_SEED=%d\n%!" seed;
        raise e )

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  nl = 0
  ||
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0
