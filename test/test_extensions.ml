(* Tests for the implemented-extension features: array privatization,
   tiling, loop addressing, call-graph/outline commands, DATA
   statements, write-out. *)

open Fortran_front
open Dependence
open Util

let suite =
  [
    case "array privatization: sweep-covered work array" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(8,8), W(8)\n      DO I = 1, 8\n        DO J = 1, 8\n          W(J) = FLOAT(I*J)\n        ENDDO\n        DO J = 1, 8\n          A(I,J) = W(J) + 1.0\n        ENDDO\n      ENDDO\n      PRINT *, A(4,4)\n      END\n"
        in
        let i = loop_sid (loop_by_iv env "I") in
        check_bool "W private" true (Arrayprivate.privatizable env i "W");
        let ddg = ddg_of env in
        check_bool "loop parallel" true (Ddg.parallelizable env ddg i));
    case "array privatization: live-after array is not private" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(8,8), W(8)\n      DO I = 1, 8\n        DO J = 1, 8\n          W(J) = FLOAT(I*J)\n        ENDDO\n        DO J = 1, 8\n          A(I,J) = W(J)\n        ENDDO\n      ENDDO\n      PRINT *, W(3)\n      END\n"
        in
        let i = loop_sid (loop_by_iv env "I") in
        check_bool "W not private (read after)" false
          (Arrayprivate.privatizable env i "W"));
    case "array privatization: partial sweep does not cover" (fun () ->
        (* the write sweep covers 2..8 but iteration reads W(J) for 1..8 *)
        let env =
          env_of
            "      PROGRAM P\n      REAL A(8,8), W(8)\n      DO I = 1, 8\n        DO J = 2, 8\n          W(J) = FLOAT(I*J)\n        ENDDO\n        DO J = 1, 8\n          A(I,J) = W(J)\n        ENDDO\n      ENDDO\n      PRINT *, A(4,4)\n      END\n"
        in
        let i = loop_sid (loop_by_iv env "I") in
        check_bool "W not private (bounds differ)" false
          (Arrayprivate.privatizable env i "W"));
    case "array privatization: conditional write does not cover" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(8,8), W(8)\n      DO I = 1, 8\n        DO J = 1, 8\n          IF (J .GT. 2) THEN\n            W(J) = FLOAT(I*J)\n          ENDIF\n        ENDDO\n        DO J = 1, 8\n          A(I,J) = W(J)\n        ENDDO\n      ENDDO\n      PRINT *, A(4,4)\n      END\n"
        in
        let i = loop_sid (loop_by_iv env "I") in
        check_bool "W not private (guarded write)" false
          (Arrayprivate.privatizable env i "W"));
    case "array privatization: straight-line same-subscript coverage" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(8), W(8)\n      DO I = 1, 8\n        W(1) = FLOAT(I)\n        A(I) = W(1) * 2.0\n      ENDDO\n      PRINT *, A(4)\n      END\n"
        in
        let i = loop_sid (loop_by_iv env "I") in
        check_bool "W private (rule A)" true (Arrayprivate.privatizable env i "W");
        let ddg = ddg_of env in
        check_bool "parallel" true (Ddg.parallelizable env ddg i));
    case "array privatization: config switch disables" (fun () ->
        let config =
          { Depenv.full_config with Depenv.use_array_privatization = false }
        in
        let env =
          env_of ~config
            "      PROGRAM P\n      REAL A(8), W(8)\n      DO I = 1, 8\n        W(1) = FLOAT(I)\n        A(I) = W(1) * 2.0\n      ENDDO\n      PRINT *, A(4)\n      END\n"
        in
        let i = loop_sid (loop_by_iv env "I") in
        check_bool "disabled" false (Arrayprivate.privatizable env i "W"));
    case "arrpriv workload semantics under parallel orders" (fun () ->
        let w = Option.get (Workloads.by_name "arrpriv") in
        let sess =
          Ped.Session.load (Workloads.program w)
            ~unit_name:(Workloads.main_unit w)
        in
        List.iter
          (fun (l : Loopnest.loop) ->
            if Ped.Session.is_parallelizable sess (loop_sid l) then
              ignore
                (Ped.Session.transform sess "parallelize"
                   (Transform.Catalog.On_loop (loop_sid l))))
          (Ped.Session.loops sess);
        let p = (Ped.Session.program sess) in
        let a = Sim.Interp.run ~par_order:Sim.Interp.Seq p in
        let b = Sim.Interp.run ~par_order:Sim.Interp.Reverse p in
        (* NOTE: the privatized work array is still shared storage in
           the simulator; sequential execution of iterations in any
           order is safe because each iteration rewrites it fully *)
        check_bool "order independent" true
          (Sim.Interp.outputs_match a.Sim.Interp.output b.Sim.Interp.output));
    case "tile: diagnosis and semantics on matmul init nest" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(12,12)\n      S = 0.0\n      DO I = 1, 12\n        DO J = 1, 12\n          A(I,J) = FLOAT(I) * 3.0 + FLOAT(J)\n          S = S + A(I,J)\n        ENDDO\n      ENDDO\n      PRINT *, S\n      END\n"
        in
        let ddg = ddg_of env in
        let i = loop_sid (loop_by_iv env "I") in
        let d = Transform.Tile.diagnose env ddg i ~block:4 in
        check_bool "ok" true (Transform.Diagnosis.ok d);
        let u' = Transform.Tile.apply env ddg i ~block:4 in
        let before = Sim.Interp.run { Ast.punits = [ env.Depenv.punit ] } in
        let after = Sim.Interp.run { Ast.punits = [ u' ] } in
        check_bool "semantics" true
          (Sim.Interp.outputs_match before.Sim.Interp.output
             after.Sim.Interp.output);
        (* the tiled program has three loops *)
        let env' = Depenv.remake env u' in
        check_int "three loops" 3
          (List.length (Loopnest.loops env'.Depenv.nest)));
    case "tile: refuses non-nests" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      REAL A(12)\n      DO I = 1, 12\n        A(I) = 1.0\n      ENDDO\n      END\n"
        in
        let ddg = ddg_of env in
        let d =
          Transform.Tile.diagnose env ddg (loop_sid (loop_by_iv env "I"))
            ~block:4
        in
        check_bool "inapplicable" false d.Transform.Diagnosis.applicable);
    case "command: lN loop addressing" (fun () ->
        let w = Option.get (Workloads.by_name "matmul") in
        let sess =
          Ped.Session.load (Workloads.program w) ~unit_name:"MATMUL"
        in
        let out = Ped.Command.run sess "select l3" in
        check_bool "selected the K loop" true (contains ~needle:"selected" out);
        let k = loop_by_iv (Ped.Session.env sess) "K" in
        check_bool "selection is K" true
          ((Ped.Session.selected sess) = Some (loop_sid k)));
    case "command: callgraph and outline" (fun () ->
        let w = Option.get (Workloads.by_name "spec77x") in
        let sess =
          Ped.Session.load (Workloads.program w) ~unit_name:"SPEC77"
        in
        let cg = Ped.Command.run sess "callgraph" in
        check_bool "edges" true (contains ~needle:"SPEC77 -> COLUMN" cg);
        let dot = Ped.Command.run sess "callgraph dot" in
        check_bool "dot" true (contains ~needle:"digraph" dot);
        let o = Ped.Command.run sess "outline" in
        check_bool "has call" true (contains ~needle:"CALL COLUMN" o);
        check_bool "has loop" true (contains ~needle:"DO STEP" o));
    case "command: write saves parseable Fortran" (fun () ->
        let w = Option.get (Workloads.by_name "daxpy") in
        let sess =
          Ped.Session.load (Workloads.program w) ~unit_name:"DAXPY"
        in
        ignore (Ped.Command.run sess "apply parallelize l2");
        let path = Filename.temp_file "ped" ".f" in
        let out = Ped.Command.run sess (Printf.sprintf "write %s" path) in
        check_bool "wrote" true (contains ~needle:"wrote" out);
        let ic = open_in path in
        let n = in_channel_length ic in
        let src = really_input_string ic n in
        close_in ic;
        Sys.remove path;
        check_bool "has PARALLEL DO" true (contains ~needle:"PARALLEL DO" src);
        let p = Parser.parse_program ~file:"saved.f" src in
        check_int "one unit" 1 (List.length p.Ast.punits));
    case "DATA: round-trips through the pretty printer" (fun () ->
        let u =
          parse_unit
            "      PROGRAM P\n      REAL X\n      DATA X /-2.5/\n      PRINT *, X\n      END\n"
        in
        let printed = Pretty.unit_to_string u in
        check_bool "prints DATA" true (contains ~needle:"DATA X" printed);
        let u2 = parse_unit printed in
        let d = List.find (fun (d : Ast.decl) -> d.Ast.dname = "X") u2.Ast.decls in
        check_bool "kept" true (d.Ast.data_init <> None));
    case "sympro: constants stage unlocks loop 2, symbolics loop 3" (fun () ->
        let w = Option.get (Workloads.by_name "sympro") in
        let p = Workloads.program w in
        let count config =
          List.fold_left
            (fun acc u ->
              let env = Depenv.make ~config u in
              let ddg = Ddg.compute env in
              acc
              + List.length
                  (List.filter
                     (fun (l : Loopnest.loop) ->
                       Ddg.parallelizable env ddg (loop_sid l))
                     (Loopnest.loops env.Depenv.nest)))
            0 p.Ast.punits
        in
        let base = count Depenv.base_config in
        let const = count { Depenv.base_config with Depenv.use_constants = true } in
        let symb =
          count
            { Depenv.base_config with Depenv.use_constants = true;
              use_symbolics = true }
        in
        check_int "base" 1 base;
        check_int "+const" 2 const;
        check_int "+symb" 3 symb);
  ]

let more =
  [
    case "deps dot renders the selection's dependences" (fun () ->
        let w = Option.get (Workloads.by_name "tridiag") in
        let sess = Ped.Session.load (Workloads.program w) ~unit_name:"TRIDIA" in
        let blocked =
          List.find
            (fun (l : Loopnest.loop) ->
              not (Ped.Session.is_parallelizable sess (loop_sid l)))
            (Ped.Session.loops sess)
        in
        ignore (Ped.Command.run sess (Printf.sprintf "select s%d" (loop_sid blocked)));
        let dot = Ped.Command.run sess "deps dot" in
        check_bool "digraph" true (contains ~needle:"digraph ddg" dot);
        check_bool "labeled true dep" true (contains ~needle:"true" dot));
    case "advisor suggests expansion for last-value escapees" (fun () ->
        let sess =
          Ped.Session.load_source ~file:"t.f"
            "      PROGRAM P\n      REAL A(64), T\n      DO I = 1, 64\n        T = FLOAT(I) * 2.0\n        A(I) = T + 1.0\n      ENDDO\n      PRINT *, T\n      END\n"
            ~unit_name:None
        in
        let sugg = Ped.Advisor.advise sess in
        check_bool "expand suggested" true
          (List.exists
             (fun (s : Ped.Advisor.suggestion) -> s.Ped.Advisor.action = "expand")
             sugg));
    case "expand then parallelize unlocks the escapee loop" (fun () ->
        let sess =
          Ped.Session.load_source ~file:"t.f"
            "      PROGRAM P\n      REAL A(64), T\n      DO I = 1, 64\n        T = FLOAT(I) * 2.0\n        A(I) = T + 1.0\n      ENDDO\n      PRINT *, T\n      END\n"
            ~unit_name:None
        in
        let l1 = List.hd (Ped.Session.loops sess) in
        check_bool "blocked before" false
          (Ped.Session.is_parallelizable sess (loop_sid l1));
        (match
           Ped.Session.transform sess "expand"
             (Transform.Catalog.With_var (loop_sid l1, "T"))
         with
        | Ok (_, true) -> ()
        | Ok (_, false) -> Alcotest.fail "expand not applied"
        | Error e -> Alcotest.fail e);
        let l1 = List.hd (Ped.Session.loops sess) in
        check_bool "parallel after" true
          (Ped.Session.is_parallelizable sess (loop_sid l1));
        (match Ped.Session.simulate sess with
        | Ok (_, _, out) -> check_string "T preserved" "128" (List.hd out)
        | Error e -> Alcotest.fail e));
  ]

let suite = suite @ more

let range_suite =
  [
    case "asserted ranges do not apply to subscript offsets" (fun () ->
        (* A(I) = A(I+M): the range on M bounds nothing here — only
           trip counts use ranges; the dependence stays assumed *)
        let asserts =
          { Depenv.no_assertions with
            Depenv.asserted_ranges = [ ("M", 100, 200) ] }
        in
        (* also range the loop bound so the trip count is bounded *)
        let env =
          env_of ~asserts
            "      PROGRAM P\n      REAL A(400)\n      INTEGER M\n      DO I = 1, 50\n        A(I) = A(I+M)\n      ENDDO\n      END\n"
        in
        let ddg = ddg_of env in
        (* ranges bound trip counts only; a symbolic subscript offset
           still defeats the tests (conservative) *)
        check_bool "blocked (symbolic offset)" false
          (Ddg.parallelizable env ddg (loop_sid (loop_by_iv env "I"))));
    case "asserted trip range alone cannot prove existence" (fun () ->
        (* N in [4,60]: trip bounded above by 60; A(I) vs A(I+30) may
           or may not overlap depending on the true N — the dep must
           stay pending, never proven *)
        let asserts =
          { Depenv.no_assertions with
            Depenv.asserted_ranges = [ ("N", 4, 60) ] }
        in
        let env =
          env_of ~asserts
            "      PROGRAM P\n      REAL A(200)\n      INTEGER N\n      DO I = 1, N\n        A(I) = A(I+30)\n      ENDDO\n      END\n"
        in
        let ddg = ddg_of env in
        let blockers = Ddg.blocking env ddg (loop_sid (loop_by_iv env "I")) in
        check_bool "still blocked" true (blockers <> []);
        check_bool "pending, not proven" true
          (List.for_all (fun (d : Ddg.dep) -> not d.Ddg.exact) blockers));
    case "asserted trip range disproves when small enough" (fun () ->
        (* N in [1,20]: trip at most 20, offset 30 > 19 -> independent *)
        let asserts =
          { Depenv.no_assertions with
            Depenv.asserted_ranges = [ ("N", 1, 20) ] }
        in
        let env =
          env_of ~asserts
            "      PROGRAM P\n      REAL A(200)\n      INTEGER N\n      DO I = 1, N\n        A(I) = A(I+30)\n      ENDDO\n      END\n"
        in
        let ddg = ddg_of env in
        check_bool "parallel" true
          (Ddg.parallelizable env ddg (loop_sid (loop_by_iv env "I"))));
    case "assert in command" (fun () ->
        let sess =
          Ped.Session.load_source ~file:"t.f"
            "      PROGRAM P\n      REAL A(200)\n      INTEGER N\n      DO I = 1, N\n        A(I) = A(I+30)\n      ENDDO\n      END\n"
            ~unit_name:None
        in
        let l = List.hd (Ped.Session.loops sess) in
        check_bool "blocked" false (Ped.Session.is_parallelizable sess (loop_sid l));
        let out = Ped.Command.run sess "assert N in 1 20" in
        check_bool "ack" true (contains ~needle:"asserted" out);
        let l = List.hd (Ped.Session.loops sess) in
        check_bool "unlocked" true (Ped.Session.is_parallelizable sess (loop_sid l)));
  ]

let suite = suite @ range_suite
