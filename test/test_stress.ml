(* The stress-workload factory (lib/oracle Stress).

   Determinism is the load-bearing property: every stress program must
   be reproducible from (seed, profile) alone — byte-identical source
   and a stable fingerprint — regardless of how many statements any
   other code allocated first, because that is what makes a bench
   number or a fuzz failure citable across processes.  On top of that
   the suite pins the factory's integration points: the parser
   round-trips the 100k-line flagship byte-for-byte, an incremental
   session over a stress program equals from-scratch analysis, the
   pooled analyzer equals the sequential build on a many-unit
   program, and the fuzz driver's seed resolution (CLI, then
   QCHECK_SEED, then the default) is a pure function. *)

open Fortran_front
open Dependence
open Util

let digest (g : Ddg.t) = Digest.to_hex (Digest.string (Marshal.to_string g []))

(* Burn a batch of fresh statement ids, so a test can prove the
   factory's output does not depend on the global sid counter. *)
let perturb_sid_counter () =
  ignore (parse "      PROGRAM NOISE\n      T = 1.0\n      T = T + 2.0\n      END\n")

(* ------------------------------------------------------------------ *)
(* determinism                                                         *)
(* ------------------------------------------------------------------ *)

let same_seed_same_program () =
  List.iter
    (fun (p : Oracle.Stress.profile) ->
      let prof = Oracle.Stress.tiny p in
      let p1 = Oracle.Stress.generate ~seed:7 prof in
      let src1 = Pretty.program_to_string p1 in
      let fp1 = Oracle.Stress.fingerprint p1 in
      perturb_sid_counter ();
      let p2 = Oracle.Stress.generate ~seed:7 prof in
      check_string (p.Oracle.Stress.sp_name ^ ": source bytes") src1
        (Pretty.program_to_string p2);
      check_string (p.Oracle.Stress.sp_name ^ ": fingerprint") fp1
        (Oracle.Stress.fingerprint p2);
      (* and a different seed is a different program *)
      check_bool (p.Oracle.Stress.sp_name ^ ": seed matters") false
        (String.equal fp1
           (Oracle.Stress.fingerprint (Oracle.Stress.generate ~seed:8 prof))))
    Oracle.Stress.all

let fingerprint_survives_reparse () =
  (* the fingerprint renumbers before hashing, so parsing the same
     bytes under different global sid-counter states must produce the
     same fingerprint — the cross-process stability the CI pins with
     two [ped stress] runs *)
  let prof = Oracle.Stress.tiny Oracle.Stress.deep in
  let src = Oracle.Stress.source ~seed:3 prof in
  let fp_of s =
    Oracle.Stress.fingerprint (Parser.parse_program ~file:"a.f" s)
  in
  let fp1 = fp_of src in
  perturb_sid_counter ();
  check_string "reparse fingerprint is sid-independent" fp1 (fp_of src)

let profiles_resolve () =
  List.iter
    (fun n ->
      check_bool (n ^ " resolves") true (Oracle.Stress.by_name n <> None))
    [ "deep"; "wide"; "many-units"; "many_units"; "DEEP" ];
  check_bool "unknown profile rejected" true
    (Oracle.Stress.by_name "nope" = None);
  (* workload-name plumbing *)
  check_bool "stress: prefix recognized" true
    (Workloads.is_stress_name "stress:deep");
  (match Workloads.stress "stress:deep@0.1" with
  | Ok p -> check_bool "scaled program has units" true (p.Ast.punits <> [])
  | Error e -> Alcotest.fail e);
  (match Workloads.stress "stress:bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown stress profile accepted");
  match Workloads.stress "stress:deep@0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-positive scale accepted"

(* ------------------------------------------------------------------ *)
(* the 100k-line flagship                                              *)
(* ------------------------------------------------------------------ *)

let flagship_round_trips () =
  let _, src =
    Oracle.Stress.scale_to_lines ~seed:42 ~target:100_000
      Oracle.Stress.many_units
  in
  check_bool "reaches 100k lines" true (Oracle.Stress.lines src >= 100_000);
  let reparsed = Parser.parse_program ~file:"flagship.f" src in
  check_bool "parses to many units" true
    (List.length reparsed.Ast.punits > 100);
  check_string "byte-identical reprint" src
    (Pretty.program_to_string reparsed)

(* ------------------------------------------------------------------ *)
(* engine and analyzer identity                                        *)
(* ------------------------------------------------------------------ *)

let main_unit_of (p : Ast.program) =
  (List.find (fun u -> u.Ast.kind = Ast.Main) p.Ast.punits).Ast.uname

let first_assign_of (sess : Ped.Session.t) =
  let name = Ped.Session.unit_name sess in
  let u =
    List.find
      (fun (u : Ast.program_unit) -> String.equal u.Ast.uname name)
      (Ped.Session.program sess).Ast.punits
  in
  Ast.fold_stmts
    (fun acc (s : Ast.stmt) ->
      match (acc, s.Ast.node) with
      | None, Ast.Assign _ -> Some s
      | _ -> acc)
    None u.Ast.body

let incremental_equals_scratch () =
  let program =
    Oracle.Stress.generate ~seed:42 (Oracle.Stress.smoke Oracle.Stress.deep)
  in
  let sess =
    Ped.Session.load ~caching:true program ~unit_name:(main_unit_of program)
  in
  ignore (Ped.Session.ddg sess);
  (* the redo leaves the edited statement with a fresh id, so each
     burst re-finds its target *)
  for _ = 1 to 2 do
    let s = Option.get (first_assign_of sess) in
    (match Ped.Session.edit_stmt sess s.Ast.sid (Pretty.stmt_to_string s) with
    | Ok _ -> ()
    | Error e -> Alcotest.fail ("edit: " ^ e));
    (match Ped.Session.undo sess with
    | Ok _ -> ()
    | Error e -> Alcotest.fail ("undo: " ^ e));
    match Ped.Session.redo sess with
    | Ok _ -> ()
    | Error e -> Alcotest.fail ("redo: " ^ e)
  done;
  (* from-scratch analysis of the session's current program *)
  let u =
    List.find
      (fun (u : Ast.program_unit) ->
        String.equal u.Ast.uname (Ped.Session.unit_name sess))
      (Ped.Session.program sess).Ast.punits
  in
  let summary = Interproc.Summary.analyze (Ped.Session.program sess) in
  let scratch =
    Ddg.compute
      (Interproc.Summary.env_for
         ~config:(Ped.Session.config sess)
         ~asserts:(Ped.Session.assertions sess)
         summary u)
  in
  let served = Ped.Session.ddg sess in
  check_bool "incremental equals scratch" true (Ddg.equal scratch served);
  check_string "same bytes" (digest scratch) (digest served)

let parallel_equals_sequential () =
  let program =
    Oracle.Stress.generate ~seed:42
      (Oracle.Stress.smoke Oracle.Stress.many_units)
  in
  let summary = Interproc.Summary.analyze program in
  let envs =
    List.map
      (fun (u : Ast.program_unit) ->
        (u.Ast.uname, Interproc.Summary.env_for summary u))
      program.Ast.punits
  in
  let seq = List.map (fun (u, env) -> (u, Ddg.compute env)) envs in
  Runtime.Pool.with_pool 4 (fun pool ->
      let runner = Runtime.Pool.analysis_runner pool in
      List.iter2
        (fun (_, env) (u, seq_g) ->
          let par = Ddg.compute ~runner env in
          check_bool (u ^ ": Ddg.equal") true (Ddg.equal seq_g par);
          check_string (u ^ ": bytes") (digest seq_g) (digest par))
        envs seq)

(* ------------------------------------------------------------------ *)
(* seed resolution and fuzz determinism                                *)
(* ------------------------------------------------------------------ *)

let seed_resolution () =
  let s = Oracle.Driver.seed_of in
  check_int "cli wins" 7 (s ~env:(Some "9") ~cli:(Some 7));
  check_int "env when no cli" 9 (s ~env:(Some "9") ~cli:None);
  check_int "env is trimmed" 9 (s ~env:(Some " 9\n") ~cli:None);
  check_int "malformed env falls through" 42 (s ~env:(Some "9x") ~cli:None);
  check_int "default" 42 (s ~env:None ~cli:None)

let fuzz_same_seed_same_stats () =
  let run () =
    Oracle.Driver.run
      {
        Oracle.Driver.default with
        Oracle.Driver.n = 4;
        seed = 11;
        oracles = [ Oracle.Driver.Dep ];
        sequences = false;
        shrink = false;
        corpus_dir = None;
        program_gen = Some (Oracle.Stress.fuzz_gen Oracle.Stress.deep);
      }
  in
  let a = run () in
  perturb_sid_counter ();
  let b = run () in
  check_bool "programs accepted" true (a.Oracle.Driver.programs > 0);
  check_bool "same stats" true (a = b);
  check_bool "oracles green" true (Oracle.Driver.ok a)

let suite =
  [
    case "same (seed, profile) means byte-identical source + fingerprint"
      same_seed_same_program;
    case "fingerprints of reparsed sources are sid-independent"
      fingerprint_survives_reparse;
    case "profile and workload-name resolution" profiles_resolve;
    case "the 100k-line flagship parses and reprints byte-identically"
      flagship_round_trips;
    case "incremental session equals from-scratch on a stress program"
      incremental_equals_scratch;
    case "4-domain analysis equals sequential on many-units"
      parallel_equals_sequential;
    case "seed resolution: cli, then QCHECK_SEED, then 42" seed_resolution;
    case "fuzz: same seed, same stats, oracles green"
      fuzz_same_seed_same_stats;
  ]
