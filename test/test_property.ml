(* The system-level soundness properties, run over the oracle
   subsystem's program generator (lib/oracle/gen.ml):

     - the DDG covers every dependence that concretely occurs when the
       program executes (brute-force enumeration of iteration pairs);
     - any transformation instance the catalog diagnoses as
       applicable+safe preserves the simulated observable state;
     - a loop the analysis approves as a DOALL produces the same
       result on the real multicore runtime and under permuted
       iteration orders.

   The generator covers 2-D subscripts (the C array), nests to depth
   2, IF guards, symbolic and triangular bounds, negative and non-unit
   steps, and auxiliary inductions — strictly more adversarial than
   the hand-rolled generator this file used to carry.  Programs whose
   baseline execution produces non-finite values are vacuously true:
   float comparison against garbage proves nothing.

   All properties honor QCHECK_SEED (see Util.qcheck_case). *)

open Fortran_front

let gen_program : Ast.program QCheck2.Gen.t =
  QCheck2.Gen.make_primitive
    ~gen:(fun st -> Oracle.Gen.program ~cfg:Oracle.Gen.small st)
    ~shrink:Oracle.Gen.shrink

let baseline_ok p =
  match Sim.Interp.run ~honor_parallel:false p with
  | exception Sim.Interp.Runtime_error _ -> false
  | o -> Oracle.Gen.finite_outcome o

let main_env p =
  let u = List.find (fun u -> u.Ast.kind = Ast.Main) p.Ast.punits in
  Dependence.Depenv.make u

let ddg_sound =
  QCheck2.Test.make ~count:40
    ~name:"DDG reports every concretely realized dependence"
    gen_program (fun p ->
      if not (baseline_ok p) then true
      else
        let env = main_env p in
        let ddg = Dependence.Ddg.compute env in
        let r = Oracle.Depcheck.check env ddg p in
        match r.Oracle.Depcheck.misses with
        | [] -> true
        | m :: _ ->
          QCheck2.Test.fail_reportf "dependence miss: %s@.on:@.%s"
            (Oracle.Depcheck.miss_to_string m)
            (Pretty.program_to_string p))

let safe_transforms_preserve =
  QCheck2.Test.make ~count:40
    ~name:"catalog-approved transformations preserve semantics"
    gen_program (fun p ->
      if not (baseline_ok p) then true
      else
        match Oracle.Semcheck.check_instances ~factors:[ 3 ] p with
        | _, [] -> true
        | _, f :: _ ->
          QCheck2.Test.fail_reportf "%s@.on:@.%s"
            (Oracle.Semcheck.failure_to_string f)
            (Pretty.program_to_string p))

let approved_doalls_run_clean =
  QCheck2.Test.make ~count:25
    ~name:"analysis-approved DOALLs run clean on the multicore runtime"
    gen_program (fun p ->
      if not (baseline_ok p) then true
      else
        match (Oracle.Runcheck.check p).Oracle.Runcheck.failures with
        | [] -> true
        | f :: _ ->
          QCheck2.Test.fail_reportf "%s@.on:@.%s"
            (Oracle.Runcheck.failure_to_string f)
            (Pretty.program_to_string p))

let suite =
  [
    Util.qcheck_case ddg_sound;
    Util.qcheck_case safe_transforms_preserve;
    Util.qcheck_case approved_doalls_run_clean;
  ]
