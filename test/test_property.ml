(* The system-level soundness property:

     for random loop programs, any transformation the power steering
     reports applicable+safe must preserve the simulated output; and a
     loop the analysis calls parallelizable must produce the same
     result under permuted iteration orders.

   The generator builds small but adversarial programs: affine and
   offset subscripts, scalar temporaries, reductions, nested loops. *)

open Fortran_front
open Dependence


let gen_program : Ast.program QCheck2.Gen.t =
  let open QCheck2.Gen in
  (* subscript: I + c with a small offset, kept in bounds by the loop
     ranges below *)
  let gen_idx iv =
    let* c = int_range (-2) 2 in
    return (Ast.simplify (Ast.add (Ast.Var iv) (Ast.Int c)))
  in
  let gen_rhs iv =
    let* pick = int_range 0 5 in
    match pick with
    | 0 ->
      let* i = gen_idx iv in
      return (Ast.Index ("A", [ i ]))
    | 1 ->
      let* i = gen_idx iv in
      return (Ast.Index ("B", [ i ]))
    | 2 -> return (Ast.Var "T")
    | 3 ->
      let* i = gen_idx iv in
      let* j = gen_idx iv in
      return (Ast.add (Ast.Index ("A", [ i ])) (Ast.Index ("B", [ j ])))
    | 4 -> return (Ast.mul (Ast.Var iv) (Ast.Int 2))
    | _ ->
      let* i = gen_idx iv in
      return (Ast.add (Ast.Index ("A", [ i ])) (Ast.Var "T"))
  in
  let gen_assign iv =
    let* pick = int_range 0 4 in
    let* rhs = gen_rhs iv in
    match pick with
    | 0 | 1 ->
      let* i = gen_idx iv in
      return (Ast.mk (Ast.Assign (Ast.Index ("A", [ i ]), rhs)))
    | 2 ->
      let* i = gen_idx iv in
      return (Ast.mk (Ast.Assign (Ast.Index ("B", [ i ]), rhs)))
    | 3 -> return (Ast.mk (Ast.Assign (Ast.Var "T", rhs)))
    | _ ->
      (* a sum reduction step *)
      return
        (Ast.mk (Ast.Assign (Ast.Var "S", Ast.add (Ast.Var "S") rhs)))
  in
  let gen_plain_loop =
    let* iv = oneofl [ "I"; "J" ] in
    let* lo = int_range 3 6 in
    let* hi = int_range 20 34 in
    let* nstmts = int_range 1 3 in
    let* body = list_repeat nstmts (gen_assign iv) in
    let* nest = int_range 0 2 in
    let* body =
      if nest = 0 && iv = "I" then
        (* add an inner loop over J *)
        let* inner_stmts = int_range 1 2 in
        let* inner_body = list_repeat inner_stmts (gen_assign "J") in
        let header =
          { Ast.dvar = "J"; lo = Ast.Int 3; hi = Ast.Int 20; step = None;
            parallel = false }
        in
        return (body @ [ Ast.mk (Ast.Do (header, inner_body)) ])
      else return body
    in
    let header =
      { Ast.dvar = iv; lo = Ast.Int lo; hi = Ast.Int hi; step = None;
        parallel = false }
    in
    return [ Ast.mk (Ast.Do (header, body)) ]
  in
  (* an auxiliary-induction loop: K reset, then K = K + stride used as
     a subscript — exercises the aux rewriting in subscript analysis *)
  let gen_aux_loop =
    let* stride = oneofl [ 1; 2 ] in
    let* trip = int_range 5 15 in
    let* extra = gen_assign "I" in
    let inc =
      Ast.mk (Ast.Assign (Ast.Var "K", Ast.add (Ast.Var "K") (Ast.Int stride)))
    in
    let* rhs = gen_rhs "I" in
    let write = Ast.mk (Ast.Assign (Ast.Index ("A", [ Ast.Var "K" ]), rhs)) in
    (* lo = 3 keeps the [I±2] subscripts of [extra] in bounds *)
    let header =
      { Ast.dvar = "I"; lo = Ast.Int 3; hi = Ast.Int (trip + 2); step = None;
        parallel = false }
    in
    return
      [ Ast.mk (Ast.Assign (Ast.Var "K", Ast.Int 0));
        Ast.mk (Ast.Do (header, [ inc; write; extra ])) ]
  in
  let gen_loop =
    frequency [ (4, gen_plain_loop); (1, gen_aux_loop) ]
  in
  let* nloops = int_range 1 2 in
  let* loop_groups = list_repeat nloops gen_loop in
  let loops = List.concat loop_groups in
  (* deterministic init, then the random loops, then checksums *)
  let init =
    Parser.parse_stmts_string ~file:"<init>"
      "      T = 1.5\n      S = 0.0\n      DO I = 1, 40\n        A(I) = FLOAT(I) * 0.5\n        B(I) = FLOAT(41 - I)\n      ENDDO\n"
  in
  let checksum =
    Parser.parse_stmts_string ~file:"<sum>"
      "      DO I = 1, 40\n        S = S + A(I) + B(I)\n      ENDDO\n      PRINT *, S, T\n"
  in
  let decls =
    [
      { Ast.dname = "A"; dtyp = Ast.Treal; dims = [ (Ast.Int 1, Ast.Int 40) ];
        init = None; data_init = None; common_block = None };
      { Ast.dname = "B"; dtyp = Ast.Treal; dims = [ (Ast.Int 1, Ast.Int 40) ];
        init = None; data_init = None; common_block = None };
    ]
  in
  return
    {
      Ast.punits =
        [
          { Ast.uname = "RAND"; kind = Ast.Main; decls;
            implicit_none = false; implicits = [];
            body = init @ loops @ checksum };
        ];
    }

let outputs p1 p2 =
  let a = Sim.Interp.run ~honor_parallel:false p1 in
  let b = Sim.Interp.run ~honor_parallel:false p2 in
  Sim.Interp.outputs_match ~tol:1e-5 a.Sim.Interp.output b.Sim.Interp.output

(* every transformation instance to try on a program *)
let instances env =
  let loops = Loopnest.loops env.Depenv.nest in
  let fuse_pairs =
    (* adjacent top-level loop statements *)
    let rec pairs = function
      | ({ Ast.node = Ast.Do _; _ } as a) :: (({ Ast.node = Ast.Do _; _ } as b) :: _ as rest) ->
        ("fuse", Transform.Catalog.On_pair (a.Ast.sid, b.Ast.sid)) :: pairs rest
      | _ :: rest -> pairs rest
      | [] -> []
    in
    pairs env.Depenv.punit.Ast.body
  in
  fuse_pairs
  @ List.concat_map
    (fun (l : Loopnest.loop) ->
      let sid = l.Loopnest.lstmt.Ast.sid in
      [
        ("parallelize", Transform.Catalog.On_loop sid);
        ("interchange", Transform.Catalog.On_loop sid);
        ("distribute", Transform.Catalog.On_loop sid);
        ("reverse", Transform.Catalog.On_loop sid);
        ("skew", Transform.Catalog.With_factor (sid, 1));
        ("strip", Transform.Catalog.With_factor (sid, 4));
        ("unroll", Transform.Catalog.With_factor (sid, 2));
        ("tile", Transform.Catalog.With_factor (sid, 4));
        ("expand", Transform.Catalog.With_var (sid, "T"));
        ("peel-first", Transform.Catalog.On_loop sid);
        ("peel-last", Transform.Catalog.On_loop sid);
        ("normalize", Transform.Catalog.On_loop sid);
        ("rename", Transform.Catalog.With_var (sid, "T"));
        ("indsub", Transform.Catalog.With_var (sid, "K"));
        ("coalesce", Transform.Catalog.On_loop sid);
      ])
    loops

let safe_transforms_preserve =
  QCheck2.Test.make ~count:60
    ~name:"power-steering-approved transformations preserve semantics"
    gen_program (fun program ->
      let u = List.hd program.Ast.punits in
      let env = Depenv.make u in
      let ddg = Ddg.compute env in
      List.for_all
        (fun (name, args) ->
          let entry = Option.get (Transform.Catalog.find name) in
          let d = entry.Transform.Catalog.diagnose env ddg args in
          if not (Transform.Diagnosis.ok d) then true
          else
            match entry.Transform.Catalog.apply env ddg args with
            | Ok u' ->
              let ok = outputs program { Ast.punits = [ u' ] } in
              if not ok then
                QCheck2.Test.fail_reportf
                  "%s changed the result on:@.%s@.--- transformed ---@.%s"
                  name
                  (Pretty.unit_to_string u)
                  (Pretty.unit_to_string u')
              else true
            | Error _ -> true
            | exception e ->
              QCheck2.Test.fail_reportf "%s raised %s on:@.%s" name
                (Printexc.to_string e)
                (Pretty.unit_to_string u))
        (instances env))

let parallel_loops_order_independent =
  QCheck2.Test.make ~count:60
    ~name:"analysis-approved parallel loops are order independent"
    gen_program (fun program ->
      let u = List.hd program.Ast.punits in
      let env = Depenv.make u in
      let ddg = Ddg.compute env in
      (* flip every loop the editor's power steering approves *)
      let u' =
        List.fold_left
          (fun u (l : Loopnest.loop) ->
            let d =
              Transform.Parallelize.diagnose env ddg l.Loopnest.lstmt.Ast.sid
            in
            if Transform.Diagnosis.ok d then
              Transform.Parallelize.apply u l.Loopnest.lstmt.Ast.sid
            else u)
          u
          (Loopnest.loops env.Depenv.nest)
      in
      let p' = { Ast.punits = [ u' ] } in
      let a = Sim.Interp.run ~par_order:Sim.Interp.Seq p' in
      let b = Sim.Interp.run ~par_order:Sim.Interp.Reverse p' in
      let c = Sim.Interp.run ~par_order:(Sim.Interp.Shuffled 11) p' in
      let ok =
        Sim.Interp.outputs_match ~tol:1e-5 a.Sim.Interp.output b.Sim.Interp.output
        && Sim.Interp.outputs_match ~tol:1e-5 a.Sim.Interp.output c.Sim.Interp.output
      in
      if not ok then
        QCheck2.Test.fail_reportf "order-dependent parallel loop in:@.%s"
          (Pretty.unit_to_string u')
      else true)

let suite =
  [
    QCheck_alcotest.to_alcotest safe_transforms_preserve;
    QCheck_alcotest.to_alcotest parallel_loops_order_independent;
  ]
