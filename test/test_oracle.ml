(* The oracle subsystem itself: corpus round-trip and replay, the
   mutation check (a deliberately weakened DDG must be caught by the
   brute-force oracle), a bounded in-process fuzz run, and the engine
   invariant (cached analysis serves the same DDG as a from-scratch
   build) fuzzed over generated programs and edits. *)

open Fortran_front
open Util

let main_env p =
  let u = List.find (fun u -> u.Ast.kind = Ast.Main) p.Ast.punits in
  Dependence.Depenv.make u

let gen_finite rng =
  (* rejection-sample a program whose baseline execution is finite *)
  let rec go n =
    if n = 0 then failwith "no finite program in 20 draws"
    else
      let p = Oracle.Gen.program ~cfg:Oracle.Gen.small rng in
      match Sim.Interp.run ~honor_parallel:false p with
      | exception Sim.Interp.Runtime_error _ -> go (n - 1)
      | o -> if Oracle.Gen.finite_outcome o then p else go (n - 1)
  in
  go 20

let replay_corpus () =
  let files = Oracle.Corpus.files "corpus" in
  check_bool "corpus is not empty" true (files <> []);
  List.iter
    (fun f ->
      match Oracle.Corpus.load f with
      | Error e -> Alcotest.failf "%s: %s" f e
      | Ok entry -> (
        match Oracle.Corpus.replay entry with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%s replays red: %s" f e))
    files

let corpus_round_trip () =
  let rng = Random.State.make [| 3 |] in
  let p = gen_finite rng in
  let dir = Filename.temp_file "pedcorpus" "" in
  Sys.remove dir;
  let path =
    Oracle.Corpus.save ~dir ~oracle:"dependence" ~seed:"3#0"
      ~steps:[ ("reverse", "loop=0") ]
      p
  in
  (match Oracle.Corpus.load path with
  | Error e -> Alcotest.failf "round trip failed: %s" e
  | Ok e ->
    check_string "oracle survives" "dependence" e.Oracle.Corpus.e_oracle;
    check_string "seed survives" "3#0" e.Oracle.Corpus.e_seed;
    check_bool "steps survive" true
      (e.Oracle.Corpus.e_steps = [ ("reverse", "loop=0") ]);
    (* printing normalizes some spellings ((-4):44 vs -4:44), so
       compare both sides after one print/parse round *)
    check_string "program survives"
      (Pretty.program_to_string
         (Parser.parse_program ~file:"rt" (Pretty.program_to_string p)))
      (Pretty.program_to_string e.Oracle.Corpus.e_program));
  Sys.remove path;
  Sys.rmdir dir

(* the acceptance-criteria mutation check: drop the array flow deps
   from a DDG that really carries one and the brute-force oracle must
   report a miss; the intact DDG must be clean *)
let weakened_ddg_caught () =
  let src =
    "      PROGRAM MUT\n\
    \      REAL A(40)\n\
    \      DO I = 1, 40\n\
    \        A(I) = FLOAT(I)\n\
    \      ENDDO\n\
    \      DO I = 2, 20\n\
    \        A(I) = A(I - 1) * 0.5\n\
    \      ENDDO\n\
    \      PRINT *, A(20)\n\
    \      END\n"
  in
  let p = parse src in
  let env = main_env p in
  let ddg = Dependence.Ddg.compute env in
  let intact = Oracle.Depcheck.check env ddg p in
  check_bool "intact DDG has no misses" true
    (intact.Oracle.Depcheck.misses = []);
  check_bool "the carried flow dep is concretely realized" true
    (intact.Oracle.Depcheck.realized > 0);
  let weakened =
    {
      ddg with
      Dependence.Ddg.deps =
        List.filter
          (fun (d : Dependence.Ddg.dep) ->
            d.Dependence.Ddg.kind <> Dependence.Ddg.Flow
            || d.Dependence.Ddg.is_scalar)
          ddg.Dependence.Ddg.deps;
    }
  in
  let r = Oracle.Depcheck.check env weakened p in
  check_bool "weakened DDG is caught" true (r.Oracle.Depcheck.misses <> [])

let fuzz_smoke () =
  let cfg =
    {
      Oracle.Driver.default with
      Oracle.Driver.n = 8;
      seed = 11;
      gen_cfg = Oracle.Gen.small;
    }
  in
  let s = Oracle.Driver.run cfg in
  if not (Oracle.Driver.ok s) then
    Alcotest.failf "in-process fuzz went red:\n%s" (Oracle.Driver.summary s);
  check_bool "programs were generated" true (s.Oracle.Driver.programs > 0);
  check_bool "dependence classes were checked" true
    (s.Oracle.Driver.dep_classes > 0);
  check_bool "semantic instances were compared" true
    (s.Oracle.Driver.sem_instances > 0)

(* satellite: the incremental engine must serve, after any edit, a DDG
   structurally equal to a from-scratch [Ddg.compute] *)
let engine_matches_scratch () =
  let rng = Random.State.make [| 29 |] in
  for _round = 1 to 4 do
    let p = gen_finite rng in
    let eng = Engine.create ~caching:true p in
    let check_version what q =
      let u = List.find (fun u -> u.Ast.kind = Ast.Main) q.Ast.punits in
      match Engine.analysis eng ~unit_name:u.Ast.uname with
      | None -> Alcotest.failf "engine lost the main unit (%s)" what
      | Some (_, served) ->
        let scratch = Dependence.Ddg.compute (Dependence.Depenv.make u) in
        if not (Dependence.Ddg.equal served scratch) then
          Alcotest.failf "engine DDG diverged from scratch (%s) on:\n%s" what
            (Pretty.program_to_string q);
        (* provenance must survive the bucket cache byte-identically:
           pin it explicitly, not just via the structural equality *)
        let provs g =
          List.map (fun d -> d.Dependence.Ddg.prov) g.Dependence.Ddg.deps
        in
        if provs served <> provs scratch then
          Alcotest.failf "cached provenance diverged from scratch (%s) on:\n%s"
            what (Pretty.program_to_string q);
        if served.Dependence.Ddg.nodeps <> scratch.Dependence.Ddg.nodeps then
          Alcotest.failf
            "cached no-dependence table diverged from scratch (%s) on:\n%s"
            what (Pretty.program_to_string q)
    in
    check_version "initial" p;
    (* edit burst: successive shrink steps are structural edits of the
       same program, a fresh draw is an unrelated rewrite *)
    let edits =
      (List.of_seq (Seq.take 3 (Oracle.Gen.shrink p))) @ [ gen_finite rng ]
    in
    List.iter
      (fun q ->
        Engine.set_program eng q;
        check_version "after edit" q)
      edits
  done

let suite =
  [
    case "minimized counterexample corpus replays green" replay_corpus;
    case "corpus entries round-trip through save/load" corpus_round_trip;
    case "a weakened DDG is caught by the brute-force oracle"
      weakened_ddg_caught;
    case "bounded in-process fuzz run is green" fuzz_smoke;
    case "cached engine DDG equals from-scratch compute under edits"
      engine_matches_scratch;
  ]
