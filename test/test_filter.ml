(* View-filter unit tests over a synthetic dependence list. *)

open Dependence
open Util

let dep ?(kind = Ddg.Flow) ?(is_scalar = false) ?(level = Some 1)
    ?(carrier = None) ?(exact = false) ~id ~src ~dst var =
  {
    Ddg.dep_id = id;
    kind;
    var;
    src;
    dst;
    src_ref = None;
    dst_ref = None;
    level;
    carrier;
    dirs = [];
    dist = [||];
    exact;
    test = "t";
    is_scalar;
    prov = Explain.Provenance.simple ~tier:"t" Explain.Provenance.Assumed;
  }

let sample =
  [
    dep ~id:1 ~src:1 ~dst:2 "A";
    dep ~id:2 ~kind:Ddg.Anti ~src:2 ~dst:3 "A" ~level:None;
    dep ~id:3 ~kind:Ddg.Output ~src:3 ~dst:4 "B" ~carrier:(Some 9);
    dep ~id:4 ~kind:Ddg.Control ~src:1 ~dst:4 "";
    dep ~id:5 ~is_scalar:true ~src:2 ~dst:2 "T";
    dep ~id:6 ~src:5 ~dst:6 "B" ~exact:true;
  ]

let ids f =
  Ped.Filter.apply_dep_filter f Ped.Marking.empty sample
  |> List.map (fun (d : Ddg.dep) -> d.Ddg.dep_id)

let suite =
  [
    case "default hides control" (fun () ->
        check_bool "no #4" true (not (List.mem 4 (ids Ped.Filter.default_dep_filter))));
    case "show_all shows control" (fun () ->
        check_int "all six" 6 (List.length (ids Ped.Filter.show_all)));
    case "by variable" (fun () ->
        check_bool "only A" true
          (ids { Ped.Filter.default_dep_filter with Ped.Filter.f_var = Some "A" }
          = [ 1; 2 ]));
    case "by kind" (fun () ->
        check_bool "anti" true
          (ids { Ped.Filter.default_dep_filter with Ped.Filter.f_kind = Some Ddg.Anti }
          = [ 2 ]));
    case "carried only" (fun () ->
        let got =
          ids { Ped.Filter.default_dep_filter with Ped.Filter.f_carried_only = true }
        in
        check_bool "no loop-independent" true (not (List.mem 2 got)));
    case "by loop (carrier)" (fun () ->
        check_bool "only #3" true
          (ids { Ped.Filter.default_dep_filter with Ped.Filter.f_loop = Some 9 }
          = [ 3 ]));
    case "by statement" (fun () ->
        let got =
          ids { Ped.Filter.default_dep_filter with Ped.Filter.f_stmt = Some 2 }
        in
        check_bool "touching s2" true (got = [ 1; 2; 5 ]));
    case "hide scalar" (fun () ->
        let got =
          ids { Ped.Filter.default_dep_filter with Ped.Filter.f_hide_scalar = true }
        in
        check_bool "no #5" true (not (List.mem 5 got)));
    case "by status uses markings" (fun () ->
        let proven =
          ids
            { Ped.Filter.default_dep_filter with
              Ped.Filter.f_status = Some Ped.Marking.Proven }
        in
        check_bool "only exact" true (proven = [ 6 ]));
    case "filters compose" (fun () ->
        let got =
          ids
            { Ped.Filter.default_dep_filter with
              Ped.Filter.f_var = Some "B"; f_kind = Some Ddg.Output }
        in
        check_bool "B output" true (got = [ 3 ]));
    case "source filter by structure" (fun () ->
        let lines =
          [ (None, "      PROGRAM X"); (Some 1, "      DO I = 1, 3");
            (Some 2, "        Y = I"); (None, "      ENDDO") ]
        in
        let loops = Ped.Filter.apply_src_filter Ped.Filter.Src_loops lines in
        check_int "one header" 1 (List.length loops);
        let found =
          Ped.Filter.apply_src_filter (Ped.Filter.Src_contains "Y =") lines
        in
        check_int "one match" 1 (List.length found));
    case "filter description strings" (fun () ->
        check_string "none" "nocontrol"
          (Ped.Filter.dep_filter_to_string Ped.Filter.default_dep_filter);
        check_string "all" "(none)"
          (Ped.Filter.dep_filter_to_string Ped.Filter.show_all));
  ]
