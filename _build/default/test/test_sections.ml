(* Detailed regular-section tests: summary shapes and call-site
   translation precision. *)

open Fortran_front
open Util

let cg_of src = Interproc.Callgraph.build (parse src)

let summary src unit_name array =
  let sec = Interproc.Sections.compute (cg_of src) in
  List.assoc_opt array (Interproc.Sections.summary_of sec unit_name)

let suite =
  [
    case "point write summarized as Point" (fun () ->
        match
          summary
            "      SUBROUTINE S(A, I, N)\n      INTEGER I, N\n      REAL A(N)\n      A(I) = 1.0\n      END\n"
            "S" "A"
        with
        | Some { Interproc.Sections.sec_w = Some [ Interproc.Sections.Point e ]; _ } ->
          check_bool "point is I" true (Ast.expr_equal e (Ast.Var "I"))
        | _ -> Alcotest.fail "expected Point I");
    case "loop sweep summarized as Range" (fun () ->
        match
          summary
            "      SUBROUTINE S(A, N)\n      INTEGER N, J\n      REAL A(N)\n      DO J = 1, N\n        A(J) = 0.0\n      ENDDO\n      END\n"
            "S" "A"
        with
        | Some { Interproc.Sections.sec_w = Some [ Interproc.Sections.Range (lo, hi) ]; _ } ->
          check_bool "lo 1" true (Ast.expr_equal lo (Ast.Int 1));
          check_bool "hi N" true (Ast.expr_equal hi (Ast.Var "N"))
        | _ -> Alcotest.fail "expected Range 1..N");
    case "offset sweep shifts the range" (fun () ->
        match
          summary
            "      SUBROUTINE S(A, N)\n      INTEGER N, J\n      REAL A(N)\n      DO J = 1, N - 2\n        A(J + 1) = 0.0\n      ENDDO\n      END\n"
            "S" "A"
        with
        | Some { Interproc.Sections.sec_w = Some [ Interproc.Sections.Range (lo, _) ]; _ } ->
          check_bool "lo is 2" true (Ast.expr_equal lo (Ast.Int 2))
        | _ -> Alcotest.fail "expected shifted range");
    case "local-variable subscript degrades to Star" (fun () ->
        match
          summary
            "      SUBROUTINE S(A, N)\n      INTEGER N, K\n      REAL A(N)\n      K = N / 2\n      A(K) = 0.0\n      END\n"
            "S" "A"
        with
        | Some { Interproc.Sections.sec_w = Some [ Interproc.Sections.Star ]; _ } -> ()
        | _ -> Alcotest.fail "expected Star (local scalar)");
    case "merge of distinct constant points widens to range" (fun () ->
        match
          summary
            "      SUBROUTINE S(A, N)\n      INTEGER N\n      REAL A(N)\n      A(1) = 0.0\n      A(5) = 0.0\n      END\n"
            "S" "A"
        with
        | Some { Interproc.Sections.sec_w = Some [ Interproc.Sections.Range (Ast.Int 1, Ast.Int 5) ]; _ } -> ()
        | _ -> Alcotest.fail "expected hull 1..5");
    case "row write: Point x Range in 2D" (fun () ->
        match
          summary
            "      SUBROUTINE S(A, N, M, I)\n      INTEGER N, M, I, J\n      REAL A(N,M)\n      DO J = 1, M\n        A(I,J) = 0.0\n      ENDDO\n      END\n"
            "S" "A"
        with
        | Some { Interproc.Sections.sec_w = Some [ d1; d2 ]; _ } ->
          (match d1 with
          | Interproc.Sections.Point e ->
            check_bool "row I" true (Ast.expr_equal e (Ast.Var "I"))
          | _ -> Alcotest.fail "dim1 should be Point I");
          (match d2 with
          | Interproc.Sections.Range _ -> ()
          | _ -> Alcotest.fail "dim2 should be a Range")
        | _ -> Alcotest.fail "no 2D write section");
    case "call-site translation substitutes actuals" (fun () ->
        let src =
          "      PROGRAM P\n      REAL B(10)\n      INTEGER K\n      K = 4\n      CALL S(B, K, 10)\n      END\n      SUBROUTINE S(A, I, N)\n      INTEGER I, N\n      REAL A(N)\n      A(I + 1) = 1.0\n      END\n"
        in
        let cg = cg_of src in
        let sec = Interproc.Sections.compute cg in
        let site = List.hd (Interproc.Callgraph.sites cg) in
        let caller = Option.get (Interproc.Callgraph.unit_named cg "P") in
        let tbl = Symbol.build caller in
        let refs = Interproc.Sections.call_refs sec ~site ~tbl in
        match
          List.find_opt (fun (a, _, w) -> a = "B" && w) refs
        with
        | Some (_, Some [ e ], _) ->
          check_string "K + 1" "K + 1" (Pretty.expr_to_string e)
        | _ -> Alcotest.fail "expected translated point write on B");
    case "transitive sections through a wrapper" (fun () ->
        let src =
          "      SUBROUTINE OUTER(A, N, I)\n      INTEGER N, I\n      REAL A(N)\n      CALL INNER(A, N, I)\n      END\n      SUBROUTINE INNER(B, N, I)\n      INTEGER N, I\n      REAL B(N)\n      B(I) = 2.0\n      END\n"
        in
        match
          (let sec = Interproc.Sections.compute (cg_of src) in
           List.assoc_opt "A" (Interproc.Sections.summary_of sec "OUTER"))
        with
        | Some { Interproc.Sections.sec_w = Some [ Interproc.Sections.Point e ]; _ } ->
          check_bool "still Point I" true (Ast.expr_equal e (Ast.Var "I"))
        | _ -> Alcotest.fail "expected Point through wrapper");
  ]
