open Util

(* End-to-end expectations over the whole suite: parse, run, analyze,
   count parallel loops, check the documented numbers. *)

let checksum (w : Workloads.t) =
  (Sim.Interp.run (Workloads.program w)).Sim.Interp.output

let suite =
  List.concat_map
    (fun (w : Workloads.t) ->
      [
        case (w.Workloads.name ^ ": runs and prints a checksum") (fun () ->
            check_bool "output nonempty" true (checksum w <> []));
        case (w.Workloads.name ^ ": loop counts match expectations") (fun () ->
            let sess =
              Ped.Session.load (Workloads.program w)
                ~unit_name:(Workloads.main_unit w)
            in
            check_int "loops" w.Workloads.main_loops
              (List.length (Ped.Session.loops sess));
            check_int "parallelizable" w.Workloads.main_parallel
              (List.length (Ped.Session.parallelizable_loops sess)));
        case (w.Workloads.name ^ ": assertion script unlocks loops") (fun () ->
            if w.Workloads.assertion_script <> [] then begin
              let sess =
                Ped.Session.load (Workloads.program w)
                  ~unit_name:(Workloads.main_unit w)
              in
              (* run any leading focus commands first, measure, then
                 apply the assertions themselves *)
              let is_focus l = String.length l >= 5 && String.sub l 0 5 = "unit " in
              let focus, rest =
                List.partition is_focus w.Workloads.assertion_script
              in
              List.iter (fun l -> ignore (Ped.Command.run sess l)) focus;
              let count () = List.length (Ped.Session.parallelizable_loops sess) in
              let before = count () in
              List.iter (fun l -> ignore (Ped.Command.run sess l)) rest;
              check_bool "strictly more parallel loops" true (count () > before)
            end);
      ])
    Workloads.all
  @ [
      case "names unique" (fun () ->
          check_int "unique" (List.length Workloads.names)
            (List.length (List.sort_uniq compare Workloads.names)));
      case "by_name total" (fun () ->
          List.iter
            (fun n -> check_bool n true (Workloads.by_name n <> None))
            Workloads.names);
    ]
