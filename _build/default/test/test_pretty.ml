open Fortran_front
open Util

(* Structural equality of programs, ignoring statement ids, labels and
   locations. *)
let rec stmts_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (s1 : Ast.stmt) (s2 : Ast.stmt) ->
         match (s1.Ast.node, s2.Ast.node) with
         | Ast.Assign (l1, r1), Ast.Assign (l2, r2) ->
           Ast.expr_equal l1 l2 && Ast.expr_equal r1 r2
         | Ast.If (b1, e1), Ast.If (b2, e2) ->
           List.length b1 = List.length b2
           && List.for_all2
                (fun (c1, x1) (c2, x2) ->
                  Ast.expr_equal c1 c2 && stmts_equal x1 x2)
                b1 b2
           && stmts_equal e1 e2
         | Ast.Do (h1, x1), Ast.Do (h2, x2) ->
           String.equal h1.Ast.dvar h2.Ast.dvar
           && Ast.expr_equal h1.Ast.lo h2.Ast.lo
           && Ast.expr_equal h1.Ast.hi h2.Ast.hi
           && h1.Ast.parallel = h2.Ast.parallel
           && (match (h1.Ast.step, h2.Ast.step) with
              | None, None -> true
              | Some a, Some b -> Ast.expr_equal a b
              | _ -> false)
           && stmts_equal x1 x2
         | Ast.Call (n1, a1), Ast.Call (n2, a2) ->
           String.equal n1 n2
           && List.length a1 = List.length a2
           && List.for_all2 Ast.expr_equal a1 a2
         | Ast.Goto l1, Ast.Goto l2 -> l1 = l2
         | Ast.Continue, Ast.Continue
         | Ast.Return, Ast.Return
         | Ast.Stop, Ast.Stop -> true
         | Ast.Print a1, Ast.Print a2 ->
           List.length a1 = List.length a2 && List.for_all2 Ast.expr_equal a1 a2
         | _, _ -> false)
       a b

let units_equal (u1 : Ast.program_unit) (u2 : Ast.program_unit) =
  String.equal u1.Ast.uname u2.Ast.uname && stmts_equal u1.Ast.body u2.Ast.body

let roundtrip_unit u =
  let printed = Pretty.unit_to_string u in
  let u2 = parse_unit printed in
  if not (units_equal u u2) then
    Alcotest.failf "round-trip mismatch:\n%s\n--- reparsed ---\n%s" printed
      (Pretty.unit_to_string u2)

let workload_roundtrip (w : Workloads.t) () =
  List.iter roundtrip_unit (Workloads.program w).Ast.punits

(* random expression generator for the print/parse property *)
let gen_expr : Ast.expr QCheck2.Gen.t =
  let open QCheck2.Gen in
  let var = oneofl [ "I"; "J"; "N"; "X2" ] >|= fun v -> Ast.Var v in
  let lit =
    oneof [ (int_range 0 99 >|= fun n -> Ast.Int n);
            (int_range 0 9 >|= fun n -> Ast.Real (float_of_int n /. 2.0)) ]
  in
  sized @@ fix (fun self n ->
    if n <= 0 then oneof [ var; lit ]
    else
      oneof
        [
          var; lit;
          (let* op = oneofl [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Pow ] in
           let* a = self (n / 2) in
           let* b = self (n / 2) in
           return (Ast.Bin (op, a, b)));
          (self (n - 1) >|= fun a -> Ast.Un (Ast.Neg, a));
          (let* a = self (n / 2) in
           let* b = self (n / 2) in
           return (Ast.Index ("A", [ a; b ])));
        ])

let expr_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"pretty/parse round-trip on expressions"
    gen_expr (fun e ->
      let s = Pretty.expr_to_string e in
      match Parser.parse_expr_string s with
      | e2 -> Ast.expr_equal e e2
      | exception _ -> false)

let suite =
  List.map
    (fun (w : Workloads.t) ->
      case ("round-trip " ^ w.Workloads.name) (workload_roundtrip w))
    Workloads.all
  @ [
      case "negative literal parenthesized" (fun () ->
          check_string "neg" "A((-1))" (Pretty.expr_to_string (Ast.Index ("A", [ Ast.Int (-1) ]))));
      case "assumed size prints star" (fun () ->
          check_string "star" "A(*)"
            (Pretty.expr_to_string (Ast.Index ("A", [ Ast.Int max_int ]))));
      case "source_lines tags statements" (fun () ->
          let u = parse_body "      X = 1\n      DO I = 1, 3\n        Y = I\n      ENDDO\n" in
          let lines = Pretty.source_lines u in
          let tagged = List.filter (fun (sid, _) -> sid <> None) lines in
          check_int "three tagged statements" 3 (List.length tagged));
      QCheck_alcotest.to_alcotest expr_roundtrip;
    ]
