open Fortran_front
open Util

let suite =
  [
    case "implicit typing I-N integer" (fun () ->
        let u = parse_body "      X = I + J\n" in
        let tbl = Symbol.build u in
        check_bool "I int" true (Symbol.typ_of tbl "I" = Ast.Tinteger);
        check_bool "X real" true (Symbol.typ_of tbl "X" = Ast.Treal));
    case "declared arrays recognized" (fun () ->
        let u =
          parse_unit "      PROGRAM P\n      REAL A(10)\n      A(1) = 0.0\n      END\n"
        in
        let tbl = Symbol.build u in
        check_bool "array" true (Symbol.is_array tbl "A"));
    case "undeclared subscripted name is external function" (fun () ->
        let u = parse_body "      X = G(3)\n" in
        let tbl = Symbol.build u in
        check_bool "call" true (Symbol.is_fun_call tbl "G"));
    case "intrinsics recognized" (fun () ->
        let u = parse_body "      X = SQRT(Y) + MAX(1, 2)\n" in
        let tbl = Symbol.build u in
        check_bool "sqrt" true (Symbol.is_fun_call tbl "SQRT");
        match Symbol.lookup tbl "MAX" with
        | Some { Symbol.kind = Symbol.Intrinsic; _ } -> ()
        | _ -> Alcotest.fail "MAX should be intrinsic");
    case "call target is a routine" (fun () ->
        let u = parse_body "      CALL SUB(X)\n" in
        let tbl = Symbol.build u in
        match Symbol.lookup tbl "SUB" with
        | Some { Symbol.kind = Symbol.Routine; _ } -> ()
        | _ -> Alcotest.fail "SUB should be a routine");
    case "param_value folds across parameters" (fun () ->
        let u =
          parse_unit
            "      PROGRAM P\n      INTEGER N, M\n      PARAMETER (N = 10, M = N * 2)\n      END\n"
        in
        let tbl = Symbol.build u in
        check_bool "M" true (Symbol.param_value tbl "M" = Some 20));
    case "const_eval handles arithmetic" (fun () ->
        let u =
          parse_unit
            "      PROGRAM P\n      INTEGER N\n      PARAMETER (N = 8)\n      END\n"
        in
        let tbl = Symbol.build u in
        let e = Parser.parse_expr_string "2 * N + 1" in
        check_bool "17" true (Symbol.const_eval tbl e = Some 17));
    case "formals flagged" (fun () ->
        let u = parse_unit "      SUBROUTINE S(A, N)\n      A = N\n      END\n" in
        let tbl = Symbol.build u in
        check_bool "A formal" true (Symbol.is_formal tbl "A");
        check_bool "N formal" true (Symbol.is_formal tbl "N"));
    case "commons flagged" (fun () ->
        let u = parse_unit "      PROGRAM P\n      COMMON /C/ Q\n      Q = 1.0\n      END\n" in
        let tbl = Symbol.build u in
        check_bool "common" true (Symbol.is_common tbl "Q"));
    case "function result variable exists" (fun () ->
        let u = parse_unit "      REAL FUNCTION F(X)\n      F = X\n      END\n" in
        let tbl = Symbol.build u in
        match Symbol.lookup tbl "F" with
        | Some { Symbol.kind = Symbol.Scalar; typ = Ast.Treal; _ } -> ()
        | _ -> Alcotest.fail "result var missing");
    case "array_dims evaluates bounds" (fun () ->
        let u =
          parse_unit
            "      PROGRAM P\n      INTEGER N\n      PARAMETER (N = 4)\n      REAL A(0:N)\n      A(0) = 1.0\n      END\n"
        in
        let tbl = Symbol.build u in
        match Symbol.array_dims tbl "A" with
        | [ (Some 0, Some 4) ] -> ()
        | _ -> Alcotest.fail "bad dims");
  ]
