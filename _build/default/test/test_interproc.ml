open Fortran_front
open Util

let two_units =
  "      PROGRAM P\n\
  \      REAL A(10), X\n\
  \      CALL TOUCH(A, X)\n\
  \      END\n\
  \      SUBROUTINE TOUCH(B, Y)\n\
  \      REAL B(10), Y\n\
  \      B(1) = Y\n\
  \      END\n"

let suite =
  [
    case "callgraph sites and order" (fun () ->
        let cg = Interproc.Callgraph.build (parse two_units) in
        check_int "one site" 1 (List.length (Interproc.Callgraph.sites cg));
        check_bool "callee of P" true
          (Interproc.Callgraph.callees_of cg "P" = [ "TOUCH" ]);
        check_bool "callers of TOUCH" true
          (Interproc.Callgraph.callers_of cg "TOUCH" = [ "P" ]);
        match Interproc.Callgraph.bottom_up cg with
        | [ "TOUCH"; "P" ] -> ()
        | o -> Alcotest.failf "bad order: %s" (String.concat "," o));
    case "modref: formal mod and ref" (fun () ->
        let cg = Interproc.Callgraph.build (parse two_units) in
        let mr = Interproc.Modref.compute cg in
        match Interproc.Modref.summary_of mr "TOUCH" with
        | Some s ->
          check_bool "B modified" true (Interproc.Modref.SSet.mem "B" s.Interproc.Modref.mods);
          check_bool "Y referenced" true (Interproc.Modref.SSet.mem "Y" s.Interproc.Modref.refs);
          check_bool "Y not modified" false (Interproc.Modref.SSet.mem "Y" s.Interproc.Modref.mods)
        | None -> Alcotest.fail "no summary");
    case "modref: translation to caller names" (fun () ->
        let cg = Interproc.Callgraph.build (parse two_units) in
        let mr = Interproc.Modref.compute cg in
        let site = List.hd (Interproc.Callgraph.sites cg) in
        let caller = Option.get (Interproc.Callgraph.unit_named cg "P") in
        let tbl = Symbol.build caller in
        let mods, refs = Interproc.Modref.translate mr ~site ~tbl in
        check_bool "A modified" true (List.mem "A" mods);
        check_bool "X referenced" true (List.mem "X" refs);
        check_bool "X not modified" false (List.mem "X" mods));
    case "modref: transitive through wrappers" (fun () ->
        let src =
          "      PROGRAM P\n      REAL A(10)\n      CALL OUTER(A)\n      END\n\
          \      SUBROUTINE OUTER(B)\n      REAL B(10)\n      CALL INNER(B)\n      END\n\
          \      SUBROUTINE INNER(C)\n      REAL C(10)\n      C(1) = 0.0\n      END\n"
        in
        let cg = Interproc.Callgraph.build (parse src) in
        let mr = Interproc.Modref.compute cg in
        match Interproc.Modref.summary_of mr "OUTER" with
        | Some s -> check_bool "B via INNER" true (Interproc.Modref.SSet.mem "B" s.Interproc.Modref.mods)
        | None -> Alcotest.fail "no summary");
    case "modref: common effects propagate" (fun () ->
        let src =
          "      PROGRAM P\n      COMMON /G/ Q\n      CALL S\n      END\n\
          \      SUBROUTINE S\n      COMMON /G/ Q\n      Q = 1.0\n      END\n"
        in
        let cg = Interproc.Callgraph.build (parse src) in
        let mr = Interproc.Modref.compute cg in
        match Interproc.Modref.summary_of mr "P" with
        | Some s -> check_bool "Q modified" true (Interproc.Modref.SSet.mem "Q" s.Interproc.Modref.mods)
        | None -> Alcotest.fail "no summary");
    case "kill: unconditional assignment kills" (fun () ->
        let src =
          "      PROGRAM P\n      CALL S(X)\n      END\n\
          \      SUBROUTINE S(Y)\n      Y = 1.0\n      END\n"
        in
        let cg = Interproc.Callgraph.build (parse src) in
        let mr = Interproc.Modref.compute cg in
        let k = Interproc.Ipkill.compute cg mr in
        check_bool "Y killed" true (List.mem "Y" (Interproc.Ipkill.kills_of k "S")));
    case "kill: conditional assignment does not kill" (fun () ->
        let src =
          "      SUBROUTINE S(Y, N)\n      IF (N .GT. 0) THEN\n      Y = 1.0\n      ENDIF\n      END\n"
        in
        let cg = Interproc.Callgraph.build (parse src) in
        let mr = Interproc.Modref.compute cg in
        let k = Interproc.Ipkill.compute cg mr in
        check_bool "not killed" false (List.mem "Y" (Interproc.Ipkill.kills_of k "S")));
    case "kill: use before def is not a kill" (fun () ->
        let src = "      SUBROUTINE S(Y)\n      Y = Y + 1.0\n      END\n" in
        let cg = Interproc.Callgraph.build (parse src) in
        let mr = Interproc.Modref.compute cg in
        let k = Interproc.Ipkill.compute cg mr in
        check_bool "not killed" false (List.mem "Y" (Interproc.Ipkill.kills_of k "S")));
    case "kill enables privatization through a call" (fun () ->
        (* T is killed by SETT on every iteration: loop parallelizes *)
        let src =
          "      PROGRAM P\n      REAL A(10), T\n      DO I = 1, 10\n        CALL SETT(T, I)\n        A(I) = T\n      ENDDO\n      PRINT *, A(1)\n      END\n\
          \      SUBROUTINE SETT(T, I)\n      T = 2.0 * I\n      END\n"
        in
        let p = parse src in
        let summ = Interproc.Summary.analyze p in
        let u = List.hd p.Ast.punits in
        let env = Interproc.Summary.env_for summ u in
        let ddg = Dependence.Ddg.compute env in
        check_bool "parallel" true
          (Dependence.Ddg.parallelizable env ddg (loop_sid (loop_by_iv env "I")));
        (* without interprocedural analysis the same loop blocks *)
        let env0 = Dependence.Depenv.make u in
        let ddg0 = Dependence.Ddg.compute env0 in
        check_bool "blocked without" false
          (Dependence.Ddg.parallelizable env0 ddg0 (loop_sid (loop_by_iv env0 "I"))));
    case "sections: row writes are disjoint across iterations" (fun () ->
        let w = Option.get (Workloads.by_name "callnest") in
        let p = Workloads.program w in
        let summ = Interproc.Summary.analyze p in
        let u = List.hd p.Ast.punits in
        let env = Interproc.Summary.env_for summ u in
        let ddg = Dependence.Ddg.compute env in
        List.iter
          (fun (l : Dependence.Loopnest.loop) ->
            check_bool "parallel" true
              (Dependence.Ddg.parallelizable env ddg (loop_sid l)))
          (Dependence.Loopnest.loops env.Dependence.Depenv.nest));
    case "sections summary shape" (fun () ->
        let w = Option.get (Workloads.by_name "callnest") in
        let cg = Interproc.Callgraph.build (Workloads.program w) in
        let sec = Interproc.Sections.compute cg in
        match List.assoc_opt "A" (Interproc.Sections.summary_of sec "INITRO") with
        | Some { Interproc.Sections.sec_w = Some [ d1; d2 ]; _ } ->
          (match d1 with
          | Interproc.Sections.Point _ -> ()
          | _ -> Alcotest.fail "dim1 should be a point (the row index)");
          (match d2 with
          | Interproc.Sections.Range _ | Interproc.Sections.Point _ -> ()
          | Interproc.Sections.Star -> Alcotest.fail "dim2 should be bounded")
        | _ -> Alcotest.fail "no write section for A");
    case "ipconst: consistent literal reaches callee" (fun () ->
        let src =
          "      PROGRAM P\n      CALL S(8)\n      CALL S(8)\n      END\n\
          \      SUBROUTINE S(N)\n      INTEGER N\n      END\n"
        in
        let cg = Interproc.Callgraph.build (parse src) in
        let ic = Interproc.Ipconst.compute cg in
        check_bool "N=8" true (Interproc.Ipconst.constants_of ic "S" = [ ("N", 8) ]));
    case "ipconst: conflicting sites give nothing" (fun () ->
        let src =
          "      PROGRAM P\n      CALL S(8)\n      CALL S(9)\n      END\n\
          \      SUBROUTINE S(N)\n      INTEGER N\n      END\n"
        in
        let cg = Interproc.Callgraph.build (parse src) in
        let ic = Interproc.Ipconst.compute cg in
        check_bool "none" true (Interproc.Ipconst.constants_of ic "S" = []));
    case "ipconst: parameters evaluate at the call site" (fun () ->
        let src =
          "      PROGRAM P\n      INTEGER N\n      PARAMETER (N = 4)\n      CALL S(2*N)\n      END\n\
          \      SUBROUTINE S(M)\n      INTEGER M\n      END\n"
        in
        let cg = Interproc.Callgraph.build (parse src) in
        let ic = Interproc.Ipconst.compute cg in
        check_bool "M=8" true (Interproc.Ipconst.constants_of ic "S" = [ ("M", 8) ]));
    case "ipconst: transitive through one level" (fun () ->
        let src =
          "      PROGRAM P\n      CALL MID(6)\n      END\n\
          \      SUBROUTINE MID(N)\n      INTEGER N\n      CALL LEAF(N)\n      END\n\
          \      SUBROUTINE LEAF(M)\n      INTEGER M\n      END\n"
        in
        let cg = Interproc.Callgraph.build (parse src) in
        let ic = Interproc.Ipconst.compute cg in
        check_bool "M=6" true (Interproc.Ipconst.constants_of ic "LEAF" = [ ("M", 6) ]));
    case "unknown callee treated conservatively" (fun () ->
        let src =
          "      PROGRAM P\n      REAL A(10)\n      DO I = 1, 10\n        CALL MYSTERY(A, I)\n      ENDDO\n      END\n"
        in
        let p = parse src in
        let summ = Interproc.Summary.analyze p in
        let u = List.hd p.Ast.punits in
        let env = Interproc.Summary.env_for summ u in
        let ddg = Dependence.Ddg.compute env in
        check_bool "blocked" false
          (Dependence.Ddg.parallelizable env ddg (loop_sid (loop_by_iv env "I"))));
  ]

let alias_suite =
  [
    case "aliased formals block false independence" (fun () ->
        (* S sees X and Y as distinct, but P passes A twice: the loop
           in S writes X(I) and reads Y(I+1) = X(I+1) — a real carried
           dependence *)
        let src =
          "      PROGRAM P\n      REAL A(20)\n      CALL S(A, A, 20)\n      END\n\
          \      SUBROUTINE S(X, Y, N)\n      INTEGER N, I\n      REAL X(N), Y(N)\n      DO I = 1, N-1\n        X(I) = Y(I+1) * 0.5\n      ENDDO\n      END\n"
        in
        let p = parse src in
        let summ = Interproc.Summary.analyze p in
        let s_unit =
          List.find (fun (u : Ast.program_unit) -> u.Ast.uname = "S") p.Ast.punits
        in
        let env = Interproc.Summary.env_for summ s_unit in
        let ddg = Dependence.Ddg.compute env in
        check_bool "blocked via alias" false
          (Dependence.Ddg.parallelizable env ddg (loop_sid (loop_by_iv env "I")));
        (* without the alias information the loop would look parallel *)
        let env0 = Dependence.Depenv.make s_unit in
        let ddg0 = Dependence.Ddg.compute env0 in
        check_bool "looks parallel without" true
          (Dependence.Ddg.parallelizable env0 ddg0 (loop_sid (loop_by_iv env0 "I"))));
    case "aligned alias still allows disproof by subscripts" (fun () ->
        (* X(I) vs Y(I): aligned alias means same element — only a
           same-iteration relation, so the loop stays parallel *)
        let src =
          "      PROGRAM P\n      REAL A(20)\n      CALL S(A, A, 20)\n      END\n\
          \      SUBROUTINE S(X, Y, N)\n      INTEGER N, I\n      REAL X(N), Y(N)\n      DO I = 1, N\n        X(I) = Y(I) * 0.5\n      ENDDO\n      END\n"
        in
        let p = parse src in
        let summ = Interproc.Summary.analyze p in
        let s_unit =
          List.find (fun (u : Ast.program_unit) -> u.Ast.uname = "S") p.Ast.punits
        in
        let env = Interproc.Summary.env_for summ s_unit in
        let ddg = Dependence.Ddg.compute env in
        check_bool "parallel" true
          (Dependence.Ddg.parallelizable env ddg (loop_sid (loop_by_iv env "I"))));
    case "offset actual degrades to may-alias" (fun () ->
        (* CALL S(A, A(3)): unknown overlap — even same subscripts must
           be assumed dependent *)
        let src =
          "      PROGRAM P\n      REAL A(30)\n      CALL S(A, A(3), 20)\n      END\n\
          \      SUBROUTINE S(X, Y, N)\n      INTEGER N, I\n      REAL X(N), Y(N)\n      DO I = 1, N\n        X(I) = Y(I) * 0.5\n      ENDDO\n      END\n"
        in
        let p = parse src in
        let summ = Interproc.Summary.analyze p in
        let s_unit =
          List.find (fun (u : Ast.program_unit) -> u.Ast.uname = "S") p.Ast.punits
        in
        let env = Interproc.Summary.env_for summ s_unit in
        let ddg = Dependence.Ddg.compute env in
        check_bool "blocked" false
          (Dependence.Ddg.parallelizable env ddg (loop_sid (loop_by_iv env "I"))));
    case "alias propagates through wrappers" (fun () ->
        let src =
          "      PROGRAM P\n      REAL A(20)\n      CALL MID(A, A)\n      END\n\
          \      SUBROUTINE MID(U, V)\n      REAL U(20), V(20)\n      CALL LEAF(U, V)\n      END\n\
          \      SUBROUTINE LEAF(X, Y)\n      REAL X(20), Y(20)\n      X(1) = Y(2)\n      END\n"
        in
        let cg = Interproc.Callgraph.build (parse src) in
        let al = Interproc.Aliases.compute cg in
        check_bool "leaf pair" true
          (Interproc.Aliases.query al "LEAF" "X" "Y" = `Aligned));
    case "distinct arrays stay unaliased" (fun () ->
        let src =
          "      PROGRAM P\n      REAL A(20), B(20)\n      CALL S(A, B, 20)\n      END\n\
          \      SUBROUTINE S(X, Y, N)\n      INTEGER N\n      REAL X(N), Y(N)\n      X(1) = Y(1)\n      END\n"
        in
        let cg = Interproc.Callgraph.build (parse src) in
        let al = Interproc.Aliases.compute cg in
        check_bool "no alias" true (Interproc.Aliases.query al "S" "X" "Y" = `No));
    case "simulator agrees: aliased recurrence is order dependent" (fun () ->
        (* force-parallelize the aliased loop and watch the orders
           disagree — the alias analysis prevents exactly this *)
        let src order =
          ignore order;
          "      PROGRAM P\n      REAL A(20)\n      INTEGER I\n      DO I = 1, 20\n        A(I) = FLOAT(I)\n      ENDDO\n      CALL S(A, A, 20)\n      PRINT *, A(1)\n      END\n\
          \      SUBROUTINE S(X, Y, N)\n      INTEGER N, I\n      REAL X(N), Y(N)\n      PARALLEL DO I = 1, N-1\n        X(I) = Y(I+1) * 0.5\n      ENDDO\n      END\n"
        in
        let a = Sim.Interp.run ~par_order:Sim.Interp.Seq (parse (src ())) in
        let b = Sim.Interp.run ~par_order:Sim.Interp.Reverse (parse (src ())) in
        check_bool "orders differ" false
          (Sim.Interp.outputs_match a.Sim.Interp.output b.Sim.Interp.output));
  ]

let suite = suite @ alias_suite
