open Fortran_front
open Util

let toks src =
  List.map fst (Lexer.tokenize ~file:"t.f" src)
  |> List.filter (fun t -> t <> Token.NEWLINE && t <> Token.EOF)

let show ts = String.concat " " (List.map Token.to_string ts)

let expect name src expected () =
  check_string name expected (show (toks src))

let suite =
  [
    case "identifiers upcased" (expect "ident" "foo Bar BAZ" "FOO BAR BAZ");
    case "integer literal" (expect "int" "42" "42");
    case "real literal" (expect "real" "3.5" "3.5");
    case "real exponent" (expect "exp" "1.5E2" "150.");
    case "real d exponent" (expect "dexp" "2.0D1" "20.");
    case "leading dot real" (expect "dot" ".5" "0.5");
    case "dotted ops vs real: 1.EQ.2"
      (expect "eq" "1.EQ.2" "1 .EQ. 2");
    case "dotted ops vs real: 1.E2 is a real"
      (expect "e2" "1.E2" "100.");
    case "relational symbols" (expect "rel" "a <= b >= c < d > e" "A .LE. B .GE. C .LT. D .GT. E");
    case "== and /=" (expect "eqne" "a == b /= c" "A .EQ. B .NE. C");
    case "logical ops" (expect "log" ".NOT. a .AND. b .OR. .TRUE." ".NOT. A .AND. B .OR. .TRUE.");
    case "power vs star" (expect "pow" "a ** b * c" "A ** B * C");
    case "end do fused" (expect "enddo" "END DO" "ENDDO");
    case "end if fused" (expect "endif" "END IF" "ENDIF");
    case "else if fused" (expect "elseif" "ELSE IF" "ELSEIF");
    case "go to fused" (expect "goto" "GO TO 10" "GOTO 10");
    case "double precision fused"
      (expect "dp" "DOUBLE PRECISION X" "DOUBLEPRECISION X");
    case "parallel do fused" (expect "pdo" "PARALLEL DO" "DOALL");
    case "string literal" (expect "str" "'hello'" "'hello'");
    case "string with quote" (expect "strq" "'don''t'" "'don't'");
    case "bang comment stripped" (expect "bang" "a + b ! comment" "A + B");
    case "c comment line" (fun () ->
        check_string "comment" "A = 1"
          (show (toks "C this is a comment\n      a = 1\n")));
    case "star comment line" (fun () ->
        check_string "comment" "A = 1"
          (show (toks "* a comment\n      a = 1\n")));
    case "continuation joins lines" (fun () ->
        check_string "cont" "A = B + C" (show (toks "      a = b + &\n     & c\n")));
    case "newlines collapse" (fun () ->
        let all = List.map fst (Lexer.tokenize ~file:"t.f" "a\n\n\nb\n") in
        let nl = List.length (List.filter (( = ) Token.NEWLINE) all) in
        check_int "one separator plus final" 2 nl);
    case "keyword vs ident" (expect "kw" "DO IF THEN DOT" "DO IF THEN DOT");
    case "unterminated string raises" (fun () ->
        match Lexer.tokenize ~file:"t.f" "'abc" with
        | exception Lexer.Error _ -> ()
        | _ -> Alcotest.fail "expected Lexer.Error");
    case "illegal char raises" (fun () ->
        match Lexer.tokenize ~file:"t.f" "a # b" with
        | exception Lexer.Error _ -> ()
        | _ -> Alcotest.fail "expected Lexer.Error");
    case "locations track lines" (fun () ->
        let all = Lexer.tokenize ~file:"t.f" "a\n  b\n" in
        let find t =
          List.find (fun (tok, _) -> Token.equal tok t) all |> snd
        in
        check_int "A line" 1 (find (Token.IDENT "A")).Loc.line;
        check_int "B line" 2 (find (Token.IDENT "B")).Loc.line;
        check_int "B col" 3 (find (Token.IDENT "B")).Loc.col);
  ]
