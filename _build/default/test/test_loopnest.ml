open Dependence
open Util

let nest3 =
  "      PROGRAM P\n\
  \      REAL A(10,10,10)\n\
  \      DO I = 1, 10\n\
  \        DO J = 1, 10\n\
  \          DO K = 1, 10\n\
  \            A(I,J,K) = 0.0\n\
  \          ENDDO\n\
  \        ENDDO\n\
  \        X = I\n\
  \      ENDDO\n\
  \      DO L = 1, 5\n\
  \        Y = L\n\
  \      ENDDO\n\
  \      END\n"

let suite =
  [
    case "preorder and depths" (fun () ->
        let env = env_of nest3 in
        let loops = Loopnest.loops env.Depenv.nest in
        check_int "four loops" 4 (List.length loops);
        let ivs = List.map (fun (l : Loopnest.loop) -> l.Loopnest.header.Fortran_front.Ast.dvar) loops in
        check_string "order" "I J K L" (String.concat " " ivs);
        let depths = List.map (fun (l : Loopnest.loop) -> l.Loopnest.depth) loops in
        check_string "depths" "1 2 3 1"
          (String.concat " " (List.map string_of_int depths)));
    case "parents outermost first" (fun () ->
        let env = env_of nest3 in
        let k = loop_by_iv env "K" in
        let i = loop_by_iv env "I" and j = loop_by_iv env "J" in
        check_bool "parents" true
          (k.Loopnest.parents = [ loop_sid i; loop_sid j ]));
    case "enclosing of a statement" (fun () ->
        let env = env_of nest3 in
        let k = loop_by_iv env "K" in
        let body = Loopnest.body_stmts env.Depenv.nest (loop_sid k) in
        let inner = (List.hd body).Fortran_front.Ast.sid in
        check_int "three enclosing" 3
          (List.length (Loopnest.enclosing env.Depenv.nest inner)));
    case "common loops of two statements" (fun () ->
        let env = env_of nest3 in
        let k = loop_by_iv env "K" in
        let body = Loopnest.body_stmts env.Depenv.nest (loop_sid k) in
        let deep = (List.hd body).Fortran_front.Ast.sid in
        (* X = I is at depth 1 inside I only *)
        let i = loop_by_iv env "I" in
        let x =
          List.find
            (fun (s : Fortran_front.Ast.stmt) ->
              match s.Fortran_front.Ast.node with
              | Fortran_front.Ast.Assign (Fortran_front.Ast.Var "X", _) -> true
              | _ -> false)
            (Loopnest.body_stmts env.Depenv.nest (loop_sid i))
        in
        let common = Loopnest.common env.Depenv.nest deep x.Fortran_front.Ast.sid in
        check_int "one common" 1 (List.length common);
        check_bool "is I" true (loop_sid (List.hd common) = loop_sid i));
    case "disjoint loops share nothing" (fun () ->
        let env = env_of nest3 in
        let i = loop_by_iv env "I" and l = loop_by_iv env "L" in
        check_int "none" 0
          (List.length (Loopnest.common env.Depenv.nest (loop_sid i) (loop_sid l))));
    case "nested_in" (fun () ->
        let env = env_of nest3 in
        let i = loop_by_iv env "I" and k = loop_by_iv env "K" in
        check_bool "k in i" true
          (Loopnest.nested_in env.Depenv.nest ~inner:(loop_sid k) ~outer:(loop_sid i));
        check_bool "i not in k" false
          (Loopnest.nested_in env.Depenv.nest ~inner:(loop_sid i) ~outer:(loop_sid k)));
    case "max_depth" (fun () ->
        let env = env_of nest3 in
        check_int "3" 3 (Loopnest.max_depth env.Depenv.nest));
    case "loops inside IF branches found" (fun () ->
        let env =
          env_of
            "      PROGRAM P\n      IF (X .GT. 0) THEN\n        DO I = 1, 3\n          Y = I\n        ENDDO\n      ENDIF\n      END\n"
        in
        check_int "one" 1 (List.length (Loopnest.loops env.Depenv.nest)));
  ]
