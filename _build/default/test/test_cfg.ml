open Fortran_front
open Scalar_analysis
open Util

let build src = Cfg.build (parse_unit src)

let sid_of_assign cfg var =
  let found = ref None in
  List.iter
    (fun n ->
      match Cfg.stmt_of cfg n with
      | Some { Ast.node = Ast.Assign (Ast.Var v, _); sid; _ } when v = var ->
        found := Some sid
      | _ -> ())
    (Cfg.nodes cfg);
  Option.get !found

let suite =
  [
    case "straight line chains" (fun () ->
        let cfg = build "      PROGRAM P\n      X = 1\n      Y = 2\n      END\n" in
        let x = Cfg.Stmt (sid_of_assign cfg "X") in
        let y = Cfg.Stmt (sid_of_assign cfg "Y") in
        check_bool "entry->x" true
          (List.exists (Cfg.node_equal x) (Cfg.succs cfg Cfg.Entry));
        check_bool "x->y" true (List.exists (Cfg.node_equal y) (Cfg.succs cfg x));
        check_bool "y->exit" true
          (List.exists (Cfg.node_equal Cfg.Exit) (Cfg.succs cfg y)));
    case "loop has back edge and exit edge" (fun () ->
        let cfg =
          build "      PROGRAM P\n      DO I = 1, 3\n        X = I\n      ENDDO\n      END\n"
        in
        let do_node =
          List.find
            (fun n ->
              match Cfg.stmt_of cfg n with
              | Some { Ast.node = Ast.Do _; _ } -> true
              | _ -> false)
            (Cfg.nodes cfg)
        in
        let body = Cfg.Stmt (sid_of_assign cfg "X") in
        check_bool "do->body" true
          (List.exists (Cfg.node_equal body) (Cfg.succs cfg do_node));
        check_bool "do->exit (zero trip)" true
          (List.exists (Cfg.node_equal Cfg.Exit) (Cfg.succs cfg do_node));
        check_bool "body->do (back edge)" true
          (List.exists (Cfg.node_equal do_node) (Cfg.succs cfg body)));
    case "if has both branch edges" (fun () ->
        let cfg =
          build
            "      PROGRAM P\n      IF (A .GT. 0) THEN\n        X = 1\n      ELSE\n        Y = 2\n      ENDIF\n      END\n"
        in
        let if_node =
          List.find
            (fun n ->
              match Cfg.stmt_of cfg n with
              | Some { Ast.node = Ast.If _; _ } -> true
              | _ -> false)
            (Cfg.nodes cfg)
        in
        check_int "two successors" 2 (List.length (Cfg.succs cfg if_node)));
    case "goto edges to label" (fun () ->
        let cfg =
          build
            "      PROGRAM P\n      GOTO 20\n      X = 1\n 20   Y = 2\n      END\n"
        in
        let y = Cfg.Stmt (sid_of_assign cfg "Y") in
        let goto_node =
          List.find
            (fun n ->
              match Cfg.stmt_of cfg n with
              | Some { Ast.node = Ast.Goto _; _ } -> true
              | _ -> false)
            (Cfg.nodes cfg)
        in
        check_bool "goto->label" true
          (List.exists (Cfg.node_equal y) (Cfg.succs cfg goto_node));
        (* X is unreachable but still a node *)
        let x = Cfg.Stmt (sid_of_assign cfg "X") in
        check_bool "x present" true (List.mem x (Cfg.nodes cfg)));
    case "return edges to exit" (fun () ->
        let cfg = build "      SUBROUTINE S\n      RETURN\n      X = 1\n      END\n" in
        let ret =
          List.find
            (fun n ->
              match Cfg.stmt_of cfg n with
              | Some { Ast.node = Ast.Return; _ } -> true
              | _ -> false)
            (Cfg.nodes cfg)
        in
        check_bool "return->exit" true
          (List.exists (Cfg.node_equal Cfg.Exit) (Cfg.succs cfg ret)));
    case "preds mirror succs" (fun () ->
        let cfg =
          build "      PROGRAM P\n      DO I = 1, 3\n        X = I\n      ENDDO\n      END\n"
        in
        List.iter
          (fun n ->
            List.iter
              (fun m ->
                check_bool "mirror" true
                  (List.exists (Cfg.node_equal n) (Cfg.preds cfg m)))
              (Cfg.succs cfg n))
          (Cfg.nodes cfg));
    case "reverse postorder starts at entry" (fun () ->
        let cfg = build "      PROGRAM P\n      X = 1\n      END\n" in
        check_bool "entry first" true
          (Cfg.node_equal (List.hd (Cfg.nodes cfg)) Cfg.Entry));
    case "dot output mentions all statements" (fun () ->
        let cfg = build "      PROGRAM P\n      X = 1\n      END\n" in
        let dot = Cfg.dot cfg in
        check_bool "has X" true (contains ~needle:"X = 1" dot));
  ]
