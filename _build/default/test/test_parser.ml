open Fortran_front
open Util

let expr s = Parser.parse_expr_string s
let estr s = Pretty.expr_to_string (expr s)

let suite =
  [
    case "precedence: mul over add" (fun () ->
        check_string "p" "1 + 2 * X" (estr "1 + 2*x"));
    case "precedence: pow right assoc" (fun () ->
        match expr "a ** b ** c" with
        | Ast.Bin (Ast.Pow, Ast.Var "A", Ast.Bin (Ast.Pow, _, _)) -> ()
        | _ -> Alcotest.fail "expected right-assoc power");
    case "unary minus looser than pow" (fun () ->
        match expr "-a ** 2" with
        | Ast.Un (Ast.Neg, Ast.Bin (Ast.Pow, _, _)) -> ()
        | _ -> Alcotest.fail "expected -(a**2)");
    case "relational chain" (fun () ->
        match expr "a + 1 .LT. b * 2" with
        | Ast.Bin (Ast.Lt, Ast.Bin (Ast.Add, _, _), Ast.Bin (Ast.Mul, _, _)) -> ()
        | _ -> Alcotest.fail "bad relational parse");
    case "and binds tighter than or" (fun () ->
        match expr "a .OR. b .AND. c" with
        | Ast.Bin (Ast.Or, Ast.Var "A", Ast.Bin (Ast.And, _, _)) -> ()
        | _ -> Alcotest.fail "bad logical precedence");
    case "array ref vs call is an Index" (fun () ->
        match expr "F(I, J+1)" with
        | Ast.Index ("F", [ Ast.Var "I"; Ast.Bin (Ast.Add, _, _) ]) -> ()
        | _ -> Alcotest.fail "bad index parse");
    case "trailing garbage rejected" (fun () ->
        match expr "a + b c" with
        | exception Parser.Error _ -> ()
        | _ -> Alcotest.fail "expected Parser.Error");
    case "program unit structure" (fun () ->
        let u = parse_unit "      PROGRAM P\n      INTEGER I\n      I = 1\n      END\n" in
        check_string "name" "P" u.Ast.uname;
        check_bool "main" true (u.Ast.kind = Ast.Main);
        check_int "decls" 1 (List.length u.Ast.decls);
        check_int "body" 1 (List.length u.Ast.body));
    case "subroutine formals" (fun () ->
        let u = parse_unit "      SUBROUTINE S(A, B, N)\n      RETURN\n      END\n" in
        match u.Ast.kind with
        | Ast.Subroutine [ "A"; "B"; "N" ] -> ()
        | _ -> Alcotest.fail "bad formals");
    case "function unit" (fun () ->
        let u = parse_unit "      REAL FUNCTION F(X)\n      F = X + 1.0\n      END\n" in
        match u.Ast.kind with
        | Ast.Function (Ast.Treal, [ "X" ]) -> ()
        | _ -> Alcotest.fail "bad function kind");
    case "enddo loop" (fun () ->
        let u = parse_body "      DO I = 1, 10\n        X = I\n      ENDDO\n" in
        match (List.hd u.Ast.body).Ast.node with
        | Ast.Do ({ Ast.dvar = "I"; parallel = false; _ }, [ _ ]) -> ()
        | _ -> Alcotest.fail "bad loop");
    case "labeled do with continue" (fun () ->
        let u =
          parse_body "      DO 10 I = 1, 10\n        X = I\n 10   CONTINUE\n"
        in
        match (List.hd u.Ast.body).Ast.node with
        | Ast.Do (_, body) -> check_int "body incl. terminator" 2 (List.length body)
        | _ -> Alcotest.fail "bad labeled loop");
    case "shared terminator label" (fun () ->
        let u =
          parse_body
            "      DO 10 I = 1, 4\n      DO 10 J = 1, 4\n        X = I + J\n 10   CONTINUE\n"
        in
        match (List.hd u.Ast.body).Ast.node with
        | Ast.Do (_, [ { Ast.node = Ast.Do (_, inner); _ } ]) ->
          check_int "inner has stmt+terminator" 2 (List.length inner)
        | _ -> Alcotest.fail "bad shared terminator nest");
    case "do with step" (fun () ->
        let u = parse_body "      DO I = 10, 1, -2\n      ENDDO\n" in
        match (List.hd u.Ast.body).Ast.node with
        | Ast.Do ({ Ast.step = Some (Ast.Un (Ast.Neg, Ast.Int 2)); _ }, _) -> ()
        | _ -> Alcotest.fail "bad step");
    case "parallel do" (fun () ->
        let u = parse_body "      PARALLEL DO I = 1, 4\n        X = I\n      ENDDO\n" in
        match (List.hd u.Ast.body).Ast.node with
        | Ast.Do ({ Ast.parallel = true; _ }, _) -> ()
        | _ -> Alcotest.fail "expected parallel loop");
    case "block if chain" (fun () ->
        let u =
          parse_body
            "      IF (A .GT. 0) THEN\n        X = 1\n      ELSE IF (A .LT. 0) THEN\n        X = 2\n      ELSE\n        X = 3\n      ENDIF\n"
        in
        match (List.hd u.Ast.body).Ast.node with
        | Ast.If (branches, els) ->
          check_int "branches" 2 (List.length branches);
          check_int "else" 1 (List.length els)
        | _ -> Alcotest.fail "bad if");
    case "logical if" (fun () ->
        let u = parse_body "      IF (A .GT. 0) X = 1\n" in
        match (List.hd u.Ast.body).Ast.node with
        | Ast.If ([ (_, [ { Ast.node = Ast.Assign _; _ } ]) ], []) -> ()
        | _ -> Alcotest.fail "bad logical if");
    case "goto and labels" (fun () ->
        let u =
          parse_body "      GOTO 20\n      X = 1\n 20   CONTINUE\n"
        in
        match List.map (fun (s : Ast.stmt) -> s.Ast.node) u.Ast.body with
        | [ Ast.Goto 20; Ast.Assign _; Ast.Continue ] -> ()
        | _ -> Alcotest.fail "bad goto parse");
    case "call with and without args" (fun () ->
        let u = parse_body "      CALL FOO\n      CALL BAR(1, X)\n" in
        match List.map (fun (s : Ast.stmt) -> s.Ast.node) u.Ast.body with
        | [ Ast.Call ("FOO", []); Ast.Call ("BAR", [ _; _ ]) ] -> ()
        | _ -> Alcotest.fail "bad calls");
    case "print and write" (fun () ->
        let u = parse_body "      PRINT *, X, Y\n      WRITE(*,*) Z\n" in
        match List.map (fun (s : Ast.stmt) -> s.Ast.node) u.Ast.body with
        | [ Ast.Print [ _; _ ]; Ast.Print [ _ ] ] -> ()
        | _ -> Alcotest.fail "bad io");
    case "dimension statement merges" (fun () ->
        let u =
          parse_unit
            "      PROGRAM P\n      REAL A\n      DIMENSION A(10)\n      A(1) = 0.0\n      END\n"
        in
        let d = List.find (fun (d : Ast.decl) -> d.Ast.dname = "A") u.Ast.decls in
        check_int "dims" 1 (List.length d.Ast.dims));
    case "parameter attaches value" (fun () ->
        let u =
          parse_unit
            "      PROGRAM P\n      INTEGER N\n      PARAMETER (N = 42)\n      END\n"
        in
        let d = List.find (fun (d : Ast.decl) -> d.Ast.dname = "N") u.Ast.decls in
        check_bool "init" true (d.Ast.init = Some (Ast.Int 42)));
    case "common blocks" (fun () ->
        let u =
          parse_unit "      PROGRAM P\n      COMMON /BLK/ A, B(4)\n      END\n"
        in
        let a = List.find (fun (d : Ast.decl) -> d.Ast.dname = "A") u.Ast.decls in
        check_bool "common" true (a.Ast.common_block = Some "BLK"));
    case "lower:upper dims" (fun () ->
        let u = parse_unit "      PROGRAM P\n      REAL A(0:9, -1:1)\n      END\n" in
        let d = List.find (fun (d : Ast.decl) -> d.Ast.dname = "A") u.Ast.decls in
        match d.Ast.dims with
        | [ (Ast.Int 0, Ast.Int 9); (Ast.Un (Ast.Neg, Ast.Int 1), Ast.Int 1) ] -> ()
        | _ -> Alcotest.fail "bad bounds");
    case "multiple units" (fun () ->
        let p = parse "      PROGRAM P\n      END\n      SUBROUTINE S\n      END\n" in
        check_int "units" 2 (List.length p.Ast.punits));
    case "implicit none accepted" (fun () ->
        let u = parse_unit "      PROGRAM P\n      IMPLICIT NONE\n      END\n" in
        check_int "no decls" 0 (List.length u.Ast.decls));
    case "syntax error reported with location" (fun () ->
        match parse "      PROGRAM P\n      DO = 1\n      END\n" with
        | exception Parser.Error (_, loc) -> check_int "line" 2 loc.Loc.line
        | _ -> Alcotest.fail "expected Parser.Error");
  ]

let implicit_suite =
  [
    case "IMPLICIT type ranges drive typing" (fun () ->
        let u =
          parse_unit
            "      PROGRAM P\n      IMPLICIT REAL (I-K)\n      IMPLICIT INTEGER (X)\n      Y = I + X\n      END\n"
        in
        let tbl = Fortran_front.Symbol.build u in
        check_bool "I real" true (Fortran_front.Symbol.typ_of tbl "I" = Ast.Treal);
        check_bool "X integer" true
          (Fortran_front.Symbol.typ_of tbl "X" = Ast.Tinteger);
        check_bool "Y default real" true
          (Fortran_front.Symbol.typ_of tbl "Y" = Ast.Treal));
    case "IMPLICIT survives the pretty printer" (fun () ->
        let u =
          parse_unit
            "      PROGRAM P\n      IMPLICIT INTEGER (A-C, Z)\n      A = 3.7\n      PRINT *, A\n      END\n"
        in
        let printed = Fortran_front.Pretty.unit_to_string u in
        check_bool "printed" true (contains ~needle:"IMPLICIT INTEGER (A-C, Z)" printed);
        let u2 = parse_unit printed in
        check_bool "kept" true (u2.Ast.implicits = [ (Ast.Tinteger, [ ('A', 'C'); ('Z', 'Z') ]) ]));
    case "IMPLICIT typing affects interpreter conversion" (fun () ->
        (* A is INTEGER by IMPLICIT: assigning 3.7 truncates *)
        let out =
          run_output
            "      PROGRAM P\n      IMPLICIT INTEGER (A)\n      A = 3.7\n      PRINT *, A\n      END\n"
        in
        check_string "3" "3" (List.hd out));
    case "IMPLICIT NONE accepted and printed" (fun () ->
        let u = parse_unit "      PROGRAM P\n      IMPLICIT NONE\n      INTEGER K\n      K = 1\n      END\n" in
        check_bool "flag" true u.Ast.implicit_none;
        let printed = Fortran_front.Pretty.unit_to_string u in
        check_bool "printed" true (contains ~needle:"IMPLICIT NONE" printed));
  ]

let suite = suite @ implicit_suite
