test/test_transform.ml: Alcotest Ast Ddg Dependence Depenv Fortran_front List Loopnest Option Pretty Sim Transform Util Workloads
