test/test_command.ml: Alcotest List Option Ped String Transform Util Workloads
