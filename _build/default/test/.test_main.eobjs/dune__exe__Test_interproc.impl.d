test/test_interproc.ml: Alcotest Ast Dependence Fortran_front Interproc List Option Sim String Symbol Util Workloads
