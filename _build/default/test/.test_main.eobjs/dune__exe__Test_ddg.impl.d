test/test_ddg.ml: Ddg Dependence Depenv Fortran_front List Loopnest Option Printf Util Workloads
