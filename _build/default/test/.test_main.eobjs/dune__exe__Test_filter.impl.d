test/test_filter.ml: Ddg Dependence List Ped Util
