test/test_parser.ml: Alcotest Ast Fortran_front List Loc Parser Pretty Util
