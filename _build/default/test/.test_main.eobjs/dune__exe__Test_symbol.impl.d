test/test_symbol.ml: Alcotest Ast Fortran_front Parser Symbol Util
