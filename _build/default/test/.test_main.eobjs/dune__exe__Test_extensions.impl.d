test/test_extensions.ml: Alcotest Arrayprivate Ast Ddg Dependence Depenv Filename Fortran_front List Loopnest Option Parser Ped Pretty Printf Sim Sys Transform Util Workloads
