test/test_integration.ml: Alcotest Ast Dependence Filename Fortran_front Fun List Option Parser Ped Pretty Printf Scanf Sim String Sys Transform Util Workloads
