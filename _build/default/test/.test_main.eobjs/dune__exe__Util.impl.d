test/util.ml: Alcotest Ast Dependence Fortran_front List Parser Printf Sim String
