test/test_property.ml: Ast Ddg Dependence Depenv Fortran_front List Loopnest Option Parser Pretty Printexc QCheck2 QCheck_alcotest Sim Transform
