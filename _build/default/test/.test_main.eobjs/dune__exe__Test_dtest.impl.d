test/test_dtest.ml: Alcotest Array Dependence Dtest Fun List QCheck2 QCheck_alcotest Util
