test/test_loopnest.ml: Dependence Depenv Fortran_front List Loopnest String Util
