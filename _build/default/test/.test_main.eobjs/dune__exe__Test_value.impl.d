test/test_value.ml: Alcotest Ast Fortran_front Sim Util
