test/test_lexer.ml: Alcotest Fortran_front Lexer List Loc String Token Util
