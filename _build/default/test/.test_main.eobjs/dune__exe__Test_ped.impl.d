test/test_ped.ml: Alcotest Ddg Dependence Depenv Fortran_front List Loopnest Option Ped Printf String Transform Util Workloads
