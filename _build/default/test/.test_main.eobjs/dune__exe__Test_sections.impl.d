test/test_sections.ml: Alcotest Ast Fortran_front Interproc List Option Pretty Symbol Util
