test/test_marking.ml: Ddg Dependence List Ped Util
