test/test_dataflow.ml: Alcotest Ast Cfg Constants Control_dep Defuse Dominators Fortran_front List Liveness Option Parser Reaching Scalar_analysis Symbol Util Workloads
