test/test_cfg.ml: Ast Cfg Fortran_front List Option Scalar_analysis Util
