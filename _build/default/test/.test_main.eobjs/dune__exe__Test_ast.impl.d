test/test_ast.ml: Alcotest Ast Fortran_front List Option Parser Pretty String Util
