test/test_symbolic.ml: Alcotest Ast Dependence Fortran_front Option Parser Pretty QCheck2 QCheck_alcotest Scalar_analysis Symbolic Util
