test/test_sim.ml: Alcotest Dependence List Ped Sim Transform Util Workloads
