test/test_pretty.ml: Alcotest Ast Fortran_front List Parser Pretty QCheck2 QCheck_alcotest String Util Workloads
