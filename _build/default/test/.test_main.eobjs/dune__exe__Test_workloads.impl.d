test/test_workloads.ml: List Ped Sim String Util Workloads
