test/test_perf.ml: Alcotest Dependence Depenv Float Fortran_front List Loopnest Option Ped Perf Sim Util Workloads
