test/test_varclass.ml: Alcotest Dependence List Option Printf Scalar_analysis Util Varclass
