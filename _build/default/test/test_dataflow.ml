open Fortran_front
open Scalar_analysis
open Util

let setup src =
  let u = parse_unit src in
  let tbl = Symbol.build u in
  let ctx = Defuse.make tbl u in
  let cfg = Cfg.build u in
  (u, ctx, cfg)

let assign_sid cfg var =
  let found = ref None in
  List.iter
    (fun n ->
      match Cfg.stmt_of cfg n with
      | Some { Ast.node = Ast.Assign (Ast.Var v, _); sid; _ } when v = var ->
        found := Some sid
      | _ -> ())
    (Cfg.nodes cfg);
  Option.get !found

let stmt_with cfg pred =
  List.find_map
    (fun n ->
      match Cfg.stmt_of cfg n with
      | Some s when pred s -> Some s.Ast.sid
      | _ -> None)
    (Cfg.nodes cfg)
  |> Option.get

let suite =
  [
    case "reaching: straight line kill" (fun () ->
        let _, ctx, cfg =
          setup "      PROGRAM P\n      X = 1\n      X = 2\n      Y = X\n      END\n"
        in
        let r = Reaching.analyze ctx cfg in
        let y = stmt_with cfg (fun s ->
            match s.Ast.node with Ast.Assign (Ast.Var "Y", _) -> true | _ -> false) in
        match Reaching.defs_of_use r y "X" with
        | [ { Reaching.def_at = Cfg.Stmt d; _ } ] ->
          (* only the second X = reaches *)
          let second = stmt_with cfg (fun s ->
              match s.Ast.node with
              | Ast.Assign (Ast.Var "X", Ast.Int 2) -> true | _ -> false) in
          check_int "second def" second d
        | _ -> Alcotest.fail "expected exactly one def");
    case "reaching: both branch defs reach" (fun () ->
        let _, ctx, cfg =
          setup
            "      PROGRAM P\n      IF (A .GT. 0) THEN\n        X = 1\n      ELSE\n        X = 2\n      ENDIF\n      Y = X\n      END\n"
        in
        let r = Reaching.analyze ctx cfg in
        let y = stmt_with cfg (fun s ->
            match s.Ast.node with Ast.Assign (Ast.Var "Y", _) -> true | _ -> false) in
        check_int "two defs" 2 (List.length (Reaching.defs_of_use r y "X")));
    case "reaching: loop def reaches around back edge" (fun () ->
        let _, ctx, cfg =
          setup
            "      PROGRAM P\n      DO I = 1, 3\n        Y = X\n        X = 1.0\n      ENDDO\n      END\n"
        in
        let r = Reaching.analyze ctx cfg in
        let y = stmt_with cfg (fun s ->
            match s.Ast.node with Ast.Assign (Ast.Var "Y", _) -> true | _ -> false) in
        (* Entry def and the loop def both reach the use *)
        check_int "two defs" 2 (List.length (Reaching.defs_of_use r y "X")));
    case "unique_def requires single non-entry def" (fun () ->
        let _, ctx, cfg =
          setup "      PROGRAM P\n      K = 3\n      X = K + 1.0\n      END\n"
        in
        let r = Reaching.analyze ctx cfg in
        let x = assign_sid cfg "X" in
        check_bool "unique" true (Reaching.unique_def r x "K" <> None));
    case "liveness: read keeps variable live" (fun () ->
        let _, ctx, cfg =
          setup "      PROGRAM P\n      X = 1\n      Y = X\n      END\n"
        in
        let l = Liveness.analyze ctx cfg in
        let x = assign_sid cfg "X" in
        check_bool "X live after def" true (Liveness.is_live_out l x "X"));
    case "liveness: dead after last use" (fun () ->
        let _, ctx, cfg =
          setup "      PROGRAM P\n      X = 1\n      Y = X\n      Y = 2\n      END\n"
        in
        let l = Liveness.analyze ctx cfg in
        let y2 = stmt_with cfg (fun s ->
            match s.Ast.node with
            | Ast.Assign (Ast.Var "Y", Ast.Int 2) -> true | _ -> false) in
        check_bool "X dead" false (Liveness.is_live_out l y2 "X"));
    case "liveness: all_escape keeps locals live at exit" (fun () ->
        let _, ctx, cfg = setup "      PROGRAM P\n      X = 1\n      END\n" in
        let l = Liveness.analyze ~all_escape:true ctx cfg in
        let x = assign_sid cfg "X" in
        check_bool "escapes" true (Liveness.is_live_out l x "X"));
    case "constants: simple propagation" (fun () ->
        let _, ctx, cfg =
          setup "      PROGRAM P\n      K = 3\n      L = K + 4\n      M = L\n      END\n"
        in
        let c = Constants.analyze ctx cfg in
        let m = assign_sid cfg "M" in
        check_bool "L=7" true
          (Constants.const_of_var c m "L" = Some (Constants.Cint 7)));
    case "constants: join of different values is bottom" (fun () ->
        let _, ctx, cfg =
          setup
            "      PROGRAM P\n      IF (A .GT. 0) THEN\n        K = 1\n      ELSE\n        K = 2\n      ENDIF\n      M = K\n      END\n"
        in
        let c = Constants.analyze ctx cfg in
        let m = assign_sid cfg "M" in
        check_bool "K unknown" true (Constants.const_of_var c m "K" = None));
    case "constants: loop variable is varying" (fun () ->
        let _, ctx, cfg =
          setup "      PROGRAM P\n      DO I = 1, 3\n        M = I\n      ENDDO\n      END\n"
        in
        let c = Constants.analyze ctx cfg in
        let m = assign_sid cfg "M" in
        check_bool "I varying" true (Constants.const_of_var c m "I" = None));
    case "constants: parameters seed the lattice" (fun () ->
        let _, ctx, cfg =
          setup
            "      PROGRAM P\n      INTEGER N\n      PARAMETER (N = 10)\n      M = N * 2\n      END\n"
        in
        let c = Constants.analyze ctx cfg in
        let m = assign_sid cfg "M" in
        check_bool "2N" true
          (Constants.int_at c m (Parser.parse_expr_string "N * 2") = Some 20));
    case "constants: call kills modifiable actuals" (fun () ->
        let _, ctx, cfg =
          setup "      PROGRAM P\n      K = 3\n      CALL S(K)\n      M = K\n      END\n"
        in
        let c = Constants.analyze ctx cfg in
        let m = assign_sid cfg "M" in
        check_bool "K clobbered" true (Constants.const_of_var c m "K" = None));
    case "dominators: loop body dominated by header" (fun () ->
        let _, _, cfg =
          setup "      PROGRAM P\n      DO I = 1, 3\n        X = I\n      ENDDO\n      END\n"
        in
        let dom = Dominators.dominators cfg in
        let do_n =
          List.find
            (fun n ->
              match Cfg.stmt_of cfg n with
              | Some { Ast.node = Ast.Do _; _ } -> true
              | _ -> false)
            (Cfg.nodes cfg)
        in
        let x = Cfg.Stmt (assign_sid cfg "X") in
        check_bool "dominates" true (Dominators.dominates dom do_n x));
    case "control dependence: then-branch on the if" (fun () ->
        let u, _, cfg =
          setup
            "      PROGRAM P\n      IF (A .GT. 0) THEN\n        X = 1\n      ENDIF\n      Y = 2\n      END\n"
        in
        ignore u;
        let edges = Control_dep.compute cfg in
        let if_sid = stmt_with cfg (fun s ->
            match s.Ast.node with Ast.If _ -> true | _ -> false) in
        let x = assign_sid cfg "X" in
        let y = assign_sid cfg "Y" in
        check_bool "x on if" true
          (List.mem if_sid (Control_dep.controllers edges x));
        check_bool "y not on if" false
          (List.mem if_sid (Control_dep.controllers edges y)));
    case "control dependence: loop body on the do" (fun () ->
        let _, _, cfg =
          setup "      PROGRAM P\n      DO I = 1, 3\n        X = I\n      ENDDO\n      END\n"
        in
        let edges = Control_dep.compute cfg in
        let do_sid = stmt_with cfg (fun s ->
            match s.Ast.node with Ast.Do _ -> true | _ -> false) in
        let x = assign_sid cfg "X" in
        check_bool "body controlled" true
          (List.mem do_sid (Control_dep.controllers edges x)));
    case "solver converges on workloads" (fun () ->
        List.iter
          (fun (w : Workloads.t) ->
            List.iter
              (fun u ->
                let tbl = Symbol.build u in
                let ctx = Defuse.make tbl u in
                let cfg = Cfg.build u in
                ignore (Reaching.analyze ctx cfg);
                ignore (Liveness.analyze ctx cfg);
                ignore (Constants.analyze ctx cfg))
              (Workloads.program w).Ast.punits)
          Workloads.all);
  ]
