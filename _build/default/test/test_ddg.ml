open Dependence
open Util

let prog body decls =
  Printf.sprintf "      PROGRAM P\n%s%s      END\n" decls body

let carried_kinds env ddg iv =
  Ddg.carried_by ddg (loop_sid (loop_by_iv env iv))
  |> List.map (fun (d : Ddg.dep) -> Ddg.kind_to_string d.Ddg.kind)
  |> List.sort_uniq compare

let suite =
  [
    case "flow dep with distance 1" (fun () ->
        let env =
          env_of
            (prog "      DO I = 2, 10\n        A(I) = A(I-1) + 1.0\n      ENDDO\n"
               "      REAL A(10)\n")
        in
        let ddg = ddg_of env in
        check_bool "carries flow" true
          (List.mem "true" (carried_kinds env ddg "I"));
        check_bool "not parallel" false
          (Ddg.parallelizable env ddg (loop_sid (loop_by_iv env "I"))));
    case "anti dep from forward read" (fun () ->
        let env =
          env_of
            (prog "      DO I = 1, 9\n        A(I) = A(I+1) + 1.0\n      ENDDO\n"
               "      REAL A(10)\n")
        in
        let ddg = ddg_of env in
        check_bool "carries anti" true
          (List.mem "anti" (carried_kinds env ddg "I")));
    case "independent columns parallelize" (fun () ->
        let env =
          env_of
            (prog
               "      DO I = 1, 10\n        A(I) = B(I) * 2.0\n      ENDDO\n"
               "      REAL A(10), B(10)\n")
        in
        let ddg = ddg_of env in
        check_bool "parallel" true
          (Ddg.parallelizable env ddg (loop_sid (loop_by_iv env "I"))));
    case "strided accesses disproved by strong SIV" (fun () ->
        let env =
          env_of
            (prog "      DO I = 1, 5\n        A(2*I) = A(2*I - 1) + 1.0\n      ENDDO\n"
               "      REAL A(10)\n")
        in
        let ddg = ddg_of env in
        check_bool "parallel (odd vs even)" true
          (Ddg.parallelizable env ddg (loop_sid (loop_by_iv env "I"))));
    case "symbolic cancellation: A(I+N) vs A(I+N)" (fun () ->
        let env =
          env_of
            (prog "      DO I = 1, 5\n        A(I+N) = A(I+N) * 2.0\n      ENDDO\n"
               "      REAL A(100)\n      INTEGER N\n")
        in
        let ddg = ddg_of env in
        check_bool "parallel" true
          (Ddg.parallelizable env ddg (loop_sid (loop_by_iv env "I"))));
    case "symbolic offset blocks (pending dep)" (fun () ->
        let env =
          env_of
            (prog "      DO I = 1, 5\n        A(I) = A(I+M) * 2.0\n      ENDDO\n"
               "      REAL A(100)\n      INTEGER M\n")
        in
        let ddg = ddg_of env in
        let blockers = Ddg.blocking env ddg (loop_sid (loop_by_iv env "I")) in
        check_bool "blocked" true (blockers <> []);
        check_bool "pending" true
          (List.for_all (fun (d : Ddg.dep) -> not d.Ddg.exact) blockers));
    case "asserted value unlocks symbolic offset" (fun () ->
        let asserts =
          { Depenv.no_assertions with Depenv.asserted_values = [ ("M", 64) ] }
        in
        let env =
          env_of ~asserts
            (prog "      DO I = 1, 5\n        A(I) = A(I+M) * 2.0\n      ENDDO\n"
               "      REAL A(100)\n      INTEGER M\n")
        in
        let ddg = ddg_of env in
        check_bool "parallel" true
          (Ddg.parallelizable env ddg (loop_sid (loop_by_iv env "I"))));
    case "asserted injectivity unlocks index arrays" (fun () ->
        let src =
          prog
            "      DO I = 1, 10\n        A(IDX(I)) = A(IDX(I)) + 1.0\n      ENDDO\n"
            "      REAL A(10)\n      INTEGER IDX(10)\n"
        in
        let env = env_of src in
        let ddg = ddg_of env in
        check_bool "blocked without" false
          (Ddg.parallelizable env ddg (loop_sid (loop_by_iv env "I")));
        let asserts =
          { Depenv.no_assertions with Depenv.asserted_injective = [ "IDX" ] }
        in
        let env = env_of ~asserts src in
        let ddg = ddg_of env in
        check_bool "parallel with" true
          (Ddg.parallelizable env ddg (loop_sid (loop_by_iv env "I"))));
    case "forward substitution feeds testing" (fun () ->
        let env =
          env_of
            (prog
               "      DO I = 1, 10\n        J1 = I + 10\n        A(J1) = A(I) + 1.0\n      ENDDO\n"
               "      REAL A(30)\n      INTEGER J1\n")
        in
        let ddg = ddg_of env in
        (* A(I+10) vs A(I): distance 10 exceeds the trip count 9 *)
        check_bool "parallel" true
          (Ddg.parallelizable env ddg (loop_sid (loop_by_iv env "I"))));
    case "aux induction variable subscripts" (fun () ->
        let env =
          env_of
            (prog
               "      K = 0\n      DO I = 1, 10\n        K = K + 1\n        A(K) = B(K) + 1.0\n      ENDDO\n"
               "      REAL A(10), B(10)\n      INTEGER K\n")
        in
        let ddg = ddg_of env in
        (* K is I in disguise: no carried dependence on A *)
        let carried =
          Ddg.carried_by ddg (loop_sid (loop_by_iv env "I"))
          |> List.filter (fun (d : Ddg.dep) -> d.Ddg.var = "A")
        in
        check_int "no A deps" 0 (List.length carried));
    case "matmul K carried, I and J clean" (fun () ->
        let w = Option.get (Workloads.by_name "matmul") in
        let u = List.hd (Workloads.program w).Fortran_front.Ast.punits in
        let env = Depenv.make u in
        let ddg = ddg_of env in
        check_bool "K blocked" false
          (Ddg.parallelizable env ddg (loop_sid (loop_by_iv env "K")));
        let stats = ddg.Ddg.stats in
        check_bool "some pairs proven" true (stats.Ddg.proven > 0));
    case "loop-independent scalar flow deps exist" (fun () ->
        let env =
          env_of (prog "      T = 1.0\n      X = T + 1.0\n" "")
        in
        let ddg = ddg_of env in
        let li =
          List.filter
            (fun (d : Ddg.dep) ->
              d.Ddg.is_scalar && d.Ddg.kind = Ddg.Flow && d.Ddg.var = "T")
            ddg.Ddg.deps
        in
        check_bool "present" true (li <> []));
    case "control deps recorded" (fun () ->
        let env =
          env_of
            (prog "      IF (X .GT. 0.0) THEN\n        Y = 1.0\n      ENDIF\n" "")
        in
        let ddg = ddg_of env in
        check_bool "control" true
          (List.exists (fun (d : Ddg.dep) -> d.Ddg.kind = Ddg.Control) ddg.Ddg.deps));
    case "call without interproc blocks array loops" (fun () ->
        let p =
          parse
            "      PROGRAM P\n      REAL A(10)\n      DO I = 1, 10\n        CALL F(A, I)\n      ENDDO\n      END\n      SUBROUTINE F(A, I)\n      REAL A(10)\n      A(I) = 1.0\n      END\n"
        in
        let u = List.hd p.Fortran_front.Ast.punits in
        let env = Depenv.make u in
        let ddg = ddg_of env in
        check_bool "blocked" false
          (Ddg.parallelizable env ddg (loop_sid (loop_by_iv env "I"))));
    case "ablation: base config finds fewer parallel loops" (fun () ->
        let w = Option.get (Workloads.by_name "matmul") in
        let u = List.hd (Workloads.program w).Fortran_front.Ast.punits in
        let count config =
          let env = Depenv.make ~config u in
          let ddg = ddg_of env in
          List.length
            (List.filter
               (fun (l : Loopnest.loop) ->
                 Ddg.parallelizable env ddg (loop_sid l))
               (Loopnest.loops env.Depenv.nest))
        in
        let base = count Depenv.base_config in
        let full = count Depenv.full_config in
        check_bool "monotone" true (base <= full);
        check_bool "full finds some" true (full > 0));
    case "stats count disproved tests" (fun () ->
        let env =
          env_of
            (prog "      DO I = 1, 5\n        A(2*I) = A(2*I-1) + 1.0\n      ENDDO\n"
               "      REAL A(10)\n")
        in
        let ddg = ddg_of env in
        let total =
          List.fold_left (fun acc (_, n) -> acc + n) 0 ddg.Ddg.stats.Ddg.disproved
        in
        check_bool "disproofs recorded" true (total > 0));
  ]
