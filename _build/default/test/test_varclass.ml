open Scalar_analysis
open Util

let classify ?recognize_reductions src iv =
  let env = env_of src in
  let lp = loop_by_iv env iv in
  Varclass.classify ?recognize_reductions env.Dependence.Depenv.ctx
    env.Dependence.Depenv.liveness lp.Dependence.Loopnest.lstmt

let cls ?recognize_reductions src iv var =
  Option.map Varclass.classification_to_string
    (Varclass.lookup (classify ?recognize_reductions src iv) var)

let prog body decls =
  Printf.sprintf "      PROGRAM P\n%s%s      END\n" decls body

let suite =
  [
    case "loop variable is induction" (fun () ->
        let src = prog "      DO I = 1, 10\n        X = I\n      ENDDO\n" "" in
        check_bool "ind" true (cls src "I" "I" = Some "induction"));
    case "aux induction K = K + 2" (fun () ->
        let src =
          prog "      K = 0\n      DO I = 1, 10\n        K = K + 2\n        X = K\n      ENDDO\n" ""
        in
        check_bool "aux" true (cls src "I" "K" = Some "induction"));
    case "killed scalar is private" (fun () ->
        let src =
          prog "      DO I = 1, 10\n        T = 2.0 * I\n        X = T + 1.0\n      ENDDO\n" ""
        in
        match cls src "I" "T" with
        | Some ("private" | "private(lastvalue)") -> ()
        | c -> Alcotest.failf "T classified %s" (Option.value ~default:"?" c));
    case "upward exposed scalar is unsafe" (fun () ->
        let src =
          prog "      T = 0.0\n      DO I = 1, 10\n        X = T\n        T = 2.0 * I\n      ENDDO\n" ""
        in
        check_bool "unsafe" true (cls src "I" "T" = Some "shared(unsafe)"));
    case "sum reduction recognized" (fun () ->
        let src =
          prog "      S = 0.0\n      DO I = 1, 10\n        S = S + A(I)\n      ENDDO\n"
            "      REAL A(10)\n"
        in
        check_bool "sum" true (cls src "I" "S" = Some "reduction(+)"));
    case "flattened sum reduction recognized" (fun () ->
        let src =
          prog "      S = 0.0\n      DO I = 1, 10\n        S = S + A(I) + B(I)\n      ENDDO\n"
            "      REAL A(10), B(10)\n"
        in
        check_bool "sum2" true (cls src "I" "S" = Some "reduction(+)"));
    case "subtraction reduction recognized" (fun () ->
        let src =
          prog "      S = 0.0\n      DO I = 1, 10\n        S = S - A(I)\n      ENDDO\n"
            "      REAL A(10)\n"
        in
        check_bool "sub" true (cls src "I" "S" = Some "reduction(+)"));
    case "s = e - s is NOT a reduction" (fun () ->
        let src =
          prog "      S = 0.0\n      DO I = 1, 10\n        S = A(I) - S\n      ENDDO\n"
            "      REAL A(10)\n"
        in
        check_bool "not" true (cls src "I" "S" = Some "shared(unsafe)"));
    case "product reduction" (fun () ->
        let src =
          prog "      PR = 1.0\n      DO I = 1, 10\n        PR = PR * A(I)\n      ENDDO\n"
            "      REAL A(10)\n"
        in
        check_bool "prod" true (cls src "I" "PR" = Some "reduction(*)"));
    case "max and min reductions" (fun () ->
        let src =
          prog
            "      BIG = 0.0\n      DO I = 1, 10\n        BIG = MAX(BIG, A(I))\n      ENDDO\n"
            "      REAL A(10)\n"
        in
        check_bool "max" true (cls src "I" "BIG" = Some "reduction(max)"));
    case "reduction disabled reverts to unsafe" (fun () ->
        let src =
          prog "      S = 0.0\n      DO I = 1, 10\n        S = S + A(I)\n      ENDDO\n"
            "      REAL A(10)\n"
        in
        check_bool "off" true
          (cls ~recognize_reductions:false src "I" "S" = Some "shared(unsafe)"));
    case "reduction variable used elsewhere is unsafe" (fun () ->
        let src =
          prog
            "      S = 0.0\n      DO I = 1, 10\n        S = S + A(I)\n        B(I) = S\n      ENDDO\n"
            "      REAL A(10), B(10)\n"
        in
        check_bool "mixed" true (cls src "I" "S" = Some "shared(unsafe)"));
    case "read-only scalar is shared safe" (fun () ->
        let src =
          prog "      C = 2.0\n      DO I = 1, 10\n        X = C * I\n      ENDDO\n" ""
        in
        check_bool "safe" true (cls src "I" "C" = Some "shared"));
    case "goto in body downgrades written scalars" (fun () ->
        let src =
          prog
            "      DO I = 1, 10\n        T = 1.0\n        IF (T .GT. 0.5) GOTO 10\n        X = T\n 10     CONTINUE\n      ENDDO\n"
            ""
        in
        check_bool "goto" true (cls src "I" "T" = Some "shared(unsafe)"));
    case "private in IF branches both assigning" (fun () ->
        let src =
          prog
            "      DO I = 1, 10\n        IF (I .GT. 5) THEN\n          T = 1.0\n        ELSE\n          T = 2.0\n        ENDIF\n        X = T\n      ENDDO\n"
            ""
        in
        match cls src "I" "T" with
        | Some ("private" | "private(lastvalue)") -> ()
        | c -> Alcotest.failf "T classified %s" (Option.value ~default:"?" c));
    case "conditional assignment is not private" (fun () ->
        let src =
          prog
            "      T = 0.0\n      DO I = 1, 10\n        IF (I .GT. 5) THEN\n          T = 1.0\n        ENDIF\n        X = T\n      ENDDO\n"
            ""
        in
        check_bool "cond" true (cls src "I" "T" = Some "shared(unsafe)"));
    case "parallelizable and blockers" (fun () ->
        let src =
          prog "      T = 0.0\n      DO I = 1, 10\n        X = T\n        T = 2.0 * I\n      ENDDO\n" ""
        in
        let c = classify src "I" in
        check_bool "not par" false (Varclass.parallelizable c);
        check_bool "T blocks" true (List.mem "T" (Varclass.blockers c)));
    case "aux_inductions finds stride and statement" (fun () ->
        let env =
          env_of (prog "      K = 0\n      DO I = 1, 4\n        K = K + 3\n      ENDDO\n" "")
        in
        let lp = loop_by_iv env "I" in
        match Varclass.aux_inductions env.Dependence.Depenv.ctx lp.Dependence.Loopnest.lstmt with
        | [ ("K", 3, _) ] -> ()
        | _ -> Alcotest.fail "expected K with stride 3");
    case "conditional increment is not aux induction" (fun () ->
        let env =
          env_of
            (prog
               "      K = 0\n      DO I = 1, 4\n        IF (I .GT. 2) THEN\n          K = K + 1\n        ENDIF\n      ENDDO\n"
               "")
        in
        let lp = loop_by_iv env "I" in
        check_int "none" 0
          (List.length (Varclass.aux_inductions env.Dependence.Depenv.ctx lp.Dependence.Loopnest.lstmt)));
  ]
