open Fortran_front
open Scalar_analysis
open Util
module L = Symbolic.Linear

let lin s =
  match
    Symbolic.linearize ~resolve:(fun _ -> None) (Parser.parse_expr_string s)
  with
  | Some l -> l
  | None -> Alcotest.failf "%s did not linearize" s

let suite =
  [
    case "linear arithmetic" (fun () ->
        check_bool "2I+J+3" true
          (L.equal (lin "2*I + J + 3")
             { L.const = 3; terms = [ ("I", 2); ("J", 1) ] }));
    case "subtraction cancels" (fun () ->
        check_bool "zero" true (L.is_const (lin "I + N - I - N") = Some 0));
    case "scaling distributes" (fun () ->
        check_bool "3(I+2)" true
          (L.equal (lin "3 * (I + 2)") { L.const = 6; terms = [ ("I", 3) ] }));
    case "exact division" (fun () ->
        check_bool "(2I+4)/2" true
          (L.equal (lin "(2*I + 4) / 2") { L.const = 2; terms = [ ("I", 1) ] }));
    case "inexact division fails" (fun () ->
        check_bool "fails" true
          (Symbolic.linearize ~resolve:(fun _ -> None)
             (Parser.parse_expr_string "(2*I + 3) / 2")
          = None));
    case "product of symbols fails" (fun () ->
        check_bool "fails" true
          (Symbolic.linearize ~resolve:(fun _ -> None)
             (Parser.parse_expr_string "N * I")
          = None));
    case "resolver substitutes" (fun () ->
        let resolve v = if v = "N" then Some (L.const 10) else None in
        match Symbolic.linearize ~resolve (Parser.parse_expr_string "N * I") with
        | Some l -> check_bool "10I" true (L.equal l { L.const = 0; terms = [ ("I", 10) ] })
        | None -> Alcotest.fail "should linearize with N known");
    case "to_expr round trips" (fun () ->
        let l = lin "2*I - 3*J + 7" in
        let e = L.to_expr l in
        match Symbolic.linearize ~resolve:(fun _ -> None) e with
        | Some l2 -> check_bool "same" true (L.equal l l2)
        | None -> Alcotest.fail "to_expr not linear");
    case "split removes one symbol" (fun () ->
        let c, rest = L.split "I" (lin "2*I + J + 3") in
        check_int "coeff" 2 c;
        check_bool "rest" true (L.equal rest { L.const = 3; terms = [ ("J", 1) ] }));
    case "eval computes" (fun () ->
        let v = L.eval (fun s -> if s = "I" then Some 4 else None) (lin "2*I + 1") in
        check_bool "9" true (v = Some 9));
    case "forward substitution resolves temporaries" (fun () ->
        let u =
          parse_body
            "      J1 = J + 1\n      A(J1) = A(J) + 1.0\n"
            ~decls:"      REAL A(100)\n      INTEGER J, J1\n"
        in
        let env = Dependence.Depenv.make u in
        let sid =
          Ast.fold_stmts
            (fun acc (s : Ast.stmt) ->
              match s.Ast.node with Ast.Assign (Ast.Index _, _) -> Some s.Ast.sid | _ -> acc)
            None u.Ast.body
          |> Option.get
        in
        let e =
          Symbolic.substitute env.Dependence.Depenv.ctx env.Dependence.Depenv.cfg
            env.Dependence.Depenv.reaching sid (Parser.parse_expr_string "J1")
        in
        check_string "substituted" "J + 1" (Pretty.expr_to_string e));
    case "self-referential definitions are not substituted" (fun () ->
        let u =
          parse_body "      DO I = 1, 3\n        K = K + 1\n        A(K) = 0.0\n      ENDDO\n"
            ~decls:"      REAL A(100)\n      INTEGER K\n"
        in
        let env = Dependence.Depenv.make u in
        let sid =
          Ast.fold_stmts
            (fun acc (s : Ast.stmt) ->
              match s.Ast.node with Ast.Assign (Ast.Index _, _) -> Some s.Ast.sid | _ -> acc)
            None u.Ast.body
          |> Option.get
        in
        let e =
          Symbolic.substitute env.Dependence.Depenv.ctx env.Dependence.Depenv.cfg
            env.Dependence.Depenv.reaching sid (Parser.parse_expr_string "K")
        in
        check_string "unchanged" "K" (Pretty.expr_to_string e));
    case "substitution blocked when operand changes between" (fun () ->
        let u =
          parse_body
            "      J1 = J + 1\n      J = J + 5\n      A(J1) = 0.0\n"
            ~decls:"      REAL A(100)\n      INTEGER J, J1\n"
        in
        let env = Dependence.Depenv.make u in
        let sid =
          Ast.fold_stmts
            (fun acc (s : Ast.stmt) ->
              match s.Ast.node with Ast.Assign (Ast.Index _, _) -> Some s.Ast.sid | _ -> acc)
            None u.Ast.body
          |> Option.get
        in
        let e =
          Symbolic.substitute env.Dependence.Depenv.ctx env.Dependence.Depenv.cfg
            env.Dependence.Depenv.reaching sid (Parser.parse_expr_string "J1")
        in
        check_string "kept" "J1" (Pretty.expr_to_string e));
    case "invariance check" (fun () ->
        let u =
          parse_body "      DO I = 1, 3\n        K = K + 1\n        X = N\n      ENDDO\n" ~decls:""
        in
        let env = Dependence.Depenv.make u in
        let lp = loop_by_iv env "I" in
        check_bool "N invariant" true
          (Symbolic.invariant_in env.Dependence.Depenv.ctx lp.Dependence.Loopnest.lstmt "N");
        check_bool "K not invariant" false
          (Symbolic.invariant_in env.Dependence.Depenv.ctx lp.Dependence.Loopnest.lstmt "K");
        check_bool "I not invariant" false
          (Symbolic.invariant_in env.Dependence.Depenv.ctx lp.Dependence.Loopnest.lstmt "I"));
    (* algebraic properties of Linear *)
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300 ~name:"Linear add/sub inverse"
         QCheck2.Gen.(pair (int_range (-50) 50) (int_range (-50) 50))
         (fun (a, b) ->
           let x = L.add (L.scale a (L.sym "I")) (L.const b) in
           L.equal (L.sub (L.add x x) x) x));
  ]
