open Fortran_front
open Util

let suite =
  [
    case "fold_stmts visits nested statements" (fun () ->
        let u =
          parse_body
            "      X = 1\n      DO I = 1, 2\n        IF (X .GT. 0) THEN\n          Y = 2\n        ENDIF\n      ENDDO\n"
        in
        let n = Ast.fold_stmts (fun acc _ -> acc + 1) 0 u.Ast.body in
        check_int "statements" 4 n);
    case "map_stmts rewrites bottom-up" (fun () ->
        let u = parse_body "      DO I = 1, 2\n        X = 1\n      ENDDO\n" in
        let body =
          Ast.map_stmts
            (fun s ->
              match s.Ast.node with
              | Ast.Assign (lhs, _) -> { s with Ast.node = Ast.Assign (lhs, Ast.Int 9) }
              | _ -> s)
            u.Ast.body
        in
        match (List.hd body).Ast.node with
        | Ast.Do (_, [ { Ast.node = Ast.Assign (_, Ast.Int 9); _ } ]) -> ()
        | _ -> Alcotest.fail "rewrite did not reach nested stmt");
    case "find_stmt locates nested" (fun () ->
        let u = parse_body "      DO I = 1, 2\n        X = 1\n      ENDDO\n" in
        let inner =
          Ast.fold_stmts
            (fun acc s ->
              match s.Ast.node with Ast.Assign _ -> Some s.Ast.sid | _ -> acc)
            None u.Ast.body
        in
        let sid = Option.get inner in
        check_bool "found" true (Ast.find_stmt sid u.Ast.body <> None));
    case "expr_vars includes index bases and subscripts" (fun () ->
        let e = Parser.parse_expr_string "A(I+1, J) + N" in
        check_string "vars" "A I J N" (String.concat " " (Ast.expr_vars e)));
    case "subst_var replaces only the variable" (fun () ->
        let e = Parser.parse_expr_string "I + A(I)" in
        let e' = Ast.subst_var "I" (Ast.Int 5) e in
        check_string "subst" "5 + A(5)" (Pretty.expr_to_string e'));
    case "rename_in_expr renames index bases too" (fun () ->
        let e = Parser.parse_expr_string "A(I) + A" in
        let e' = Ast.rename_in_expr ~old_name:"A" ~new_name:"B" e in
        check_string "renamed" "B(I) + B" (Pretty.expr_to_string e'));
    case "simplify folds constants" (fun () ->
        let e = Parser.parse_expr_string "2 + 3 * 4" in
        check_bool "folded" true (Ast.expr_equal (Ast.simplify e) (Ast.Int 14)));
    case "simplify drops neutral elements" (fun () ->
        let s e = Pretty.expr_to_string (Ast.simplify (Parser.parse_expr_string e)) in
        check_string "x+0" "X" (s "x + 0");
        check_string "1*x" "X" (s "1 * x");
        check_string "x-x" "0" (s "x - x");
        check_string "0*x" "0" (s "0 * x"));
    case "fresh sids are unique" (fun () ->
        let a = Ast.fresh_sid () and b = Ast.fresh_sid () in
        check_bool "distinct" true (a <> b));
    case "stmt_exprs covers loop bounds" (fun () ->
        let u = parse_body "      DO I = K, N, 2\n      ENDDO\n" in
        match (List.hd u.Ast.body).Ast.node with
        | Ast.Do _ as node ->
          check_int "three exprs" 3 (List.length (Ast.stmt_exprs node))
        | _ -> Alcotest.fail "not a do");
  ]
