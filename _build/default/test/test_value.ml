(* Storage-layer tests: column-major offsets, views, conversions. *)

open Fortran_front
open Sim.Value
open Util

let arr2 () =
  (* REAL A(2,3) — 6 elements, column major *)
  { store = alloc Ast.Treal 6; base = 0; bounds = [ (1, 2); (1, 3) ] }

let suite =
  [
    case "column-major offsets" (fun () ->
        let a = arr2 () in
        check_int "A(1,1)" 0 (offset a [ 1; 1 ]);
        check_int "A(2,1)" 1 (offset a [ 2; 1 ]);
        check_int "A(1,2)" 2 (offset a [ 1; 2 ]);
        check_int "A(2,3)" 5 (offset a [ 2; 3 ]));
    case "lower bounds shift offsets" (fun () ->
        let a = { store = alloc Ast.Treal 6; base = 0; bounds = [ (0, 5) ] } in
        check_int "A(0)" 0 (offset a [ 0 ]);
        check_int "A(5)" 5 (offset a [ 5 ]));
    case "views share storage with a base" (fun () ->
        let a = { store = alloc Ast.Treal 10; base = 0; bounds = [ (1, 10) ] } in
        set Ast.Treal (elem_cell a [ 7 ]) (VR 3.5);
        (* a view starting at element 5, reshaped to length 6 *)
        let v = { store = a.store; base = 4; bounds = [ (1, 6) ] } in
        check_bool "aliases" true (to_float (get (elem_cell v [ 3 ])) = 3.5));
    case "out-of-storage offsets rejected" (fun () ->
        let a = arr2 () in
        (match offset a [ 3; 3 ] with
        | exception Failure _ -> ()
        | _ -> Alcotest.fail "expected failure");
        match offset a [ 0; 0 ] with
        | exception Failure _ -> ()
        | o -> if o < 0 then Alcotest.fail "negative offset accepted" else ());
    case "subscript count mismatch rejected" (fun () ->
        let a = arr2 () in
        match offset a [ 1 ] with
        | exception Failure _ -> ()
        | _ -> Alcotest.fail "expected failure");
    case "conversions follow Fortran assignment" (fun () ->
        check_bool "real->int trunc" true (convert Ast.Tinteger (VR 3.9) = VI 3);
        check_bool "neg real->int trunc" true
          (convert Ast.Tinteger (VR (-3.9)) = VI (-3));
        check_bool "int->real widen" true (convert Ast.Treal (VI 4) = VR 4.0);
        check_bool "logical" true (convert Ast.Tlogical (VI 2) = VL true));
    case "to_int and to_bool coercions" (fun () ->
        check_int "trunc" 3 (to_int (VR 3.7));
        check_bool "nonzero true" true (to_bool (VI 5));
        check_bool "zero false" false (to_bool (VR 0.0)));
    case "zero_of per type" (fun () ->
        check_bool "int" true (zero_of Ast.Tinteger = VI 0);
        check_bool "real" true (zero_of Ast.Treal = VR 0.0);
        check_bool "log" true (zero_of Ast.Tlogical = VL false));
  ]
